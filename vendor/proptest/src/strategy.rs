//! Input-generation strategies: numeric ranges, tuples, `Just`, and `prop_map`.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
///
/// Unlike upstream proptest there is no value tree or shrinking — `generate`
/// produces a finished value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`, mirroring `Strategy::prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_below(span) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_below(span + 1) as $t)
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $wide:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.next_below(span) as $wide) as $t
            }
        }
    )+};
}

signed_range_strategy!(i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.next_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let unit = rng.next_f64() as $t;
                lo + unit * (hi - lo)
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

impl Strategy for Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end as u64 - self.start as u64;
        loop {
            let code = self.start as u32 + rng.next_below(span) as u32;
            if let Some(c) = char::from_u32(code) {
                return c;
            }
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);
