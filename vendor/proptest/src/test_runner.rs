//! Deterministic case generation: configuration and the per-test RNG.

/// Subset of upstream `ProptestConfig`: only the case count is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count a `proptest!` block actually runs: `PROPTEST_CASES`
    /// from the environment when set to a positive integer (mirroring
    /// upstream proptest's env override, so CI can crank coverage without
    /// touching source), otherwise this config's `cases`. Unparsable or
    /// zero values fall back to `cases` rather than erroring — a bad env
    /// var must not silently skip a suite.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(s) => match s.trim().parse::<u32>() {
                Ok(n) if n > 0 => n,
                _ => self.cases,
            },
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the stand-in trades a little coverage
        // for test-suite latency. Override per-block with `with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 generator seeded from the test's module path, so each property
/// sees a stable input sequence across runs and machines.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test identifier (FNV-1a over the name).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit output (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling; bias is negligible for test sizes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test covers every PROPTEST_CASES shape: the process environment
    // is shared across the test binary's threads, so splitting these into
    // separate #[test] functions would race.
    #[test]
    fn effective_cases_honors_the_env_override() {
        let cfg = ProptestConfig::with_cases(64);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(cfg.effective_cases(), 64);
        std::env::set_var("PROPTEST_CASES", "1024");
        assert_eq!(cfg.effective_cases(), 1024);
        std::env::set_var("PROPTEST_CASES", " 8 ");
        assert_eq!(cfg.effective_cases(), 8);
        // Zero and garbage fall back to the config instead of running
        // an empty (vacuously green) suite.
        std::env::set_var("PROPTEST_CASES", "0");
        assert_eq!(cfg.effective_cases(), 64);
        std::env::set_var("PROPTEST_CASES", "lots");
        assert_eq!(cfg.effective_cases(), 64);
        std::env::remove_var("PROPTEST_CASES");
    }
}
