//! Dependency-free stand-in for the `proptest` property-testing framework.
//!
//! Implements the API subset this workspace's tests use (see
//! `vendor/README.md`): the [`proptest!`] macro, [`Strategy`] for numeric
//! ranges / tuples / mapped strategies, [`collection::vec`], the
//! `prop_assert*` macros and [`ProptestConfig`]. Inputs are generated from a
//! deterministic per-test RNG; a failing case reports its inputs but is not
//! shrunk.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// The one-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let cases = config.effective_cases();
                let mut rng = $crate::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                $(let $arg = $strat;)+
                for case in 0..cases {
                    $(
                        let $arg = $crate::Strategy::generate(&$arg, &mut rng);
                    )+
                    let case_desc = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&format!("{:?}, ", &$arg));
                        )+
                        s
                    };
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || { $body })
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest {}: failing case {case}/{cases}: {case_desc}",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {
        assert_eq!($lhs, $rhs);
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        assert_eq!($lhs, $rhs, $($fmt)+);
    };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {
        assert_ne!($lhs, $rhs);
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        assert_ne!($lhs, $rhs, $($fmt)+);
    };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// The stand-in discards the case without generating a replacement.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}
