//! Behavioral checks for the vendored proptest stand-in itself: generated
//! values respect their strategies, generation is deterministic per test,
//! and `prop_assume` skips cases without failing them.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use proptest::Strategy;

#[test]
fn generation_is_deterministic_per_test_name() {
    let strat = (0u32..1000, 0.0f64..1.0);
    let mut a = TestRng::for_test("determinism_probe");
    let mut b = TestRng::for_test("determinism_probe");
    for _ in 0..100 {
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
    let mut c = TestRng::for_test("a_different_test");
    assert_ne!(strat.generate(&mut a), strat.generate(&mut c));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn int_ranges_stay_in_bounds(x in 7u32..19, y in -5i32..5) {
        prop_assert!((7..19).contains(&x));
        prop_assert!((-5..5).contains(&y));
    }

    #[test]
    fn float_ranges_stay_in_bounds(x in 0.25f64..0.75, y in -1.0f32..1.0) {
        prop_assert!((0.25..0.75).contains(&x));
        prop_assert!((-1.0..1.0).contains(&y));
    }

    #[test]
    fn vec_lengths_respect_size_range(
        v in proptest::collection::vec(0u8..10, 3..9)
    ) {
        prop_assert!((3..9).contains(&v.len()));
        prop_assert!(v.iter().all(|&b| b < 10));
    }

    #[test]
    fn prop_map_applies_function(n in 1u64..100) {
        // The strategy below is evaluated fresh per case; generate directly.
        let doubled = (1u64..100).prop_map(|m| m * 2);
        let mut rng = TestRng::for_test("prop_map_probe");
        let d = doubled.generate(&mut rng);
        prop_assert!(d % 2 == 0 && (2..200).contains(&d));
        prop_assert!(n < 100);
    }

    #[test]
    fn prop_assume_skips_without_failing(n in 0u32..10) {
        prop_assume!(n % 2 == 0);
        prop_assert_eq!(n % 2, 0);
    }
}
