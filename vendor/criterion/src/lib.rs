//! Dependency-free stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset this workspace's benches use (see
//! `vendor/README.md`). Each benchmark runs a short warm-up followed by a
//! fixed number of timed samples and prints the median per-iteration
//! wall-clock time. There is no statistical analysis or report output —
//! swap in the real crate for serious measurement.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under the name criterion provides.
pub use std::hint::black_box;

/// Top-level benchmark driver handed to each `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_bench(&id.into(), sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Register and immediately run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_bench(&id, self.sample_size, f);
        self
    }

    /// Finish the group. No-op in the stand-in; kept for API parity.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    // Warm-up sample (discarded) so lazy initialization doesn't skew timing.
    f(&mut b);
    b.samples.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    b.samples.sort_unstable();
    let median = b
        .samples
        .get(b.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!("bench: {id:<50} median {median:?} ({sample_size} samples)");
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Time the closure, recording one sample of its median iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let iters = self.iters_per_sample;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed() / iters;
        // Auto-scale very fast routines to amortize timer overhead.
        if elapsed < Duration::from_micros(5) && iters < 1 << 16 {
            self.iters_per_sample = iters * 4;
        }
        self.samples.push(elapsed);
    }
}

/// Build a function that runs each listed benchmark with a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Build a `main` that runs the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
