//! End-to-end guarantees for the new hash families: the E2LSH (L2)
//! family rides every verifier — the SPRT composition included — with
//! output **bit-identical** across thread counts and shard counts, and
//! the MIPS reduction searches inner products through the cosine
//! machinery. The integer-bucket (Projs) pool clamps multi-probe to the
//! classic single-probe path, and PPJoin+ rejects both new measures with
//! a typed error instead of producing garbage.

use bayeslsh::prelude::*;

/// Clustered weighted corpus with planted L2 near-neighbours: members of
/// a cluster share the center's support and jitter its values, so
/// within-cluster Euclidean distances are small (s = 1/(1 + d) high)
/// while cross-cluster distances are large.
fn l2_corpus(seed: u64) -> Dataset {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut d = Dataset::new(2000);
    for c in 0..8 {
        let center: Vec<(u32, f32)> = (0..30)
            .map(|_| {
                (
                    (c * 250 + rng.next_below(240) as usize) as u32,
                    (rng.next_f64() + 0.3) as f32,
                )
            })
            .collect();
        for m in 0..6 {
            // Jitter magnitude grows with the member index, planting pairs
            // across the whole similarity range above the threshold.
            let spread = 0.01 + 0.03 * m as f64;
            let pairs: Vec<(u32, f32)> = center
                .iter()
                .map(|&(i, x)| (i, x + ((rng.next_f64() - 0.5) * spread) as f32))
                .collect();
            d.push(SparseVector::from_pairs(pairs));
        }
    }
    d
}

fn bits(pairs: &[(u32, u32, f64)]) -> Vec<(u32, u32, u64)> {
    pairs.iter().map(|&(a, b, s)| (a, b, s.to_bits())).collect()
}

fn neighborhood(n: &[(u32, f64)]) -> Vec<(u32, u64)> {
    n.iter().map(|&(id, s)| (id, s.to_bits())).collect()
}

const SPRT: Composition = Composition::new(GeneratorKind::LshBanding, VerifierKind::Sprt);

#[test]
fn l2_through_sprt_is_bit_identical_across_thread_counts() {
    let data = l2_corpus(701);
    let mut serial_cfg = PipelineConfig::l2(0.5, 4.0);
    serial_cfg.parallelism = Parallelism::serial();
    let mut serial = Searcher::builder(serial_cfg)
        .composition(SPRT)
        .build(data.clone())
        .unwrap();
    let serial_batch = serial.all_pairs().unwrap();
    assert!(
        !serial_batch.pairs.is_empty(),
        "the planted clusters must produce L2 pairs"
    );
    let queries: Vec<SparseVector> = (0..8).map(|i| data.vector(i * 5).clone()).collect();
    let expect: Vec<QueryOutput> = queries
        .iter()
        .map(|q| serial.query(q, 0.5).unwrap())
        .collect();
    let planted = data.vector(2).clone();
    serial.insert(planted.clone()).unwrap();
    let serial_after = serial.all_pairs().unwrap();

    for threads in [1u32, 4] {
        let mut cfg = PipelineConfig::l2(0.5, 4.0);
        cfg.parallelism = Parallelism::threads(threads);
        let mut par = Searcher::builder(cfg)
            .composition(SPRT)
            .build(data.clone())
            .unwrap();
        let out = par.all_pairs().unwrap();
        assert_eq!(
            bits(&serial_batch.pairs),
            bits(&out.pairs),
            "threads={threads}"
        );
        assert_eq!(serial_batch.candidates, out.candidates);
        for (q, e) in queries.iter().zip(&expect) {
            let got = par.query(q, 0.5).unwrap();
            assert_eq!(
                neighborhood(&e.neighbors),
                neighborhood(&got.neighbors),
                "threads={threads}"
            );
            assert_eq!(e.stats, got.stats, "threads={threads}");
        }
        // Incremental insert keeps the guarantee.
        par.insert(planted.clone()).unwrap();
        let out = par.all_pairs().unwrap();
        assert_eq!(
            bits(&serial_after.pairs),
            bits(&out.pairs),
            "threads={threads} after insert"
        );
    }
}

#[test]
fn l2_through_sprt_is_bit_identical_single_vs_sharded() {
    let data = l2_corpus(702);
    let mut cfg = PipelineConfig::l2(0.5, 4.0);
    cfg.parallelism = Parallelism::serial();
    let single = Searcher::builder(cfg)
        .composition(SPRT)
        .build(data.clone())
        .unwrap();
    let single_batch = single.all_pairs().unwrap();
    assert!(!single_batch.pairs.is_empty());

    for shards in [1usize, 4] {
        let dir = std::env::temp_dir().join(format!(
            "bayeslsh-l2-shards-{shards}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ShardBuilder::new(cfg)
            .composition(SPRT)
            .shards(shards)
            .partition(PartitionFn::Hashed { seed: 5 })
            .parallelism(Parallelism::serial())
            .build_to_dir(&data, &dir)
            .unwrap();
        let sharded = ShardedSearcher::open_with(
            &dir.join(MANIFEST_FILE),
            Parallelism::serial(),
            LoadPolicy::Eager,
        )
        .unwrap();

        let merged = sharded.all_pairs().unwrap();
        assert_eq!(
            bits(&single_batch.pairs),
            bits(&merged.pairs),
            "shards={shards}"
        );

        for qid in (0..data.len() as u32).step_by(7) {
            let q = data.vector(qid).clone();
            let (x, y) = (
                sharded.query(&q, 0.5).unwrap(),
                single.query(&q, 0.5).unwrap(),
            );
            // Scatter-gather probes each shard's own index, so the merged
            // probe count scales with the shard count; everything else is
            // bit-identical.
            let mut scaled = y.stats;
            scaled.bucket_probes *= shards as u64;
            assert_eq!(x.stats, scaled, "shards={shards} query {qid}");
            assert_eq!(
                neighborhood(&x.neighbors),
                neighborhood(&y.neighbors),
                "shards={shards} query {qid}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn l2_compositions_recall_ground_truth() {
    let data = l2_corpus(703);
    let cfg = PipelineConfig::l2(0.5, 4.0);
    let gt = ground_truth(&data, Measure::L2, 0.5);
    assert!(gt.len() >= 20, "ground truth too small: {}", gt.len());
    let truth: std::collections::HashSet<(u32, u32)> = gt.iter().map(|&(a, b, _)| (a, b)).collect();
    for comp in [
        Composition::new(GeneratorKind::AllPairs, VerifierKind::Exact),
        Composition::new(GeneratorKind::AllPairs, VerifierKind::Bayes),
        Composition::new(GeneratorKind::AllPairs, VerifierKind::BayesLite),
        Composition::new(GeneratorKind::LshBanding, VerifierKind::Exact),
        Composition::new(GeneratorKind::LshBanding, VerifierKind::Mle),
        Composition::new(GeneratorKind::LshBanding, VerifierKind::Bayes),
        Composition::new(GeneratorKind::LshBanding, VerifierKind::BayesLite),
        SPRT,
    ] {
        let searcher = Searcher::builder(cfg)
            .composition(comp)
            .build(data.clone())
            .unwrap();
        let out = searcher.all_pairs().unwrap();
        let hits = out
            .pairs
            .iter()
            .filter(|&&(a, b, _)| truth.contains(&(a, b)))
            .count();
        let recall = hits as f64 / gt.len() as f64;
        let min =
            if comp.generator == GeneratorKind::AllPairs && comp.verifier == VerifierKind::Exact {
                1.0
            } else {
                0.85
            };
        assert!(
            recall >= min,
            "{comp}: L2 recall {recall:.3} (output {}, truth {})",
            out.pairs.len(),
            gt.len()
        );
    }
}

#[test]
fn ppjoin_rejects_the_new_measures_with_a_typed_error() {
    let data = l2_corpus(704);
    for cfg in [PipelineConfig::l2(0.5, 4.0), PipelineConfig::mips(0.6)] {
        let err = Searcher::builder(cfg)
            .algorithm(Algorithm::PpjoinPlus)
            .build(data.clone())
            .unwrap_err();
        assert!(
            matches!(err, SearchError::InvalidConfig { .. }),
            "{:?}: expected InvalidConfig, got {err:?}",
            cfg.family.measure()
        );
    }
}

#[test]
fn integer_bucket_pools_clamp_multi_probe_to_single_probe() {
    // The Projs pool's band keys are digests of bucket tuples; a single-bit
    // flip is meaningless, so a probes > 1 config behaves exactly like the
    // single-probe path (and reports the single-probe lookup count).
    let data = l2_corpus(705);
    let mut cfg = PipelineConfig::l2(0.5, 4.0);
    cfg.parallelism = Parallelism::serial();
    let single = Searcher::builder(cfg).build(data.clone()).unwrap();
    cfg.probes = 5;
    let probed = Searcher::builder(cfg).build(data.clone()).unwrap();
    let l = single.banding_plan().params.l as u64;
    for qid in (0..data.len() as u32).step_by(9) {
        let q = data.vector(qid).clone();
        let (a, b) = (
            single.query(&q, 0.5).unwrap(),
            probed.query(&q, 0.5).unwrap(),
        );
        assert_eq!(a.stats, b.stats, "query {qid}");
        assert_eq!(a.stats.bucket_probes, l, "query {qid}: one lookup per band");
        assert_eq!(
            neighborhood(&a.neighbors),
            neighborhood(&b.neighbors),
            "query {qid}"
        );
    }
}

#[test]
fn mips_reduction_orders_neighbors_by_inner_product() {
    // Raw corpus with deliberately varied norms: plain cosine would rank
    // the *direction* matches first; MIPS must rank by q·x instead.
    let mut rng = Xoshiro256::seed_from_u64(706);
    let mut raw = Dataset::new(500);
    for c in 0..6 {
        let center: Vec<(u32, f32)> = (0..20)
            .map(|_| {
                (
                    (c * 80 + rng.next_below(75) as usize) as u32,
                    (rng.next_f64() + 0.3) as f32,
                )
            })
            .collect();
        for m in 0..5 {
            // Same direction, very different magnitudes.
            let scale = 0.5 + m as f32;
            let pairs: Vec<(u32, f32)> = center
                .iter()
                .map(|&(i, x)| {
                    let jittered = x + ((rng.next_f64() - 0.5) * 0.05) as f32;
                    (i, jittered * scale)
                })
                .collect();
            raw.push(SparseVector::from_pairs(pairs));
        }
    }
    let transform = MipsTransform::fit(&raw);
    let augmented = transform.transform_corpus(&raw);
    let searcher = Searcher::builder(PipelineConfig::mips(0.3))
        .algorithm(Algorithm::Lsh)
        .build(augmented)
        .unwrap();

    let mut checked = 0;
    for qid in 0..raw.len() as u32 {
        let q = raw.vector(qid).clone();
        let out = searcher
            .top_k(&transform.augment_query(&q), 3, &KnnParams::default())
            .unwrap();
        if out.neighbors.is_empty() {
            continue;
        }
        // The top hit must be the true inner-product argmax.
        let best = raw
            .iter()
            .max_by(|a, b| dot(&q, a.1).total_cmp(&dot(&q, b.1)))
            .unwrap()
            .0;
        assert_eq!(
            out.neighbors[0].0, best,
            "query {qid}: MIPS top-1 must be the inner-product argmax"
        );
        checked += 1;
    }
    assert!(checked >= 25, "only {checked} queries produced neighbors");
}
