//! Workspace wiring smoke test: every `Algorithm` variant must run
//! end-to-end on a tiny preset without panicking, through the facade's
//! re-exported surface alone. This guards the Cargo manifest wiring itself —
//! if a crate is dropped from the workspace or a re-export goes missing,
//! this file stops compiling or running long before the statistical tests
//! notice.

use bayeslsh::prelude::*;

#[test]
fn every_algorithm_smokes_on_weighted_cosine() {
    let data = Preset::Rcv1.load(0.0005, 11);
    assert!(data.len() > 10, "tiny preset unexpectedly empty");
    let cfg = PipelineConfig::cosine(0.7);
    for algo in Algorithm::ALL {
        if !algo.supports_weighted() {
            continue;
        }
        let out = run_algorithm(algo, &data, &cfg);
        assert_eq!(out.algorithm, algo);
        sanity_check(algo, &out, data.len() as u32);
    }
}

#[test]
fn every_algorithm_smokes_on_binary_jaccard() {
    let data = Preset::Twitter.load_binary(0.0008, 12);
    assert!(data.len() > 10, "tiny preset unexpectedly empty");
    let cfg = PipelineConfig::jaccard(0.4);
    for algo in Algorithm::ALL {
        let out = run_algorithm(algo, &data, &cfg);
        assert_eq!(out.algorithm, algo);
        sanity_check(algo, &out, data.len() as u32);
    }
}

#[test]
fn every_algorithm_smokes_on_binary_cosine() {
    let data = Preset::Orkut.load_binary(0.0003, 13);
    assert!(data.len() > 10, "tiny preset unexpectedly empty");
    let cfg = PipelineConfig::cosine(0.6);
    for algo in Algorithm::ALL {
        let out = run_algorithm(algo, &data, &cfg);
        assert_eq!(out.algorithm, algo);
        sanity_check(algo, &out, data.len() as u32);
    }
}

fn sanity_check(algo: Algorithm, out: &RunOutput, n: u32) {
    for &(a, b, s) in &out.pairs {
        assert!(a < b, "{algo}: unordered pair ({a}, {b})");
        assert!(b < n, "{algo}: id {b} out of range");
        assert!(
            (0.0..=1.0 + 1e-9).contains(&s),
            "{algo}: similarity {s} out of range"
        );
    }
    assert!(out.total_secs >= 0.0);
}
