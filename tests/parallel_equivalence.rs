//! The parallel execution layer's core guarantee: for every named
//! composition (the paper's eight algorithms plus the SPRT verifier) and
//! every tested thread count, output is **bit-identical to the serial
//! path** — same pairs, same similarities (exact or Bayesian estimates,
//! compared as raw bits), same candidate and prune counters — including
//! after incremental `insert()`s and across point queries. Parallelism may
//! only change wall-clock time.

use bayeslsh::prelude::*;

mod support;
use support::all_compositions;

const THREADS: [u32; 4] = [1, 2, 4, 8];

/// Clustered corpus with planted near-duplicates (weighted vectors).
fn corpus(seed: u64) -> Dataset {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut d = Dataset::new(3000);
    for c in 0..10 {
        let center: Vec<(u32, f32)> = (0..35)
            .map(|_| {
                (
                    (c * 250 + rng.next_below(230) as usize) as u32,
                    (rng.next_f64() + 0.3) as f32,
                )
            })
            .collect();
        for _ in 0..6 {
            let mut pairs = center.clone();
            for p in pairs.iter_mut() {
                if rng.next_bool(0.2) {
                    *p = (rng.next_below(3000) as u32, (rng.next_f64() + 0.3) as f32);
                }
            }
            d.push(SparseVector::from_pairs(pairs));
        }
    }
    d
}

/// Pairs with bit-exact similarities, for equality assertions.
fn bits(pairs: &[(u32, u32, f64)]) -> Vec<(u32, u32, u64)> {
    pairs.iter().map(|&(a, b, s)| (a, b, s.to_bits())).collect()
}

/// The deterministic subset of engine counters (cache hit/miss splits are
/// per-worker and legitimately partition-dependent).
fn engine_counters(stats: &EngineStats) -> (u64, u64, u64, u64, u64, u64, Vec<u64>) {
    (
        stats.input_pairs,
        stats.pruned,
        stats.accepted,
        stats.forced_accepts,
        stats.exact_verifications,
        stats.hash_comparisons,
        stats.pruned_at_chunk.clone(),
    )
}

fn assert_outputs_match(serial: &CompositionOutput, par: &CompositionOutput, label: &str) {
    assert_eq!(
        bits(&serial.pairs),
        bits(&par.pairs),
        "{label}: pairs must be bit-identical"
    );
    assert_eq!(serial.candidates, par.candidates, "{label}: candidates");
    match (&serial.engine, &par.engine) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            assert_eq!(
                engine_counters(a),
                engine_counters(b),
                "{label}: engine counters"
            );
        }
        _ => panic!("{label}: engine stats presence must not depend on threads"),
    }
}

fn check_all_compositions(data: &Dataset, cfg_for: impl Fn() -> PipelineConfig) {
    for comp in all_compositions() {
        let cfg = cfg_for();
        if comp.requires_binary(cfg.family.measure())
            && !data.vectors().iter().all(|v| v.is_binary())
        {
            continue;
        }
        // Serial reference, including an insert mid-life.
        let mut serial_cfg = cfg;
        serial_cfg.parallelism = Parallelism::serial();
        let mut serial = Searcher::builder(serial_cfg)
            .composition(comp)
            .build(data.clone())
            .unwrap();
        let serial_before = serial.all_pairs().unwrap();
        let planted = serial.data().vector(4).clone();
        serial.insert(planted.clone()).unwrap();
        let serial_after = serial.all_pairs().unwrap();

        for threads in THREADS {
            let mut par_cfg = cfg;
            par_cfg.parallelism = Parallelism::threads(threads);
            let mut par = Searcher::builder(par_cfg)
                .composition(comp)
                .build(data.clone())
                .unwrap();
            assert_eq!(par.threads(), threads as usize);
            let out = par.all_pairs().unwrap();
            assert_outputs_match(&serial_before, &out, &format!("{comp} threads={threads}"));
            // Incremental insert must keep the guarantee.
            par.insert(planted.clone()).unwrap();
            let out = par.all_pairs().unwrap();
            assert_outputs_match(
                &serial_after,
                &out,
                &format!("{comp} threads={threads} after insert"),
            );
        }
    }
}

#[test]
fn cosine_compositions_are_thread_count_invariant() {
    let data = corpus(501);
    check_all_compositions(&data, || PipelineConfig::cosine(0.7));
}

#[test]
fn jaccard_compositions_are_thread_count_invariant() {
    let data = corpus(502).binarized();
    check_all_compositions(&data, || PipelineConfig::jaccard(0.5));
}

#[test]
fn legacy_shim_is_thread_count_invariant_too() {
    // `run_algorithm` (transient pools, no standing index) goes through
    // the same parallel layer; its output must not depend on the budget.
    let data = corpus(503);
    for algo in [Algorithm::Lsh, Algorithm::LshApprox, Algorithm::LshBayesLsh] {
        let mut cfg = PipelineConfig::cosine(0.7);
        cfg.parallelism = Parallelism::serial();
        let serial = run_algorithm(algo, &data, &cfg);
        for threads in THREADS {
            cfg.parallelism = Parallelism::threads(threads);
            let par = run_algorithm(algo, &data, &cfg);
            assert_eq!(
                bits(&serial.pairs),
                bits(&par.pairs),
                "{algo} threads={threads}"
            );
            assert_eq!(serial.candidates, par.candidates);
        }
    }
}

#[test]
fn point_queries_are_thread_count_invariant() {
    let data = corpus(504);
    for comp in [
        Algorithm::Lsh.composition(),
        Algorithm::LshApprox.composition(),
        Algorithm::LshBayesLsh.composition(),
        Algorithm::LshBayesLshLite.composition(),
        Composition::new(GeneratorKind::LshBanding, VerifierKind::Sprt),
    ] {
        let mut cfg = PipelineConfig::cosine(0.7);
        cfg.parallelism = Parallelism::serial();
        let serial = Searcher::builder(cfg)
            .composition(comp)
            .build(data.clone())
            .unwrap();
        let queries: Vec<SparseVector> = (0..10)
            .map(|i| serial.data().vector(i * 5).clone())
            .collect();
        let expect: Vec<QueryOutput> = queries
            .iter()
            .map(|q| serial.query(q, 0.7).unwrap())
            .collect();

        for threads in THREADS {
            let mut cfg = PipelineConfig::cosine(0.7);
            cfg.parallelism = Parallelism::threads(threads);
            let par = Searcher::builder(cfg)
                .composition(comp)
                .build(data.clone())
                .unwrap();
            for (q, e) in queries.iter().zip(&expect) {
                let got = par.query(q, 0.7).unwrap();
                let pack = |o: &QueryOutput| {
                    o.neighbors
                        .iter()
                        .map(|&(id, s)| (id, s.to_bits()))
                        .collect::<Vec<_>>()
                };
                assert_eq!(pack(e), pack(&got), "{comp} threads={threads}");
                assert_eq!(e.stats, got.stats, "{comp} threads={threads}");
            }
        }
    }
}

#[test]
fn top_k_is_thread_count_invariant() {
    let data = corpus(505);
    let mut cfg = PipelineConfig::cosine(0.5);
    cfg.parallelism = Parallelism::serial();
    let serial = Searcher::builder(cfg).build(data.clone()).unwrap();
    let q = serial.data().vector(9).clone();
    let expect = serial.top_k(&q, 5, &KnnParams::default()).unwrap();
    for threads in THREADS {
        let mut cfg = PipelineConfig::cosine(0.5);
        cfg.parallelism = Parallelism::threads(threads);
        let par = Searcher::builder(cfg).build(data.clone()).unwrap();
        let got = par.top_k(&q, 5, &KnnParams::default()).unwrap();
        assert_eq!(expect.neighbors.len(), got.neighbors.len());
        for (a, b) in expect.neighbors.iter().zip(&got.neighbors) {
            assert_eq!(a.0, b.0, "threads={threads}");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "threads={threads}");
        }
        assert_eq!(expect.stats, got.stats, "threads={threads}");
    }
}

#[test]
fn hash_counts_match_serial_under_eager_mode() {
    // Under the default eager mode parallelism must not change how much
    // hashing the build pays, either.
    let data = corpus(506);
    let mut cfg = PipelineConfig::cosine(0.7);
    cfg.parallelism = Parallelism::serial();
    let serial = Searcher::builder(cfg).build(data.clone()).unwrap();
    for threads in THREADS {
        let mut cfg = PipelineConfig::cosine(0.7);
        cfg.parallelism = Parallelism::threads(threads);
        let par = Searcher::builder(cfg).build(data.clone()).unwrap();
        assert_eq!(par.hash_count(), serial.hash_count(), "threads={threads}");
    }
}
