//! Statistical-contract tests: the paper's probabilistic guarantees hold
//! empirically on seeded data.
//!
//! Guarantee 1 (recall): every pair with `Pr[s >= t] > eps` is kept — so the
//! false-negative rate among true pairs stays near/below ε (plus the
//! candidate generator's own misses).
//! Guarantee 2 (accuracy): `Pr[|ŝ − s| >= δ] < γ` for emitted estimates.

use bayeslsh::prelude::*;

fn corpus(seed: u64) -> Dataset {
    Preset::WikiWords100K.load(0.003, seed)
}

#[test]
fn recall_tracks_epsilon() {
    // AP candidates are a superset of the true pairs, so the only recall
    // loss is BayesLSH's own pruning — the cleanest view of guarantee 1.
    let data = corpus(21);
    let t = 0.7;
    let truth = ground_truth(&data, Measure::Cosine, t);
    assert!(truth.len() >= 50);
    let mut recalls = Vec::new();
    for eps in [0.01, 0.09, 0.30] {
        let mut cfg = PipelineConfig::cosine(t);
        cfg.epsilon = eps;
        let out = run_algorithm(Algorithm::ApBayesLsh, &data, &cfg);
        let r = recall_against(&truth, &out.pairs);
        // False-negative rate below eps plus sampling slack.
        assert!(r >= 1.0 - eps - 0.05, "eps={eps}: recall {r}");
        recalls.push(r);
    }
    // Recall must not improve as eps grows.
    assert!(recalls[0] >= recalls[2] - 0.01, "{recalls:?}");
}

#[test]
fn estimation_error_tracks_delta() {
    let data = corpus(22);
    let t = 0.7;
    let mut mean_errors = Vec::new();
    for delta in [0.01, 0.05, 0.09] {
        let mut cfg = PipelineConfig::cosine(t);
        cfg.delta = delta;
        let out = run_algorithm(Algorithm::ApBayesLsh, &data, &cfg);
        let err = estimate_errors(&out.pairs, &data, Measure::Cosine, delta);
        // Guarantee 2 holds whenever the hash cap was not the stopping
        // reason. At delta = 0.01 concentration would need tens of
        // thousands of hashes per pair — the paper hashes unboundedly,
        // we cap at max_hashes and surface it via forced_accepts.
        let stats = out.engine.as_ref().unwrap();
        let forced_frac = stats.forced_accepts as f64 / stats.accepted.max(1) as f64;
        if forced_frac < 0.10 {
            assert!(
                err.frac_above <= cfg.gamma + 0.07,
                "delta={delta}: Pr[err > delta] ≈ {} (forced {forced_frac})",
                err.frac_above
            );
        }
        mean_errors.push(err.mean_abs);
    }
    // Tighter delta buys smaller mean error even when capped (paper
    // Table 5, delta column).
    assert!(
        mean_errors[0] <= mean_errors[2] + 1e-6,
        "mean errors should grow with delta: {mean_errors:?}"
    );
}

#[test]
fn gamma_bounds_the_fraction_of_bad_estimates() {
    let data = corpus(23);
    let t = 0.7;
    for gamma in [0.03, 0.09] {
        let mut cfg = PipelineConfig::cosine(t);
        cfg.gamma = gamma;
        let out = run_algorithm(Algorithm::ApBayesLsh, &data, &cfg);
        let err = estimate_errors(&out.pairs, &data, Measure::Cosine, cfg.delta);
        assert!(
            err.frac_above <= gamma + 0.07,
            "gamma={gamma}: fraction above delta = {} (n={})",
            err.frac_above,
            err.n
        );
    }
}

#[test]
fn bayeslsh_estimates_beat_fixed_hash_mle_at_low_similarities() {
    // The paper's Table 4 story: LSH Approx with a fixed budget makes many
    // >0.05 errors at low thresholds; BayesLSH keeps the error profile
    // flat because it adapts the hash count per pair.
    let data = corpus(24);
    let t = 0.5;
    let mut cfg = PipelineConfig::cosine(t);
    // Deliberately starve the fixed-n estimator the way a practitioner
    // tuning for speed would (the paper's 2048 default is generous).
    cfg.approx_hashes = 256;
    let approx = run_algorithm(Algorithm::LshApprox, &data, &cfg);
    let bayes = run_algorithm(Algorithm::LshBayesLsh, &data, &cfg);
    let e_approx = estimate_errors(&approx.pairs, &data, Measure::Cosine, 0.05);
    let e_bayes = estimate_errors(&bayes.pairs, &data, Measure::Cosine, 0.05);
    assert!(
        e_bayes.frac_above < e_approx.frac_above,
        "BayesLSH {} vs LSH-Approx {} (fraction of errors > 0.05)",
        e_bayes.frac_above,
        e_approx.frac_above
    );
}

#[test]
fn pruning_dominates_verification_cost() {
    // Figure 4's quantitative claim, engine-level: the typical pruned pair
    // costs only a few chunks of hash comparisons.
    let data = corpus(25);
    let cfg = PipelineConfig::cosine(0.7);
    let out = run_algorithm(Algorithm::LshBayesLsh, &data, &cfg);
    let stats = out.engine.unwrap();
    assert!(stats.pruned > 0);
    let avg_hashes_per_pair = stats.hash_comparisons as f64 / stats.input_pairs as f64;
    assert!(
        avg_hashes_per_pair < cfg.max_hashes as f64 / 4.0,
        "average hashes per pair {avg_hashes_per_pair} should be far below the cap {}",
        cfg.max_hashes
    );
}
