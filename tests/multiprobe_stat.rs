//! Statistical verification of the step-wise multi-probe trade
//! (Lv et al., VLDB'07): an index built with **half the bands** but
//! queried with a per-band probe budget must recover the recall of the
//! full single-probe index — that is the whole point of multi-probe,
//! buying index memory (bands are the dominant index cost) with cheap
//! extra bucket lookups. Pooled over 12 seeds so the assertion tests the
//! expectation, not one lucky draw, with exact verification (LSH × exact)
//! so every measured miss is a *candidate* miss.
//!
//! Alongside the recall claim, the probe accounting is pinned: a
//! single-probe query pays exactly one bucket lookup per band, and a
//! `probes = P` query on a bit family pays `P` per band (clamped to the
//! `k + 1` meaningful single-bit flips).

use bayeslsh::prelude::*;

const N_SEEDS: u64 = 12;
const THRESHOLD: f64 = 0.6;

/// Clustered corpus with planted near-duplicates (weighted vectors).
fn corpus(seed: u64) -> Dataset {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut d = Dataset::new(3000);
    for c in 0..10 {
        let center: Vec<(u32, f32)> = (0..35)
            .map(|_| {
                (
                    (c * 250 + rng.next_below(230) as usize) as u32,
                    (rng.next_f64() + 0.3) as f32,
                )
            })
            .collect();
        for _ in 0..6 {
            let mut pairs = center.clone();
            for p in pairs.iter_mut() {
                if rng.next_bool(0.2) {
                    *p = (rng.next_below(3000) as u32, (rng.next_f64() + 0.3) as f32);
                }
            }
            d.push(SparseVector::from_pairs(pairs));
        }
    }
    d
}

/// A config whose banding plan lands on exactly `target_bands` bands:
/// `l = ⌈ln fnr / ln(1 − p^k)⌉`, so requesting `fnr = (1 − p^k)^l`
/// (nudged up against rounding) inverts the formula.
fn config_with_bands(target_bands: u32) -> PipelineConfig {
    let mut cfg = PipelineConfig::cosine(THRESHOLD);
    let p = cfg.family.collision_one(THRESHOLD);
    let q = 1.0 - p.powi(cfg.band_width as i32);
    cfg.lsh_fnr = (q.powi(target_bands as i32) * 1.01).min(0.99);
    let plan = cfg.banding_plan();
    assert_eq!(
        plan.params.l, target_bands,
        "fnr inversion must land on the requested band count"
    );
    cfg
}

/// Pooled candidate recall of self-queries against brute-force cosine
/// truth, plus the total probes and queries issued. Exact verification,
/// so the output *is* the candidate set restricted to the truth.
fn pooled_recall(make_cfg: impl Fn() -> PipelineConfig, probes_per_band: u64) -> (usize, usize) {
    let (mut hits, mut truth) = (0, 0);
    for s in 0..N_SEEDS {
        let data = corpus(800 + s);
        let mut cfg = make_cfg();
        cfg.seed = 42 + s; // a fresh hash family per trial
        let bands = cfg.banding_plan().params.l as u64;
        let searcher = Searcher::builder(cfg)
            .algorithm(Algorithm::Lsh)
            .build(data.clone())
            .unwrap();
        for qid in 0..data.len() as u32 {
            let q = data.vector(qid).clone();
            let out = searcher.query(&q, THRESHOLD).unwrap();
            assert_eq!(
                out.stats.bucket_probes,
                bands * probes_per_band,
                "seed {s} query {qid}: probe accounting"
            );
            let found: std::collections::HashSet<u32> =
                out.neighbors.iter().map(|&(id, _)| id).collect();
            for (id, v) in data.iter() {
                if id != qid && cosine(&q, v) >= THRESHOLD {
                    truth += 1;
                    if found.contains(&id) {
                        hits += 1;
                    }
                }
            }
        }
    }
    (hits, truth)
}

#[test]
fn multi_probe_at_half_the_bands_matches_single_probe_recall() {
    let full_bands = PipelineConfig::cosine(THRESHOLD).banding_plan().params.l;
    assert!(full_bands >= 8, "paper defaults give a real band count");
    let half_bands = full_bands / 2;
    let probe_budget = |cfg: &PipelineConfig| (cfg.band_width + 1) as u64;

    // Reference: the paper-default index, classic single-probe.
    let (full_hits, full_truth) = pooled_recall(|| PipelineConfig::cosine(THRESHOLD), 1);
    assert!(
        full_truth >= 500,
        "need statistical power: {full_truth} true neighbor events"
    );
    let full_recall = full_hits as f64 / full_truth as f64;

    // Half the bands, single-probe: strictly cheaper index, visibly worse
    // recall — the gap multi-probe must close.
    let (half_hits, half_truth) = pooled_recall(|| config_with_bands(half_bands), 1);
    let half_recall = half_hits as f64 / half_truth as f64;

    // Half the bands, full per-band flip budget.
    let (multi_hits, multi_truth) = pooled_recall(
        || {
            let mut cfg = config_with_bands(half_bands);
            cfg.probes = probe_budget(&cfg) as usize;
            cfg
        },
        probe_budget(&PipelineConfig::cosine(THRESHOLD)),
    );
    let multi_recall = multi_hits as f64 / multi_truth as f64;

    assert_eq!(full_truth, half_truth);
    assert_eq!(full_truth, multi_truth);
    assert!(
        multi_recall > half_recall,
        "the probe budget must buy recall at a fixed band count: \
         multi {multi_recall:.4} vs single {half_recall:.4} at {half_bands} bands"
    );
    // The headline claim: B/2 bands + multi-probe reaches B bands'
    // single-probe recall within ε.
    let epsilon = 0.02;
    assert!(
        multi_recall >= full_recall - epsilon,
        "multi-probe at {half_bands} bands: recall {multi_recall:.4} vs \
         single-probe at {full_bands} bands: {full_recall:.4} (ε = {epsilon})"
    );
}

#[test]
fn probe_budget_is_clamped_to_the_meaningful_flips() {
    // probes beyond k + 1 (the base bucket plus one flip per band bit)
    // cannot produce new keys; the accounting must show the clamp.
    let data = corpus(900);
    let mut cfg = PipelineConfig::cosine(THRESHOLD);
    cfg.probes = 10_000;
    let searcher = Searcher::builder(cfg).build(data.clone()).unwrap();
    let bands = searcher.banding_plan().params.l as u64;
    let q = data.vector(0).clone();
    let out = searcher.query(&q, THRESHOLD).unwrap();
    assert_eq!(out.stats.bucket_probes, bands * (cfg.band_width as u64 + 1));
}

#[test]
fn single_probe_multi_probe_outputs_agree_on_found_neighbors() {
    // Multi-probe only *adds* candidate buckets: every neighbor a
    // single-probe query reports must appear, at the bit-identical
    // similarity, in the multi-probe result.
    let data = corpus(901);
    let mut cfg = PipelineConfig::cosine(THRESHOLD);
    cfg.parallelism = Parallelism::serial();
    let single = Searcher::builder(cfg)
        .algorithm(Algorithm::Lsh)
        .build(data.clone())
        .unwrap();
    cfg.probes = 4;
    let multi = Searcher::builder(cfg)
        .algorithm(Algorithm::Lsh)
        .build(data.clone())
        .unwrap();
    for qid in (0..data.len() as u32).step_by(5) {
        let q = data.vector(qid).clone();
        let a = single.query(&q, THRESHOLD).unwrap();
        let b = multi.query(&q, THRESHOLD).unwrap();
        assert!(b.stats.candidates >= a.stats.candidates, "query {qid}");
        assert!(b.stats.bucket_probes > a.stats.bucket_probes, "query {qid}");
        let got: std::collections::HashMap<u32, u64> = b
            .neighbors
            .iter()
            .map(|&(id, s)| (id, s.to_bits()))
            .collect();
        for &(id, s) in &a.neighbors {
            assert_eq!(
                got.get(&id),
                Some(&s.to_bits()),
                "query {qid}: single-probe neighbor {id} lost or re-scored"
            );
        }
    }
}
