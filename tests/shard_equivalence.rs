//! The sharded-serving contract: a [`ShardedSearcher`] over N disjoint
//! shards must be **bit-identical** — pairs, similarities, statistics,
//! all in global ids — to a single [`Searcher`] built over the
//! unpartitioned corpus, for every algorithm composition, at any shard
//! count, at any thread budget. Plus: inserts route to the right shard
//! and stay equivalent, hot-swap reload serves the old generation until
//! the swap and the new one after, a failed reload leaves serving
//! untouched, and corrupting any byte of the manifest or any shard
//! snapshot yields a typed [`ShardError`] — never a panic, never a
//! silent mis-merge.

use std::path::PathBuf;
use std::sync::OnceLock;

use bayeslsh::prelude::*;
use proptest::prelude::*;

mod support;
use support::{all_compositions, supports_weighted};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];
const THREAD_BUDGETS: [u32; 2] = [1, 4];

/// Clustered corpus with planted near-duplicates (weighted vectors).
fn corpus(seed: u64) -> Dataset {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut d = Dataset::new(3000);
    for c in 0..8 {
        let center: Vec<(u32, f32)> = (0..30)
            .map(|_| {
                (
                    (c * 300 + rng.next_below(280) as usize) as u32,
                    (rng.next_f64() + 0.3) as f32,
                )
            })
            .collect();
        for _ in 0..5 {
            let mut pairs = center.clone();
            for p in pairs.iter_mut() {
                if rng.next_bool(0.2) {
                    *p = (rng.next_below(3000) as u32, (rng.next_f64() + 0.3) as f32);
                }
            }
            d.push(SparseVector::from_pairs(pairs));
        }
    }
    d
}

/// A fresh scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bayeslsh-shard-eq-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn neighbor_bits(n: &[(u32, f64)]) -> Vec<(u32, u64)> {
    n.iter().map(|&(id, s)| (id, s.to_bits())).collect()
}

fn pair_bits(p: &[(u32, u32, f64)]) -> Vec<(u32, u32, u64)> {
    p.iter().map(|&(a, b, s)| (a, b, s.to_bits())).collect()
}

/// Scatter-gather sends the query's band keys to every shard, so the
/// merged bucket-probe count is exactly `n_shards ×` the single index's;
/// every other counter partitions and must match bit for bit.
fn assert_query_stats_match(sharded: QueryStats, single: QueryStats, n_shards: u64, ctx: &str) {
    let mut scaled = single;
    scaled.bucket_probes *= n_shards;
    assert_eq!(sharded, scaled, "{ctx}");
}

/// Build `data` into `n_shards` shards and assert every serving surface
/// (batch join, threshold queries, top-k) is bit-identical to a single
/// index over the same corpus at the given thread budget.
fn assert_equivalent(
    comp: Composition,
    data: &Dataset,
    cfg: PipelineConfig,
    n_shards: usize,
    threads: u32,
    tag: &str,
) {
    let ctx = format!("{comp} × {n_shards} shards × {threads} threads");
    let slug: String = comp
        .to_string()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let dir = scratch(&format!("{tag}-{slug}-{n_shards}-{threads}"));
    let par = Parallelism::threads(threads);
    ShardBuilder::new(cfg)
        .composition(comp)
        .shards(n_shards)
        .partition(PartitionFn::Hashed { seed: 11 })
        .parallelism(par)
        .build_to_dir(data, &dir)
        .unwrap_or_else(|e| panic!("{ctx}: build failed: {e}"));
    let sharded =
        ShardedSearcher::open_with(&dir.join(MANIFEST_FILE), par, LoadPolicy::Eager).unwrap();
    let single = Searcher::builder(cfg)
        .composition(comp)
        .parallelism(par)
        .build(data.clone())
        .unwrap();

    // Batch join: pairs in canonical order, bit for bit, same
    // candidate count.
    let a = sharded.all_pairs().unwrap();
    let b = single.all_pairs().unwrap();
    assert_eq!(pair_bits(&a.pairs), pair_bits(&b.pairs), "{ctx}: all_pairs");
    assert_eq!(a.candidates, b.candidates, "{ctx}: all_pairs candidates");

    // Point queries: neighbours and statistics.
    for qid in [0u32, 17, 33] {
        let q = data.vector(qid).clone();
        let sa = sharded.query(&q, cfg.threshold).unwrap();
        let sb = single.query(&q, cfg.threshold).unwrap();
        assert_eq!(
            neighbor_bits(&sa.neighbors),
            neighbor_bits(&sb.neighbors),
            "{ctx}: query {qid}"
        );
        assert_query_stats_match(
            sa.stats,
            sb.stats,
            n_shards as u64,
            &format!("{ctx}: query {qid} stats"),
        );

        let ka = sharded.top_k(&q, 5, &KnnParams::default()).unwrap();
        let kb = single.top_k(&q, 5, &KnnParams::default()).unwrap();
        assert_eq!(
            neighbor_bits(&ka.neighbors),
            neighbor_bits(&kb.neighbors),
            "{ctx}: top_k {qid}"
        );
        assert_eq!(ka.stats, kb.stats, "{ctx}: top_k {qid} stats");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every named composition (the paper's eight plus the SPRT verifier) ×
/// every shard count × every thread budget, under Jaccard (the only
/// measure every composition supports).
#[test]
fn jaccard_all_compositions_bit_identical_across_shards_and_threads() {
    let data = corpus(401).binarized();
    let cfg = PipelineConfig::jaccard(0.5);
    for comp in all_compositions() {
        for n_shards in SHARD_COUNTS {
            for threads in THREAD_BUDGETS {
                assert_equivalent(comp, &data, cfg, n_shards, threads, "jac");
            }
        }
    }
}

/// The weighted-cosine compositions across the same grid (reduced shard
/// axis — the full one runs under Jaccard above).
#[test]
fn cosine_compositions_bit_identical_across_shards_and_threads() {
    let data = corpus(402);
    let cfg = PipelineConfig::cosine(0.7);
    for comp in all_compositions() {
        if !supports_weighted(comp) {
            continue; // PPJoin+ is binary-only; covered by the Jaccard grid.
        }
        for n_shards in [2usize, 7] {
            for threads in THREAD_BUDGETS {
                assert_equivalent(comp, &data, cfg, n_shards, threads, "cos");
            }
        }
    }
}

/// Inserts route through the manifest's partition function to the
/// owning shard, receive the same global ids a single index would
/// assign, and leave every surface — including the batch join's merged
/// index, built *before* the inserts — bit-identical.
#[test]
fn insert_into_shard_then_query_stays_equivalent() {
    let data = corpus(403);
    let cfg = PipelineConfig::cosine(0.7);
    let dir = scratch("insert");
    let par = Parallelism::threads(4);
    ShardBuilder::new(cfg)
        .algorithm(Algorithm::LshBayesLshLite)
        .shards(3)
        .partition(PartitionFn::Hashed { seed: 5 })
        .parallelism(par)
        .build_to_dir(&data, &dir)
        .unwrap();
    let sharded =
        ShardedSearcher::open_with(&dir.join(MANIFEST_FILE), par, LoadPolicy::Eager).unwrap();
    let mut single = Searcher::builder(cfg)
        .algorithm(Algorithm::LshBayesLshLite)
        .parallelism(par)
        .build(data.clone())
        .unwrap();

    // Force the merged batch-join index to exist before inserting, so
    // the insert-sync path is what's under test.
    assert_eq!(
        pair_bits(&sharded.all_pairs().unwrap().pairs),
        pair_bits(&single.all_pairs().unwrap().pairs)
    );

    for qid in [2u32, 19, 33] {
        let v = data.vector(qid).clone();
        let a = sharded.insert(v.clone()).unwrap();
        let b = single.insert(v).unwrap();
        assert_eq!(a, b, "sharded and single must assign the same global id");
    }
    assert_eq!(sharded.len(), single.len());

    for qid in [2u32, 19, 33, 39] {
        let q = data.vector(qid).clone();
        let sa = sharded.query(&q, 0.7).unwrap();
        let sb = single.query(&q, 0.7).unwrap();
        assert_eq!(neighbor_bits(&sa.neighbors), neighbor_bits(&sb.neighbors));
        assert_query_stats_match(sa.stats, sb.stats, 3, &format!("insert: query {qid}"));
        let ka = sharded.top_k(&q, 4, &KnnParams::default()).unwrap();
        let kb = single.top_k(&q, 4, &KnnParams::default()).unwrap();
        assert_eq!(neighbor_bits(&ka.neighbors), neighbor_bits(&kb.neighbors));
        assert_eq!(ka.stats, kb.stats);
    }

    // The merged join index was kept in sync by the inserts.
    let a = sharded.all_pairs().unwrap();
    let b = single.all_pairs().unwrap();
    assert_eq!(pair_bits(&a.pairs), pair_bits(&b.pairs));

    let _ = std::fs::remove_dir_all(&dir);
}

/// Removes route through the id map to the owning shard, stay
/// bit-identical to a single index applying the same removals, and the
/// compacted shards round-trip through their snapshots under the same
/// manifest partition (ids are stable across compaction).
#[test]
fn remove_and_compact_stay_equivalent_and_roundtrip_snapshots() {
    let data = corpus(409);
    let cfg = PipelineConfig::cosine(0.7);
    let dir = scratch("remove");
    let par = Parallelism::threads(2);
    ShardBuilder::new(cfg)
        .algorithm(Algorithm::LshBayesLshLite)
        .shards(3)
        .partition(PartitionFn::Hashed { seed: 5 })
        .parallelism(par)
        .build_to_dir(&data, &dir)
        .unwrap();
    let sharded =
        ShardedSearcher::open_with(&dir.join(MANIFEST_FILE), par, LoadPolicy::Eager).unwrap();
    let mut single = Searcher::builder(cfg)
        .algorithm(Algorithm::LshBayesLshLite)
        .parallelism(par)
        .build(data.clone())
        .unwrap();

    // Build the merged batch-join index first so the remove-sync path is
    // exercised too.
    assert_eq!(
        pair_bits(&sharded.all_pairs().unwrap().pairs),
        pair_bits(&single.all_pairs().unwrap().pairs)
    );

    for victim in [4u32, 17, 31] {
        assert!(sharded.remove(victim).unwrap());
        assert!(single.remove(victim).unwrap());
        assert!(!sharded.remove(victim).unwrap(), "double remove is a no-op");
    }
    assert_eq!(sharded.pending_removals(), 3);
    assert!(matches!(
        sharded.remove(data.len() as u32 + 50),
        Err(ShardError::Search(_))
    ));

    let compare = |sharded: &ShardedSearcher, single: &Searcher, what: &str| {
        for qid in [0u32, 4, 17, 31, 39] {
            let q = data.vector(qid).clone();
            let sa = sharded.query(&q, 0.7).unwrap();
            let sb = single.query(&q, 0.7).unwrap();
            assert_eq!(
                neighbor_bits(&sa.neighbors),
                neighbor_bits(&sb.neighbors),
                "{what}: query {qid}"
            );
            let ka = sharded.top_k(&q, 4, &KnnParams::default()).unwrap();
            let kb = single.top_k(&q, 4, &KnnParams::default()).unwrap();
            assert_eq!(
                neighbor_bits(&ka.neighbors),
                neighbor_bits(&kb.neighbors),
                "{what}: top_k {qid}"
            );
        }
    };
    compare(&sharded, &single, "tombstoned");

    // Compaction reclaims the tombstones on every surface, including the
    // merged join index, and results are unchanged.
    assert_eq!(sharded.compact(), 3);
    assert_eq!(single.compact(), 3);
    assert_eq!(sharded.pending_removals(), 0);
    assert_eq!(sharded.len(), single.len(), "ids stay stable");
    compare(&sharded, &single, "compacted");
    assert_eq!(
        pair_bits(&sharded.all_pairs().unwrap().pairs),
        pair_bits(&single.all_pairs().unwrap().pairs)
    );

    // Round-trip: save the compacted shards under the same manifest and
    // reopen; the reloaded set must serve the same bits.
    let manifest = ShardManifest::load(&dir.join(MANIFEST_FILE)).unwrap();
    let mut doctored = manifest.clone();
    let generation = sharded.generation();
    for (s, entry) in doctored.shards.iter_mut().enumerate() {
        let mut buf = Vec::new();
        // Write each compacted shard searcher back out via the public
        // snapshot API, exactly as a re-shard job would.
        generation
            .with_searcher(s, |sr| sr.save(&mut buf))
            .unwrap()
            .unwrap();
        entry.checksum = bayeslsh::numeric::fnv1a_checksum(&buf);
        std::fs::write(dir.join(&entry.file), &buf).unwrap();
    }
    std::fs::write(dir.join(MANIFEST_FILE), doctored.to_bytes()).unwrap();
    let reopened =
        ShardedSearcher::open_with(&dir.join(MANIFEST_FILE), par, LoadPolicy::Eager).unwrap();
    compare(&reopened, &single, "reopened");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Hot swap: a sweep that grabs its generation keeps serving the old
/// corpus across a reload, new requests see the old corpus until the
/// swap, and the new generation's answers are bit-identical to a single
/// index over the new corpus.
#[test]
fn reload_mid_sweep_swaps_generations_atomically() {
    let cfg = PipelineConfig::cosine(0.7);
    let old_data = corpus(404);
    let new_data = corpus(405);
    let dir = scratch("reload");
    let par = Parallelism::threads(2);
    let build = |data: &Dataset, shards: usize| {
        ShardBuilder::new(cfg)
            .algorithm(Algorithm::LshBayesLshLite)
            .shards(shards)
            .parallelism(par)
            .build_to_dir(data, &dir)
            .unwrap()
    };
    build(&old_data, 3);
    let sharded =
        ShardedSearcher::open_with(&dir.join(MANIFEST_FILE), par, LoadPolicy::Eager).unwrap();
    let old_single = Searcher::builder(cfg)
        .algorithm(Algorithm::LshBayesLshLite)
        .parallelism(par)
        .build(old_data.clone())
        .unwrap();

    // First half of the sweep: old generation.
    for qid in [0u32, 9] {
        let q = old_data.vector(qid).clone();
        assert_eq!(
            neighbor_bits(&sharded.query(&q, 0.7).unwrap().neighbors),
            neighbor_bits(&old_single.query(&q, 0.7).unwrap().neighbors),
        );
    }

    // An in-flight holder of the old generation (what a query thread
    // owns mid-request).
    let held = sharded.generation();
    assert_eq!(held.ordinal(), 1);
    let old_manifest = held.manifest().clone();

    // Rebuild on disk with a different corpus AND shard count; the
    // serving set must not change until reload().
    build(&new_data, 5);
    assert_eq!(sharded.generation().ordinal(), 1);
    assert_eq!(sharded.shard_count(), 3);

    assert_eq!(sharded.reload().unwrap(), 2);
    assert_eq!(sharded.shard_count(), 5);

    // Second half of the sweep: new generation, still bit-identical.
    let new_single = Searcher::builder(cfg)
        .algorithm(Algorithm::LshBayesLshLite)
        .parallelism(par)
        .build(new_data.clone())
        .unwrap();
    for qid in [0u32, 9, 21] {
        let q = new_data.vector(qid).clone();
        let sa = sharded.query(&q, 0.7).unwrap();
        let sb = new_single.query(&q, 0.7).unwrap();
        assert_eq!(neighbor_bits(&sa.neighbors), neighbor_bits(&sb.neighbors));
        assert_query_stats_match(sa.stats, sb.stats, 5, &format!("reload: query {qid}"));
    }

    // The held (old) generation is untouched by the swap.
    assert_eq!(held.ordinal(), 1);
    assert_eq!(held.manifest(), &old_manifest);
    assert_eq!(held.shards_loaded(), 3);

    let _ = std::fs::remove_dir_all(&dir);
}

/// A reload that hits damage on disk must fail typed and leave the
/// current generation serving, bit-identically.
#[test]
fn failed_reload_keeps_the_current_generation_serving() {
    let cfg = PipelineConfig::cosine(0.7);
    let data = corpus(406);
    let dir = scratch("badreload");
    let par = Parallelism::threads(2);
    ShardBuilder::new(cfg)
        .algorithm(Algorithm::LshBayesLshLite)
        .shards(2)
        .parallelism(par)
        .build_to_dir(&data, &dir)
        .unwrap();
    let manifest_path = dir.join(MANIFEST_FILE);
    let sharded = ShardedSearcher::open_with(&manifest_path, par, LoadPolicy::Eager).unwrap();
    let single = Searcher::builder(cfg)
        .algorithm(Algorithm::LshBayesLshLite)
        .parallelism(par)
        .build(data.clone())
        .unwrap();

    // Damage the manifest on disk; reload must fail typed...
    let mut bytes = std::fs::read(&manifest_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&manifest_path, &bytes).unwrap();
    assert!(matches!(
        sharded.reload(),
        Err(ShardError::CorruptManifest { .. })
    ));

    // ...and the old generation keeps serving, still equivalent.
    assert_eq!(sharded.generation().ordinal(), 1);
    let q = data.vector(3).clone();
    assert_eq!(
        neighbor_bits(&sharded.query(&q, 0.7).unwrap().neighbors),
        neighbor_bits(&single.query(&q, 0.7).unwrap().neighbors),
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Lazy loading serves the same bits as eager, loading shards only as
/// queries touch them.
#[test]
fn lazy_load_policy_is_equivalent_and_lazy() {
    let cfg = PipelineConfig::cosine(0.7);
    let data = corpus(407);
    let dir = scratch("lazy");
    ShardBuilder::new(cfg)
        .algorithm(Algorithm::LshBayesLshLite)
        .shards(4)
        .build_to_dir(&data, &dir)
        .unwrap();
    let manifest_path = dir.join(MANIFEST_FILE);
    let lazy =
        ShardedSearcher::open_with(&manifest_path, Parallelism::threads(2), LoadPolicy::Lazy)
            .unwrap();
    let eager =
        ShardedSearcher::open_with(&manifest_path, Parallelism::threads(2), LoadPolicy::Eager)
            .unwrap();
    assert_eq!(lazy.generation().shards_loaded(), 0);
    assert_eq!(eager.generation().shards_loaded(), 4);

    let q = data.vector(0).clone();
    let a = lazy.query(&q, 0.7).unwrap();
    let b = eager.query(&q, 0.7).unwrap();
    assert_eq!(neighbor_bits(&a.neighbors), neighbor_bits(&b.neighbors));
    assert_eq!(a.stats, b.stats);
    assert_eq!(lazy.generation().shards_loaded(), 4);

    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Corruption properties: every flipped byte and every truncation of the
// manifest or any shard snapshot must surface as a typed ShardError at
// open — never a panic, never a successfully opened (mis-merging) set.
// ---------------------------------------------------------------------

/// A pristine sharded build, kept in memory: manifest bytes plus each
/// shard file's (name, bytes).
type PristineSet = (Vec<u8>, Vec<(String, Vec<u8>)>);

fn pristine() -> &'static PristineSet {
    static SET: OnceLock<PristineSet> = OnceLock::new();
    SET.get_or_init(|| {
        let dir = scratch("pristine");
        let manifest = ShardBuilder::new(PipelineConfig::cosine(0.7))
            .algorithm(Algorithm::LshBayesLshLite)
            .shards(3)
            .parallelism(Parallelism::serial())
            .build_to_dir(&corpus(408), &dir)
            .unwrap();
        let manifest_bytes = std::fs::read(dir.join(MANIFEST_FILE)).unwrap();
        let shards = manifest
            .shards
            .iter()
            .map(|s| (s.file.clone(), std::fs::read(dir.join(&s.file)).unwrap()))
            .collect();
        let _ = std::fs::remove_dir_all(&dir);
        (manifest_bytes, shards)
    })
}

/// Write the pristine set into a fresh directory, then apply `mutate`
/// to the chosen file (0 = manifest, 1.. = shards) and try to open.
fn open_mutated(
    target: usize,
    mutate: impl FnOnce(&mut Vec<u8>),
    tag: &str,
) -> Result<ShardedSearcher, ShardError> {
    let (manifest_bytes, shards) = pristine();
    let dir = scratch(tag);
    let mut manifest_bytes = manifest_bytes.clone();
    let mut shards = shards.clone();
    if target == 0 {
        mutate(&mut manifest_bytes);
    } else {
        let s = (target - 1) % shards.len();
        mutate(&mut shards[s].1);
    }
    std::fs::write(dir.join(MANIFEST_FILE), &manifest_bytes).unwrap();
    for (name, bytes) in &shards {
        std::fs::write(dir.join(name), bytes).unwrap();
    }
    let result = ShardedSearcher::open_with(
        &dir.join(MANIFEST_FILE),
        Parallelism::serial(),
        LoadPolicy::Eager,
    );
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// The typed-failure contract: reaching this function at all means no
/// panic happened; the result must be an `Err` of a typed variant.
fn assert_typed_failure(result: Result<ShardedSearcher, ShardError>, what: &str) {
    match result {
        Err(
            ShardError::BadMagic
            | ShardError::UnsupportedVersion { .. }
            | ShardError::CorruptManifest { .. }
            | ShardError::ShardChecksum { .. }
            | ShardError::ConfigFingerprint { .. }
            | ShardError::MissingShard { .. }
            | ShardError::Snapshot { .. }
            | ShardError::Io(_),
        ) => {}
        Err(ShardError::Search(e)) => panic!("{what}: corruption surfaced as a search error: {e}"),
        Ok(_) => panic!("{what}: corrupt shard set opened successfully"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flipping_any_byte_fails_typed(
        target in 0usize..4,
        offset in 0usize..1_000_000,
        mask in 1u8..=255,
    ) {
        let len = if target == 0 {
            pristine().0.len()
        } else {
            pristine().1[(target - 1) % pristine().1.len()].1.len()
        };
        let at = offset % len;
        let result = open_mutated(target, |bytes| bytes[at] ^= mask, "prop-flip");
        assert_typed_failure(result, &format!("flip target {target} byte {at} mask {mask:#04x}"));
    }

    #[test]
    fn truncating_any_file_fails_typed(
        target in 0usize..4,
        keep in 0usize..1_000_000,
    ) {
        let len = if target == 0 {
            pristine().0.len()
        } else {
            pristine().1[(target - 1) % pristine().1.len()].1.len()
        };
        let at = keep % len;
        let result = open_mutated(target, |bytes| bytes.truncate(at), "prop-trunc");
        assert_typed_failure(result, &format!("truncate target {target} to {at} bytes"));
    }
}

/// A missing shard file is its own typed error.
#[test]
fn missing_shard_file_fails_typed() {
    let (manifest_bytes, shards) = pristine();
    let dir = scratch("missing");
    std::fs::write(dir.join(MANIFEST_FILE), manifest_bytes).unwrap();
    // Write all shards but the last.
    for (name, bytes) in &shards[..shards.len() - 1] {
        std::fs::write(dir.join(name), bytes).unwrap();
    }
    let err = ShardedSearcher::open_with(
        &dir.join(MANIFEST_FILE),
        Parallelism::serial(),
        LoadPolicy::Eager,
    )
    .unwrap_err();
    assert!(matches!(err, ShardError::MissingShard { shard: 2, .. }));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mixing a shard from a different build is caught by the config
/// fingerprint (after its checksum is made to match, as an attacker or
/// a botched deploy script might).
#[test]
fn foreign_shard_is_caught() {
    let (manifest_bytes, shards) = pristine();
    // A shard built under a *different seed* — same corpus slice sizes.
    let dir = scratch("foreign");
    let mut cfg = PipelineConfig::cosine(0.7);
    cfg.seed = 999;
    ShardBuilder::new(cfg)
        .algorithm(Algorithm::LshBayesLshLite)
        .shards(3)
        .parallelism(Parallelism::serial())
        .build_to_dir(&corpus(408), &dir)
        .unwrap();
    let foreign = std::fs::read(dir.join("shard_0001.snap")).unwrap();
    let _ = std::fs::remove_dir_all(&dir);

    // Splice it into the pristine set with a *corrected* manifest
    // checksum entry, so only the fingerprint can catch the drift.
    let dir = scratch("foreign2");
    let manifest = ShardManifest::from_bytes(manifest_bytes).unwrap();
    let mut doctored = manifest.clone();
    doctored.shards[1].checksum = bayeslsh::numeric::fnv1a_checksum(&foreign);
    std::fs::write(dir.join(MANIFEST_FILE), doctored.to_bytes()).unwrap();
    for (s, (name, bytes)) in shards.iter().enumerate() {
        if s == 1 {
            std::fs::write(dir.join(name), &foreign).unwrap();
        } else {
            std::fs::write(dir.join(name), bytes).unwrap();
        }
    }
    let err = ShardedSearcher::open_with(
        &dir.join(MANIFEST_FILE),
        Parallelism::serial(),
        LoadPolicy::Eager,
    )
    .unwrap_err();
    assert!(matches!(
        err,
        ShardError::ConfigFingerprint { shard: 1, .. }
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
