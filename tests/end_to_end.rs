//! Cross-crate integration: datasets → candidate generation → BayesLSH
//! verification, on every preset family.

use bayeslsh::prelude::*;

/// A corpus small enough for exhaustive ground truth but structured enough
/// for non-trivial result sets.
fn weighted_corpus(seed: u64) -> Dataset {
    Preset::Rcv1.load(0.0015, seed)
}

#[test]
fn every_algorithm_runs_on_weighted_cosine() {
    let data = weighted_corpus(1);
    let cfg = PipelineConfig::cosine(0.7);
    let truth = ground_truth(&data, Measure::Cosine, 0.7);
    assert!(!truth.is_empty());
    for algo in Algorithm::ALL {
        if !algo.supports_weighted() {
            continue;
        }
        let out = run_algorithm(algo, &data, &cfg);
        let recall = recall_against(&truth, &out.pairs);
        let floor = if algo.is_exact() { 1.0 } else { 0.85 };
        assert!(recall >= floor, "{algo}: recall {recall}");
    }
}

#[test]
fn every_algorithm_runs_on_binary_jaccard() {
    let data = Preset::Twitter.load_binary(0.004, 2);
    let cfg = PipelineConfig::jaccard(0.4);
    let truth = ground_truth(&data, Measure::Jaccard, 0.4);
    assert!(!truth.is_empty());
    for algo in Algorithm::ALL {
        let out = run_algorithm(algo, &data, &cfg);
        let recall = recall_against(&truth, &out.pairs);
        let floor = if algo.is_exact() { 1.0 } else { 0.85 };
        assert!(recall >= floor, "{algo}: recall {recall}");
    }
}

#[test]
fn exact_algorithms_agree_on_binary_cosine() {
    let data = Preset::WikiWords500K.load_binary(0.0008, 3);
    let cfg = PipelineConfig::cosine(0.6);
    let ap = run_algorithm(Algorithm::AllPairs, &data, &cfg);
    let pp = run_algorithm(Algorithm::PpjoinPlus, &data, &cfg);
    let key = |v: &[(u32, u32, f64)]| {
        let mut k: Vec<(u32, u32)> = v.iter().map(|&(a, b, _)| (a, b)).collect();
        k.sort_unstable();
        k
    };
    assert_eq!(key(&ap.pairs), key(&pp.pairs));
}

#[test]
fn lite_never_reports_false_positives() {
    let data = weighted_corpus(4);
    let t = 0.6;
    let cfg = PipelineConfig::cosine(t);
    for algo in [Algorithm::ApBayesLshLite, Algorithm::LshBayesLshLite] {
        let out = run_algorithm(algo, &data, &cfg);
        for &(a, b, s) in &out.pairs {
            let exact = cosine(data.vector(a), data.vector(b));
            assert!(
                exact >= t,
                "{algo}: ({a},{b}) reported at {s} but exact is {exact}"
            );
            assert!(
                (exact - s).abs() < 1e-9,
                "{algo}: Lite must report exact similarities"
            );
        }
    }
}

#[test]
fn full_bayeslsh_respects_the_accuracy_contract() {
    let data = weighted_corpus(5);
    let cfg = PipelineConfig::cosine(0.6);
    let out = run_algorithm(Algorithm::ApBayesLsh, &data, &cfg);
    assert!(out.pairs.len() > 20);
    let err = estimate_errors(&out.pairs, &data, Measure::Cosine, cfg.delta);
    // Pr[|error| >= delta] < gamma, with slack for sampling noise.
    assert!(
        err.frac_above <= cfg.gamma + 0.07,
        "estimate errors above delta: {} of {}",
        err.frac_above,
        err.n
    );
}

#[test]
fn engine_stats_are_consistent_across_pipelines() {
    let data = weighted_corpus(6);
    let cfg = PipelineConfig::cosine(0.7);
    for algo in [Algorithm::ApBayesLsh, Algorithm::LshBayesLsh] {
        let out = run_algorithm(algo, &data, &cfg);
        let stats = out.engine.expect("bayes pipelines report stats");
        assert_eq!(stats.input_pairs, out.candidates);
        assert_eq!(stats.pruned + stats.accepted, stats.input_pairs);
        assert_eq!(stats.accepted as usize, out.pairs.len());
        let curve = stats.survivors_curve();
        assert_eq!(curve.first().unwrap().1, stats.input_pairs);
        assert_eq!(curve.last().unwrap().1, stats.input_pairs - stats.pruned);
    }
}

#[test]
fn jaccard_lite_on_graph_preset() {
    let data = Preset::WikiLinks.load_binary(0.0006, 7);
    let t = 0.5;
    let cfg = PipelineConfig::jaccard(t);
    let truth = ground_truth(&data, Measure::Jaccard, t);
    let out = run_algorithm(Algorithm::ApBayesLshLite, &data, &cfg);
    assert!(recall_against(&truth, &out.pairs) >= 0.9);
    for &(a, b, s) in &out.pairs {
        assert!((jaccard(data.vector(a), data.vector(b)) - s).abs() < 1e-12);
    }
}
