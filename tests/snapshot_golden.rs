//! Golden-fixture compatibility test: a snapshot committed at format
//! version 1 (`tests/fixtures/snapshot_v1.bin`) must keep loading, and
//! must keep producing results bit-identical to a freshly built searcher
//! over the same corpus and config. Any byte-layout change that forgets to
//! bump `SNAPSHOT_FORMAT_VERSION` — or any drift in the hash families,
//! banding plan, or candidate ordering that would silently invalidate
//! existing snapshots — fails here (and in CI's `snapshot-compat` job).
//!
//! To regenerate after an *intentional* format-version bump:
//!
//! ```text
//! cargo test --test snapshot_golden regenerate_golden_fixture -- --ignored
//! ```

use std::path::PathBuf;

use bayeslsh::prelude::*;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("snapshot_v1.bin")
}

/// The fixture's corpus: fixed here, independent of the dataset presets
/// (which are allowed to evolve).
fn fixture_corpus() -> Dataset {
    let mut rng = Xoshiro256::seed_from_u64(20_260_730);
    let mut d = Dataset::new(400);
    for c in 0..4 {
        let center: Vec<(u32, f32)> = (0..12)
            .map(|_| {
                (
                    (c * 100 + rng.next_below(90) as usize) as u32,
                    (rng.next_f64() + 0.3) as f32,
                )
            })
            .collect();
        for _ in 0..4 {
            let mut pairs = center.clone();
            for p in pairs.iter_mut() {
                if rng.next_bool(0.15) {
                    *p = (rng.next_below(400) as u32, (rng.next_f64() + 0.3) as f32);
                }
            }
            d.push(SparseVector::from_pairs(pairs));
        }
    }
    d
}

fn fixture_searcher() -> Searcher {
    Searcher::builder(PipelineConfig::cosine(0.7))
        .algorithm(Algorithm::LshBayesLshLite)
        .parallelism(Parallelism::serial())
        .build(fixture_corpus())
        .unwrap()
}

#[test]
fn golden_v1_fixture_loads_and_matches_a_fresh_build() {
    let bytes = std::fs::read(fixture_path()).expect(
        "tests/fixtures/snapshot_v1.bin missing — regenerate with \
         `cargo test --test snapshot_golden regenerate_golden_fixture -- --ignored`",
    );

    // Header probe: stable metadata.
    let header = SnapshotHeader::read(&bytes[..]).unwrap();
    assert_eq!(header.format_version, SNAPSHOT_FORMAT_VERSION);
    assert_eq!(header.measure, Measure::Cosine);
    assert_eq!(header.composition, Algorithm::LshBayesLshLite.composition());
    assert_eq!(header.n_vectors, 16);
    assert_eq!(header.threads, 1);

    // Full load, then bit-identical behaviour versus a fresh build.
    let loaded = Searcher::load(&bytes[..]).expect(
        "golden snapshot no longer loads — if the format changed on purpose, bump \
         SNAPSHOT_FORMAT_VERSION and regenerate the fixture",
    );
    let fresh = fixture_searcher();
    assert_eq!(loaded.hash_count(), fresh.hash_count());

    let (a, b) = (fresh.all_pairs().unwrap(), loaded.all_pairs().unwrap());
    assert_eq!(a.pairs.len(), b.pairs.len());
    for (x, y) in a.pairs.iter().zip(&b.pairs) {
        assert_eq!((x.0, x.1, x.2.to_bits()), (y.0, y.1, y.2.to_bits()));
    }

    for qid in 0..fresh.len() as u32 {
        let q = fresh.data().vector(qid).clone();
        let (x, y) = (
            fresh.query(&q, 0.7).unwrap(),
            loaded.query(&q, 0.7).unwrap(),
        );
        assert_eq!(x.stats, y.stats, "query {qid}");
        assert_eq!(x.neighbors.len(), y.neighbors.len(), "query {qid}");
        for (p, q) in x.neighbors.iter().zip(&y.neighbors) {
            assert_eq!((p.0, p.1.to_bits()), (q.0, q.1.to_bits()), "query {qid}");
        }
    }
}

#[test]
fn fixture_bytes_are_reproducible() {
    // The committed fixture must be exactly what today's writer emits for
    // the fixture build: if this drifts while the loader still accepts the
    // old bytes, the *writer* changed — which also requires a version bump
    // and a regenerated fixture.
    let bytes = std::fs::read(fixture_path()).expect("fixture missing");
    let mut now = Vec::new();
    fixture_searcher().save(&mut now).unwrap();
    assert_eq!(
        bytes, now,
        "serializer output drifted from the committed v1 fixture"
    );
}

/// Regenerates the committed fixture. Run explicitly (see module docs);
/// never runs in CI.
#[test]
#[ignore]
fn regenerate_golden_fixture() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    let mut bytes = Vec::new();
    fixture_searcher().save(&mut bytes).unwrap();
    std::fs::write(&path, &bytes).unwrap();
    println!("wrote {} ({} bytes)", path.display(), bytes.len());
}
