//! Golden-fixture compatibility test: a snapshot committed at format
//! version 1 (`tests/fixtures/snapshot_v1.bin`) must keep loading, and
//! must keep producing results bit-identical to a freshly built searcher
//! over the same corpus and config. Any byte-layout change that forgets to
//! bump `SNAPSHOT_FORMAT_VERSION` — or any drift in the hash families,
//! banding plan, or candidate ordering that would silently invalidate
//! existing snapshots — fails here (and in CI's `snapshot-compat` job).
//!
//! To regenerate after an *intentional* format-version bump:
//!
//! ```text
//! cargo test --test snapshot_golden regenerate_golden_fixture -- --ignored
//! ```

use std::path::PathBuf;

use bayeslsh::prelude::*;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("snapshot_v1.bin")
}

/// The fixture's corpus: fixed here, independent of the dataset presets
/// (which are allowed to evolve).
fn fixture_corpus() -> Dataset {
    let mut rng = Xoshiro256::seed_from_u64(20_260_730);
    let mut d = Dataset::new(400);
    for c in 0..4 {
        let center: Vec<(u32, f32)> = (0..12)
            .map(|_| {
                (
                    (c * 100 + rng.next_below(90) as usize) as u32,
                    (rng.next_f64() + 0.3) as f32,
                )
            })
            .collect();
        for _ in 0..4 {
            let mut pairs = center.clone();
            for p in pairs.iter_mut() {
                if rng.next_bool(0.15) {
                    *p = (rng.next_below(400) as u32, (rng.next_f64() + 0.3) as f32);
                }
            }
            d.push(SparseVector::from_pairs(pairs));
        }
    }
    d
}

fn fixture_searcher() -> Searcher {
    Searcher::builder(PipelineConfig::cosine(0.7))
        .algorithm(Algorithm::LshBayesLshLite)
        .parallelism(Parallelism::serial())
        .build(fixture_corpus())
        .unwrap()
}

#[test]
fn golden_v1_fixture_loads_and_matches_a_fresh_build() {
    let bytes = std::fs::read(fixture_path()).expect(
        "tests/fixtures/snapshot_v1.bin missing — regenerate with \
         `cargo test --test snapshot_golden regenerate_golden_fixture -- --ignored`",
    );

    // Header probe: stable metadata.
    let header = SnapshotHeader::read(&bytes[..]).unwrap();
    assert_eq!(header.format_version, SNAPSHOT_FORMAT_VERSION);
    assert_eq!(header.measure, Measure::Cosine);
    assert_eq!(header.composition, Algorithm::LshBayesLshLite.composition());
    assert_eq!(header.n_vectors, 16);
    assert_eq!(header.threads, 1);

    // Full load, then bit-identical behaviour versus a fresh build.
    let loaded = Searcher::load(&bytes[..]).expect(
        "golden snapshot no longer loads — if the format changed on purpose, bump \
         SNAPSHOT_FORMAT_VERSION and regenerate the fixture",
    );
    let fresh = fixture_searcher();
    assert_eq!(loaded.hash_count(), fresh.hash_count());

    let (a, b) = (fresh.all_pairs().unwrap(), loaded.all_pairs().unwrap());
    assert_eq!(a.pairs.len(), b.pairs.len());
    for (x, y) in a.pairs.iter().zip(&b.pairs) {
        assert_eq!((x.0, x.1, x.2.to_bits()), (y.0, y.1, y.2.to_bits()));
    }

    for qid in 0..fresh.len() as u32 {
        let q = fresh.data().vector(qid).clone();
        let (x, y) = (
            fresh.query(&q, 0.7).unwrap(),
            loaded.query(&q, 0.7).unwrap(),
        );
        assert_eq!(x.stats, y.stats, "query {qid}");
        assert_eq!(x.neighbors.len(), y.neighbors.len(), "query {qid}");
        for (p, q) in x.neighbors.iter().zip(&y.neighbors) {
            assert_eq!((p.0, p.1.to_bits()), (q.0, q.1.to_bits()), "query {qid}");
        }
    }
}

/// Strip the trailing config-section fields (the multi-probe budget, and
/// for L2 the bucket width) from a freshly written snapshot, producing the
/// exact byte stream the v1 writer emitted before those fields existed,
/// and fix up the section length and stream checksum accordingly.
fn strip_trailing_config_fields(bytes: &[u8], trailing: usize) -> Vec<u8> {
    // Fixed prefix: magic 8 + version 4 + four u8 tags + threads u32 +
    // sig_depth u32 + n_vectors u64 + dim u32 + total_hashes u64 = 44,
    // then the config section's id u16 + length u64.
    const LEN_AT: usize = 46;
    const PAYLOAD_AT: usize = 54;
    let len = u64::from_le_bytes(bytes[LEN_AT..LEN_AT + 8].try_into().unwrap()) as usize;
    let mut out = bytes[..PAYLOAD_AT + len - trailing].to_vec();
    out[LEN_AT..LEN_AT + 8].copy_from_slice(&((len - trailing) as u64).to_le_bytes());
    out.extend_from_slice(&bytes[PAYLOAD_AT + len..bytes.len() - 8]);
    let sum = bayeslsh::numeric::wire::fnv1a_checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

#[test]
fn legacy_fixture_without_trailing_config_fields_still_loads() {
    // The committed pre-multi-probe cosine fixture: genuine bytes from the
    // v1 writer before the trailing probes/family fields existed. They
    // must keep loading (defaulting to single-probe, SRP family) and keep
    // answering bit-identically to a fresh build.
    let legacy_path = fixture_path().with_file_name("snapshot_v1_legacy.bin");
    let bytes = std::fs::read(legacy_path).expect("legacy fixture missing");
    let loaded = Searcher::load(&bytes[..])
        .expect("pre-multi-probe v1 snapshots must keep loading unchanged");
    assert_eq!(loaded.config().probes, 1);
    assert_eq!(loaded.config().family, FamilyConfig::Cosine);
    let fresh = fixture_searcher();
    let (a, b) = (fresh.all_pairs().unwrap(), loaded.all_pairs().unwrap());
    assert_eq!(a.pairs.len(), b.pairs.len());
    for (x, y) in a.pairs.iter().zip(&b.pairs) {
        assert_eq!((x.0, x.1, x.2.to_bits()), (y.0, y.1, y.2.to_bits()));
    }
    // And the legacy bytes are exactly today's writer output minus the
    // trailing config fields (8 bytes of probe budget for cosine).
    let mut now = Vec::new();
    fresh.save(&mut now).unwrap();
    assert_eq!(strip_trailing_config_fields(&now, 8), bytes);
}

#[test]
fn legacy_jaccard_snapshot_still_loads() {
    // Same guarantee for the MinHash family: a snapshot byte stream
    // exactly as the pre-multi-probe v1 writer produced it still loads.
    let data = fixture_corpus().binarized();
    let built = Searcher::builder(PipelineConfig::jaccard(0.5))
        .algorithm(Algorithm::LshBayesLshLite)
        .parallelism(Parallelism::serial())
        .build(data)
        .unwrap();
    let mut now = Vec::new();
    built.save(&mut now).unwrap();
    let legacy = strip_trailing_config_fields(&now, 8);
    let loaded = Searcher::load(&legacy[..]).expect("legacy jaccard snapshot must load");
    assert_eq!(loaded.config().probes, 1);
    assert_eq!(loaded.config().family, FamilyConfig::Jaccard);
    let q = built.data().vector(0).clone();
    let (a, b) = (
        built.query(&q, 0.5).unwrap(),
        loaded.query(&q, 0.5).unwrap(),
    );
    assert_eq!(a.stats, b.stats);
    assert_eq!(neighborhood(&a.neighbors), neighborhood(&b.neighbors));
}

fn neighborhood(n: &[(u32, f64)]) -> Vec<(u32, u64)> {
    n.iter().map(|&(id, s)| (id, s.to_bits())).collect()
}

#[test]
fn l2_snapshot_round_trips_with_the_new_family_tag() {
    // The new family tag (measure 2, pool tag 2 = quantized projections)
    // round-trips through the same v1 container, carrying the bucket
    // width and probe budget in the config section's trailing fields.
    let built = Searcher::builder(PipelineConfig::l2(0.5, 4.0))
        .composition(Composition::new(
            GeneratorKind::LshBanding,
            VerifierKind::Sprt,
        ))
        .parallelism(Parallelism::serial())
        .build(fixture_corpus())
        .unwrap();
    let mut bytes = Vec::new();
    built.save(&mut bytes).unwrap();
    let header = SnapshotHeader::read(&bytes[..]).unwrap();
    assert_eq!(header.measure, Measure::L2);
    let loaded = Searcher::load(&bytes[..]).unwrap();
    assert_eq!(loaded.config().family, FamilyConfig::L2 { r: 4.0 });
    let q = built.data().vector(3).clone();
    let (a, b) = (
        built.query(&q, 0.5).unwrap(),
        loaded.query(&q, 0.5).unwrap(),
    );
    assert_eq!(a.stats, b.stats);
    assert_eq!(neighborhood(&a.neighbors), neighborhood(&b.neighbors));
    // An L2 snapshot that loses its bucket-width trailing field is
    // rejected as corrupt, never guessed at.
    let truncated = strip_trailing_config_fields(&bytes, 8);
    assert!(matches!(
        Searcher::load(&truncated[..]),
        Err(SnapshotError::Corrupt { .. })
    ));
}

#[test]
fn fixture_bytes_are_reproducible() {
    // The committed fixture must be exactly what today's writer emits for
    // the fixture build: if this drifts while the loader still accepts the
    // old bytes, the *writer* changed — which also requires a version bump
    // and a regenerated fixture.
    let bytes = std::fs::read(fixture_path()).expect("fixture missing");
    let mut now = Vec::new();
    fixture_searcher().save(&mut now).unwrap();
    assert_eq!(
        bytes, now,
        "serializer output drifted from the committed v1 fixture"
    );
}

/// Regenerates the committed fixture. Run explicitly (see module docs);
/// never runs in CI.
#[test]
#[ignore]
fn regenerate_golden_fixture() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    let mut bytes = Vec::new();
    fixture_searcher().save(&mut bytes).unwrap();
    std::fs::write(&path, &bytes).unwrap();
    println!("wrote {} ({} bytes)", path.display(), bytes.len());
}
