//! The online-serving consistency contract: under N concurrent readers
//! and one writer batching inserts and removes into published epochs,
//! every result a reader observes must be **bit-identical to some serial
//! prefix of the write log** — the exact answer a single-threaded
//! searcher gives after applying the first [`Epoch::applied`] write
//! operations and nothing else. Pinned for both the full-BayesLSH and
//! BayesLSH-Lite compositions, on both the threshold-query and top-k
//! surfaces.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bayeslsh::prelude::*;

const READERS: usize = 4;
const BATCHES: usize = 10;
const BATCH_INSERTS: usize = 3;

/// Clustered corpus with planted near-duplicates.
fn corpus(seed: u64) -> Dataset {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut d = Dataset::new(2000);
    for c in 0..6 {
        let center: Vec<(u32, f32)> = (0..25)
            .map(|_| {
                (
                    (c * 300 + rng.next_below(280) as usize) as u32,
                    (rng.next_f64() + 0.3) as f32,
                )
            })
            .collect();
        for _ in 0..5 {
            let mut pairs = center.clone();
            for p in pairs.iter_mut() {
                if rng.next_bool(0.2) {
                    *p = (rng.next_below(2000) as u32, (rng.next_f64() + 0.3) as f32);
                }
            }
            d.push(SparseVector::from_pairs(pairs));
        }
    }
    d
}

/// One operation of the deterministic write log.
#[derive(Debug, Clone)]
enum WriteOp {
    Insert(SparseVector),
    Remove(u32),
    Compact,
}

/// The scripted write log: `BATCHES` batches of `BATCH_INSERTS` inserts
/// plus one remove of a distinct original id, with a compaction pass
/// spliced in halfway. Every remove hits a live id, so each op advances
/// the applied counter by exactly one and epoch boundaries land on known
/// prefix lengths.
fn write_log(extra: &Dataset) -> Vec<Vec<WriteOp>> {
    let mut batches = Vec::new();
    let mut next = 0usize;
    for batch in 0..BATCHES {
        let mut ops = Vec::new();
        for _ in 0..BATCH_INSERTS {
            ops.push(WriteOp::Insert(
                extra.vector((next % extra.len()) as u32).clone(),
            ));
            next += 1;
        }
        ops.push(WriteOp::Remove(batch as u32));
        if batch == BATCHES / 2 {
            ops.push(WriteOp::Compact);
        }
        batches.push(ops);
    }
    batches
}

fn build(algo: Algorithm, data: Dataset) -> Searcher {
    Searcher::builder(PipelineConfig::cosine(0.5))
        .algorithm(algo)
        .parallelism(Parallelism::serial())
        .build(data)
        .unwrap()
}

/// Apply ops to a plain searcher, single-threaded — the ground truth.
fn apply_serial(s: &mut Searcher, ops: &[WriteOp]) {
    for op in ops {
        match op {
            WriteOp::Insert(v) => {
                s.insert(v.clone()).unwrap();
            }
            WriteOp::Remove(id) => {
                assert!(s.remove(*id).unwrap(), "scripted remove must hit a live id");
            }
            WriteOp::Compact => {
                assert!(s.compact() > 0, "scripted compact must reclaim");
            }
        }
    }
}

/// Per-probe `(id, similarity bits)` rows — the bit-exact result shape.
type ResultBits = Vec<Vec<(u32, u64)>>;

fn query_bits(s: &Searcher, probes: &[SparseVector]) -> ResultBits {
    probes
        .iter()
        .map(|q| {
            let mut rows: Vec<(u32, u64)> = s
                .query(q, 0.5)
                .unwrap()
                .neighbors
                .iter()
                .map(|&(id, sim)| (id, sim.to_bits()))
                .collect();
            let top: Vec<(u32, u64)> = s
                .top_k(q, 5, &KnnParams::default())
                .unwrap()
                .neighbors
                .iter()
                .map(|&(id, sim)| (id, sim.to_bits()))
                .collect();
            rows.extend(top);
            rows
        })
        .collect()
}

fn stress(algo: Algorithm) {
    let initial = corpus(501);
    let probes: Vec<SparseVector> = (0..4).map(|i| initial.vector(i * 7).clone()).collect();
    let log = write_log(&corpus(777));
    let serving = Arc::new(ServingSearcher::new(build(algo, initial.clone())));
    let stop = Arc::new(AtomicBool::new(false));

    // Concurrent phase: readers record (applied, result bits) while the
    // writer replays the scripted batches.
    let observations: Vec<(u64, ResultBits)> = std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..READERS {
            let serving = Arc::clone(&serving);
            let stop = Arc::clone(&stop);
            let probes = &probes;
            readers.push(scope.spawn(move || {
                let mut seen = Vec::new();
                loop {
                    let epoch = serving.epoch();
                    seen.push((epoch.applied(), query_bits(epoch.searcher(), probes)));
                    if stop.load(Ordering::Relaxed) {
                        // One final read after the writer finished, so the
                        // terminal epoch is always covered.
                        let last = serving.epoch();
                        seen.push((last.applied(), query_bits(last.searcher(), probes)));
                        return seen;
                    }
                }
            }));
        }
        for ops in &log {
            for op in ops {
                match op {
                    WriteOp::Insert(v) => {
                        serving.insert(v.clone()).unwrap();
                    }
                    WriteOp::Remove(id) => {
                        assert!(serving.remove(*id).unwrap());
                    }
                    WriteOp::Compact => {
                        assert!(serving.compact() > 0);
                    }
                }
            }
            serving.publish();
        }
        stop.store(true, Ordering::Relaxed);
        readers
            .into_iter()
            .flat_map(|h| h.join().expect("reader thread panicked"))
            .collect()
    });

    // Epochs land only on batch boundaries, so the applied counter must
    // always be a scripted prefix length.
    let flat: Vec<WriteOp> = log.iter().flatten().cloned().collect();
    let mut boundaries = vec![0u64];
    let mut acc = 0u64;
    for ops in &log {
        acc += ops.len() as u64;
        boundaries.push(acc);
    }
    let mut by_prefix: BTreeMap<u64, ResultBits> = BTreeMap::new();
    for (applied, bits) in observations {
        assert!(
            boundaries.contains(&applied),
            "{algo}: reader saw a torn epoch at applied={applied} (boundaries {boundaries:?})"
        );
        if let Some(prev) = by_prefix.get(&applied) {
            assert_eq!(
                prev, &bits,
                "{algo}: two reads of the same epoch (applied={applied}) disagreed"
            );
        } else {
            by_prefix.insert(applied, bits);
        }
    }
    assert!(
        by_prefix.len() > 1,
        "{algo}: readers only ever saw one epoch — no concurrency exercised"
    );
    assert!(
        by_prefix.contains_key(boundaries.last().unwrap()),
        "{algo}: the terminal epoch was never observed"
    );

    // Serial replay: every observed epoch must be bit-identical to a
    // single-threaded searcher that applied exactly that prefix.
    for (&applied, bits) in &by_prefix {
        let mut serial = build(algo, initial.clone());
        apply_serial(&mut serial, &flat[..applied as usize]);
        assert_eq!(
            &query_bits(&serial, &probes),
            bits,
            "{algo}: epoch applied={applied} diverged from its serial prefix"
        );
    }
}

#[test]
fn bayeslsh_epochs_match_serial_prefixes_under_stress() {
    stress(Algorithm::LshBayesLsh);
}

#[test]
fn bayeslsh_lite_epochs_match_serial_prefixes_under_stress() {
    stress(Algorithm::LshBayesLshLite);
}
