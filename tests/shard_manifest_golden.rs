//! Golden-fixture compatibility test for the sharded-serving artifacts:
//! a shard set committed at manifest format version 1
//! (`tests/fixtures/shard_manifest_v1/`) must keep opening, and must
//! keep serving results bit-identical to a single searcher freshly
//! built over the same corpus. Any layout change to the manifest or the
//! per-shard snapshots that forgets to bump the corresponding format
//! version — or any drift in the partition function, the config
//! fingerprint, or the scatter-gather merge order — fails here (and in
//! CI's `shard-compat` job).
//!
//! To regenerate after an *intentional* format-version bump:
//!
//! ```text
//! cargo test --test shard_manifest_golden regenerate_golden_fixture -- --ignored
//! ```

use std::path::PathBuf;

use bayeslsh::prelude::*;

const FIXTURE_SHARDS: usize = 3;
const FIXTURE_PARTITION: PartitionFn = PartitionFn::Hashed { seed: 9 };

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("shard_manifest_v1")
}

/// The fixture's corpus: fixed here, independent of the dataset presets
/// (which are allowed to evolve).
fn fixture_corpus() -> Dataset {
    let mut rng = Xoshiro256::seed_from_u64(20_260_806);
    let mut d = Dataset::new(400);
    for c in 0..4 {
        let center: Vec<(u32, f32)> = (0..12)
            .map(|_| {
                (
                    (c * 100 + rng.next_below(90) as usize) as u32,
                    (rng.next_f64() + 0.3) as f32,
                )
            })
            .collect();
        for _ in 0..5 {
            let mut pairs = center.clone();
            for p in pairs.iter_mut() {
                if rng.next_bool(0.15) {
                    *p = (rng.next_below(400) as u32, (rng.next_f64() + 0.3) as f32);
                }
            }
            d.push(SparseVector::from_pairs(pairs));
        }
    }
    d
}

fn fixture_builder() -> ShardBuilder {
    ShardBuilder::new(PipelineConfig::cosine(0.7))
        .algorithm(Algorithm::LshBayesLshLite)
        .shards(FIXTURE_SHARDS)
        .partition(FIXTURE_PARTITION)
        .parallelism(Parallelism::serial())
}

#[test]
fn golden_v1_shard_set_opens_and_matches_a_fresh_build() {
    let manifest_path = fixture_dir().join(MANIFEST_FILE);
    let manifest = ShardManifest::load(&manifest_path).expect(
        "tests/fixtures/shard_manifest_v1/ missing or unreadable — regenerate with \
         `cargo test --test shard_manifest_golden regenerate_golden_fixture -- --ignored`",
    );
    assert_eq!(manifest.shard_count(), FIXTURE_SHARDS);
    assert_eq!(manifest.partition, FIXTURE_PARTITION);
    assert_eq!(manifest.n_total, 20);
    assert_eq!(manifest.dim, 400);

    let sharded =
        ShardedSearcher::open_with(&manifest_path, Parallelism::serial(), LoadPolicy::Eager)
            .expect(
                "golden shard set no longer opens — if the manifest or snapshot format changed \
         on purpose, bump the format version and regenerate the fixture",
            );
    let fresh = Searcher::builder(PipelineConfig::cosine(0.7))
        .algorithm(Algorithm::LshBayesLshLite)
        .parallelism(Parallelism::serial())
        .build(fixture_corpus())
        .unwrap();

    let (a, b) = (sharded.all_pairs().unwrap(), fresh.all_pairs().unwrap());
    assert_eq!(a.pairs.len(), b.pairs.len());
    for (x, y) in a.pairs.iter().zip(&b.pairs) {
        assert_eq!((x.0, x.1, x.2.to_bits()), (y.0, y.1, y.2.to_bits()));
    }

    for qid in 0..fresh.len() as u32 {
        let q = fresh.data().vector(qid).clone();
        let (x, y) = (
            sharded.query(&q, 0.7).unwrap(),
            fresh.query(&q, 0.7).unwrap(),
        );
        // Scatter-gather probes every shard's buckets, so the merged
        // probe count is shards × the single index's; everything else
        // matches bit for bit.
        let mut scaled = y.stats;
        scaled.bucket_probes *= FIXTURE_SHARDS as u64;
        assert_eq!(x.stats, scaled, "query {qid}");
        assert_eq!(x.neighbors.len(), y.neighbors.len(), "query {qid}");
        for (p, r) in x.neighbors.iter().zip(&y.neighbors) {
            assert_eq!((p.0, p.1.to_bits()), (r.0, r.1.to_bits()), "query {qid}");
        }

        let (x, y) = (
            sharded.top_k(&q, 4, &KnnParams::default()).unwrap(),
            fresh.top_k(&q, 4, &KnnParams::default()).unwrap(),
        );
        assert_eq!(x.stats, y.stats, "top_k {qid}");
        for (p, r) in x.neighbors.iter().zip(&y.neighbors) {
            assert_eq!((p.0, p.1.to_bits()), (r.0, r.1.to_bits()), "top_k {qid}");
        }
    }
}

#[test]
fn fixture_bytes_are_reproducible() {
    // The committed fixture must be exactly what today's builder emits
    // for the fixture corpus: if this drifts while the opener still
    // accepts the old bytes, a *writer* changed — which also requires a
    // version bump and a regenerated fixture.
    let dir = std::env::temp_dir().join(format!("bayeslsh-shard-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let manifest = fixture_builder()
        .build_to_dir(&fixture_corpus(), &dir)
        .unwrap();

    let committed = std::fs::read(fixture_dir().join(MANIFEST_FILE)).expect("fixture missing");
    let now = std::fs::read(dir.join(MANIFEST_FILE)).unwrap();
    assert_eq!(
        committed, now,
        "manifest writer output drifted from the committed v1 fixture"
    );
    for entry in &manifest.shards {
        let committed = std::fs::read(fixture_dir().join(&entry.file)).expect("shard missing");
        let now = std::fs::read(dir.join(&entry.file)).unwrap();
        assert_eq!(
            committed, now,
            "shard snapshot {} drifted from the committed v1 fixture",
            entry.file
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regenerates the committed fixture. Run explicitly (see module docs);
/// never runs in CI.
#[test]
#[ignore]
fn regenerate_golden_fixture() {
    let dir = fixture_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let manifest = fixture_builder()
        .build_to_dir(&fixture_corpus(), &dir)
        .unwrap();
    println!(
        "wrote {} ({} shards, {} vectors)",
        dir.display(),
        manifest.shard_count(),
        manifest.n_total
    );
}
