//! Shared fixtures for the cross-cutting equivalence suites: the single
//! source of truth for which compositions the parallel / snapshot / shard
//! matrices must cover.
#![allow(dead_code)] // each test binary uses the subset it needs

use bayeslsh::prelude::*;

/// Every named composition the equivalence matrices cover: the paper's
/// eight algorithms plus the off-grid SPRT verifier over LSH banding.
pub fn all_compositions() -> Vec<Composition> {
    let mut comps: Vec<Composition> = Algorithm::ALL.iter().map(|a| a.composition()).collect();
    comps.push(Composition::new(
        GeneratorKind::LshBanding,
        VerifierKind::Sprt,
    ));
    comps
}

/// The named [`Algorithm`] a composition is a point of, if any — the SPRT
/// composition sits off the paper's eight-point grid.
pub fn algorithm_for(comp: Composition) -> Option<Algorithm> {
    Algorithm::ALL.into_iter().find(|a| a.composition() == comp)
}

/// Whether a composition can verify weighted (non-binary) vectors.
pub fn supports_weighted(comp: Composition) -> bool {
    algorithm_for(comp).map_or(true, |a| a.supports_weighted())
}

/// One-shot batch run of an arbitrary composition — [`run_algorithm`] for
/// points off the named grid (same context shape, same seeds).
pub fn run_comp(comp: Composition, data: &Dataset, cfg: &PipelineConfig) -> CompositionOutput {
    let mut pool = SigPool::for_config(cfg, data);
    let mut ctx = SearchContext {
        data,
        cfg,
        pool: &mut pool,
        index: None,
    };
    run_composition(comp, &mut ctx).unwrap_or_else(|e| panic!("{comp} failed: {e}"))
}
