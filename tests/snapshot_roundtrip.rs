//! Round-trip equivalence suite for index snapshots: for **every named
//! composition** (the paper's eight plus the SPRT verifier), at thread
//! budgets {1, 4}, a searcher that went through `save` → `load` must
//! behave **bit-identically** to the never-persisted searcher it was saved
//! from — batch joins, threshold queries, top-k, and insert-then-query,
//! including every counter.

use bayeslsh::prelude::*;

mod support;
use support::{all_compositions, supports_weighted};

/// Clustered corpus with planted near-duplicates (weighted vectors).
fn corpus(seed: u64) -> Dataset {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut d = Dataset::new(2000);
    for c in 0..8 {
        let center: Vec<(u32, f32)> = (0..25)
            .map(|_| {
                (
                    (c * 240 + rng.next_below(220) as usize) as u32,
                    (rng.next_f64() + 0.3) as f32,
                )
            })
            .collect();
        for _ in 0..5 {
            let mut pairs = center.clone();
            for p in pairs.iter_mut() {
                if rng.next_bool(0.2) {
                    *p = (rng.next_below(2000) as u32, (rng.next_f64() + 0.3) as f32);
                }
            }
            d.push(SparseVector::from_pairs(pairs));
        }
    }
    d
}

fn bits(pairs: &[(u32, u32, f64)]) -> Vec<(u32, u32, u64)> {
    pairs.iter().map(|&(a, b, s)| (a, b, s.to_bits())).collect()
}

fn neighbor_bits(n: &[(u32, f64)]) -> Vec<(u32, u64)> {
    n.iter().map(|&(id, s)| (id, s.to_bits())).collect()
}

/// Run the full operation mix on both searchers and demand bit-identity.
fn assert_equivalent(label: &str, fresh: &mut Searcher, loaded: &mut Searcher, threshold: f64) {
    // Batch join: pairs, similarities, and counters.
    let (a, b) = (fresh.all_pairs().unwrap(), loaded.all_pairs().unwrap());
    assert_eq!(bits(&a.pairs), bits(&b.pairs), "{label}: all_pairs");
    assert_eq!(a.candidates, b.candidates, "{label}: candidate counts");

    // Threshold queries over a spread of corpus vectors.
    for qid in (0..fresh.len() as u32).step_by(7) {
        let q = fresh.data().vector(qid).clone();
        let (x, y) = (
            fresh.query(&q, threshold).unwrap(),
            loaded.query(&q, threshold).unwrap(),
        );
        assert_eq!(
            neighbor_bits(&x.neighbors),
            neighbor_bits(&y.neighbors),
            "{label}: query {qid}"
        );
        assert_eq!(x.stats, y.stats, "{label}: query stats {qid}");
    }

    // Top-k.
    let q = fresh.data().vector(3).clone();
    let (x, y) = (
        fresh.top_k(&q, 5, &KnnParams::default()).unwrap(),
        loaded.top_k(&q, 5, &KnnParams::default()).unwrap(),
    );
    assert_eq!(
        neighbor_bits(&x.neighbors),
        neighbor_bits(&y.neighbors),
        "{label}: top_k"
    );
    assert_eq!(x.stats, y.stats, "{label}: top_k stats");

    // Insert the same vector into both, then query it back: the reloaded
    // hash-function banks must extend signatures and buckets identically.
    let planted = fresh.data().vector(1).clone();
    let (ia, ib) = (
        fresh.insert(planted.clone()).unwrap(),
        loaded.insert(planted.clone()).unwrap(),
    );
    assert_eq!(ia, ib, "{label}: inserted ids");
    assert_eq!(
        fresh.hash_count(),
        loaded.hash_count(),
        "{label}: hash accounting after insert"
    );
    let (x, y) = (
        fresh.query(&planted, threshold).unwrap(),
        loaded.query(&planted, threshold).unwrap(),
    );
    assert_eq!(
        neighbor_bits(&x.neighbors),
        neighbor_bits(&y.neighbors),
        "{label}: insert-then-query"
    );
    assert!(
        x.neighbors.iter().any(|&(id, _)| id == ia),
        "{label}: insert must be findable"
    );
}

fn roundtrip(comp: Composition, cfg: PipelineConfig, data: &Dataset, threads: u32) {
    let label = format!("{comp} (threads {threads})");
    let build = || {
        Searcher::builder(cfg)
            .composition(comp)
            .parallelism(Parallelism::threads(threads))
            .build(data.clone())
            .unwrap()
    };
    let mut fresh = build();
    let mut snapshot = Vec::new();
    build().save(&mut snapshot).unwrap();
    let mut loaded = Searcher::load(&snapshot[..]).unwrap();
    assert_eq!(loaded.threads(), threads as usize, "{label}: saved budget");
    assert_eq!(loaded.composition(), comp, "{label}: saved composition");
    assert_equivalent(&label, &mut fresh, &mut loaded, cfg.threshold);
}

#[test]
fn every_composition_roundtrips_bit_identically_serial() {
    let weighted = corpus(501);
    let binary = corpus(502).binarized();
    for comp in all_compositions() {
        if supports_weighted(comp) {
            roundtrip(comp, PipelineConfig::cosine(0.7), &weighted, 1);
        }
        roundtrip(comp, PipelineConfig::jaccard(0.5), &binary, 1);
    }
}

#[test]
fn every_composition_roundtrips_bit_identically_threaded() {
    let weighted = corpus(503);
    let binary = corpus(504).binarized();
    for comp in all_compositions() {
        if supports_weighted(comp) {
            roundtrip(comp, PipelineConfig::cosine(0.7), &weighted, 4);
        }
        roundtrip(comp, PipelineConfig::jaccard(0.5), &binary, 4);
    }
}

#[test]
fn lazy_mode_with_uneven_signature_depths_roundtrips() {
    // Lazy hashing leaves signatures at different depths (queries deepen
    // only surviving candidates); a snapshot taken mid-life must preserve
    // those depths and keep amortizing afterwards.
    let data = corpus(505);
    let cfg = PipelineConfig::cosine(0.7);
    let build = || {
        Searcher::builder(cfg)
            .algorithm(Algorithm::LshBayesLsh)
            .hash_mode(HashMode::Lazy)
            .parallelism(Parallelism::serial())
            .build(data.clone())
            .unwrap()
    };
    let fresh = build();
    let to_save = build();
    // Deepen some signatures on both, identically, before the save.
    for qid in [0u32, 9, 17] {
        let q = data.vector(qid).clone();
        fresh.query(&q, 0.7).unwrap();
        to_save.query(&q, 0.7).unwrap();
    }
    let mut snapshot = Vec::new();
    to_save.save(&mut snapshot).unwrap();
    let loaded = Searcher::load(&snapshot[..]).unwrap();
    assert_eq!(loaded.hash_mode(), HashMode::Lazy);
    assert_eq!(loaded.hash_count(), fresh.hash_count());
    // The same queries again hash nothing new on either side...
    let before = loaded.hash_count();
    for qid in [0u32, 9, 17] {
        let q = data.vector(qid).clone();
        let (x, y) = (
            fresh.query(&q, 0.7).unwrap(),
            loaded.query(&q, 0.7).unwrap(),
        );
        assert_eq!(neighbor_bits(&x.neighbors), neighbor_bits(&y.neighbors));
    }
    assert_eq!(loaded.hash_count(), before, "reloaded memo must persist");
    // ...and a new query extends both pools identically.
    let q = data.vector(23).clone();
    let (x, y) = (
        fresh.query(&q, 0.7).unwrap(),
        loaded.query(&q, 0.7).unwrap(),
    );
    assert_eq!(neighbor_bits(&x.neighbors), neighbor_bits(&y.neighbors));
    assert_eq!(fresh.hash_count(), loaded.hash_count());
}

#[test]
fn snapshot_of_a_grown_index_roundtrips() {
    // Save after inserts: the incremental tail of the banding index must
    // replay exactly.
    let data = corpus(506);
    let cfg = PipelineConfig::cosine(0.7);
    let build = |data: Dataset| {
        Searcher::builder(cfg)
            .algorithm(Algorithm::Lsh)
            .parallelism(Parallelism::serial())
            .build(data)
            .unwrap()
    };
    let mut fresh = build(data.clone());
    let mut to_save = build(data.clone());
    for qid in [4u32, 11] {
        let v = data.vector(qid).clone();
        fresh.insert(v.clone()).unwrap();
        to_save.insert(v).unwrap();
    }
    let mut snapshot = Vec::new();
    to_save.save(&mut snapshot).unwrap();
    let mut loaded = Searcher::load(&snapshot[..]).unwrap();
    assert_equivalent("grown index", &mut fresh, &mut loaded, 0.7);
}

#[test]
fn load_with_parallelism_override_is_bit_identical() {
    // Build serial, save, load onto a 4-thread budget: results must not
    // move (the parallel-equals-serial guarantee extends through
    // persistence).
    let data = corpus(507);
    let cfg = PipelineConfig::cosine(0.7);
    let mut fresh = Searcher::builder(cfg)
        .algorithm(Algorithm::LshBayesLshLite)
        .parallelism(Parallelism::serial())
        .build(data.clone())
        .unwrap();
    let mut snapshot = Vec::new();
    fresh.save(&mut snapshot).unwrap();
    let mut wide = Searcher::load_with_parallelism(&snapshot[..], Parallelism::threads(4)).unwrap();
    assert_eq!(wide.threads(), 4);
    assert_equivalent("thread override", &mut fresh, &mut wide, 0.7);
}

#[test]
fn snapshots_are_deterministic_bytes() {
    // Two identical builds serialize to identical bytes — snapshots can be
    // content-addressed / diffed.
    let data = corpus(508);
    let build = || {
        Searcher::builder(PipelineConfig::cosine(0.7))
            .parallelism(Parallelism::serial())
            .build(data.clone())
            .unwrap()
    };
    let (mut a, mut b) = (Vec::new(), Vec::new());
    build().save(&mut a).unwrap();
    build().save(&mut b).unwrap();
    assert_eq!(a, b);
}
