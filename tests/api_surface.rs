//! The public facade: everything a downstream user touches compiles and
//! behaves through `bayeslsh::prelude`.

use bayeslsh::prelude::*;

#[test]
fn sparse_vector_api() {
    let v = SparseVector::from_pairs(vec![(3, 1.0), (1, 2.0)]);
    assert_eq!(v.indices(), &[1, 3]);
    let w = SparseVector::from_indices(vec![3, 5]);
    assert!(dot(&v, &w) > 0.0);
    assert!(overlap(&v, &w) == 1);
    assert!((0.0..=1.0).contains(&cosine(&v, &w)));
    assert!((0.0..=1.0).contains(&jaccard(&v, &w)));
}

#[test]
fn numeric_api() {
    let b = BetaDist::new(2.0, 3.0);
    assert!((b.mean() - 0.4).abs() < 1e-12);
    let bin = Binomial::new(10, 0.5);
    assert!((bin.mean() - 5.0).abs() < 1e-12);
    let mut rng = Xoshiro256::seed_from_u64(1);
    assert!(rng.next_f64() < 1.0);
}

#[test]
fn lsh_api() {
    assert!((r_to_cos(cos_to_r(0.7)) - 0.7).abs() < 1e-12);
    let mut hasher = MinHasher::new(1);
    let v = SparseVector::from_indices(vec![1, 2, 3]);
    let _ = hasher.hash(0, &v);
    let params = BandingParams::for_threshold(0.5, 4, 0.03, 100);
    assert!(params.l >= 1);
}

#[test]
fn posterior_models_via_trait_object() {
    // The PosteriorModel trait is object-safe enough for generic use.
    fn tail<M: PosteriorModel>(m: &M) -> f64 {
        m.prob_above_threshold(30, 32, 0.7)
    }
    assert!(tail(&JaccardModel::uniform()) > 0.9);
    assert!(tail(&CosineModel::new()) > 0.9);
}

#[test]
fn minmatch_table_via_facade() {
    let table = MinMatchTable::build(&JaccardModel::uniform(), 0.7, 0.03, 32, 128);
    assert!(table.min_matches(32) > 0);
    assert!(table.min_matches(128) > table.min_matches(32));
}

#[test]
fn config_constructors() {
    BayesLshConfig::cosine(0.7).validate();
    BayesLshConfig::jaccard(0.5).validate();
    LiteConfig::cosine(0.7).validate();
    LiteConfig::jaccard(0.5).validate();
    let cfg = PipelineConfig::jaccard(0.4);
    assert_eq!(cfg.family, FamilyConfig::Jaccard);
    assert_eq!(cfg.family.measure(), Measure::Jaccard);
    assert_eq!(cfg.prior, PriorChoice::Fitted);
    let l2 = PipelineConfig::l2(0.5, 2.0);
    assert_eq!(l2.family.measure(), Measure::L2);
    assert_eq!(l2.family.l2_width(), Some(2.0));
    assert_eq!(PipelineConfig::mips(0.6).family.measure(), Measure::Mips);
}

#[test]
fn corpus_generation_via_facade() {
    let data = generate(&CorpusConfig {
        n_vectors: 50,
        dim: 500,
        avg_len: 10,
        ..Default::default()
    });
    assert_eq!(data.len(), 50);
    let stats = data.stats();
    assert!(stats.nnz > 0);
}

#[test]
fn searcher_surface() {
    let data = Preset::Rcv1.load(0.0006, 5);
    let dim = data.dim();
    let mut s: Searcher = Searcher::builder(PipelineConfig::cosine(0.7))
        .algorithm(Algorithm::LshBayesLshLite)
        .hash_mode(HashMode::Eager)
        .build(data)
        .expect("builds");
    assert!(!s.is_empty());
    assert_eq!(s.config().threshold, 0.7);
    assert_eq!(s.composition(), Algorithm::LshBayesLshLite.composition());
    assert_eq!(s.hash_mode(), HashMode::Eager);
    assert_eq!(s.data().dim(), dim);
    let plan: BandingPlan = s.banding_plan();
    assert!(plan.params.l >= 1 && !plan.clamped);
    let batch: CompositionOutput = s.all_pairs().expect("runs");
    assert!(batch.total_secs >= 0.0);
    let q = s.data().vector(0).clone();
    let out: QueryOutput = s.query(&q, 0.7).expect("queries");
    let _stats: QueryStats = out.stats;
    let top: TopKOutput = s.top_k(&q, 3, &KnnParams::default()).expect("top-k");
    assert!(top.neighbors.len() <= 3);
    let id = s.insert(q).expect("inserts");
    assert_eq!(id as usize, s.len() - 1);
}

#[test]
fn snapshot_surface() {
    let data = Preset::Rcv1.load(0.0006, 5);
    let s = Searcher::builder(PipelineConfig::cosine(0.7))
        .build(data)
        .expect("builds");
    let mut bytes = Vec::new();
    s.save(&mut bytes).expect("serializes");
    let header: SnapshotHeader = SnapshotHeader::read(&bytes[..]).expect("probes");
    assert_eq!(header.format_version, SNAPSHOT_FORMAT_VERSION);
    assert_eq!(header.n_vectors as usize, s.len());
    let loaded = Searcher::load(&bytes[..]).expect("loads");
    assert_eq!(loaded.len(), s.len());
    let wide = Searcher::load_with_parallelism(&bytes[..], Parallelism::threads(2));
    assert_eq!(wide.expect("loads with override").threads(), 2);
    // The typed error surface.
    let err: SnapshotError = Searcher::load(&bytes[..10]).unwrap_err();
    assert!(matches!(err, SnapshotError::Corrupt { .. }));
    assert!(matches!(
        Searcher::load(&b"12345678"[..]),
        Err(SnapshotError::BadMagic)
    ));
}

#[test]
fn sharded_surface() {
    let data = Preset::Rcv1.load(0.0006, 5);
    let dir = std::env::temp_dir().join(format!("bayeslsh-api-shards-{}", std::process::id()));
    let manifest: ShardManifest = ShardBuilder::new(PipelineConfig::cosine(0.7))
        .algorithm(Algorithm::LshBayesLshLite)
        .shards(2)
        .partition(PartitionFn::RoundRobin)
        .build_to_dir(&data, &dir)
        .expect("builds");
    assert_eq!(manifest.shard_count(), 2);
    assert_eq!(manifest.n_total as usize, data.len());
    let path = dir.join(MANIFEST_FILE);
    let s = ShardedSearcher::open_with(&path, Parallelism::serial(), LoadPolicy::Lazy)
        .expect("opens lazily");
    assert_eq!(s.generation().shards_loaded(), 0);
    assert_eq!(s.len(), data.len());
    let q = data.vector(0).clone();
    let out: QueryOutput = s.query(&q, 0.7).expect("queries");
    assert!(out.neighbors.iter().any(|&(id, _)| id == 0));
    let top: TopKOutput = s.top_k(&q, 3, &KnnParams::default()).expect("top-k");
    assert!(top.neighbors.len() <= 3);
    let id = s.insert(q).expect("inserts");
    assert_eq!(id as usize, s.len() - 1);
    assert_eq!(s.reload().expect("reloads"), 2);
    // The typed error surface.
    let err: ShardError = ShardedSearcher::open(&dir.join("nope.blsh")).unwrap_err();
    assert!(matches!(err, ShardError::Io(_)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn composition_surface() {
    // Custom compositions instantiate as trait objects and run.
    let comp = Composition::new(GeneratorKind::LshBanding, VerifierKind::Exact);
    let g: Box<dyn CandidateGenerator> = comp.generator.instantiate();
    let v: Box<dyn Verifier> = comp.verifier.instantiate();
    assert_eq!(g.name(), "LSH");
    assert_eq!(v.name(), "exact");
    let data = Preset::Rcv1.load(0.0006, 6);
    let cfg = PipelineConfig::cosine(0.7);
    let mut pool = SigPool::for_config(&cfg, &data);
    let mut ctx = SearchContext {
        data: &data,
        cfg: &cfg,
        pool: &mut pool,
        index: None,
    };
    let out = run_composition(comp, &mut ctx).expect("runs");
    assert_eq!(out.composition, comp);
    // And the typed error type is part of the facade.
    let mut bad = cfg;
    bad.k = 0;
    let err: SearchError = bad.validate().unwrap_err();
    assert!(err.to_string().contains("invalid config"));
}

#[test]
fn run_output_shape() {
    let data = Preset::Rcv1.load(0.0006, 3);
    let out: RunOutput = run_algorithm(Algorithm::AllPairs, &data, &PipelineConfig::cosine(0.8));
    assert_eq!(out.algorithm, Algorithm::AllPairs);
    assert!(out.total_secs >= 0.0);
    assert!(out.engine.is_none());
    let err: ErrorStats = estimate_errors(&out.pairs, &data, Measure::Cosine, 0.05);
    // Exact similarities → estimation error at f32-normalization noise.
    assert!(err.max_abs < 1e-6);
}

#[test]
fn direct_engine_use() {
    let data = Preset::Rcv1.load(0.0006, 4);
    let cands = vec![(0u32, 1u32), (1, 2), (2, 3)];
    let mut pool = IntSignatures::new(MinHasher::new(9), data.len());
    let bin = data.binarized();
    let (pairs, stats): (Vec<(u32, u32, f64)>, EngineStats) = bayes_verify(
        &bin,
        &mut pool,
        &JaccardModel::uniform(),
        &cands,
        &BayesLshConfig::jaccard(0.5),
    );
    assert_eq!(stats.input_pairs, 3);
    assert!(pairs.len() <= 3);
    let (lite_pairs, _) = bayes_verify_lite(
        &bin,
        &mut pool,
        &JaccardModel::uniform(),
        &cands,
        &LiteConfig::jaccard(0.5),
        jaccard,
    );
    assert!(lite_pairs.len() <= 3);
    // mle_verify with identity transform (Jaccard).
    let (mle_pairs, comps) = mle_verify(&bin, &mut pool, &cands, 64, 0.5, |f| f);
    assert_eq!(comps, 3 * 64);
    assert!(mle_pairs.len() <= 3);
}
