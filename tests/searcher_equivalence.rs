//! API-equivalence guarantees between the legacy `run_algorithm` shim and
//! the build-once/query-many `Searcher`: for every `Algorithm` variant the
//! two paths must produce identical pair sets (same seeds, same hash
//! streams, same candidate order — so even the Bayesian *estimates* agree
//! bit for bit), and a standing searcher must answer queries without
//! re-hashing the corpus.

use bayeslsh::prelude::*;

mod support;
use support::{algorithm_for, all_compositions, run_comp, supports_weighted};

/// Clustered corpus with planted near-duplicates (weighted vectors).
fn corpus(seed: u64) -> Dataset {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut d = Dataset::new(3000);
    for c in 0..10 {
        let center: Vec<(u32, f32)> = (0..35)
            .map(|_| {
                (
                    (c * 250 + rng.next_below(230) as usize) as u32,
                    (rng.next_f64() + 0.3) as f32,
                )
            })
            .collect();
        for _ in 0..6 {
            let mut pairs = center.clone();
            for p in pairs.iter_mut() {
                if rng.next_bool(0.2) {
                    *p = (rng.next_below(3000) as u32, (rng.next_f64() + 0.3) as f32);
                }
            }
            d.push(SparseVector::from_pairs(pairs));
        }
    }
    d
}

fn sorted(mut pairs: Vec<(u32, u32, f64)>) -> Vec<(u32, u32, u64)> {
    pairs.sort_by_key(|&(a, b, _)| (a, b));
    // Compare estimates bit-for-bit: both paths run the same deterministic
    // code over the same hash streams.
    pairs
        .into_iter()
        .map(|(a, b, s)| (a, b, s.to_bits()))
        .collect()
}

/// One-shot pairs for a composition: the legacy `run_algorithm` shim for
/// the named eight, the composable runner for off-grid points (SPRT).
fn one_shot_pairs(comp: Composition, data: &Dataset, cfg: &PipelineConfig) -> Vec<(u32, u32, f64)> {
    match algorithm_for(comp) {
        Some(algo) => run_algorithm(algo, data, cfg).pairs,
        None => run_comp(comp, data, cfg).pairs,
    }
}

#[test]
fn every_cosine_composition_matches_its_searcher() {
    let data = corpus(301);
    let cfg = PipelineConfig::cosine(0.7);
    for comp in all_compositions() {
        if !supports_weighted(comp) {
            continue; // PPJoin+ is covered by the jaccard test below.
        }
        let legacy = one_shot_pairs(comp, &data, &cfg);
        let searcher = Searcher::builder(cfg)
            .composition(comp)
            .build(data.clone())
            .unwrap();
        let composed = searcher.all_pairs().unwrap();
        assert_eq!(
            sorted(legacy),
            sorted(composed.pairs),
            "{comp}: one-shot and Searcher must produce identical results"
        );
        assert_eq!(composed.composition, comp);
    }
}

#[test]
fn every_jaccard_composition_matches_its_searcher() {
    let data = corpus(302).binarized();
    let cfg = PipelineConfig::jaccard(0.5);
    for comp in all_compositions() {
        let legacy = one_shot_pairs(comp, &data, &cfg);
        let searcher = Searcher::builder(cfg)
            .composition(comp)
            .build(data.clone())
            .unwrap();
        let composed = searcher.all_pairs().unwrap();
        assert_eq!(
            sorted(legacy),
            sorted(composed.pairs),
            "{comp}: one-shot and Searcher must produce identical results"
        );
    }
}

#[test]
#[allow(deprecated)]
fn deprecated_measure_shim_matches_the_family_config_path() {
    // The migration contract for the `measure` → `family` API redesign:
    // a config built through the deprecated `PipelineConfig::measure` shim
    // is the *same config* as one whose `family` field was set directly,
    // so every composition produces bit-identical output through both.
    let data = corpus(309).binarized();
    for (shimmed, direct) in [
        (
            PipelineConfig::jaccard(0.5).measure(Measure::Jaccard),
            PipelineConfig::jaccard(0.5),
        ),
        (PipelineConfig::jaccard(0.5).measure(Measure::Cosine), {
            let mut cfg = PipelineConfig::jaccard(0.5);
            cfg.family = FamilyConfig::Cosine;
            cfg
        }),
        (PipelineConfig::jaccard(0.5).measure(Measure::L2), {
            let mut cfg = PipelineConfig::jaccard(0.5);
            cfg.family = FamilyConfig::for_measure(Measure::L2);
            cfg
        }),
    ] {
        assert_eq!(shimmed, direct);
    }
    // And through the engines: all nine compositions, old path vs new.
    let old_cfg = PipelineConfig::jaccard(0.5).measure(Measure::Jaccard);
    let new_cfg = PipelineConfig::jaccard(0.5);
    for comp in all_compositions() {
        let old = Searcher::builder(old_cfg)
            .composition(comp)
            .build(data.clone())
            .unwrap()
            .all_pairs()
            .unwrap();
        let new = Searcher::builder(new_cfg)
            .composition(comp)
            .build(data.clone())
            .unwrap()
            .all_pairs()
            .unwrap();
        assert_eq!(
            sorted(old.pairs),
            sorted(new.pairs),
            "{comp}: deprecated shim and family config must be bit-identical"
        );
    }
}

#[test]
fn lazy_hash_mode_is_equivalent_too() {
    let data = corpus(303);
    let cfg = PipelineConfig::cosine(0.7);
    let legacy = run_algorithm(Algorithm::LshBayesLsh, &data, &cfg);
    let searcher = Searcher::builder(cfg)
        .algorithm(Algorithm::LshBayesLsh)
        .hash_mode(HashMode::Lazy)
        .build(data)
        .unwrap();
    let composed = searcher.all_pairs().unwrap();
    assert_eq!(sorted(legacy.pairs), sorted(composed.pairs));
}

#[test]
fn queries_do_not_rehash_the_corpus() {
    // The acceptance bar for build-once/query-many: one build pays for all
    // corpus hashing; N point queries add nothing.
    let data = corpus(304);
    let searcher = Searcher::builder(PipelineConfig::cosine(0.7))
        .algorithm(Algorithm::LshBayesLsh)
        .build(data)
        .unwrap();
    let built = searcher.hash_count();
    assert!(built > 0, "build must hash the corpus");
    let queries: Vec<SparseVector> = (0..searcher.len() as u32)
        .step_by(3)
        .map(|id| searcher.data().vector(id).clone())
        .collect();
    let mut answered = 0;
    for q in &queries {
        let out = searcher.query(q, 0.7).unwrap();
        assert!(!out.neighbors.is_empty(), "self-queries must hit");
        answered += 1;
    }
    assert!(answered >= 10);
    assert_eq!(
        searcher.hash_count(),
        built,
        "{answered} queries must not add corpus hashes"
    );
}

#[test]
fn insert_then_query_finds_planted_neighbors() {
    let data = corpus(305);
    let n0 = data.len();
    let mut searcher = Searcher::builder(PipelineConfig::cosine(0.7))
        .algorithm(Algorithm::LshBayesLshLite)
        .build(data)
        .unwrap();

    // Plant near-duplicates of a few corpus vectors.
    let mut planted = Vec::new();
    for qid in [2u32, 19, 40] {
        let v = searcher.data().vector(qid).clone();
        let id = searcher.insert(v.clone()).unwrap();
        planted.push((qid, id, v));
    }
    assert_eq!(searcher.len(), n0 + planted.len());

    for (qid, id, v) in &planted {
        // Querying with the original finds the planted copy...
        let original = searcher.data().vector(*qid).clone();
        let out = searcher.query(&original, 0.7).unwrap();
        assert!(
            out.neighbors.iter().any(|&(got, _)| got == *id),
            "query {qid} must find planted {id}"
        );
        // ...and querying with the copy finds the original.
        let out = searcher.query(v, 0.7).unwrap();
        assert!(
            out.neighbors.iter().any(|&(got, _)| got == *qid),
            "planted {id} must find original {qid}"
        );
    }
}

#[test]
fn jaccard_insert_and_query_roundtrip() {
    let data = corpus(306).binarized();
    let mut searcher = Searcher::builder(PipelineConfig::jaccard(0.5))
        .algorithm(Algorithm::LshBayesLshLite)
        .build(data)
        .unwrap();
    let v = searcher.data().vector(5).clone();
    let id = searcher.insert(v.clone()).unwrap();
    let out = searcher.query(&v, 0.5).unwrap();
    assert!(out.neighbors.iter().any(|&(got, s)| got == id && s > 0.999));
    // Weighted inserts AND weighted queries are rejected with the typed
    // error — the precondition is enforced consistently across methods.
    let weighted = SparseVector::from_pairs(vec![(1, 0.5)]);
    let err = searcher.insert(weighted.clone()).unwrap_err();
    assert!(matches!(err, SearchError::NonBinaryData { .. }));
    let err = searcher.query(&weighted, 0.5).unwrap_err();
    assert!(matches!(err, SearchError::NonBinaryData { .. }));
    let err = searcher
        .top_k(&weighted, 3, &KnnParams::default())
        .unwrap_err();
    assert!(matches!(err, SearchError::NonBinaryData { .. }));
}

#[test]
fn searcher_builder_reports_typed_errors() {
    // Invalid config.
    let mut cfg = PipelineConfig::cosine(0.7);
    cfg.gamma = 1.0;
    match Searcher::builder(cfg).build(corpus(307)) {
        Err(SearchError::InvalidConfig { param, .. }) => assert_eq!(param, "gamma"),
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    // Non-binary data under a binary-only composition.
    let err = Searcher::builder(PipelineConfig::cosine(0.7))
        .algorithm(Algorithm::PpjoinPlus)
        .build(corpus(307))
        .unwrap_err();
    assert_eq!(
        err,
        SearchError::NonBinaryData {
            requires: "PPJoin+"
        }
    );
}

#[test]
fn top_k_agrees_with_brute_force_mostly() {
    let data = corpus(308);
    let searcher = Searcher::builder(PipelineConfig::cosine(0.5))
        .build(data)
        .unwrap();
    let k = 5;
    let (mut hits, mut total) = (0usize, 0usize);
    for qid in (0..searcher.len() as u32).step_by(11) {
        let q = searcher.data().vector(qid).clone();
        let out = searcher.top_k(&q, k + 1, &KnnParams::default()).unwrap();
        assert_eq!(out.neighbors[0].0, qid, "self must rank first");
        let got: std::collections::HashSet<u32> =
            out.neighbors.iter().skip(1).map(|&(id, _)| id).collect();
        let mut brute: Vec<(u32, f64)> = searcher
            .data()
            .iter()
            .filter(|&(id, _)| id != qid)
            .map(|(id, v)| (id, cosine(&q, v)))
            .collect();
        brute.sort_by(|a, b| b.1.total_cmp(&a.1));
        for &(id, _) in brute.iter().take(k) {
            total += 1;
            if got.contains(&id) {
                hits += 1;
            }
        }
    }
    let recall = hits as f64 / total as f64;
    assert!(recall >= 0.75, "top-k recall {recall}");
}
