//! Statistical verification of the paper's two layered guarantees, pooled
//! over many seeds so the assertions test the *bound*, not one lucky run:
//!
//! 1. **Candidate recall** (Section 2): the banding index misses a true
//!    pair with probability at most the [`BandingPlan`]'s achieved
//!    false-negative rate — so the measured candidate-miss rate must be
//!    bounded by `achieved_fnr` (plus sampling slack).
//! 2. **End-to-end recall** (Section 4): BayesLSH prunes a true positive
//!    with probability below ε, so the recall of LSH + BayesLSH[-Lite]
//!    must stay above `(1 − δ) − ε`, where δ is the index's achieved
//!    false-negative rate and ε the Bayesian recall parameter.
//! 3. **SPRT recall**: the sequential verifier's prune schedule false-prunes
//!    a true pair (`S ≥ t`) with probability at most α (mapped from the
//!    same ε knob), so LSH + SPRT recall must also stay above
//!    `(1 − δ) − α`.
//!
//! Plus a property check on the SPRT decision rule itself: verdicts are a
//! pure function of cumulative agreement counts at chunk boundaries, so
//! they cannot depend on how the agreement stream was delivered.
//!
//! Corpora are the scaled synthetic preset stand-ins (RCV1 shape), one per
//! seed, with the hash-family seed varied alongside — deterministic, so
//! the suite is CI-stable while still averaging over 20 independent draws.

use std::collections::HashSet;

use bayeslsh::prelude::*;
use proptest::prelude::*;

mod support;
use support::run_comp;

const N_SEEDS: u64 = 20;

#[derive(Default)]
struct Pooled {
    truth: usize,
    candidate_misses: usize,
    bayes_hits: usize,
    lite_hits: usize,
    sprt_hits: usize,
}

fn pair_keys(pairs: &[(u32, u32, f64)]) -> HashSet<(u32, u32)> {
    pairs.iter().map(|&(a, b, _)| (a, b)).collect()
}

fn pool_over_seeds(
    measure: Measure,
    threshold: f64,
    base_cfg: PipelineConfig,
    load: impl Fn(u64) -> Dataset,
) -> Pooled {
    let mut pooled = Pooled::default();
    for s in 0..N_SEEDS {
        let data = load(s);
        let mut cfg = base_cfg;
        cfg.seed = 42 + s; // a fresh hash family per trial
        let gt = ground_truth(&data, measure, threshold);
        // LSH × exact keeps every candidate that is a true pair, so its
        // output *is* the candidate set restricted to the truth — the
        // measured candidate-miss events are exactly the banding misses.
        let lsh = pair_keys(&run_algorithm(Algorithm::Lsh, &data, &cfg).pairs);
        let bayes = pair_keys(&run_algorithm(Algorithm::LshBayesLsh, &data, &cfg).pairs);
        let lite = pair_keys(&run_algorithm(Algorithm::LshBayesLshLite, &data, &cfg).pairs);
        let sprt_comp = Composition::new(GeneratorKind::LshBanding, VerifierKind::Sprt);
        let sprt = pair_keys(&run_comp(sprt_comp, &data, &cfg).pairs);
        for &(a, b, _) in &gt {
            pooled.truth += 1;
            if !lsh.contains(&(a, b)) {
                pooled.candidate_misses += 1;
            }
            if bayes.contains(&(a, b)) {
                pooled.bayes_hits += 1;
            }
            if lite.contains(&(a, b)) {
                pooled.lite_hits += 1;
            }
            if sprt.contains(&(a, b)) {
                pooled.sprt_hits += 1;
            }
        }
    }
    pooled
}

/// Sampling slack on a pooled rate estimate: three binomial standard
/// deviations at the bound's rate, floored for tiny pools.
fn slack(rate: f64, n: usize) -> f64 {
    (3.0 * (rate * (1.0 - rate) / n as f64).sqrt()).max(0.005)
}

fn check_family(
    measure: Measure,
    threshold: f64,
    cfg: PipelineConfig,
    load: impl Fn(u64) -> Dataset,
) {
    let plan = cfg.banding_plan();
    assert!(
        !plan.clamped,
        "paper-default plans must meet the requested rate"
    );
    assert!(plan.achieved_fnr <= plan.requested_fnr);

    let pooled = pool_over_seeds(measure, threshold, cfg, load);
    assert!(
        pooled.truth >= 200,
        "need statistical power: {} true pairs pooled over {N_SEEDS} seeds",
        pooled.truth
    );

    // (1) The reported achieved-FNR bounds the measured candidate misses.
    let miss_rate = pooled.candidate_misses as f64 / pooled.truth as f64;
    let fnr_bound = plan.achieved_fnr + slack(plan.achieved_fnr, pooled.truth);
    assert!(
        miss_rate <= fnr_bound,
        "{measure:?}: candidate-miss rate {miss_rate:.4} exceeds achieved-FNR bound \
         {:.4} (+{:.4} slack) over {} pairs",
        plan.achieved_fnr,
        fnr_bound - plan.achieved_fnr,
        pooled.truth
    );

    // (2) End-to-end recall ≥ (1 − δ) − ε for both Bayesian verifiers.
    let delta_fnr = plan.achieved_fnr;
    let bound = (1.0 - delta_fnr) - cfg.epsilon;
    let bayes_recall = pooled.bayes_hits as f64 / pooled.truth as f64;
    let lite_recall = pooled.lite_hits as f64 / pooled.truth as f64;
    assert!(
        bayes_recall >= bound,
        "{measure:?}: BayesLSH recall {bayes_recall:.4} below (1 − {delta_fnr:.4}) − {:.2} = {bound:.4}",
        cfg.epsilon
    );
    assert!(
        lite_recall >= bound,
        "{measure:?}: BayesLSH-Lite recall {lite_recall:.4} below {bound:.4}"
    );

    // (3) SPRT recall ≥ (1 − δ) − α. The verifier's α (false-prune bound
    // over all pairs with S ≥ t) is mapped from the same ε knob, so the
    // sequential test must clear the exact bound the Bayesian verifiers do.
    assert_eq!(cfg.sprt().alpha, cfg.epsilon, "α is mapped from ε");
    let sprt_recall = pooled.sprt_hits as f64 / pooled.truth as f64;
    assert!(
        sprt_recall >= bound,
        "{measure:?}: SPRT recall {sprt_recall:.4} below (1 − {delta_fnr:.4}) − α = {bound:.4}"
    );
}

#[test]
fn cosine_recall_meets_the_paper_bound_over_20_seeds() {
    check_family(Measure::Cosine, 0.7, PipelineConfig::cosine(0.7), |s| {
        Preset::Rcv1.load(0.0004, 9000 + s)
    });
}

#[test]
fn jaccard_recall_meets_the_paper_bound_over_20_seeds() {
    check_family(Measure::Jaccard, 0.5, PipelineConfig::jaccard(0.5), |s| {
        Preset::Rcv1.load_binary(0.0004, 9100 + s)
    });
}

/// Clustered weighted corpus with planted L2 near-neighbours: cluster
/// members share their center's support and jitter its values, so
/// within-cluster Euclidean distances are small (`s = 1/(1 + d)` above
/// the threshold) while cross-cluster distances stay large.
fn l2_corpus(seed: u64) -> Dataset {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut d = Dataset::new(2000);
    for c in 0..8 {
        let center: Vec<(u32, f32)> = (0..30)
            .map(|_| {
                (
                    (c * 250 + rng.next_below(240) as usize) as u32,
                    (rng.next_f64() + 0.3) as f32,
                )
            })
            .collect();
        for m in 0..6 {
            let spread = 0.01 + 0.03 * m as f64;
            let pairs: Vec<(u32, f32)> = center
                .iter()
                .map(|&(i, x)| (i, x + ((rng.next_f64() - 0.5) * spread) as f32))
                .collect();
            d.push(SparseVector::from_pairs(pairs));
        }
    }
    d
}

#[test]
fn l2_recall_meets_the_paper_bound_over_20_seeds() {
    // The E2LSH family rides the same layered guarantee: candidate misses
    // bounded by the plan's achieved FNR, and LSH + {BayesLSH, Lite, SPRT}
    // recall above (1 − δ) − ε / (1 − δ) − α, through the family's
    // collision model instead of the cosine/Jaccard closed forms.
    check_family(Measure::L2, 0.5, PipelineConfig::l2(0.5, 4.0), |s| {
        l2_corpus(9200 + s)
    });
}

// ---------------------------------------------------------------------
// SPRT chunk-boundary invariance: the verdict for a pair is a pure
// function of its cumulative (agreements, hashes) at each chunk
// boundary. Delivering the same agreement stream incrementally (the
// engine's batched path) or recounting every prefix from scratch (what a
// different thread/shard partition amounts to) must produce the same
// verdict at the same depth.
// ---------------------------------------------------------------------

#[derive(Debug, PartialEq)]
enum Verdict {
    Accept(u32),
    Prune(u32),
    Undecided,
}

/// First decision the table reaches, checking every chunk boundary with
/// cumulative counts supplied by `m_at`.
fn first_decision(table: &SprtTable, n_chunks: u32, m_at: impl Fn(u32) -> u32) -> Verdict {
    let k = table.chunk();
    for c in 1..=n_chunks {
        let (m, n) = (m_at(c), c * k);
        if table.should_accept(m, n) {
            return Verdict::Accept(n);
        }
        if table.should_prune(m, n) {
            return Verdict::Prune(n);
        }
    }
    Verdict::Undecided
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sprt_verdicts_are_chunk_boundary_invariant(
        per_chunk in proptest::collection::vec(0u32..=32, 1..16),
        family in 0u8..2,
    ) {
        let (cfg, table) = if family == 0 {
            let cfg = PipelineConfig::cosine(0.7).sprt();
            let table = SprtTable::build(&cfg, cos_to_r);
            (cfg, table)
        } else {
            let cfg = PipelineConfig::jaccard(0.5).sprt();
            let table = SprtTable::build(&cfg, |s| s);
            (cfg, table)
        };
        prop_assert_eq!(table.chunk(), cfg.k);
        let n_chunks = (per_chunk.len() as u32).min(table.max_hashes() / table.chunk());

        // (a) Incremental: running total carried across chunks, the way
        // the engine consumes `query_agreements_batched`.
        let mut running = 0u32;
        let mut incremental = Verdict::Undecided;
        for c in 1..=n_chunks {
            running += per_chunk[c as usize - 1];
            let n = c * table.chunk();
            if table.should_accept(running, n) {
                incremental = Verdict::Accept(n);
                break;
            }
            if table.should_prune(running, n) {
                incremental = Verdict::Prune(n);
                break;
            }
        }

        // (b) All-at-once: every prefix recounted from the raw stream.
        let from_scratch = first_decision(&table, n_chunks, |c| {
            per_chunk[..c as usize].iter().sum()
        });

        prop_assert_eq!(incremental, from_scratch);
    }

    #[test]
    fn sprt_accept_and_prune_are_mutually_exclusive(
        m in 0u32..=512,
        chunks in 1u32..=16,
    ) {
        let table = SprtTable::build(&PipelineConfig::cosine(0.7).sprt(), cos_to_r);
        let n = (chunks * table.chunk()).min(table.max_hashes());
        let m = m.min(n);
        prop_assert!(
            !(table.should_accept(m, n) && table.should_prune(m, n)),
            "m={} n={} both accepted and pruned", m, n
        );
    }
}
