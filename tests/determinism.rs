//! Reproducibility: every randomized component is a pure function of its
//! seed.

use bayeslsh::prelude::*;

fn sorted_pairs(mut v: Vec<(u32, u32, f64)>) -> Vec<(u32, u32, u64)> {
    v.sort_by_key(|a| (a.0, a.1));
    v.into_iter().map(|(a, b, s)| (a, b, s.to_bits())).collect()
}

#[test]
fn pipelines_are_bit_reproducible_per_seed() {
    let data = Preset::Rcv1.load(0.001, 11);
    for algo in [
        Algorithm::LshBayesLsh,
        Algorithm::LshApprox,
        Algorithm::ApBayesLsh,
    ] {
        let cfg = PipelineConfig::cosine(0.6);
        let a = run_algorithm(algo, &data, &cfg);
        let b = run_algorithm(algo, &data, &cfg);
        assert_eq!(
            sorted_pairs(a.pairs),
            sorted_pairs(b.pairs),
            "{algo}: same seed must give identical output"
        );
    }
}

#[test]
fn different_seeds_change_randomized_output_not_exact_output() {
    let data = Preset::Rcv1.load(0.001, 12);
    let mut cfg1 = PipelineConfig::cosine(0.6);
    cfg1.seed = 1;
    let mut cfg2 = PipelineConfig::cosine(0.6);
    cfg2.seed = 2;

    // Exact algorithms do not depend on the seed at all.
    let e1 = run_algorithm(Algorithm::AllPairs, &data, &cfg1);
    let e2 = run_algorithm(Algorithm::AllPairs, &data, &cfg2);
    assert_eq!(sorted_pairs(e1.pairs), sorted_pairs(e2.pairs));

    // Randomized ones see different hash families (estimates differ).
    let r1 = run_algorithm(Algorithm::LshBayesLsh, &data, &cfg1);
    let r2 = run_algorithm(Algorithm::LshBayesLsh, &data, &cfg2);
    assert_ne!(
        sorted_pairs(r1.pairs),
        sorted_pairs(r2.pairs),
        "different seeds should perturb the randomized pipeline"
    );
}

#[test]
fn dataset_generation_is_seed_deterministic() {
    let a = Preset::Orkut.load_binary(0.0004, 99);
    let b = Preset::Orkut.load_binary(0.0004, 99);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.vectors().iter().zip(b.vectors()) {
        assert_eq!(x, y);
    }
}

#[test]
fn signature_pools_agree_across_materialization_orders() {
    let data = Preset::Rcv1.load(0.0008, 14);
    let mut eager = BitSignatures::new(SrpHasher::new(data.dim(), 5), data.len());
    let mut lazy = BitSignatures::new(SrpHasher::new(data.dim(), 5), data.len());
    // Eager: everything to 256 bits up front.
    for (id, v) in data.iter() {
        eager.ensure(id, v, 256);
    }
    // Lazy: two extension steps, reverse object order.
    for (id, v) in data.iter().collect::<Vec<_>>().into_iter().rev() {
        lazy.ensure(id, v, 64);
    }
    for (id, v) in data.iter() {
        lazy.ensure(id, v, 256);
    }
    for id in 0..data.len() as u32 {
        assert_eq!(
            eager.agreements(id, (id + 1) % data.len() as u32, 0, 256),
            lazy.agreements(id, (id + 1) % data.len() as u32, 0, 256),
            "object {id}"
        );
    }
}
