//! Candidate generation algorithms for all-pairs similarity search.
//!
//! BayesLSH is a candidate *verification* layer: it takes pairs from any
//! generator. The paper evaluates two generators plus one end-to-end exact
//! baseline, all built here:
//!
//! * [`lshindex`] — classical LSH banding: `l` signatures, each the
//!   concatenation of `k` hashes; pairs sharing a signature become
//!   candidates, with `l = ceil(log ε / log(1 − p^k))` for expected false
//!   negative rate ε (paper Section 2).
//! * [`allpairs`] — AllPairs (Bayardo, Ma & Srikant, WWW'07) for cosine
//!   similarity over weighted vectors: exact, with partial indexing driven
//!   by per-dimension max-weight bounds. Exposes both the exact join and
//!   the intermediate candidate set (to feed BayesLSH).
//! * [`ppjoin`] — PPJoin+ (Xiao et al., WWW'08) for binary vectors under
//!   Jaccard or cosine: prefix, positional and suffix filtering. Exact
//!   baseline only, as in the paper.
//!
//! [`fxhash`] provides the fast hash map used for bucketing, and [`pairs`]
//! the shared candidate-set plumbing.

pub mod allpairs;
pub mod fxhash;
pub mod lshindex;
pub mod pairs;
pub mod ppjoin;

pub use allpairs::{
    all_pairs_cosine, all_pairs_cosine_candidates, all_pairs_jaccard, all_pairs_jaccard_candidates,
};
pub use lshindex::{
    band_key_bits, band_key_ints, band_keys_bits, band_keys_ints, lsh_candidates_bits,
    lsh_candidates_ints, lsh_candidates_projs, BandingIndex, BandingParams, BandingPlan,
};
pub use pairs::PairSet;
pub use ppjoin::{ppjoin_binary_cosine, ppjoin_jaccard};
