//! Candidate-pair plumbing shared by all generators.

use crate::fxhash::FxHashSet;

/// A deduplicated set of unordered id pairs, stored as `(lo, hi)` with
/// `lo < hi`.
#[derive(Debug, Clone, Default)]
pub struct PairSet {
    seen: FxHashSet<u64>,
    pairs: Vec<(u32, u32)>,
}

/// Pack an unordered pair into a single `u64` key.
#[inline]
pub fn pair_key(a: u32, b: u32) -> u64 {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    ((lo as u64) << 32) | hi as u64
}

impl PairSet {
    /// An empty pair set.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pair set with room for roughly `cap` pairs.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            seen: FxHashSet::with_capacity_and_hasher(cap, Default::default()),
            pairs: Vec::with_capacity(cap),
        }
    }

    /// Insert an unordered pair; ignores self-pairs and duplicates. Returns
    /// true if the pair is new.
    pub fn insert(&mut self, a: u32, b: u32) -> bool {
        if a == b {
            return false;
        }
        let key = pair_key(a, b);
        if self.seen.insert(key) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            self.pairs.push((lo, hi));
            true
        } else {
            false
        }
    }

    /// True if the pair is already present.
    pub fn contains(&self, a: u32, b: u32) -> bool {
        self.seen.contains(&pair_key(a, b))
    }

    /// Number of distinct pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no pairs were inserted.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Consume into the pair list (insertion order).
    pub fn into_vec(self) -> Vec<(u32, u32)> {
        self.pairs
    }

    /// Borrow the pair list.
    pub fn as_slice(&self) -> &[(u32, u32)] {
        &self.pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedups_and_orders() {
        let mut s = PairSet::new();
        assert!(s.insert(5, 2));
        assert!(!s.insert(2, 5));
        assert!(s.insert(2, 7));
        assert!(!s.insert(3, 3));
        assert_eq!(s.len(), 2);
        assert_eq!(s.as_slice(), &[(2, 5), (2, 7)]);
        assert!(s.contains(5, 2));
        assert!(!s.contains(5, 7));
    }

    #[test]
    fn pair_key_is_symmetric_and_injective() {
        assert_eq!(pair_key(1, 2), pair_key(2, 1));
        assert_ne!(pair_key(1, 2), pair_key(1, 3));
        assert_ne!(pair_key(0, 1), pair_key(1, 2));
    }

    #[test]
    fn into_vec_returns_all() {
        let mut s = PairSet::with_capacity(10);
        for i in 0..10u32 {
            s.insert(i, i + 1);
        }
        assert_eq!(s.into_vec().len(), 10);
    }
}
