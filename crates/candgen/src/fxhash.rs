//! A fast, non-cryptographic hasher (the rustc "Fx" multiply-rotate hash).
//!
//! Bucketing millions of band keys and candidate-pair ids is hot; SipHash's
//! HashDoS resistance buys nothing against our own data, so we use the same
//! algorithm rustc uses internally.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher; quality is low but plenty for power-of-two table
/// sizes over integer keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_hashes() {
        let mut hashes = FxHashSet::default();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            hashes.insert(h.finish());
        }
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m[&i], (i * 2) as u32);
        }
    }

    #[test]
    fn write_bytes_consistent_with_words() {
        let mut a = FxHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }
}
