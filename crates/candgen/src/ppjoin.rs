//! PPJoin+ (Xiao, Wang, Lin & Yu, "Efficient Similarity Joins for Near
//! Duplicate Detection", WWW 2008 / TODS 2011).
//!
//! The exact binary-vector baseline of the BayesLSH paper. Records are
//! token sets sorted by increasing global token frequency; three filters
//! run in sequence:
//!
//! 1. **Prefix filter** — a pair can only reach the overlap bound if the
//!    two records share a token inside their short prefixes; everything
//!    else is never touched.
//! 2. **Positional filter** — at a prefix match at positions `(i, j)` the
//!    best possible final overlap is `A + 1 + min(|x|−i−1, |y|−j−1)`;
//!    below the bound, the candidate is abandoned.
//! 3. **Suffix filter** (the "+") — a divide-and-conquer lower bound on the
//!    Hamming distance of the unseen suffixes, probing the median token,
//!    kills most remaining false positives before the exact overlap count.
//!
//! Both the Jaccard and binary-cosine instantiations are provided, since
//! the paper runs PPJoin+ on both (Figures 3(g)–3(l)).

use bayeslsh_sparse::Dataset;

use crate::allpairs::{overlap_sorted, rank_tokens};
use crate::fxhash::FxHashMap;

/// Recursion depth of the suffix filter. The original paper tunes this
/// around 2–3; deeper probes cost more than they prune.
pub const DEFAULT_SUFFIX_DEPTH: u32 = 3;

/// Which binary similarity the join targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BinaryMeasure {
    Jaccard,
    Cosine,
}

impl BinaryMeasure {
    /// Minimum record size admissible for a partner of size `sx`
    /// (partners are no larger than `sx` thanks to the processing order).
    fn min_size(&self, t: f64, sx: usize) -> usize {
        match self {
            BinaryMeasure::Jaccard => (t * sx as f64 - 1e-9).ceil() as usize,
            BinaryMeasure::Cosine => (t * t * sx as f64 - 1e-9).ceil() as usize,
        }
    }

    /// Minimum overlap for the pair `(sx, sy)` to reach threshold `t`.
    fn overlap_bound(&self, t: f64, sx: usize, sy: usize) -> usize {
        match self {
            BinaryMeasure::Jaccard => (t / (1.0 + t) * (sx + sy) as f64 - 1e-9).ceil() as usize,
            BinaryMeasure::Cosine => (t * ((sx * sy) as f64).sqrt() - 1e-9).ceil() as usize,
        }
    }

    /// Prefix length for a record of size `s`.
    fn prefix_len(&self, t: f64, s: usize) -> usize {
        let guaranteed = self.min_size(t, s).min(s);
        s - guaranteed + 1
    }

    /// Final similarity from sizes and overlap.
    fn similarity(&self, sx: usize, sy: usize, o: usize) -> f64 {
        match self {
            BinaryMeasure::Jaccard => o as f64 / (sx + sy - o) as f64,
            BinaryMeasure::Cosine => o as f64 / ((sx * sy) as f64).sqrt(),
        }
    }
}

/// Lower bound on the Hamming distance between two sorted, duplicate-free
/// token arrays, by recursive median partitioning (the PPJoin+ suffix
/// filter's core estimate).
fn hamming_lower_bound(x: &[u32], y: &[u32], depth: u32) -> usize {
    let base = x.len().abs_diff(y.len());
    if depth == 0 || x.is_empty() || y.is_empty() {
        return base;
    }
    let mid = y.len() / 2;
    let w = y[mid];
    let (yl, yr) = (&y[..mid], &y[mid + 1..]);
    match x.binary_search(&w) {
        Ok(pos) => {
            hamming_lower_bound(&x[..pos], yl, depth - 1)
                + hamming_lower_bound(&x[pos + 1..], yr, depth - 1)
        }
        Err(pos) => {
            // `w` is unmatched: one guaranteed difference.
            hamming_lower_bound(&x[..pos], yl, depth - 1)
                + hamming_lower_bound(&x[pos..], yr, depth - 1)
                + 1
        }
    }
}

/// Per-candidate accumulator state during the prefix scan.
#[derive(Clone, Copy)]
struct CandState {
    /// Shared prefix tokens counted so far (u32::MAX = positionally pruned).
    count: u32,
    /// Position (in x) of the last prefix match.
    last_i: u32,
    /// Position (in y) of the last prefix match.
    last_j: u32,
}

/// Join statistics, used by the filter-ablation benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PpjoinStats {
    /// Candidates surviving the prefix filter (distinct pairs touched).
    pub after_prefix: u64,
    /// Candidates abandoned by the positional filter.
    pub pruned_positional: u64,
    /// Candidates killed by the suffix filter.
    pub pruned_suffix: u64,
    /// Candidates verified by exact overlap count.
    pub verified: u64,
}

fn run(
    data: &Dataset,
    t: f64,
    measure: BinaryMeasure,
    suffix_depth: u32,
) -> (Vec<(u32, u32, f64)>, PpjoinStats) {
    assert!(t > 0.0 && t <= 1.0, "threshold must be in (0, 1], got {t}");
    let records = rank_tokens(data);
    let n = records.len();
    let mut stats = PpjoinStats::default();

    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&i| records[i as usize].len());

    // token -> (record id, position of token within the record's prefix).
    let mut index: FxHashMap<u32, Vec<(u32, u32)>> = FxHashMap::default();
    let mut results = Vec::new();
    let mut acc: FxHashMap<u32, CandState> = FxHashMap::default();

    for &xid in &order {
        let x = &records[xid as usize];
        let sx = x.len();
        if sx == 0 {
            continue;
        }
        let min_size = measure.min_size(t, sx);
        let px = measure.prefix_len(t, sx).min(sx);

        acc.clear();
        for (i, &tok) in x[..px].iter().enumerate() {
            if let Some(list) = index.get(&tok) {
                for &(yid, j) in list {
                    let sy = records[yid as usize].len();
                    if sy < min_size {
                        continue; // size filter
                    }
                    let alpha = measure.overlap_bound(t, sx, sy);
                    let entry = acc.entry(yid).or_insert(CandState {
                        count: 0,
                        last_i: 0,
                        last_j: 0,
                    });
                    if entry.count == u32::MAX {
                        continue; // already positionally pruned
                    }
                    // Positional filter: best achievable total overlap.
                    let ubound = entry.count as usize + 1 + (sx - i - 1).min(sy - j as usize - 1);
                    if ubound < alpha {
                        entry.count = u32::MAX;
                        stats.pruned_positional += 1;
                        continue;
                    }
                    entry.count += 1;
                    entry.last_i = i as u32;
                    entry.last_j = j;
                }
            }
        }

        for (&yid, st) in acc.iter() {
            stats.after_prefix += 1;
            if st.count == u32::MAX || st.count == 0 {
                continue;
            }
            let y = &records[yid as usize];
            let sy = y.len();
            let alpha = measure.overlap_bound(t, sx, sy);
            let xs = &x[st.last_i as usize + 1..];
            let ys = &y[st.last_j as usize + 1..];
            // Suffix filter: needed suffix overlap translates into a
            // Hamming-distance budget.
            let needed = alpha.saturating_sub(st.count as usize);
            if needed > 0 && suffix_depth > 0 {
                let budget = (xs.len() + ys.len()).saturating_sub(2 * needed);
                if hamming_lower_bound(xs, ys, suffix_depth) > budget {
                    stats.pruned_suffix += 1;
                    continue;
                }
            }
            stats.verified += 1;
            // Exact overlap: prefix matches + suffix overlap (sortedness
            // makes the two ranges disjoint and exhaustive).
            let o = st.count as usize + overlap_sorted(xs, ys);
            if o >= alpha {
                let s = measure.similarity(sx, sy, o);
                if s >= t {
                    let (lo, hi) = if xid < yid { (xid, yid) } else { (yid, xid) };
                    results.push((lo, hi, s));
                }
            }
        }

        for (i, &tok) in x[..px].iter().enumerate() {
            index.entry(tok).or_default().push((xid, i as u32));
        }
    }

    results.sort_unstable_by_key(|a| (a.0, a.1));
    (results, stats)
}

/// Exact PPJoin+ self-join under Jaccard similarity.
pub fn ppjoin_jaccard(data: &Dataset, t: f64) -> Vec<(u32, u32, f64)> {
    run(data, t, BinaryMeasure::Jaccard, DEFAULT_SUFFIX_DEPTH).0
}

/// Exact PPJoin+ self-join under binary cosine similarity.
pub fn ppjoin_binary_cosine(data: &Dataset, t: f64) -> Vec<(u32, u32, f64)> {
    run(data, t, BinaryMeasure::Cosine, DEFAULT_SUFFIX_DEPTH).0
}

/// Jaccard join with configurable suffix-filter depth (0 disables the
/// filter — plain PPJoin), returning filter statistics. Used by the
/// ablation benchmarks.
pub fn ppjoin_jaccard_with_stats(
    data: &Dataset,
    t: f64,
    suffix_depth: u32,
) -> (Vec<(u32, u32, f64)>, PpjoinStats) {
    run(data, t, BinaryMeasure::Jaccard, suffix_depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_numeric::Xoshiro256;
    use bayeslsh_sparse::{cosine, jaccard, SparseVector};

    fn clustered_binary(n: usize, dim: u32, len: usize, seed: u64) -> Dataset {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut d = Dataset::new(dim);
        let n_clusters = (n / 5).max(1);
        let centers: Vec<Vec<u32>> = (0..n_clusters)
            .map(|_| {
                (0..len)
                    .map(|_| rng.next_below(dim as u64) as u32)
                    .collect()
            })
            .collect();
        for i in 0..n {
            let mut toks = centers[i % n_clusters].clone();
            for tk in toks.iter_mut() {
                if rng.next_bool(0.25) {
                    *tk = rng.next_below(dim as u64) as u32;
                }
            }
            d.push(SparseVector::from_indices(toks));
        }
        d
    }

    fn brute_pairs(
        data: &Dataset,
        t: f64,
        f: impl Fn(&SparseVector, &SparseVector) -> f64,
    ) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for a in 0..data.len() as u32 {
            for b in (a + 1)..data.len() as u32 {
                if f(data.vector(a), data.vector(b)) >= t {
                    out.push((a, b));
                }
            }
        }
        out
    }

    #[test]
    fn jaccard_matches_brute_force() {
        for seed in [21u64, 22, 23] {
            for &t in &[0.3, 0.5, 0.7, 0.9] {
                let data = clustered_binary(70, 800, 25, seed);
                let got: Vec<(u32, u32)> = ppjoin_jaccard(&data, t)
                    .into_iter()
                    .map(|(a, b, _)| (a, b))
                    .collect();
                let want = brute_pairs(&data, t, jaccard);
                assert_eq!(got, want, "seed={seed} t={t}");
            }
        }
    }

    #[test]
    fn binary_cosine_matches_brute_force() {
        for seed in [31u64, 32] {
            for &t in &[0.5, 0.7, 0.9] {
                let data = clustered_binary(70, 800, 25, seed);
                let got: Vec<(u32, u32)> = ppjoin_binary_cosine(&data, t)
                    .into_iter()
                    .map(|(a, b, _)| (a, b))
                    .collect();
                let want = brute_pairs(&data, t, cosine);
                assert_eq!(got, want, "seed={seed} t={t}");
            }
        }
    }

    #[test]
    fn similarities_are_exact() {
        let data = clustered_binary(40, 500, 20, 41);
        for (a, b, s) in ppjoin_jaccard(&data, 0.4) {
            let truth = jaccard(data.vector(a), data.vector(b));
            assert!((s - truth).abs() < 1e-12, "({a},{b}): {s} vs {truth}");
        }
    }

    #[test]
    fn suffix_filter_never_changes_results() {
        let data = clustered_binary(80, 600, 30, 42);
        for &t in &[0.4, 0.6, 0.8] {
            let (with, stats_with) = ppjoin_jaccard_with_stats(&data, t, DEFAULT_SUFFIX_DEPTH);
            let (without, stats_without) = ppjoin_jaccard_with_stats(&data, t, 0);
            assert_eq!(with, without, "t={t}");
            assert_eq!(stats_without.pruned_suffix, 0);
            // The suffix filter reduces exact verifications.
            assert!(stats_with.verified <= stats_without.verified);
        }
    }

    #[test]
    fn hamming_lower_bound_is_sound() {
        let mut rng = Xoshiro256::seed_from_u64(43);
        for _ in 0..300 {
            let x: Vec<u32> = {
                let mut v: Vec<u32> = (0..20).map(|_| rng.next_below(60) as u32).collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let y: Vec<u32> = {
                let mut v: Vec<u32> = (0..20).map(|_| rng.next_below(60) as u32).collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let o = overlap_sorted(&x, &y);
            let true_hamming = x.len() + y.len() - 2 * o;
            for depth in 0..=4 {
                let lb = hamming_lower_bound(&x, &y, depth);
                assert!(
                    lb <= true_hamming,
                    "depth={depth}: lb {lb} > true {true_hamming} for {x:?} {y:?}"
                );
            }
        }
    }

    #[test]
    fn hamming_lower_bound_tightens_with_depth() {
        // Deeper recursion can only improve (or keep) the bound for these
        // structured cases.
        let x: Vec<u32> = (0..30).map(|i| i * 2).collect();
        let y: Vec<u32> = (0..30).map(|i| i * 2 + 1).collect();
        let d0 = hamming_lower_bound(&x, &y, 0);
        let d3 = hamming_lower_bound(&x, &y, 3);
        assert!(d3 >= d0);
        assert!(d3 > 0, "fully disjoint arrays must show a positive bound");
    }

    #[test]
    fn empty_and_tiny_records() {
        let mut d = Dataset::new(10);
        d.push(SparseVector::empty());
        d.push(SparseVector::from_indices(vec![1]));
        d.push(SparseVector::from_indices(vec![1]));
        let got = ppjoin_jaccard(&d, 0.5);
        assert_eq!(got.len(), 1);
        assert_eq!((got[0].0, got[0].1), (1, 2));
        assert_eq!(got[0].2, 1.0);
    }

    #[test]
    fn high_threshold_returns_only_near_duplicates() {
        let data = clustered_binary(50, 400, 20, 44);
        for (a, b, s) in ppjoin_jaccard(&data, 0.95) {
            assert!(s >= 0.95, "pair ({a},{b}) has similarity {s}");
        }
    }
}
