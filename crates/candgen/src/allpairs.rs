//! AllPairs (Bayardo, Ma & Srikant, "Scaling Up All Pairs Similarity
//! Search", WWW 2007).
//!
//! The exact state-of-the-art baseline of the BayesLSH paper for weighted
//! cosine similarity, and one of its two candidate generators. The key idea
//! is *partial indexing*: when indexing vector `y` (features processed in a
//! fixed dimension order), keep a prefix of features out of the inverted
//! index as long as the bound
//! `b = Σ_{d ∈ prefix} y[d] · min(maxweight_d(V), maxweight(y))` stays
//! below `t`: any vector that overlaps `y` *only* inside that prefix cannot
//! reach similarity `t`. Matching later vectors accumulate partial dot
//! products over the inverted lists and add back the exact prefix
//! contribution during verification.
//!
//! Soundness of the pruning used here (all proved in terms of unit vectors,
//! and exercised against brute force in the tests):
//!
//! * *Prefix bound*: vectors are processed in decreasing `maxweight` order,
//!   so every later probe `x` has `maxweight(x) ≤ maxweight(y)`, making
//!   `b` a valid upper bound on `dot(x, prefix(y))`.
//! * *Remscore*: when a probe meets a candidate `y` with no accumulated
//!   score, the rest of the dot product is at most
//!   `remscore + ‖prefix(y)‖`; below `t` the candidate is skipped.
//! * *Verification bound*: `s ≤ A[y] + ‖x‖·‖prefix(y)‖`; below `t` the
//!   exact prefix dot product is skipped.
//!
//! The binary/Jaccard variant uses size-aware prefix filtering (overlap
//! bound `o ≥ ceil(t/(1+t)·(|x|+|y|))`), the form Bayardo's binary
//! algorithm and the later prefix-filter literature share.

use bayeslsh_sparse::{Dataset, SparseVector};

use crate::fxhash::FxHashMap;
use crate::pairs::PairSet;

/// Scored output pairs `(lo_id, hi_id, similarity)`.
pub type ScoredPairs = Vec<(u32, u32, f64)>;
/// Unscored candidate pairs `(lo_id, hi_id)`.
pub type CandidatePairs = Vec<(u32, u32)>;

/// What the shared core should produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Verified pairs with exact similarities.
    Exact,
    /// The raw candidate set (pairs that touched the score accumulator),
    /// to be verified downstream by BayesLSH.
    Candidates,
}

/// Exact all-pairs cosine join: every pair with `cosine(x, y) >= t`.
pub fn all_pairs_cosine(data: &Dataset, t: f64) -> Vec<(u32, u32, f64)> {
    let (exact, _) = run_cosine(data, t, Mode::Exact);
    exact
}

/// The candidate pairs AllPairs would verify, without verification — the
/// input the paper feeds to AP+BayesLSH.
pub fn all_pairs_cosine_candidates(data: &Dataset, t: f64) -> Vec<(u32, u32)> {
    let (_, cands) = run_cosine(data, t, Mode::Candidates);
    cands
}

/// Per-vector feature list in dimension-rank space.
struct Ranked {
    /// (rank, weight), sorted by rank ascending.
    feats: Vec<(u32, f32)>,
    maxw: f32,
}

fn run_cosine(data: &Dataset, t: f64, mode: Mode) -> (ScoredPairs, CandidatePairs) {
    assert!(
        t > 0.0 && t <= 1.0,
        "cosine threshold must be in (0, 1], got {t}"
    );
    let n = data.len();
    let dim = data.dim() as usize;

    // Unit-normalize so cosine is a plain dot product.
    let norm: Vec<SparseVector> = data.vectors().iter().map(|v| v.l2_normalized()).collect();

    // Dimension order: most frequent dimensions first (they stay in the
    // unindexed prefix, keeping inverted lists short).
    let df = data.document_frequencies();
    let mut dims: Vec<u32> = (0..dim as u32).collect();
    dims.sort_by_key(|&d| std::cmp::Reverse(df[d as usize]));
    let mut rank = vec![0u32; dim];
    for (r, &d) in dims.iter().enumerate() {
        rank[d as usize] = r as u32;
    }

    let ranked: Vec<Ranked> = norm
        .iter()
        .map(|v| {
            let mut feats: Vec<(u32, f32)> = v.iter().map(|(d, w)| (rank[d as usize], w)).collect();
            feats.sort_unstable_by_key(|&(r, _)| r);
            Ranked {
                feats,
                maxw: v.max_weight(),
            }
        })
        .collect();

    // Per-dimension max weight over the whole collection (rank space).
    let mut maxw_dim = vec![0.0f32; dim];
    for r in &ranked {
        for &(d, w) in &r.feats {
            let w = w.abs();
            if w > maxw_dim[d as usize] {
                maxw_dim[d as usize] = w;
            }
        }
    }

    // Process vectors in decreasing maxweight order (required by the
    // min(maxweight_d, maxweight(x)) refinement of the prefix bound).
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        ranked[b as usize]
            .maxw
            .partial_cmp(&ranked[a as usize].maxw)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // Inverted index over the *indexed suffixes*, plus stored prefixes.
    let mut index: Vec<Vec<(u32, f32)>> = vec![Vec::new(); dim];
    let mut prefix: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n];
    let mut prefix_norm = vec![0.0f64; n];

    let mut exact = Vec::new();
    let mut cands = PairSet::new();
    let mut acc: FxHashMap<u32, f64> = FxHashMap::default();

    for &xid in &order {
        let x = &ranked[xid as usize];
        if x.feats.is_empty() {
            continue;
        }

        // --- Find matches against already-indexed vectors. ---
        acc.clear();
        let mut remscore: f64 = x
            .feats
            .iter()
            .map(|&(d, w)| w as f64 * maxw_dim[d as usize] as f64)
            .sum();
        for &(d, w) in &x.feats {
            for &(yid, yw) in &index[d as usize] {
                match acc.entry(yid) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        *e.get_mut() += w as f64 * yw as f64;
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        // New candidate: the rest of the dot product is at
                        // most remscore (indexed part, all at ranks >= d)
                        // plus the prefix norm (unindexed part).
                        if remscore + prefix_norm[yid as usize] >= t {
                            e.insert(w as f64 * yw as f64);
                        }
                    }
                }
            }
            remscore -= w as f64 * maxw_dim[d as usize] as f64;
        }

        match mode {
            Mode::Candidates => {
                for &yid in acc.keys() {
                    cands.insert(xid, yid);
                }
            }
            Mode::Exact => {
                for (&yid, &a) in acc.iter() {
                    // Cheap upper bound before the exact prefix dot.
                    if a + prefix_norm[yid as usize] < t {
                        continue;
                    }
                    let s = a + dot_ranked(&x.feats, &prefix[yid as usize]);
                    if s >= t {
                        let (lo, hi) = if xid < yid { (xid, yid) } else { (yid, xid) };
                        exact.push((lo, hi, s.min(1.0)));
                    }
                }
            }
        }

        // --- Partially index x. ---
        let mut b = 0.0f64;
        let mut pre = Vec::new();
        for &(d, w) in &x.feats {
            b += w as f64 * (maxw_dim[d as usize].min(x.maxw)) as f64;
            if b >= t {
                index[d as usize].push((xid, w));
            } else {
                pre.push((d, w));
            }
        }
        prefix_norm[xid as usize] = pre
            .iter()
            .map(|&(_, w)| (w as f64) * (w as f64))
            .sum::<f64>()
            .sqrt();
        prefix[xid as usize] = pre;
    }

    exact.sort_unstable_by_key(|a| (a.0, a.1));
    (exact, cands.into_vec())
}

/// Merge-join dot product over rank-sorted feature lists.
fn dot_ranked(a: &[(u32, f32)], b: &[(u32, f32)]) -> f64 {
    let mut acc = 0.0f64;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += a[i].1 as f64 * b[j].1 as f64;
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

// ---------------------------------------------------------------------------
// Binary / Jaccard variant via size-aware prefix filtering.
// ---------------------------------------------------------------------------

/// Exact all-pairs Jaccard join over binary vectors.
pub fn all_pairs_jaccard(data: &Dataset, t: f64) -> Vec<(u32, u32, f64)> {
    let (exact, _) = run_jaccard(data, t, Mode::Exact);
    exact
}

/// The Jaccard candidate set (prefix-filter survivors), to feed
/// AP+BayesLSH on binary data.
pub fn all_pairs_jaccard_candidates(data: &Dataset, t: f64) -> Vec<(u32, u32)> {
    let (_, cands) = run_jaccard(data, t, Mode::Candidates);
    cands
}

/// Records as rank-remapped, ascending token arrays (rare tokens first).
pub(crate) fn rank_tokens(data: &Dataset) -> Vec<Vec<u32>> {
    let dim = data.dim() as usize;
    let df = data.document_frequencies();
    let mut dims: Vec<u32> = (0..dim as u32).collect();
    // Rare tokens get the smallest ranks → they populate the prefixes.
    dims.sort_by_key(|&d| (df[d as usize], d));
    let mut rank = vec![0u32; dim];
    for (r, &d) in dims.iter().enumerate() {
        rank[d as usize] = r as u32;
    }
    data.vectors()
        .iter()
        .map(|v| {
            let mut toks: Vec<u32> = v.indices().iter().map(|&d| rank[d as usize]).collect();
            toks.sort_unstable();
            toks
        })
        .collect()
}

/// Minimum overlap for `J(x, y) >= t` at sizes `(sx, sy)`:
/// `ceil(t/(1+t) · (sx + sy))`.
#[inline]
pub(crate) fn jaccard_overlap_bound(t: f64, sx: usize, sy: usize) -> usize {
    (t / (1.0 + t) * (sx + sy) as f64 - 1e-9).ceil() as usize
}

/// Probing/indexing prefix length for Jaccard threshold `t` at size `s`:
/// `s − ceil(t·s) + 1`.
#[inline]
pub(crate) fn jaccard_prefix_len(t: f64, s: usize) -> usize {
    let min_overlap = (t * s as f64 - 1e-9).ceil() as usize;
    s - min_overlap.min(s) + 1
}

/// Sorted-array overlap count.
pub(crate) fn overlap_sorted(a: &[u32], b: &[u32]) -> usize {
    let mut count = 0;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

fn run_jaccard(data: &Dataset, t: f64, mode: Mode) -> (ScoredPairs, CandidatePairs) {
    assert!(
        t > 0.0 && t <= 1.0,
        "jaccard threshold must be in (0, 1], got {t}"
    );
    let records = rank_tokens(data);
    let n = records.len();

    // Process in increasing size order so the size filter is one-sided.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&i| records[i as usize].len());

    // token rank -> list of (record id, size) already indexed.
    let mut index: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
    let mut exact = Vec::new();
    let mut cands = PairSet::new();
    let mut seen: FxHashMap<u32, ()> = FxHashMap::default();

    for &xid in &order {
        let x = &records[xid as usize];
        if x.is_empty() {
            continue;
        }
        let sx = x.len();
        let min_size = (t * sx as f64 - 1e-9).ceil() as usize;
        let p = jaccard_prefix_len(t, sx);

        seen.clear();
        for &tok in &x[..p.min(sx)] {
            if let Some(list) = index.get(&tok) {
                for &yid in list {
                    let sy = records[yid as usize].len();
                    if sy < min_size {
                        continue; // size filter (sy <= sx by ordering)
                    }
                    if seen.insert(yid, ()).is_some() {
                        continue;
                    }
                    match mode {
                        Mode::Candidates => {
                            cands.insert(xid, yid);
                        }
                        Mode::Exact => {
                            let y = &records[yid as usize];
                            let o = overlap_sorted(x, y);
                            if o >= jaccard_overlap_bound(t, sx, sy) {
                                let j = o as f64 / (sx + sy - o) as f64;
                                if j >= t {
                                    let (lo, hi) = if xid < yid { (xid, yid) } else { (yid, xid) };
                                    exact.push((lo, hi, j));
                                }
                            }
                        }
                    }
                }
            }
        }

        // Index x's prefix.
        for &tok in &x[..p.min(sx)] {
            index.entry(tok).or_default().push(xid);
        }
    }

    exact.sort_unstable_by_key(|a| (a.0, a.1));
    (exact, cands.into_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_numeric::Xoshiro256;
    use bayeslsh_sparse::{cosine, jaccard};

    fn brute_force(
        data: &Dataset,
        t: f64,
        f: impl Fn(&SparseVector, &SparseVector) -> f64,
    ) -> Vec<(u32, u32, f64)> {
        let mut out = Vec::new();
        for a in 0..data.len() as u32 {
            for b in (a + 1)..data.len() as u32 {
                let s = f(data.vector(a), data.vector(b));
                if s >= t {
                    out.push((a, b, s));
                }
            }
        }
        out
    }

    fn random_weighted(n: usize, dim: u32, len: usize, seed: u64) -> Dataset {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut d = Dataset::new(dim);
        // Clustered so that similar pairs exist.
        let n_clusters = (n / 5).max(1);
        let centers: Vec<Vec<(u32, f32)>> = (0..n_clusters)
            .map(|_| {
                (0..len)
                    .map(|_| {
                        (
                            rng.next_below(dim as u64) as u32,
                            (rng.next_f64() + 0.2) as f32,
                        )
                    })
                    .collect()
            })
            .collect();
        for i in 0..n {
            let mut pairs = centers[i % n_clusters].clone();
            for p in pairs.iter_mut() {
                if rng.next_bool(0.3) {
                    *p = (
                        rng.next_below(dim as u64) as u32,
                        (rng.next_f64() + 0.2) as f32,
                    );
                }
            }
            d.push(SparseVector::from_pairs(pairs));
        }
        d
    }

    fn pair_ids(v: &[(u32, u32, f64)]) -> Vec<(u32, u32)> {
        v.iter().map(|&(a, b, _)| (a, b)).collect()
    }

    #[test]
    fn cosine_matches_brute_force() {
        for seed in [1u64, 2, 3] {
            for &t in &[0.5, 0.7, 0.9] {
                let data = random_weighted(60, 500, 20, seed);
                let got = all_pairs_cosine(&data, t);
                let want = brute_force(&data, t, cosine);
                assert_eq!(
                    pair_ids(&got),
                    pair_ids(&want),
                    "seed={seed} t={t}: {} vs {}",
                    got.len(),
                    want.len()
                );
                // Normalized copies store f32 weights, so AllPairs' exact
                // similarities can differ from the f64 brute force at ~1e-8.
                for (g, w) in got.iter().zip(&want) {
                    assert!((g.2 - w.2).abs() < 1e-6, "similarity mismatch {g:?} {w:?}");
                }
                if t <= 0.5 {
                    assert!(
                        !want.is_empty(),
                        "t={t} should exercise non-empty result sets"
                    );
                }
            }
        }
    }

    #[test]
    fn cosine_candidates_superset_of_results() {
        let data = random_weighted(80, 400, 15, 7);
        let t = 0.6;
        let cands = all_pairs_cosine_candidates(&data, t);
        let cand_set: std::collections::HashSet<(u32, u32)> = cands.into_iter().collect();
        for (a, b, _) in all_pairs_cosine(&data, t) {
            assert!(
                cand_set.contains(&(a, b)),
                "result pair ({a},{b}) missing from candidates"
            );
        }
    }

    #[test]
    fn cosine_candidates_far_fewer_than_all_pairs() {
        let data = random_weighted(100, 2000, 10, 9);
        let cands = all_pairs_cosine_candidates(&data, 0.8);
        let total = 100 * 99 / 2;
        assert!(
            cands.len() < total / 2,
            "partial indexing should prune the quadratic space: {} of {total}",
            cands.len()
        );
    }

    #[test]
    fn cosine_handles_empty_vectors() {
        let mut data = Dataset::new(10);
        data.push(SparseVector::empty());
        data.push(SparseVector::from_indices(vec![1, 2]));
        data.push(SparseVector::from_indices(vec![1, 2]));
        let got = all_pairs_cosine(&data, 0.9);
        assert_eq!(pair_ids(&got), vec![(1, 2)]);
    }

    #[test]
    fn jaccard_matches_brute_force() {
        for seed in [11u64, 12] {
            for &t in &[0.3, 0.5, 0.7] {
                let data = random_weighted(60, 500, 20, seed).binarized();
                let got = all_pairs_jaccard(&data, t);
                let want = brute_force(&data, t, jaccard);
                assert_eq!(
                    pair_ids(&got),
                    pair_ids(&want),
                    "seed={seed} t={t}: {} vs {}",
                    got.len(),
                    want.len()
                );
            }
        }
    }

    #[test]
    fn jaccard_candidates_superset_of_results() {
        let data = random_weighted(80, 400, 15, 13).binarized();
        let t = 0.4;
        let cand_set: std::collections::HashSet<(u32, u32)> =
            all_pairs_jaccard_candidates(&data, t).into_iter().collect();
        for (a, b, _) in all_pairs_jaccard(&data, t) {
            assert!(
                cand_set.contains(&(a, b)),
                "result pair ({a},{b}) missing from candidates"
            );
        }
    }

    #[test]
    fn jaccard_helper_bounds() {
        // t = 0.8, sizes 10, 10 → ceil(0.8/1.8 · 20) = ceil(8.888) = 9.
        assert_eq!(jaccard_overlap_bound(0.8, 10, 10), 9);
        // t = 0.5: prefix of a 10-token record is 10 − 5 + 1 = 6.
        assert_eq!(jaccard_prefix_len(0.5, 10), 6);
        // t = 1.0: prefix collapses to a single token.
        assert_eq!(jaccard_prefix_len(1.0, 10), 1);
    }

    #[test]
    fn overlap_sorted_basics() {
        assert_eq!(overlap_sorted(&[1, 3, 5], &[3, 5, 7]), 2);
        assert_eq!(overlap_sorted(&[], &[1]), 0);
        assert_eq!(overlap_sorted(&[2, 4], &[1, 3]), 0);
    }

    #[test]
    fn identical_vectors_found_at_high_threshold() {
        let mut data = Dataset::new(100);
        let v = SparseVector::from_pairs(vec![(3, 0.5), (50, 1.0), (99, 0.25)]);
        data.push(v.clone());
        data.push(v.clone());
        data.push(SparseVector::from_pairs(vec![(7, 1.0)]));
        let got = all_pairs_cosine(&data, 0.999);
        assert_eq!(pair_ids(&got), vec![(0, 1)]);
        assert!((got[0].2 - 1.0).abs() < 1e-9);
    }
}
