//! Classical LSH banding index for candidate generation (paper Section 2).
//!
//! Each object gets `l` signatures, each the concatenation of `k` hashes;
//! every pair sharing at least one signature becomes a candidate. For a
//! threshold `t` whose per-hash collision probability is `p` (Jaccard: `p =
//! t`; cosine: `p = c2r(t)`), the number of signatures needed for an
//! expected false-negative rate ε is `l = ceil(log ε / log(1 − p^k))`.

use bayeslsh_lsh::{BitSignatures, IntSignatures, ProjSignatures, SignaturePool};
use bayeslsh_numeric::fan_out;
use bayeslsh_numeric::wire::{WireError, WireReader, WireWriter};
use bayeslsh_sparse::Dataset;

use crate::fxhash::{FxHashMap, FxHasher};
use crate::pairs::PairSet;
use std::hash::Hasher;

/// Banding configuration: `l` bands of `k` hashes each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandingParams {
    /// Hashes per signature (band width).
    pub k: u32,
    /// Number of signatures (bands).
    pub l: u32,
}

/// The resolved banding configuration for a similarity threshold, with the
/// guarantee actually achieved. The `l` formula can demand more bands than
/// the caller's cap allows (low thresholds, wide bands); instead of
/// clamping invisibly, the plan reports the requested versus achieved
/// false-negative rates so callers can surface the gap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandingPlan {
    /// The banding configuration to index with.
    pub params: BandingParams,
    /// Per-hash collision probability at the similarity threshold.
    pub collision_prob: f64,
    /// The false-negative rate the caller asked for.
    pub requested_fnr: f64,
    /// The expected false-negative rate at the threshold under `params`:
    /// `(1 − p^k)^l`. Equals (or beats) `requested_fnr` unless `clamped`.
    pub achieved_fnr: f64,
    /// True when the band cap truncated `l` below the formula's demand, so
    /// `achieved_fnr > requested_fnr`.
    pub clamped: bool,
}

impl BandingParams {
    /// Compute `l` from the paper's formula for false-negative rate `eps`
    /// at per-hash collision probability `p` (the collision probability *at
    /// the similarity threshold*), capping at `max_l`.
    ///
    /// `l = ceil(log eps / log(1 − p^k))`.
    ///
    /// Prefer [`BandingParams::plan`] when the caller should know whether
    /// the cap weakened the recall guarantee.
    pub fn for_threshold(p: f64, k: u32, eps: f64, max_l: u32) -> Self {
        Self::plan(p, k, eps, max_l).params
    }

    /// Like [`BandingParams::for_threshold`], but reports the achieved
    /// false-negative rate alongside the parameters instead of clamping
    /// silently.
    pub fn plan(p: f64, k: u32, eps: f64, max_l: u32) -> BandingPlan {
        assert!((0.0..=1.0).contains(&p), "collision probability {p}");
        assert!(k >= 1, "band width must be at least 1");
        assert!(eps > 0.0 && eps < 1.0, "false negative rate {eps}");
        let pk = p.powi(k as i32);
        let (l, clamped) = if pk <= 0.0 {
            // No number of bands catches a zero-probability collision.
            (max_l, true)
        } else if pk >= 1.0 {
            (1, false)
        } else {
            let raw = (eps.ln() / (1.0 - pk).ln()).ceil();
            if raw.is_finite() && raw >= 1.0 {
                ((raw as u32).min(max_l), raw > max_l as f64)
            } else {
                (max_l, true)
            }
        };
        let params = BandingParams { k, l: l.max(1) };
        BandingPlan {
            params,
            collision_prob: p,
            requested_fnr: eps,
            achieved_fnr: 1.0 - params.candidate_prob(p),
            clamped,
        }
    }

    /// Total hashes per object the banding consumes.
    pub fn total_hashes(&self) -> u32 {
        self.k * self.l
    }

    /// Probability that a pair with per-hash collision probability `p`
    /// becomes a candidate: `1 − (1 − p^k)^l`.
    pub fn candidate_prob(&self, p: f64) -> f64 {
        1.0 - (1.0 - p.powi(self.k as i32)).powi(self.l as i32)
    }
}

/// Extract `len <= 64` bits starting at bit `lo` from packed 32-bit words
/// (LSB-first) — the band-key extraction used by the index, public so that
/// query-time probes (e.g. k-NN search) can compute identical keys.
#[inline]
pub fn extract_bits(words: &[u32], lo: u32, len: u32) -> u64 {
    debug_assert!(len <= 64);
    let mut out = 0u64;
    let mut got = 0u32;
    while got < len {
        let bit = lo + got;
        let word = words[(bit / 32) as usize] as u64;
        let offset = bit % 32;
        let take = (32 - offset).min(len - got); // <= 32, so the shift is safe
        let chunk = (word >> offset) & ((1u64 << take) - 1);
        out |= chunk << got;
        got += take;
    }
    out
}

/// The band key of bit signature `words` for band `band` of width `k`
/// (`k <= 64`): the raw bit run, identical for pool members and external
/// query signatures.
#[inline]
pub fn band_key_bits(words: &[u32], band: u32, k: u32) -> u64 {
    extract_bits(words, band * k, k)
}

/// The band key of integer minhash signature `sigs` for band `band` of
/// width `k`: an FxHash of the band's minhash run.
#[inline]
pub fn band_key_ints(sigs: &[u32], band: u32, k: u32) -> u64 {
    let lo = (band * k) as usize;
    let mut h = FxHasher::default();
    for &m in &sigs[lo..lo + k as usize] {
        h.write_u32(m);
    }
    h.finish()
}

/// All `l` band keys of a bit signature.
pub fn band_keys_bits(words: &[u32], params: BandingParams) -> Vec<u64> {
    (0..params.l)
        .map(|band| band_key_bits(words, band, params.k))
        .collect()
}

/// All `l` band keys of an integer minhash signature.
pub fn band_keys_ints(sigs: &[u32], params: BandingParams) -> Vec<u64> {
    (0..params.l)
        .map(|band| band_key_ints(sigs, band, params.k))
        .collect()
}

/// A standing, growable LSH banding index: one bucket map per band, keyed
/// by band keys, holding object ids.
///
/// Unlike the one-shot candidate dumps ([`lsh_candidates_bits`] /
/// [`lsh_candidates_ints`], now thin wrappers over this type), the index
/// persists across operations: build it once, then serve any mix of
/// [`BandingIndex::all_pairs`] joins, [`BandingIndex::probe`] point
/// lookups, and incremental [`BandingIndex::insert`]s. Key computation is
/// the caller's (hash-family-specific) job via [`band_keys_bits`] /
/// [`band_keys_ints`], so the index itself is storage-agnostic.
#[derive(Debug, Clone)]
pub struct BandingIndex {
    params: BandingParams,
    /// One key → ids map per band.
    buckets: Vec<FxHashMap<u64, Vec<u32>>>,
    indexed: usize,
}

impl BandingIndex {
    /// An empty index with `params.l` bands.
    pub fn new(params: BandingParams) -> Self {
        assert!(params.k >= 1 && params.l >= 1, "degenerate banding");
        Self {
            params,
            buckets: vec![FxHashMap::default(); params.l as usize],
            indexed: 0,
        }
    }

    /// The banding configuration in use.
    pub fn params(&self) -> BandingParams {
        self.params
    }

    /// Number of objects inserted.
    pub fn len(&self) -> usize {
        self.indexed
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.indexed == 0
    }

    /// Insert object `id` under its `l` band keys.
    pub fn insert(&mut self, id: u32, keys: &[u64]) {
        assert_eq!(
            keys.len(),
            self.params.l as usize,
            "expected one key per band"
        );
        for (band, &key) in keys.iter().enumerate() {
            self.buckets[band].entry(key).or_default().push(id);
        }
        self.indexed += 1;
    }

    /// Unlink object `id` from its `l` band buckets (the same keys it was
    /// inserted under). Returns `true` when the id was present.
    ///
    /// Bucket vectors keep their remaining ids in insertion order and
    /// emptied buckets stay in their maps, so the iteration order other
    /// ids see — and therefore [`BandingIndex::all_pairs`] /
    /// [`BandingIndex::probe`] output for the survivors — is exactly the
    /// original order with the removed id dropped. (A compaction pass
    /// that rebuilds the index sheds the empty buckets.)
    pub fn remove(&mut self, id: u32, keys: &[u64]) -> bool {
        assert_eq!(
            keys.len(),
            self.params.l as usize,
            "expected one key per band"
        );
        let mut found = false;
        for (band, &key) in keys.iter().enumerate() {
            if let Some(ids) = self.buckets[band].get_mut(&key) {
                if let Some(pos) = ids.iter().position(|&x| x == id) {
                    ids.remove(pos);
                    found = true;
                }
            }
        }
        if found {
            self.indexed -= 1;
        }
        found
    }

    /// Build an index concurrently: the `l` bands are sharded across up to
    /// `threads` workers, each worker populating its bands' bucket maps by
    /// scanning `ids` in order and asking `key_of(id, band)` for the band
    /// key (typically a read into a pre-hashed signature pool — keys are
    /// computed shard-locally, so no id-major key buffer is materialized).
    ///
    /// Because a single band's bucket map sees exactly the same
    /// `(key, id)` insertion sequence as `ids.len()` serial
    /// [`BandingIndex::insert`] calls, the resulting index — including
    /// bucket-map iteration order, and therefore
    /// [`BandingIndex::all_pairs`] / [`BandingIndex::probe`] output — is
    /// identical to the serially built one whatever the thread count.
    pub fn par_build<F>(params: BandingParams, ids: &[u32], threads: usize, key_of: F) -> Self
    where
        F: Fn(u32, u32) -> u64 + Sync,
    {
        let shards = fan_out(params.l as usize, threads, |_, bands| {
            bands
                .map(|band| {
                    let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
                    for &id in ids {
                        buckets.entry(key_of(id, band as u32)).or_default().push(id);
                    }
                    buckets
                })
                .collect::<Vec<_>>()
        });
        let mut index = Self::new(params);
        index.buckets = shards.into_iter().flatten().collect();
        index.indexed = ids.len();
        index
    }

    /// [`BandingIndex::probe`] with the bands fanned out across up to
    /// `threads` workers and the per-band hit lists merged (deduplicated)
    /// in band order — the same first-encounter order as the serial probe.
    pub fn par_probe(&self, keys: &[u64], threads: usize) -> Vec<u32> {
        if threads <= 1 {
            return self.probe(keys);
        }
        assert_eq!(
            keys.len(),
            self.params.l as usize,
            "expected one key per band"
        );
        let shards = fan_out(keys.len(), threads, |_, bands| {
            bands
                .map(|band| {
                    self.buckets[band]
                        .get(&keys[band])
                        .map(Vec::as_slice)
                        .unwrap_or(&[])
                })
                .collect::<Vec<&[u32]>>()
        });
        let mut out = Vec::new();
        let mut seen = crate::fxhash::FxHashSet::<u32>::default();
        for ids in shards.into_iter().flatten() {
            for &id in ids {
                if seen.insert(id) {
                    out.push(id);
                }
            }
        }
        out
    }

    /// [`BandingIndex::all_pairs`] with the bands fanned out across up to
    /// `threads` workers. Each worker collects its bands' pairs into a
    /// locally deduplicated [`PairSet`]; the shards are merged in band
    /// order through a global `PairSet`, reproducing the serial
    /// first-encounter pair order exactly.
    pub fn par_all_pairs(&self, threads: usize) -> Vec<(u32, u32)> {
        if threads <= 1 {
            return self.all_pairs();
        }
        let shards = fan_out(self.buckets.len(), threads, |_, bands| {
            let mut local = PairSet::new();
            for band in bands {
                pairs_from_buckets(&self.buckets[band], &mut local);
            }
            local
        });
        let mut out = PairSet::new();
        for shard in shards {
            for &(a, b) in shard.as_slice() {
                out.insert(a, b);
            }
        }
        out.into_vec()
    }

    /// Serialize the index for a snapshot: banding parameters, then the
    /// ascending id list, then per band the id-ordered band-key stream.
    ///
    /// The id-ordered streams are the load-bearing choice. Bucket-map
    /// *iteration* order — which [`BandingIndex::all_pairs`] and
    /// [`BandingIndex::probe`] output order, and hence the candidate order
    /// downstream estimators see, depend on — is a deterministic function
    /// of the map's insertion sequence. Both construction paths insert ids
    /// in ascending order per band ([`BandingIndex::par_build`] scans `ids`
    /// in order; incremental [`BandingIndex::insert`]s always append a
    /// fresh, larger id), so [`BandingIndex::read_wire`] can replay exactly
    /// that sequence from the streams and reconstruct maps whose iteration
    /// order — and therefore every downstream result — is bit-identical to
    /// the saved index's.
    ///
    /// # Panics
    ///
    /// Panics if the index was built outside that contract (some id
    /// inserted more than once): such an insertion sequence is not
    /// reconstructible from sorted streams.
    pub fn write_wire<W: std::io::Write>(&self, w: &mut WireWriter<W>) -> Result<(), WireError> {
        w.put_u32(self.params.k)?;
        w.put_u32(self.params.l)?;
        w.put_u64(self.indexed as u64)?;
        // Reassemble each band's id-ordered (id, key) pairs from its
        // buckets. Within a bucket ids are already ascending (insertion
        // order), so a global sort per band restores the full sequence.
        let mut bands: Vec<Vec<(u32, u64)>> = self
            .buckets
            .iter()
            .map(|buckets| {
                let mut pairs: Vec<(u32, u64)> = buckets
                    .iter()
                    .flat_map(|(&key, ids)| ids.iter().map(move |&id| (id, key)))
                    .collect();
                pairs.sort_unstable_by_key(|&(id, _)| id);
                pairs
            })
            .collect();
        let ids: Vec<u32> = bands
            .first()
            .map(|pairs| pairs.iter().map(|&(id, _)| id).collect())
            .unwrap_or_default();
        assert!(
            ids.windows(2).all(|w| w[0] < w[1]) && ids.len() == self.indexed,
            "snapshot requires unique ascending-id insertions"
        );
        w.put_u64(ids.len() as u64)?;
        for &id in &ids {
            w.put_u32(id)?;
        }
        for pairs in bands.iter_mut() {
            assert_eq!(pairs.len(), ids.len(), "bands must index the same ids");
            for &(_, key) in pairs.iter() {
                w.put_u64(key)?;
            }
        }
        Ok(())
    }

    /// Deserialize an index written by [`BandingIndex::write_wire`],
    /// replaying the per-band ascending-id insertion sequence (sharded
    /// across up to `threads` workers, which reproduces the serial maps
    /// exactly — see [`BandingIndex::par_build`]). Ids must be strictly
    /// ascending and below `id_bound`; violations are typed
    /// [`WireError::Corrupt`]s, never panics.
    pub fn read_wire<R: std::io::Read>(
        r: &mut WireReader<R>,
        id_bound: u32,
        threads: usize,
    ) -> Result<Self, WireError> {
        // Far above any plan the `l` formula's callers produce (their cap
        // is 10k bands), yet small enough that a crafted band count cannot
        // spin or allocate per-band state unboundedly before the stream
        // runs out.
        const MAX_WIRE_BANDS: u32 = 1 << 20;
        let k = r.get_u32()?;
        let l = r.get_u32()?;
        if k < 1 || l < 1 {
            return Err(WireError::corrupt(format!("degenerate banding {k}x{l}")));
        }
        if l > MAX_WIRE_BANDS {
            return Err(WireError::corrupt(format!(
                "band count {l} above the format bound {MAX_WIRE_BANDS}"
            )));
        }
        let indexed = r.get_u64()?;
        let n_ids = r.get_u64()?;
        if n_ids != indexed || indexed > id_bound as u64 {
            return Err(WireError::corrupt(format!(
                "indexed count {indexed} disagrees with id list {n_ids} (bound {id_bound})"
            )));
        }
        let mut ids = Vec::with_capacity(n_ids.min(65_536) as usize);
        for _ in 0..n_ids {
            ids.push(r.get_u32()?);
        }
        if !ids.windows(2).all(|w| w[0] < w[1]) || ids.last().is_some_and(|&id| id >= id_bound) {
            return Err(WireError::corrupt(
                "id list not strictly ascending within bound".to_string(),
            ));
        }
        let mut keys = Vec::with_capacity((l as usize).min(65_536));
        for _ in 0..l {
            let mut band = Vec::with_capacity(ids.len());
            for _ in 0..ids.len() {
                band.push(r.get_u64()?);
            }
            keys.push(band);
        }
        let params = BandingParams { k, l };
        // O(1) id → stream-slot lookups for the replay below (the lookup
        // runs once per (id, band), so a per-key binary search would cost
        // n·l·log n on the cold-load path).
        let mut slot = vec![0u32; ids.last().map_or(0, |&id| id as usize + 1)];
        for (i, &id) in ids.iter().enumerate() {
            slot[id as usize] = i as u32;
        }
        // Replay through the standard sharded build: each band's map sees
        // the same ascending-id insertion sequence as the saved one did.
        let index = Self::par_build(params, &ids, threads, |id, band| {
            keys[band as usize][slot[id as usize] as usize]
        });
        Ok(index)
    }

    /// All distinct ids sharing at least one band bucket with the given
    /// query keys, in first-encounter order.
    pub fn probe(&self, keys: &[u64]) -> Vec<u32> {
        assert_eq!(
            keys.len(),
            self.params.l as usize,
            "expected one key per band"
        );
        let mut out = Vec::new();
        let mut seen = crate::fxhash::FxHashSet::<u32>::default();
        for (band, &key) in keys.iter().enumerate() {
            if let Some(ids) = self.buckets[band].get(&key) {
                for &id in ids {
                    if seen.insert(id) {
                        out.push(id);
                    }
                }
            }
        }
        out
    }

    /// Step-wise multi-probe lookup: `key_seqs[band]` is that band's probe
    /// sequence, its first entry the base band key and later entries
    /// perturbed keys ordered by descending expected collision probability
    /// (Lv et al., VLDB'07). Probing interleaves *step-wise* — every band's
    /// step-`s` key is tried before any band's step-`s+1` key — so the most
    /// promising buckets across all bands are drained first and truncating
    /// the sequences degrades gracefully. Hits are deduplicated in
    /// first-encounter order, which for one-key sequences is exactly
    /// [`BandingIndex::probe`]'s order; the second return is the number of
    /// bucket lookups performed (`Σ sequence lengths`, the query-cost knob
    /// multi-probe trades against band count).
    pub fn probe_multi(&self, key_seqs: &[Vec<u64>]) -> (Vec<u32>, u64) {
        assert_eq!(
            key_seqs.len(),
            self.params.l as usize,
            "expected one probe sequence per band"
        );
        let depth = key_seqs.iter().map(Vec::len).max().unwrap_or(0);
        let mut out = Vec::new();
        let mut seen = crate::fxhash::FxHashSet::<u32>::default();
        let mut probes = 0u64;
        for step in 0..depth {
            for (band, seq) in key_seqs.iter().enumerate() {
                let Some(&key) = seq.get(step) else { continue };
                probes += 1;
                if let Some(ids) = self.buckets[band].get(&key) {
                    for &id in ids {
                        if seen.insert(id) {
                            out.push(id);
                        }
                    }
                }
            }
        }
        (out, probes)
    }

    /// All distinct candidate pairs: every pair of ids sharing at least one
    /// band bucket.
    pub fn all_pairs(&self) -> Vec<(u32, u32)> {
        let mut out = PairSet::new();
        for buckets in &self.buckets {
            pairs_from_buckets(buckets, &mut out);
        }
        out.into_vec()
    }
}

fn pairs_from_buckets(buckets: &FxHashMap<u64, Vec<u32>>, out: &mut PairSet) {
    for ids in buckets.values() {
        if ids.len() < 2 {
            continue;
        }
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                out.insert(ids[i], ids[j]);
            }
        }
    }
}

/// Candidate pairs from bit signatures (cosine / signed random projections).
///
/// Hashes every non-empty vector to `k·l` bits through `pool` and returns
/// all pairs sharing at least one of the `l` k-bit bands.
///
/// This one-shot path streams one band's buckets at a time (peak memory
/// O(corpus), not O(bands × corpus) like a full [`BandingIndex`]); since
/// each per-band bucket map sees the same insertions in the same order
/// either way, the candidate order is identical to
/// [`BandingIndex::all_pairs`] over an index built in id order.
pub fn lsh_candidates_bits(
    pool: &mut BitSignatures,
    data: &Dataset,
    params: BandingParams,
) -> Vec<(u32, u32)> {
    assert!(params.k <= 64, "band keys are packed into u64 (k <= 64)");
    let need = params.total_hashes();
    // The feature-major SRP kernel hashes each vector's whole band range in
    // one pass; the hint makes every signature a single allocation.
    pool.depth_hint(need);
    for (id, v) in data.iter() {
        if !v.is_empty() {
            pool.ensure(id, v, need);
        }
    }
    let mut out = PairSet::new();
    for band in 0..params.l {
        let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for (id, v) in data.iter() {
            if v.is_empty() {
                continue;
            }
            let key = band_key_bits(pool.raw_words(id), band, params.k);
            buckets.entry(key).or_default().push(id);
        }
        pairs_from_buckets(&buckets, &mut out);
    }
    out.into_vec()
}

/// Candidate pairs from integer minhash signatures (Jaccard). Streams one
/// band at a time; see [`lsh_candidates_bits`] on memory and ordering.
pub fn lsh_candidates_ints(
    pool: &mut IntSignatures,
    data: &Dataset,
    params: BandingParams,
) -> Vec<(u32, u32)> {
    let need = params.total_hashes();
    // Element-major minhash kernel: one pass per vector; see
    // [`lsh_candidates_bits`] on the allocation hint.
    pool.depth_hint(need);
    for (id, v) in data.iter() {
        if !v.is_empty() {
            pool.ensure(id, v, need);
        }
    }
    let mut out = PairSet::new();
    for band in 0..params.l {
        let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for (id, v) in data.iter() {
            if v.is_empty() {
                continue;
            }
            let key = band_key_ints(pool.raw(id), band, params.k);
            buckets.entry(key).or_default().push(id);
        }
        pairs_from_buckets(&buckets, &mut out);
    }
    out.into_vec()
}

/// Candidate pairs from quantized-projection signatures (L2 / E2LSH).
/// The bucket hashes are integer-valued like minhash, so the banding is
/// identical to [`lsh_candidates_ints`]; streams one band at a time.
pub fn lsh_candidates_projs(
    pool: &mut ProjSignatures,
    data: &Dataset,
    params: BandingParams,
) -> Vec<(u32, u32)> {
    let need = params.total_hashes();
    // Feature-major projection kernel: one pass per vector; see
    // [`lsh_candidates_bits`] on the allocation hint.
    pool.depth_hint(need);
    for (id, v) in data.iter() {
        if !v.is_empty() {
            pool.ensure(id, v, need);
        }
    }
    let mut out = PairSet::new();
    for band in 0..params.l {
        let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        for (id, v) in data.iter() {
            if v.is_empty() {
                continue;
            }
            let key = band_key_ints(pool.raw(id), band, params.k);
            buckets.entry(key).or_default().push(id);
        }
        pairs_from_buckets(&buckets, &mut out);
    }
    out.into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_lsh::{E2lshHasher, MinHasher, SrpHasher};
    use bayeslsh_numeric::Xoshiro256;
    use bayeslsh_sparse::{jaccard, SparseVector};

    #[test]
    fn l_formula_matches_paper() {
        // l = ceil(ln eps / ln(1 − t^k)).
        let p = BandingParams::for_threshold(0.5, 4, 0.03, 10_000);
        // t^k = 0.0625; ln(0.03)/ln(0.9375) = 54.3... → 55.
        assert_eq!(p.l, 55);
        assert_eq!(p.total_hashes(), 220);
    }

    #[test]
    fn l_shrinks_with_higher_threshold() {
        let lo = BandingParams::for_threshold(0.3, 4, 0.03, 100_000).l;
        let hi = BandingParams::for_threshold(0.9, 4, 0.03, 100_000).l;
        assert!(hi < lo, "hi={hi} lo={lo}");
    }

    #[test]
    fn l_caps_at_max() {
        let p = BandingParams::for_threshold(0.1, 16, 0.03, 500);
        assert_eq!(p.l, 500);
    }

    #[test]
    fn plan_reports_achieved_fnr() {
        // Uncapped: the formula's l meets the requested rate.
        let plan = BandingParams::plan(0.5, 4, 0.03, 10_000);
        assert!(!plan.clamped);
        assert_eq!(plan.params.l, 55);
        assert!((plan.collision_prob - 0.5).abs() < 1e-12);
        assert!(plan.achieved_fnr <= plan.requested_fnr);
        assert!((plan.achieved_fnr - 0.9375f64.powi(55)).abs() < 1e-12);
    }

    #[test]
    fn plan_surfaces_clamping() {
        // 0.1^16 needs astronomically many bands; a cap of 500 cannot reach
        // the requested 3% miss rate — the plan must say so.
        let plan = BandingParams::plan(0.1, 16, 0.03, 500);
        assert!(plan.clamped);
        assert_eq!(plan.params.l, 500);
        assert!(
            plan.achieved_fnr > plan.requested_fnr,
            "achieved {} should exceed requested {}",
            plan.achieved_fnr,
            plan.requested_fnr
        );
        assert!(plan.achieved_fnr > 0.99);
    }

    #[test]
    fn plan_zero_collision_probability_is_clamped() {
        let plan = BandingParams::plan(0.0, 8, 0.03, 100);
        assert!(plan.clamped);
        assert_eq!(plan.achieved_fnr, 1.0);
    }

    #[test]
    fn candidate_prob_behaviour() {
        let p = BandingParams::for_threshold(0.7, 8, 0.03, 10_000);
        // At the threshold collision probability the FNR target is met.
        assert!(p.candidate_prob(0.7) >= 0.97);
        // Far below the threshold, candidacy is much less likely.
        assert!(p.candidate_prob(0.2) < 0.2);
    }

    #[test]
    fn extract_bits_cases() {
        let words = vec![0xFFFF_0000u32, 0x0000_00FF];
        assert_eq!(extract_bits(&words, 0, 16), 0);
        assert_eq!(extract_bits(&words, 16, 16), 0xFFFF);
        assert_eq!(extract_bits(&words, 24, 16), 0xFFFF);
        assert_eq!(extract_bits(&words, 8, 32), 0xFFFF_FF00);
        assert_eq!(extract_bits(&words, 0, 64), 0x0000_00FF_FFFF_0000);
    }

    #[test]
    fn extract_bits_matches_naive() {
        let mut rng = Xoshiro256::seed_from_u64(50);
        let words: Vec<u32> = (0..8).map(|_| rng.next_u32()).collect();
        for lo in 0..128u32 {
            for len in 1..=64u32.min(256 - lo) {
                let got = extract_bits(&words, lo, len);
                let mut expect = 0u64;
                for b in 0..len {
                    let bit = (words[((lo + b) / 32) as usize] >> ((lo + b) % 32)) & 1;
                    expect |= (bit as u64) << b;
                }
                assert_eq!(got, expect, "lo={lo} len={len}");
            }
        }
    }

    /// Clustered binary data: near-duplicates within clusters.
    fn clustered_sets(n_clusters: usize, per: usize, seed: u64) -> Dataset {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut d = Dataset::new(10_000);
        for c in 0..n_clusters {
            let base: Vec<u32> = (0..60)
                .map(|_| (c * 700) as u32 + rng.next_below(650) as u32)
                .collect();
            for _ in 0..per {
                let mut tokens = base.clone();
                // Mutate ~10% of tokens.
                for t in tokens.iter_mut() {
                    if rng.next_bool(0.1) {
                        *t = rng.next_below(10_000) as u32;
                    }
                }
                d.push(SparseVector::from_indices(tokens));
            }
        }
        d
    }

    #[test]
    fn banding_finds_similar_jaccard_pairs() {
        let data = clustered_sets(10, 5, 51);
        let t = 0.5;
        let params = BandingParams::for_threshold(t, 3, 0.03, 1000);
        let mut pool = IntSignatures::new(MinHasher::new(52), data.len());
        let cands = lsh_candidates_ints(&mut pool, &data, params);
        // Ground truth.
        let mut missed = 0;
        let mut truth = 0;
        for a in 0..data.len() as u32 {
            for b in (a + 1)..data.len() as u32 {
                if jaccard(data.vector(a), data.vector(b)) >= t {
                    truth += 1;
                    if !cands.contains(&(a, b)) {
                        missed += 1;
                    }
                }
            }
        }
        assert!(
            truth > 20,
            "test data should contain similar pairs, got {truth}"
        );
        let fnr = missed as f64 / truth as f64;
        assert!(fnr <= 0.10, "false negative rate {fnr} ({missed}/{truth})");
    }

    #[test]
    fn banding_finds_similar_cosine_pairs() {
        use bayeslsh_lsh::cos_to_r;
        use bayeslsh_sparse::cosine;
        let data = clustered_sets(10, 5, 53);
        let t = 0.7;
        let params = BandingParams::for_threshold(cos_to_r(t), 8, 0.03, 1000);
        let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 54), data.len());
        let cands = lsh_candidates_bits(&mut pool, &data, params);
        let mut missed = 0;
        let mut truth = 0;
        for a in 0..data.len() as u32 {
            for b in (a + 1)..data.len() as u32 {
                if cosine(data.vector(a), data.vector(b)) >= t {
                    truth += 1;
                    if !cands.contains(&(a, b)) {
                        missed += 1;
                    }
                }
            }
        }
        assert!(
            truth > 20,
            "test data should contain similar pairs, got {truth}"
        );
        let fnr = missed as f64 / truth as f64;
        assert!(fnr <= 0.10, "false negative rate {fnr} ({missed}/{truth})");
    }

    #[test]
    fn banding_index_probe_matches_membership() {
        let data = clustered_sets(6, 5, 55);
        let params = BandingParams::for_threshold(0.5, 3, 0.03, 1000);
        let mut pool = IntSignatures::new(MinHasher::new(56), data.len());
        let mut index = BandingIndex::new(params);
        for (id, v) in data.iter() {
            pool.ensure(id, v, params.total_hashes());
            index.insert(id, &band_keys_ints(pool.raw(id), params));
        }
        assert_eq!(index.len(), data.len());
        // Probing with a member's own keys returns at least itself, and
        // every returned id shares at least one band key.
        for (id, _) in data.iter().step_by(7) {
            let keys = band_keys_ints(pool.raw(id), params);
            let hits = index.probe(&keys);
            assert!(hits.contains(&id), "self-probe must hit id {id}");
            for &other in &hits {
                let other_keys = band_keys_ints(pool.raw(other), params);
                assert!(
                    keys.iter().zip(&other_keys).any(|(a, b)| a == b),
                    "probe hit {other} shares no band with {id}"
                );
            }
        }
    }

    #[test]
    fn banding_index_insert_extends_all_pairs() {
        let params = BandingParams { k: 1, l: 2 };
        let mut index = BandingIndex::new(params);
        index.insert(0, &[7, 9]);
        index.insert(1, &[7, 11]);
        assert_eq!(index.all_pairs(), vec![(0, 1)]);
        // A later insert joins existing buckets.
        index.insert(2, &[8, 11]);
        let mut pairs = index.all_pairs();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (1, 2)]);
        assert_eq!(index.probe(&[8, 9]), vec![2, 0]);
        assert!(index.probe(&[100, 100]).is_empty());
    }

    #[test]
    fn probe_multi_single_step_matches_probe() {
        let data = clustered_sets(6, 5, 63);
        let params = BandingParams::for_threshold(0.5, 3, 0.03, 1000);
        let mut pool = IntSignatures::new(MinHasher::new(64), data.len());
        let mut index = BandingIndex::new(params);
        for (id, v) in data.iter() {
            pool.ensure(id, v, params.total_hashes());
            index.insert(id, &band_keys_ints(pool.raw(id), params));
        }
        // With one key per band, multi-probe is plain probe: same hits in
        // the same order, exactly l bucket lookups.
        for (id, _) in data.iter().step_by(9) {
            let keys = band_keys_ints(pool.raw(id), params);
            let seqs: Vec<Vec<u64>> = keys.iter().map(|&k| vec![k]).collect();
            let (hits, probes) = index.probe_multi(&seqs);
            assert_eq!(hits, index.probe(&keys), "id {id}");
            assert_eq!(probes, params.l as u64);
        }
    }

    #[test]
    fn probe_multi_interleaves_step_wise() {
        let params = BandingParams { k: 1, l: 2 };
        let mut index = BandingIndex::new(params);
        index.insert(0, &[10, 20]);
        index.insert(1, &[11, 21]);
        index.insert(2, &[12, 20]);
        index.insert(3, &[11, 22]);
        // Band 0 probes keys 10 then 11; band 1 probes only 20 (ragged).
        let seqs = vec![vec![10, 11], vec![20]];
        let (hits, probes) = index.probe_multi(&seqs);
        // Step 0 drains band 0's bucket 10 → [0], then band 1's bucket
        // 20 → [0, 2] (0 deduplicated); step 1 drains band 0's bucket
        // 11 → [1, 3]. Band-major order would yield [0, 1, 3, 2] instead.
        assert_eq!(hits, vec![0, 2, 1, 3]);
        assert_eq!(probes, 3);
        // Empty sequences everywhere: nothing probed.
        let (hits, probes) = index.probe_multi(&[Vec::new(), Vec::new()]);
        assert!(hits.is_empty());
        assert_eq!(probes, 0);
    }

    #[test]
    fn projs_candidates_find_l2_clusters_and_match_index() {
        // Two tight L2 clusters 50 apart; every within-cluster pair must
        // surface as a candidate.
        let mut data = Dataset::new(4);
        let mut rng = Xoshiro256::seed_from_u64(71);
        for c in 0..2u32 {
            let base = c as f32 * 50.0;
            for _ in 0..6 {
                let pairs: Vec<(u32, f32)> = (0..4)
                    .map(|i| (i, base + 1.0 + rng.next_f64() as f32 * 0.05))
                    .collect();
                data.push(SparseVector::from_pairs(pairs));
            }
        }
        let params = BandingParams { k: 2, l: 4 };
        let mut pool = ProjSignatures::new(E2lshHasher::new(data.dim(), 72, 4.0), data.len());
        let cands = lsh_candidates_projs(&mut pool, &data, params);
        for c in 0..2u32 {
            for a in 0..6u32 {
                for b in (a + 1)..6 {
                    let (x, y) = (c * 6 + a, c * 6 + b);
                    assert!(cands.contains(&(x, y)), "missing near pair ({x},{y})");
                }
            }
        }
        // The one-shot streaming path reads identically to an id-order
        // BandingIndex, same as the bits/ints paths.
        let mut index = BandingIndex::new(params);
        for (id, _) in data.iter() {
            index.insert(id, &band_keys_ints(pool.raw(id), params));
        }
        assert_eq!(cands, index.all_pairs());
    }

    #[test]
    fn par_build_probe_and_all_pairs_match_serial() {
        let data = clustered_sets(8, 5, 57);
        let params = BandingParams::for_threshold(0.5, 3, 0.03, 1000);
        let l = params.l as usize;
        let mut pool = IntSignatures::new(MinHasher::new(58), data.len());
        let mut serial = BandingIndex::new(params);
        let mut ids = Vec::new();
        let mut keys = Vec::new();
        for (id, v) in data.iter() {
            pool.ensure(id, v, params.total_hashes());
            let k = band_keys_ints(pool.raw(id), params);
            serial.insert(id, &k);
            ids.push(id);
            keys.extend(k);
        }
        let serial_pairs = serial.all_pairs();
        for threads in [1usize, 2, 4, 8] {
            let par = BandingIndex::par_build(params, &ids, threads, |id, band| {
                band_key_ints(pool.raw(id), band, params.k)
            });
            assert_eq!(par.len(), serial.len());
            assert_eq!(
                par.all_pairs(),
                serial_pairs,
                "serially-read pairs of a par-built index, threads {threads}"
            );
            assert_eq!(
                par.par_all_pairs(threads),
                serial_pairs,
                "par-read pairs, threads {threads}"
            );
            for (slot, &id) in ids.iter().enumerate().step_by(5) {
                let qk = &keys[slot * l..(slot + 1) * l];
                assert_eq!(
                    par.par_probe(qk, threads),
                    serial.probe(qk),
                    "probe id {id} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn wire_round_trip_preserves_candidate_and_probe_order() {
        let data = clustered_sets(6, 5, 61);
        let params = BandingParams::for_threshold(0.5, 3, 0.03, 1000);
        let mut pool = IntSignatures::new(MinHasher::new(62), data.len());
        let mut index = BandingIndex::new(params);
        let mut keys = Vec::new();
        for (id, v) in data.iter() {
            pool.ensure(id, v, params.total_hashes());
            let k = band_keys_ints(pool.raw(id), params);
            index.insert(id, &k);
            keys.push(k);
        }
        let mut w = WireWriter::new(Vec::new());
        index.write_wire(&mut w).unwrap();
        let payload = w.into_inner();
        for threads in [1usize, 4] {
            let mut r = WireReader::new(&payload[..]);
            let mut back = BandingIndex::read_wire(&mut r, data.len() as u32, threads).unwrap();
            assert_eq!(r.bytes_read(), payload.len() as u64);
            assert_eq!(back.len(), index.len());
            assert_eq!(back.params(), index.params());
            // Identical *order*, not just identical sets: downstream
            // candidate order (and thus Bayesian estimates) depends on it.
            assert_eq!(back.all_pairs(), index.all_pairs(), "threads {threads}");
            for (id, k) in keys.iter().enumerate().step_by(4) {
                assert_eq!(back.probe(k), index.probe(k), "probe {id}");
            }
            // Inserting into the reloaded index behaves like inserting into
            // the original.
            let mut orig = index.clone();
            let fresh = vec![123u64; params.l as usize];
            orig.insert(data.len() as u32, &fresh);
            back.insert(data.len() as u32, &fresh);
            assert_eq!(back.all_pairs(), orig.all_pairs());
        }
    }

    #[test]
    fn wire_read_rejects_malformed_indexes() {
        let params = BandingParams { k: 1, l: 2 };
        let mut index = BandingIndex::new(params);
        index.insert(0, &[7, 9]);
        index.insert(1, &[7, 11]);
        let mut w = WireWriter::new(Vec::new());
        index.write_wire(&mut w).unwrap();
        let payload = w.into_inner();
        // Ids beyond the caller's bound are rejected.
        assert!(BandingIndex::read_wire(&mut WireReader::new(&payload[..]), 1, 1).is_err());
        // Degenerate banding parameters are a typed error, not a panic.
        let mut w = WireWriter::new(Vec::new());
        w.put_u32(0).unwrap();
        w.put_u32(2).unwrap();
        w.put_u64(0).unwrap();
        w.put_u64(0).unwrap();
        let bad = w.into_inner();
        assert!(BandingIndex::read_wire(&mut WireReader::new(&bad[..]), 10, 1).is_err());
    }

    #[test]
    fn remove_unlinks_everywhere_and_preserves_survivor_order() {
        let params = BandingParams { k: 1, l: 2 };
        let mut index = BandingIndex::new(params);
        index.insert(0, &[7, 9]);
        index.insert(1, &[7, 11]);
        index.insert(2, &[7, 9]);
        assert_eq!(index.probe(&[7, 9]), vec![0, 1, 2]);
        // Removing the middle id drops it from every band but leaves the
        // survivors in their original relative order.
        assert!(index.remove(1, &[7, 11]));
        assert_eq!(index.len(), 2);
        assert_eq!(index.probe(&[7, 11]), vec![0, 2]);
        assert_eq!(index.all_pairs(), vec![(0, 2)]);
        // Removing again is a no-op.
        assert!(!index.remove(1, &[7, 11]));
        assert_eq!(index.len(), 2);
        // A bucket emptied by removal stays probeable (and empty).
        assert!(index.remove(0, &[7, 9]));
        assert!(index.remove(2, &[7, 9]));
        assert!(index.is_empty());
        assert!(index.probe(&[7, 9]).is_empty());
    }

    #[test]
    fn empty_vectors_generate_no_candidates() {
        let mut d = Dataset::new(100);
        d.push(SparseVector::empty());
        d.push(SparseVector::empty());
        d.push(SparseVector::from_indices(vec![1, 2, 3]));
        let params = BandingParams { k: 2, l: 4 };
        let mut pool = IntSignatures::new(MinHasher::new(60), d.len());
        let cands = lsh_candidates_ints(&mut pool, &d, params);
        assert!(cands.is_empty(), "{cands:?}");
    }
}
