//! Classical LSH banding index for candidate generation (paper Section 2).
//!
//! Each object gets `l` signatures, each the concatenation of `k` hashes;
//! every pair sharing at least one signature becomes a candidate. For a
//! threshold `t` whose per-hash collision probability is `p` (Jaccard: `p =
//! t`; cosine: `p = c2r(t)`), the number of signatures needed for an
//! expected false-negative rate ε is `l = ceil(log ε / log(1 − p^k))`.

use bayeslsh_lsh::{BitSignatures, IntSignatures, SignaturePool};
use bayeslsh_sparse::Dataset;

use crate::fxhash::{FxHashMap, FxHasher};
use crate::pairs::PairSet;
use std::hash::Hasher;

/// Banding configuration: `l` bands of `k` hashes each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandingParams {
    /// Hashes per signature (band width).
    pub k: u32,
    /// Number of signatures (bands).
    pub l: u32,
}

impl BandingParams {
    /// Compute `l` from the paper's formula for false-negative rate `eps`
    /// at per-hash collision probability `p` (the collision probability *at
    /// the similarity threshold*), capping at `max_l`.
    ///
    /// `l = ceil(log eps / log(1 − p^k))`.
    pub fn for_threshold(p: f64, k: u32, eps: f64, max_l: u32) -> Self {
        assert!((0.0..=1.0).contains(&p), "collision probability {p}");
        assert!(k >= 1, "band width must be at least 1");
        assert!(eps > 0.0 && eps < 1.0, "false negative rate {eps}");
        let pk = p.powi(k as i32);
        let l = if pk <= 0.0 {
            max_l
        } else if pk >= 1.0 {
            1
        } else {
            let raw = (eps.ln() / (1.0 - pk).ln()).ceil();
            if raw.is_finite() && raw >= 1.0 {
                (raw as u32).min(max_l)
            } else {
                max_l
            }
        };
        Self { k, l: l.max(1) }
    }

    /// Total hashes per object the banding consumes.
    pub fn total_hashes(&self) -> u32 {
        self.k * self.l
    }

    /// Probability that a pair with per-hash collision probability `p`
    /// becomes a candidate: `1 − (1 − p^k)^l`.
    pub fn candidate_prob(&self, p: f64) -> f64 {
        1.0 - (1.0 - p.powi(self.k as i32)).powi(self.l as i32)
    }
}

/// Extract `len <= 64` bits starting at bit `lo` from packed 32-bit words
/// (LSB-first) — the band-key extraction used by the index, public so that
/// query-time probes (e.g. k-NN search) can compute identical keys.
#[inline]
pub fn extract_bits(words: &[u32], lo: u32, len: u32) -> u64 {
    debug_assert!(len <= 64);
    let mut out = 0u64;
    let mut got = 0u32;
    while got < len {
        let bit = lo + got;
        let word = words[(bit / 32) as usize] as u64;
        let offset = bit % 32;
        let take = (32 - offset).min(len - got); // <= 32, so the shift is safe
        let chunk = (word >> offset) & ((1u64 << take) - 1);
        out |= chunk << got;
        got += take;
    }
    out
}

fn pairs_from_buckets(buckets: FxHashMap<u64, Vec<u32>>, out: &mut PairSet) {
    for (_, ids) in buckets {
        if ids.len() < 2 {
            continue;
        }
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                out.insert(ids[i], ids[j]);
            }
        }
    }
}

/// Candidate pairs from bit signatures (cosine / signed random projections).
///
/// Hashes every non-empty vector to `k·l` bits through `pool` and returns
/// all pairs sharing at least one of the `l` k-bit bands.
pub fn lsh_candidates_bits(
    pool: &mut BitSignatures,
    data: &Dataset,
    params: BandingParams,
) -> Vec<(u32, u32)> {
    assert!(params.k <= 64, "band keys are packed into u64 (k <= 64)");
    let need = params.total_hashes();
    for (id, v) in data.iter() {
        if !v.is_empty() {
            pool.ensure(id, v, need);
        }
    }
    let mut out = PairSet::new();
    for band in 0..params.l {
        let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let lo = band * params.k;
        for (id, v) in data.iter() {
            if v.is_empty() {
                continue;
            }
            let key = extract_bits(pool.raw_words(id), lo, params.k);
            buckets.entry(key).or_default().push(id);
        }
        pairs_from_buckets(buckets, &mut out);
    }
    out.into_vec()
}

/// Candidate pairs from integer minhash signatures (Jaccard).
pub fn lsh_candidates_ints(
    pool: &mut IntSignatures,
    data: &Dataset,
    params: BandingParams,
) -> Vec<(u32, u32)> {
    let need = params.total_hashes();
    for (id, v) in data.iter() {
        if !v.is_empty() {
            pool.ensure(id, v, need);
        }
    }
    let mut out = PairSet::new();
    for band in 0..params.l {
        let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let lo = (band * params.k) as usize;
        let hi = lo + params.k as usize;
        for (id, v) in data.iter() {
            if v.is_empty() {
                continue;
            }
            let mut h = FxHasher::default();
            for &m in &pool.raw(id)[lo..hi] {
                h.write_u32(m);
            }
            buckets.entry(h.finish()).or_default().push(id);
        }
        pairs_from_buckets(buckets, &mut out);
    }
    out.into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_lsh::{MinHasher, SrpHasher};
    use bayeslsh_numeric::Xoshiro256;
    use bayeslsh_sparse::{jaccard, SparseVector};

    #[test]
    fn l_formula_matches_paper() {
        // l = ceil(ln eps / ln(1 − t^k)).
        let p = BandingParams::for_threshold(0.5, 4, 0.03, 10_000);
        // t^k = 0.0625; ln(0.03)/ln(0.9375) = 54.3... → 55.
        assert_eq!(p.l, 55);
        assert_eq!(p.total_hashes(), 220);
    }

    #[test]
    fn l_shrinks_with_higher_threshold() {
        let lo = BandingParams::for_threshold(0.3, 4, 0.03, 100_000).l;
        let hi = BandingParams::for_threshold(0.9, 4, 0.03, 100_000).l;
        assert!(hi < lo, "hi={hi} lo={lo}");
    }

    #[test]
    fn l_caps_at_max() {
        let p = BandingParams::for_threshold(0.1, 16, 0.03, 500);
        assert_eq!(p.l, 500);
    }

    #[test]
    fn candidate_prob_behaviour() {
        let p = BandingParams::for_threshold(0.7, 8, 0.03, 10_000);
        // At the threshold collision probability the FNR target is met.
        assert!(p.candidate_prob(0.7) >= 0.97);
        // Far below the threshold, candidacy is much less likely.
        assert!(p.candidate_prob(0.2) < 0.2);
    }

    #[test]
    fn extract_bits_cases() {
        let words = vec![0xFFFF_0000u32, 0x0000_00FF];
        assert_eq!(extract_bits(&words, 0, 16), 0);
        assert_eq!(extract_bits(&words, 16, 16), 0xFFFF);
        assert_eq!(extract_bits(&words, 24, 16), 0xFFFF);
        assert_eq!(extract_bits(&words, 8, 32), 0xFFFF_FF00);
        assert_eq!(extract_bits(&words, 0, 64), 0x0000_00FF_FFFF_0000);
    }

    #[test]
    fn extract_bits_matches_naive() {
        let mut rng = Xoshiro256::seed_from_u64(50);
        let words: Vec<u32> = (0..8).map(|_| rng.next_u32()).collect();
        for lo in 0..128u32 {
            for len in 1..=64u32.min(256 - lo) {
                let got = extract_bits(&words, lo, len);
                let mut expect = 0u64;
                for b in 0..len {
                    let bit = (words[((lo + b) / 32) as usize] >> ((lo + b) % 32)) & 1;
                    expect |= (bit as u64) << b;
                }
                assert_eq!(got, expect, "lo={lo} len={len}");
            }
        }
    }

    /// Clustered binary data: near-duplicates within clusters.
    fn clustered_sets(n_clusters: usize, per: usize, seed: u64) -> Dataset {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut d = Dataset::new(10_000);
        for c in 0..n_clusters {
            let base: Vec<u32> = (0..60)
                .map(|_| (c * 700) as u32 + rng.next_below(650) as u32)
                .collect();
            for _ in 0..per {
                let mut tokens = base.clone();
                // Mutate ~10% of tokens.
                for t in tokens.iter_mut() {
                    if rng.next_bool(0.1) {
                        *t = rng.next_below(10_000) as u32;
                    }
                }
                d.push(SparseVector::from_indices(tokens));
            }
        }
        d
    }

    #[test]
    fn banding_finds_similar_jaccard_pairs() {
        let data = clustered_sets(10, 5, 51);
        let t = 0.5;
        let params = BandingParams::for_threshold(t, 3, 0.03, 1000);
        let mut pool = IntSignatures::new(MinHasher::new(52), data.len());
        let cands = lsh_candidates_ints(&mut pool, &data, params);
        // Ground truth.
        let mut missed = 0;
        let mut truth = 0;
        for a in 0..data.len() as u32 {
            for b in (a + 1)..data.len() as u32 {
                if jaccard(data.vector(a), data.vector(b)) >= t {
                    truth += 1;
                    if !cands.contains(&(a, b)) {
                        missed += 1;
                    }
                }
            }
        }
        assert!(
            truth > 20,
            "test data should contain similar pairs, got {truth}"
        );
        let fnr = missed as f64 / truth as f64;
        assert!(fnr <= 0.10, "false negative rate {fnr} ({missed}/{truth})");
    }

    #[test]
    fn banding_finds_similar_cosine_pairs() {
        use bayeslsh_lsh::cos_to_r;
        use bayeslsh_sparse::cosine;
        let data = clustered_sets(10, 5, 53);
        let t = 0.7;
        let params = BandingParams::for_threshold(cos_to_r(t), 8, 0.03, 1000);
        let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 54), data.len());
        let cands = lsh_candidates_bits(&mut pool, &data, params);
        let mut missed = 0;
        let mut truth = 0;
        for a in 0..data.len() as u32 {
            for b in (a + 1)..data.len() as u32 {
                if cosine(data.vector(a), data.vector(b)) >= t {
                    truth += 1;
                    if !cands.contains(&(a, b)) {
                        missed += 1;
                    }
                }
            }
        }
        assert!(
            truth > 20,
            "test data should contain similar pairs, got {truth}"
        );
        let fnr = missed as f64 / truth as f64;
        assert!(fnr <= 0.10, "false negative rate {fnr} ({missed}/{truth})");
    }

    #[test]
    fn empty_vectors_generate_no_candidates() {
        let mut d = Dataset::new(100);
        d.push(SparseVector::empty());
        d.push(SparseVector::empty());
        d.push(SparseVector::from_indices(vec![1, 2, 3]));
        let params = BandingParams { k: 2, l: 4 };
        let mut pool = IntSignatures::new(MinHasher::new(60), d.len());
        let cands = lsh_candidates_ints(&mut pool, &d, params);
        assert!(cands.is_empty(), "{cands:?}");
    }
}
