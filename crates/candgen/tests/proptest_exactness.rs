//! Property tests: the exact join algorithms agree with brute force on
//! randomized corpora and thresholds — the strongest correctness statement
//! we can make about AllPairs' pruning bounds and PPJoin+'s three filters.

use bayeslsh_candgen::{all_pairs_cosine, all_pairs_jaccard, ppjoin_binary_cosine, ppjoin_jaccard};
use bayeslsh_numeric::Xoshiro256;
use bayeslsh_sparse::{cosine, jaccard, Dataset, SparseVector};
use proptest::prelude::*;

/// Random clustered corpus driven by a proptest-chosen seed and shape.
fn corpus(seed: u64, n: usize, dim: u32, len: usize, mutate: f64) -> Dataset {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut d = Dataset::new(dim);
    let n_clusters = (n / 4).max(1);
    let centers: Vec<Vec<(u32, f32)>> = (0..n_clusters)
        .map(|_| {
            (0..len.max(1))
                .map(|_| {
                    (
                        rng.next_below(dim as u64) as u32,
                        (rng.next_f64() + 0.1) as f32,
                    )
                })
                .collect()
        })
        .collect();
    for i in 0..n {
        let mut pairs = centers[i % n_clusters].clone();
        for p in pairs.iter_mut() {
            if rng.next_bool(mutate) {
                *p = (
                    rng.next_below(dim as u64) as u32,
                    (rng.next_f64() + 0.1) as f32,
                );
            }
        }
        d.push(SparseVector::from_pairs(pairs));
    }
    d
}

fn brute(
    data: &Dataset,
    t: f64,
    f: impl Fn(&SparseVector, &SparseVector) -> f64,
) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for a in 0..data.len() as u32 {
        for b in (a + 1)..data.len() as u32 {
            if f(data.vector(a), data.vector(b)) >= t {
                out.push((a, b));
            }
        }
    }
    out
}

fn ids(v: Vec<(u32, u32, f64)>) -> Vec<(u32, u32)> {
    v.into_iter().map(|(a, b, _)| (a, b)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allpairs_cosine_is_exact(
        seed in 0u64..10_000,
        n in 10usize..45,
        dim in 50u32..800,
        len in 3usize..25,
        t in 0.35f64..0.95,
        mutate in 0.1f64..0.6,
    ) {
        let data = corpus(seed, n, dim, len, mutate);
        prop_assert_eq!(ids(all_pairs_cosine(&data, t)), brute(&data, t, cosine));
    }

    #[test]
    fn allpairs_jaccard_is_exact(
        seed in 0u64..10_000,
        n in 10usize..45,
        dim in 50u32..800,
        len in 3usize..25,
        t in 0.2f64..0.9,
        mutate in 0.1f64..0.6,
    ) {
        let data = corpus(seed, n, dim, len, mutate).binarized();
        prop_assert_eq!(ids(all_pairs_jaccard(&data, t)), brute(&data, t, jaccard));
    }

    #[test]
    fn ppjoin_jaccard_is_exact(
        seed in 0u64..10_000,
        n in 10usize..45,
        dim in 50u32..800,
        len in 3usize..25,
        t in 0.2f64..0.9,
        mutate in 0.1f64..0.6,
    ) {
        let data = corpus(seed, n, dim, len, mutate).binarized();
        prop_assert_eq!(ids(ppjoin_jaccard(&data, t)), brute(&data, t, jaccard));
    }

    #[test]
    fn ppjoin_binary_cosine_is_exact(
        seed in 0u64..10_000,
        n in 10usize..45,
        dim in 50u32..800,
        len in 3usize..25,
        t in 0.35f64..0.95,
        mutate in 0.1f64..0.6,
    ) {
        let data = corpus(seed, n, dim, len, mutate).binarized();
        prop_assert_eq!(ids(ppjoin_binary_cosine(&data, t)), brute(&data, t, cosine));
    }

    /// Degenerate corpora: duplicated vectors, singletons, shared tokens.
    #[test]
    fn exactness_with_duplicates(
        seed in 0u64..10_000,
        n in 4usize..20,
        t in 0.3f64..0.99,
    ) {
        let base = corpus(seed, n, 100, 6, 0.3);
        let mut data = Dataset::new(base.dim());
        for (_, v) in base.iter() {
            data.push(v.clone());
            data.push(v.clone()); // exact duplicate of everything
        }
        let bin = data.binarized();
        prop_assert_eq!(ids(all_pairs_cosine(&data, t)), brute(&data, t, cosine));
        prop_assert_eq!(ids(ppjoin_jaccard(&bin, t)), brute(&bin, t, jaccard));
    }
}
