//! Tf-idf weighting.
//!
//! The paper applies tf-idf weighting to every dataset — text corpora *and*
//! graph adjacency vectors ("Each user is represented as a weighted vector
//! of their friends, with Tf-Idf weighting"). We use the standard
//! `tf · ln(N / df)` scheme followed by L2 normalization.

use crate::dataset::Dataset;
use crate::vector::SparseVector;

/// Apply tf-idf weighting to a corpus: each stored weight is treated as the
/// term frequency and multiplied by `ln(N / df(term))`, then the vector is
/// L2-normalized. Features present in every document get idf 0 and drop out.
pub fn tfidf_transform(data: &Dataset) -> Dataset {
    let n = data.len() as f64;
    let df = data.document_frequencies();
    let mut out = Dataset::new(data.dim());
    for (_, v) in data.iter() {
        let pairs: Vec<(u32, f32)> = v
            .iter()
            .filter_map(|(idx, tf)| {
                let dfi = df[idx as usize] as f64;
                if dfi == 0.0 {
                    return None;
                }
                let idf = (n / dfi).ln();
                let w = (tf as f64 * idf) as f32;
                (w != 0.0).then_some((idx, w))
            })
            .collect();
        out.push(SparseVector::from_pairs(pairs).l2_normalized());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ubiquitous_feature_is_dropped() {
        let mut d = Dataset::new(0);
        d.push(SparseVector::from_pairs(vec![(0, 1.0), (1, 1.0)]));
        d.push(SparseVector::from_pairs(vec![(0, 1.0), (2, 1.0)]));
        let t = tfidf_transform(&d);
        // Feature 0 appears in both documents → idf = ln(1) = 0 → dropped.
        assert_eq!(t.vector(0).indices(), &[1]);
        assert_eq!(t.vector(1).indices(), &[2]);
    }

    #[test]
    fn output_is_normalized() {
        let mut d = Dataset::new(0);
        d.push(SparseVector::from_pairs(vec![(0, 3.0), (1, 1.0)]));
        d.push(SparseVector::from_pairs(vec![(1, 2.0), (2, 5.0)]));
        d.push(SparseVector::from_pairs(vec![(2, 1.0)]));
        let t = tfidf_transform(&d);
        for v in t.vectors() {
            if !v.is_empty() {
                assert!((v.norm() - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn rare_features_weigh_more() {
        let mut d = Dataset::new(0);
        // Feature 0 in 3 docs, feature 5 in 1 doc.
        d.push(SparseVector::from_pairs(vec![(0, 1.0), (5, 1.0)]));
        d.push(SparseVector::from_pairs(vec![(0, 1.0), (6, 1.0)]));
        d.push(SparseVector::from_pairs(vec![(0, 1.0), (7, 1.0)]));
        let t = tfidf_transform(&d);
        let v = t.vector(0);
        assert!(v.get(5) > v.get(0), "rare feature should dominate");
    }

    #[test]
    fn preserves_vector_count_and_dim() {
        let mut d = Dataset::new(10);
        d.push(SparseVector::from_pairs(vec![(0, 1.0)]));
        d.push(SparseVector::from_pairs(vec![(1, 1.0)]));
        let t = tfidf_transform(&d);
        assert_eq!(t.len(), 2);
        assert_eq!(t.dim(), 10);
    }
}
