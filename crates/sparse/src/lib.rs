//! Sparse vector space for all-pairs similarity search.
//!
//! The BayesLSH evaluation works over high-dimensional sparse vectors —
//! tf-idf weighted text corpora and adjacency vectors of social graphs
//! (paper Table 1). This crate provides:
//!
//! * [`SparseVector`] — an index-sorted sparse vector with `u32` feature ids
//!   and `f32` weights (binary vectors are the special case of all-1 weights);
//! * [`similarity`] — exact similarity measures (dot, cosine, Jaccard,
//!   overlap), accumulated in `f64`: these are the ground truth every
//!   approximate method is judged against;
//! * [`Dataset`] — a corpus of vectors plus the summary statistics the paper
//!   reports in Table 1;
//! * [`tfidf`] — the tf-idf weighting + L2 normalization pipeline the paper
//!   applies to all six datasets.

pub mod dataset;
pub mod similarity;
pub mod tfidf;
pub mod vector;

pub use dataset::{Dataset, DatasetStats};
pub use similarity::{cosine, dot, jaccard, l2_distance, l2_similarity, overlap};
pub use vector::SparseVector;
