//! The sparse vector type.

use std::fmt;

/// A sparse vector: strictly increasing `u32` feature indices with `f32`
/// weights.
///
/// Invariants (enforced by every constructor):
/// * indices strictly increasing (sorted, no duplicates),
/// * no explicitly stored zero, NaN or infinite weights,
/// * `indices.len() == values.len()`.
///
/// A *binary* vector (a set) is represented with all weights equal to `1.0`;
/// [`SparseVector::binarize`] converts any vector to that form.
#[derive(Clone, PartialEq)]
pub struct SparseVector {
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl fmt::Debug for SparseVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SparseVector[")?;
        for (i, (idx, val)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{idx}:{val}")?;
        }
        write!(f, "]")
    }
}

impl SparseVector {
    /// The empty vector.
    pub fn empty() -> Self {
        Self {
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from arbitrary `(index, weight)` pairs: sorts by index, sums
    /// duplicate entries, and drops zero/non-finite results.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, f32)>) -> Self {
        let mut pairs: Vec<(u32, f32)> = pairs.into_iter().collect();
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values: Vec<f32> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if let (Some(&last), Some(tail)) = (indices.last(), values.last_mut()) {
                if last == i {
                    *tail += v;
                    continue;
                }
            }
            indices.push(i);
            values.push(v);
        }
        // Remove entries that cancelled to zero or were non-finite.
        let mut out_i = Vec::with_capacity(indices.len());
        let mut out_v = Vec::with_capacity(values.len());
        for (i, v) in indices.into_iter().zip(values) {
            if v != 0.0 && v.is_finite() {
                out_i.push(i);
                out_v.push(v);
            }
        }
        Self {
            indices: out_i,
            values: out_v,
        }
    }

    /// Build from pre-sorted parallel slices. Returns `None` if the input
    /// violates any invariant (unsorted, duplicate index, zero/non-finite
    /// weight, length mismatch).
    pub fn from_sorted(indices: Vec<u32>, values: Vec<f32>) -> Option<Self> {
        if indices.len() != values.len() {
            return None;
        }
        if indices.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        if values.iter().any(|v| *v == 0.0 || !v.is_finite()) {
            return None;
        }
        Some(Self { indices, values })
    }

    /// Build a binary vector (all weights 1.0) from a set of feature ids.
    pub fn from_indices(mut indices: Vec<u32>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        let values = vec![1.0; indices.len()];
        Self { indices, values }
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// True if the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Sorted feature indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Weights, parallel to [`Self::indices`].
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterate over `(index, weight)` entries in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Weight of feature `idx`, or 0.0 if absent.
    pub fn get(&self, idx: u32) -> f32 {
        match self.indices.binary_search(&idx) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Largest feature index plus one (the minimum dimensionality that can
    /// hold this vector), or 0 for the empty vector.
    pub fn min_dim(&self) -> u32 {
        self.indices.last().map_or(0, |&i| i + 1)
    }

    /// Euclidean (L2) norm, accumulated in `f64`.
    pub fn norm(&self) -> f64 {
        self.values
            .iter()
            .map(|&v| {
                let v = v as f64;
                v * v
            })
            .sum::<f64>()
            .sqrt()
    }

    /// Largest absolute weight (0.0 for the empty vector). AllPairs' bounds
    /// are built from per-vector and per-feature max weights.
    pub fn max_weight(&self) -> f32 {
        self.values.iter().fold(0.0f32, |acc, v| acc.max(v.abs()))
    }

    /// Sum of weights (useful for normalizing binary vectors).
    pub fn weight_sum(&self) -> f64 {
        self.values.iter().map(|&v| v as f64).sum()
    }

    /// A copy scaled to unit L2 norm; the empty vector stays empty.
    pub fn l2_normalized(&self) -> Self {
        let n = self.norm();
        if n == 0.0 {
            return self.clone();
        }
        let values = self.values.iter().map(|&v| (v as f64 / n) as f32).collect();
        Self {
            indices: self.indices.clone(),
            values,
        }
    }

    /// A binary copy: same support, all weights 1.0.
    pub fn binarize(&self) -> Self {
        Self {
            indices: self.indices.clone(),
            values: vec![1.0; self.indices.len()],
        }
    }

    /// True if every weight equals 1.0.
    pub fn is_binary(&self) -> bool {
        self.values.iter().all(|&v| v == 1.0)
    }

    /// Scale every weight by `factor` (must be finite and non-zero).
    pub fn scaled(&self, factor: f32) -> Self {
        assert!(factor.is_finite() && factor != 0.0);
        Self {
            indices: self.indices.clone(),
            values: self.values.iter().map(|&v| v * factor).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_pairs_sorts_and_merges() {
        let v = SparseVector::from_pairs(vec![(5, 1.0), (2, 2.0), (5, 3.0), (9, -1.0)]);
        assert_eq!(v.indices(), &[2, 5, 9]);
        assert_eq!(v.values(), &[2.0, 4.0, -1.0]);
    }

    #[test]
    fn from_pairs_drops_cancelled_entries() {
        let v = SparseVector::from_pairs(vec![(1, 2.0), (1, -2.0), (3, 1.0)]);
        assert_eq!(v.indices(), &[3]);
    }

    #[test]
    fn from_sorted_validation() {
        assert!(SparseVector::from_sorted(vec![1, 2], vec![1.0, 2.0]).is_some());
        assert!(SparseVector::from_sorted(vec![2, 1], vec![1.0, 2.0]).is_none());
        assert!(SparseVector::from_sorted(vec![1, 1], vec![1.0, 2.0]).is_none());
        assert!(SparseVector::from_sorted(vec![1], vec![0.0]).is_none());
        assert!(SparseVector::from_sorted(vec![1], vec![f32::NAN]).is_none());
        assert!(SparseVector::from_sorted(vec![1, 2], vec![1.0]).is_none());
    }

    #[test]
    fn from_indices_dedups() {
        let v = SparseVector::from_indices(vec![7, 3, 7, 1]);
        assert_eq!(v.indices(), &[1, 3, 7]);
        assert!(v.is_binary());
    }

    #[test]
    fn get_present_and_absent() {
        let v = SparseVector::from_pairs(vec![(10, 0.5), (20, 1.5)]);
        assert_eq!(v.get(10), 0.5);
        assert_eq!(v.get(20), 1.5);
        assert_eq!(v.get(15), 0.0);
    }

    #[test]
    fn norm_and_max_weight() {
        let v = SparseVector::from_pairs(vec![(0, 3.0), (1, 4.0)]);
        assert!((v.norm() - 5.0).abs() < 1e-12);
        assert_eq!(v.max_weight(), 4.0);
        assert_eq!(SparseVector::empty().norm(), 0.0);
        assert_eq!(SparseVector::empty().max_weight(), 0.0);
    }

    #[test]
    fn normalization() {
        let v = SparseVector::from_pairs(vec![(0, 3.0), (1, 4.0)]).l2_normalized();
        assert!((v.norm() - 1.0).abs() < 1e-6);
        assert!((v.get(0) - 0.6).abs() < 1e-6);
        // Empty vector survives normalization.
        assert!(SparseVector::empty().l2_normalized().is_empty());
    }

    #[test]
    fn binarize_preserves_support() {
        let v = SparseVector::from_pairs(vec![(2, 0.3), (9, 7.0)]);
        let b = v.binarize();
        assert_eq!(b.indices(), v.indices());
        assert!(b.is_binary());
        assert!(!v.is_binary());
    }

    #[test]
    fn min_dim() {
        assert_eq!(SparseVector::empty().min_dim(), 0);
        assert_eq!(SparseVector::from_indices(vec![0]).min_dim(), 1);
        assert_eq!(SparseVector::from_indices(vec![41]).min_dim(), 42);
    }

    #[test]
    fn debug_format() {
        let v = SparseVector::from_pairs(vec![(1, 2.0), (3, 4.0)]);
        assert_eq!(format!("{v:?}"), "SparseVector[1:2, 3:4]");
    }

    proptest! {
        #[test]
        fn from_pairs_always_satisfies_invariants(
            pairs in proptest::collection::vec((0u32..1000, -10.0f32..10.0), 0..100)
        ) {
            let v = SparseVector::from_pairs(pairs);
            prop_assert!(v.indices().windows(2).all(|w| w[0] < w[1]));
            prop_assert!(v.values().iter().all(|x| *x != 0.0 && x.is_finite()));
            prop_assert_eq!(v.indices().len(), v.values().len());
        }

        #[test]
        fn normalized_norm_is_one_or_zero(
            pairs in proptest::collection::vec((0u32..1000, 0.001f32..10.0), 1..50)
        ) {
            let v = SparseVector::from_pairs(pairs).l2_normalized();
            if !v.is_empty() {
                prop_assert!((v.norm() - 1.0).abs() < 1e-4);
            }
        }

        #[test]
        fn scaling_scales_norm(
            pairs in proptest::collection::vec((0u32..100, 0.1f32..5.0), 1..20),
            factor in 0.5f32..4.0,
        ) {
            let v = SparseVector::from_pairs(pairs);
            let s = v.scaled(factor);
            prop_assert!((s.norm() - v.norm() * factor as f64).abs() < 1e-3);
        }
    }
}
