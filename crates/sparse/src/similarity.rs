//! Exact similarity measures between sparse vectors.
//!
//! These are the ground-truth computations: BayesLSH-Lite calls them for
//! unpruned candidates, and the evaluation harness uses them to measure the
//! recall and estimation error of every approximate method.

use crate::vector::SparseVector;

/// Dot product, accumulated in `f64` via a sorted merge join.
pub fn dot(x: &SparseVector, y: &SparseVector) -> f64 {
    let (xi, xv) = (x.indices(), x.values());
    let (yi, yv) = (y.indices(), y.values());
    let mut acc = 0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < xi.len() && j < yi.len() {
        match xi[i].cmp(&yi[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                acc += xv[i] as f64 * yv[j] as f64;
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

/// Number of shared feature indices (set overlap).
pub fn overlap(x: &SparseVector, y: &SparseVector) -> usize {
    let (xi, yi) = (x.indices(), y.indices());
    let mut count = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < xi.len() && j < yi.len() {
        match xi[i].cmp(&yi[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Cosine similarity `dot(x, y) / (‖x‖·‖y‖)`; 0.0 when either vector is
/// empty. For binary vectors this reduces to `|x ∩ y| / sqrt(|x|·|y|)`.
pub fn cosine(x: &SparseVector, y: &SparseVector) -> f64 {
    let nx = x.norm();
    let ny = y.norm();
    if nx == 0.0 || ny == 0.0 {
        return 0.0;
    }
    // Floating error can push identical unit vectors epsilon above 1.
    (dot(x, y) / (nx * ny)).clamp(-1.0, 1.0)
}

/// Jaccard similarity of the *supports*: `|x ∩ y| / |x ∪ y|`; 1.0 when both
/// are empty. Weights are ignored — the paper evaluates Jaccard only on
/// binary vectors.
pub fn jaccard(x: &SparseVector, y: &SparseVector) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 1.0;
    }
    let inter = overlap(x, y);
    let union = x.nnz() + y.nnz() - inter;
    inter as f64 / union as f64
}

/// Euclidean (L2) distance `‖x − y‖₂`, accumulated in `f64` via a sorted
/// merge join over the union of supports.
pub fn l2_distance(x: &SparseVector, y: &SparseVector) -> f64 {
    let (xi, xv) = (x.indices(), x.values());
    let (yi, yv) = (y.indices(), y.values());
    let mut acc = 0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    while i < xi.len() && j < yi.len() {
        match xi[i].cmp(&yi[j]) {
            std::cmp::Ordering::Less => {
                acc += (xv[i] as f64) * (xv[i] as f64);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                acc += (yv[j] as f64) * (yv[j] as f64);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let d = xv[i] as f64 - yv[j] as f64;
                acc += d * d;
                i += 1;
                j += 1;
            }
        }
    }
    for &v in &xv[i..] {
        acc += (v as f64) * (v as f64);
    }
    for &v in &yv[j..] {
        acc += (v as f64) * (v as f64);
    }
    acc.sqrt()
}

/// L2 similarity `1 / (1 + ‖x − y‖₂)` — a monotone map of Euclidean
/// distance into `(0, 1]`, so L2 search speaks the same threshold
/// language as cosine and Jaccard (s = 1 ⇔ d = 0).
pub fn l2_similarity(x: &SparseVector, y: &SparseVector) -> f64 {
    1.0 / (1.0 + l2_distance(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().copied())
    }

    #[test]
    fn dot_hand_computed() {
        let x = v(&[(0, 1.0), (2, 2.0), (5, 3.0)]);
        let y = v(&[(2, 4.0), (5, 0.5), (9, 7.0)]);
        assert!((dot(&x, &y) - (2.0 * 4.0 + 3.0 * 0.5)).abs() < 1e-9);
    }

    #[test]
    fn dot_disjoint_is_zero() {
        let x = v(&[(0, 1.0), (2, 2.0)]);
        let y = v(&[(1, 4.0), (3, 0.5)]);
        assert_eq!(dot(&x, &y), 0.0);
    }

    #[test]
    fn dot_with_empty_is_zero() {
        let x = v(&[(0, 1.0)]);
        assert_eq!(dot(&x, &SparseVector::empty()), 0.0);
        assert_eq!(dot(&SparseVector::empty(), &x), 0.0);
    }

    #[test]
    fn cosine_identical_vectors_is_one() {
        let x = v(&[(1, 0.3), (4, 0.8), (9, 0.1)]);
        assert!((cosine(&x, &x) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_scale_invariant() {
        let x = v(&[(1, 0.3), (4, 0.8)]);
        let y = v(&[(1, 0.5), (4, 0.1), (7, 0.9)]);
        let y2 = y.scaled(3.7);
        assert!((cosine(&x, &y) - cosine(&x, &y2)).abs() < 1e-6);
    }

    #[test]
    fn cosine_orthogonal_is_zero() {
        assert_eq!(cosine(&v(&[(0, 1.0)]), &v(&[(1, 1.0)])), 0.0);
    }

    #[test]
    fn cosine_binary_formula() {
        // |x ∩ y| / sqrt(|x||y|) for binary vectors.
        let x = SparseVector::from_indices(vec![1, 2, 3, 4]);
        let y = SparseVector::from_indices(vec![3, 4, 5]);
        let expected = 2.0 / (4.0f64 * 3.0).sqrt();
        assert!((cosine(&x, &y) - expected).abs() < 1e-9);
    }

    #[test]
    fn jaccard_hand_computed() {
        let x = SparseVector::from_indices(vec![1, 2, 3, 4]);
        let y = SparseVector::from_indices(vec![3, 4, 5, 6]);
        assert!((jaccard(&x, &y) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_edge_cases() {
        let x = SparseVector::from_indices(vec![1, 2]);
        assert_eq!(jaccard(&x, &x), 1.0);
        assert_eq!(jaccard(&x, &SparseVector::empty()), 0.0);
        assert_eq!(jaccard(&SparseVector::empty(), &SparseVector::empty()), 1.0);
    }

    #[test]
    fn overlap_counts_shared_support() {
        let x = v(&[(1, 0.1), (2, 0.2), (3, 0.3)]);
        let y = v(&[(2, 9.0), (3, 9.0), (4, 9.0)]);
        assert_eq!(overlap(&x, &y), 2);
    }

    #[test]
    fn l2_hand_computed() {
        let x = v(&[(0, 1.0), (2, 2.0)]);
        let y = v(&[(2, 4.0), (5, 2.0)]);
        // Diffs: 1 at 0, -2 at 2, -2 at 5 → sqrt(1 + 4 + 4) = 3.
        assert!((l2_distance(&x, &y) - 3.0).abs() < 1e-9);
        assert!((l2_similarity(&x, &y) - 0.25).abs() < 1e-9);
        assert_eq!(l2_distance(&x, &x), 0.0);
        assert_eq!(l2_similarity(&x, &x), 1.0);
        assert!((l2_distance(&x, &SparseVector::empty()) - x.norm()).abs() < 1e-6);
    }

    fn arb_vec() -> impl Strategy<Value = SparseVector> {
        proptest::collection::vec((0u32..200, 0.01f32..10.0), 0..40)
            .prop_map(SparseVector::from_pairs)
    }

    proptest! {
        #[test]
        fn dot_is_symmetric(x in arb_vec(), y in arb_vec()) {
            prop_assert!((dot(&x, &y) - dot(&y, &x)).abs() < 1e-9);
        }

        #[test]
        fn cosine_bounds_nonneg_weights(x in arb_vec(), y in arb_vec()) {
            let c = cosine(&x, &y);
            prop_assert!((0.0..=1.0).contains(&c), "cosine {c}");
        }

        #[test]
        fn jaccard_bounds(x in arb_vec(), y in arb_vec()) {
            let j = jaccard(&x, &y);
            prop_assert!((0.0..=1.0).contains(&j), "jaccard {j}");
        }

        #[test]
        fn jaccard_le_cosine_on_binary(x in arb_vec(), y in arb_vec()) {
            // For non-empty binary vectors J(x,y) <= cos(x,y):
            // |∩|/|∪| <= |∩|/sqrt(|x||y|) because |∪| >= max(|x|,|y|)
            // >= sqrt(|x||y|). (Both-empty is the convention-dependent
            // exception: J = 1 but cos = 0.)
            let (bx, by) = (x.binarize(), y.binarize());
            prop_assume!(!bx.is_empty() && !by.is_empty());
            prop_assert!(jaccard(&bx, &by) <= cosine(&bx, &by) + 1e-9);
        }

        #[test]
        fn cauchy_schwarz(x in arb_vec(), y in arb_vec()) {
            prop_assert!(dot(&x, &y).abs() <= x.norm() * y.norm() + 1e-6);
        }

        #[test]
        fn l2_is_a_metric_sample(x in arb_vec(), y in arb_vec()) {
            let d = l2_distance(&x, &y);
            prop_assert!(d >= 0.0);
            prop_assert!((d - l2_distance(&y, &x)).abs() < 1e-9);
            let s = l2_similarity(&x, &y);
            prop_assert!(s > 0.0 && s <= 1.0);
        }
    }
}
