//! A corpus of sparse vectors plus the summary statistics of paper Table 1.

use bayeslsh_numeric::wire::{WireError, WireReader, WireWriter};

use crate::vector::SparseVector;

/// A dataset: a list of sparse vectors over a fixed-dimensional feature
/// space. Vector ids are their positions (`u32`).
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    vectors: Vec<SparseVector>,
    dim: u32,
}

/// Summary statistics, matching the columns of paper Table 1
/// (vectors, dimensions, average length, total non-zeros).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Number of vectors in the corpus.
    pub n_vectors: usize,
    /// Dimensionality of the feature space.
    pub dim: u32,
    /// Mean number of non-zeros per vector.
    pub avg_len: f64,
    /// Total number of non-zeros.
    pub nnz: u64,
    /// Largest vector length.
    pub max_len: usize,
    /// Population standard deviation of the vector lengths. The paper's
    /// discussion of AllPairs-vs-LSH (observation 4, Section 5.2) hinges on
    /// length variance, so we surface it alongside Table 1's columns.
    pub len_std: f64,
}

impl Dataset {
    /// Create an empty dataset over a `dim`-dimensional space.
    pub fn new(dim: u32) -> Self {
        Self {
            vectors: Vec::new(),
            dim,
        }
    }

    /// Build from vectors; `dim` grows to fit if any vector exceeds it.
    pub fn from_vectors(vectors: Vec<SparseVector>, dim: u32) -> Self {
        let need = vectors.iter().map(|v| v.min_dim()).max().unwrap_or(0);
        Self {
            vectors,
            dim: dim.max(need),
        }
    }

    /// Append a vector, growing `dim` if needed. Returns the new vector's id.
    pub fn push(&mut self, v: SparseVector) -> u32 {
        self.dim = self.dim.max(v.min_dim());
        self.vectors.push(v);
        (self.vectors.len() - 1) as u32
    }

    /// Replace vector `id` with the empty vector, keeping its slot (ids
    /// are positions, so they must stay stable) and the feature-space
    /// dimensionality. Used by index compaction to reclaim the storage of
    /// removed vectors.
    ///
    /// # Panics
    ///
    /// When `id` is out of range.
    pub fn clear_vector(&mut self, id: u32) {
        self.vectors[id as usize] = SparseVector::empty();
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if the dataset holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Feature-space dimensionality.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Borrow vector `id`.
    pub fn vector(&self, id: u32) -> &SparseVector {
        &self.vectors[id as usize]
    }

    /// All vectors, in id order.
    pub fn vectors(&self) -> &[SparseVector] {
        &self.vectors
    }

    /// Iterate `(id, vector)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &SparseVector)> {
        self.vectors.iter().enumerate().map(|(i, v)| (i as u32, v))
    }

    /// Per-feature document frequency (number of vectors containing each
    /// feature).
    pub fn document_frequencies(&self) -> Vec<u32> {
        let mut df = vec![0u32; self.dim as usize];
        for v in &self.vectors {
            for &i in v.indices() {
                df[i as usize] += 1;
            }
        }
        df
    }

    /// A copy with every vector binarized (weights → 1.0), as used by the
    /// paper's "Binary, Jaccard" and "Binary, Cosine" experiments.
    pub fn binarized(&self) -> Self {
        Self {
            vectors: self.vectors.iter().map(|v| v.binarize()).collect(),
            dim: self.dim,
        }
    }

    /// Split the corpus into `n_shards` disjoint datasets, assigning each
    /// vector by `assign(id)` (values are taken modulo `n_shards`, so any
    /// total function is a valid policy).
    ///
    /// Two properties matter to sharded serving and are guaranteed here:
    ///
    /// * **Every shard keeps the full feature space.** Each output starts
    ///   at `self.dim()`, so hash families seeded per-config produce the
    ///   same signatures on a shard as they would on the whole corpus —
    ///   the foundation of bit-identical scatter-gather.
    /// * **Shard-local ids are monotone in global ids**: scanning global
    ///   ids in ascending order, a vector's local id within its shard is
    ///   the count of earlier vectors assigned there. Routers invert the
    ///   mapping by replaying the same assignment.
    ///
    /// # Panics
    ///
    /// When `n_shards` is zero.
    pub fn partition(&self, n_shards: usize, assign: impl Fn(u32) -> usize) -> Vec<Dataset> {
        assert!(n_shards > 0, "need at least one shard");
        let mut shards: Vec<Dataset> = (0..n_shards).map(|_| Dataset::new(self.dim)).collect();
        for (id, v) in self.iter() {
            shards[assign(id) % n_shards].push(v.clone());
        }
        shards
    }

    /// A copy with every vector scaled to unit L2 norm (cosine similarity is
    /// then a plain dot product — the precondition for AllPairs).
    pub fn l2_normalized(&self) -> Self {
        Self {
            vectors: self.vectors.iter().map(|v| v.l2_normalized()).collect(),
            dim: self.dim,
        }
    }

    /// Serialize the corpus for an index snapshot: `dim`, vector count,
    /// then per vector its nonzero count followed by the index and weight
    /// arrays. All little-endian; weights are written as bit patterns so
    /// the round trip is bit-exact.
    pub fn write_wire<W: std::io::Write>(&self, w: &mut WireWriter<W>) -> Result<(), WireError> {
        w.put_u32(self.dim)?;
        w.put_u64(self.vectors.len() as u64)?;
        for v in &self.vectors {
            w.put_u32(v.nnz() as u32)?;
            for &i in v.indices() {
                w.put_u32(i)?;
            }
            for &x in v.values() {
                w.put_f32(x)?;
            }
        }
        Ok(())
    }

    /// Deserialize a corpus written by [`Dataset::write_wire`]. Every
    /// vector is re-validated against the [`SparseVector`] invariants
    /// (sorted unique indices, finite non-zero weights), so a corrupt
    /// payload surfaces as [`WireError::Corrupt`] rather than a malformed
    /// corpus.
    pub fn read_wire<R: std::io::Read>(r: &mut WireReader<R>) -> Result<Self, WireError> {
        let dim = r.get_u32()?;
        let n = r.get_u64()?;
        let mut out = Dataset::new(dim);
        for slot in 0..n {
            let nnz = r.get_u32()? as usize;
            let mut indices = Vec::with_capacity(nnz.min(65_536));
            for _ in 0..nnz {
                indices.push(r.get_u32()?);
            }
            let mut values = Vec::with_capacity(nnz.min(65_536));
            for _ in 0..nnz {
                values.push(r.get_f32()?);
            }
            let v = SparseVector::from_sorted(indices, values)
                .ok_or_else(|| WireError::corrupt(format!("vector {slot} violates invariants")))?;
            out.push(v);
        }
        if out.dim != dim {
            return Err(WireError::corrupt(format!(
                "declared dim {dim} below the vectors' span {}",
                out.dim
            )));
        }
        Ok(out)
    }

    /// Summary statistics (paper Table 1).
    pub fn stats(&self) -> DatasetStats {
        let n = self.vectors.len();
        let nnz: u64 = self.vectors.iter().map(|v| v.nnz() as u64).sum();
        let avg = if n == 0 { 0.0 } else { nnz as f64 / n as f64 };
        let max_len = self.vectors.iter().map(|v| v.nnz()).max().unwrap_or(0);
        let var = if n == 0 {
            0.0
        } else {
            self.vectors
                .iter()
                .map(|v| {
                    let d = v.nnz() as f64 - avg;
                    d * d
                })
                .sum::<f64>()
                / n as f64
        };
        DatasetStats {
            n_vectors: n,
            dim: self.dim,
            avg_len: avg,
            nnz,
            max_len,
            len_std: var.sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new(0);
        d.push(SparseVector::from_pairs(vec![(0, 1.0), (3, 2.0)]));
        d.push(SparseVector::from_pairs(vec![(3, 1.0)]));
        d.push(SparseVector::from_pairs(vec![(1, 1.0), (2, 1.0), (3, 1.0)]));
        d
    }

    #[test]
    fn push_grows_dim() {
        let d = sample();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 4);
    }

    #[test]
    fn stats_match_hand_computation() {
        let s = sample().stats();
        assert_eq!(s.n_vectors, 3);
        assert_eq!(s.dim, 4);
        assert_eq!(s.nnz, 6);
        assert!((s.avg_len - 2.0).abs() < 1e-12);
        assert_eq!(s.max_len, 3);
        // lengths 2,1,3 → pop variance 2/3.
        assert!((s.len_std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_stats() {
        let s = Dataset::new(7).stats();
        assert_eq!(s.n_vectors, 0);
        assert_eq!(s.dim, 7);
        assert_eq!(s.avg_len, 0.0);
        assert_eq!(s.nnz, 0);
    }

    #[test]
    fn document_frequencies() {
        let df = sample().document_frequencies();
        assert_eq!(df, vec![1, 1, 1, 3]);
    }

    #[test]
    fn binarized_and_normalized_copies() {
        let d = sample();
        let b = d.binarized();
        assert!(b.vectors().iter().all(|v| v.is_binary()));
        assert_eq!(b.dim(), d.dim());
        let n = d.l2_normalized();
        for v in n.vectors() {
            assert!((v.norm() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn from_vectors_fits_dim() {
        let d = Dataset::from_vectors(vec![SparseVector::from_indices(vec![100])], 5);
        assert_eq!(d.dim(), 101);
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let ids: Vec<u32> = sample().iter().map(|(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn partition_keeps_dim_and_monotone_local_ids() {
        let d = sample();
        let shards = d.partition(2, |id| id as usize);
        assert_eq!(shards.len(), 2);
        // Full feature space everywhere, even on the smaller shard.
        assert!(shards.iter().all(|s| s.dim() == d.dim()));
        // Round-robin: shard 0 gets globals {0, 2}, shard 1 gets {1}.
        assert_eq!(shards[0].len(), 2);
        assert_eq!(shards[1].len(), 1);
        assert_eq!(shards[0].vector(0).indices(), d.vector(0).indices());
        assert_eq!(shards[0].vector(1).indices(), d.vector(2).indices());
        assert_eq!(shards[1].vector(0).indices(), d.vector(1).indices());
        // Assignments are taken modulo the shard count.
        let wrapped = d.partition(2, |id| id as usize + 4);
        assert_eq!(wrapped[0].len(), 2);
        assert_eq!(wrapped[1].len(), 1);
        // More shards than vectors leaves trailing shards empty but typed.
        let wide = d.partition(5, |id| id as usize);
        assert!(wide[3].is_empty() && wide[4].is_empty());
        assert_eq!(wide[4].dim(), d.dim());
    }

    #[test]
    fn clear_vector_keeps_slot_and_dim() {
        let mut d = sample();
        let dim = d.dim();
        d.clear_vector(1);
        assert_eq!(d.len(), 3, "ids stay stable");
        assert!(d.vector(1).is_empty());
        assert_eq!(d.dim(), dim, "feature space must not shrink");
        assert_eq!(d.vector(2).nnz(), 3, "neighbours untouched");
    }

    #[test]
    fn wire_round_trip_preserves_everything() {
        let mut d = sample();
        d.push(SparseVector::empty()); // empty vectors survive too
        let mut w = WireWriter::new(Vec::new());
        d.write_wire(&mut w).unwrap();
        let bytes = w.into_inner();
        let mut r = WireReader::new(&bytes[..]);
        let back = Dataset::read_wire(&mut r).unwrap();
        assert_eq!(r.bytes_read(), bytes.len() as u64);
        assert_eq!(back.dim(), d.dim());
        assert_eq!(back.len(), d.len());
        for (id, v) in d.iter() {
            assert_eq!(back.vector(id).indices(), v.indices());
            // Bit-exact weights.
            let got: Vec<u32> = back
                .vector(id)
                .values()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            let want: Vec<u32> = v.values().iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn wire_read_rejects_invalid_vectors() {
        // Hand-craft a payload whose single vector has unsorted indices.
        let mut w = WireWriter::new(Vec::new());
        w.put_u32(10).unwrap(); // dim
        w.put_u64(1).unwrap(); // one vector
        w.put_u32(2).unwrap(); // nnz
        w.put_u32(5).unwrap();
        w.put_u32(3).unwrap(); // descending: invalid
        w.put_f32(1.0).unwrap();
        w.put_f32(1.0).unwrap();
        let bytes = w.into_inner();
        let mut r = WireReader::new(&bytes[..]);
        assert!(matches!(
            Dataset::read_wire(&mut r),
            Err(WireError::Corrupt { .. })
        ));
    }
}
