//! Synthetic datasets mimicking the BayesLSH evaluation corpora.
//!
//! The paper evaluates on six real datasets (Table 1): RCV1, two Wikipedia
//! text corpora, the Wikipedia link graph, Orkut and Twitter. Those dumps
//! are multi-hundred-MB artifacts we cannot ship, so this crate generates
//! *shape-matched* synthetic stand-ins (see DESIGN.md §2 for the
//! substitution argument):
//!
//! * Zipfian feature popularity (text corpora and social graphs both have
//!   heavy-tailed feature frequencies);
//! * log-normal vector lengths with per-dataset dispersion — the paper's
//!   observation 4 (AllPairs wins on high length-variance graphs, LSH on
//!   flatter text) hinges on this knob;
//! * planted near-duplicate clusters so every threshold the paper sweeps
//!   has a non-trivial result set;
//! * tf-idf weighting + L2 normalization applied as in the paper's
//!   preprocessing.
//!
//! [`presets`] exposes one scalable generator per paper dataset; [`io`]
//! reads and writes a plain-text vector format so users can substitute real
//! corpora.

pub mod generator;
pub mod io;
pub mod presets;

pub use generator::{generate, CorpusConfig};
pub use presets::Preset;
