//! The clustered Zipf corpus generator.

use bayeslsh_numeric::{derive_seed, Gaussian, Xoshiro256};
use bayeslsh_sparse::{Dataset, SparseVector};

/// Configuration of a synthetic corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusConfig {
    /// Number of vectors.
    pub n_vectors: usize,
    /// Feature-space dimensionality.
    pub dim: u32,
    /// Target mean number of non-zeros per vector.
    pub avg_len: usize,
    /// Log-normal σ of the length distribution (0 = near-constant lengths).
    /// Graph datasets have much higher dispersion than text corpora.
    pub len_sigma: f64,
    /// Zipf exponent of feature popularity (≈1 for natural text).
    pub zipf_exponent: f64,
    /// Number of planted near-duplicate clusters.
    pub n_clusters: usize,
    /// Fraction of vectors that belong to a planted cluster.
    pub cluster_fraction: f64,
    /// Per-feature mutation probability for cluster members (lower =
    /// tighter clusters = more very-high-similarity pairs).
    pub mutation_rate: f64,
    /// Draw term counts > 1 (text); false gives binary features (graphs).
    pub weighted: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            n_vectors: 1000,
            dim: 10_000,
            avg_len: 60,
            len_sigma: 0.5,
            zipf_exponent: 1.0,
            n_clusters: 25,
            cluster_fraction: 0.4,
            mutation_rate: 0.15,
            weighted: true,
            seed: 1,
        }
    }
}

/// A Zipf(β) sampler over `{0, …, n−1}` via an inverse-CDF table.
pub struct ZipfSampler {
    cum: Vec<f64>,
}

impl ZipfSampler {
    /// Build the cumulative table for `n` items with exponent `beta`.
    pub fn new(n: u32, beta: f64) -> Self {
        assert!(n > 0);
        let mut cum = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for r in 1..=n as u64 {
            acc += 1.0 / (r as f64).powf(beta);
            cum.push(acc);
        }
        Self { cum }
    }

    /// Draw one item (items are popularity-ranked: 0 is the most popular).
    pub fn sample(&self, rng: &mut Xoshiro256) -> u32 {
        let u = rng.next_f64() * self.cum.last().unwrap();
        self.cum.partition_point(|&c| c < u) as u32
    }
}

/// Generate a corpus of raw term-count vectors (apply
/// [`bayeslsh_sparse::tfidf::tfidf_transform`] downstream for the paper's
/// weighting, or [`Dataset::binarized`] for set semantics).
pub fn generate(cfg: &CorpusConfig) -> Dataset {
    assert!(cfg.n_vectors > 0 && cfg.dim > 0 && cfg.avg_len > 0);
    assert!((0.0..=1.0).contains(&cfg.cluster_fraction));
    assert!((0.0..=1.0).contains(&cfg.mutation_rate));

    let mut rng = Xoshiro256::seed_from_u64(derive_seed(cfg.seed, 0x00DA_7A5E));
    let mut gauss = Gaussian::new();
    let zipf = ZipfSampler::new(cfg.dim, cfg.zipf_exponent);

    // Feature ranks are scrambled so that popular features are spread over
    // the index space (as in real vocabularies) rather than clustered at 0.
    let mut feature_of_rank: Vec<u32> = (0..cfg.dim).collect();
    rng.shuffle(&mut feature_of_rank);

    let draw_len = |rng: &mut Xoshiro256, gauss: &mut Gaussian| -> usize {
        if cfg.len_sigma == 0.0 {
            return cfg.avg_len;
        }
        // Log-normal with mean avg_len: exp(μ + σz), μ = ln(avg) − σ²/2.
        let mu = (cfg.avg_len as f64).ln() - cfg.len_sigma * cfg.len_sigma / 2.0;
        let len = (mu + cfg.len_sigma * gauss.sample(rng)).exp().round() as usize;
        len.clamp(1, (cfg.dim as usize / 2).max(2))
    };

    let draw_vector = |rng: &mut Xoshiro256, gauss: &mut Gaussian| -> Vec<(u32, f32)> {
        let len = draw_len(rng, gauss);
        let mut pairs = Vec::with_capacity(len);
        let mut seen = std::collections::HashSet::with_capacity(len * 2);
        let mut attempts = 0;
        while pairs.len() < len && attempts < len * 20 {
            attempts += 1;
            let feat = feature_of_rank[zipf.sample(rng) as usize];
            if !seen.insert(feat) {
                continue;
            }
            let weight = if cfg.weighted {
                // Term counts: 1 + geometric-ish tail.
                let mut c = 1.0f32;
                while rng.next_bool(0.3) && c < 20.0 {
                    c += 1.0;
                }
                c
            } else {
                1.0
            };
            pairs.push((feat, weight));
        }
        pairs
    };

    let n_clustered = (cfg.n_vectors as f64 * cfg.cluster_fraction) as usize;
    let n_clusters = cfg.n_clusters.max(1).min(n_clustered.max(1));

    // Mutation can collide with an existing feature; `from_pairs` would sum
    // the duplicate weights, which must not happen for binary corpora.
    let build = |pairs: Vec<(u32, f32)>| {
        if cfg.weighted {
            SparseVector::from_pairs(pairs)
        } else {
            SparseVector::from_indices(pairs.into_iter().map(|(i, _)| i).collect())
        }
    };

    let mut data = Dataset::new(cfg.dim);
    // Cluster members: a center vector with mutated copies.
    if n_clustered > 0 {
        let centers: Vec<Vec<(u32, f32)>> = (0..n_clusters)
            .map(|_| draw_vector(&mut rng, &mut gauss))
            .collect();
        for i in 0..n_clustered {
            let center = &centers[i % n_clusters];
            let mut pairs = center.clone();
            for p in pairs.iter_mut() {
                if rng.next_bool(cfg.mutation_rate) {
                    let feat = feature_of_rank[zipf.sample(&mut rng) as usize];
                    p.0 = feat;
                }
            }
            data.push(build(pairs));
        }
    }
    // Background vectors.
    for _ in n_clustered..cfg.n_vectors {
        let pairs = draw_vector(&mut rng, &mut gauss);
        data.push(build(pairs));
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_sparse::cosine;

    #[test]
    fn zipf_is_heavy_headed() {
        let zipf = ZipfSampler::new(1000, 1.0);
        let mut rng = Xoshiro256::seed_from_u64(100);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 should be ~2x rank 1, ~10x rank 9.
        assert!(
            counts[0] > counts[1],
            "rank0 {} rank1 {}",
            counts[0],
            counts[1]
        );
        assert!(
            counts[0] > 5 * counts[9],
            "rank0 {} rank9 {}",
            counts[0],
            counts[9]
        );
        // Tail items still get sampled.
        let tail: usize = counts[500..].iter().sum();
        assert!(tail > 1000, "tail mass {tail}");
    }

    #[test]
    fn zipf_flat_exponent_is_roughly_uniform() {
        let zipf = ZipfSampler::new(100, 0.0);
        let mut rng = Xoshiro256::seed_from_u64(101);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "count {c}");
        }
    }

    #[test]
    fn respects_target_shape() {
        let cfg = CorpusConfig {
            n_vectors: 800,
            dim: 20_000,
            avg_len: 50,
            len_sigma: 0.4,
            ..Default::default()
        };
        let data = generate(&cfg);
        let stats = data.stats();
        assert_eq!(stats.n_vectors, 800);
        assert_eq!(stats.dim, 20_000);
        assert!(
            (stats.avg_len - 50.0).abs() < 10.0,
            "avg_len {} should be near 50",
            stats.avg_len
        );
        assert!(data.vectors().iter().all(|v| !v.is_empty()));
    }

    #[test]
    fn length_dispersion_knob_works() {
        let flat = generate(&CorpusConfig {
            len_sigma: 0.1,
            n_vectors: 600,
            seed: 7,
            ..Default::default()
        });
        let disp = generate(&CorpusConfig {
            len_sigma: 1.3,
            n_vectors: 600,
            seed: 7,
            ..Default::default()
        });
        let cv = |d: &Dataset| {
            let s = d.stats();
            s.len_std / s.avg_len
        };
        assert!(
            cv(&disp) > 2.0 * cv(&flat),
            "dispersed CV {} should far exceed flat CV {}",
            cv(&disp),
            cv(&flat)
        );
    }

    #[test]
    fn clusters_contain_similar_pairs() {
        let cfg = CorpusConfig {
            n_vectors: 400,
            seed: 9,
            ..Default::default()
        };
        let data = generate(&cfg);
        // Members of the same cluster are laid out n_clusters apart.
        let mut high = 0;
        let n_clustered = (400.0 * cfg.cluster_fraction) as usize;
        for i in 0..cfg.n_clusters.min(n_clustered) {
            for j in 1..3 {
                let other = i + j * cfg.n_clusters;
                if other < n_clustered
                    && cosine(data.vector(i as u32), data.vector(other as u32)) > 0.6
                {
                    high += 1;
                }
            }
        }
        assert!(
            high >= 10,
            "expected many similar intra-cluster pairs, got {high}"
        );
    }

    #[test]
    fn binary_mode_emits_binary_vectors() {
        let cfg = CorpusConfig {
            weighted: false,
            n_vectors: 100,
            ..Default::default()
        };
        let data = generate(&cfg);
        assert!(data.vectors().iter().all(|v| v.is_binary()));
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = CorpusConfig {
            n_vectors: 150,
            ..Default::default()
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.vectors().iter().zip(b.vectors()) {
            assert_eq!(x, y);
        }
        let c = generate(&CorpusConfig { seed: 2, ..cfg });
        assert_ne!(a.vector(0), c.vector(0));
    }
}
