//! Plain-text dataset I/O.
//!
//! One vector per line, `index:weight` entries separated by spaces (the
//! SVM-light convention, 0-based indices, without labels). `#` starts a
//! comment, blank lines are empty vectors. This lets users run the full
//! pipeline on real corpora without recompiling.

use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

use bayeslsh_sparse::{Dataset, SparseVector};

/// Errors raised by the text reader.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed `index:weight` entry, with line and token context.
    Parse { line: usize, token: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, token } => {
                write!(
                    f,
                    "line {line}: malformed entry {token:?} (expected index:weight)"
                )
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parse a dataset from a reader.
pub fn read_dataset(reader: impl BufRead) -> Result<Dataset, IoError> {
    let mut data = Dataset::new(0);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let body = line.split('#').next().unwrap_or("").trim();
        let mut pairs = Vec::new();
        if !body.is_empty() {
            for token in body.split_whitespace() {
                let (idx, val) = token.split_once(':').ok_or_else(|| IoError::Parse {
                    line: lineno + 1,
                    token: token.to_string(),
                })?;
                let idx: u32 = idx.parse().map_err(|_| IoError::Parse {
                    line: lineno + 1,
                    token: token.to_string(),
                })?;
                let val: f32 = val.parse().map_err(|_| IoError::Parse {
                    line: lineno + 1,
                    token: token.to_string(),
                })?;
                pairs.push((idx, val));
            }
        }
        data.push(SparseVector::from_pairs(pairs));
    }
    Ok(data)
}

/// Load a dataset from a file path.
pub fn load_path(path: impl AsRef<Path>) -> Result<Dataset, IoError> {
    let file = std::fs::File::open(path)?;
    read_dataset(std::io::BufReader::new(file))
}

/// Write a dataset to a writer in the same format.
pub fn write_dataset(data: &Dataset, writer: impl Write) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for (_, v) in data.iter() {
        let mut first = true;
        for (idx, val) in v.iter() {
            if !first {
                write!(w, " ")?;
            }
            write!(w, "{idx}:{val}")?;
            first = false;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Save a dataset to a file path.
pub fn save_path(data: &Dataset, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_dataset(data, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut data = Dataset::new(0);
        data.push(SparseVector::from_pairs(vec![(0, 1.5), (7, -2.0)]));
        data.push(SparseVector::empty());
        data.push(SparseVector::from_pairs(vec![(3, 0.25)]));
        let mut buf = Vec::new();
        write_dataset(&data, &mut buf).unwrap();
        let back = read_dataset(&buf[..]).unwrap();
        assert_eq!(back.len(), 3);
        for (a, b) in data.vectors().iter().zip(back.vectors()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn parses_comments_and_blanks() {
        let text = "1:2.0 5:1.0 # trailing comment\n\n# whole-line comment\n2:3\n";
        let data = read_dataset(text.as_bytes()).unwrap();
        assert_eq!(data.len(), 4);
        assert_eq!(data.vector(0).indices(), &[1, 5]);
        assert!(data.vector(1).is_empty());
        assert!(data.vector(2).is_empty());
        assert_eq!(data.vector(3).get(2), 3.0);
    }

    #[test]
    fn rejects_malformed_entries() {
        for bad in ["nocolon", "1:abc", "x:1.0", "1:"] {
            let err = read_dataset(bad.as_bytes()).unwrap_err();
            assert!(
                matches!(err, IoError::Parse { line: 1, .. }),
                "{bad} -> {err}"
            );
        }
    }

    #[test]
    fn error_display_is_informative() {
        let err = read_dataset("5:bogus".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1") && msg.contains("5:bogus"), "{msg}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("bayeslsh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.txt");
        let mut data = Dataset::new(0);
        data.push(SparseVector::from_pairs(vec![(2, 1.0), (9, 4.5)]));
        save_path(&data, &path).unwrap();
        let back = load_path(&path).unwrap();
        assert_eq!(back.vector(0), data.vector(0));
        std::fs::remove_file(&path).ok();
    }
}
