//! Scalable stand-ins for the paper's six evaluation datasets (Table 1).
//!
//! Each preset records the real dataset's shape (vector count,
//! dimensionality, average length) and a dispersion/structure profile, and
//! generates a `scale`-sized synthetic corpus with the same character:
//!
//! | Preset           | Paper size          | Character                          |
//! |------------------|---------------------|------------------------------------|
//! | `Rcv1`           | 804k × 47k, avg 76  | text, modest lengths, low variance |
//! | `WikiWords100K`  | 101k × 344k, avg 786| text, long vectors                 |
//! | `WikiWords500K`  | 494k × 344k, avg 398| text, long vectors                 |
//! | `WikiLinks`      | 1.8M × 1.8M, avg 24 | graph, short, huge length variance |
//! | `Orkut`          | 3.1M × 3.1M, avg 76 | graph, huge length variance        |
//! | `Twitter`        | 146k × 146k, avg 1369| graph, very long vectors          |
//!
//! `load()` applies the paper's preprocessing (tf-idf + L2 normalization)
//! on top of the raw counts.

use bayeslsh_numeric::derive_seed;
use bayeslsh_sparse::{tfidf::tfidf_transform, Dataset};

use crate::generator::{generate, CorpusConfig};

/// The six datasets of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// Reuters RCV1 text corpus.
    Rcv1,
    /// Wikipedia articles with ≥500 word features.
    WikiWords100K,
    /// Wikipedia articles with ≥200 word features.
    WikiWords500K,
    /// Wikipedia article hyperlink graph.
    WikiLinks,
    /// Orkut friendship graph.
    Orkut,
    /// Twitter follower graph (users with ≥1000 followers).
    Twitter,
}

impl Preset {
    /// All presets in the paper's Table 1 order.
    pub const ALL: [Preset; 6] = [
        Preset::Rcv1,
        Preset::WikiWords100K,
        Preset::WikiWords500K,
        Preset::WikiLinks,
        Preset::Orkut,
        Preset::Twitter,
    ];

    /// Dataset name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Preset::Rcv1 => "RCV1",
            Preset::WikiWords100K => "WikiWords100K",
            Preset::WikiWords500K => "WikiWords500K",
            Preset::WikiLinks => "WikiLinks",
            Preset::Orkut => "Orkut",
            Preset::Twitter => "Twitter",
        }
    }

    /// `(vectors, dimensions, average length)` of the real dataset (paper
    /// Table 1).
    pub fn paper_shape(&self) -> (usize, u32, usize) {
        match self {
            Preset::Rcv1 => (804_414, 47_236, 76),
            Preset::WikiWords100K => (100_528, 344_352, 786),
            Preset::WikiWords500K => (494_244, 344_352, 398),
            Preset::WikiLinks => (1_815_914, 1_815_914, 24),
            Preset::Orkut => (3_072_626, 3_072_626, 76),
            Preset::Twitter => (146_170, 146_170, 1369),
        }
    }

    /// True for the graph datasets (dimension = vector count, binary
    /// adjacency, heavy-tailed degrees).
    pub fn is_graph(&self) -> bool {
        matches!(self, Preset::WikiLinks | Preset::Orkut | Preset::Twitter)
    }

    /// Length-dispersion profile (log-normal σ). The paper's observation 4
    /// attributes AllPairs' wins on WikiLinks/Orkut to their high length
    /// variance.
    fn len_sigma(&self) -> f64 {
        match self {
            Preset::Rcv1 => 0.45,
            Preset::WikiWords100K => 0.35,
            Preset::WikiWords500K => 0.45,
            Preset::WikiLinks => 1.30,
            Preset::Orkut => 1.25,
            Preset::Twitter => 0.70,
        }
    }

    /// The generator configuration at `scale` (fraction of the paper's
    /// vector count; dimensions shrink with the same factor, floored to
    /// keep the space sparse).
    pub fn config(&self, scale: f64, seed: u64) -> CorpusConfig {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let (vecs, dims, avg_len) = self.paper_shape();
        // Graphs need a higher floor: their feature space is the vertex
        // set, so a tiny vertex count would cap the average degree far
        // below the paper's shape.
        let floor = if self.is_graph() { 800 } else { 300 };
        let n_vectors = ((vecs as f64 * scale) as usize).max(floor);
        let dim = if self.is_graph() {
            // Adjacency space: features are vertices.
            n_vectors as u32
        } else {
            (((dims as f64) * scale) as u32).max(5_000)
        };
        // Average length is a *shape* property — keep it, but cap so tiny
        // scaled spaces are not saturated.
        let avg_len = avg_len.min(dim as usize / 8).max(8);
        CorpusConfig {
            n_vectors,
            dim,
            avg_len,
            len_sigma: self.len_sigma(),
            zipf_exponent: if self.is_graph() { 0.9 } else { 1.05 },
            n_clusters: (n_vectors / 40).max(4),
            cluster_fraction: 0.4,
            mutation_rate: 0.15,
            weighted: !self.is_graph(),
            seed: derive_seed(seed, *self as u64),
        }
    }

    /// Generate the scaled dataset with the paper's preprocessing applied
    /// (tf-idf weighting, L2 normalization).
    pub fn load(&self, scale: f64, seed: u64) -> Dataset {
        let raw = generate(&self.config(scale, seed));
        tfidf_transform(&raw)
    }

    /// Generate the binary (set) version used by the paper's "Binary,
    /// Jaccard" and "Binary, Cosine" experiments.
    pub fn load_binary(&self, scale: f64, seed: u64) -> Dataset {
        generate(&self.config(scale, seed)).binarized()
    }
}

impl std::fmt::Display for Preset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_shapes_follow_paper_ratios() {
        let scale = 0.01;
        for p in Preset::ALL {
            let cfg = p.config(scale, 1);
            let (vecs, _, _) = p.paper_shape();
            let floor = if p.is_graph() { 800 } else { 300 };
            let expect = ((vecs as f64 * scale) as usize).max(floor);
            assert_eq!(cfg.n_vectors, expect, "{p}");
            if p.is_graph() {
                assert_eq!(cfg.dim as usize, cfg.n_vectors, "{p} graph dim = n");
                assert!(!cfg.weighted);
            }
        }
    }

    #[test]
    fn relative_sizes_preserved() {
        // Orkut > WikiLinks > RCV1 > WikiWords500K in vector count.
        let n = |p: Preset| p.config(0.01, 1).n_vectors;
        assert!(n(Preset::Orkut) > n(Preset::WikiLinks));
        assert!(n(Preset::WikiLinks) > n(Preset::Rcv1));
        assert!(n(Preset::Rcv1) > n(Preset::WikiWords500K));
    }

    #[test]
    fn graph_presets_have_higher_length_dispersion() {
        let scale = 0.004;
        let orkut = Preset::Orkut.load_binary(scale, 2).stats();
        let rcv1 = Preset::Rcv1.load_binary(scale, 2).stats();
        let cv_orkut = orkut.len_std / orkut.avg_len;
        let cv_rcv1 = rcv1.len_std / rcv1.avg_len;
        assert!(
            cv_orkut > 1.5 * cv_rcv1,
            "orkut CV {cv_orkut} should exceed rcv1 CV {cv_rcv1}"
        );
    }

    #[test]
    fn load_applies_normalization() {
        let data = Preset::Rcv1.load(0.001, 3);
        for v in data.vectors().iter().take(50) {
            if !v.is_empty() {
                assert!((v.norm() - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn load_binary_is_binary() {
        let data = Preset::WikiLinks.load_binary(0.0005, 4);
        assert!(data.vectors().iter().all(|v| v.is_binary()));
    }

    #[test]
    fn presets_are_deterministic_and_seed_sensitive() {
        let a = Preset::Twitter.load_binary(0.003, 7);
        let b = Preset::Twitter.load_binary(0.003, 7);
        assert_eq!(a.vector(0), b.vector(0));
        let c = Preset::Twitter.load_binary(0.003, 8);
        assert_ne!(a.vector(0), c.vector(0));
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Preset::Rcv1.name(), "RCV1");
        assert_eq!(format!("{}", Preset::WikiLinks), "WikiLinks");
        assert_eq!(Preset::ALL.len(), 6);
    }
}
