//! Lazily extendable signature pools.
//!
//! BayesLSH compares hashes incrementally, `k` at a time, and most candidate
//! pairs are pruned after a handful of chunks — so most objects never need
//! deep signatures. A pool stores, per object, only as many hashes as some
//! surviving pair has demanded, and extends on request. This mirrors the
//! paper's observation that "outlying points ... need only be hashed a few
//! times".

use bayeslsh_numeric::fan_out;
use bayeslsh_numeric::wire::{WireError, WireReader, WireWriter};
use bayeslsh_sparse::{Dataset, SparseVector};

use crate::minhash::{MinHasher, MinScratch};
use crate::srp::{SrpHasher, SrpScratch};

/// Word span and edge masks of a `lo..hi` bit range over packed 32-bit
/// words: the per-word mask computation is hoisted here once, so batched
/// counting sweeps candidates with nothing but XOR + popcount per word.
#[derive(Debug, Clone, Copy)]
struct BitSpan {
    start_w: usize,
    end_w: usize,
    first_mask: u32,
    last_mask: u32,
}

impl BitSpan {
    /// The span of `lo..hi`; `None` when the range is empty.
    fn new(lo: u32, hi: u32) -> Option<Self> {
        debug_assert!(lo <= hi);
        if lo == hi {
            return None;
        }
        let start_w = (lo / 32) as usize;
        let end_w = hi.div_ceil(32) as usize;
        let mut first_mask = u32::MAX << (lo % 32);
        let rem = hi - (end_w as u32 - 1) * 32;
        let mut last_mask = if rem < 32 {
            (1u32 << rem) - 1
        } else {
            u32::MAX
        };
        if start_w + 1 == end_w {
            // Single-word range: both edges land in the same mask.
            first_mask &= last_mask;
            last_mask = first_mask;
        }
        Some(Self {
            start_w,
            end_w,
            first_mask,
            last_mask,
        })
    }

    /// Count agreeing bits over this span between two word buffers.
    #[inline]
    fn count(&self, wa: &[u32], wb: &[u32]) -> u32 {
        debug_assert!(self.end_w <= wa.len() && self.end_w <= wb.len());
        let first = (wa[self.start_w] ^ wb[self.start_w]) & self.first_mask;
        let mut agree = self.first_mask.count_ones() - first.count_ones();
        if self.start_w + 1 == self.end_w {
            return agree;
        }
        // Whole middle words: pair them into u64 XOR + popcount.
        let mid_a = &wa[self.start_w + 1..self.end_w - 1];
        let mid_b = &wb[self.start_w + 1..self.end_w - 1];
        let mut pairs_a = mid_a.chunks_exact(2);
        let mut pairs_b = mid_b.chunks_exact(2);
        for (pa, pb) in pairs_a.by_ref().zip(pairs_b.by_ref()) {
            let x = (pa[0] ^ pb[0]) as u64 | (((pa[1] ^ pb[1]) as u64) << 32);
            agree += 64 - x.count_ones();
        }
        for (a, b) in pairs_a.remainder().iter().zip(pairs_b.remainder()) {
            agree += 32 - (a ^ b).count_ones();
        }
        let last = (wa[self.end_w - 1] ^ wb[self.end_w - 1]) & self.last_mask;
        agree + self.last_mask.count_ones() - last.count_ones()
    }
}

/// Count agreeing bits in positions `lo..hi` between two bit-packed
/// signatures (32 bits per word, LSB-first). Shared by [`BitSignatures`]
/// and callers comparing out-of-pool signatures (e.g. k-NN queries).
/// Word-parallel: whole words compare with XOR + popcount; only the two
/// edge words are masked.
pub fn count_bit_agreements(wa: &[u32], wb: &[u32], lo: u32, hi: u32) -> u32 {
    match BitSpan::new(lo, hi) {
        Some(span) => span.count(wa, wb),
        None => 0,
    }
}

/// Count agreeing bits in positions `lo..hi` between one probe signature
/// and each candidate signature in `batch`, appending one count per
/// candidate to `out` (cleared first). The word span and edge masks are
/// computed once and the probe words stay hot across the whole sweep, so
/// per candidate the cost is XOR + popcount per word — the batched
/// building block the BayesLSH verify engines run on.
pub fn count_bit_agreements_batched<'a, I>(
    probe: &[u32],
    batch: I,
    lo: u32,
    hi: u32,
    out: &mut Vec<u32>,
) where
    I: IntoIterator<Item = &'a [u32]>,
{
    out.clear();
    match BitSpan::new(lo, hi) {
        Some(span) => out.extend(batch.into_iter().map(|cand| span.count(probe, cand))),
        None => out.extend(batch.into_iter().map(|_| 0)),
    }
}

/// Count agreeing integer hashes in positions `lo..hi` between two minhash
/// signatures. Shared by [`IntSignatures`] and callers comparing
/// out-of-pool signatures (e.g. point queries against a standing corpus).
pub fn count_int_agreements(sa: &[u32], sb: &[u32], lo: u32, hi: u32) -> u32 {
    debug_assert!(lo <= hi);
    debug_assert!(hi as usize <= sa.len() && hi as usize <= sb.len());
    sa[lo as usize..hi as usize]
        .iter()
        .zip(&sb[lo as usize..hi as usize])
        .filter(|(x, y)| x == y)
        .count() as u32
}

/// Count agreeing integer hashes in positions `lo..hi` between one probe
/// signature and each candidate in `batch`, appending one count per
/// candidate to `out` (cleared first). The probe window is sliced once and
/// stays hot across the sweep; see [`count_bit_agreements_batched`] for
/// the batched contract.
pub fn count_int_agreements_batched<'a, I>(
    probe: &[u32],
    batch: I,
    lo: u32,
    hi: u32,
    out: &mut Vec<u32>,
) where
    I: IntoIterator<Item = &'a [u32]>,
{
    debug_assert!(lo <= hi);
    out.clear();
    let window = &probe[lo as usize..hi as usize];
    out.extend(batch.into_iter().map(|cand| {
        window
            .iter()
            .zip(&cand[lo as usize..hi as usize])
            .filter(|(x, y)| x == y)
            .count() as u32
    }));
}

/// Common interface over bit-valued (cosine) and integer-valued (Jaccard)
/// signature storage, as used by the BayesLSH engines.
pub trait SignaturePool {
    /// Extend object `id`'s signature to at least `n` hashes (a pool may
    /// round up to its storage granularity).
    fn ensure(&mut self, id: u32, v: &SparseVector, n: u32);

    /// Number of valid hashes currently stored for `id`.
    fn len(&self, id: u32) -> u32;

    /// Count agreeing hashes in positions `lo..hi` for objects `a` and `b`.
    /// Both signatures must already cover `hi`.
    fn agreements(&self, a: u32, b: u32, lo: u32, hi: u32) -> u32;

    /// Count agreeing hashes in positions `lo..hi` between probe object
    /// `a` and each object in `others`, appending one count per entry to
    /// `out` (cleared first). Semantically exactly
    /// `others.iter().map(|&b| self.agreements(a, b, lo, hi))`, but pools
    /// with packed layouts override it to hoist the probe signature and
    /// the range's edge masks out of the per-candidate loop — the batched
    /// sweep the verify engines run on. All signatures must already cover
    /// `hi`.
    fn agreements_batched(&self, a: u32, others: &[u32], lo: u32, hi: u32, out: &mut Vec<u32>) {
        out.clear();
        out.extend(others.iter().map(|&b| self.agreements(a, b, lo, hi)));
    }

    /// Total hashes computed so far across all objects (cost accounting —
    /// the "hashing overhead" discussed in the paper's observation 3).
    fn total_hashes(&self) -> u64;

    /// Advise the pool of a signature depth that objects are *expected to
    /// reach*, so each object's first extension reserves its whole
    /// signature once instead of growing chunk by chunk. Only hint depths
    /// that are uniformly reached (fixed-`n` MLE verification, banding
    /// candidate generation, eager index builds): hinting a chunked
    /// Bayesian scan's *cap* would reserve many times the memory pruning
    /// actually lets most signatures use. Purely an allocation hint: pool
    /// contents and accounting are unaffected. Default: ignored.
    fn depth_hint(&mut self, n: u32) {
        let _ = n;
    }
}

/// First occurrence of each id in `ids`, in order — parallel extension
/// must process an id exactly once (two workers splicing the same slot
/// would append the range twice). Shared with the crate's other pools
/// (`ProjSignatures`), whose `par_ensure_ids` carries the same contract.
pub(crate) fn dedup_ids(ids: &[u32]) -> impl Iterator<Item = u32> + '_ {
    let mut seen = std::collections::HashSet::with_capacity(ids.len());
    ids.iter().copied().filter(move |&id| seen.insert(id))
}

/// Bit signatures from signed random projections, packed 32 per word.
#[derive(Debug, Clone)]
pub struct BitSignatures {
    hasher: SrpHasher,
    words: Vec<Vec<u32>>,
    bits: Vec<u32>,
    total: u64,
    /// Depth hint (bits) for up-front signature reservation.
    hint: u32,
}

impl BitSignatures {
    /// A pool for `n_objects` objects hashing through `hasher`.
    pub fn new(hasher: SrpHasher, n_objects: usize) -> Self {
        Self {
            hasher,
            words: vec![Vec::new(); n_objects],
            bits: vec![0; n_objects],
            total: 0,
            hint: 0,
        }
    }

    /// The raw packed words of `id`'s signature.
    pub fn raw_words(&self, id: u32) -> &[u32] {
        &self.words[id as usize]
    }

    /// Number of object slots the pool holds (hashed or not).
    pub fn n_objects(&self) -> usize {
        self.words.len()
    }

    /// Bit `i` of object `id`'s signature.
    pub fn bit(&self, id: u32, i: u32) -> bool {
        debug_assert!(i < self.bits[id as usize]);
        (self.words[id as usize][(i / 32) as usize] >> (i % 32)) & 1 == 1
    }

    /// Borrow the underlying hasher (e.g. for plane-memory accounting).
    pub fn hasher(&self) -> &SrpHasher {
        &self.hasher
    }

    /// Hash an out-of-pool vector (e.g. an ad-hoc query) through the same
    /// plane bank, extending `words` with bits `lo..hi` (rounded up to
    /// whole words). The caller owns the returned signature; comparisons
    /// against pool members go through [`count_bit_agreements`]. External
    /// hashes are not counted in [`SignaturePool::total_hashes`], which
    /// tracks corpus signatures only.
    pub fn hash_external(&mut self, v: &SparseVector, lo: u32, hi: u32, words: &mut Vec<u32>) {
        let target = hi.div_ceil(32) * 32;
        self.hasher.hash_bits_into(v, lo, target, words);
    }

    /// Make room for objects `0..n_objects`, keeping existing signatures.
    /// Supports corpora that grow after pool construction (incremental
    /// insertion into a standing index).
    pub fn grow_to(&mut self, n_objects: usize) {
        if self.words.len() < n_objects {
            self.words.resize(n_objects, Vec::new());
            self.bits.resize(n_objects, 0);
        }
    }

    /// Extend the signatures of `ids` to at least `n` bits with up to
    /// `threads` workers: the id list is chunked, each chunk hashed
    /// per-thread through the shared (read-only, pre-materialized) plane
    /// bank, and the buffers spliced back into the pool in index order.
    /// Pool state afterwards is bit-identical to calling
    /// [`SignaturePool::ensure`] for each id serially (duplicate ids in
    /// the list are extended once, like repeated `ensure` calls). A single
    /// id with a deep target (e.g. an insert) is instead split across its
    /// word range, so even one-object extensions fan out.
    pub fn par_ensure_ids(&mut self, data: &Dataset, ids: &[u32], n: u32, threads: usize) {
        let target = n.div_ceil(32) * 32;
        self.grow_to(data.len());
        let work: Vec<(u32, u32)> = dedup_ids(ids)
            .filter(|&id| self.bits[id as usize] < target)
            .map(|id| (id, self.bits[id as usize]))
            .collect();
        if work.is_empty() {
            return;
        }
        self.hasher.ensure_planes_par(target as usize, threads);
        if work.len() == 1 {
            let (id, cur) = work[0];
            let v = data.vector(id);
            let hasher = &self.hasher;
            let chunks = fan_out(((target - cur) / 32) as usize, threads, |_, r| {
                let mut scratch = SrpScratch::new();
                hasher.hash_bits_packed_with(
                    v,
                    cur + 32 * r.start as u32,
                    cur + 32 * r.end as u32,
                    &mut scratch,
                )
            });
            let slot = &mut self.words[id as usize];
            for c in chunks {
                slot.extend(c);
            }
            self.bits[id as usize] = target;
            self.total += (target - cur) as u64;
            return;
        }
        let hasher = &self.hasher;
        let work_ref = &work;
        let chunks = fan_out(work.len(), threads, |_, r| {
            // One projection scratch per worker, reused across its ids.
            let mut scratch = SrpScratch::new();
            work_ref[r]
                .iter()
                .map(|&(id, cur)| {
                    hasher.hash_bits_packed_with(data.vector(id), cur, target, &mut scratch)
                })
                .collect::<Vec<_>>()
        });
        for (&(id, cur), buf) in work.iter().zip(chunks.into_iter().flatten()) {
            self.words[id as usize].extend(buf);
            self.bits[id as usize] = target;
            self.total += (target - cur) as u64;
        }
    }

    /// Serialize the pool (hasher metadata + every signature) for an index
    /// snapshot. Signature words are written verbatim, so the loaded pool's
    /// comparisons are bit-identical; the hasher's plane bank is re-derived
    /// from its seed on load (see [`SrpHasher::write_wire`]).
    pub fn write_wire<W: std::io::Write>(&self, w: &mut WireWriter<W>) -> Result<(), WireError> {
        self.hasher.write_wire(w)?;
        w.put_u64(self.words.len() as u64)?;
        for (words, &bits) in self.words.iter().zip(&self.bits) {
            debug_assert_eq!(words.len(), bits.div_ceil(32) as usize);
            w.put_u32(bits)?;
            for &word in words {
                w.put_u32(word)?;
            }
        }
        w.put_u64(self.total)?;
        Ok(())
    }

    /// Deserialize a pool written by [`BitSignatures::write_wire`],
    /// rematerializing the hasher's planes with up to `threads` workers.
    /// The hashing-cost accounting is validated against the per-object
    /// depths, so an internally inconsistent payload is rejected.
    ///
    /// Plane regeneration is bounded by `max(deepest stored signature,
    /// depth_hint)`, never by the payload's recorded plane count alone: the
    /// stored signatures physically occupy wire bytes, and the hint is
    /// something the caller has validated (the snapshot loader passes the
    /// build-depth it recomputed from the config) — so a crafted count
    /// cannot make loading allocate or compute unboundedly. Any
    /// legitimately deeper planes regenerate lazily, bit-identically.
    pub fn read_wire<R: std::io::Read>(
        r: &mut WireReader<R>,
        threads: usize,
        depth_hint: u32,
    ) -> Result<Self, WireError> {
        let mut hasher = SrpHasher::read_wire(r, threads, depth_hint as usize)?;
        let n = r.get_u64()?;
        let mut words = Vec::with_capacity(n.min(65_536) as usize);
        let mut bits = Vec::with_capacity(n.min(65_536) as usize);
        let mut sum = 0u64;
        let mut deepest = 0u32;
        for slot in 0..n {
            let b = r.get_u32()?;
            if b % 32 != 0 {
                return Err(WireError::corrupt(format!(
                    "signature {slot} has non-word-aligned depth {b}"
                )));
            }
            let mut buf = Vec::with_capacity(((b / 32) as usize).min(65_536));
            for _ in 0..b / 32 {
                buf.push(r.get_u32()?);
            }
            sum += b as u64;
            deepest = deepest.max(b);
            words.push(buf);
            bits.push(b);
        }
        let total = r.get_u64()?;
        if total != sum {
            return Err(WireError::corrupt(format!(
                "hash accounting {total} disagrees with stored depths {sum}"
            )));
        }
        // Lazily-deepened signatures can outrun the build depth; their
        // words are physically present above, so this warm-up is bounded
        // by the payload size.
        hasher.ensure_planes_par(deepest as usize, threads);
        Ok(Self {
            hasher,
            words,
            bits,
            total,
            hint: 0,
        })
    }

    /// Hash an out-of-pool vector to `n` bits (rounded up to whole words)
    /// with up to `threads` workers, splitting the hash range word-aligned.
    /// Bit-identical to [`BitSignatures::hash_external`] over `0..n`.
    pub fn hash_external_par(&mut self, v: &SparseVector, n: u32, threads: usize) -> Vec<u32> {
        let target = n.div_ceil(32) * 32;
        self.hasher.ensure_planes_par(target as usize, threads);
        self.hash_external_ready(v, n, threads)
    }

    /// Whether [`BitSignatures::hash_external_ready`] can serve `n` bits
    /// right now — i.e. the plane bank already covers the word-rounded
    /// target, so hashing needs no `&mut self`.
    pub fn external_ready(&self, n: u32) -> bool {
        let target = n.div_ceil(32) * 32;
        self.hasher.planes_ready() >= target as usize
    }

    /// Materialize the plane bank for `n`-bit external hashing up front, so
    /// subsequent [`BitSignatures::hash_external_ready`] calls work through
    /// `&self` (the shared-reader serving path).
    pub fn prepare_external(&mut self, n: u32, threads: usize) {
        let target = n.div_ceil(32) * 32;
        self.hasher.ensure_planes_par(target as usize, threads);
    }

    /// Read-only external hashing: identical output to
    /// [`BitSignatures::hash_external_par`], but through `&self`. The plane
    /// bank must already cover `n` bits ([`BitSignatures::external_ready`]);
    /// many reader threads may call this concurrently.
    pub fn hash_external_ready(&self, v: &SparseVector, n: u32, threads: usize) -> Vec<u32> {
        let target = n.div_ceil(32) * 32;
        debug_assert!(self.external_ready(n), "plane bank not prepared");
        let hasher = &self.hasher;
        let chunks = fan_out((target / 32) as usize, threads, |_, r| {
            let mut scratch = SrpScratch::new();
            hasher.hash_bits_packed_with(v, 32 * r.start as u32, 32 * r.end as u32, &mut scratch)
        });
        chunks.into_iter().flatten().collect()
    }

    /// Drop object `id`'s signature and release its hashes from the cost
    /// accounting (compaction of removed objects). The slot stays valid and
    /// empty — identical to a never-hashed object — so the wire invariant
    /// `total == Σ stored depths` is preserved.
    pub fn clear(&mut self, id: u32) {
        let slot = &mut self.words[id as usize];
        slot.clear();
        slot.shrink_to_fit();
        self.total -= self.bits[id as usize] as u64;
        self.bits[id as usize] = 0;
    }
}

impl SignaturePool for BitSignatures {
    fn ensure(&mut self, id: u32, v: &SparseVector, n: u32) {
        let cur = self.bits[id as usize];
        let target = n.div_ceil(32) * 32;
        if target <= cur {
            return;
        }
        let slot = &mut self.words[id as usize];
        if cur == 0 && slot.capacity() == 0 && self.hint > target {
            // First extension: allocate the advised full depth once.
            slot.reserve_exact(self.hint.div_ceil(32) as usize);
        }
        self.hasher.hash_bits_into(v, cur, target, slot);
        self.bits[id as usize] = target;
        self.total += (target - cur) as u64;
    }

    fn len(&self, id: u32) -> u32 {
        self.bits[id as usize]
    }

    fn agreements(&self, a: u32, b: u32, lo: u32, hi: u32) -> u32 {
        debug_assert!(hi <= self.bits[a as usize], "a not hashed deep enough");
        debug_assert!(hi <= self.bits[b as usize], "b not hashed deep enough");
        count_bit_agreements(&self.words[a as usize], &self.words[b as usize], lo, hi)
    }

    fn agreements_batched(&self, a: u32, others: &[u32], lo: u32, hi: u32, out: &mut Vec<u32>) {
        debug_assert!(hi <= self.bits[a as usize], "a not hashed deep enough");
        let probe = &self.words[a as usize];
        count_bit_agreements_batched(
            probe,
            others.iter().map(|&b| {
                debug_assert!(hi <= self.bits[b as usize], "b not hashed deep enough");
                self.words[b as usize].as_slice()
            }),
            lo,
            hi,
            out,
        );
    }

    fn total_hashes(&self) -> u64 {
        self.total
    }

    fn depth_hint(&mut self, n: u32) {
        self.hint = self.hint.max(n.div_ceil(32) * 32);
    }
}

/// Integer signatures from minwise hashing.
#[derive(Debug, Clone)]
pub struct IntSignatures {
    hasher: MinHasher,
    sigs: Vec<Vec<u32>>,
    total: u64,
    /// Depth hint (hashes) for up-front signature reservation.
    hint: u32,
}

impl IntSignatures {
    /// A pool for `n_objects` objects hashing through `hasher`.
    pub fn new(hasher: MinHasher, n_objects: usize) -> Self {
        Self {
            hasher,
            sigs: vec![Vec::new(); n_objects],
            total: 0,
            hint: 0,
        }
    }

    /// The raw minhash values of `id`'s signature.
    pub fn raw(&self, id: u32) -> &[u32] {
        &self.sigs[id as usize]
    }

    /// Number of object slots the pool holds (hashed or not).
    pub fn n_objects(&self) -> usize {
        self.sigs.len()
    }

    /// Borrow the underlying hasher.
    pub fn hasher(&self) -> &MinHasher {
        &self.hasher
    }

    /// Hash an out-of-pool vector (e.g. an ad-hoc query) through the same
    /// hash-function bank, extending `sigs` with hashes `lo..hi`.
    /// Comparisons against pool members go through
    /// [`count_int_agreements`]. External hashes are not counted in
    /// [`SignaturePool::total_hashes`], which tracks corpus signatures
    /// only.
    pub fn hash_external(&mut self, v: &SparseVector, lo: u32, hi: u32, sigs: &mut Vec<u32>) {
        self.hasher.hash_range_into(v, lo, hi, sigs);
    }

    /// Make room for objects `0..n_objects`, keeping existing signatures.
    /// Supports corpora that grow after pool construction (incremental
    /// insertion into a standing index).
    pub fn grow_to(&mut self, n_objects: usize) {
        if self.sigs.len() < n_objects {
            self.sigs.resize(n_objects, Vec::new());
        }
    }

    /// Extend the signatures of `ids` to at least `n` hashes with up to
    /// `threads` workers; see [`BitSignatures::par_ensure_ids`] for the
    /// chunk/splice contract (pool state is identical to serial `ensure`
    /// calls, duplicates included).
    pub fn par_ensure_ids(&mut self, data: &Dataset, ids: &[u32], n: u32, threads: usize) {
        self.grow_to(data.len());
        let work: Vec<(u32, u32)> = dedup_ids(ids)
            .filter(|&id| (self.sigs[id as usize].len() as u32) < n)
            .map(|id| (id, self.sigs[id as usize].len() as u32))
            .collect();
        if work.is_empty() {
            return;
        }
        self.hasher.ensure_functions(n as usize);
        if work.len() == 1 {
            let (id, cur) = work[0];
            let v = data.vector(id);
            let hasher = &self.hasher;
            let chunks = fan_out((n - cur) as usize, threads, |_, r| {
                let mut scratch = MinScratch::new();
                hasher.hash_range_packed_with(
                    v,
                    cur + r.start as u32,
                    cur + r.end as u32,
                    &mut scratch,
                )
            });
            let slot = &mut self.sigs[id as usize];
            for c in chunks {
                slot.extend(c);
            }
            self.total += (n - cur) as u64;
            return;
        }
        let hasher = &self.hasher;
        let work_ref = &work;
        let chunks = fan_out(work.len(), threads, |_, r| {
            // One minima scratch per worker, reused across its ids.
            let mut scratch = MinScratch::new();
            work_ref[r]
                .iter()
                .map(|&(id, cur)| {
                    hasher.hash_range_packed_with(data.vector(id), cur, n, &mut scratch)
                })
                .collect::<Vec<_>>()
        });
        for (&(id, cur), buf) in work.iter().zip(chunks.into_iter().flatten()) {
            self.sigs[id as usize].extend(buf);
            self.total += (n - cur) as u64;
        }
    }

    /// Serialize the pool (hasher metadata + every signature) for an index
    /// snapshot; see [`BitSignatures::write_wire`] for the contract.
    pub fn write_wire<W: std::io::Write>(&self, w: &mut WireWriter<W>) -> Result<(), WireError> {
        self.hasher.write_wire(w)?;
        w.put_u64(self.sigs.len() as u64)?;
        for sig in &self.sigs {
            w.put_u32(sig.len() as u32)?;
            for &m in sig {
                w.put_u32(m)?;
            }
        }
        w.put_u64(self.total)?;
        Ok(())
    }

    /// Deserialize a pool written by [`IntSignatures::write_wire`],
    /// validating the hashing-cost accounting against the stored depths.
    /// Hash-function regeneration is bounded by `max(deepest stored
    /// signature, depth_hint)` — see [`BitSignatures::read_wire`] for the
    /// untrusted-input rationale.
    pub fn read_wire<R: std::io::Read>(
        r: &mut WireReader<R>,
        depth_hint: u32,
    ) -> Result<Self, WireError> {
        let mut hasher = MinHasher::read_wire(r, depth_hint as usize)?;
        let n = r.get_u64()?;
        let mut sigs = Vec::with_capacity(n.min(65_536) as usize);
        let mut sum = 0u64;
        let mut deepest = 0u32;
        for _ in 0..n {
            let len = r.get_u32()?;
            let mut sig = Vec::with_capacity(len.min(65_536) as usize);
            for _ in 0..len {
                sig.push(r.get_u32()?);
            }
            sum += len as u64;
            deepest = deepest.max(len);
            sigs.push(sig);
        }
        let total = r.get_u64()?;
        if total != sum {
            return Err(WireError::corrupt(format!(
                "hash accounting {total} disagrees with stored depths {sum}"
            )));
        }
        hasher.ensure_functions(deepest as usize);
        Ok(Self {
            hasher,
            sigs,
            total,
            hint: 0,
        })
    }

    /// Hash an out-of-pool vector to `n` minhashes with up to `threads`
    /// workers, splitting the hash range. Identical to
    /// [`IntSignatures::hash_external`] over `0..n`.
    pub fn hash_external_par(&mut self, v: &SparseVector, n: u32, threads: usize) -> Vec<u32> {
        self.hasher.ensure_functions(n as usize);
        self.hash_external_ready(v, n, threads)
    }

    /// Whether [`IntSignatures::hash_external_ready`] can serve `n` hashes
    /// right now — i.e. the hash-function bank already covers the target,
    /// so hashing needs no `&mut self`.
    pub fn external_ready(&self, n: u32) -> bool {
        self.hasher.functions_ready() >= n as usize
    }

    /// Materialize the hash-function bank for `n`-hash external hashing up
    /// front, so subsequent [`IntSignatures::hash_external_ready`] calls
    /// work through `&self` (the shared-reader serving path).
    pub fn prepare_external(&mut self, n: u32, threads: usize) {
        let _ = threads;
        self.hasher.ensure_functions(n as usize);
    }

    /// Read-only external hashing: identical output to
    /// [`IntSignatures::hash_external_par`], but through `&self`. The
    /// hash-function bank must already cover `n`
    /// ([`IntSignatures::external_ready`]); many reader threads may call
    /// this concurrently.
    pub fn hash_external_ready(&self, v: &SparseVector, n: u32, threads: usize) -> Vec<u32> {
        debug_assert!(self.external_ready(n), "hash-function bank not prepared");
        let hasher = &self.hasher;
        let chunks = fan_out(n as usize, threads, |_, r| {
            let mut scratch = MinScratch::new();
            hasher.hash_range_packed_with(v, r.start as u32, r.end as u32, &mut scratch)
        });
        chunks.into_iter().flatten().collect()
    }

    /// Drop object `id`'s signature and release its hashes from the cost
    /// accounting (compaction of removed objects); see
    /// [`BitSignatures::clear`].
    pub fn clear(&mut self, id: u32) {
        let slot = &mut self.sigs[id as usize];
        self.total -= slot.len() as u64;
        slot.clear();
        slot.shrink_to_fit();
    }
}

impl SignaturePool for IntSignatures {
    fn ensure(&mut self, id: u32, v: &SparseVector, n: u32) {
        let cur = self.sigs[id as usize].len() as u32;
        if n <= cur {
            return;
        }
        if cur == 0 && self.sigs[id as usize].capacity() == 0 && self.hint > n {
            // First extension: allocate the advised full depth once.
            self.sigs[id as usize].reserve_exact(self.hint as usize);
        }
        self.hasher
            .hash_range_into(v, cur, n, &mut self.sigs[id as usize]);
        self.total += (n - cur) as u64;
    }

    fn len(&self, id: u32) -> u32 {
        self.sigs[id as usize].len() as u32
    }

    fn agreements(&self, a: u32, b: u32, lo: u32, hi: u32) -> u32 {
        count_int_agreements(&self.sigs[a as usize], &self.sigs[b as usize], lo, hi)
    }

    fn agreements_batched(&self, a: u32, others: &[u32], lo: u32, hi: u32, out: &mut Vec<u32>) {
        count_int_agreements_batched(
            &self.sigs[a as usize],
            others.iter().map(|&b| self.sigs[b as usize].as_slice()),
            lo,
            hi,
            out,
        );
    }

    fn total_hashes(&self) -> u64 {
        self.total
    }

    fn depth_hint(&mut self, n: u32) {
        self.hint = self.hint.max(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_numeric::Xoshiro256;
    use proptest::prelude::*;

    fn vecs(n: usize, dim: u32, len: usize, seed: u64) -> Vec<SparseVector> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let pairs: Vec<(u32, f32)> = (0..len)
                    .map(|_| {
                        (
                            rng.next_below(dim as u64) as u32,
                            (rng.next_f64() + 0.1) as f32,
                        )
                    })
                    .collect();
                SparseVector::from_pairs(pairs)
            })
            .collect()
    }

    #[test]
    fn bit_pool_rounds_to_words_and_is_lazy() {
        let vs = vecs(3, 100, 10, 1);
        let mut pool = BitSignatures::new(SrpHasher::new(100, 2), 3);
        assert_eq!(pool.len(0), 0);
        pool.ensure(0, &vs[0], 33);
        assert_eq!(pool.len(0), 64);
        assert_eq!(pool.len(1), 0);
        assert_eq!(pool.total_hashes(), 64);
        // Re-ensuring below current depth is a no-op.
        pool.ensure(0, &vs[0], 10);
        assert_eq!(pool.total_hashes(), 64);
    }

    #[test]
    fn bit_agreements_match_naive_count() {
        let vs = vecs(2, 200, 30, 3);
        let mut pool = BitSignatures::new(SrpHasher::new(200, 4), 2);
        pool.ensure(0, &vs[0], 256);
        pool.ensure(1, &vs[1], 256);
        for &(lo, hi) in &[
            (0u32, 256u32),
            (0, 32),
            (32, 64),
            (5, 37),
            (100, 101),
            (17, 255),
            (9, 9),
        ] {
            let naive = (lo..hi)
                .filter(|&i| pool.bit(0, i) == pool.bit(1, i))
                .count() as u32;
            assert_eq!(pool.agreements(0, 1, lo, hi), naive, "range {lo}..{hi}");
        }
    }

    #[test]
    fn bit_agreements_self_is_full_range() {
        let vs = vecs(1, 64, 10, 5);
        let mut pool = BitSignatures::new(SrpHasher::new(64, 5), 1);
        pool.ensure(0, &vs[0], 128);
        assert_eq!(pool.agreements(0, 0, 0, 128), 128);
        assert_eq!(pool.agreements(0, 0, 3, 90), 87);
    }

    #[test]
    fn bit_extension_preserves_prefix() {
        let vs = vecs(1, 128, 12, 6);
        let mut pool = BitSignatures::new(SrpHasher::new(128, 6), 1);
        pool.ensure(0, &vs[0], 64);
        let prefix: Vec<bool> = (0..64).map(|i| pool.bit(0, i)).collect();
        pool.ensure(0, &vs[0], 512);
        let after: Vec<bool> = (0..64).map(|i| pool.bit(0, i)).collect();
        assert_eq!(prefix, after);
        assert_eq!(pool.len(0), 512);
    }

    #[test]
    fn int_pool_basics() {
        let a = SparseVector::from_indices(vec![1, 2, 3]);
        let b = SparseVector::from_indices(vec![2, 3, 4]);
        let mut pool = IntSignatures::new(MinHasher::new(10), 2);
        pool.ensure(0, &a, 100);
        pool.ensure(1, &b, 100);
        assert_eq!(pool.len(0), 100);
        assert_eq!(pool.agreements(0, 0, 0, 100), 100);
        let agree = pool.agreements(0, 1, 0, 100);
        // J(a, b) = 0.5 → expect ~50 agreements.
        assert!((30..=70).contains(&agree), "agreements {agree}");
        assert_eq!(pool.total_hashes(), 200);
    }

    #[test]
    fn int_extension_preserves_prefix() {
        let a = SparseVector::from_indices(vec![7, 8, 9, 10]);
        let mut pool = IntSignatures::new(MinHasher::new(11), 1);
        pool.ensure(0, &a, 16);
        let prefix = pool.raw(0).to_vec();
        pool.ensure(0, &a, 64);
        assert_eq!(&pool.raw(0)[..16], &prefix[..]);
    }

    #[test]
    fn par_ensure_matches_serial_bit_pool() {
        let vs = vecs(9, 120, 12, 21);
        let mut data = Dataset::new(120);
        for v in &vs {
            data.push(v.clone());
        }
        let mut serial = BitSignatures::new(SrpHasher::new(120, 22), data.len());
        for (id, v) in data.iter() {
            serial.ensure(id, v, 96);
        }
        // Deepen a few, as lazy verification would.
        serial.ensure(3, data.vector(3), 256);
        serial.ensure(7, data.vector(7), 256);
        for threads in [1usize, 2, 4, 8] {
            let mut par = BitSignatures::new(SrpHasher::new(120, 22), data.len());
            let ids: Vec<u32> = (0..data.len() as u32).collect();
            par.par_ensure_ids(&data, &ids, 96, threads);
            par.par_ensure_ids(&data, &[3, 7], 256, threads);
            assert_eq!(
                par.total_hashes(),
                serial.total_hashes(),
                "threads {threads}"
            );
            for id in 0..data.len() as u32 {
                assert_eq!(par.len(id), serial.len(id));
                assert_eq!(par.raw_words(id), serial.raw_words(id), "id {id}");
            }
        }
    }

    #[test]
    fn par_ensure_matches_serial_int_pool_and_single_id_split() {
        let mut data = Dataset::new(500);
        for i in 0..6u32 {
            data.push(SparseVector::from_indices((i * 40..i * 40 + 25).collect()));
        }
        let mut serial = IntSignatures::new(MinHasher::new(23), data.len());
        for (id, v) in data.iter() {
            serial.ensure(id, v, 100);
        }
        serial.ensure(2, data.vector(2), 300);
        for threads in [1usize, 3, 8] {
            let mut par = IntSignatures::new(MinHasher::new(23), data.len());
            let ids: Vec<u32> = (0..data.len() as u32).collect();
            par.par_ensure_ids(&data, &ids, 100, threads);
            // Single-id extension exercises the range-split path.
            par.par_ensure_ids(&data, &[2], 300, threads);
            assert_eq!(par.total_hashes(), serial.total_hashes());
            for id in 0..data.len() as u32 {
                assert_eq!(par.raw(id), serial.raw(id), "id {id} threads {threads}");
            }
        }
    }

    #[test]
    fn par_ensure_tolerates_duplicate_ids() {
        let vs = vecs(2, 64, 8, 77);
        let mut data = Dataset::new(64);
        for v in &vs {
            data.push(v.clone());
        }
        let mut expect = BitSignatures::new(SrpHasher::new(64, 78), data.len());
        expect.ensure(0, &vs[0], 64);
        expect.ensure(1, &vs[1], 64);
        for threads in [1usize, 4] {
            // Repeats collapsing to two ids (splice path) and to one id
            // (range-split path) must both behave like serial ensures.
            let mut pool = BitSignatures::new(SrpHasher::new(64, 78), data.len());
            pool.par_ensure_ids(&data, &[0, 1, 0, 0, 1], 64, threads);
            assert_eq!(pool.raw_words(0), expect.raw_words(0));
            assert_eq!(pool.raw_words(1), expect.raw_words(1));
            assert_eq!(pool.total_hashes(), expect.total_hashes());

            let mut pool = BitSignatures::new(SrpHasher::new(64, 78), data.len());
            pool.par_ensure_ids(&data, &[0, 0, 0], 64, threads);
            assert_eq!(pool.raw_words(0), expect.raw_words(0));
            assert_eq!(pool.len(1), 0);
        }
    }

    #[test]
    fn par_external_hash_matches_serial() {
        let vs = vecs(1, 80, 15, 33);
        let mut bits = BitSignatures::new(SrpHasher::new(80, 34), 1);
        let mut expect = Vec::new();
        bits.hash_external(&vs[0], 0, 200, &mut expect);
        for threads in [1usize, 2, 8] {
            assert_eq!(bits.hash_external_par(&vs[0], 200, threads), expect);
        }
        let set = SparseVector::from_indices(vec![4, 9, 44, 70]);
        let mut ints = IntSignatures::new(MinHasher::new(35), 1);
        let mut expect = Vec::new();
        ints.hash_external(&set, 0, 150, &mut expect);
        for threads in [1usize, 2, 8] {
            assert_eq!(ints.hash_external_par(&set, 150, threads), expect);
        }
    }

    #[test]
    fn wire_round_trip_preserves_pools_and_supports_extension() {
        // Non-uniform depths (the lazy-hashing shape) must survive, and a
        // reloaded pool must extend signatures bit-identically to the
        // original — the invariant insert-after-load rests on.
        let vs = vecs(4, 96, 10, 91);
        let mut data = Dataset::new(96);
        for v in &vs {
            data.push(v.clone());
        }
        let mut bits = BitSignatures::new(SrpHasher::new(96, 92), data.len());
        for (id, v) in data.iter() {
            bits.ensure(id, v, 64);
        }
        bits.ensure(2, data.vector(2), 192);
        let mut w = WireWriter::new(Vec::new());
        bits.write_wire(&mut w).unwrap();
        let payload = w.into_inner();
        let mut r = WireReader::new(&payload[..]);
        let mut back = BitSignatures::read_wire(&mut r, 2, 64).unwrap();
        assert_eq!(r.bytes_read(), payload.len() as u64);
        assert_eq!(back.total_hashes(), bits.total_hashes());
        for id in 0..data.len() as u32 {
            assert_eq!(back.len(id), bits.len(id));
            assert_eq!(back.raw_words(id), bits.raw_words(id), "id {id}");
        }
        back.ensure(1, data.vector(1), 256);
        bits.ensure(1, data.vector(1), 256);
        assert_eq!(back.raw_words(1), bits.raw_words(1));

        let mut ints = IntSignatures::new(MinHasher::new(93), 3);
        let sets = [
            SparseVector::from_indices(vec![1, 5, 9]),
            SparseVector::from_indices(vec![2, 5, 40]),
            SparseVector::from_indices(vec![7]),
        ];
        for (id, s) in sets.iter().enumerate() {
            ints.ensure(id as u32, s, 40 + 10 * id as u32);
        }
        let mut w = WireWriter::new(Vec::new());
        ints.write_wire(&mut w).unwrap();
        let payload = w.into_inner();
        let mut back = IntSignatures::read_wire(&mut WireReader::new(&payload[..]), 40).unwrap();
        assert_eq!(back.total_hashes(), ints.total_hashes());
        for id in 0..3u32 {
            assert_eq!(back.raw(id), ints.raw(id), "id {id}");
        }
        back.ensure(0, &sets[0], 100);
        ints.ensure(0, &sets[0], 100);
        assert_eq!(back.raw(0), ints.raw(0));
    }

    #[test]
    fn ready_external_hash_matches_mut_path_and_clear_releases_hashes() {
        let vs = vecs(2, 80, 15, 51);
        let mut bits = BitSignatures::new(SrpHasher::new(80, 52), 2);
        assert!(!bits.external_ready(96));
        bits.prepare_external(96, 2);
        assert!(bits.external_ready(96) && bits.external_ready(33));
        let mut expect = Vec::new();
        bits.hash_external(&vs[0], 0, 96, &mut expect);
        for threads in [1usize, 3] {
            assert_eq!(bits.hash_external_ready(&vs[0], 96, threads), expect);
        }
        bits.ensure(0, &vs[0], 64);
        bits.ensure(1, &vs[1], 96);
        assert_eq!(bits.total_hashes(), 160);
        bits.clear(0);
        assert_eq!(bits.len(0), 0);
        assert_eq!(bits.total_hashes(), 96);
        // A cleared slot is indistinguishable from a never-hashed one.
        bits.ensure(0, &vs[0], 64);
        assert_eq!(bits.total_hashes(), 160);

        let set = SparseVector::from_indices(vec![4, 9, 44, 70]);
        let mut ints = IntSignatures::new(MinHasher::new(53), 2);
        assert!(!ints.external_ready(50));
        ints.prepare_external(50, 1);
        assert!(ints.external_ready(50));
        let mut expect = Vec::new();
        ints.hash_external(&set, 0, 50, &mut expect);
        assert_eq!(ints.hash_external_ready(&set, 50, 2), expect);
        ints.ensure(0, &set, 40);
        ints.clear(0);
        assert_eq!((ints.len(0), ints.total_hashes()), (0, 0));
    }

    #[test]
    fn wire_read_rejects_inconsistent_accounting() {
        let vs = vecs(1, 64, 6, 94);
        let mut pool = BitSignatures::new(SrpHasher::new(64, 95), 1);
        pool.ensure(0, &vs[0], 64);
        let mut w = WireWriter::new(Vec::new());
        pool.write_wire(&mut w).unwrap();
        let mut payload = w.into_inner();
        // The trailing u64 is the total-hashes counter; nudge it.
        let at = payload.len() - 8;
        payload[at] ^= 1;
        assert!(BitSignatures::read_wire(&mut WireReader::new(&payload[..]), 1, 64).is_err());
    }

    proptest! {
        #[test]
        fn bit_agreements_equals_naive_on_random_ranges(
            seed in 0u64..1000,
            lo in 0u32..256,
            span in 0u32..256,
        ) {
            let hi = (lo + span).min(256);
            let vs = vecs(2, 64, 8, seed);
            let mut pool = BitSignatures::new(SrpHasher::new(64, seed ^ 0xABCD), 2);
            pool.ensure(0, &vs[0], 256);
            pool.ensure(1, &vs[1], 256);
            let naive = (lo..hi).filter(|&i| pool.bit(0, i) == pool.bit(1, i)).count() as u32;
            prop_assert_eq!(pool.agreements(0, 1, lo, hi), naive);
        }
    }
}
