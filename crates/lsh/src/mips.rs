//! Maximum-inner-product search via asymmetric augmentation.
//!
//! Inner product is not a proper similarity — it is unbounded and
//! `x` may have a larger inner product with some `y ≠ x` than with itself —
//! so no LSH family exists for it directly. The reduction of Neyshabur &
//! Srebro (ICML'15, building on Shrivastava & Li) lifts the problem to
//! cosine: with `M = max_x ‖x‖` over the corpus,
//!
//! ```text
//! corpus:  x ↦ x̂ = [x/M ; √(1 − ‖x‖²/M²)]
//! query:   q ↦ q̂ = [q/‖q‖ ; 0]
//! ```
//!
//! every augmented corpus vector is unit-norm, and
//! `cos(q̂, x̂) = (q·x) / (M·‖q‖)` — for any fixed query, augmented cosine
//! orders candidates exactly by inner product. The augmented space is then
//! searched with the ordinary SRP/cosine machinery (its own seed stream and
//! snapshot family tag), with thresholds expressed on the augmented-cosine
//! scale.
//!
//! [`MipsTransform`] is the data-preparation step, applied like
//! `bayeslsh_sparse::tfidf` before building a pipeline: fit it on the raw
//! corpus, transform the corpus once, and push each query through
//! [`MipsTransform::augment_query`] before searching.

use bayeslsh_sparse::{Dataset, SparseVector};

/// The asymmetric MIPS-to-cosine augmentation: scales by the corpus'
/// maximum norm and appends one extra coordinate (feature id `dim`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MipsTransform {
    /// Dimensionality of the *raw* space; the extra coordinate lives at
    /// feature id `dim`, so augmented vectors have dimensionality `dim + 1`.
    dim: u32,
    /// The corpus' maximum L2 norm `M` (the scale of the reduction).
    max_norm: f64,
}

impl MipsTransform {
    /// A transform for a `dim`-dimensional raw space with scale `max_norm`.
    ///
    /// # Panics
    ///
    /// Panics unless `max_norm` is finite and positive.
    pub fn new(dim: u32, max_norm: f64) -> Self {
        assert!(
            max_norm.is_finite() && max_norm > 0.0,
            "MIPS scale must be > 0"
        );
        Self { dim, max_norm }
    }

    /// Fit the transform on a corpus: `M` is the maximum vector norm
    /// (1.0 for an empty or all-zero corpus, where the reduction is
    /// trivial).
    pub fn fit(data: &Dataset) -> Self {
        let max_norm = data
            .vectors()
            .iter()
            .map(|v| v.norm())
            .fold(0.0f64, f64::max);
        Self::new(data.dim(), if max_norm > 0.0 { max_norm } else { 1.0 })
    }

    /// Dimensionality of the raw space.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Dimensionality of the augmented space (`dim + 1`).
    pub fn augmented_dim(&self) -> u32 {
        self.dim + 1
    }

    /// The corpus' maximum norm `M`.
    pub fn max_norm(&self) -> f64 {
        self.max_norm
    }

    /// Augment one corpus vector: `x ↦ [x/M ; √(1 − ‖x‖²/M²)]` (unit norm
    /// up to floating error; the extra coordinate sits at feature id
    /// `dim`). A norm epsilon above `M` — a query-side vector, or floating
    /// error — clamps the extra coordinate to 0.
    pub fn augment_corpus(&self, v: &SparseVector) -> SparseVector {
        let inv_m = (1.0 / self.max_norm) as f32;
        let scaled = v.norm() / self.max_norm;
        let extra = (1.0 - scaled * scaled).max(0.0).sqrt() as f32;
        let mut pairs: Vec<(u32, f32)> = v.iter().map(|(i, x)| (i, x * inv_m)).collect();
        if extra > 0.0 {
            pairs.push((self.dim, extra));
        }
        SparseVector::from_pairs(pairs)
    }

    /// Augment one query vector: `q ↦ [q/‖q‖ ; 0]` (the extra coordinate is
    /// zero, so it is simply absent from the sparse support). The zero
    /// vector maps to itself — it has no inner product ordering to
    /// preserve.
    pub fn augment_query(&self, q: &SparseVector) -> SparseVector {
        let n = q.norm();
        if n == 0.0 {
            return q.clone();
        }
        q.scaled((1.0 / n) as f32)
    }

    /// Augment a whole corpus into a fresh `dim + 1`-dimensional dataset,
    /// preserving ids.
    pub fn transform_corpus(&self, data: &Dataset) -> Dataset {
        let mut out = Dataset::new(self.augmented_dim());
        for (_, v) in data.iter() {
            out.push(self.augment_corpus(v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_sparse::{cosine, dot};

    fn corpus() -> Dataset {
        let mut data = Dataset::new(6);
        data.push(SparseVector::from_pairs(vec![(0, 3.0), (2, 4.0)])); // ‖·‖ = 5
        data.push(SparseVector::from_pairs(vec![(1, 1.0), (3, 2.0)]));
        data.push(SparseVector::from_pairs(vec![(0, 0.5), (4, 0.5)]));
        data.push(SparseVector::empty());
        data
    }

    #[test]
    fn fit_finds_max_norm_and_augmented_corpus_is_unit() {
        let data = corpus();
        let t = MipsTransform::fit(&data);
        assert_eq!(t.dim(), 6);
        assert_eq!(t.augmented_dim(), 7);
        assert!((t.max_norm() - 5.0).abs() < 1e-6);
        let aug = t.transform_corpus(&data);
        assert_eq!(aug.len(), data.len());
        assert_eq!(aug.dim(), 7);
        for (id, v) in aug.iter() {
            if data.vector(id).is_empty() {
                // The zero vector augments to the pure extra coordinate.
                assert!((v.norm() - 1.0).abs() < 1e-6);
                assert_eq!(v.indices(), &[6]);
            } else {
                assert!((v.norm() - 1.0).abs() < 1e-4, "id {id}: {}", v.norm());
            }
        }
        // The max-norm vector's extra coordinate vanishes.
        assert_eq!(aug.vector(0).indices(), &[0, 2]);
    }

    #[test]
    fn augmented_cosine_orders_by_inner_product() {
        let data = corpus();
        let t = MipsTransform::fit(&data);
        let aug = t.transform_corpus(&data);
        let q = SparseVector::from_pairs(vec![(0, 2.0), (1, 1.5), (2, 0.5)]);
        let qa = t.augment_query(&q);
        assert!((qa.norm() - 1.0).abs() < 1e-6);
        // cos(q̂, x̂) must equal (q·x)/(M‖q‖) and therefore order by q·x.
        let m = t.max_norm();
        let qn = q.norm();
        let mut by_cos: Vec<(u32, f64)> = aug.iter().map(|(id, v)| (id, cosine(&qa, v))).collect();
        for &(id, c) in &by_cos {
            let expected = dot(&q, data.vector(id)) / (m * qn);
            assert!((c - expected).abs() < 1e-4, "id {id}: {c} vs {expected}");
        }
        by_cos.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let mut by_ip: Vec<(u32, f64)> = data.iter().map(|(id, v)| (id, dot(&q, v))).collect();
        by_ip.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let cos_order: Vec<u32> = by_cos.iter().map(|p| p.0).collect();
        let ip_order: Vec<u32> = by_ip.iter().map(|p| p.0).collect();
        assert_eq!(cos_order, ip_order);
    }

    #[test]
    fn query_augmentation_edge_cases() {
        let t = MipsTransform::new(4, 2.0);
        let zero = SparseVector::empty();
        assert!(t.augment_query(&zero).is_empty());
        // Queries keep their support (no extra coordinate).
        let q = SparseVector::from_pairs(vec![(1, 3.0)]);
        let qa = t.augment_query(&q);
        assert_eq!(qa.indices(), q.indices());
        assert!((qa.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fit_on_empty_corpus_is_identity_scale() {
        let data = Dataset::new(3);
        let t = MipsTransform::fit(&data);
        assert_eq!(t.max_norm(), 1.0);
        assert_eq!(t.transform_corpus(&data).len(), 0);
    }
}
