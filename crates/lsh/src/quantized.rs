//! Two-byte storage of Gaussian plane components (paper §4.3).
//!
//! Samples from N(0, 1) essentially never leave (−8, 8), so a float `x` in
//! that interval is stored as the 2-byte integer `round((x + 8) · 2¹⁶/16)`.
//! The paper quotes a maximum error of 1e-4 using truncation; we round to
//! nearest, giving a bound of `16/2¹⁶/2 ≈ 1.22e-4` *before* clamping (the
//! clamp only triggers for |x| ≥ 8, which has probability < 1e-15 per draw).

/// Quantization scale: 2^16 levels across the interval (−8, 8).
const SCALE: f32 = 65536.0 / 16.0; // 4096 per unit
const OFFSET: f32 = 8.0;

/// Maximum absolute round-trip error for inputs inside (−8, 8): the ideal
/// half-step `0.5/SCALE ≈ 1.22e-4` plus slack for the f32 arithmetic of the
/// encode/decode path itself (the `x + 8` shift can cost ~2⁻²⁰ of absolute
/// precision near the interval ends).
pub const MAX_QUANT_ERROR: f32 = 0.5 / SCALE + 4e-6;

/// Encode a float from (−8, 8) into 2 bytes.
#[inline]
pub fn encode(x: f32) -> u16 {
    let v = (x + OFFSET) * SCALE;
    // Clamp: values outside (−8, 8) are astronomically unlikely for N(0,1)
    // samples but must not wrap.
    v.round().clamp(0.0, 65535.0) as u16
}

/// Decode 2 bytes back to the (approximate) float.
#[inline]
pub fn decode(q: u16) -> f32 {
    q as f32 / SCALE - OFFSET
}

/// Encode a whole slice.
pub fn encode_slice(xs: &[f32]) -> Vec<u16> {
    xs.iter().map(|&x| encode(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_numeric::{Gaussian, Xoshiro256};

    #[test]
    fn round_trip_error_within_bound() {
        let mut rng = Xoshiro256::seed_from_u64(31);
        let mut g = Gaussian::new();
        for _ in 0..100_000 {
            let x = g.sample(&mut rng) as f32;
            let err = (decode(encode(x)) - x).abs();
            assert!(err <= MAX_QUANT_ERROR, "x={x} err={err}");
        }
    }

    #[test]
    fn grid_round_trip() {
        // Every representable quantized value decodes and re-encodes to
        // itself.
        for q in (0u16..=65535).step_by(97) {
            assert_eq!(encode(decode(q)), q);
        }
    }

    #[test]
    fn extremes_clamp() {
        assert_eq!(encode(-100.0), 0);
        assert_eq!(encode(100.0), 65535);
        assert_eq!(encode(-8.0), 0);
    }

    #[test]
    fn sign_preserved_away_from_zero() {
        // SRP only uses the dot-product sign; quantization must not flip
        // component signs outside the tiny dead zone around 0.
        for &x in &[-3.0f32, -0.5, -0.001, 0.001, 0.5, 3.0] {
            assert_eq!(decode(encode(x)).signum(), x.signum(), "x={x}");
        }
    }

    #[test]
    fn encode_slice_matches_pointwise() {
        let xs = vec![-1.5f32, 0.0, 2.25];
        let enc = encode_slice(&xs);
        assert_eq!(enc, vec![encode(-1.5), encode(0.0), encode(2.25)]);
    }
}
