//! First-class hash-family surface: which similarity a pipeline targets and
//! how its LSH family's collision probability relates to that similarity.
//!
//! Charikar's definition (paper Eq. 1) ties an LSH family to a similarity
//! through `Pr[h(x) = h(y)] = p(sim(x, y))` for a monotone `p`. Everything
//! downstream of hashing — banding plans, Bayesian posteriors over hash
//! agreements, SPRT decision boundaries — only needs that monotone map and
//! its inverse, never the hash functions themselves. This module makes that
//! contract explicit:
//!
//! * [`Measure`] — the similarity being searched (cosine, Jaccard, L2,
//!   maximum inner product), with its exact ground-truth evaluation;
//! * [`HashFamily`] — the collision model trait: `collision_probability`
//!   (forward map, raised to a hash depth) and [`HashFamily::similarity_at`]
//!   (inverse map);
//! * [`FamilyConfig`] — the value-level family selector pipelines carry,
//!   including per-family parameters such as the E2LSH bucket width `r`;
//! * the four concrete families: [`SrpFamily`] (signed random projections
//!   for cosine), [`MinHashFamily`] (minwise hashing for Jaccard),
//!   [`E2LshFamily`] (p-stable quantized projections for L2, Datar et al.
//!   SoCG'04), and [`MipsFamily`] (inner product via the asymmetric
//!   augmentation of Shrivastava & Li / Neyshabur & Srebro, reduced to SRP
//!   on augmented vectors).
//!
//! # The E2LSH collision model
//!
//! For `h(x) = ⌊(a·x + b)/r⌋` with `a` standard Gaussian and `b` uniform on
//! `[0, r)`, the collision probability at Euclidean distance `d > 0` is
//!
//! ```text
//! p(d) = 1 − 2Φ(−r/d) − (2d / (√(2π)·r)) · (1 − exp(−r²/2d²))
//! ```
//!
//! (Datar et al., Eq. 2), with `p(0) = 1`. Distances are mapped into the
//! `(0, 1]` similarity scale the verifiers speak via
//! `s = 1 / (1 + d)` (see `bayeslsh_sparse::l2_similarity`), so `p` becomes
//! a monotone *increasing* function of `s` like every other family's.

use bayeslsh_numeric::norm_cdf;
use bayeslsh_sparse::{cosine, jaccard, l2_similarity, SparseVector};

use crate::srp::{cos_to_r, r_to_cos};

/// The similarity measure a pipeline targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Measure {
    /// Cosine similarity (weighted or binary vectors).
    Cosine,
    /// Jaccard set similarity (binary vectors).
    Jaccard,
    /// L2 (Euclidean) proximity, on the `1/(1 + d)` similarity scale.
    L2,
    /// Maximum inner product, searched as cosine over vectors augmented with
    /// the extra `√(M² − ‖x‖²)` coordinate (queries get a 0 there), which
    /// makes augmented cosine order candidates by inner product.
    Mips,
}

impl Measure {
    /// Evaluate the exact similarity under this measure.
    ///
    /// For [`Measure::Mips`] the arguments are expected to already be
    /// augmented (see `MipsTransform`): on augmented vectors the measure
    /// *is* cosine, which is exactly what the SRP signatures estimate.
    pub fn eval(&self, x: &SparseVector, y: &SparseVector) -> f64 {
        match self {
            Measure::Cosine | Measure::Mips => cosine(x, y),
            Measure::Jaccard => jaccard(x, y),
            Measure::L2 => l2_similarity(x, y),
        }
    }
}

impl std::fmt::Display for Measure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Measure::Cosine => write!(f, "cosine"),
            Measure::Jaccard => write!(f, "jaccard"),
            Measure::L2 => write!(f, "l2"),
            Measure::Mips => write!(f, "mips"),
        }
    }
}

/// The collision model of an LSH family: the monotone map between the
/// target similarity and hash-collision probability, and its inverse.
///
/// `collision_probability(sim, depth)` is `Pr[all of `depth` independent
/// hashes agree]` — `p(sim)^depth` — the quantity banding plans and
/// sequential tests are built from. `similarity_at(p)` inverts the
/// single-hash map, recovering the similarity at which one hash collides
/// with probability `p`.
pub trait HashFamily {
    /// The similarity this family is locality-sensitive for.
    fn measure(&self) -> Measure;

    /// `Pr[h₁..h_depth all agree]` at similarity `sim`: `p(sim)^depth`.
    fn collision_probability(&self, sim: f64, depth: u32) -> f64 {
        self.collision_one(sim).powi(depth as i32)
    }

    /// Single-hash collision probability `p(sim)`, clamped to `[0, 1]`.
    fn collision_one(&self, sim: f64) -> f64;

    /// Inverse of [`HashFamily::collision_one`]: the similarity at which a
    /// single hash collides with probability `p`.
    fn similarity_at(&self, p: f64) -> f64;
}

/// Signed random projections (cosine): `p(s) = 1 − θ/π = cos_to_r(s)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SrpFamily;

impl HashFamily for SrpFamily {
    fn measure(&self) -> Measure {
        Measure::Cosine
    }

    fn collision_one(&self, sim: f64) -> f64 {
        cos_to_r(sim).clamp(0.0, 1.0)
    }

    fn similarity_at(&self, p: f64) -> f64 {
        r_to_cos(p.clamp(0.0, 1.0))
    }
}

/// Minwise hashing (Jaccard): the collision probability *is* the
/// similarity, `p(s) = s`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinHashFamily;

impl HashFamily for MinHashFamily {
    fn measure(&self) -> Measure {
        Measure::Jaccard
    }

    fn collision_one(&self, sim: f64) -> f64 {
        sim.clamp(0.0, 1.0)
    }

    fn similarity_at(&self, p: f64) -> f64 {
        p.clamp(0.0, 1.0)
    }
}

/// p-stable projections for L2 (Datar et al.): quantized Gaussian
/// projections with bucket width `r`, on the `s = 1/(1 + d)` scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct E2LshFamily {
    /// Bucket (quantization) width of `h(x) = ⌊(a·x + b)/r⌋`. Larger `r`
    /// raises collision probability at every distance.
    pub r: f64,
}

impl E2LshFamily {
    /// A family with bucket width `r`.
    ///
    /// # Panics
    ///
    /// Panics unless `r` is finite and positive.
    pub fn new(r: f64) -> Self {
        assert!(r.is_finite() && r > 0.0, "E2LSH bucket width must be > 0");
        Self { r }
    }
}

impl HashFamily for E2LshFamily {
    fn measure(&self) -> Measure {
        Measure::L2
    }

    fn collision_one(&self, sim: f64) -> f64 {
        e2lsh_collision(sim, self.r)
    }

    fn similarity_at(&self, p: f64) -> f64 {
        e2lsh_similarity_at(p, self.r)
    }
}

/// Maximum inner product via asymmetric augmentation: after the
/// `√(M² − ‖x‖²)` lift the family is SRP on the augmented space, so the
/// collision model is [`SrpFamily`]'s applied to augmented cosine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MipsFamily;

impl HashFamily for MipsFamily {
    fn measure(&self) -> Measure {
        Measure::Mips
    }

    fn collision_one(&self, sim: f64) -> f64 {
        cos_to_r(sim).clamp(0.0, 1.0)
    }

    fn similarity_at(&self, p: f64) -> f64 {
        r_to_cos(p.clamp(0.0, 1.0))
    }
}

/// E2LSH collision probability at Euclidean distance `d ≥ 0` with bucket
/// width `r > 0` (Datar et al., Eq. 2); `p(0) = 1`.
pub fn e2lsh_collision_at_distance(d: f64, r: f64) -> f64 {
    debug_assert!(r > 0.0, "bucket width must be positive");
    if d <= 0.0 {
        return 1.0;
    }
    let t = r / d;
    let p = 1.0
        - 2.0 * norm_cdf(-t)
        - (2.0 / ((2.0 * std::f64::consts::PI).sqrt() * t)) * (1.0 - (-t * t / 2.0).exp());
    p.clamp(0.0, 1.0)
}

/// E2LSH single-hash collision probability as a function of L2 *similarity*
/// `s = 1/(1 + d)`: monotone increasing in `s`, with `p(1) = 1`.
pub fn e2lsh_collision(sim: f64, r: f64) -> f64 {
    if sim >= 1.0 {
        return 1.0;
    }
    if sim <= 0.0 {
        return 0.0;
    }
    e2lsh_collision_at_distance((1.0 - sim) / sim, r)
}

/// Inverse of [`e2lsh_collision`] in `sim`, by bisection: the L2 similarity
/// at which one hash collides with probability `p`. The map has no closed
/// form, but it is strictly monotone, so 80 halvings pin the root far below
/// every tolerance the estimators carry.
pub fn e2lsh_similarity_at(p: f64, r: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    if p >= 1.0 {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if e2lsh_collision(mid, r) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Value-level hash-family selector a pipeline carries: which family to
/// hash with, including per-family parameters. Marked `#[non_exhaustive]`
/// so further families can be added without a breaking release.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FamilyConfig {
    /// Signed random projections for cosine similarity.
    Cosine,
    /// Minwise hashing for Jaccard similarity (binary vectors).
    Jaccard,
    /// p-stable quantized projections for L2, with bucket width `r`.
    L2 {
        /// Bucket width of the quantized projection (see [`E2LshFamily`]).
        r: f64,
    },
    /// Maximum inner product via asymmetric augmentation + SRP.
    Mips,
}

impl FamilyConfig {
    /// The similarity measure this family searches.
    pub fn measure(&self) -> Measure {
        match self {
            FamilyConfig::Cosine => Measure::Cosine,
            FamilyConfig::Jaccard => Measure::Jaccard,
            FamilyConfig::L2 { .. } => Measure::L2,
            FamilyConfig::Mips => Measure::Mips,
        }
    }

    /// The family selector for a bare measure, with default parameters
    /// (L2 gets bucket width `r = 4`, a common E2LSH default for unit-scale
    /// data).
    pub fn for_measure(measure: Measure) -> Self {
        match measure {
            Measure::Cosine => FamilyConfig::Cosine,
            Measure::Jaccard => FamilyConfig::Jaccard,
            Measure::L2 => FamilyConfig::L2 { r: 4.0 },
            Measure::Mips => FamilyConfig::Mips,
        }
    }

    /// Single-hash collision probability `p(sim)`.
    pub fn collision_one(&self, sim: f64) -> f64 {
        match self {
            FamilyConfig::Cosine => SrpFamily.collision_one(sim),
            FamilyConfig::Jaccard => MinHashFamily.collision_one(sim),
            FamilyConfig::L2 { r } => e2lsh_collision(sim, *r),
            FamilyConfig::Mips => MipsFamily.collision_one(sim),
        }
    }

    /// `Pr[all of `depth` independent hashes agree]` at similarity `sim`.
    pub fn collision_probability(&self, sim: f64, depth: u32) -> f64 {
        self.collision_one(sim).powi(depth as i32)
    }

    /// The similarity at which one hash collides with probability `p`
    /// (inverse of [`FamilyConfig::collision_one`]).
    pub fn similarity_at(&self, p: f64) -> f64 {
        match self {
            FamilyConfig::Cosine => SrpFamily.similarity_at(p),
            FamilyConfig::Jaccard => MinHashFamily.similarity_at(p),
            FamilyConfig::L2 { r } => e2lsh_similarity_at(p, *r),
            FamilyConfig::Mips => MipsFamily.similarity_at(p),
        }
    }

    /// The E2LSH bucket width, for the L2 family only. Exists because the
    /// enum is `#[non_exhaustive]`: downstream crates dispatch on
    /// [`FamilyConfig::measure`] (which is exhaustive) and fetch per-family
    /// parameters through accessors like this one.
    pub fn l2_width(&self) -> Option<f64> {
        match self {
            FamilyConfig::L2 { r } => Some(*r),
            _ => None,
        }
    }

    /// Validate family parameters, returning the offending field on error.
    pub fn validate(&self) -> Result<(), (&'static str, String)> {
        match self {
            FamilyConfig::L2 { r } if !(r.is_finite() && *r > 0.0) => {
                Err(("family.r", format!("bucket width must be > 0, got {r}")))
            }
            _ => Ok(()),
        }
    }
}

impl std::fmt::Display for FamilyConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FamilyConfig::L2 { r } => write!(f, "l2(r={r})"),
            other => write!(f, "{}", other.measure()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_display_and_eval_dispatch() {
        assert_eq!(Measure::Cosine.to_string(), "cosine");
        assert_eq!(Measure::Jaccard.to_string(), "jaccard");
        assert_eq!(Measure::L2.to_string(), "l2");
        assert_eq!(Measure::Mips.to_string(), "mips");

        let x = SparseVector::from_pairs([(0u32, 1.0f32), (2, 2.0)]);
        let y = SparseVector::from_pairs([(2u32, 4.0f32), (5, 2.0)]);
        assert!((Measure::Cosine.eval(&x, &y) - cosine(&x, &y)).abs() < 1e-12);
        assert!((Measure::Jaccard.eval(&x, &y) - jaccard(&x, &y)).abs() < 1e-12);
        assert!((Measure::L2.eval(&x, &y) - l2_similarity(&x, &y)).abs() < 1e-12);
        assert!((Measure::Mips.eval(&x, &y) - cosine(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn e2lsh_collision_reference_value() {
        // At d = r the closed form gives
        // 1 − 2Φ(−1) − (2/√(2π))(1 − e^{−1/2}) ≈ 0.368742.
        let p = e2lsh_collision_at_distance(2.5, 2.5);
        assert!((p - 0.368742).abs() < 1e-4, "p(d=r) = {p}");
    }

    #[test]
    fn e2lsh_collision_limits_and_monotonicity() {
        for &r in &[0.5, 1.0, 4.0] {
            assert_eq!(e2lsh_collision_at_distance(0.0, r), 1.0);
            assert_eq!(e2lsh_collision(1.0, r), 1.0);
            assert_eq!(e2lsh_collision(0.0, r), 0.0);
            // Far points essentially never collide.
            assert!(e2lsh_collision_at_distance(1e6 * r, r) < 1e-3);
            // Monotone decreasing in d (increasing in s).
            let mut prev = 1.0;
            let mut d = 0.0;
            while d <= 20.0 {
                let p = e2lsh_collision_at_distance(d, r);
                assert!((0.0..=1.0).contains(&p));
                assert!(p <= prev + 1e-12, "not monotone at d={d}, r={r}");
                prev = p;
                d += 0.05;
            }
        }
    }

    #[test]
    fn e2lsh_similarity_at_inverts_collision() {
        for &r in &[0.5, 2.0, 8.0] {
            let fam = E2LshFamily::new(r);
            let mut s = 0.05;
            while s < 1.0 {
                let p = fam.collision_one(s);
                let back = fam.similarity_at(p);
                assert!((back - s).abs() < 1e-9, "r={r} s={s} back={back}");
                s += 0.05;
            }
            assert_eq!(fam.similarity_at(1.0), 1.0);
        }
    }

    #[test]
    fn wider_buckets_collide_more() {
        let s = 0.5;
        assert!(e2lsh_collision(s, 4.0) > e2lsh_collision(s, 1.0));
        assert!(e2lsh_collision(s, 1.0) > e2lsh_collision(s, 0.25));
    }

    #[test]
    fn family_config_delegates_per_family() {
        let t = 0.7;
        assert_eq!(
            FamilyConfig::Cosine.collision_one(t),
            SrpFamily.collision_one(t)
        );
        assert_eq!(FamilyConfig::Cosine.collision_one(t), cos_to_r(t));
        assert_eq!(FamilyConfig::Jaccard.collision_one(t), t);
        assert_eq!(
            FamilyConfig::Mips.collision_one(t),
            MipsFamily.collision_one(t)
        );
        let l2 = FamilyConfig::L2 { r: 2.0 };
        assert_eq!(l2.collision_one(t), e2lsh_collision(t, 2.0));
        // depth composes multiplicatively.
        let p = l2.collision_one(t);
        assert!((l2.collision_probability(t, 3) - p * p * p).abs() < 1e-12);
        // Inverses round-trip.
        for fam in [
            FamilyConfig::Cosine,
            FamilyConfig::Jaccard,
            l2,
            FamilyConfig::Mips,
        ] {
            let back = fam.similarity_at(fam.collision_one(0.6));
            assert!((back - 0.6).abs() < 1e-9, "{fam}: {back}");
        }
    }

    #[test]
    fn family_config_measure_and_display() {
        assert_eq!(FamilyConfig::Cosine.measure(), Measure::Cosine);
        assert_eq!(FamilyConfig::Jaccard.measure(), Measure::Jaccard);
        assert_eq!(FamilyConfig::L2 { r: 1.0 }.measure(), Measure::L2);
        assert_eq!(FamilyConfig::Mips.measure(), Measure::Mips);
        assert_eq!(
            FamilyConfig::for_measure(Measure::L2).measure(),
            Measure::L2
        );
        assert_eq!(FamilyConfig::L2 { r: 2.0 }.to_string(), "l2(r=2)");
        assert_eq!(FamilyConfig::Mips.to_string(), "mips");
    }

    #[test]
    fn family_config_validation() {
        assert!(FamilyConfig::Cosine.validate().is_ok());
        assert!(FamilyConfig::L2 { r: 0.5 }.validate().is_ok());
        let err = FamilyConfig::L2 { r: 0.0 }.validate().unwrap_err();
        assert_eq!(err.0, "family.r");
        assert!(FamilyConfig::L2 { r: f64::NAN }.validate().is_err());
    }
}
