//! Signed random projections: the LSH family for angular/cosine similarity
//! (Charikar, STOC'02; paper Section 4.2).
//!
//! Hash `i` is a random hyperplane `r_i` with i.i.d. N(0,1) components;
//! `h_i(x) = [dot(r_i, x) ≥ 0]`. For any pair,
//! `Pr[h_i(x) = h_i(y)] = 1 − θ(x, y)/π`, which we call `r(x, y)`.
//! BayesLSH does its inference on `r` and converts back to cosine with
//! [`r_to_cos`]/[`cos_to_r`].
//!
//! # Kernel layout
//!
//! Components are stored **feature-major**: the bank keeps, per feature
//! `f`, a contiguous row of that feature's component across every plane
//! (`bank[f · stride + i]` = component `f` of plane `i`). Hashing a sparse
//! vector to bits `lo..hi` is then a *single* pass over its nonzeros — for
//! each `(f, val)` the kernel streams the contiguous row slice
//! `bank[f·stride + lo .. f·stride + hi]` into a dense accumulator
//! (`acc[j] += row[j] · val`), which the compiler autovectorizes — instead
//! of the transposed plane-major layout's `h × nnz` random gathers (one
//! cache line touched per 2–4 bytes used). Sign bits are packed in one
//! final sweep. The bank is filled by scattering the pure
//! [`generate_plane`] streams, so every bit is **bit-identical** to the
//! historical plane-major layout: per bit, the same `f64` terms are added
//! in the same (index) order.

use bayeslsh_numeric::wire::{WireError, WireReader, WireWriter};
use bayeslsh_numeric::{derive_seed, fan_out, Gaussian, Xoshiro256};
use bayeslsh_sparse::SparseVector;

use crate::quantized;

/// Map the collision similarity `r ∈ [0.5, 1]` (for non-negative-cosine
/// pairs) to cosine: `r2c(r) = cos(π(1 − r))`.
#[inline]
pub fn r_to_cos(r: f64) -> f64 {
    (std::f64::consts::PI * (1.0 - r)).cos()
}

/// Map cosine similarity to the hash-collision similarity:
/// `c2r(c) = 1 − arccos(c)/π`.
#[inline]
pub fn cos_to_r(c: f64) -> f64 {
    1.0 - c.clamp(-1.0, 1.0).acos() / std::f64::consts::PI
}

/// How hyperplane components are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneStorage {
    /// 2 bytes per component (paper §4.3) — the default.
    Quantized,
    /// 4-byte floats; used by the ablation bench to measure what the
    /// quantization trades away.
    Float,
}

/// The transposed component bank: `data[f * stride + i]` holds component
/// `f` of plane `i`, in the storage encoding. Rows are contiguous per
/// feature so projections stream rather than gather.
#[derive(Debug, Clone)]
enum Bank {
    /// 2-byte quantized components, decoded row-wise during accumulation.
    Quantized(Vec<u16>),
    /// Raw `f32` components.
    Float(Vec<f32>),
}

/// Reusable projection scratch for the signed-random-projection kernels.
///
/// Holds the dense `f64` accumulator one projection pass writes
/// (`acc[j] = dot(plane_{lo+j}, v)` for `j < hi − lo`). Hashers own one for
/// their `&mut self` paths; read-only parallel workers create one per
/// worker and pass it to [`SrpHasher::hash_bits_packed_with`] so
/// steady-state hashing performs no heap allocation per call.
#[derive(Debug, Clone, Default)]
pub struct SrpScratch {
    acc: Vec<f64>,
}

impl SrpScratch {
    /// A fresh scratch; buffers are grown on first use and reused after.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A lazily-grown bank of random hyperplanes producing sign bits.
///
/// Plane `i` is generated deterministically from `(seed, i)`, so two
/// `SrpHasher`s with the same seed produce identical hash streams regardless
/// of the order in which planes were first demanded. Components live in a
/// feature-major transposed bank (see the module docs); the per-bit output
/// is bit-identical to a plane-major scalar evaluation of the same
/// [`generate_plane`] streams.
#[derive(Debug, Clone)]
pub struct SrpHasher {
    dim: u32,
    seed: u64,
    storage: PlaneStorage,
    bank: Bank,
    /// Planes filled so far (`0..planes` are valid in every row).
    planes: usize,
    /// Row width of the bank (plane capacity); grows geometrically.
    stride: usize,
    /// Total component draws, for memory/throughput accounting.
    components_generated: u64,
    /// Reusable accumulator for the `&mut self` hashing paths.
    scratch: SrpScratch,
}

impl SrpHasher {
    /// A hasher over a `dim`-dimensional space with quantized plane storage.
    pub fn new(dim: u32, seed: u64) -> Self {
        Self::with_storage(dim, seed, PlaneStorage::Quantized)
    }

    /// A hasher with explicit storage choice.
    pub fn with_storage(dim: u32, seed: u64, storage: PlaneStorage) -> Self {
        let bank = match storage {
            PlaneStorage::Quantized => Bank::Quantized(Vec::new()),
            PlaneStorage::Float => Bank::Float(Vec::new()),
        };
        Self {
            dim,
            seed,
            storage,
            bank,
            planes: 0,
            stride: 0,
            components_generated: 0,
            scratch: SrpScratch::new(),
        }
    }

    /// Dimensionality of the input space.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of planes materialized so far.
    pub fn planes_ready(&self) -> usize {
        self.planes
    }

    /// Bytes of plane storage logically held (materialized components; the
    /// bank may hold additional reserved capacity from geometric growth).
    pub fn plane_bytes(&self) -> usize {
        match self.storage {
            PlaneStorage::Quantized => self.planes * self.dim as usize * 2,
            PlaneStorage::Float => self.planes * self.dim as usize * 4,
        }
    }

    /// Grow every feature row to at least `need` plane slots, relocating
    /// the filled prefixes. Geometric growth keeps total relayout work
    /// linear in the final bank size.
    fn grow_stride(&mut self, need: usize) {
        if need <= self.stride {
            return;
        }
        let mut stride = self.stride.max(64);
        while stride < need {
            stride *= 2;
        }
        let dim = self.dim as usize;
        let (old_stride, planes) = (self.stride, self.planes);
        match &mut self.bank {
            Bank::Quantized(data) => relayout(data, dim, old_stride, stride, planes),
            Bank::Float(data) => relayout(data, dim, old_stride, stride, planes),
        }
        self.stride = stride;
    }

    /// Scatter one generated plane (a `dim`-length column) into slot
    /// `index` of every feature row.
    fn scatter_plane(&mut self, index: usize, plane: &[f32]) {
        let stride = self.stride;
        match &mut self.bank {
            Bank::Quantized(data) => {
                for (f, &c) in plane.iter().enumerate() {
                    data[f * stride + index] = quantized::encode(c);
                }
            }
            Bank::Float(data) => {
                for (f, &c) in plane.iter().enumerate() {
                    data[f * stride + index] = c;
                }
            }
        }
    }

    /// Materialize planes `0..n`.
    pub fn ensure_planes(&mut self, n: usize) {
        if n <= self.planes {
            return;
        }
        self.grow_stride(n);
        for index in self.planes..n {
            let plane = generate_plane(self.dim, self.seed, index);
            self.scatter_plane(index, &plane);
            self.components_generated += self.dim as u64;
        }
        self.planes = n;
    }

    /// Materialize planes `0..n` with up to `threads` workers. Plane `i` is
    /// a pure function of `(seed, i)`, so the result is identical to
    /// [`SrpHasher::ensure_planes`] whatever the thread count (the Gaussian
    /// streams are generated in parallel; the scatter into the bank is a
    /// cheap serial pass).
    pub fn ensure_planes_par(&mut self, n: usize, threads: usize) {
        let ready = self.planes;
        if ready >= n {
            return;
        }
        self.grow_stride(n);
        let missing = n - ready;
        let (dim, seed) = (self.dim, self.seed);
        let columns = fan_out(missing, threads, |_, range| {
            range
                .map(|off| generate_plane(dim, seed, ready + off))
                .collect::<Vec<_>>()
        });
        for (off, plane) in columns.into_iter().flatten().enumerate() {
            self.scatter_plane(ready + off, &plane);
        }
        self.planes = n;
        self.components_generated += missing as u64 * dim as u64;
        debug_assert_eq!(self.planes_ready(), n);
    }

    /// Sign bit of plane `i` against `v` (materializing the plane if
    /// needed).
    pub fn hash_bit(&mut self, i: usize, v: &SparseVector) -> bool {
        self.ensure_planes(i + 1);
        self.hash_bit_ready(i, v)
    }

    /// Sign bit of plane `i` against `v` without materialization — a
    /// per-bit read of the bank. Prefer the range kernels
    /// ([`SrpHasher::hash_bits_into`] / [`SrpHasher::hash_bits_packed`])
    /// anywhere more than one bit is needed; this path gathers one
    /// component per nonzero.
    ///
    /// # Panics
    ///
    /// Panics if plane `i` has not been materialized (call
    /// [`SrpHasher::ensure_planes`] / [`SrpHasher::ensure_planes_par`]
    /// first).
    pub fn hash_bit_ready(&self, i: usize, v: &SparseVector) -> bool {
        assert!(i < self.planes, "plane {i} not materialized");
        let stride = self.stride;
        let acc = match &self.bank {
            Bank::Quantized(data) => {
                let mut acc = 0.0f64;
                for (idx, val) in v.iter() {
                    acc += quantized::decode(data[idx as usize * stride + i]) as f64 * val as f64;
                }
                acc
            }
            Bank::Float(data) => {
                let mut acc = 0.0f64;
                for (idx, val) in v.iter() {
                    acc += data[idx as usize * stride + i] as f64 * val as f64;
                }
                acc
            }
        };
        acc >= 0.0
    }

    /// The feature-major projection kernel: one pass over `v`'s nonzeros
    /// accumulating `acc[j] = dot(plane_{lo+j}, v)` for every `j < hi − lo`
    /// at once. Per nonzero the inner loop streams a contiguous row slice,
    /// so it unrolls and autovectorizes; per bit, the `f64` terms are added
    /// in exactly the per-bit scalar path's (index) order, making every
    /// sign bit-identical to that path.
    fn project_ready(&self, v: &SparseVector, lo: u32, hi: u32, acc: &mut [f64]) {
        let (lo, hi) = (lo as usize, hi as usize);
        // A real assert, not a debug one: the geometrically-grown bank has
        // zero-filled slots past `planes`, so an unmaterialized range would
        // otherwise read garbage silently instead of failing loudly the way
        // the plane-major layout's out-of-bounds index did.
        assert!(hi <= self.planes, "planes not materialized to {hi}");
        debug_assert_eq!(acc.len(), hi - lo);
        acc.fill(0.0);
        let stride = self.stride;
        match &self.bank {
            Bank::Quantized(data) => {
                for (idx, val) in v.iter() {
                    let base = idx as usize * stride;
                    let row = &data[base + lo..base + hi];
                    let val = val as f64;
                    for (a, &q) in acc.iter_mut().zip(row) {
                        *a += quantized::decode(q) as f64 * val;
                    }
                }
            }
            Bank::Float(data) => {
                for (idx, val) in v.iter() {
                    let base = idx as usize * stride;
                    let row = &data[base + lo..base + hi];
                    let val = val as f64;
                    for (a, &c) in acc.iter_mut().zip(row) {
                        *a += c as f64 * val;
                    }
                }
            }
        }
    }

    /// Compute bits `lo..hi` for `v`, packed LSB-first into `u32` words that
    /// the caller appends to an existing signature (whose valid length must
    /// be exactly `lo` bits, with `lo` a multiple of 32 or the bits already
    /// partially filling the last word). The word buffer is sized once up
    /// front from `hi`; the projection reuses the hasher's internal
    /// scratch, so steady-state calls perform no heap allocation beyond the
    /// signature's own growth.
    pub fn hash_bits_into(&mut self, v: &SparseVector, lo: u32, hi: u32, words: &mut Vec<u32>) {
        if lo >= hi {
            return;
        }
        self.ensure_planes(hi as usize);
        let needed = hi.div_ceil(32) as usize;
        if words.len() < needed {
            words.resize(needed, 0);
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.acc.resize((hi - lo) as usize, 0.0);
        self.project_ready(v, lo, hi, &mut scratch.acc);
        pack_signs(&scratch.acc, lo, words);
        self.scratch = scratch;
    }

    /// Compute bits `lo..hi` for `v` into a fresh packed buffer whose bit 0
    /// is hash `lo` — the read-only building block parallel hashing splices
    /// from. `lo` and `hi` must be multiples of 32 and the planes already
    /// materialized to `hi`; the returned words are bit-identical to what
    /// [`SrpHasher::hash_bits_into`] appends for the same range.
    pub fn hash_bits_packed(&self, v: &SparseVector, lo: u32, hi: u32) -> Vec<u32> {
        let mut scratch = SrpScratch::new();
        self.hash_bits_packed_with(v, lo, hi, &mut scratch)
    }

    /// [`SrpHasher::hash_bits_packed`] with a caller-owned scratch, so
    /// parallel workers hashing many signatures reuse one accumulator
    /// instead of allocating per call.
    pub fn hash_bits_packed_with(
        &self,
        v: &SparseVector,
        lo: u32,
        hi: u32,
        scratch: &mut SrpScratch,
    ) -> Vec<u32> {
        debug_assert!(
            lo % 32 == 0 && hi % 32 == 0,
            "packed ranges are word-aligned"
        );
        let mut words = vec![0u32; ((hi - lo) / 32) as usize];
        if lo >= hi {
            return words;
        }
        scratch.acc.resize((hi - lo) as usize, 0.0);
        self.project_ready(v, lo, hi, &mut scratch.acc);
        pack_signs(&scratch.acc, 0, &mut words);
        words
    }

    /// The raw projection values `dot(plane_{lo+j}, v)` for `j < hi − lo`,
    /// written into `acc` (resized to the range length). Planes must
    /// already be materialized to `hi` ([`SrpHasher::ensure_planes`] /
    /// [`SrpHasher::ensure_planes_par`]). Exposes the accumulators the
    /// sign bits are cut from, so multi-probe querying can order per-band
    /// bit flips by ascending margin `|dot|` — the least-confident bits
    /// are the likeliest to differ for a near neighbour.
    pub fn project_into(&self, v: &SparseVector, lo: u32, hi: u32, acc: &mut Vec<f64>) {
        acc.resize((hi - lo) as usize, 0.0);
        if lo < hi {
            self.project_ready(v, lo, hi, acc);
        }
    }

    /// Total Gaussian components generated (throughput accounting).
    pub fn components_generated(&self) -> u64 {
        self.components_generated
    }

    /// Serialize the hasher for an index snapshot. The plane bank itself is
    /// **not** written: every plane is a pure function of `(seed, index)`
    /// (see [`generate_plane`]), so the snapshot stores only `(dim, seed,
    /// storage, planes)` and [`SrpHasher::read_wire`] rematerializes a
    /// bit-identical bank — keeping snapshots corpus-sized instead of
    /// bank-sized.
    pub fn write_wire<W: std::io::Write>(&self, w: &mut WireWriter<W>) -> Result<(), WireError> {
        w.put_u32(self.dim)?;
        w.put_u64(self.seed)?;
        w.put_u8(match self.storage {
            PlaneStorage::Quantized => 0,
            PlaneStorage::Float => 1,
        })?;
        w.put_u64(self.planes as u64)?;
        Ok(())
    }

    /// Deserialize a hasher written by [`SrpHasher::write_wire`],
    /// regenerating at most `min(recorded, max_planes)` planes
    /// (deterministically, with up to `threads` workers).
    ///
    /// The clamp is the untrusted-input guard: the recorded count is a bare
    /// integer a crafted snapshot could set arbitrarily high, so callers
    /// pass the depth they can actually justify (e.g. the deepest signature
    /// they carry) and regeneration — hence memory and CPU — is bounded by
    /// that, never by the payload's claim. Planes beyond the warm-up
    /// rematerialize lazily on first demand, bit-identically, through the
    /// ordinary `ensure_planes*` paths.
    pub fn read_wire<R: std::io::Read>(
        r: &mut WireReader<R>,
        threads: usize,
        max_planes: usize,
    ) -> Result<Self, WireError> {
        let dim = r.get_u32()?;
        let seed = r.get_u64()?;
        let storage = match r.get_u8()? {
            0 => PlaneStorage::Quantized,
            1 => PlaneStorage::Float,
            other => {
                return Err(WireError::corrupt(format!(
                    "unknown plane storage tag {other}"
                )))
            }
        };
        let planes = r.get_u64()?;
        let mut h = Self::with_storage(dim, seed, storage);
        h.ensure_planes_par(planes.min(max_planes as u64) as usize, threads);
        Ok(h)
    }
}

/// Pack the sign bits of `acc` into `words`, ORing bit `base + j` for every
/// non-negative `acc[j]`. `words` must already cover the target bit range.
#[inline]
fn pack_signs(acc: &[f64], base: u32, words: &mut [u32]) {
    for (j, &a) in acc.iter().enumerate() {
        if a >= 0.0 {
            let bit = base + j as u32;
            words[(bit / 32) as usize] |= 1u32 << (bit % 32);
        }
    }
}

/// Move feature rows from `old_stride` to `stride` slots each, preserving
/// the filled `planes`-long prefixes.
fn relayout<T: Copy + Default>(
    data: &mut Vec<T>,
    dim: usize,
    old_stride: usize,
    stride: usize,
    planes: usize,
) {
    let mut grown = vec![T::default(); dim * stride];
    if planes > 0 {
        for f in 0..dim {
            grown[f * stride..f * stride + planes]
                .copy_from_slice(&data[f * old_stride..f * old_stride + planes]);
        }
    }
    *data = grown;
}

/// Plane `index` of the `(dim, seed)` bank — a pure function, so planes can
/// be generated in any order and on any thread. Public so out-of-crate
/// reference oracles (property tests, benchmark baselines) can rebuild the
/// exact component streams the bank scatters.
pub fn generate_plane(dim: u32, seed: u64, index: usize) -> Vec<f32> {
    let mut rng = Xoshiro256::seed_from_u64(derive_seed(seed, index as u64));
    let mut gauss = Gaussian::new();
    (0..dim).map(|_| gauss.sample(&mut rng) as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_sparse::cosine;

    /// The historical plane-major scalar path, kept as the reference
    /// oracle: regenerate plane `i` as a column, apply the storage
    /// encoding, and accumulate one `f64` dot product over the nonzeros.
    fn oracle_bit(dim: u32, seed: u64, storage: PlaneStorage, i: usize, v: &SparseVector) -> bool {
        let plane = generate_plane(dim, seed, i);
        let acc = match storage {
            PlaneStorage::Quantized => {
                let enc = quantized::encode_slice(&plane);
                let mut acc = 0.0f64;
                for (idx, val) in v.iter() {
                    acc += quantized::decode(enc[idx as usize]) as f64 * val as f64;
                }
                acc
            }
            PlaneStorage::Float => {
                let mut acc = 0.0f64;
                for (idx, val) in v.iter() {
                    acc += plane[idx as usize] as f64 * val as f64;
                }
                acc
            }
        };
        acc >= 0.0
    }

    fn random_dense_vector(dim: u32, rng: &mut Xoshiro256) -> SparseVector {
        let pairs: Vec<(u32, f32)> = (0..dim)
            .map(|i| (i, (rng.next_f64() * 2.0 - 1.0) as f32))
            .collect();
        SparseVector::from_pairs(pairs)
    }

    #[test]
    fn r_cos_round_trip() {
        for c in [0.0, 0.1, 0.5, 0.7, 0.9, 0.99, 1.0] {
            assert!((r_to_cos(cos_to_r(c)) - c).abs() < 1e-12, "c={c}");
        }
        for r in [0.5, 0.6, 0.75, 0.9, 1.0] {
            assert!((cos_to_r(r_to_cos(r)) - r).abs() < 1e-12, "r={r}");
        }
    }

    #[test]
    fn r_of_known_angles() {
        // cos 0 → r = 0.5; cos 1 → r = 1; cos(60°) = 0.5 → r = 1 − 1/3.
        assert!((cos_to_r(0.0) - 0.5).abs() < 1e-12);
        assert!((cos_to_r(1.0) - 1.0).abs() < 1e-12);
        assert!((cos_to_r(0.5) - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn collision_rate_matches_angular_similarity() {
        // Empirical check of Pr[h(x) = h(y)] = 1 − θ/π with 4000 planes.
        let mut rng = Xoshiro256::seed_from_u64(41);
        let mut hasher = SrpHasher::new(64, 7);
        for trial in 0..4 {
            let x = random_dense_vector(64, &mut rng);
            let y = random_dense_vector(64, &mut rng);
            let expected = cos_to_r(cosine(&x, &y));
            let n = 4000usize;
            let agree = (0..n)
                .filter(|&i| hasher.hash_bit(i, &x) == hasher.hash_bit(i, &y))
                .count();
            let observed = agree as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.03,
                "trial {trial}: observed {observed} expected {expected}"
            );
        }
    }

    #[test]
    fn identical_vectors_always_collide() {
        let mut rng = Xoshiro256::seed_from_u64(42);
        let mut hasher = SrpHasher::new(32, 9);
        let x = random_dense_vector(32, &mut rng);
        for i in 0..512 {
            assert_eq!(hasher.hash_bit(i, &x), hasher.hash_bit(i, &x));
        }
    }

    #[test]
    fn opposite_vectors_never_collide() {
        let mut rng = Xoshiro256::seed_from_u64(43);
        let mut hasher = SrpHasher::new(32, 9);
        let x = random_dense_vector(32, &mut rng);
        let neg = x.scaled(-1.0);
        let agree = (0..512)
            .filter(|&i| hasher.hash_bit(i, &x) == hasher.hash_bit(i, &neg))
            .count();
        // dot = 0 exactly on a measure-zero set; sign flip everywhere else.
        assert_eq!(agree, 0);
    }

    #[test]
    fn deterministic_across_instances_and_demand_order() {
        let x = SparseVector::from_pairs(vec![(3, 1.0), (17, -0.5), (29, 2.0)]);
        let mut h1 = SrpHasher::new(32, 1234);
        let mut h2 = SrpHasher::new(32, 1234);
        // h1 materializes planes front-to-back, h2 back-to-front.
        let bits1: Vec<bool> = (0..128).map(|i| h1.hash_bit(i, &x)).collect();
        h2.ensure_planes(128);
        let bits2: Vec<bool> = (0..128).map(|i| h2.hash_bit(i, &x)).collect();
        assert_eq!(bits1, bits2);
    }

    #[test]
    fn quantized_and_float_rarely_disagree() {
        // Quantization can only flip bits for pairs whose projection is
        // within ~1e-4·‖x‖₁ of the hyperplane.
        let mut rng = Xoshiro256::seed_from_u64(44);
        let mut hq = SrpHasher::with_storage(64, 5, PlaneStorage::Quantized);
        let mut hf = SrpHasher::with_storage(64, 5, PlaneStorage::Float);
        let mut disagreements = 0;
        let trials = 20;
        let planes = 256;
        for _ in 0..trials {
            let x = random_dense_vector(64, &mut rng);
            for i in 0..planes {
                if hq.hash_bit(i, &x) != hf.hash_bit(i, &x) {
                    disagreements += 1;
                }
            }
        }
        let rate = disagreements as f64 / (trials * planes) as f64;
        assert!(rate < 0.005, "disagreement rate {rate}");
    }

    #[test]
    fn hash_bits_into_packs_correctly() {
        let x = SparseVector::from_pairs(vec![(0, 1.0), (5, -2.0), (11, 0.25)]);
        let mut h = SrpHasher::new(16, 77);
        let mut words = Vec::new();
        h.hash_bits_into(&x, 0, 70, &mut words);
        assert_eq!(words.len(), 3);
        for i in 0..70u32 {
            let bit = (words[(i / 32) as usize] >> (i % 32)) & 1 == 1;
            assert_eq!(bit, h.hash_bit(i as usize, &x), "bit {i}");
        }
        // Extend from a non-word boundary.
        let mut h2 = SrpHasher::new(16, 77);
        let mut w2 = Vec::new();
        h2.hash_bits_into(&x, 0, 40, &mut w2);
        h2.hash_bits_into(&x, 40, 70, &mut w2);
        assert_eq!(words, w2);
    }

    #[test]
    fn kernels_match_scalar_oracle() {
        // The feature-major kernel must agree bit for bit with the
        // plane-major scalar oracle, for both storages, across extension
        // patterns that exercise bank growth and non-aligned ranges.
        let mut rng = Xoshiro256::seed_from_u64(404);
        for storage in [PlaneStorage::Quantized, PlaneStorage::Float] {
            let mut h = SrpHasher::with_storage(48, 91, storage);
            let x = random_dense_vector(48, &mut rng);
            let mut words = Vec::new();
            // Grow through several stride doublings and odd boundaries.
            for &(lo, hi) in &[(0u32, 30u32), (30, 64), (64, 200), (200, 513)] {
                h.hash_bits_into(&x, lo, hi, &mut words);
            }
            for i in 0..513u32 {
                let got = (words[(i / 32) as usize] >> (i % 32)) & 1 == 1;
                let want = oracle_bit(48, 91, storage, i as usize, &x);
                assert_eq!(got, want, "bit {i} storage {storage:?}");
                assert_eq!(h.hash_bit_ready(i as usize, &x), want, "ready bit {i}");
            }
        }
    }

    #[test]
    fn empty_vector_hashes_to_all_ones() {
        // dot(plane, 0) = 0 and the sign convention maps 0 to `true` — the
        // scalar path always did; the kernel must preserve it.
        let mut h = SrpHasher::new(8, 3);
        let mut words = Vec::new();
        h.hash_bits_into(&SparseVector::empty(), 0, 64, &mut words);
        assert_eq!(words, vec![u32::MAX, u32::MAX]);
    }

    #[test]
    fn parallel_plane_materialization_matches_serial() {
        let x = SparseVector::from_pairs(vec![(2, 1.0), (9, -0.75), (31, 0.5)]);
        let mut serial = SrpHasher::new(48, 909);
        serial.ensure_planes(200);
        for threads in [1usize, 2, 4, 8] {
            let mut par = SrpHasher::new(48, 909);
            par.ensure_planes_par(64, threads);
            par.ensure_planes_par(200, threads); // extend an existing bank
            assert_eq!(par.planes_ready(), 200);
            assert_eq!(par.components_generated(), serial.components_generated());
            for i in 0..200 {
                assert_eq!(
                    par.hash_bit_ready(i, &x),
                    serial.hash_bit_ready(i, &x),
                    "plane {i}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn packed_bits_match_appended_bits() {
        let x = SparseVector::from_pairs(vec![(0, 1.0), (7, -2.0), (13, 0.25)]);
        let mut h = SrpHasher::new(16, 4242);
        let mut appended = Vec::new();
        h.hash_bits_into(&x, 0, 256, &mut appended);
        // Reassemble the same signature from word-aligned packed chunks,
        // sharing one scratch across the chunk calls like a parallel
        // worker would.
        let mut scratch = SrpScratch::new();
        let mut spliced = Vec::new();
        for lo in (0..256).step_by(64) {
            spliced.extend(h.hash_bits_packed_with(&x, lo, lo + 64, &mut scratch));
        }
        assert_eq!(appended, spliced);
        // And the allocating wrapper agrees.
        assert_eq!(h.hash_bits_packed(&x, 0, 64), &appended[..2]);
    }

    #[test]
    fn wire_round_trip_rebuilds_an_identical_bank() {
        let x = SparseVector::from_pairs(vec![(1, 0.7), (19, -1.1), (40, 0.4)]);
        for storage in [PlaneStorage::Quantized, PlaneStorage::Float] {
            let mut orig = SrpHasher::with_storage(48, 4711, storage);
            orig.ensure_planes(130);
            let mut w = WireWriter::new(Vec::new());
            orig.write_wire(&mut w).unwrap();
            let bytes = w.into_inner();
            for threads in [1usize, 4] {
                let mut r = WireReader::new(&bytes[..]);
                let back = SrpHasher::read_wire(&mut r, threads, 130).unwrap();
                assert_eq!(r.bytes_read(), bytes.len() as u64);
                assert_eq!(back.dim(), orig.dim());
                assert_eq!(back.planes_ready(), orig.planes_ready());
                assert_eq!(back.components_generated(), orig.components_generated());
                for i in 0..130 {
                    assert_eq!(back.hash_bit_ready(i, &x), orig.hash_bit_ready(i, &x));
                }
            }
            // The caller's clamp bounds regeneration: a payload claiming a
            // huge bank warms only to the justified depth (the rest stays
            // lazy), so crafted counts cannot drive allocation.
            let mut r = WireReader::new(&bytes[..]);
            let clamped = SrpHasher::read_wire(&mut r, 1, 32).unwrap();
            assert_eq!(clamped.planes_ready(), 32);
        }
        // A bad storage tag is a typed error.
        let mut w = WireWriter::new(Vec::new());
        w.put_u32(8).unwrap();
        w.put_u64(1).unwrap();
        w.put_u8(9).unwrap();
        w.put_u64(0).unwrap();
        let bytes = w.into_inner();
        assert!(SrpHasher::read_wire(&mut WireReader::new(&bytes[..]), 1, 64).is_err());
    }

    #[test]
    fn plane_accounting() {
        let mut h = SrpHasher::new(100, 1);
        assert_eq!(h.planes_ready(), 0);
        assert_eq!(h.plane_bytes(), 0);
        h.ensure_planes(8);
        assert_eq!(h.planes_ready(), 8);
        assert_eq!(h.plane_bytes(), 8 * 100 * 2);
        assert_eq!(h.components_generated(), 800);
        // Idempotent.
        h.ensure_planes(4);
        assert_eq!(h.planes_ready(), 8);
    }
}
