//! Signed random projections: the LSH family for angular/cosine similarity
//! (Charikar, STOC'02; paper Section 4.2).
//!
//! Hash `i` is a random hyperplane `r_i` with i.i.d. N(0,1) components;
//! `h_i(x) = [dot(r_i, x) ≥ 0]`. For any pair,
//! `Pr[h_i(x) = h_i(y)] = 1 − θ(x, y)/π`, which we call `r(x, y)`.
//! BayesLSH does its inference on `r` and converts back to cosine with
//! [`r_to_cos`]/[`cos_to_r`].

use bayeslsh_numeric::{derive_seed, fan_out, Gaussian, Xoshiro256};
use bayeslsh_sparse::SparseVector;

use crate::quantized;

/// Map the collision similarity `r ∈ [0.5, 1]` (for non-negative-cosine
/// pairs) to cosine: `r2c(r) = cos(π(1 − r))`.
#[inline]
pub fn r_to_cos(r: f64) -> f64 {
    (std::f64::consts::PI * (1.0 - r)).cos()
}

/// Map cosine similarity to the hash-collision similarity:
/// `c2r(c) = 1 − arccos(c)/π`.
#[inline]
pub fn cos_to_r(c: f64) -> f64 {
    1.0 - c.clamp(-1.0, 1.0).acos() / std::f64::consts::PI
}

/// How hyperplane components are stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneStorage {
    /// 2 bytes per component (paper §4.3) — the default.
    Quantized,
    /// 4-byte floats; used by the ablation bench to measure what the
    /// quantization trades away.
    Float,
}

/// A lazily-grown bank of random hyperplanes producing sign bits.
///
/// Plane `i` is generated deterministically from `(seed, i)`, so two
/// `SrpHasher`s with the same seed produce identical hash streams regardless
/// of the order in which planes were first demanded.
#[derive(Debug, Clone)]
pub struct SrpHasher {
    dim: u32,
    seed: u64,
    storage: PlaneStorage,
    planes_q: Vec<Vec<u16>>,
    planes_f: Vec<Vec<f32>>,
    /// Total component draws, for memory/throughput accounting.
    components_generated: u64,
}

impl SrpHasher {
    /// A hasher over a `dim`-dimensional space with quantized plane storage.
    pub fn new(dim: u32, seed: u64) -> Self {
        Self::with_storage(dim, seed, PlaneStorage::Quantized)
    }

    /// A hasher with explicit storage choice.
    pub fn with_storage(dim: u32, seed: u64, storage: PlaneStorage) -> Self {
        Self {
            dim,
            seed,
            storage,
            planes_q: Vec::new(),
            planes_f: Vec::new(),
            components_generated: 0,
        }
    }

    /// Dimensionality of the input space.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of planes materialized so far.
    pub fn planes_ready(&self) -> usize {
        match self.storage {
            PlaneStorage::Quantized => self.planes_q.len(),
            PlaneStorage::Float => self.planes_f.len(),
        }
    }

    /// Bytes of plane storage currently held.
    pub fn plane_bytes(&self) -> usize {
        match self.storage {
            PlaneStorage::Quantized => self.planes_q.len() * self.dim as usize * 2,
            PlaneStorage::Float => self.planes_f.len() * self.dim as usize * 4,
        }
    }

    fn gen_plane(&mut self, index: usize) -> Vec<f32> {
        self.components_generated += self.dim as u64;
        generate_plane(self.dim, self.seed, index)
    }

    /// Materialize planes `0..n`.
    pub fn ensure_planes(&mut self, n: usize) {
        while self.planes_ready() < n {
            let idx = self.planes_ready();
            let plane = self.gen_plane(idx);
            match self.storage {
                PlaneStorage::Quantized => self.planes_q.push(quantized::encode_slice(&plane)),
                PlaneStorage::Float => self.planes_f.push(plane),
            }
        }
    }

    /// Materialize planes `0..n` with up to `threads` workers. Plane `i` is
    /// a pure function of `(seed, i)`, so the result is identical to
    /// [`SrpHasher::ensure_planes`] whatever the thread count.
    pub fn ensure_planes_par(&mut self, n: usize, threads: usize) {
        let ready = self.planes_ready();
        if ready >= n {
            return;
        }
        let missing = n - ready;
        let (dim, seed, storage) = (self.dim, self.seed, self.storage);
        let chunks = fan_out(missing, threads, |_, range| {
            range
                .map(|off| {
                    let plane = generate_plane(dim, seed, ready + off);
                    match storage {
                        PlaneStorage::Quantized => {
                            PlaneBuf::Quantized(quantized::encode_slice(&plane))
                        }
                        PlaneStorage::Float => PlaneBuf::Float(plane),
                    }
                })
                .collect::<Vec<_>>()
        });
        for plane in chunks.into_iter().flatten() {
            match plane {
                PlaneBuf::Quantized(p) => self.planes_q.push(p),
                PlaneBuf::Float(p) => self.planes_f.push(p),
            }
        }
        self.components_generated += missing as u64 * dim as u64;
        debug_assert_eq!(self.planes_ready(), n);
    }

    /// Sign bit of plane `i` against `v` (materializing the plane if
    /// needed).
    pub fn hash_bit(&mut self, i: usize, v: &SparseVector) -> bool {
        self.ensure_planes(i + 1);
        self.hash_bit_ready(i, v)
    }

    /// Sign bit of plane `i` against `v` without materialization — the
    /// read-only path parallel workers share.
    ///
    /// # Panics
    ///
    /// Panics if plane `i` has not been materialized (call
    /// [`SrpHasher::ensure_planes`] / [`SrpHasher::ensure_planes_par`]
    /// first).
    pub fn hash_bit_ready(&self, i: usize, v: &SparseVector) -> bool {
        let acc = match self.storage {
            PlaneStorage::Quantized => {
                let plane = &self.planes_q[i];
                let mut acc = 0.0f64;
                for (idx, val) in v.iter() {
                    acc += quantized::decode(plane[idx as usize]) as f64 * val as f64;
                }
                acc
            }
            PlaneStorage::Float => {
                let plane = &self.planes_f[i];
                let mut acc = 0.0f64;
                for (idx, val) in v.iter() {
                    acc += plane[idx as usize] as f64 * val as f64;
                }
                acc
            }
        };
        acc >= 0.0
    }

    /// Compute bits `lo..hi` for `v`, packed LSB-first into `u32` words that
    /// the caller appends to an existing signature (whose valid length must
    /// be exactly `lo` bits, with `lo` a multiple of 32 or the bits already
    /// partially filling the last word).
    pub fn hash_bits_into(&mut self, v: &SparseVector, lo: u32, hi: u32, words: &mut Vec<u32>) {
        self.ensure_planes(hi as usize);
        for i in lo..hi {
            let word_idx = (i / 32) as usize;
            if word_idx >= words.len() {
                words.push(0);
            }
            if self.hash_bit_ready(i as usize, v) {
                words[word_idx] |= 1u32 << (i % 32);
            }
        }
    }

    /// Compute bits `lo..hi` for `v` into a fresh packed buffer whose bit 0
    /// is hash `lo` — the read-only building block parallel hashing splices
    /// from. `lo` and `hi` must be multiples of 32 and the planes already
    /// materialized to `hi`; the returned words are bit-identical to what
    /// [`SrpHasher::hash_bits_into`] appends for the same range.
    pub fn hash_bits_packed(&self, v: &SparseVector, lo: u32, hi: u32) -> Vec<u32> {
        debug_assert!(
            lo % 32 == 0 && hi % 32 == 0,
            "packed ranges are word-aligned"
        );
        let mut words = vec![0u32; ((hi - lo) / 32) as usize];
        for i in lo..hi {
            if self.hash_bit_ready(i as usize, v) {
                let rel = i - lo;
                words[(rel / 32) as usize] |= 1u32 << (rel % 32);
            }
        }
        words
    }

    /// Total Gaussian components generated (throughput accounting).
    pub fn components_generated(&self) -> u64 {
        self.components_generated
    }
}

/// Plane `index` of the `(dim, seed)` bank — a pure function, so planes can
/// be generated in any order and on any thread.
fn generate_plane(dim: u32, seed: u64, index: usize) -> Vec<f32> {
    let mut rng = Xoshiro256::seed_from_u64(derive_seed(seed, index as u64));
    let mut gauss = Gaussian::new();
    (0..dim).map(|_| gauss.sample(&mut rng) as f32).collect()
}

/// A plane buffer produced off-thread, in either storage encoding.
enum PlaneBuf {
    Quantized(Vec<u16>),
    Float(Vec<f32>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_sparse::cosine;

    fn random_dense_vector(dim: u32, rng: &mut Xoshiro256) -> SparseVector {
        let pairs: Vec<(u32, f32)> = (0..dim)
            .map(|i| (i, (rng.next_f64() * 2.0 - 1.0) as f32))
            .collect();
        SparseVector::from_pairs(pairs)
    }

    #[test]
    fn r_cos_round_trip() {
        for c in [0.0, 0.1, 0.5, 0.7, 0.9, 0.99, 1.0] {
            assert!((r_to_cos(cos_to_r(c)) - c).abs() < 1e-12, "c={c}");
        }
        for r in [0.5, 0.6, 0.75, 0.9, 1.0] {
            assert!((cos_to_r(r_to_cos(r)) - r).abs() < 1e-12, "r={r}");
        }
    }

    #[test]
    fn r_of_known_angles() {
        // cos 0 → r = 0.5; cos 1 → r = 1; cos(60°) = 0.5 → r = 1 − 1/3.
        assert!((cos_to_r(0.0) - 0.5).abs() < 1e-12);
        assert!((cos_to_r(1.0) - 1.0).abs() < 1e-12);
        assert!((cos_to_r(0.5) - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn collision_rate_matches_angular_similarity() {
        // Empirical check of Pr[h(x) = h(y)] = 1 − θ/π with 4000 planes.
        let mut rng = Xoshiro256::seed_from_u64(41);
        let mut hasher = SrpHasher::new(64, 7);
        for trial in 0..4 {
            let x = random_dense_vector(64, &mut rng);
            let y = random_dense_vector(64, &mut rng);
            let expected = cos_to_r(cosine(&x, &y));
            let n = 4000usize;
            let agree = (0..n)
                .filter(|&i| hasher.hash_bit(i, &x) == hasher.hash_bit(i, &y))
                .count();
            let observed = agree as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.03,
                "trial {trial}: observed {observed} expected {expected}"
            );
        }
    }

    #[test]
    fn identical_vectors_always_collide() {
        let mut rng = Xoshiro256::seed_from_u64(42);
        let mut hasher = SrpHasher::new(32, 9);
        let x = random_dense_vector(32, &mut rng);
        for i in 0..512 {
            assert_eq!(hasher.hash_bit(i, &x), hasher.hash_bit(i, &x));
        }
    }

    #[test]
    fn opposite_vectors_never_collide() {
        let mut rng = Xoshiro256::seed_from_u64(43);
        let mut hasher = SrpHasher::new(32, 9);
        let x = random_dense_vector(32, &mut rng);
        let neg = x.scaled(-1.0);
        let agree = (0..512)
            .filter(|&i| hasher.hash_bit(i, &x) == hasher.hash_bit(i, &neg))
            .count();
        // dot = 0 exactly on a measure-zero set; sign flip everywhere else.
        assert_eq!(agree, 0);
    }

    #[test]
    fn deterministic_across_instances_and_demand_order() {
        let x = SparseVector::from_pairs(vec![(3, 1.0), (17, -0.5), (29, 2.0)]);
        let mut h1 = SrpHasher::new(32, 1234);
        let mut h2 = SrpHasher::new(32, 1234);
        // h1 materializes planes front-to-back, h2 back-to-front.
        let bits1: Vec<bool> = (0..128).map(|i| h1.hash_bit(i, &x)).collect();
        h2.ensure_planes(128);
        let bits2: Vec<bool> = (0..128).map(|i| h2.hash_bit(i, &x)).collect();
        assert_eq!(bits1, bits2);
    }

    #[test]
    fn quantized_and_float_rarely_disagree() {
        // Quantization can only flip bits for pairs whose projection is
        // within ~1e-4·‖x‖₁ of the hyperplane.
        let mut rng = Xoshiro256::seed_from_u64(44);
        let mut hq = SrpHasher::with_storage(64, 5, PlaneStorage::Quantized);
        let mut hf = SrpHasher::with_storage(64, 5, PlaneStorage::Float);
        let mut disagreements = 0;
        let trials = 20;
        let planes = 256;
        for _ in 0..trials {
            let x = random_dense_vector(64, &mut rng);
            for i in 0..planes {
                if hq.hash_bit(i, &x) != hf.hash_bit(i, &x) {
                    disagreements += 1;
                }
            }
        }
        let rate = disagreements as f64 / (trials * planes) as f64;
        assert!(rate < 0.005, "disagreement rate {rate}");
    }

    #[test]
    fn hash_bits_into_packs_correctly() {
        let x = SparseVector::from_pairs(vec![(0, 1.0), (5, -2.0), (11, 0.25)]);
        let mut h = SrpHasher::new(16, 77);
        let mut words = Vec::new();
        h.hash_bits_into(&x, 0, 70, &mut words);
        assert_eq!(words.len(), 3);
        for i in 0..70u32 {
            let bit = (words[(i / 32) as usize] >> (i % 32)) & 1 == 1;
            assert_eq!(bit, h.hash_bit(i as usize, &x), "bit {i}");
        }
        // Extend from a non-word boundary.
        let mut h2 = SrpHasher::new(16, 77);
        let mut w2 = Vec::new();
        h2.hash_bits_into(&x, 0, 40, &mut w2);
        h2.hash_bits_into(&x, 40, 70, &mut w2);
        assert_eq!(words, w2);
    }

    #[test]
    fn parallel_plane_materialization_matches_serial() {
        let x = SparseVector::from_pairs(vec![(2, 1.0), (9, -0.75), (31, 0.5)]);
        let mut serial = SrpHasher::new(48, 909);
        serial.ensure_planes(200);
        for threads in [1usize, 2, 4, 8] {
            let mut par = SrpHasher::new(48, 909);
            par.ensure_planes_par(64, threads);
            par.ensure_planes_par(200, threads); // extend an existing bank
            assert_eq!(par.planes_ready(), 200);
            assert_eq!(par.components_generated(), serial.components_generated());
            for i in 0..200 {
                assert_eq!(
                    par.hash_bit_ready(i, &x),
                    serial.hash_bit_ready(i, &x),
                    "plane {i}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn packed_bits_match_appended_bits() {
        let x = SparseVector::from_pairs(vec![(0, 1.0), (7, -2.0), (13, 0.25)]);
        let mut h = SrpHasher::new(16, 4242);
        let mut appended = Vec::new();
        h.hash_bits_into(&x, 0, 256, &mut appended);
        // Reassemble the same signature from word-aligned packed chunks.
        let mut spliced = Vec::new();
        for lo in (0..256).step_by(64) {
            spliced.extend(h.hash_bits_packed(&x, lo, lo + 64));
        }
        assert_eq!(appended, spliced);
    }

    #[test]
    fn plane_accounting() {
        let mut h = SrpHasher::new(100, 1);
        assert_eq!(h.planes_ready(), 0);
        assert_eq!(h.plane_bytes(), 0);
        h.ensure_planes(8);
        assert_eq!(h.planes_ready(), 8);
        assert_eq!(h.plane_bytes(), 8 * 100 * 2);
        assert_eq!(h.components_generated(), 800);
        // Idempotent.
        h.ensure_planes(4);
        assert_eq!(h.planes_ready(), 8);
    }
}
