//! Locality-sensitive hash families and signature storage.
//!
//! Following Charikar's definition (paper Eq. 1), an LSH family for a
//! similarity `sim` satisfies `Pr[h(x) = h(y)] = p(sim(x, y))` for a
//! monotone `p` over a random draw of `h`. Three families are implemented:
//!
//! * [`minhash`] — minwise-independent permutations for **Jaccard**
//!   similarity (integer-valued hashes, `p(s) = s`);
//! * [`srp`] — signed random projections for the **angular** similarity
//!   `r(x, y) = 1 − θ(x, y)/π` underlying cosine BayesLSH (bit-valued
//!   hashes, stored bit-packed);
//! * [`e2lsh`] — p-stable quantized projections for **L2** distance
//!   (integer-valued bucket hashes, Datar et al.'s collision model).
//!
//! **Maximum inner product** rides the SRP family through the asymmetric
//! augmentation of [`mips`], which reduces it to cosine on lifted vectors.
//! The [`family`] module is the public surface tying each family to its
//! measure and collision model ([`family::HashFamily`] /
//! [`family::FamilyConfig`]), which is what the Bayesian verifiers
//! consume — any family exposing the monotone map rides them unchanged.
//!
//! All families are exposed through lazily extendable *signature pools*
//! ([`signature::BitSignatures`], [`signature::IntSignatures`],
//! [`e2lsh::ProjSignatures`]): BayesLSH hashes each object only as deep as
//! its surviving candidate pairs require, which is one of the paper's
//! selling points ("each point in the dataset is only hashed as many times
//! as is necessary").
//!
//! The [`quantized`] module implements the paper's §4.3 trick of storing
//! each Gaussian plane component in 2 bytes.

pub mod bbit;
pub mod e2lsh;
pub mod family;
pub mod minhash;
pub mod mips;
pub mod quantized;
pub mod signature;
pub mod srp;

pub use bbit::{bbit_collision_prob, bbit_to_jaccard, count_bbit_agreements, BbitSignatures};
pub use e2lsh::{generate_projection, E2lshHasher, E2lshScratch, ProjSignatures};
pub use family::{
    e2lsh_collision, e2lsh_collision_at_distance, e2lsh_similarity_at, E2LshFamily, FamilyConfig,
    HashFamily, Measure, MinHashFamily, MipsFamily, SrpFamily,
};
pub use minhash::{MinHasher, MinScratch};
pub use mips::MipsTransform;
pub use signature::{
    count_bit_agreements, count_bit_agreements_batched, count_int_agreements,
    count_int_agreements_batched, BitSignatures, IntSignatures, SignaturePool,
};
pub use srp::{cos_to_r, generate_plane, r_to_cos, SrpHasher, SrpScratch};
