//! Locality-sensitive hash families and signature storage.
//!
//! Following Charikar's definition (paper Eq. 1), an LSH family for a
//! similarity `sim` satisfies `Pr[h(x) = h(y)] = sim(x, y)` over a random
//! draw of `h`. Two families are implemented:
//!
//! * [`minhash`] — minwise-independent permutations for **Jaccard**
//!   similarity (integer-valued hashes);
//! * [`srp`] — signed random projections for the **angular** similarity
//!   `r(x, y) = 1 − θ(x, y)/π` underlying cosine BayesLSH (bit-valued
//!   hashes, stored bit-packed).
//!
//! Both are exposed through lazily extendable *signature pools*
//! ([`signature::BitSignatures`], [`signature::IntSignatures`]): BayesLSH
//! hashes each object only as deep as its surviving candidate pairs require,
//! which is one of the paper's selling points ("each point in the dataset is
//! only hashed as many times as is necessary").
//!
//! The [`quantized`] module implements the paper's §4.3 trick of storing
//! each Gaussian plane component in 2 bytes.

pub mod bbit;
pub mod minhash;
pub mod quantized;
pub mod signature;
pub mod srp;

pub use bbit::{bbit_collision_prob, bbit_to_jaccard, count_bbit_agreements, BbitSignatures};
pub use minhash::{MinHasher, MinScratch};
pub use signature::{
    count_bit_agreements, count_bit_agreements_batched, count_int_agreements,
    count_int_agreements_batched, BitSignatures, IntSignatures, SignaturePool,
};
pub use srp::{cos_to_r, generate_plane, r_to_cos, SrpHasher, SrpScratch};
