//! b-bit minwise hashing (Li & König, WWW 2010 — the paper's reference
//! \[15\]).
//!
//! Storing only the lowest `b` bits of each minwise hash shrinks Jaccard
//! signatures by a factor of `32/b` at the cost of *random* collisions:
//! two unrelated minima still agree on `b` bits with probability `2⁻ᵇ`, so
//!
//! ```text
//! Pr[h_b(x) = h_b(y)] = J + (1 − J)·2⁻ᵇ
//! ```
//!
//! (exactly, under the random-function model our [`crate::MinHasher`]
//! realizes). BayesLSH composes cleanly with this family — the posterior
//! model just works over the affinely transformed collision probability;
//! see `bayeslsh_core`'s `BbitJaccardModel`.

use bayeslsh_sparse::SparseVector;

use crate::minhash::{MinHasher, MinScratch};
use crate::signature::SignaturePool;

/// Collision probability of a b-bit minwise hash at Jaccard similarity
/// `j`: `j + (1 − j)/2^b`.
#[inline]
pub fn bbit_collision_prob(j: f64, b: u32) -> f64 {
    let floor = 0.5f64.powi(b as i32);
    floor + (1.0 - floor) * j
}

/// Invert [`bbit_collision_prob`]: recover Jaccard similarity from a
/// collision rate (clamped to `[0, 1]`).
#[inline]
pub fn bbit_to_jaccard(p: f64, b: u32) -> f64 {
    let floor = 0.5f64.powi(b as i32);
    ((p - floor) / (1.0 - floor)).clamp(0.0, 1.0)
}

/// Count agreeing `b`-bit fragments in positions `lo..hi` between two
/// packed fragment buffers (`32/b` fragments per `u32` word, LSB-first,
/// `b ∈ {1,2,4,8,16}`) — word-parallel, one XOR + OR-fold + popcount per
/// word instead of a shift/mask/compare per fragment.
///
/// Per word, `x = wa ^ wb` has an all-zero `b`-bit lane exactly where the
/// fragments agree. The OR-fold `x |= x >> s` for `s = 1, 2, … < b`
/// collapses each lane's disagreement onto its least-significant bit
/// (shifts reach at most `b − 1` positions, so no neighboring lane leaks
/// into a lane's LSB), a lane-LSB pattern masks those bits — restricted to
/// the `lo..hi` lanes in the two edge words — and a popcount of the
/// surviving bits counts the disagreements.
pub fn count_bbit_agreements(wa: &[u32], wb: &[u32], b: u32, lo: u32, hi: u32) -> u32 {
    debug_assert!(matches!(b, 1 | 2 | 4 | 8 | 16));
    debug_assert!(lo <= hi);
    if lo == hi {
        return 0;
    }
    let per_word = 32 / b;
    // One bit per lane, at each lane's least-significant position.
    let lane_pattern = u32::MAX / ((1u32 << b) - 1);
    let start_w = (lo / per_word) as usize;
    let end_w = hi.div_ceil(per_word) as usize;
    debug_assert!(end_w <= wa.len() && end_w <= wb.len());
    let mut agree = 0u32;
    for w in start_w..end_w {
        let mut lanes = lane_pattern;
        if w == start_w {
            lanes &= u32::MAX << ((lo % per_word) * b);
        }
        if w == end_w - 1 {
            let rem = hi - (w as u32) * per_word;
            if rem < per_word {
                lanes &= (1u32 << (rem * b)) - 1;
            }
        }
        let mut x = wa[w] ^ wb[w];
        let mut s = 1;
        while s < b {
            x |= x >> s;
            s <<= 1;
        }
        agree += lanes.count_ones() - (x & lanes).count_ones();
    }
    agree
}

/// A signature pool storing `b` bits per minwise hash, packed into `u32`
/// words. Extension goes through the element-major range kernel — one pass
/// over the set per chunk, reusing the pool's scratch buffers — then packs
/// the low `b` bits of each hash in one sweep.
#[derive(Debug, Clone)]
pub struct BbitSignatures {
    hasher: MinHasher,
    b: u32,
    sigs: Vec<Vec<u32>>,
    hashes: Vec<u32>,
    total: u64,
    /// Reusable kernel scratch (running minima).
    min_scratch: MinScratch,
    /// Reusable full-width hash buffer the fragments are packed from.
    hash_scratch: Vec<u32>,
}

impl BbitSignatures {
    /// A pool for `n_objects` objects keeping `b ∈ {1,2,4,8,16}` bits per
    /// hash (powers of two divide the word cleanly).
    pub fn new(hasher: MinHasher, n_objects: usize, b: u32) -> Self {
        assert!(
            matches!(b, 1 | 2 | 4 | 8 | 16),
            "b must be one of 1,2,4,8,16 (got {b})"
        );
        Self {
            hasher,
            b,
            sigs: vec![Vec::new(); n_objects],
            hashes: vec![0; n_objects],
            total: 0,
            min_scratch: MinScratch::new(),
            hash_scratch: Vec::new(),
        }
    }

    /// Bits kept per hash.
    pub fn b(&self) -> u32 {
        self.b
    }

    /// The `i`-th stored hash fragment of object `id` — the scalar access
    /// path the word-parallel [`count_bbit_agreements`] kernel replaced;
    /// kept as the oracle the tests check the kernel against.
    #[cfg(test)]
    #[inline]
    fn fragment(&self, id: u32, i: u32) -> u32 {
        let per_word = 32 / self.b;
        let word = self.sigs[id as usize][(i / per_word) as usize];
        let shift = (i % per_word) * self.b;
        (word >> shift) & ((1u32 << self.b) - 1)
    }

    /// Signature bytes currently held for `id` (storage accounting).
    pub fn bytes(&self, id: u32) -> usize {
        self.sigs[id as usize].len() * 4
    }

    /// The raw packed fragment words of `id`'s signature (`32/b` fragments
    /// per word, LSB-first) — the buffers [`count_bbit_agreements`] counts
    /// over.
    pub fn raw_words(&self, id: u32) -> &[u32] {
        &self.sigs[id as usize]
    }

    /// Make room for objects `0..n_objects`, keeping existing signatures.
    /// Supports corpora that grow after pool construction (incremental
    /// insertion into a standing index).
    pub fn grow_to(&mut self, n_objects: usize) {
        if self.sigs.len() < n_objects {
            self.sigs.resize(n_objects, Vec::new());
            self.hashes.resize(n_objects, 0);
        }
    }
}

impl SignaturePool for BbitSignatures {
    fn ensure(&mut self, id: u32, v: &SparseVector, n: u32) {
        let per_word = 32 / self.b;
        // Round up to whole words so fragments never straddle words.
        let target = n.div_ceil(per_word) * per_word;
        let cur = self.hashes[id as usize];
        if target <= cur {
            return;
        }
        let mask = (1u32 << self.b) - 1;
        self.hasher.ensure_functions(target as usize);
        // One element-major pass over the set for the whole chunk...
        self.hasher.range_hashes_replace(
            v,
            cur,
            target,
            &mut self.min_scratch,
            &mut self.hash_scratch,
        );
        // ...then size the word buffer once and pack fragments in one sweep.
        let sig = &mut self.sigs[id as usize];
        sig.resize((target / per_word) as usize, 0);
        for (off, &h) in self.hash_scratch.iter().enumerate() {
            let i = cur + off as u32;
            sig[(i / per_word) as usize] |= (h & mask) << ((i % per_word) * self.b);
        }
        self.hashes[id as usize] = target;
        self.total += (target - cur) as u64;
    }

    fn len(&self, id: u32) -> u32 {
        self.hashes[id as usize]
    }

    fn agreements(&self, a: u32, b: u32, lo: u32, hi: u32) -> u32 {
        debug_assert!(hi <= self.hashes[a as usize] && hi <= self.hashes[b as usize]);
        count_bbit_agreements(
            &self.sigs[a as usize],
            &self.sigs[b as usize],
            self.b,
            lo,
            hi,
        )
    }

    fn agreements_batched(&self, a: u32, others: &[u32], lo: u32, hi: u32, out: &mut Vec<u32>) {
        debug_assert!(hi <= self.hashes[a as usize]);
        let probe = &self.sigs[a as usize];
        out.clear();
        out.extend(others.iter().map(|&b| {
            debug_assert!(hi <= self.hashes[b as usize]);
            count_bbit_agreements(probe, &self.sigs[b as usize], self.b, lo, hi)
        }));
    }

    fn total_hashes(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_sparse::jaccard;

    fn pair_with_jaccard() -> (SparseVector, SparseVector, f64) {
        let x = SparseVector::from_indices((0..100).map(|i| i * 31 + 7).collect());
        let y = SparseVector::from_indices(
            (0..100)
                .map(|i| if i < 60 { i * 31 + 7 } else { i * 97 + 13_000 })
                .collect(),
        );
        let j = jaccard(&x, &y);
        (x, y, j)
    }

    #[test]
    fn collision_prob_formula() {
        assert_eq!(bbit_collision_prob(0.0, 1), 0.5);
        assert_eq!(bbit_collision_prob(1.0, 1), 1.0);
        assert_eq!(bbit_collision_prob(0.0, 4), 1.0 / 16.0);
        // Round trip.
        for b in [1u32, 2, 4, 8, 16] {
            for j in [0.0, 0.25, 0.7, 1.0] {
                let p = bbit_collision_prob(j, b);
                assert!((bbit_to_jaccard(p, b) - j).abs() < 1e-12, "b={b} j={j}");
            }
        }
    }

    #[test]
    fn empirical_collision_rate_matches_formula() {
        let (x, y, j) = pair_with_jaccard();
        for b in [1u32, 2, 8] {
            let mut pool = BbitSignatures::new(MinHasher::new(71), 2, b);
            let n = 4096;
            pool.ensure(0, &x, n);
            pool.ensure(1, &y, n);
            let rate = pool.agreements(0, 1, 0, n) as f64 / n as f64;
            let expected = bbit_collision_prob(j, b);
            assert!(
                (rate - expected).abs() < 0.03,
                "b={b}: rate {rate} expected {expected} (J={j})"
            );
        }
    }

    #[test]
    fn identical_sets_always_collide() {
        let x = SparseVector::from_indices(vec![4, 9, 16, 25]);
        let mut pool = BbitSignatures::new(MinHasher::new(72), 2, 4);
        pool.ensure(0, &x, 128);
        pool.ensure(1, &x, 128);
        assert_eq!(pool.agreements(0, 1, 0, 128), 128);
    }

    #[test]
    fn fragments_match_low_bits_of_minhash() {
        let x = SparseVector::from_indices(vec![3, 14, 15, 92, 65]);
        let b = 8u32;
        let mut pool = BbitSignatures::new(MinHasher::new(73), 1, b);
        pool.ensure(0, &x, 64);
        let mut reference = MinHasher::new(73);
        for i in 0..64u32 {
            assert_eq!(
                pool.fragment(0, i),
                reference.hash(i as usize, &x) & 0xFF,
                "hash {i}"
            );
        }
    }

    #[test]
    fn lazy_extension_preserves_prefix_and_rounds_to_words() {
        let x = SparseVector::from_indices(vec![1, 2, 3]);
        let mut pool = BbitSignatures::new(MinHasher::new(74), 1, 4);
        pool.ensure(0, &x, 5); // 8 fragments per word → rounds to 8
        assert_eq!(pool.len(0), 8);
        let before: Vec<u32> = (0..8).map(|i| pool.fragment(0, i)).collect();
        pool.ensure(0, &x, 64);
        assert_eq!(pool.len(0), 64);
        let after: Vec<u32> = (0..8).map(|i| pool.fragment(0, i)).collect();
        assert_eq!(before, after);
        assert_eq!(pool.total_hashes(), 64);
    }

    /// The per-fragment scalar loop the word-parallel kernel replaced,
    /// kept as the test oracle.
    fn fragment_oracle(pool: &BbitSignatures, a: u32, b: u32, lo: u32, hi: u32) -> u32 {
        (lo..hi)
            .filter(|&i| pool.fragment(a, i) == pool.fragment(b, i))
            .count() as u32
    }

    #[test]
    fn word_parallel_agreements_match_fragment_oracle_at_unaligned_ranges() {
        let (x, y, _) = pair_with_jaccard();
        for b in [1u32, 2, 4, 8, 16] {
            let per_word = 32 / b;
            let mut pool = BbitSignatures::new(MinHasher::new(77), 2, b);
            pool.ensure(0, &x, 256);
            pool.ensure(1, &y, 256);
            // Ranges straddling word boundaries, single-lane ranges, and
            // ranges whose width is not a multiple of fragments-per-word.
            let ranges = [
                (0u32, 256u32),
                (0, per_word),
                (1, per_word + 1),
                (per_word - 1, per_word - 1),
                (per_word / 2, 5 * per_word + per_word / 2 + 1),
                (3, 250),
                (255, 256),
            ];
            for &(lo, hi) in &ranges {
                let (lo, hi) = (lo.min(256), hi.min(256).max(lo.min(256)));
                assert_eq!(
                    pool.agreements(0, 1, lo, hi),
                    fragment_oracle(&pool, 0, 1, lo, hi),
                    "b={b} range {lo}..{hi}"
                );
            }
            let mut batched = Vec::new();
            pool.agreements_batched(0, &[1, 0, 1], 3, 199, &mut batched);
            assert_eq!(
                batched,
                vec![
                    fragment_oracle(&pool, 0, 1, 3, 199),
                    196,
                    fragment_oracle(&pool, 0, 1, 3, 199)
                ],
                "b={b}"
            );
        }
    }

    #[test]
    fn grow_to_then_lazy_ensure_counts_at_odd_depths() {
        let (x, y, _) = pair_with_jaccard();
        for b in [2u32, 4, 16] {
            let per_word = 32 / b;
            let mut pool = BbitSignatures::new(MinHasher::new(78), 1, b);
            // Ensure to a depth that is not a multiple of fragments-per-word;
            // the pool rounds up to whole words.
            pool.ensure(0, &x, per_word + 1);
            assert_eq!(pool.len(0), 2 * per_word);
            pool.grow_to(3);
            pool.ensure(2, &y, 3 * per_word - 1);
            assert_eq!(pool.len(2), 3 * per_word);
            let hi = 2 * per_word;
            assert_eq!(
                pool.agreements(0, 2, 1, hi - 1),
                fragment_oracle(&pool, 0, 2, 1, hi - 1),
                "b={b}"
            );
            // Fragments written before grow_to are untouched by it.
            let mut fresh = BbitSignatures::new(MinHasher::new(78), 1, b);
            fresh.ensure(0, &x, per_word + 1);
            assert_eq!(fresh.sigs[0], pool.sigs[0], "b={b}");
        }
    }

    #[test]
    fn storage_is_b_over_32_of_full_ints() {
        let x = SparseVector::from_indices((0..50).collect());
        let mut pool = BbitSignatures::new(MinHasher::new(75), 1, 2);
        pool.ensure(0, &x, 512);
        // 512 hashes × 2 bits = 1024 bits = 128 bytes (vs 2048 for u32s).
        assert_eq!(pool.bytes(0), 128);
    }

    #[test]
    #[should_panic(expected = "b must be one of")]
    fn rejects_unsupported_b() {
        BbitSignatures::new(MinHasher::new(76), 1, 3);
    }
}
