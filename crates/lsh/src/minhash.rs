//! Minwise hashing: the LSH family for Jaccard similarity
//! (Broder et al., STOC'98; paper Section 4.1).
//!
//! Hash `i` applies a random permutation `π_i` to the feature universe and
//! returns the minimum permuted element of the set;
//! `Pr[h_i(x) = h_i(y)] = J(x, y)`.
//!
//! The permutations are realized as keyed 64-bit bijections
//! `π_i(e) = mix64(e ⊕ a_i) ⊕ b_i`, where `mix64` is the SplitMix64
//! finalizer (a bijection on `u64` with full avalanche). Truly minwise
//! families need strong mixing: simple linear permutations
//! `(a·e + b) mod p` are measurably biased on structured sets (arithmetic
//! progressions map to arithmetic progressions), which shows up directly as
//! biased similarity estimates.
//!
//! # Kernel layout
//!
//! Range hashing is **element-major and register-blocked**: the hash range
//! is cut into blocks of `MIN_BLOCK` slots, and one pass over the set's
//! elements updates the block's running minima held in an on-stack array
//! (so the inner loop is `MIN_BLOCK` independent mix-and-min chains with no
//! load/store traffic on the minima), instead of `h` passes over the
//! elements — one per hash slot. A per-chain optimization barrier keeps the
//! mix chains on the scalar multiplier (see `opaque_u64`). The minimum is
//! commutative, so the values are identical to the hash-major order; only
//! the memory access pattern changes.

use bayeslsh_numeric::wire::{WireError, WireReader, WireWriter};
use bayeslsh_numeric::{derive_seed, Xoshiro256};
use bayeslsh_sparse::SparseVector;

/// Register-block width of the minhash range kernel: how many independent
/// running minima the inner loop keeps in an on-stack array. Eight chains
/// keep the two multiplies per `mix64` pipelined without spilling the
/// minima on common x86-64/aarch64 register budgets.
const MIN_BLOCK: usize = 8;

/// SplitMix64 finalizer: a bijective mixer on `u64`.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Identity barrier that makes the element value opaque to LLVM's loop
/// vectorizer. Without it the element loop in the range kernel is
/// auto-vectorized on baseline x86-64, which emulates each 64-bit multiply
/// in [`mix64`] with a `pmuludq`/shift/add sequence that runs ~2.5x slower
/// than the scalar multiplier; the barrier keeps the mix chains on the
/// integer `imul` unit, where the kernel runs at multiplier throughput
/// (measured ~2.3x the per-slot scalar path on the baseline target).
#[inline(always)]
fn opaque_u64(z: u64) -> u64 {
    std::hint::black_box(z)
}

/// Reusable minima scratch for the element-major minhash kernel.
///
/// Holds the running 64-bit minima one range pass maintains (`mins[j]` =
/// min over elements of `π_{lo+j}(e)`). Hashers own one for their
/// `&mut self` paths; read-only parallel workers create one per worker and
/// pass it to [`MinHasher::hash_range_packed_with`] so steady-state hashing
/// performs no heap allocation per call.
#[derive(Debug, Clone, Default)]
pub struct MinScratch {
    mins: Vec<u64>,
}

impl MinScratch {
    /// A fresh scratch; buffers are grown on first use and reused after.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A lazily-grown bank of minwise hash functions with `u32` outputs.
#[derive(Debug, Clone)]
pub struct MinHasher {
    seed: u64,
    /// Per-function keys (a, b) of the bijection `e ↦ mix64(e ⊕ a) ⊕ b`.
    params: Vec<(u64, u64)>,
    /// Reusable minima buffer for the `&mut self` range paths.
    scratch: MinScratch,
}

impl MinHasher {
    /// Create a hasher; functions are derived deterministically from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            params: Vec::new(),
            scratch: MinScratch::new(),
        }
    }

    /// Number of hash functions materialized so far.
    pub fn functions_ready(&self) -> usize {
        self.params.len()
    }

    /// Materialize hash functions `0..n`.
    pub fn ensure_functions(&mut self, n: usize) {
        while self.params.len() < n {
            let idx = self.params.len();
            let mut rng = Xoshiro256::seed_from_u64(derive_seed(self.seed, idx as u64));
            self.params.push((rng.next_u64(), rng.next_u64()));
        }
    }

    /// Hash value `h_i(v)`: the minimum of `π_i(e)` over the support of
    /// `v`, truncated to 32 bits. Empty sets hash to `u32::MAX`.
    pub fn hash(&mut self, i: usize, v: &SparseVector) -> u32 {
        self.ensure_functions(i + 1);
        self.hash_ready(i, v)
    }

    /// Hash value `h_i(v)` without materialization — the read-only path
    /// parallel workers share.
    ///
    /// # Panics
    ///
    /// Panics if function `i` has not been materialized (call
    /// [`MinHasher::ensure_functions`] first).
    pub fn hash_ready(&self, i: usize, v: &SparseVector) -> u32 {
        let (a, b) = self.params[i];
        let mut min = u64::MAX;
        for &e in v.indices() {
            let h = mix64(e as u64 ^ a) ^ b;
            if h < min {
                min = h;
            }
        }
        if min == u64::MAX {
            u32::MAX
        } else {
            // Truncate the injective 64-bit value; spurious equality between
            // different argmin elements has probability ~2⁻³².
            (min & 0xFFFF_FFFF) as u32
        }
    }

    /// The element-major, register-blocked range kernel: the `hi − lo` slots
    /// are cut into `MIN_BLOCK`-wide blocks; per block, one pass over `v`'s
    /// elements updates `MIN_BLOCK` running minima held in an on-stack array,
    /// so the inner loop is a fixed-width bundle of independent mix-and-min
    /// chains (branch-free, the min lowers to a select) with no memory
    /// traffic on the minima. Values are identical to evaluating
    /// [`MinHasher::hash_ready`] per slot: a minimum is order-independent.
    fn range_minima(&self, v: &SparseVector, lo: u32, hi: u32, mins: &mut Vec<u64>) {
        let w = (hi - lo) as usize;
        mins.clear();
        mins.resize(w, u64::MAX);
        let keys = &self.params[lo as usize..hi as usize];
        let elems = v.indices();
        let mut base = 0usize;
        while base + MIN_BLOCK <= w {
            let mut ka = [0u64; MIN_BLOCK];
            let mut kb = [0u64; MIN_BLOCK];
            for (t, &(a, b)) in keys[base..base + MIN_BLOCK].iter().enumerate() {
                ka[t] = a;
                kb[t] = b;
            }
            let mut m = [u64::MAX; MIN_BLOCK];
            for &e in elems {
                let e = e as u64;
                for t in 0..MIN_BLOCK {
                    let h = mix64(opaque_u64(e ^ ka[t])) ^ kb[t];
                    m[t] = m[t].min(h);
                }
            }
            mins[base..base + MIN_BLOCK].copy_from_slice(&m);
            base += MIN_BLOCK;
        }
        if base < w {
            // Remainder block: the original element-major sweep over the
            // trailing `< MIN_BLOCK` slots.
            let tail_keys = &keys[base..];
            let tail = &mut mins[base..];
            for &e in elems {
                let e = e as u64;
                for (m, &(a, b)) in tail.iter_mut().zip(tail_keys) {
                    let h = mix64(opaque_u64(e ^ a)) ^ b;
                    *m = (*m).min(h);
                }
            }
        }
    }

    /// Compute hashes `lo..hi` for `v`, appending to `out` (whose length
    /// must be `lo`). The pass reuses the hasher's internal scratch, so
    /// steady-state calls perform no heap allocation beyond the
    /// signature's own growth.
    pub fn hash_range_into(&mut self, v: &SparseVector, lo: u32, hi: u32, out: &mut Vec<u32>) {
        debug_assert_eq!(out.len(), lo as usize);
        self.ensure_functions(hi as usize);
        let mut scratch = std::mem::take(&mut self.scratch);
        self.range_minima(v, lo, hi, &mut scratch.mins);
        out.extend(scratch.mins.iter().map(|&m| truncate_min(m)));
        self.scratch = scratch;
    }

    /// Compute hashes `lo..hi` for `v` into a fresh buffer — the read-only
    /// building block parallel hashing splices from. Functions must already
    /// be materialized to `hi`; values are identical to what
    /// [`MinHasher::hash_range_into`] appends for the same range.
    pub fn hash_range_packed(&self, v: &SparseVector, lo: u32, hi: u32) -> Vec<u32> {
        let mut scratch = MinScratch::new();
        self.hash_range_packed_with(v, lo, hi, &mut scratch)
    }

    /// [`MinHasher::hash_range_packed`] with a caller-owned scratch, so
    /// parallel workers hashing many signatures reuse one minima buffer
    /// instead of allocating per call.
    pub fn hash_range_packed_with(
        &self,
        v: &SparseVector,
        lo: u32,
        hi: u32,
        scratch: &mut MinScratch,
    ) -> Vec<u32> {
        self.range_minima(v, lo, hi, &mut scratch.mins);
        scratch.mins.iter().map(|&m| truncate_min(m)).collect()
    }

    /// Serialize the hasher for an index snapshot. The permutation keys are
    /// **not** written: function `i` is derived deterministically from
    /// `(seed, i)`, so the snapshot stores only `(seed, functions)` and
    /// [`MinHasher::read_wire`] rematerializes an identical bank.
    pub fn write_wire<W: std::io::Write>(&self, w: &mut WireWriter<W>) -> Result<(), WireError> {
        w.put_u64(self.seed)?;
        w.put_u64(self.params.len() as u64)?;
        Ok(())
    }

    /// Deserialize a hasher written by [`MinHasher::write_wire`],
    /// regenerating at most `min(recorded, max_functions)` hash functions.
    /// The clamp bounds regeneration by what the caller can justify instead
    /// of the payload's bare count (see [`crate::SrpHasher::read_wire`]);
    /// functions beyond it rematerialize lazily, identically.
    pub fn read_wire<R: std::io::Read>(
        r: &mut WireReader<R>,
        max_functions: usize,
    ) -> Result<Self, WireError> {
        let seed = r.get_u64()?;
        let functions = r.get_u64()?;
        let mut h = Self::new(seed);
        h.ensure_functions(functions.min(max_functions as u64) as usize);
        Ok(h)
    }

    /// Replace the contents of `out` with hashes `lo..hi` of `v`, reusing
    /// caller-owned buffers throughout — the allocation-free building block
    /// [`crate::bbit::BbitSignatures`] packs fragments from. Functions
    /// must already be materialized to `hi`.
    pub(crate) fn range_hashes_replace(
        &self,
        v: &SparseVector,
        lo: u32,
        hi: u32,
        scratch: &mut MinScratch,
        out: &mut Vec<u32>,
    ) {
        self.range_minima(v, lo, hi, &mut scratch.mins);
        out.clear();
        out.extend(scratch.mins.iter().map(|&m| truncate_min(m)));
    }
}

/// Collapse a 64-bit running minimum to the 32-bit hash value: empty sets
/// keep the `u32::MAX` sentinel, everything else truncates (spurious
/// equality between different argmin elements has probability ~2⁻³²).
#[inline]
fn truncate_min(min: u64) -> u32 {
    if min == u64::MAX {
        u32::MAX
    } else {
        (min & 0xFFFF_FFFF) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_sparse::jaccard;

    #[test]
    fn mix64_is_injective_on_samples() {
        let mut seen = std::collections::HashSet::new();
        for e in 0u64..100_000 {
            assert!(seen.insert(mix64(e)));
        }
    }

    #[test]
    fn identical_sets_always_agree() {
        let x = SparseVector::from_indices(vec![5, 9, 100, 77]);
        let mut h = MinHasher::new(3);
        for i in 0..256 {
            assert_eq!(h.hash(i, &x), h.hash(i, &x));
        }
    }

    #[test]
    fn disjoint_sets_rarely_agree() {
        let x = SparseVector::from_indices((0..50).collect());
        let y = SparseVector::from_indices((1000..1050).collect());
        let mut h = MinHasher::new(4);
        let agree = (0..512).filter(|&i| h.hash(i, &x) == h.hash(i, &y)).count();
        assert_eq!(agree, 0, "disjoint sets should essentially never agree");
    }

    #[test]
    fn collision_rate_matches_jaccard() {
        // Construct pairs with known overlap; note the supports are
        // arithmetic progressions — the structured case that exposes
        // insufficiently mixed "permutations".
        let cases = [(40usize, 10usize, 10usize), (25, 25, 50), (5, 5, 90)];
        let mut h = MinHasher::new(5);
        for (case_id, &(x_only, y_only, shared)) in cases.iter().enumerate() {
            let x: Vec<u32> = (0..x_only as u32)
                .chain(10_000..10_000 + shared as u32)
                .collect();
            let y: Vec<u32> = (5_000..5_000 + y_only as u32)
                .chain(10_000..10_000 + shared as u32)
                .collect();
            let x = SparseVector::from_indices(x);
            let y = SparseVector::from_indices(y);
            let expected = jaccard(&x, &y);
            let n = 4000;
            let agree = (0..n).filter(|&i| h.hash(i, &x) == h.hash(i, &y)).count();
            let observed = agree as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.03,
                "case {case_id}: observed {observed} expected {expected}"
            );
        }
    }

    #[test]
    fn unbiased_on_consecutive_integer_sets() {
        // Regression test for the linear-permutation bias: J = 2/3 by
        // construction, the estimate over 4096 hashes must be within 0.03.
        let x = SparseVector::from_indices((0..100).collect());
        let y = SparseVector::from_indices((20..120).collect());
        let truth = jaccard(&x, &y);
        let mut h = MinHasher::new(12345);
        let n = 4096;
        let agree = (0..n).filter(|&i| h.hash(i, &x) == h.hash(i, &y)).count();
        let observed = agree as f64 / n as f64;
        assert!(
            (observed - truth).abs() < 0.03,
            "biased minhash: observed {observed}, truth {truth}"
        );
    }

    #[test]
    fn deterministic_across_instances() {
        let x = SparseVector::from_indices(vec![1, 2, 3, 500]);
        let mut h1 = MinHasher::new(99);
        let mut h2 = MinHasher::new(99);
        h2.ensure_functions(64); // different materialization order
        for i in (0..64).rev() {
            assert_eq!(h1.hash(i, &x), h2.hash(i, &x));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let x = SparseVector::from_indices(vec![1, 2, 3, 500]);
        let mut h1 = MinHasher::new(1);
        let mut h2 = MinHasher::new(2);
        let same = (0..64)
            .filter(|&i| h1.hash(i, &x) == h2.hash(i, &x))
            .count();
        assert!(
            same < 8,
            "seeds should give different hash streams ({same} collisions)"
        );
    }

    #[test]
    fn empty_set_sentinel() {
        let mut h = MinHasher::new(6);
        assert_eq!(h.hash(0, &SparseVector::empty()), u32::MAX);
    }

    #[test]
    fn hash_range_into_matches_pointwise() {
        let x = SparseVector::from_indices(vec![3, 1, 4, 15, 92]);
        let mut h = MinHasher::new(7);
        let mut out = Vec::new();
        h.hash_range_into(&x, 0, 20, &mut out);
        h.hash_range_into(&x, 20, 50, &mut out);
        assert_eq!(out.len(), 50);
        let mut h2 = MinHasher::new(7);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, h2.hash(i, &x));
        }
    }

    #[test]
    fn packed_range_matches_scalar_path_with_shared_scratch() {
        let x = SparseVector::from_indices(vec![3, 1, 4, 15, 92, 6535]);
        let mut h = MinHasher::new(88);
        h.ensure_functions(96);
        let mut scratch = MinScratch::new();
        let mut spliced = Vec::new();
        for (lo, hi) in [(0u32, 40u32), (40, 64), (64, 96)] {
            spliced.extend(h.hash_range_packed_with(&x, lo, hi, &mut scratch));
        }
        for (i, &v) in spliced.iter().enumerate() {
            assert_eq!(v, h.hash_ready(i, &x), "hash {i}");
        }
        assert_eq!(h.hash_range_packed(&x, 0, 96), spliced);
        // Empty sets keep the sentinel through the kernel path.
        assert_eq!(
            h.hash_range_packed(&SparseVector::empty(), 0, 8),
            vec![u32::MAX; 8]
        );
    }

    #[test]
    fn wire_round_trip_rebuilds_identical_functions() {
        let x = SparseVector::from_indices(vec![2, 30, 77, 4000]);
        let mut orig = MinHasher::new(9009);
        orig.ensure_functions(96);
        let mut w = WireWriter::new(Vec::new());
        orig.write_wire(&mut w).unwrap();
        let bytes = w.into_inner();
        let mut r = WireReader::new(&bytes[..]);
        let back = MinHasher::read_wire(&mut r, 96).unwrap();
        assert_eq!(r.bytes_read(), bytes.len() as u64);
        assert_eq!(back.functions_ready(), 96);
        // Regeneration is clamped by the caller, not the payload's count.
        let clamped = MinHasher::read_wire(&mut WireReader::new(&bytes[..]), 8).unwrap();
        assert_eq!(clamped.functions_ready(), 8);
        for i in 0..96 {
            assert_eq!(back.hash_ready(i, &x), orig.hash_ready(i, &x));
        }
    }

    #[test]
    fn min_is_over_whole_support() {
        // The hash must depend on every element: removing the argmin
        // changes the value.
        let x = SparseVector::from_indices(vec![10, 20, 30, 40]);
        let mut h = MinHasher::new(8);
        let full = h.hash(0, &x);
        let mut changed = false;
        for drop in [10u32, 20, 30, 40] {
            let reduced = SparseVector::from_indices(
                x.indices().iter().copied().filter(|&e| e != drop).collect(),
            );
            if h.hash(0, &reduced) != full {
                changed = true;
            }
        }
        assert!(changed, "dropping the argmin must change the hash");
    }

    #[test]
    fn argmin_is_uniform_over_elements() {
        // Each element should be the minimum under ~1/|set| of the hash
        // functions — the defining property of (approximate) minwise
        // independence.
        let elems: Vec<u32> = (0..16).map(|i| i * 1000 + 7).collect();
        let _x = SparseVector::from_indices(elems.clone());
        let mut h = MinHasher::new(9);
        let n = 8000;
        let mut counts = [0usize; 16];
        for i in 0..n {
            let (a, b) = {
                h.ensure_functions(i + 1);
                h.params[i]
            };
            let arg = elems
                .iter()
                .enumerate()
                .min_by_key(|(_, &e)| mix64(e as u64 ^ a) ^ b)
                .unwrap()
                .0;
            counts[arg] += 1;
        }
        let expected = n as f64 / 16.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < expected * 0.25,
                "element {i} was argmin {c} times (expected ~{expected})"
            );
        }
    }
}
