//! p-stable quantized projections: the LSH family for L2 distance
//! (Datar, Immorlica, Indyk & Mirrokni, SoCG'04).
//!
//! Hash `i` draws a Gaussian projection vector `a_i` (2-stable for L2) and
//! a uniform offset `b_i ∈ [0, r)`, and buckets the line projection:
//! `h_i(x) = ⌊(a_i·x + b_i)/r⌋`. Two points at Euclidean distance `d`
//! collide with the probability of [`crate::family::e2lsh_collision_at_distance`],
//! monotone decreasing in `d` — so on the `s = 1/(1 + d)` similarity scale
//! the family satisfies Charikar's contract with a monotone increasing
//! `p(s)` and rides the same agreement-counting machinery as SRP and
//! minhash.
//!
//! # Kernel layout
//!
//! Projection components are stored **feature-major** exactly like
//! [`crate::SrpHasher`]'s plane bank (`bank[f·stride + i]` = component `f`
//! of projection `i`): hashing a sparse vector to slots `lo..hi` is one
//! pass over its nonzeros streaming contiguous row slices into a dense
//! `f64` accumulator, then one sweep quantizing each accumulator with its
//! slot's offset. The bank is filled by scattering the pure
//! [`generate_projection`] streams, so every hash value is identical to a
//! projection-major scalar evaluation: per slot, the same `f64` terms are
//! added in the same (index) order.

use bayeslsh_numeric::wire::{WireError, WireReader, WireWriter};
use bayeslsh_numeric::{derive_seed, fan_out, Gaussian, Xoshiro256};
use bayeslsh_sparse::{Dataset, SparseVector};

use crate::signature::{
    count_int_agreements, count_int_agreements_batched, dedup_ids, SignaturePool,
};

/// Projection `index` of the `(dim, seed)` bank plus its uniform offset
/// `b/r ∈ [0, 1)` — a pure function, so projections can be generated in any
/// order and on any thread. Public so out-of-crate reference oracles
/// (property tests, benchmark baselines) can rebuild the exact streams the
/// bank scatters: `dim` Gaussian components first, then the offset draw.
pub fn generate_projection(dim: u32, seed: u64, index: usize) -> (Vec<f32>, f64) {
    let mut rng = Xoshiro256::seed_from_u64(derive_seed(seed, index as u64));
    let mut gauss = Gaussian::new();
    let components = (0..dim).map(|_| gauss.sample(&mut rng) as f32).collect();
    let offset = rng.next_f64();
    (components, offset)
}

/// Quantize one projection accumulator into its bucket id. The offset is
/// stored in units of `r` (`b/r ∈ [0, 1)`), so the bucket is
/// `⌊acc/r + b/r⌋`; the signed bucket index is truncated to 32 bits, where
/// spurious equality needs buckets exactly `2³²` apart.
#[inline]
fn bucket(acc: f64, inv_r: f64, offset_unit: f64) -> u32 {
    ((acc * inv_r + offset_unit).floor() as i64) as u32
}

/// Reusable accumulator scratch for the p-stable projection kernels; see
/// [`crate::SrpScratch`] for the ownership contract.
#[derive(Debug, Clone, Default)]
pub struct E2lshScratch {
    acc: Vec<f64>,
}

impl E2lshScratch {
    /// A fresh scratch; buffers are grown on first use and reused after.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A lazily-grown bank of p-stable quantized projections with `u32` bucket
/// outputs.
///
/// Projection `i` is generated deterministically from `(seed, i)`, so two
/// hashers with the same `(dim, seed, r)` produce identical hash streams
/// regardless of the order in which projections were first demanded.
#[derive(Debug, Clone)]
pub struct E2lshHasher {
    dim: u32,
    seed: u64,
    /// Bucket width `r` of `h(x) = ⌊(a·x + b)/r⌋`.
    r: f64,
    /// Feature-major component bank: `bank[f·stride + i]`.
    bank: Vec<f32>,
    /// Per-projection uniform offsets, in units of `r` (`b/r ∈ [0, 1)`).
    offsets: Vec<f64>,
    /// Row width of the bank (projection capacity); grows geometrically.
    stride: usize,
    /// Total component draws, for memory/throughput accounting.
    components_generated: u64,
    /// Reusable accumulator for the `&mut self` hashing paths.
    scratch: E2lshScratch,
}

impl E2lshHasher {
    /// A hasher over a `dim`-dimensional space with bucket width `r`.
    ///
    /// # Panics
    ///
    /// Panics unless `r` is finite and positive.
    pub fn new(dim: u32, seed: u64, r: f64) -> Self {
        assert!(r.is_finite() && r > 0.0, "E2LSH bucket width must be > 0");
        Self {
            dim,
            seed,
            r,
            bank: Vec::new(),
            offsets: Vec::new(),
            stride: 0,
            components_generated: 0,
            scratch: E2lshScratch::new(),
        }
    }

    /// Dimensionality of the input space.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Bucket width `r`.
    pub fn r(&self) -> f64 {
        self.r
    }

    /// Number of projections materialized so far.
    pub fn functions_ready(&self) -> usize {
        self.offsets.len()
    }

    /// Grow every feature row to at least `need` projection slots,
    /// relocating the filled prefixes (geometric growth, like the SRP bank).
    fn grow_stride(&mut self, need: usize) {
        if need <= self.stride {
            return;
        }
        let mut stride = self.stride.max(64);
        while stride < need {
            stride *= 2;
        }
        let dim = self.dim as usize;
        let filled = self.offsets.len();
        let mut grown = vec![0.0f32; dim * stride];
        if filled > 0 {
            for f in 0..dim {
                grown[f * stride..f * stride + filled]
                    .copy_from_slice(&self.bank[f * self.stride..f * self.stride + filled]);
            }
        }
        self.bank = grown;
        self.stride = stride;
    }

    /// Scatter one generated projection (a `dim`-length column) into slot
    /// `index` of every feature row.
    fn scatter(&mut self, index: usize, components: &[f32]) {
        let stride = self.stride;
        for (f, &c) in components.iter().enumerate() {
            self.bank[f * stride + index] = c;
        }
    }

    /// Materialize projections `0..n`.
    pub fn ensure_functions(&mut self, n: usize) {
        if n <= self.offsets.len() {
            return;
        }
        self.grow_stride(n);
        for index in self.offsets.len()..n {
            let (components, offset) = generate_projection(self.dim, self.seed, index);
            self.scatter(index, &components);
            self.offsets.push(offset);
            self.components_generated += self.dim as u64;
        }
    }

    /// Materialize projections `0..n` with up to `threads` workers.
    /// Projection `i` is a pure function of `(seed, i)`, so the result is
    /// identical to [`E2lshHasher::ensure_functions`] whatever the thread
    /// count.
    pub fn ensure_functions_par(&mut self, n: usize, threads: usize) {
        let ready = self.offsets.len();
        if ready >= n {
            return;
        }
        self.grow_stride(n);
        let missing = n - ready;
        let (dim, seed) = (self.dim, self.seed);
        let columns = fan_out(missing, threads, |_, range| {
            range
                .map(|off| generate_projection(dim, seed, ready + off))
                .collect::<Vec<_>>()
        });
        for (off, (components, offset)) in columns.into_iter().flatten().enumerate() {
            self.scatter(ready + off, &components);
            debug_assert_eq!(self.offsets.len(), ready + off);
            self.offsets.push(offset);
        }
        self.components_generated += missing as u64 * dim as u64;
    }

    /// Bucket of projection `i` against `v` (materializing if needed).
    pub fn hash(&mut self, i: usize, v: &SparseVector) -> u32 {
        self.ensure_functions(i + 1);
        self.hash_ready(i, v)
    }

    /// Bucket of projection `i` against `v` without materialization — a
    /// per-slot gather; prefer the range kernels anywhere more than one
    /// hash is needed.
    ///
    /// # Panics
    ///
    /// Panics if projection `i` has not been materialized.
    pub fn hash_ready(&self, i: usize, v: &SparseVector) -> u32 {
        assert!(i < self.offsets.len(), "projection {i} not materialized");
        let stride = self.stride;
        let mut acc = 0.0f64;
        for (idx, val) in v.iter() {
            acc += self.bank[idx as usize * stride + i] as f64 * val as f64;
        }
        bucket(acc, 1.0 / self.r, self.offsets[i])
    }

    /// The feature-major projection kernel: one pass over `v`'s nonzeros
    /// accumulating `acc[j] = dot(a_{lo+j}, v)` for every `j < hi − lo` at
    /// once; per slot the `f64` terms are added in exactly the per-slot
    /// scalar path's (index) order, making every bucket identical to that
    /// path.
    fn project_ready(&self, v: &SparseVector, lo: u32, hi: u32, acc: &mut [f64]) {
        let (lo, hi) = (lo as usize, hi as usize);
        // Real assert: the geometrically-grown bank has zero-filled slots
        // past the materialized prefix, so an unmaterialized range would
        // read garbage silently (see `SrpHasher::project_ready`).
        assert!(
            hi <= self.offsets.len(),
            "projections not materialized to {hi}"
        );
        debug_assert_eq!(acc.len(), hi - lo);
        acc.fill(0.0);
        let stride = self.stride;
        for (idx, val) in v.iter() {
            let base = idx as usize * stride;
            let row = &self.bank[base + lo..base + hi];
            let val = val as f64;
            for (a, &c) in acc.iter_mut().zip(row) {
                *a += c as f64 * val;
            }
        }
    }

    /// Compute buckets `lo..hi` for `v`, appending to `out` (whose length
    /// must be `lo`). The pass reuses the hasher's internal scratch, so
    /// steady-state calls perform no heap allocation beyond the signature's
    /// own growth.
    pub fn hash_range_into(&mut self, v: &SparseVector, lo: u32, hi: u32, out: &mut Vec<u32>) {
        debug_assert_eq!(out.len(), lo as usize);
        if lo >= hi {
            return;
        }
        self.ensure_functions(hi as usize);
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.acc.resize((hi - lo) as usize, 0.0);
        self.project_ready(v, lo, hi, &mut scratch.acc);
        let inv_r = 1.0 / self.r;
        let offsets = &self.offsets[lo as usize..hi as usize];
        out.extend(
            scratch
                .acc
                .iter()
                .zip(offsets)
                .map(|(&a, &b)| bucket(a, inv_r, b)),
        );
        self.scratch = scratch;
    }

    /// Compute buckets `lo..hi` for `v` into a fresh buffer — the read-only
    /// building block parallel hashing splices from. Projections must
    /// already be materialized to `hi`; values are identical to what
    /// [`E2lshHasher::hash_range_into`] appends for the same range.
    pub fn hash_range_packed(&self, v: &SparseVector, lo: u32, hi: u32) -> Vec<u32> {
        let mut scratch = E2lshScratch::new();
        self.hash_range_packed_with(v, lo, hi, &mut scratch)
    }

    /// [`E2lshHasher::hash_range_packed`] with a caller-owned scratch, so
    /// parallel workers hashing many signatures reuse one accumulator
    /// instead of allocating per call.
    pub fn hash_range_packed_with(
        &self,
        v: &SparseVector,
        lo: u32,
        hi: u32,
        scratch: &mut E2lshScratch,
    ) -> Vec<u32> {
        if lo >= hi {
            return Vec::new();
        }
        scratch.acc.resize((hi - lo) as usize, 0.0);
        self.project_ready(v, lo, hi, &mut scratch.acc);
        let inv_r = 1.0 / self.r;
        let offsets = &self.offsets[lo as usize..hi as usize];
        scratch
            .acc
            .iter()
            .zip(offsets)
            .map(|(&a, &b)| bucket(a, inv_r, b))
            .collect()
    }

    /// Total Gaussian components generated (throughput accounting).
    pub fn components_generated(&self) -> u64 {
        self.components_generated
    }

    /// Serialize the hasher for an index snapshot. The bank is **not**
    /// written: every projection is a pure function of `(seed, index)`, so
    /// the snapshot stores only `(dim, seed, r, functions)` and
    /// [`E2lshHasher::read_wire`] rematerializes an identical bank.
    pub fn write_wire<W: std::io::Write>(&self, w: &mut WireWriter<W>) -> Result<(), WireError> {
        w.put_u32(self.dim)?;
        w.put_u64(self.seed)?;
        w.put_f64(self.r)?;
        w.put_u64(self.offsets.len() as u64)?;
        Ok(())
    }

    /// Deserialize a hasher written by [`E2lshHasher::write_wire`],
    /// regenerating at most `min(recorded, max_functions)` projections with
    /// up to `threads` workers. The clamp bounds regeneration by what the
    /// caller can justify instead of the payload's bare count (see
    /// [`crate::SrpHasher::read_wire`]); a non-positive or non-finite
    /// recorded bucket width is rejected as corrupt.
    pub fn read_wire<R: std::io::Read>(
        r: &mut WireReader<R>,
        threads: usize,
        max_functions: usize,
    ) -> Result<Self, WireError> {
        let dim = r.get_u32()?;
        let seed = r.get_u64()?;
        let width = r.get_f64()?;
        if !(width.is_finite() && width > 0.0) {
            return Err(WireError::corrupt(format!(
                "invalid E2LSH bucket width {width}"
            )));
        }
        let functions = r.get_u64()?;
        let mut h = Self::new(dim, seed, width);
        h.ensure_functions_par(functions.min(max_functions as u64) as usize, threads);
        Ok(h)
    }
}

/// Integer bucket signatures from p-stable quantized projections.
///
/// Storage, lazy extension, and the parallel chunk/splice contract mirror
/// [`crate::IntSignatures`]; only the hasher differs, so the same
/// agreement-counting kernels serve both.
#[derive(Debug, Clone)]
pub struct ProjSignatures {
    hasher: E2lshHasher,
    sigs: Vec<Vec<u32>>,
    total: u64,
    /// Depth hint (hashes) for up-front signature reservation.
    hint: u32,
}

impl ProjSignatures {
    /// A pool for `n_objects` objects hashing through `hasher`.
    pub fn new(hasher: E2lshHasher, n_objects: usize) -> Self {
        Self {
            hasher,
            sigs: vec![Vec::new(); n_objects],
            total: 0,
            hint: 0,
        }
    }

    /// The raw bucket values of `id`'s signature.
    pub fn raw(&self, id: u32) -> &[u32] {
        &self.sigs[id as usize]
    }

    /// Number of object slots the pool holds (hashed or not).
    pub fn n_objects(&self) -> usize {
        self.sigs.len()
    }

    /// Borrow the underlying hasher.
    pub fn hasher(&self) -> &E2lshHasher {
        &self.hasher
    }

    /// Hash an out-of-pool vector (e.g. an ad-hoc query) through the same
    /// projection bank, extending `sigs` with hashes `lo..hi`; see
    /// [`crate::IntSignatures::hash_external`] for the contract.
    pub fn hash_external(&mut self, v: &SparseVector, lo: u32, hi: u32, sigs: &mut Vec<u32>) {
        self.hasher.hash_range_into(v, lo, hi, sigs);
    }

    /// Make room for objects `0..n_objects`, keeping existing signatures.
    pub fn grow_to(&mut self, n_objects: usize) {
        if self.sigs.len() < n_objects {
            self.sigs.resize(n_objects, Vec::new());
        }
    }

    /// Extend the signatures of `ids` to at least `n` hashes with up to
    /// `threads` workers; see [`crate::BitSignatures::par_ensure_ids`] for
    /// the chunk/splice contract (pool state is identical to serial
    /// `ensure` calls, duplicates included).
    pub fn par_ensure_ids(&mut self, data: &Dataset, ids: &[u32], n: u32, threads: usize) {
        self.grow_to(data.len());
        let work: Vec<(u32, u32)> = dedup_ids(ids)
            .filter(|&id| (self.sigs[id as usize].len() as u32) < n)
            .map(|id| (id, self.sigs[id as usize].len() as u32))
            .collect();
        if work.is_empty() {
            return;
        }
        self.hasher.ensure_functions_par(n as usize, threads);
        if work.len() == 1 {
            let (id, cur) = work[0];
            let v = data.vector(id);
            let hasher = &self.hasher;
            let chunks = fan_out((n - cur) as usize, threads, |_, r| {
                let mut scratch = E2lshScratch::new();
                hasher.hash_range_packed_with(
                    v,
                    cur + r.start as u32,
                    cur + r.end as u32,
                    &mut scratch,
                )
            });
            let slot = &mut self.sigs[id as usize];
            for c in chunks {
                slot.extend(c);
            }
            self.total += (n - cur) as u64;
            return;
        }
        let hasher = &self.hasher;
        let work_ref = &work;
        let chunks = fan_out(work.len(), threads, |_, r| {
            // One accumulator scratch per worker, reused across its ids.
            let mut scratch = E2lshScratch::new();
            work_ref[r]
                .iter()
                .map(|&(id, cur)| {
                    hasher.hash_range_packed_with(data.vector(id), cur, n, &mut scratch)
                })
                .collect::<Vec<_>>()
        });
        for (&(id, cur), buf) in work.iter().zip(chunks.into_iter().flatten()) {
            self.sigs[id as usize].extend(buf);
            self.total += (n - cur) as u64;
        }
    }

    /// Serialize the pool (hasher metadata + every signature) for an index
    /// snapshot; see [`crate::BitSignatures::write_wire`] for the contract.
    pub fn write_wire<W: std::io::Write>(&self, w: &mut WireWriter<W>) -> Result<(), WireError> {
        self.hasher.write_wire(w)?;
        w.put_u64(self.sigs.len() as u64)?;
        for sig in &self.sigs {
            w.put_u32(sig.len() as u32)?;
            for &m in sig {
                w.put_u32(m)?;
            }
        }
        w.put_u64(self.total)?;
        Ok(())
    }

    /// Deserialize a pool written by [`ProjSignatures::write_wire`],
    /// validating the hashing-cost accounting against the stored depths.
    /// Projection regeneration is bounded by `max(deepest stored signature,
    /// depth_hint)` — see [`crate::BitSignatures::read_wire`] for the
    /// untrusted-input rationale.
    pub fn read_wire<R: std::io::Read>(
        r: &mut WireReader<R>,
        threads: usize,
        depth_hint: u32,
    ) -> Result<Self, WireError> {
        let mut hasher = E2lshHasher::read_wire(r, threads, depth_hint as usize)?;
        let n = r.get_u64()?;
        let mut sigs = Vec::with_capacity(n.min(65_536) as usize);
        let mut sum = 0u64;
        let mut deepest = 0u32;
        for _ in 0..n {
            let len = r.get_u32()?;
            let mut sig = Vec::with_capacity(len.min(65_536) as usize);
            for _ in 0..len {
                sig.push(r.get_u32()?);
            }
            sum += len as u64;
            deepest = deepest.max(len);
            sigs.push(sig);
        }
        let total = r.get_u64()?;
        if total != sum {
            return Err(WireError::corrupt(format!(
                "hash accounting {total} disagrees with stored depths {sum}"
            )));
        }
        hasher.ensure_functions_par(deepest as usize, threads);
        Ok(Self {
            hasher,
            sigs,
            total,
            hint: 0,
        })
    }

    /// Hash an out-of-pool vector to `n` buckets with up to `threads`
    /// workers, splitting the hash range. Identical to
    /// [`ProjSignatures::hash_external`] over `0..n`.
    pub fn hash_external_par(&mut self, v: &SparseVector, n: u32, threads: usize) -> Vec<u32> {
        self.hasher.ensure_functions_par(n as usize, threads);
        self.hash_external_ready(v, n, threads)
    }

    /// Whether [`ProjSignatures::hash_external_ready`] can serve `n` hashes
    /// right now.
    pub fn external_ready(&self, n: u32) -> bool {
        self.hasher.functions_ready() >= n as usize
    }

    /// Materialize the projection bank for `n`-hash external hashing up
    /// front, so subsequent [`ProjSignatures::hash_external_ready`] calls
    /// work through `&self` (the shared-reader serving path).
    pub fn prepare_external(&mut self, n: u32, threads: usize) {
        self.hasher.ensure_functions_par(n as usize, threads);
    }

    /// Read-only external hashing: identical output to
    /// [`ProjSignatures::hash_external_par`], but through `&self`. The
    /// projection bank must already cover `n`; many reader threads may call
    /// this concurrently.
    pub fn hash_external_ready(&self, v: &SparseVector, n: u32, threads: usize) -> Vec<u32> {
        debug_assert!(self.external_ready(n), "projection bank not prepared");
        let hasher = &self.hasher;
        let chunks = fan_out(n as usize, threads, |_, r| {
            let mut scratch = E2lshScratch::new();
            hasher.hash_range_packed_with(v, r.start as u32, r.end as u32, &mut scratch)
        });
        chunks.into_iter().flatten().collect()
    }

    /// Drop object `id`'s signature and release its hashes from the cost
    /// accounting; see [`crate::BitSignatures::clear`].
    pub fn clear(&mut self, id: u32) {
        let slot = &mut self.sigs[id as usize];
        self.total -= slot.len() as u64;
        slot.clear();
        slot.shrink_to_fit();
    }
}

impl SignaturePool for ProjSignatures {
    fn ensure(&mut self, id: u32, v: &SparseVector, n: u32) {
        let cur = self.sigs[id as usize].len() as u32;
        if n <= cur {
            return;
        }
        if cur == 0 && self.sigs[id as usize].capacity() == 0 && self.hint > n {
            // First extension: allocate the advised full depth once.
            self.sigs[id as usize].reserve_exact(self.hint as usize);
        }
        self.hasher
            .hash_range_into(v, cur, n, &mut self.sigs[id as usize]);
        self.total += (n - cur) as u64;
    }

    fn len(&self, id: u32) -> u32 {
        self.sigs[id as usize].len() as u32
    }

    fn agreements(&self, a: u32, b: u32, lo: u32, hi: u32) -> u32 {
        count_int_agreements(&self.sigs[a as usize], &self.sigs[b as usize], lo, hi)
    }

    fn agreements_batched(&self, a: u32, others: &[u32], lo: u32, hi: u32, out: &mut Vec<u32>) {
        count_int_agreements_batched(
            &self.sigs[a as usize],
            others.iter().map(|&b| self.sigs[b as usize].as_slice()),
            lo,
            hi,
            out,
        );
    }

    fn total_hashes(&self) -> u64 {
        self.total
    }

    fn depth_hint(&mut self, n: u32) {
        self.hint = self.hint.max(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::e2lsh_collision_at_distance;
    use bayeslsh_sparse::l2_distance;

    fn random_dense_vector(dim: u32, rng: &mut Xoshiro256) -> SparseVector {
        let pairs: Vec<(u32, f32)> = (0..dim)
            .map(|i| (i, (rng.next_f64() * 2.0 - 1.0) as f32))
            .collect();
        SparseVector::from_pairs(pairs)
    }

    /// The projection-major scalar oracle: regenerate projection `i` as a
    /// column and accumulate one `f64` dot product over the nonzeros.
    fn oracle_hash(dim: u32, seed: u64, r: f64, i: usize, v: &SparseVector) -> u32 {
        let (components, offset) = generate_projection(dim, seed, i);
        let mut acc = 0.0f64;
        for (idx, val) in v.iter() {
            acc += components[idx as usize] as f64 * val as f64;
        }
        ((acc / r + offset).floor() as i64) as u32
    }

    #[test]
    fn collision_rate_matches_model() {
        // Empirical check of the Datar et al. closed form with 4000
        // projections, at several distances around the bucket width.
        let mut rng = Xoshiro256::seed_from_u64(61);
        let dim = 48u32;
        let r = 2.0;
        let mut hasher = E2lshHasher::new(dim, 17, r);
        for trial in 0..4 {
            let x = random_dense_vector(dim, &mut rng);
            let y = random_dense_vector(dim, &mut rng);
            let d = l2_distance(&x, &y);
            let expected = e2lsh_collision_at_distance(d, r);
            let n = 4000usize;
            let agree = (0..n)
                .filter(|&i| hasher.hash(i, &x) == hasher.hash(i, &y))
                .count();
            let observed = agree as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.03,
                "trial {trial}: d={d} observed {observed} expected {expected}"
            );
        }
    }

    #[test]
    fn identical_vectors_always_collide() {
        let mut rng = Xoshiro256::seed_from_u64(62);
        let mut hasher = E2lshHasher::new(32, 9, 1.0);
        let x = random_dense_vector(32, &mut rng);
        for i in 0..512 {
            assert_eq!(hasher.hash(i, &x), hasher.hash(i, &x));
        }
    }

    #[test]
    fn deterministic_across_instances_and_demand_order() {
        let x = SparseVector::from_pairs(vec![(3, 1.0), (17, -0.5), (29, 2.0)]);
        let mut h1 = E2lshHasher::new(32, 1234, 0.75);
        let mut h2 = E2lshHasher::new(32, 1234, 0.75);
        let vals1: Vec<u32> = (0..128).map(|i| h1.hash(i, &x)).collect();
        h2.ensure_functions(128);
        let vals2: Vec<u32> = (0..128).map(|i| h2.hash(i, &x)).collect();
        assert_eq!(vals1, vals2);
    }

    #[test]
    fn range_kernel_matches_scalar_oracle() {
        // Extension patterns exercising bank growth and odd boundaries.
        let mut rng = Xoshiro256::seed_from_u64(63);
        let x = random_dense_vector(40, &mut rng);
        let mut h = E2lshHasher::new(40, 91, 3.0);
        let mut out = Vec::new();
        for &(lo, hi) in &[(0u32, 30u32), (30, 64), (64, 200), (200, 513)] {
            h.hash_range_into(&x, lo, hi, &mut out);
        }
        assert_eq!(out.len(), 513);
        for (i, &got) in out.iter().enumerate() {
            let want = oracle_hash(40, 91, 3.0, i, &x);
            assert_eq!(got, want, "hash {i}");
            assert_eq!(h.hash_ready(i, &x), want, "ready hash {i}");
        }
    }

    #[test]
    fn packed_range_matches_appended_with_shared_scratch() {
        let mut rng = Xoshiro256::seed_from_u64(64);
        let x = random_dense_vector(24, &mut rng);
        let mut h = E2lshHasher::new(24, 88, 1.5);
        let mut appended = Vec::new();
        h.hash_range_into(&x, 0, 96, &mut appended);
        let mut scratch = E2lshScratch::new();
        let mut spliced = Vec::new();
        for (lo, hi) in [(0u32, 40u32), (40, 64), (64, 96)] {
            spliced.extend(h.hash_range_packed_with(&x, lo, hi, &mut scratch));
        }
        assert_eq!(appended, spliced);
        assert_eq!(h.hash_range_packed(&x, 0, 96), spliced);
    }

    #[test]
    fn parallel_materialization_matches_serial() {
        let x = SparseVector::from_pairs(vec![(2, 1.0), (9, -0.75), (31, 0.5)]);
        let mut serial = E2lshHasher::new(48, 909, 2.0);
        serial.ensure_functions(200);
        for threads in [1usize, 2, 4, 8] {
            let mut par = E2lshHasher::new(48, 909, 2.0);
            par.ensure_functions_par(64, threads);
            par.ensure_functions_par(200, threads); // extend an existing bank
            assert_eq!(par.functions_ready(), 200);
            assert_eq!(par.components_generated(), serial.components_generated());
            for i in 0..200 {
                assert_eq!(
                    par.hash_ready(i, &x),
                    serial.hash_ready(i, &x),
                    "projection {i}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn wider_buckets_collide_more_often() {
        let mut rng = Xoshiro256::seed_from_u64(65);
        let x = random_dense_vector(32, &mut rng);
        let y = random_dense_vector(32, &mut rng);
        let mut narrow = E2lshHasher::new(32, 5, 0.25);
        let mut wide = E2lshHasher::new(32, 5, 8.0);
        let n = 1000;
        let agree_narrow = (0..n)
            .filter(|&i| narrow.hash(i, &x) == narrow.hash(i, &y))
            .count();
        let agree_wide = (0..n)
            .filter(|&i| wide.hash(i, &x) == wide.hash(i, &y))
            .count();
        assert!(
            agree_wide > agree_narrow,
            "wide {agree_wide} vs narrow {agree_narrow}"
        );
    }

    #[test]
    fn hasher_wire_round_trip() {
        let x = SparseVector::from_pairs(vec![(1, 0.7), (19, -1.1), (40, 0.4)]);
        let mut orig = E2lshHasher::new(48, 4711, 1.25);
        orig.ensure_functions(130);
        let mut w = WireWriter::new(Vec::new());
        orig.write_wire(&mut w).unwrap();
        let bytes = w.into_inner();
        for threads in [1usize, 4] {
            let mut r = WireReader::new(&bytes[..]);
            let back = E2lshHasher::read_wire(&mut r, threads, 130).unwrap();
            assert_eq!(r.bytes_read(), bytes.len() as u64);
            assert_eq!(back.dim(), orig.dim());
            assert_eq!(back.r(), orig.r());
            assert_eq!(back.functions_ready(), 130);
            for i in 0..130 {
                assert_eq!(back.hash_ready(i, &x), orig.hash_ready(i, &x));
            }
        }
        // The caller's clamp bounds regeneration.
        let clamped = E2lshHasher::read_wire(&mut WireReader::new(&bytes[..]), 1, 32).unwrap();
        assert_eq!(clamped.functions_ready(), 32);
        // A non-positive bucket width is a typed error.
        let mut w = WireWriter::new(Vec::new());
        w.put_u32(8).unwrap();
        w.put_u64(1).unwrap();
        w.put_f64(-1.0).unwrap();
        w.put_u64(0).unwrap();
        let bytes = w.into_inner();
        assert!(E2lshHasher::read_wire(&mut WireReader::new(&bytes[..]), 1, 64).is_err());
    }

    #[test]
    fn pool_par_ensure_matches_serial_and_wire_round_trips() {
        let mut rng = Xoshiro256::seed_from_u64(66);
        let mut data = Dataset::new(64);
        for _ in 0..6 {
            data.push(random_dense_vector(64, &mut rng));
        }
        let mut serial = ProjSignatures::new(E2lshHasher::new(64, 23, 2.0), data.len());
        for (id, v) in data.iter() {
            serial.ensure(id, v, 100);
        }
        serial.ensure(2, data.vector(2), 300);
        for threads in [1usize, 3, 8] {
            let mut par = ProjSignatures::new(E2lshHasher::new(64, 23, 2.0), data.len());
            let ids: Vec<u32> = (0..data.len() as u32).collect();
            par.par_ensure_ids(&data, &ids, 100, threads);
            // Single-id extension exercises the range-split path.
            par.par_ensure_ids(&data, &[2], 300, threads);
            assert_eq!(par.total_hashes(), serial.total_hashes());
            for id in 0..data.len() as u32 {
                assert_eq!(par.raw(id), serial.raw(id), "id {id} threads {threads}");
            }
        }
        // Wire round trip preserves signatures and extends identically.
        let mut w = WireWriter::new(Vec::new());
        serial.write_wire(&mut w).unwrap();
        let payload = w.into_inner();
        let mut r = WireReader::new(&payload[..]);
        let mut back = ProjSignatures::read_wire(&mut r, 2, 100).unwrap();
        assert_eq!(r.bytes_read(), payload.len() as u64);
        assert_eq!(back.total_hashes(), serial.total_hashes());
        for id in 0..data.len() as u32 {
            assert_eq!(back.raw(id), serial.raw(id), "id {id}");
        }
        back.ensure(1, data.vector(1), 256);
        serial.ensure(1, data.vector(1), 256);
        assert_eq!(back.raw(1), serial.raw(1));
        // Corrupt accounting is rejected.
        let mut bad = payload.clone();
        let at = bad.len() - 8;
        bad[at] ^= 1;
        assert!(ProjSignatures::read_wire(&mut WireReader::new(&bad[..]), 1, 100).is_err());
    }

    #[test]
    fn pool_agreements_and_external_paths() {
        let mut rng = Xoshiro256::seed_from_u64(67);
        let x = random_dense_vector(32, &mut rng);
        let y = random_dense_vector(32, &mut rng);
        let mut pool = ProjSignatures::new(E2lshHasher::new(32, 31, 2.0), 2);
        pool.ensure(0, &x, 128);
        pool.ensure(1, &y, 128);
        assert_eq!(pool.len(0), 128);
        assert_eq!(pool.agreements(0, 0, 0, 128), 128);
        let naive = (0..128)
            .filter(|&i| pool.raw(0)[i] == pool.raw(1)[i])
            .count() as u32;
        assert_eq!(pool.agreements(0, 1, 0, 128), naive);
        let mut batched = Vec::new();
        pool.agreements_batched(0, &[1, 0], 16, 100, &mut batched);
        assert_eq!(batched, vec![pool.agreements(0, 1, 16, 100), 100 - 16]);
        // External hashing matches the pooled stream and the ready path.
        let mut expect = Vec::new();
        pool.hash_external(&x, 0, 128, &mut expect);
        assert_eq!(&expect[..], pool.raw(0));
        assert!(pool.external_ready(128));
        for threads in [1usize, 2, 8] {
            assert_eq!(pool.hash_external_ready(&x, 128, threads), expect);
            assert_eq!(pool.hash_external_par(&x, 128, threads), expect);
        }
        // Clear releases accounting.
        let before = pool.total_hashes();
        pool.clear(0);
        assert_eq!(pool.len(0), 0);
        assert_eq!(pool.total_hashes(), before - 128);
    }
}
