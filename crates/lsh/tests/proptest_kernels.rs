//! Property tests: the feature-major SRP kernel and element-major MinHash
//! kernel are bit-identical to the scalar reference oracle.
//!
//! The oracle is the historical plane-major path, rebuilt here from first
//! principles: regenerate plane `i` as a column through the pure
//! [`generate_plane`] stream, apply the storage encoding, and accumulate a
//! single `f64` dot product over the nonzeros in index order. Every bit
//! the kernels produce — through appending, packed, per-bit and pool
//! `ensure` extension paths, word-aligned and not, quantized and float —
//! must equal the oracle's.

use bayeslsh_lsh::srp::PlaneStorage;
use bayeslsh_lsh::{
    count_bbit_agreements, count_bit_agreements, count_bit_agreements_batched,
    count_int_agreements, count_int_agreements_batched, generate_plane, generate_projection,
    quantized, BbitSignatures, BitSignatures, E2lshHasher, E2lshScratch, IntSignatures, MinHasher,
    ProjSignatures, SignaturePool, SrpHasher, SrpScratch,
};
use bayeslsh_numeric::Xoshiro256;
use bayeslsh_sparse::{Dataset, SparseVector};
use proptest::prelude::*;

/// The scalar reference: sign of `dot(plane_i, v)` via a column regenerated
/// from the pure plane stream (plane-major, one gather per nonzero).
fn oracle_srp_bit(dim: u32, seed: u64, storage: PlaneStorage, i: usize, v: &SparseVector) -> bool {
    let plane = generate_plane(dim, seed, i);
    let acc = match storage {
        PlaneStorage::Quantized => {
            let enc = quantized::encode_slice(&plane);
            let mut acc = 0.0f64;
            for (idx, val) in v.iter() {
                acc += quantized::decode(enc[idx as usize]) as f64 * val as f64;
            }
            acc
        }
        PlaneStorage::Float => {
            let mut acc = 0.0f64;
            for (idx, val) in v.iter() {
                acc += plane[idx as usize] as f64 * val as f64;
            }
            acc
        }
    };
    acc >= 0.0
}

/// The E2LSH scalar reference: regenerate projection `i` as a column
/// through the pure [`generate_projection`] stream, accumulate a single
/// `f64` dot product over the nonzeros in index order, and quantize with
/// the kernel's exact arithmetic — `acc · (1/r) + b/r`, floored, truncated
/// to 32 bits (NOT `acc / r`, whose rounding can differ by one ulp).
fn oracle_e2lsh_bucket(dim: u32, seed: u64, r: f64, i: usize, v: &SparseVector) -> u32 {
    let (components, offset) = generate_projection(dim, seed, i);
    let mut acc = 0.0f64;
    for (idx, val) in v.iter() {
        acc += components[idx as usize] as f64 * val as f64;
    }
    ((acc * (1.0 / r) + offset).floor() as i64) as u32
}

/// A random sparse vector with signed weights (possibly empty).
fn random_vector(dim: u32, max_nnz: usize, rng: &mut Xoshiro256) -> SparseVector {
    let nnz = rng.next_below(max_nnz as u64 + 1) as usize;
    let pairs: Vec<(u32, f32)> = (0..nnz)
        .map(|_| {
            (
                rng.next_below(dim as u64) as u32,
                (rng.next_f64() * 2.0 - 1.0) as f32,
            )
        })
        .collect();
    SparseVector::from_pairs(pairs)
}

/// Split `0..total` into random increments, mimicking the incremental
/// `ensure` extension pattern of chunked verification.
fn random_cuts(total: u32, rng: &mut Xoshiro256) -> Vec<(u32, u32)> {
    let mut cuts = vec![0u32];
    let mut at = 0;
    while at < total {
        at = (at + 1 + rng.next_below(96) as u32).min(total);
        cuts.push(at);
    }
    cuts.windows(2).map(|w| (w[0], w[1])).collect()
}

fn storage_of(quantized: bool) -> PlaneStorage {
    if quantized {
        PlaneStorage::Quantized
    } else {
        PlaneStorage::Float
    }
}

fn bit_of(words: &[u32], i: u32) -> bool {
    (words[(i / 32) as usize] >> (i % 32)) & 1 == 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `hash_bits_into` over arbitrary (non-word-aligned) increments is
    /// bit-identical to the scalar oracle, for both storages.
    #[test]
    fn srp_incremental_extension_matches_oracle(
        seed in 0u64..500,
        dim_sel in 8u32..200,
        is_quant in 0u32..2,
        total in 1u32..300,
    ) {
        let storage = storage_of(is_quant == 1);
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xA1);
        let v = random_vector(dim_sel, 24, &mut rng);
        let mut h = SrpHasher::with_storage(dim_sel, seed, storage);
        let mut words = Vec::new();
        for (lo, hi) in random_cuts(total, &mut rng) {
            h.hash_bits_into(&v, lo, hi, &mut words);
        }
        for i in 0..total {
            let want = oracle_srp_bit(dim_sel, seed, storage, i as usize, &v);
            prop_assert_eq!(bit_of(&words, i), want, "bit {} of {}", i, total);
            prop_assert_eq!(h.hash_bit_ready(i as usize, &v), want);
        }
    }

    /// The word-aligned packed kernel (the parallel splice building block),
    /// with a shared scratch, matches the oracle.
    #[test]
    fn srp_packed_matches_oracle(
        seed in 0u64..500,
        is_quant in 0u32..2,
        words_n in 1u32..8,
    ) {
        let storage = storage_of(is_quant == 1);
        let dim = 64;
        let total = words_n * 32;
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xB2);
        let v = random_vector(dim, 16, &mut rng);
        let mut h = SrpHasher::with_storage(dim, seed, storage);
        h.ensure_planes(total as usize);
        let mut scratch = SrpScratch::new();
        let mut packed = Vec::new();
        let mut lo = 0;
        while lo < total {
            let hi = (lo + 32 * (1 + rng.next_below(3) as u32)).min(total);
            packed.extend(h.hash_bits_packed_with(&v, lo, hi, &mut scratch));
            lo = hi;
        }
        for i in 0..total {
            prop_assert_eq!(
                bit_of(&packed, i),
                oracle_srp_bit(dim, seed, storage, i as usize, &v),
                "bit {}", i
            );
        }
    }

    /// Pool-level `ensure` in increments equals a one-shot deep `ensure`
    /// and the oracle, across word-aligned and unaligned demands.
    #[test]
    fn bit_pool_extension_patterns_match_one_shot(
        seed in 0u64..300,
        total in 1u32..260,
    ) {
        let dim = 96;
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xC3);
        let v = random_vector(dim, 20, &mut rng);
        let mut data = Dataset::new(dim);
        data.push(v.clone());

        let mut incremental = BitSignatures::new(SrpHasher::new(dim, seed), 1);
        for (_, hi) in random_cuts(total, &mut rng) {
            incremental.ensure(0, &v, hi);
        }
        let mut one_shot = BitSignatures::new(SrpHasher::new(dim, seed), 1);
        one_shot.depth_hint(total); // hint must not change contents
        one_shot.ensure(0, &v, total);
        prop_assert_eq!(incremental.len(0), one_shot.len(0));
        prop_assert_eq!(incremental.raw_words(0), one_shot.raw_words(0));
        for i in 0..one_shot.len(0) {
            prop_assert_eq!(
                bit_of(one_shot.raw_words(0), i),
                oracle_srp_bit(dim, seed, PlaneStorage::Quantized, i as usize, &v)
            );
        }
    }

    /// Element-major minhash ranges equal the scalar per-slot path over
    /// arbitrary increments.
    #[test]
    fn minhash_incremental_extension_matches_scalar(
        seed in 0u64..500,
        total in 1u32..300,
        set_size in 0u64..40,
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xD4);
        let idxs: Vec<u32> = (0..set_size).map(|_| rng.next_below(10_000) as u32).collect();
        let v = SparseVector::from_indices(idxs);
        let mut h = MinHasher::new(seed);
        let mut out = Vec::new();
        for (lo, hi) in random_cuts(total, &mut rng) {
            h.hash_range_into(&v, lo, hi, &mut out);
        }
        prop_assert_eq!(out.len(), total as usize);
        for (i, &got) in out.iter().enumerate() {
            prop_assert_eq!(got, h.hash_ready(i, &v), "slot {}", i);
        }
        // And the packed read-only path over a random sub-range.
        let lo = rng.next_below(total as u64) as u32;
        let hi = lo + rng.next_below((total - lo) as u64 + 1) as u32;
        prop_assert_eq!(h.hash_range_packed(&v, lo, hi), &out[lo as usize..hi as usize]);
    }

    /// Int pool incremental `ensure` equals one-shot, and everything equals
    /// the scalar path.
    #[test]
    fn int_pool_extension_patterns_match_one_shot(
        seed in 0u64..300,
        total in 1u32..260,
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xE5);
        let idxs: Vec<u32> = (0..1 + rng.next_below(30)).map(|_| rng.next_below(5_000) as u32).collect();
        let v = SparseVector::from_indices(idxs);
        let mut incremental = IntSignatures::new(MinHasher::new(seed), 1);
        for (_, hi) in random_cuts(total, &mut rng) {
            incremental.ensure(0, &v, hi);
        }
        let mut one_shot = IntSignatures::new(MinHasher::new(seed), 1);
        one_shot.depth_hint(total);
        one_shot.ensure(0, &v, total);
        prop_assert_eq!(incremental.raw(0), one_shot.raw(0));
        let mut scalar = MinHasher::new(seed);
        for (i, &got) in one_shot.raw(0).iter().enumerate() {
            prop_assert_eq!(got, scalar.hash(i, &v), "slot {}", i);
        }
    }

    /// Word-parallel bit agreement counting — single-pair, batched free
    /// function, and the pool's batched sweep — equals a per-bit scalar
    /// loop, across aligned and unaligned ranges on incrementally-ensured
    /// signatures.
    #[test]
    fn bit_agreement_counts_match_scalar_oracle(
        seed in 0u64..400,
        total in 1u32..300,
        lo_sel in 0u32..300,
        span in 0u32..300,
    ) {
        let dim = 80;
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xF6);
        let va = random_vector(dim, 18, &mut rng);
        let vb = random_vector(dim, 18, &mut rng);
        let mut pool = BitSignatures::new(SrpHasher::new(dim, seed), 2);
        for (_, hi) in random_cuts(total, &mut rng) {
            pool.ensure(0, &va, hi);
        }
        pool.ensure(1, &vb, total);
        let depth = pool.len(0);
        let lo = lo_sel.min(depth);
        let hi = (lo + span).min(depth);
        let naive = (lo..hi).filter(|&i| pool.bit(0, i) == pool.bit(1, i)).count() as u32;
        prop_assert_eq!(pool.agreements(0, 1, lo, hi), naive);
        prop_assert_eq!(
            count_bit_agreements(pool.raw_words(0), pool.raw_words(1), lo, hi),
            naive
        );
        let mut out = Vec::new();
        count_bit_agreements_batched(
            pool.raw_words(0),
            [pool.raw_words(1), pool.raw_words(0)],
            lo,
            hi,
            &mut out,
        );
        prop_assert_eq!(&out, &[naive, hi - lo]);
        pool.agreements_batched(0, &[1, 0, 1], lo, hi, &mut out);
        prop_assert_eq!(out, vec![naive, hi - lo, naive]);
    }

    /// Batched integer agreement counting equals the single-pair count,
    /// which equals an element-wise scalar loop.
    #[test]
    fn int_agreement_counts_match_scalar_oracle(
        seed in 0u64..400,
        total in 1u32..300,
        lo_sel in 0u32..300,
        span in 0u32..300,
    ) {
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xA7);
        // Overlapping supports so a good fraction of hashes agree.
        let sa = SparseVector::from_indices(
            (0..1 + rng.next_below(25)).map(|_| rng.next_below(60) as u32).collect(),
        );
        let sb = SparseVector::from_indices(
            (0..1 + rng.next_below(25)).map(|_| rng.next_below(60) as u32).collect(),
        );
        let mut pool = IntSignatures::new(MinHasher::new(seed), 2);
        for (_, hi) in random_cuts(total, &mut rng) {
            pool.ensure(0, &sa, hi);
        }
        pool.ensure(1, &sb, total);
        let lo = lo_sel.min(total);
        let hi = (lo + span).min(total);
        let naive = pool.raw(0)[lo as usize..hi as usize]
            .iter()
            .zip(&pool.raw(1)[lo as usize..hi as usize])
            .filter(|(x, y)| x == y)
            .count() as u32;
        prop_assert_eq!(count_int_agreements(pool.raw(0), pool.raw(1), lo, hi), naive);
        let mut out = Vec::new();
        count_int_agreements_batched(pool.raw(0), [pool.raw(1), pool.raw(0)], lo, hi, &mut out);
        prop_assert_eq!(&out, &[naive, hi - lo]);
        pool.agreements_batched(0, &[1, 0], lo, hi, &mut out);
        prop_assert_eq!(out, vec![naive, hi - lo]);
    }

    /// Word-parallel b-bit fragment counting equals the low-bits-of-minhash
    /// scalar oracle for every supported `b`, across non-word-multiple
    /// depths and incremental ensure patterns (tail-mask edge cases).
    #[test]
    fn bbit_agreement_counts_match_low_bit_oracle(
        seed in 0u64..400,
        b_sel in 0u32..5,
        total in 1u32..300,
        lo_sel in 0u32..300,
        span in 0u32..300,
    ) {
        let b = [1u32, 2, 4, 8, 16][b_sel as usize];
        let mask = (1u32 << b) - 1;
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xB8);
        let sa = SparseVector::from_indices(
            (0..1 + rng.next_below(25)).map(|_| rng.next_below(60) as u32).collect(),
        );
        let sb = SparseVector::from_indices(
            (0..1 + rng.next_below(25)).map(|_| rng.next_below(60) as u32).collect(),
        );
        let mut pool = BbitSignatures::new(MinHasher::new(seed), 2, b);
        for (_, hi) in random_cuts(total, &mut rng) {
            pool.ensure(0, &sa, hi);
        }
        pool.ensure(1, &sb, total);
        let depth = pool.len(0);
        prop_assert_eq!(pool.len(1), depth);
        let lo = lo_sel.min(depth);
        let hi = (lo + span).min(depth);
        let mut reference = MinHasher::new(seed);
        let naive = (lo..hi)
            .filter(|&i| {
                reference.hash(i as usize, &sa) & mask == reference.hash(i as usize, &sb) & mask
            })
            .count() as u32;
        prop_assert_eq!(pool.agreements(0, 1, lo, hi), naive);
        let mut out = Vec::new();
        pool.agreements_batched(0, &[1, 0], lo, hi, &mut out);
        prop_assert_eq!(out, vec![naive, hi - lo]);
        // The free function over raw words agrees with the pool path.
        prop_assert_eq!(
            count_bbit_agreements(pool.raw_words(0), pool.raw_words(1), b, lo, hi),
            naive
        );
    }

    /// The feature-major E2LSH range kernel over arbitrary increments —
    /// and the per-slot gather — are bit-identical to the scalar oracle,
    /// across bucket widths.
    #[test]
    fn e2lsh_incremental_extension_matches_oracle(
        seed in 0u64..500,
        dim_sel in 8u32..200,
        r_sel in 0u32..4,
        total in 1u32..300,
    ) {
        let r = [0.5f64, 1.0, 4.0, 7.25][r_sel as usize];
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xC9);
        let v = random_vector(dim_sel, 24, &mut rng);
        let mut h = E2lshHasher::new(dim_sel, seed, r);
        let mut out = Vec::new();
        for (lo, hi) in random_cuts(total, &mut rng) {
            h.hash_range_into(&v, lo, hi, &mut out);
        }
        prop_assert_eq!(out.len(), total as usize);
        for (i, &got) in out.iter().enumerate() {
            let want = oracle_e2lsh_bucket(dim_sel, seed, r, i, &v);
            prop_assert_eq!(got, want, "slot {} of {}", i, total);
            prop_assert_eq!(h.hash_ready(i, &v), want);
        }
    }

    /// The packed read-only kernel (the parallel splice building block),
    /// with a shared scratch and a bank grown in two stages — forcing a
    /// stride relocation of the filled prefix — matches the oracle. The
    /// second growth goes through the parallel generator, which must land
    /// the same bank as the serial one.
    #[test]
    fn e2lsh_packed_matches_oracle_after_bank_growth(
        seed in 0u64..500,
        total in 65u32..300,
        threads in 1u32..5,
    ) {
        let dim = 96;
        let r = 4.0;
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xDA);
        let v = random_vector(dim, 20, &mut rng);
        let mut h = E2lshHasher::new(dim, seed, r);
        // First growth fills the minimum stride; the second (past 64)
        // must relocate those columns into the wider rows.
        h.ensure_functions(1 + rng.next_below(64) as usize);
        h.ensure_functions_par(total as usize, threads as usize);
        prop_assert_eq!(h.functions_ready(), total as usize);
        let mut scratch = E2lshScratch::new();
        let mut packed = Vec::new();
        for (lo, hi) in random_cuts(total, &mut rng) {
            packed.extend(h.hash_range_packed_with(&v, lo, hi, &mut scratch));
        }
        for (i, &got) in packed.iter().enumerate() {
            prop_assert_eq!(got, oracle_e2lsh_bucket(dim, seed, r, i, &v), "slot {}", i);
        }
    }

    /// Pool-level parallel `ensure` in increments equals a one-shot deep
    /// pool, the external-query paths, and the oracle — whatever the
    /// thread count or demand pattern.
    #[test]
    fn proj_pool_extension_patterns_match_one_shot(
        seed in 0u64..300,
        total in 1u32..260,
        threads in 1u32..5,
    ) {
        let dim = 80;
        let r = 2.0;
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xEB);
        let va = random_vector(dim, 18, &mut rng);
        let vb = random_vector(dim, 18, &mut rng);
        let mut data = Dataset::new(dim);
        data.push(va.clone());
        data.push(vb.clone());

        let mut incremental = ProjSignatures::new(E2lshHasher::new(dim, seed, r), 2);
        for (_, hi) in random_cuts(total, &mut rng) {
            incremental.par_ensure_ids(&data, &[0, 1, 0], hi, threads as usize);
        }
        let mut one_shot = ProjSignatures::new(E2lshHasher::new(dim, seed, r), 2);
        one_shot.par_ensure_ids(&data, &[0, 1], total, 1);
        for id in 0..2u32 {
            prop_assert_eq!(incremental.raw(id), one_shot.raw(id), "id {}", id);
        }
        for (i, &got) in one_shot.raw(0).iter().enumerate() {
            prop_assert_eq!(got, oracle_e2lsh_bucket(dim, seed, r, i, &va), "slot {}", i);
        }
        // External queries ride the same bank: the chunked `hash_external`
        // path and the parallel splice both reproduce the pool's stream.
        let mut ext = Vec::new();
        for (lo, hi) in random_cuts(total, &mut rng) {
            incremental.hash_external(&va, lo, hi, &mut ext);
        }
        prop_assert_eq!(ext.as_slice(), incremental.raw(0));
        prop_assert_eq!(
            incremental.hash_external_par(&vb, total, threads as usize).as_slice(),
            incremental.raw(1)
        );
    }
}
