//! Log-gamma and log-binomial-coefficient via the Lanczos approximation.

/// Lanczos coefficients for `g = 7`, `n = 9` (Godfrey/Numerical-Recipes set);
/// relative error below `2e-15` over the positive reals.
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

const LN_SQRT_TWO_PI: f64 = 0.918_938_533_204_672_7;
const PI: f64 = std::f64::consts::PI;

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation directly for `x >= 0.5` and the reflection
/// formula `Γ(x)Γ(1−x) = π / sin(πx)` below that. Accurate to ~1e-14 relative
/// error, which is far below the 1e-6-scale probabilities BayesLSH thresholds
/// on.
///
/// # Panics
/// Panics (debug) if `x <= 0`; returns `f64::INFINITY` for `x == 0` in
/// release builds, matching the pole of Γ.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x >= 0.0, "ln_gamma domain is x > 0, got {x}");
    if x == 0.0 {
        return f64::INFINITY;
    }
    if x < 0.5 {
        // Reflection: ln Γ(x) = ln(π / sin(πx)) − ln Γ(1 − x).
        return (PI / (PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let z = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (z + i as f64);
    }
    let t = z + 7.5;
    LN_SQRT_TWO_PI + (z + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of the binomial coefficient `C(n, k)`.
///
/// Returns `-inf` when `k > n` (an impossible selection has zero ways).
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn known_integer_values() {
        // Γ(n) = (n-1)!
        assert_close(ln_gamma(1.0), 0.0, 1e-12);
        assert_close(ln_gamma(2.0), 0.0, 1e-12);
        assert_close(ln_gamma(3.0), 2.0_f64.ln(), 1e-12);
        assert_close(ln_gamma(5.0), 24.0_f64.ln(), 1e-12);
        assert_close(ln_gamma(10.0), 362_880.0_f64.ln(), 1e-11);
    }

    #[test]
    fn known_half_integer_values() {
        // Γ(1/2) = sqrt(π), Γ(3/2) = sqrt(π)/2, Γ(5/2) = 3 sqrt(π)/4.
        let sqrt_pi = PI.sqrt();
        assert_close(ln_gamma(0.5), sqrt_pi.ln(), 1e-12);
        assert_close(ln_gamma(1.5), (sqrt_pi / 2.0).ln(), 1e-12);
        assert_close(ln_gamma(2.5), (3.0 * sqrt_pi / 4.0).ln(), 1e-12);
    }

    #[test]
    fn large_argument_against_factorial() {
        // ln Γ(101) = ln(100!) — compute 100! in log space exactly.
        let ln_fact: f64 = (1..=100u64).map(|i| (i as f64).ln()).sum();
        assert_close(ln_gamma(101.0), ln_fact, 1e-9);
    }

    #[test]
    fn recurrence_gamma_x_plus_one() {
        // Γ(x+1) = x Γ(x) for assorted x.
        for &x in &[0.1, 0.3, 0.7, 1.3, 2.9, 7.5, 33.3, 120.0] {
            assert_close(ln_gamma(x + 1.0), ln_gamma(x) + x.ln(), 1e-10);
        }
    }

    #[test]
    fn reflection_branch_small_x() {
        // Γ(0.25) = 3.6256099082219083...
        assert_close(ln_gamma(0.25), 3.625_609_908_221_908_f64.ln(), 1e-11);
        // Γ(0.1) = 9.513507698668732...
        assert_close(ln_gamma(0.1), 9.513_507_698_668_732_f64.ln(), 1e-11);
    }

    #[test]
    fn pole_at_zero() {
        assert!(ln_gamma(0.0).is_infinite());
    }

    #[test]
    fn ln_choose_small_cases() {
        assert_close(ln_choose(5, 2), 10.0_f64.ln(), 1e-12);
        assert_close(ln_choose(10, 5), 252.0_f64.ln(), 1e-11);
        assert_close(ln_choose(52, 5), 2_598_960.0_f64.ln(), 1e-10);
        assert_eq!(ln_choose(4, 0), 0.0);
        assert_eq!(ln_choose(4, 4), 0.0);
    }

    #[test]
    fn ln_choose_out_of_range() {
        assert_eq!(ln_choose(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn ln_choose_symmetry() {
        for n in [10u64, 50, 200, 1000] {
            for k in [1u64, 3, 7] {
                let a = ln_choose(n, k);
                let b = ln_choose(n, n - k);
                assert_close(a, b, 1e-9);
            }
        }
    }

    #[test]
    fn ln_choose_pascal_recurrence() {
        // C(n, k) = C(n-1, k-1) + C(n-1, k), verified in linear space for
        // moderate n where exp() is exact enough.
        for n in [10u64, 20, 40] {
            for k in 1..n {
                let lhs = ln_choose(n, k).exp();
                let rhs = ln_choose(n - 1, k - 1).exp() + ln_choose(n - 1, k).exp();
                assert!((lhs - rhs).abs() / rhs < 1e-10, "n={n} k={k}");
            }
        }
    }
}
