//! The (regularized, incomplete) beta function.
//!
//! `I_x(a, b)` is the CDF of the Beta distribution and the single most
//! important special function in BayesLSH: both the pruning probability
//! `Pr[S ≥ t | M(m,n)]` (paper Eq. 3) and the concentration probability of
//! the MAP estimate (paper Eq. 6) are differences of regularized incomplete
//! beta values. The paper notes it is "typically approximated using continued
//! fractions" — we implement exactly that (Lentz's algorithm, as in
//! Numerical Recipes §6.4).

use crate::gamma::ln_gamma;

/// Natural log of the complete beta function `B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

const MAX_ITER: usize = 300;
const EPS: f64 = 1e-15;
const FPMIN: f64 = 1e-300;

/// Continued-fraction kernel for the incomplete beta function
/// (modified Lentz's method).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `x ∈ [0, 1]`.
///
/// `I_x(a, b) = B_x(a, b) / B(a, b)` where
/// `B_x(a, b) = ∫_0^x y^(a−1) (1−y)^(b−1) dy`.
///
/// The continued fraction converges fastest for `x < (a+1)/(a+b+2)`; above
/// that we use the symmetry `I_x(a, b) = 1 − I_{1−x}(b, a)`.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "reg_inc_beta needs a,b > 0; got ({a},{b})"
    );
    assert!(
        (0.0..=1.0).contains(&x),
        "reg_inc_beta needs x in [0,1]; got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        (front * betacf(a, b, x) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - front * betacf(b, a, 1.0 - x) / b).clamp(0.0, 1.0)
    }
}

/// Probability mass of the Beta(a, b) distribution on the interval
/// `[lo, hi] ∩ [0, 1]`; clamps the endpoints for the caller.
pub fn beta_interval_prob(a: f64, b: f64, lo: f64, hi: f64) -> f64 {
    let lo = lo.clamp(0.0, 1.0);
    let hi = hi.clamp(0.0, 1.0);
    if hi <= lo {
        return 0.0;
    }
    (reg_inc_beta(a, b, hi) - reg_inc_beta(a, b, lo)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gamma::ln_choose;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    /// Exact survival function of Binomial(n, x) at a, computed with
    /// log-space terms: `Pr[X >= a] = I_x(a, n-a+1)`.
    fn binom_sf(n: u64, x: f64, a: u64) -> f64 {
        (a..=n)
            .map(|j| {
                (ln_choose(n, j) + (j as f64) * x.ln() + ((n - j) as f64) * (1.0 - x).ln()).exp()
            })
            .sum()
    }

    #[test]
    fn ln_beta_known_values() {
        // B(1,1) = 1; B(2,3) = 1/12; B(0.5,0.5) = π.
        assert_close(ln_beta(1.0, 1.0), 0.0, 1e-12);
        assert_close(ln_beta(2.0, 3.0), (1.0f64 / 12.0).ln(), 1e-12);
        assert_close(ln_beta(0.5, 0.5), std::f64::consts::PI.ln(), 1e-12);
    }

    #[test]
    fn endpoints() {
        assert_eq!(reg_inc_beta(2.0, 5.0, 0.0), 0.0);
        assert_eq!(reg_inc_beta(2.0, 5.0, 1.0), 1.0);
    }

    #[test]
    fn uniform_case_is_identity() {
        // I_x(1, 1) = x.
        for x in [0.0, 0.1, 0.25, 0.5, 0.77, 0.999, 1.0] {
            assert_close(reg_inc_beta(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn power_law_cases() {
        // I_x(a, 1) = x^a;  I_x(1, b) = 1 − (1−x)^b.
        for x in [0.1, 0.4, 0.9] {
            for p in [0.5, 2.0, 7.0] {
                assert_close(reg_inc_beta(p, 1.0, x), x.powf(p), 1e-12);
                assert_close(reg_inc_beta(1.0, p, x), 1.0 - (1.0 - x).powf(p), 1e-12);
            }
        }
    }

    #[test]
    fn symmetry_at_half() {
        // I_{1/2}(a, a) = 1/2.
        for a in [0.5, 1.0, 3.0, 10.0, 120.0] {
            assert_close(reg_inc_beta(a, a, 0.5), 0.5, 1e-12);
        }
    }

    #[test]
    fn reflection_identity() {
        // I_x(a, b) = 1 − I_{1−x}(b, a).
        for &(a, b) in &[(2.0, 3.0), (0.5, 4.0), (30.0, 7.0), (100.0, 150.0)] {
            for x in [0.05, 0.3, 0.5, 0.8, 0.95] {
                let lhs = reg_inc_beta(a, b, x);
                let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x);
                assert_close(lhs, rhs, 1e-12);
            }
        }
    }

    #[test]
    fn binomial_tail_identity_small_n() {
        // I_x(a, n−a+1) = Pr[Binomial(n, x) ≥ a], exact for integer a.
        for n in [4u64, 10, 25] {
            for a in 1..=n {
                for x in [0.1, 0.3, 0.5, 0.7, 0.95] {
                    let lhs = reg_inc_beta(a as f64, (n - a + 1) as f64, x);
                    let rhs = binom_sf(n, x, a);
                    assert_close(lhs, rhs, 1e-10);
                }
            }
        }
    }

    #[test]
    fn hand_computed_value() {
        // I_0.3(2, 3) = Pr[Bin(4, 0.3) ≥ 2]
        //             = 1 − 0.7^4 − 4·0.3·0.7^3 = 0.3483.
        assert_close(reg_inc_beta(2.0, 3.0, 0.3), 0.3483, 1e-12);
        // I_0.5(2, 3) = 11/16.
        assert_close(reg_inc_beta(2.0, 3.0, 0.5), 11.0 / 16.0, 1e-12);
    }

    #[test]
    fn monotone_in_x() {
        let mut prev = 0.0;
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let v = reg_inc_beta(13.0, 29.0, x);
            assert!(v >= prev - 1e-14, "not monotone at x={x}");
            prev = v;
        }
    }

    #[test]
    fn large_parameters_stable() {
        // Posteriors after thousands of hash comparisons must stay finite
        // and ordered.
        let v_lo = reg_inc_beta(1800.0, 250.0, 0.85);
        let v_hi = reg_inc_beta(1800.0, 250.0, 0.9);
        assert!(v_lo.is_finite() && v_hi.is_finite());
        assert!((0.0..=1.0).contains(&v_lo));
        assert!(v_lo < v_hi);
    }

    #[test]
    fn interval_prob_basics() {
        assert_close(beta_interval_prob(1.0, 1.0, 0.2, 0.7), 0.5, 1e-12);
        assert_eq!(beta_interval_prob(2.0, 2.0, 0.7, 0.2), 0.0);
        // Clamping outside [0,1].
        assert_close(beta_interval_prob(1.0, 1.0, -0.5, 0.5), 0.5, 1e-12);
        assert_close(beta_interval_prob(1.0, 1.0, 0.5, 1.5), 0.5, 1e-12);
    }
}
