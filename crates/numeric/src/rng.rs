//! Deterministic pseudo-random number generation.
//!
//! We implement xoshiro256++ (Blackman & Vigna) seeded through SplitMix64.
//! Rolling our own (rather than depending on `rand`) keeps every hash
//! function, signature and synthetic dataset bit-reproducible for a given
//! seed, independent of external crate versions — which matters because the
//! experiment harness compares runs across algorithm variants that must see
//! identical data.

/// SplitMix64: a tiny, high-quality 64-bit generator.
///
/// Used for seeding [`Xoshiro256`] and for deriving independent sub-seeds
/// (see [`derive_seed`]). Passes BigCrush when used as a stream.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Derive an independent 64-bit seed from a base seed and a stream id.
///
/// Used to give every hash function / dataset component its own decorrelated
/// generator while staying reproducible from one top-level seed.
#[inline]
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    // Feed both words through SplitMix64 so that (base, stream) and
    // (base+1, stream-1) style collisions cannot produce identical streams.
    let mut sm = SplitMix64::new(base ^ 0x9E6C_63D0_876A_3F6B);
    let a = sm.next_u64();
    let mut sm2 = SplitMix64::new(stream.wrapping_add(0x7F4A_7C15_9E37_79B9));
    let b = sm2.next_u64();
    let mut sm3 = SplitMix64::new(a ^ b.rotate_left(17));
    sm3.next_u64()
}

/// xoshiro256++ — the project-wide PRNG.
///
/// Fast (sub-nanosecond per draw), 256 bits of state, passes stringent
/// statistical test batteries. Not cryptographically secure, which is fine:
/// LSH only needs hash functions drawn uniformly from the family.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed the full 256-bit state from a single 64-bit seed via SplitMix64,
    /// as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// A decorrelated child generator for the given stream id.
    pub fn fork(&self, stream: u64) -> Self {
        Self::seed_from_u64(derive_seed(self.s[0] ^ self.s[3], stream))
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 random bits (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1)` — safe for `ln()`.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        loop {
            let x = self.next_f64();
            if x > 0.0 {
                return x;
            }
        }
    }

    /// Uniform integer in `[0, bound)` (Lemire's multiply-shift with
    /// rejection; unbiased).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, len)`.
    #[inline]
    pub fn next_index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (Floyd's algorithm),
    /// returned in arbitrary order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct items from {n}");
        let mut chosen = std::collections::HashSet::with_capacity(k * 2);
        let mut out = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.next_index(j + 1);
            if chosen.insert(t) {
                out.push(t);
            } else {
                chosen.insert(j);
                out.push(j);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_answer() {
        // Reference vector from the SplitMix64 reference implementation
        // (seed 0).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let equal = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn fork_streams_are_decorrelated() {
        let root = Xoshiro256::seed_from_u64(7);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let equal = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = Xoshiro256::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn next_below_one_is_zero() {
        let mut rng = Xoshiro256::seed_from_u64(6);
        for _ in 0..100 {
            assert_eq!(rng.next_below(1), 0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::seed_from_u64(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let sample = rng.sample_indices(1000, 50);
        assert_eq!(sample.len(), 50);
        let set: std::collections::HashSet<_> = sample.iter().collect();
        assert_eq!(set.len(), 50);
        assert!(sample.iter().all(|&i| i < 1000));
    }

    #[test]
    fn sample_indices_full_range() {
        let mut rng = Xoshiro256::seed_from_u64(10);
        let mut sample = rng.sample_indices(10, 10);
        sample.sort_unstable();
        assert_eq!(sample, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn derive_seed_varies_in_both_arguments() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        assert_eq!(derive_seed(5, 5), derive_seed(5, 5));
    }
}
