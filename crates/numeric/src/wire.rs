//! Endianness-explicit binary wire primitives for index snapshots.
//!
//! The persistence layer (see `bayeslsh-core`'s `persist` module) writes a
//! hand-rolled binary format — the build environment is offline, so no
//! serde — and every crate that owns persistent state ships its own
//! section (de)serializer on top of these primitives. The contract:
//!
//! * **Little-endian everywhere.** Every multi-byte integer and float is
//!   written with `to_le_bytes`, so snapshots are byte-identical across
//!   hosts and a big-endian reader decodes them correctly.
//! * **Length-prefixed aggregates.** Variable-size payloads carry their
//!   element counts up front; readers size-check against those counts and
//!   never trust a length to allocate unboundedly
//!   ([`WireReader::get_byte_vec`] reads in bounded chunks, so a corrupt
//!   length hits end-of-input before it can balloon memory).
//! * **Checksummed streams.** Both endpoints accumulate an FNV-1a 64
//!   checksum over every byte moved; [`WireWriter::finish`] appends it and
//!   [`WireReader::verify_checksum`] compares, so any byte flip between
//!   save and load surfaces as a typed error instead of a mis-load.
//!
//! Failures are [`WireError`]s: truncation ([`WireError::Truncated`]) is
//! kept distinct from transport failures ([`WireError::Io`]) and from
//! structurally invalid content ([`WireError::Corrupt`]), because callers
//! map them to different user-facing snapshot errors.

use std::io::{Read, Write};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into a running FNV-1a 64 checksum.
#[inline]
fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The FNV-1a 64 checksum of `bytes`, from the standard offset basis — the
/// same function [`WireWriter`]/[`WireReader`] accumulate internally.
///
/// Exposed for whole-file integrity checks layered *above* the wire
/// streams: the shard manifest records this over each shard snapshot's
/// complete byte content (including the snapshot's own trailing stream
/// checksum), so a router can reject a swapped or bit-rotted shard file
/// without parsing it. It also lets tooling verify a snapshot's trailing
/// checksum directly: for a stream written by [`WireWriter::finish`],
/// `fnv1a_checksum(&bytes[..len - 8])` equals the little-endian `u64` in
/// the final 8 bytes.
pub fn fnv1a_checksum(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET, bytes)
}

/// Why a wire-level read or write failed.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The input ended before the expected bytes (truncated snapshot).
    Truncated,
    /// The bytes were read but are structurally invalid.
    Corrupt {
        /// What was wrong, for diagnostics.
        detail: String,
    },
}

impl WireError {
    /// Shorthand constructor for content-level corruption.
    pub fn corrupt(detail: impl Into<String>) -> Self {
        WireError::Corrupt {
            detail: detail.into(),
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o error: {e}"),
            WireError::Truncated => write!(f, "input truncated"),
            WireError::Corrupt { detail } => write!(f, "corrupt content: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A checksumming little-endian writer.
///
/// Every `put_*` both writes and folds the bytes into the running FNV-1a
/// checksum; [`WireWriter::finish`] appends the checksum (itself excluded
/// from the hash) and hands the inner writer back.
#[derive(Debug)]
pub struct WireWriter<W: Write> {
    inner: W,
    hash: u64,
}

impl<W: Write> WireWriter<W> {
    /// Wrap `inner` with a fresh checksum.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            hash: FNV_OFFSET,
        }
    }

    /// Write raw bytes (checksummed).
    pub fn put_bytes(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        self.hash = fnv1a(self.hash, bytes);
        self.inner.write_all(bytes)?;
        Ok(())
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) -> Result<(), WireError> {
        self.put_bytes(&[v])
    }

    /// Write a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) -> Result<(), WireError> {
        self.put_bytes(&v.to_le_bytes())
    }

    /// Write a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> Result<(), WireError> {
        self.put_bytes(&v.to_le_bytes())
    }

    /// Write a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> Result<(), WireError> {
        self.put_bytes(&v.to_le_bytes())
    }

    /// Write an `f32` as its little-endian bit pattern (bit-exact round
    /// trip).
    pub fn put_f32(&mut self, v: f32) -> Result<(), WireError> {
        self.put_u32(v.to_bits())
    }

    /// Write an `f64` as its little-endian bit pattern (bit-exact round
    /// trip).
    pub fn put_f64(&mut self, v: f64) -> Result<(), WireError> {
        self.put_u64(v.to_bits())
    }

    /// The checksum accumulated so far.
    pub fn checksum(&self) -> u64 {
        self.hash
    }

    /// Dismantle without writing the checksum — used when a payload is
    /// staged into a buffer whose bytes a parent writer will checksum.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// Append the accumulated checksum (not itself hashed) and return the
    /// inner writer.
    pub fn finish(mut self) -> Result<W, WireError> {
        let sum = self.hash;
        self.inner.write_all(&sum.to_le_bytes())?;
        Ok(self.inner)
    }
}

/// A checksumming little-endian reader, mirroring [`WireWriter`].
#[derive(Debug)]
pub struct WireReader<R: Read> {
    inner: R,
    hash: u64,
    read: u64,
}

impl<R: Read> WireReader<R> {
    /// Wrap `inner` with a fresh checksum.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            hash: FNV_OFFSET,
            read: 0,
        }
    }

    /// Bytes consumed so far (checksummed reads only).
    pub fn bytes_read(&self) -> u64 {
        self.read
    }

    /// Fill `buf` exactly (checksummed).
    pub fn get_bytes(&mut self, buf: &mut [u8]) -> Result<(), WireError> {
        self.inner.read_exact(buf)?;
        self.hash = fnv1a(self.hash, buf);
        self.read += buf.len() as u64;
        Ok(())
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        let mut b = [0u8; 1];
        self.get_bytes(&mut b)?;
        Ok(b[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        let mut b = [0u8; 2];
        self.get_bytes(&mut b)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        let mut b = [0u8; 4];
        self.get_bytes(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        let mut b = [0u8; 8];
        self.get_bytes(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Read an `f32` bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read exactly `n` bytes into a fresh buffer, in bounded chunks: a
    /// corrupt length prefix runs into [`WireError::Truncated`] long before
    /// it can allocate `n` bytes up front.
    pub fn get_byte_vec(&mut self, n: u64) -> Result<Vec<u8>, WireError> {
        const CHUNK: u64 = 64 * 1024;
        let mut out = Vec::with_capacity(n.min(CHUNK) as usize);
        let mut remaining = n;
        let mut buf = [0u8; 8192];
        while remaining > 0 {
            let take = remaining.min(buf.len() as u64) as usize;
            self.get_bytes(&mut buf[..take])?;
            out.extend_from_slice(&buf[..take]);
            remaining -= take as u64;
        }
        Ok(out)
    }

    /// Read the trailing checksum (not itself hashed) and compare it with
    /// the accumulated one.
    pub fn verify_checksum(&mut self) -> Result<(), WireError> {
        let expect = self.hash;
        let mut b = [0u8; 8];
        self.inner.read_exact(&mut b)?;
        let got = u64::from_le_bytes(b);
        if got != expect {
            return Err(WireError::corrupt(format!(
                "checksum mismatch: stored {got:#018x}, computed {expect:#018x}"
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = WireWriter::new(Vec::new());
        w.put_u8(0xAB).unwrap();
        w.put_u16(0xBEEF).unwrap();
        w.put_u32(0xDEAD_BEEF).unwrap();
        w.put_u64(0x0123_4567_89AB_CDEF).unwrap();
        w.put_f32(-1.5).unwrap();
        w.put_f64(std::f64::consts::PI).unwrap();
        w.put_bytes(b"tail").unwrap();
        let bytes = w.finish().unwrap();

        let mut r = WireReader::new(&bytes[..]);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32().unwrap(), -1.5);
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        let mut tail = [0u8; 4];
        r.get_bytes(&mut tail).unwrap();
        assert_eq!(&tail, b"tail");
        assert_eq!(r.bytes_read(), bytes.len() as u64 - 8);
        r.verify_checksum().unwrap();
    }

    #[test]
    fn explicit_little_endian_layout() {
        let mut w = WireWriter::new(Vec::new());
        w.put_u32(0x0102_0304).unwrap();
        let bytes = w.into_inner();
        assert_eq!(bytes, vec![0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn any_byte_flip_is_detected() {
        let mut w = WireWriter::new(Vec::new());
        w.put_u64(42).unwrap();
        w.put_bytes(b"payload").unwrap();
        let bytes = w.finish().unwrap();
        for i in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[i] ^= 0x40;
            let mut r = WireReader::new(&evil[..]);
            let mut sink = vec![0u8; bytes.len() - 8];
            r.get_bytes(&mut sink).unwrap();
            assert!(
                r.verify_checksum().is_err(),
                "flip at byte {i} must fail the checksum"
            );
        }
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut w = WireWriter::new(Vec::new());
        w.put_u64(7).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = WireReader::new(&bytes[..3]);
        assert!(matches!(r.get_u64(), Err(WireError::Truncated)));
        // A huge corrupt length prefix cannot balloon memory: it hits
        // truncation instead.
        let mut r = WireReader::new(&bytes[..]);
        assert!(matches!(
            r.get_byte_vec(u64::MAX / 2),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn standalone_checksum_matches_the_stream_trailer() {
        let mut w = WireWriter::new(Vec::new());
        w.put_u64(0xFEED).unwrap();
        w.put_bytes(b"shard payload").unwrap();
        let bytes = w.finish().unwrap();
        let body = &bytes[..bytes.len() - 8];
        let trailer = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        assert_eq!(fnv1a_checksum(body), trailer);
        assert_ne!(
            fnv1a_checksum(&bytes[..]),
            trailer,
            "whole-file sum differs"
        );
    }

    #[test]
    fn byte_vec_round_trips() {
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let mut w = WireWriter::new(Vec::new());
        w.put_bytes(&payload).unwrap();
        let bytes = w.finish().unwrap();
        let mut r = WireReader::new(&bytes[..]);
        assert_eq!(r.get_byte_vec(payload.len() as u64).unwrap(), payload);
        r.verify_checksum().unwrap();
    }

    #[test]
    fn staged_section_checksums_through_parent() {
        // A payload staged into a Vec and then fed to a parent writer must
        // verify end to end — the pattern the snapshot sections use.
        let mut inner = WireWriter::new(Vec::new());
        inner.put_u32(99).unwrap();
        let payload = inner.into_inner();
        let mut outer = WireWriter::new(Vec::new());
        outer.put_u64(payload.len() as u64).unwrap();
        outer.put_bytes(&payload).unwrap();
        let bytes = outer.finish().unwrap();
        let mut r = WireReader::new(&bytes[..]);
        let len = r.get_u64().unwrap();
        let section = r.get_byte_vec(len).unwrap();
        r.verify_checksum().unwrap();
        let mut sub = WireReader::new(&section[..]);
        assert_eq!(sub.get_u32().unwrap(), 99);
        assert_eq!(sub.bytes_read(), len);
    }
}
