//! Numeric substrate for the BayesLSH reproduction.
//!
//! Everything BayesLSH's Bayesian inference needs is implemented here from
//! scratch:
//!
//! * [`gamma::ln_gamma`] — log-gamma via the Lanczos approximation.
//! * [`beta`] — log-beta and the regularized incomplete beta function
//!   `I_x(a, b)` (the Beta distribution CDF), evaluated with Lentz's continued
//!   fraction. This is the workhorse behind every pruning and concentration
//!   probability in the paper (Equations 3 and 6).
//! * [`binomial`] — exact binomial pmf/cdf/tail probabilities, used for the
//!   frequentist analysis of Section 3 (Figure 1).
//! * [`betadist`] — the Beta distribution as an object: pdf, cdf, mode,
//!   moments, sampling, and the method-of-moments fit the paper uses to learn
//!   a prior from sampled candidate similarities (Section 4.1).
//! * [`gaussian`] — standard normal sampling (polar method) for the signed
//!   random projection hash family (Section 4.2).
//! * [`rng`] — a deterministic, seedable xoshiro256++ generator so that hash
//!   functions and synthetic datasets are bit-reproducible across runs and
//!   dependency upgrades.
//! * [`parallel`] — the workspace-wide parallel execution substrate: the
//!   [`Parallelism`] knob plus deterministic chunking ([`chunk_ranges`])
//!   and ordered fan-out/fan-in ([`fan_out`]), the building blocks behind
//!   the parallel-equals-serial guarantee of every multithreaded stage.
//! * [`wire`] — endianness-explicit, checksummed binary I/O primitives
//!   ([`WireWriter`]/[`WireReader`]) that the snapshot persistence layer's
//!   per-crate section (de)serializers are built on.

pub mod beta;
pub mod betadist;
pub mod binomial;
pub mod gamma;
pub mod gaussian;
pub mod parallel;
pub mod rng;
pub mod wire;

pub use beta::{ln_beta, reg_inc_beta};
pub use betadist::BetaDist;
pub use binomial::Binomial;
pub use gamma::{ln_choose, ln_gamma};
pub use gaussian::{erf, norm_cdf, Gaussian};
pub use parallel::{chunk_ranges, fan_out, Parallelism};
pub use rng::{derive_seed, SplitMix64, Xoshiro256};
pub use wire::{fnv1a_checksum, WireError, WireReader, WireWriter};
