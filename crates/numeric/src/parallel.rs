//! The workspace-wide parallel execution substrate.
//!
//! Every parallel stage in the pipeline — signature hashing, banding-index
//! construction, candidate probing, and Bayesian verification — is built
//! from the same two primitives: a deterministic [`chunk_ranges`] split of
//! the work items into contiguous ranges, and a [`fan_out`] that runs one
//! scoped thread per range and returns the per-range results **in range
//! order**. Because the split depends only on `(n_items, parts)` and every
//! worker computes a pure function of its range, merged results are
//! bit-identical to a serial run regardless of the thread count — the
//! determinism guarantee the equivalence test suite pins down.
//!
//! [`Parallelism`] is the user-facing knob: `Auto` resolves to the
//! `BAYESLSH_THREADS` environment variable when set, else to the machine's
//! available cores; `Fixed(1)` is the exact serial path.

use std::num::NonZeroU32;
use std::ops::Range;

/// Worker-thread budget for the parallel pipeline stages.
///
/// The knob travels on `PipelineConfig`/`SearcherBuilder` (in
/// `bayeslsh-core`) and is resolved to a concrete thread count once per
/// build via [`Parallelism::resolve`]. Whatever the count, output is
/// bit-identical to the serial path — parallelism only changes wall-clock
/// time (and, under lazy hashing, may hash some signatures deeper up
/// front; see the `Searcher` docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Parallelism {
    /// Use the `BAYESLSH_THREADS` environment variable when set (and ≥ 1),
    /// otherwise every available core.
    #[default]
    Auto,
    /// Exactly this many worker threads; `Fixed(1)` is the serial path.
    Fixed(NonZeroU32),
}

impl Parallelism {
    /// The exact serial path (one worker, no thread spawns).
    pub const fn serial() -> Self {
        Parallelism::Fixed(NonZeroU32::MIN)
    }

    /// Exactly `n` worker threads.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`; use [`Parallelism::Auto`] for "pick for me".
    pub fn threads(n: u32) -> Self {
        Parallelism::Fixed(NonZeroU32::new(n).expect("thread count must be at least 1"))
    }

    /// Resolve to a concrete worker count: `Fixed(n)` is `n`; `Auto` reads
    /// `BAYESLSH_THREADS` (ignored unless it parses to ≥ 1), falling back
    /// to [`std::thread::available_parallelism`], then to 1.
    pub fn resolve(&self) -> usize {
        match self {
            Parallelism::Fixed(n) => n.get() as usize,
            Parallelism::Auto => {
                if let Ok(v) = std::env::var("BAYESLSH_THREADS") {
                    if let Ok(n) = v.trim().parse::<usize>() {
                        if n >= 1 {
                            return n;
                        }
                    }
                }
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }
        }
    }
}

/// Split `0..n_items` into at most `parts` contiguous, non-empty ranges of
/// near-equal size, in order. Deterministic in `(n_items, parts)` — the
/// foundation of the workspace's parallel-equals-serial guarantee: however
/// many workers run, each sees the same range it would in any other
/// execution, and results are merged in range order.
pub fn chunk_ranges(n_items: usize, parts: usize) -> Vec<Range<usize>> {
    if n_items == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n_items);
    let base = n_items / parts;
    let extra = n_items % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n_items);
    out
}

/// Run `f` over the [`chunk_ranges`] split of `0..n_items` with up to
/// `threads` scoped worker threads, returning the per-chunk results **in
/// chunk order**. With one chunk (or `threads <= 1`) no thread is spawned
/// and `f` runs inline, so the serial path stays allocation- and
/// synchronization-free.
///
/// `f` receives `(chunk_index, range)` and must be a pure function of them
/// (plus shared read-only state) for the parallel-equals-serial guarantee
/// to hold.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn fan_out<T, F>(n_items: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    let ranges = chunk_ranges(n_items, threads.max(1));
    if threads <= 1 || ranges.len() <= 1 {
        return ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| f(i, r))
            .collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(i, r)| scope.spawn(move || f(i, r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly_in_order() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 1000] {
                let ranges = chunk_ranges(n, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "ranges must be contiguous");
                    assert!(!r.is_empty(), "no empty chunks");
                    next = r.end;
                }
                assert_eq!(next, n, "ranges must cover 0..{n}");
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn chunk_ranges_are_balanced() {
        let ranges = chunk_ranges(10, 4);
        let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
    }

    #[test]
    fn fan_out_preserves_chunk_order() {
        for threads in [1usize, 2, 4, 8] {
            let chunks = fan_out(100, threads, |_, r| r.collect::<Vec<usize>>());
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, (0..100).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn fan_out_results_are_split_invariant() {
        // The determinism contract the pipeline relies on: a pure
        // per-item function yields the same flattened output whatever the
        // thread count.
        let work = |_, r: Range<usize>| -> Vec<u64> {
            r.map(|i| crate::derive_seed(42, i as u64)).collect()
        };
        let serial: Vec<u64> = fan_out(257, 1, work).into_iter().flatten().collect();
        for threads in [2usize, 3, 8, 16] {
            let par: Vec<u64> = fan_out(257, threads, work).into_iter().flatten().collect();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threads_is_rejected() {
        let _ = Parallelism::threads(0);
    }

    #[test]
    fn parallelism_resolution() {
        assert_eq!(Parallelism::serial().resolve(), 1);
        assert_eq!(Parallelism::threads(6).resolve(), 6);
        assert!(Parallelism::Auto.resolve() >= 1);
    }
}
