//! Standard normal sampling via the Marsaglia polar method, plus the
//! normal CDF.
//!
//! The signed-random-projection LSH family for cosine similarity (paper
//! Section 4.2) draws each component of each projection vector from
//! N(0, 1); a corpus-scale index needs millions of such draws, so the
//! sampler caches the spare variate the polar method produces for free.
//! The p-stable (E2LSH) family's collision model additionally needs
//! Φ(x), provided here as [`norm_cdf`] via an [`erf`] approximation.

use crate::rng::Xoshiro256;

/// The error function, via Abramowitz & Stegun 7.1.26 (max absolute
/// error 1.5e-7 — far below every tolerance the collision models carry).
pub fn erf(x: f64) -> f64 {
    const A1: f64 = 0.254829592;
    const A2: f64 = -0.284496736;
    const A3: f64 = 1.421413741;
    const A4: f64 = -1.453152027;
    const A5: f64 = 1.061405429;
    const P: f64 = 0.3275911;
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// The standard normal CDF Φ(x) = P(N(0,1) ≤ x).
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// A standard normal sampler with spare-value caching.
#[derive(Debug, Clone, Default)]
pub struct Gaussian {
    spare: Option<f64>,
}

impl Gaussian {
    /// Create a sampler with an empty spare slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draw one N(0, 1) sample.
    pub fn sample(&mut self, rng: &mut Xoshiro256) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * f);
                return u * f;
            }
        }
    }

    /// Fill a slice with independent N(0, 1) samples.
    pub fn fill(&mut self, rng: &mut Xoshiro256, out: &mut [f64]) {
        for slot in out.iter_mut() {
            *slot = self.sample(rng);
        }
    }

    /// Collect `n` independent N(0, 1) samples.
    pub fn sample_vec(&mut self, rng: &mut Xoshiro256, n: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        self.fill(rng, &mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let mut rng = Xoshiro256::seed_from_u64(21);
        let mut g = Gaussian::new();
        let n = 200_000;
        let samples = g.sample_vec(&mut rng, n);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn tail_fractions() {
        let mut rng = Xoshiro256::seed_from_u64(22);
        let mut g = Gaussian::new();
        let n = 200_000;
        let samples = g.sample_vec(&mut rng, n);
        let beyond_196 = samples.iter().filter(|x| x.abs() > 1.96).count() as f64 / n as f64;
        let beyond_3 = samples.iter().filter(|x| x.abs() > 3.0).count() as f64 / n as f64;
        assert!(
            (beyond_196 - 0.05).abs() < 0.005,
            "P(|X|>1.96) = {beyond_196}"
        );
        assert!((beyond_3 - 0.0027).abs() < 0.002, "P(|X|>3) = {beyond_3}");
    }

    #[test]
    fn symmetric_sign_split() {
        // Sign balance is what the SRP family actually relies on.
        let mut rng = Xoshiro256::seed_from_u64(23);
        let mut g = Gaussian::new();
        let n = 100_000;
        let pos = (0..n).filter(|_| g.sample(&mut rng) > 0.0).count() as f64 / n as f64;
        assert!((pos - 0.5).abs() < 0.01, "positive fraction {pos}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = Xoshiro256::seed_from_u64(99);
        let mut r2 = Xoshiro256::seed_from_u64(99);
        let mut g1 = Gaussian::new();
        let mut g2 = Gaussian::new();
        for _ in 0..1000 {
            assert_eq!(g1.sample(&mut r1), g2.sample(&mut r2));
        }
    }

    #[test]
    fn erf_matches_reference_values() {
        // Reference values to 7 decimals (A&S tables).
        for &(x, want) in &[
            (0.0, 0.0),
            (0.5, 0.5204999),
            (1.0, 0.8427008),
            (2.0, 0.9953223),
            (3.0, 0.9999779),
        ] {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x})");
            assert!((erf(-x) + want).abs() < 2e-7, "erf(-{x})");
        }
    }

    #[test]
    fn norm_cdf_matches_reference_values() {
        for &(x, want) in &[
            (0.0, 0.5),
            (1.0, 0.8413447),
            (1.96, 0.9750021),
            (-1.0, 0.1586553),
            (3.0, 0.9986501),
        ] {
            assert!((norm_cdf(x) - want).abs() < 2e-7, "Phi({x})");
        }
        // Monotone and bounded.
        let mut prev = 0.0;
        let mut t = -6.0;
        while t <= 6.0 {
            let p = norm_cdf(t);
            assert!((0.0..=1.0).contains(&p) && p >= prev);
            prev = p;
            t += 0.125;
        }
    }

    #[test]
    fn fill_covers_slice() {
        let mut rng = Xoshiro256::seed_from_u64(24);
        let mut g = Gaussian::new();
        let mut buf = vec![0.0; 257];
        g.fill(&mut rng, &mut buf);
        // With probability ~0 any component stays exactly 0.0.
        assert!(buf.iter().all(|&x| x != 0.0));
    }
}
