//! Standard normal sampling via the Marsaglia polar method.
//!
//! The signed-random-projection LSH family for cosine similarity (paper
//! Section 4.2) draws each component of each projection vector from
//! N(0, 1); a corpus-scale index needs millions of such draws, so the
//! sampler caches the spare variate the polar method produces for free.

use crate::rng::Xoshiro256;

/// A standard normal sampler with spare-value caching.
#[derive(Debug, Clone, Default)]
pub struct Gaussian {
    spare: Option<f64>,
}

impl Gaussian {
    /// Create a sampler with an empty spare slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Draw one N(0, 1) sample.
    pub fn sample(&mut self, rng: &mut Xoshiro256) -> f64 {
        if let Some(s) = self.spare.take() {
            return s;
        }
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare = Some(v * f);
                return u * f;
            }
        }
    }

    /// Fill a slice with independent N(0, 1) samples.
    pub fn fill(&mut self, rng: &mut Xoshiro256, out: &mut [f64]) {
        for slot in out.iter_mut() {
            *slot = self.sample(rng);
        }
    }

    /// Collect `n` independent N(0, 1) samples.
    pub fn sample_vec(&mut self, rng: &mut Xoshiro256, n: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        self.fill(rng, &mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let mut rng = Xoshiro256::seed_from_u64(21);
        let mut g = Gaussian::new();
        let n = 200_000;
        let samples = g.sample_vec(&mut rng, n);
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn tail_fractions() {
        let mut rng = Xoshiro256::seed_from_u64(22);
        let mut g = Gaussian::new();
        let n = 200_000;
        let samples = g.sample_vec(&mut rng, n);
        let beyond_196 = samples.iter().filter(|x| x.abs() > 1.96).count() as f64 / n as f64;
        let beyond_3 = samples.iter().filter(|x| x.abs() > 3.0).count() as f64 / n as f64;
        assert!(
            (beyond_196 - 0.05).abs() < 0.005,
            "P(|X|>1.96) = {beyond_196}"
        );
        assert!((beyond_3 - 0.0027).abs() < 0.002, "P(|X|>3) = {beyond_3}");
    }

    #[test]
    fn symmetric_sign_split() {
        // Sign balance is what the SRP family actually relies on.
        let mut rng = Xoshiro256::seed_from_u64(23);
        let mut g = Gaussian::new();
        let n = 100_000;
        let pos = (0..n).filter(|_| g.sample(&mut rng) > 0.0).count() as f64 / n as f64;
        assert!((pos - 0.5).abs() < 0.01, "positive fraction {pos}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = Xoshiro256::seed_from_u64(99);
        let mut r2 = Xoshiro256::seed_from_u64(99);
        let mut g1 = Gaussian::new();
        let mut g2 = Gaussian::new();
        for _ in 0..1000 {
            assert_eq!(g1.sample(&mut r1), g2.sample(&mut r2));
        }
    }

    #[test]
    fn fill_covers_slice() {
        let mut rng = Xoshiro256::seed_from_u64(24);
        let mut g = Gaussian::new();
        let mut buf = vec![0.0; 257];
        g.fill(&mut rng, &mut buf);
        // With probability ~0 any component stays exactly 0.0.
        assert!(buf.iter().all(|&x| x != 0.0));
    }
}
