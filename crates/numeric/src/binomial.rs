//! Exact binomial probabilities.
//!
//! Used for the frequentist analysis of classical LSH similarity estimation
//! (paper Section 3 / Figure 1): the maximum-likelihood estimator `ŝ = m/n`
//! concentrates at a rate that depends on the unknown similarity, so the
//! number of hashes needed for a `(δ, γ)` accuracy guarantee varies wildly
//! with `s`. [`min_hashes_for_concentration`] reproduces that curve exactly.

use crate::beta::reg_inc_beta;
use crate::gamma::ln_choose;

/// A Binomial(n, p) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Create a Binomial(n, p); `p` must lie in `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        Self { n, p }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Log probability mass at `k`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        // Handle the degenerate endpoints exactly.
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_choose(self.n, k)
            + (k as f64) * self.p.ln()
            + ((self.n - k) as f64) * (1.0 - self.p).ln()
    }

    /// Probability mass at `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// `Pr[X <= k]` via the incomplete-beta identity
    /// `Pr[X <= k] = I_{1−p}(n−k, k+1)`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            return 0.0; // k < n and all mass is at n
        }
        reg_inc_beta((self.n - k) as f64, k as f64 + 1.0, 1.0 - self.p)
    }

    /// `Pr[X >= k]` via `I_p(k, n−k+1)`.
    pub fn sf(&self, k: u64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return 0.0;
        }
        if self.p == 1.0 {
            return 1.0; // all mass at n >= k
        }
        reg_inc_beta(k as f64, (self.n - k) as f64 + 1.0, self.p)
    }

    /// `Pr[lo <= X <= hi]`, summed from exact pmf terms (stable for the
    /// n ≤ ~10⁴ ranges the harness sweeps).
    pub fn interval_prob(&self, lo: u64, hi: u64) -> f64 {
        if lo > hi || lo > self.n {
            return 0.0;
        }
        let hi = hi.min(self.n);
        (lo..=hi).map(|k| self.pmf(k)).sum()
    }

    /// Distribution mean `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Distribution variance `n·p·(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }
}

/// Minimum number of hashes `n` such that the MLE `ŝ = m/n` of a similarity
/// `s` satisfies `Pr[|ŝ − s| < δ] ≥ 1 − γ` — i.e. the per-similarity hash
/// requirement of classical LSH estimation (paper Figure 1).
///
/// Follows the paper's expression
/// `Pr[|ŝ_n − s| < δ] = Σ_{m=(s−δ)n}^{(s+δ)n} C(n,m) s^m (1−s)^{n−m}`
/// with the integer range `[ceil((s−δ)n), floor((s+δ)n)]`.
///
/// Returns `None` if no `n ≤ max_n` reaches the target confidence.
pub fn min_hashes_for_concentration(s: f64, delta: f64, gamma: f64, max_n: u64) -> Option<u64> {
    assert!((0.0..=1.0).contains(&s), "similarity must be in [0,1]");
    assert!(delta > 0.0 && gamma > 0.0);
    for n in 1..=max_n {
        let lo = ((s - delta) * n as f64).ceil().max(0.0) as u64;
        let hi = ((s + delta) * n as f64).floor().min(n as f64) as u64;
        if lo > hi {
            continue;
        }
        let prob = Binomial::new(n, s).interval_prob(lo, hi);
        if prob >= 1.0 - gamma {
            return Some(n);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn pmf_matches_hand_computation() {
        let b = Binomial::new(4, 0.3);
        assert_close(b.pmf(0), 0.7f64.powi(4), 1e-12);
        assert_close(b.pmf(1), 4.0 * 0.3 * 0.7f64.powi(3), 1e-12);
        assert_close(b.pmf(2), 6.0 * 0.09 * 0.49, 1e-12);
        assert_close(b.pmf(4), 0.3f64.powi(4), 1e-12);
        assert_eq!(b.pmf(5), 0.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &(n, p) in &[(1u64, 0.5), (10, 0.2), (100, 0.73), (500, 0.99)] {
            let b = Binomial::new(n, p);
            let total: f64 = (0..=n).map(|k| b.pmf(k)).sum();
            assert_close(total, 1.0, 1e-10);
        }
    }

    #[test]
    fn cdf_sf_complementarity() {
        let b = Binomial::new(50, 0.4);
        for k in 0..=50 {
            // Pr[X <= k] + Pr[X >= k+1] = 1.
            assert_close(b.cdf(k) + b.sf(k + 1), 1.0, 1e-10);
        }
    }

    #[test]
    fn cdf_matches_summation() {
        let b = Binomial::new(30, 0.65);
        let mut acc = 0.0;
        for k in 0..=30 {
            acc += b.pmf(k);
            assert_close(b.cdf(k), acc, 1e-10);
        }
    }

    #[test]
    fn degenerate_p_zero_and_one() {
        let b0 = Binomial::new(10, 0.0);
        assert_eq!(b0.pmf(0), 1.0);
        assert_eq!(b0.cdf(0), 1.0);
        assert_eq!(b0.sf(1), 0.0);
        let b1 = Binomial::new(10, 1.0);
        assert_eq!(b1.pmf(10), 1.0);
        assert_eq!(b1.sf(10), 1.0);
        assert_eq!(b1.cdf(9), 0.0);
    }

    #[test]
    fn interval_prob_full_range_is_one() {
        let b = Binomial::new(64, 0.8);
        assert_close(b.interval_prob(0, 64), 1.0, 1e-10);
        assert_close(b.interval_prob(0, 1000), 1.0, 1e-10);
        assert_eq!(b.interval_prob(5, 3), 0.0);
    }

    #[test]
    fn moments() {
        let b = Binomial::new(200, 0.25);
        assert_close(b.mean(), 50.0, 1e-12);
        assert_close(b.variance(), 37.5, 1e-12);
    }

    #[test]
    fn concentration_needs_most_hashes_near_half() {
        // The headline observation behind Figure 1: estimating s = 0.5
        // takes far more hashes than s = 0.95 or s = 0.05.
        let at = |s| min_hashes_for_concentration(s, 0.05, 0.05, 5_000).unwrap();
        let mid = at(0.5);
        let hi = at(0.95);
        let lo = at(0.05);
        assert!(mid > 3 * hi, "mid={mid} hi={hi}");
        assert!(mid > 3 * lo, "mid={mid} lo={lo}");
        // And the s = 0.5 requirement lands in the few-hundred range the
        // paper reports (≈350).
        assert!((200..=450).contains(&mid), "mid={mid}");
    }

    #[test]
    fn concentration_tightens_with_delta() {
        let loose = min_hashes_for_concentration(0.7, 0.10, 0.05, 20_000).unwrap();
        let tight = min_hashes_for_concentration(0.7, 0.02, 0.05, 20_000).unwrap();
        assert!(tight > 5 * loose, "tight={tight} loose={loose}");
    }

    #[test]
    fn concentration_none_when_cap_too_small() {
        assert_eq!(min_hashes_for_concentration(0.5, 0.01, 0.01, 10), None);
    }
}
