//! The Beta distribution as a value type.
//!
//! BayesLSH for Jaccard similarity uses a Beta prior (conjugate to the
//! binomial hash-agreement likelihood), so the posterior after observing
//! `m` matches in `n` hashes is again Beta (paper Section 4.1). The
//! method-of-moments fit implements the paper's recipe for learning the
//! prior from a random sample of candidate-pair similarities.

use crate::beta::{beta_interval_prob, ln_beta, reg_inc_beta};
use crate::gaussian::Gaussian;
use crate::rng::Xoshiro256;

/// A Beta(α, β) distribution with α, β > 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaDist {
    alpha: f64,
    beta: f64,
}

impl BetaDist {
    /// Create a Beta(α, β); both parameters must be strictly positive.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha > 0.0 && beta > 0.0,
            "Beta parameters must be positive, got ({alpha}, {beta})"
        );
        Self { alpha, beta }
    }

    /// The uniform distribution on (0, 1) — Beta(1, 1), the paper's default
    /// prior when no sample of candidate similarities is available.
    pub fn uniform() -> Self {
        Self::new(1.0, 1.0)
    }

    /// Shape parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Shape parameter β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Log probability density at `x ∈ (0, 1)`.
    pub fn ln_pdf(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return f64::NEG_INFINITY;
        }
        (self.alpha - 1.0) * x.ln() + (self.beta - 1.0) * (1.0 - x).ln()
            - ln_beta(self.alpha, self.beta)
    }

    /// Probability density at `x`.
    pub fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    /// CDF: `Pr[X <= x] = I_x(α, β)`.
    pub fn cdf(&self, x: f64) -> f64 {
        reg_inc_beta(self.alpha, self.beta, x.clamp(0.0, 1.0))
    }

    /// Survival: `Pr[X >= x]`.
    pub fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// `Pr[lo <= X <= hi]` with endpoint clamping.
    pub fn interval_prob(&self, lo: f64, hi: f64) -> f64 {
        beta_interval_prob(self.alpha, self.beta, lo, hi)
    }

    /// Mean `α / (α + β)`.
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Variance `αβ / ((α+β)² (α+β+1))`.
    pub fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }

    /// Mode `(α−1)/(α+β−2)` for α, β > 1; for other shapes returns the
    /// argmax of the (possibly boundary-peaked) density.
    pub fn mode(&self) -> f64 {
        let (a, b) = (self.alpha, self.beta);
        if a > 1.0 && b > 1.0 {
            (a - 1.0) / (a + b - 2.0)
        } else if a <= 1.0 && b > 1.0 {
            0.0
        } else if a > 1.0 && b <= 1.0 {
            1.0
        } else if a == 1.0 && b == 1.0 {
            0.5 // flat: any point is modal; pick the centre
        } else {
            // Bimodal at the boundary (a < 1 and b < 1): take the heavier end.
            if a < b {
                0.0
            } else {
                1.0
            }
        }
    }

    /// Draw one sample: X = G_a / (G_a + G_b) with G_* ~ Gamma(shape, 1).
    pub fn sample(&self, rng: &mut Xoshiro256, gauss: &mut Gaussian) -> f64 {
        let ga = sample_gamma(self.alpha, rng, gauss);
        let gb = sample_gamma(self.beta, rng, gauss);
        if ga + gb == 0.0 {
            return 0.5;
        }
        ga / (ga + gb)
    }

    /// Method-of-moments fit from a sample of similarities in `[0, 1]`,
    /// exactly as in the paper (population variance):
    ///
    /// `α̂ = m̄ (m̄(1−m̄)/v̄ − 1)`,  `β̂ = (1−m̄)(m̄(1−m̄)/v̄ − 1)`.
    ///
    /// Falls back to the uniform prior when the sample is too small or too
    /// degenerate for the fit to be defined (v̄ = 0, v̄ ≥ m̄(1−m̄), or a mean
    /// at the boundary).
    pub fn fit_moments(samples: &[f64]) -> Self {
        if samples.len() < 2 {
            return Self::uniform();
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        if !(0.0..=1.0).contains(&mean) || mean == 0.0 || mean == 1.0 {
            return Self::uniform();
        }
        let bound = mean * (1.0 - mean);
        if var <= f64::EPSILON || var >= bound {
            return Self::uniform();
        }
        let common = bound / var - 1.0;
        let alpha = mean * common;
        let beta = (1.0 - mean) * common;
        if alpha <= 0.0 || beta <= 0.0 || !alpha.is_finite() || !beta.is_finite() {
            return Self::uniform();
        }
        Self::new(alpha, beta)
    }

    /// Conjugate update: the posterior after observing `m` hash matches out
    /// of `n` comparisons is `Beta(α + m, β + n − m)`.
    pub fn posterior(&self, m: u64, n: u64) -> Self {
        assert!(m <= n, "matches m={m} cannot exceed comparisons n={n}");
        Self::new(self.alpha + m as f64, self.beta + (n - m) as f64)
    }

    /// Quantile function (inverse CDF) by bisection on the monotone CDF;
    /// accurate to ~1e-12 in `x`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile needs p in [0,1], got {p}"
        );
        if p == 0.0 {
            return 0.0;
        }
        if p == 1.0 {
            return 1.0;
        }
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Central credible interval containing `mass` of the distribution
    /// (e.g. `mass = 0.95` gives the equal-tailed 95% interval). Useful for
    /// reporting uncertainty alongside BayesLSH similarity estimates.
    pub fn credible_interval(&self, mass: f64) -> (f64, f64) {
        assert!(
            mass > 0.0 && mass < 1.0,
            "credible mass must be in (0,1), got {mass}"
        );
        let tail = 0.5 * (1.0 - mass);
        (self.quantile(tail), self.quantile(1.0 - tail))
    }
}

/// Marsaglia–Tsang Gamma(shape, 1) sampler (with the Johnk-style boost for
/// shape < 1).
fn sample_gamma(shape: f64, rng: &mut Xoshiro256, gauss: &mut Gaussian) -> f64 {
    assert!(shape > 0.0);
    if shape < 1.0 {
        // Gamma(a) = Gamma(a+1) * U^(1/a).
        let g = sample_gamma(shape + 1.0, rng, gauss);
        let u = rng.next_f64_open();
        return g * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = gauss.sample(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u = rng.next_f64_open();
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn uniform_prior_properties() {
        let u = BetaDist::uniform();
        assert_close(u.pdf(0.3), 1.0, 1e-12);
        assert_close(u.cdf(0.3), 0.3, 1e-12);
        assert_close(u.mean(), 0.5, 1e-12);
        assert_close(u.variance(), 1.0 / 12.0, 1e-12);
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Trapezoid integration of the density.
        let d = BetaDist::new(3.5, 2.2);
        let n = 20_000;
        let h = 1.0 / n as f64;
        let mut acc = 0.0;
        for i in 0..n {
            let x0 = i as f64 * h;
            let x1 = x0 + h;
            acc += 0.5 * (d.pdf(x0.max(1e-12)) + d.pdf(x1.min(1.0 - 1e-12))) * h;
        }
        assert_close(acc, 1.0, 1e-3);
    }

    #[test]
    fn mode_formulas() {
        assert_close(BetaDist::new(3.0, 2.0).mode(), 2.0 / 3.0, 1e-12);
        assert_close(BetaDist::new(2.0, 2.0).mode(), 0.5, 1e-12);
        assert_eq!(BetaDist::new(0.5, 2.0).mode(), 0.0);
        assert_eq!(BetaDist::new(2.0, 0.5).mode(), 1.0);
        assert_close(BetaDist::uniform().mode(), 0.5, 1e-12);
    }

    #[test]
    fn posterior_update_matches_paper() {
        // Posterior of Beta(α, β) after m of n matches is
        // Beta(m + α, n − m + β) — paper Section 4.1.
        let prior = BetaDist::new(2.0, 5.0);
        let post = prior.posterior(24, 32);
        assert_close(post.alpha(), 26.0, 1e-12);
        assert_close(post.beta(), 13.0, 1e-12);
    }

    #[test]
    fn posterior_mode_matches_paper_formula() {
        // Paper: Ŝ = (m + α − 1) / (n + α + β − 2).
        let prior = BetaDist::uniform();
        let (m, n) = (24u64, 32u64);
        let post = prior.posterior(m, n);
        let expected = (m as f64 + 1.0 - 1.0) / (n as f64 + 2.0 - 2.0);
        assert_close(post.mode(), expected, 1e-12);
        assert_close(post.mode(), 0.75, 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let d = BetaDist::new(7.3, 1.4);
        let mut prev = 0.0;
        for i in 0..=50 {
            let x = i as f64 / 50.0;
            let c = d.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-13);
            prev = c;
        }
    }

    #[test]
    fn sampling_matches_moments() {
        let d = BetaDist::new(2.5, 6.0);
        let mut rng = Xoshiro256::seed_from_u64(11);
        let mut gauss = Gaussian::new();
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng, &mut gauss)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert_close(mean, d.mean(), 0.01);
        assert_close(var, d.variance(), 0.005);
        assert!(samples.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn fit_moments_recovers_parameters() {
        let d = BetaDist::new(4.0, 9.0);
        let mut rng = Xoshiro256::seed_from_u64(12);
        let mut gauss = Gaussian::new();
        let samples: Vec<f64> = (0..60_000)
            .map(|_| d.sample(&mut rng, &mut gauss))
            .collect();
        let fit = BetaDist::fit_moments(&samples);
        assert_close(fit.alpha(), 4.0, 0.35);
        assert_close(fit.beta(), 9.0, 0.8);
    }

    #[test]
    fn fit_moments_degenerate_falls_back_to_uniform() {
        assert_eq!(BetaDist::fit_moments(&[]), BetaDist::uniform());
        assert_eq!(BetaDist::fit_moments(&[0.4]), BetaDist::uniform());
        assert_eq!(BetaDist::fit_moments(&[0.4, 0.4, 0.4]), BetaDist::uniform());
        // All mass at the boundary.
        assert_eq!(BetaDist::fit_moments(&[0.0, 0.0]), BetaDist::uniform());
        assert_eq!(BetaDist::fit_moments(&[1.0, 1.0]), BetaDist::uniform());
        // Variance at the Bernoulli maximum (v = m(1−m)) is not a Beta.
        assert_eq!(BetaDist::fit_moments(&[0.0, 1.0]), BetaDist::uniform());
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = BetaDist::new(3.2, 1.7);
        for p in [0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999] {
            let x = d.quantile(p);
            assert_close(d.cdf(x), p, 1e-10);
        }
        // Round trip the other way.
        for x in [0.1, 0.33, 0.8] {
            assert_close(d.quantile(d.cdf(x)), x, 1e-10);
        }
    }

    #[test]
    fn quantile_endpoints_and_median_symmetry() {
        let d = BetaDist::new(4.0, 4.0);
        assert_eq!(d.quantile(0.0), 0.0);
        assert_eq!(d.quantile(1.0), 1.0);
        assert_close(d.quantile(0.5), 0.5, 1e-10);
        // Symmetric distribution → symmetric quantiles.
        assert_close(d.quantile(0.2) + d.quantile(0.8), 1.0, 1e-9);
    }

    #[test]
    fn credible_interval_contains_the_mass() {
        let d = BetaDist::new(26.0, 9.0); // posterior after 25/33 matches
        let (lo, hi) = d.credible_interval(0.95);
        assert!(lo < d.mean() && d.mean() < hi);
        assert_close(d.cdf(hi) - d.cdf(lo), 0.95, 1e-9);
        // More mass → wider interval.
        let (lo99, hi99) = d.credible_interval(0.99);
        assert!(lo99 < lo && hi99 > hi);
    }

    #[test]
    fn credible_interval_narrows_with_evidence() {
        let small = BetaDist::uniform()
            .posterior(24, 32)
            .credible_interval(0.95);
        let large = BetaDist::uniform()
            .posterior(768, 1024)
            .credible_interval(0.95);
        assert!(large.1 - large.0 < small.1 - small.0);
    }

    #[test]
    fn fit_moments_simple_two_point() {
        // mean 0.5, pop-var 0.01 → common = 24, α = β = 12.
        let fit = BetaDist::fit_moments(&[0.4, 0.6]);
        assert_close(fit.alpha(), 12.0, 1e-9);
        assert_close(fit.beta(), 12.0, 1e-9);
    }
}
