//! Property tests for the special functions — the numerical bedrock of
//! every BayesLSH probability.

use bayeslsh_numeric::{ln_choose, reg_inc_beta, BetaDist, Binomial};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// I_x(a,b) + I_{1-x}(b,a) = 1 (reflection).
    #[test]
    fn incomplete_beta_reflection(
        a in 0.2f64..500.0,
        b in 0.2f64..500.0,
        x in 0.001f64..0.999,
    ) {
        let lhs = reg_inc_beta(a, b, x);
        let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x);
        prop_assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
    }

    /// CDF values stay in [0,1] and are monotone in x.
    #[test]
    fn incomplete_beta_monotone(
        a in 0.2f64..200.0,
        b in 0.2f64..200.0,
        x1 in 0.0f64..1.0,
        x2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let flo = reg_inc_beta(a, b, lo);
        let fhi = reg_inc_beta(a, b, hi);
        prop_assert!((0.0..=1.0).contains(&flo));
        prop_assert!((0.0..=1.0).contains(&fhi));
        prop_assert!(fhi >= flo - 1e-12);
    }

    /// The binomial-tail identity ties the continued fraction to exact
    /// log-space summation: I_p(k, n-k+1) = Pr[Bin(n,p) >= k].
    #[test]
    fn binomial_tail_identity(
        n in 1u64..400,
        k_frac in 0.0f64..1.0,
        p in 0.01f64..0.99,
    ) {
        let k = ((n as f64 * k_frac) as u64).clamp(1, n);
        let direct: f64 = (k..=n)
            .map(|j| {
                (ln_choose(n, j)
                    + j as f64 * p.ln()
                    + (n - j) as f64 * (1.0 - p).ln())
                .exp()
            })
            .sum();
        let via_beta = reg_inc_beta(k as f64, (n - k + 1) as f64, p);
        prop_assert!((direct - via_beta).abs() < 1e-8, "{direct} vs {via_beta}");
    }

    /// Binomial cdf + sf partition the space.
    #[test]
    fn binomial_cdf_sf_partition(n in 1u64..300, p in 0.0f64..1.0, k in 0u64..300) {
        let k = k.min(n);
        let b = Binomial::new(n, p);
        prop_assert!((b.cdf(k) + b.sf(k + 1) - 1.0).abs() < 1e-9);
    }

    /// Quantile inverts the CDF everywhere.
    #[test]
    fn beta_quantile_round_trip(
        alpha in 0.3f64..300.0,
        beta in 0.3f64..300.0,
        p in 0.001f64..0.999,
    ) {
        let d = BetaDist::new(alpha, beta);
        let x = d.quantile(p);
        prop_assert!((d.cdf(x) - p).abs() < 1e-8, "cdf(q({p})) = {}", d.cdf(x));
    }

    /// Credible intervals carry the advertised mass and nest.
    #[test]
    fn credible_intervals_nest(
        alpha in 0.5f64..200.0,
        beta in 0.5f64..200.0,
    ) {
        let d = BetaDist::new(alpha, beta);
        let (l90, h90) = d.credible_interval(0.90);
        let (l99, h99) = d.credible_interval(0.99);
        prop_assert!(l99 <= l90 && h99 >= h90);
        prop_assert!((d.cdf(h90) - d.cdf(l90) - 0.90).abs() < 1e-7);
    }

    /// Posterior updates accumulate: updating with (m1,n1) then (m2,n2)
    /// equals one update with the pooled counts.
    #[test]
    fn beta_posterior_additivity(
        m1 in 0u64..50, extra1 in 0u64..50,
        m2 in 0u64..50, extra2 in 0u64..50,
    ) {
        let (n1, n2) = (m1 + extra1, m2 + extra2);
        let prior = BetaDist::new(2.0, 3.0);
        let sequential = prior.posterior(m1, n1).posterior(m2, n2);
        let pooled = prior.posterior(m1 + m2, n1 + n2);
        prop_assert!((sequential.alpha() - pooled.alpha()).abs() < 1e-12);
        prop_assert!((sequential.beta() - pooled.beta()).abs() < 1e-12);
    }
}
