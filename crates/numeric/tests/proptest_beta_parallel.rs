//! Property tests for the Bayesian substrate the engines trust blindly:
//! Beta posterior closed-form identities (the conjugacy the paper's
//! Section 4.1 inference rests on) and the chunk-split determinism of the
//! parallel execution layer (the per-thread streams the parallel hashing
//! stages rely on).

use bayeslsh_numeric::{chunk_ranges, derive_seed, fan_out, BetaDist, Xoshiro256};
use proptest::prelude::*;

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

proptest! {
    // Beta(1, 1) is the uniform distribution: cdf(x) = x, pdf(x) = 1.
    #[test]
    fn uniform_prior_cdf_is_identity(x in 0.0f64..=1.0) {
        let u = BetaDist::uniform();
        prop_assert!(close(u.cdf(x), x, 1e-12));
        if x > 1e-9 && x < 1.0 - 1e-9 {
            prop_assert!(close(u.pdf(x), 1.0, 1e-9));
        }
    }

    // Binomial conjugacy: after m successes in n trials the uniform prior
    // becomes Beta(1 + m, 1 + n − m), with mean (m + 1)/(n + 2) (Laplace's
    // rule of succession) and mode m/n.
    #[test]
    fn binomial_conjugacy_closed_forms(n in 1u64..2048, frac in 0.0f64..=1.0) {
        let m = ((n as f64) * frac).round() as u64;
        let post = BetaDist::uniform().posterior(m, n);
        prop_assert!(close(post.alpha(), 1.0 + m as f64, 1e-12));
        prop_assert!(close(post.beta(), 1.0 + (n - m) as f64, 1e-12));
        prop_assert!(close(post.mean(), (m as f64 + 1.0) / (n as f64 + 2.0), 1e-12));
        if m >= 1 && m < n {
            prop_assert!(close(post.mode(), m as f64 / n as f64, 1e-12));
        }
    }

    // Sequential updates compose: observing (m1, n1) then (m2, n2) is the
    // same as observing (m1 + m2, n1 + n2) — the incremental k-at-a-time
    // hash comparison the engines perform is statistically coherent.
    #[test]
    fn posterior_updates_compose(
        a in 0.5f64..8.0,
        b in 0.5f64..8.0,
        m1 in 0u64..100,
        x1 in 0u64..100,
        m2 in 0u64..100,
        x2 in 0u64..100,
    ) {
        let prior = BetaDist::new(a, b);
        let stepwise = prior.posterior(m1, m1 + x1).posterior(m2, m2 + x2);
        let joint = prior.posterior(m1 + m2, m1 + x1 + m2 + x2);
        prop_assert!(close(stepwise.alpha(), joint.alpha(), 1e-9));
        prop_assert!(close(stepwise.beta(), joint.beta(), 1e-9));
    }

    // CDF reflection: I_x(a, b) = 1 − I_{1−x}(b, a).
    #[test]
    fn cdf_reflection_identity(a in 0.5f64..20.0, b in 0.5f64..20.0, x in 0.0f64..=1.0) {
        let d = BetaDist::new(a, b);
        let r = BetaDist::new(b, a);
        prop_assert!(close(d.cdf(x), 1.0 - r.cdf(1.0 - x), 1e-9));
    }

    // chunk_ranges is a deterministic partition of 0..n, in order.
    #[test]
    fn chunk_ranges_partition_in_order(n in 0usize..10_000, parts in 1usize..64) {
        let ranges = chunk_ranges(n, parts);
        prop_assert_eq!(ranges.clone(), chunk_ranges(n, parts));
        let mut next = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, next);
            prop_assert!(!r.is_empty());
            next = r.end;
        }
        prop_assert_eq!(next, n);
        if n > 0 {
            // Balanced to within one item.
            let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
            prop_assert!(max - min <= 1);
        }
    }

    // The determinism property the parallel hashing stages rely on: a
    // per-item derived RNG stream yields the same flattened output under
    // any chunk split. (Each pipeline worker seeds per-index generators
    // exactly like this — plane banks, minhash functions, dataset shards.)
    #[test]
    fn per_item_rng_streams_are_split_invariant(
        seed in 0u64..=u64::MAX,
        n in 1usize..300,
        t1 in 1usize..16,
        t2 in 1usize..16,
    ) {
        let draw = |_, r: std::ops::Range<usize>| -> Vec<u64> {
            r.map(|i| {
                let mut rng = Xoshiro256::seed_from_u64(derive_seed(seed, i as u64));
                rng.next_u64()
            })
            .collect()
        };
        let a: Vec<u64> = fan_out(n, t1, draw).into_iter().flatten().collect();
        let b: Vec<u64> = fan_out(n, t2, draw).into_iter().flatten().collect();
        prop_assert_eq!(a, b);
    }
}
