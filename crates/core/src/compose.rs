//! Composable candidate generation × verification.
//!
//! The paper's eight algorithms are not eight monoliths but eight points in
//! a small grid: a [`CandidateGenerator`] (AllPairs, LSH banding, PPJoin+)
//! crossed with a [`Verifier`] (exact, fixed-`n` MLE, BayesLSH,
//! BayesLSH-Lite). This module makes that grid explicit: each
//! [`crate::pipeline::Algorithm`] names a [`Composition`], and
//! [`run_composition`] executes any composition — including off-grid ones
//! the paper never evaluated, such as PPJoin+ candidates with Bayesian
//! verification.
//!
//! All compositions share one [`SigPool`] between candidate generation and
//! verification, reproducing the paper's amortization argument ("it
//! exploits the hashes of the objects for candidate pruning, further
//! amortizing the costs of hashing"). A standing [`BandingIndex`] can be
//! supplied through [`SearchContext::index`] so repeated runs (or point
//! queries, via [`crate::searcher::Searcher`]) reuse the build-time index
//! instead of re-bucketing the corpus.

use std::time::Instant;

use bayeslsh_candgen::{
    all_pairs_cosine, all_pairs_cosine_candidates, all_pairs_jaccard, all_pairs_jaccard_candidates,
    band_key_bits, band_key_ints, band_keys_bits, band_keys_ints, lsh_candidates_bits,
    lsh_candidates_ints, lsh_candidates_projs, ppjoin_binary_cosine, ppjoin_jaccard, BandingIndex,
    BandingParams,
};
use bayeslsh_lsh::{
    cos_to_r, count_bit_agreements, count_bit_agreements_batched, count_int_agreements,
    count_int_agreements_batched, e2lsh_collision, e2lsh_similarity_at, r_to_cos, BitSignatures,
    E2lshHasher, IntSignatures, Measure, MinHasher, ProjSignatures, SignaturePool, SrpHasher,
};
use bayeslsh_numeric::{derive_seed, Xoshiro256};
use bayeslsh_sparse::{cosine, jaccard, l2_similarity, Dataset, SparseVector};

use crate::cosine_model::CosineModel;
use crate::engine::{bayes_verify, bayes_verify_lite, sprt_verify, EngineStats};
use crate::error::SearchError;
use crate::estimator::mle_verify;
use crate::family_model::FamilyModel;
use crate::jaccard_model::JaccardModel;
use crate::parallel::{
    candidate_ids, par_bayes_verify, par_bayes_verify_lite, par_exact_verify, par_mle_verify,
    par_sprt_verify,
};
use crate::pipeline::{all_pairs_l2, PipelineConfig, PriorChoice};

/// A signature pool for any hash family, created to match a
/// [`PipelineConfig`]'s family: signed-random-projection bits for cosine
/// (and for MIPS, which is SRP on augmented vectors with its own seed
/// stream), integer minhashes for Jaccard, quantized p-stable projections
/// for L2. Seeds are derived from the config's master seed exactly as the
/// classic pipelines did, so results are reproducible across the legacy
/// and composable APIs.
#[derive(Debug, Clone)]
pub enum SigPool {
    /// Bit signatures (cosine or MIPS / signed random projections).
    Bits(BitSignatures),
    /// Integer minhash signatures (Jaccard).
    Ints(IntSignatures),
    /// Quantized-projection bucket signatures (L2 / E2LSH).
    Projs(ProjSignatures),
}

impl SigPool {
    /// A pool matching `cfg.family`, sized for `data`.
    pub fn for_config(cfg: &PipelineConfig, data: &Dataset) -> Self {
        match cfg.family.measure() {
            Measure::Cosine => SigPool::Bits(BitSignatures::new(
                SrpHasher::new(data.dim(), derive_seed(cfg.seed, 1)),
                data.len(),
            )),
            Measure::Jaccard => SigPool::Ints(IntSignatures::new(
                MinHasher::new(derive_seed(cfg.seed, 2)),
                data.len(),
            )),
            Measure::L2 => SigPool::Projs(ProjSignatures::new(
                E2lshHasher::new(data.dim(), derive_seed(cfg.seed, 3), l2_width(cfg)),
                data.len(),
            )),
            Measure::Mips => SigPool::Bits(BitSignatures::new(
                SrpHasher::new(data.dim(), derive_seed(cfg.seed, 4)),
                data.len(),
            )),
        }
    }

    /// Make room for objects `0..n_objects`, keeping existing signatures.
    pub fn grow_to(&mut self, n_objects: usize) {
        match self {
            SigPool::Bits(p) => p.grow_to(n_objects),
            SigPool::Ints(p) => p.grow_to(n_objects),
            SigPool::Projs(p) => p.grow_to(n_objects),
        }
    }

    /// The `l` band keys of pool member `id` (which must be hashed to at
    /// least `params.total_hashes()` already).
    pub fn band_keys(&self, id: u32, params: BandingParams) -> Vec<u64> {
        match self {
            SigPool::Bits(p) => band_keys_bits(p.raw_words(id), params),
            SigPool::Ints(p) => band_keys_ints(p.raw(id), params),
            SigPool::Projs(p) => band_keys_ints(p.raw(id), params),
        }
    }

    /// Hash an out-of-pool query vector to at least `n` hashes through the
    /// same hash family. The returned words are packed bits for
    /// [`SigPool::Bits`] and raw minhashes for [`SigPool::Ints`]; feed them
    /// back through [`SigPool::query_band_keys`] and
    /// [`SigPool::query_agreements`].
    pub fn hash_query(&mut self, v: &SparseVector, n: u32) -> Vec<u32> {
        let mut sig = Vec::new();
        match self {
            SigPool::Bits(p) => p.hash_external(v, 0, n, &mut sig),
            SigPool::Ints(p) => p.hash_external(v, 0, n, &mut sig),
            SigPool::Projs(p) => p.hash_external(v, 0, n, &mut sig),
        }
        sig
    }

    /// The `l` band keys of an external query signature.
    pub fn query_band_keys(&self, sig: &[u32], params: BandingParams) -> Vec<u64> {
        match self {
            SigPool::Bits(_) => (0..params.l)
                .map(|band| band_key_bits(sig, band, params.k))
                .collect(),
            SigPool::Ints(_) | SigPool::Projs(_) => (0..params.l)
                .map(|band| band_key_ints(sig, band, params.k))
                .collect(),
        }
    }

    /// Count agreeing hashes in positions `lo..hi` between an external
    /// query signature and pool member `id` (hashed to at least `hi`).
    pub fn query_agreements(&self, sig: &[u32], id: u32, lo: u32, hi: u32) -> u32 {
        match self {
            SigPool::Bits(p) => count_bit_agreements(sig, p.raw_words(id), lo, hi),
            SigPool::Ints(p) => count_int_agreements(sig, p.raw(id), lo, hi),
            SigPool::Projs(p) => count_int_agreements(sig, p.raw(id), lo, hi),
        }
    }

    /// Batched [`SigPool::query_agreements`]: count an external query
    /// signature against every pool member in `ids` over `lo..hi`, writing
    /// one count per id into `out` (cleared first). The whole batch runs
    /// through the word-parallel XOR + popcount kernels with the probe's
    /// window masks hoisted out of the per-candidate loop, so a query's
    /// verification scan is allocation-free in steady state.
    pub fn query_agreements_batched(
        &self,
        sig: &[u32],
        ids: &[u32],
        lo: u32,
        hi: u32,
        out: &mut Vec<u32>,
    ) {
        match self {
            SigPool::Bits(p) => count_bit_agreements_batched(
                sig,
                ids.iter().map(|&id| p.raw_words(id)),
                lo,
                hi,
                out,
            ),
            SigPool::Ints(p) => {
                count_int_agreements_batched(sig, ids.iter().map(|&id| p.raw(id)), lo, hi, out)
            }
            SigPool::Projs(p) => {
                count_int_agreements_batched(sig, ids.iter().map(|&id| p.raw(id)), lo, hi, out)
            }
        }
    }

    /// Extend the signatures of `ids` to at least `n` hashes with up to
    /// `threads` workers (corpus chunks hashed per-thread, buffers spliced
    /// back in index order). Pool state is bit-identical to serial
    /// [`SignaturePool::ensure`] calls for the same ids.
    pub fn par_ensure_ids(&mut self, data: &Dataset, ids: &[u32], n: u32, threads: usize) {
        match self {
            SigPool::Bits(p) => p.par_ensure_ids(data, ids, n, threads),
            SigPool::Ints(p) => p.par_ensure_ids(data, ids, n, threads),
            SigPool::Projs(p) => p.par_ensure_ids(data, ids, n, threads),
        }
    }

    /// [`SigPool::hash_query`] with the hash range split across up to
    /// `threads` workers; the returned signature is bit-identical.
    pub fn hash_query_par(&mut self, v: &SparseVector, n: u32, threads: usize) -> Vec<u32> {
        match self {
            SigPool::Bits(p) => p.hash_external_par(v, n, threads),
            SigPool::Ints(p) => p.hash_external_par(v, n, threads),
            SigPool::Projs(p) => p.hash_external_par(v, n, threads),
        }
    }

    /// Whether [`SigPool::hash_query_ready`] can hash an `n`-deep query
    /// signature right now without mutating the pool (the hasher bank
    /// already covers the target depth).
    pub fn query_ready(&self, n: u32) -> bool {
        match self {
            SigPool::Bits(p) => p.external_ready(n),
            SigPool::Ints(p) => p.external_ready(n),
            SigPool::Projs(p) => p.external_ready(n),
        }
    }

    /// Materialize the hasher bank for `n`-deep query hashing up front, so
    /// subsequent [`SigPool::hash_query_ready`] calls work through `&self`
    /// (the shared-reader serving path).
    pub fn prepare_query(&mut self, n: u32, threads: usize) {
        match self {
            SigPool::Bits(p) => p.prepare_external(n, threads),
            SigPool::Ints(p) => p.prepare_external(n, threads),
            SigPool::Projs(p) => p.prepare_external(n, threads),
        }
    }

    /// Read-only [`SigPool::hash_query_par`]: bit-identical output, but
    /// through `&self`. Requires [`SigPool::query_ready`]`(n)`; many reader
    /// threads may call this concurrently.
    pub fn hash_query_ready(&self, v: &SparseVector, n: u32, threads: usize) -> Vec<u32> {
        match self {
            SigPool::Bits(p) => p.hash_external_ready(v, n, threads),
            SigPool::Ints(p) => p.hash_external_ready(v, n, threads),
            SigPool::Projs(p) => p.hash_external_ready(v, n, threads),
        }
    }

    /// Drop object `id`'s signature and release its hashes from the cost
    /// accounting (compaction of removed objects). The slot stays valid and
    /// empty, indistinguishable from a never-hashed object.
    pub fn clear(&mut self, id: u32) {
        match self {
            SigPool::Bits(p) => p.clear(id),
            SigPool::Ints(p) => p.clear(id),
            SigPool::Projs(p) => p.clear(id),
        }
    }

    /// The single band-`band` key of pool member `id` (hashed to at least
    /// `params.total_hashes()` already) — the shard-local key lookup
    /// [`bayeslsh_candgen::BandingIndex::par_build`] consumes, avoiding
    /// any id-major key buffer.
    pub fn band_key(&self, id: u32, band: u32, params: BandingParams) -> u64 {
        match self {
            SigPool::Bits(p) => band_key_bits(p.raw_words(id), band, params.k),
            SigPool::Ints(p) => band_key_ints(p.raw(id), band, params.k),
            SigPool::Projs(p) => band_key_ints(p.raw(id), band, params.k),
        }
    }
}

/// The L2 family's bucket width; callers must hold an L2 pipeline config.
pub(crate) fn l2_width(cfg: &PipelineConfig) -> f64 {
    cfg.family
        .l2_width()
        .expect("L2 pipeline carries a bucket width")
}

impl SignaturePool for SigPool {
    fn ensure(&mut self, id: u32, v: &SparseVector, n: u32) {
        match self {
            SigPool::Bits(p) => p.ensure(id, v, n),
            SigPool::Ints(p) => p.ensure(id, v, n),
            SigPool::Projs(p) => p.ensure(id, v, n),
        }
    }

    fn len(&self, id: u32) -> u32 {
        match self {
            SigPool::Bits(p) => p.len(id),
            SigPool::Ints(p) => p.len(id),
            SigPool::Projs(p) => p.len(id),
        }
    }

    fn agreements(&self, a: u32, b: u32, lo: u32, hi: u32) -> u32 {
        match self {
            SigPool::Bits(p) => p.agreements(a, b, lo, hi),
            SigPool::Ints(p) => p.agreements(a, b, lo, hi),
            SigPool::Projs(p) => p.agreements(a, b, lo, hi),
        }
    }

    fn agreements_batched(&self, a: u32, others: &[u32], lo: u32, hi: u32, out: &mut Vec<u32>) {
        match self {
            SigPool::Bits(p) => p.agreements_batched(a, others, lo, hi, out),
            SigPool::Ints(p) => p.agreements_batched(a, others, lo, hi, out),
            SigPool::Projs(p) => p.agreements_batched(a, others, lo, hi, out),
        }
    }

    fn total_hashes(&self) -> u64 {
        match self {
            SigPool::Bits(p) => p.total_hashes(),
            SigPool::Ints(p) => p.total_hashes(),
            SigPool::Projs(p) => p.total_hashes(),
        }
    }

    fn depth_hint(&mut self, n: u32) {
        match self {
            SigPool::Bits(p) => p.depth_hint(n),
            SigPool::Ints(p) => p.depth_hint(n),
            SigPool::Projs(p) => p.depth_hint(n),
        }
    }
}

/// Everything a generator or verifier needs to run: the corpus, the
/// configuration, the shared signature pool, and (optionally) a standing
/// banding index maintained by the caller.
pub struct SearchContext<'a> {
    /// The corpus.
    pub data: &'a Dataset,
    /// Pipeline parameters.
    pub cfg: &'a PipelineConfig,
    /// Shared signature pool (candidate generation and verification draw
    /// from the same hashes).
    pub pool: &'a mut SigPool,
    /// A standing banding index, when the caller maintains one. With
    /// `None`, the LSH generator buckets the corpus transiently — the
    /// legacy one-shot behaviour.
    pub index: Option<&'a BandingIndex>,
}

/// A candidate generation strategy, as a composable trait object.
pub trait CandidateGenerator {
    /// Display name.
    fn name(&self) -> &'static str;

    /// The generator's fused exact join, if it has one (AllPairs and
    /// PPJoin+ verify inline while generating). `None` for pure candidate
    /// generators (LSH banding).
    fn exact_join(&self, ctx: &mut SearchContext<'_>) -> Option<Vec<(u32, u32, f64)>> {
        let _ = ctx;
        None
    }

    /// Generate candidate pairs for downstream verification.
    fn generate(&self, ctx: &mut SearchContext<'_>) -> Vec<(u32, u32)>;
}

/// A verification strategy, as a composable trait object.
pub trait Verifier {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Verify candidates, returning surviving pairs with exact or estimated
    /// similarities, plus engine statistics where the strategy produces
    /// them.
    fn verify(
        &self,
        ctx: &mut SearchContext<'_>,
        candidates: &[(u32, u32)],
    ) -> (Vec<(u32, u32, f64)>, Option<EngineStats>);
}

/// The candidate generators of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GeneratorKind {
    /// AllPairs (Bayardo et al.) — exact candidate enumeration with
    /// max-weight pruning; has a fused exact join.
    AllPairs,
    /// Classical LSH banding over the shared signature pool.
    LshBanding,
    /// PPJoin+ (binary vectors only); has a fused exact join.
    PpjoinPlus,
}

impl GeneratorKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            GeneratorKind::AllPairs => "AllPairs",
            GeneratorKind::LshBanding => "LSH",
            GeneratorKind::PpjoinPlus => "PPJoin+",
        }
    }

    /// Instantiate the generator as a trait object.
    pub fn instantiate(&self) -> Box<dyn CandidateGenerator> {
        match self {
            GeneratorKind::AllPairs => Box::new(AllPairsGenerator),
            GeneratorKind::LshBanding => Box::new(LshBandingGenerator),
            GeneratorKind::PpjoinPlus => Box::new(PpjoinGenerator),
        }
    }
}

/// The verification strategies of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifierKind {
    /// Exact similarity computation for every candidate.
    Exact,
    /// Classical fixed-`n` maximum-likelihood estimation ("LSH Approx").
    Mle,
    /// BayesLSH (Algorithm 1): prune or estimate.
    Bayes,
    /// BayesLSH-Lite (Algorithm 2): prune, then verify survivors exactly.
    BayesLite,
    /// Wald sequential probability-ratio test: adaptive early-accept /
    /// early-prune per chunk, exact fallback for pairs still undecided at
    /// the hash cap.
    Sprt,
}

impl VerifierKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            VerifierKind::Exact => "exact",
            VerifierKind::Mle => "MLE",
            VerifierKind::Bayes => "BayesLSH",
            VerifierKind::BayesLite => "BayesLSH-Lite",
            VerifierKind::Sprt => "SPRT",
        }
    }

    /// Instantiate the verifier as a trait object.
    pub fn instantiate(&self) -> Box<dyn Verifier> {
        match self {
            VerifierKind::Exact => Box::new(ExactVerifier),
            VerifierKind::Mle => Box::new(MleVerifier),
            VerifierKind::Bayes => Box::new(BayesVerifier),
            VerifierKind::BayesLite => Box::new(BayesLiteVerifier),
            VerifierKind::Sprt => Box::new(SprtVerifier),
        }
    }

    /// The deepest signature this verifier can demand of any object under
    /// `cfg` (0 for exact verification, which never consults hashes).
    pub fn signature_depth(&self, cfg: &PipelineConfig) -> u32 {
        let chunk = cfg.k.max(1);
        match self {
            VerifierKind::Exact => 0,
            VerifierKind::Mle => cfg.approx_hashes,
            VerifierKind::Bayes => (cfg.max_hashes / chunk).max(1) * chunk,
            VerifierKind::BayesLite => (cfg.lite_h / chunk).max(1) * chunk,
            VerifierKind::Sprt => (cfg.sprt().max_hashes / chunk).max(1) * chunk,
        }
    }
}

/// A (generator, verifier) pair — the composable unit the paper's eight
/// named algorithms are points of.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Composition {
    /// Candidate generation strategy.
    pub generator: GeneratorKind,
    /// Verification strategy.
    pub verifier: VerifierKind,
}

impl Composition {
    /// Compose a generator with a verifier.
    pub const fn new(generator: GeneratorKind, verifier: VerifierKind) -> Self {
        Self {
            generator,
            verifier,
        }
    }

    /// True when this composition only works on binary vectors: Jaccard
    /// hashing, or the PPJoin+ generator under any measure.
    pub fn requires_binary(&self, measure: Measure) -> bool {
        measure == Measure::Jaccard || self.generator == GeneratorKind::PpjoinPlus
    }

    /// What binary input is needed for, for error reporting.
    pub(crate) fn binary_requirement(&self, measure: Measure) -> &'static str {
        if self.generator == GeneratorKind::PpjoinPlus {
            "PPJoin+"
        } else if measure == Measure::Jaccard {
            "Jaccard hashing"
        } else {
            "this composition"
        }
    }
}

impl std::fmt::Display for Composition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} × {}", self.generator.name(), self.verifier.name())
    }
}

/// The result of running one composition over a corpus.
#[derive(Debug, Clone)]
pub struct CompositionOutput {
    /// The composition that ran.
    pub composition: Composition,
    /// Output pairs with similarities (exact or estimated), in canonical
    /// ascending `(i, j)` order — the merge order of the parallel
    /// execution layer, applied to the serial path too so output is
    /// bit-identical whatever the thread count.
    pub pairs: Vec<(u32, u32, f64)>,
    /// Candidate pairs generated (0 when the generator's fused exact join
    /// ran, fusing generation and verification).
    pub candidates: u64,
    /// Seconds spent generating candidates.
    pub candgen_secs: f64,
    /// Seconds spent verifying.
    pub verify_secs: f64,
    /// Total wall-clock seconds.
    pub total_secs: f64,
    /// Per-pair hash comparisons spent by the verifier (0 for exact
    /// verification, which never consults hashes).
    pub hashes_compared: u64,
    /// Hash comparisons per accepted pair — the adaptive-verification cost
    /// metric (0.0 when nothing was accepted or no hashes were compared).
    pub hashes_per_accepted_pair: f64,
    /// Verification statistics (hash-based pruning verifiers only).
    pub engine: Option<EngineStats>,
}

/// Run one composition end to end over `ctx`.
///
/// Verifies the binary-input precondition up front and returns
/// [`SearchError::NonBinaryData`] instead of panicking. When the verifier
/// is exact and the generator has a fused exact join (AllPairs, PPJoin+),
/// the join runs directly — reproducing the single-phase behaviour (and
/// cost profile) of the paper's exact baselines.
pub fn run_composition(
    comp: Composition,
    ctx: &mut SearchContext<'_>,
) -> Result<CompositionOutput, SearchError> {
    let measure = ctx.cfg.family.measure();
    if comp.requires_binary(measure) && !ctx.data.vectors().iter().all(|v| v.is_binary()) {
        return Err(SearchError::NonBinaryData {
            requires: comp.binary_requirement(measure),
        });
    }
    run_composition_prechecked(comp, ctx)
}

/// [`run_composition`] without the O(nnz) binary-precondition scan, for
/// callers that enforce the invariant structurally (the `Searcher` checks
/// the corpus at build and every insert).
pub(crate) fn run_composition_prechecked(
    comp: Composition,
    ctx: &mut SearchContext<'_>,
) -> Result<CompositionOutput, SearchError> {
    if comp.generator == GeneratorKind::PpjoinPlus
        && matches!(ctx.cfg.family.measure(), Measure::L2 | Measure::Mips)
    {
        // PPJoin+'s prefix filter is derived from the cosine/Jaccard
        // overlap bound; it has no L2 or inner-product counterpart.
        return Err(SearchError::invalid(
            "family",
            format!(
                "PPJoin+ supports cosine and Jaccard only, got {}",
                ctx.cfg.family
            ),
        ));
    }
    let generator = comp.generator.instantiate();
    let verifier = comp.verifier.instantiate();
    let start = Instant::now();

    if comp.verifier == VerifierKind::Exact {
        if let Some(mut pairs) = generator.exact_join(ctx) {
            canonical_order(&mut pairs);
            let total = start.elapsed().as_secs_f64();
            return Ok(CompositionOutput {
                composition: comp,
                pairs,
                candidates: 0,
                candgen_secs: total,
                verify_secs: 0.0,
                total_secs: total,
                hashes_compared: 0,
                hashes_per_accepted_pair: 0.0,
                engine: None,
            });
        }
    }

    let candidates = generator.generate(ctx);
    let candgen_secs = start.elapsed().as_secs_f64();
    let verify_start = Instant::now();
    let (mut pairs, engine) = verifier.verify(ctx, &candidates);
    canonical_order(&mut pairs);
    let hashes_compared = engine.as_ref().map_or(0, |s| s.hash_comparisons);
    let hashes_per_accepted_pair = engine
        .as_ref()
        .map_or(0.0, |s| s.hashes_per_accepted_pair());
    Ok(CompositionOutput {
        composition: comp,
        pairs,
        candidates: candidates.len() as u64,
        candgen_secs,
        verify_secs: verify_start.elapsed().as_secs_f64(),
        total_secs: start.elapsed().as_secs_f64(),
        hashes_compared,
        hashes_per_accepted_pair,
        engine,
    })
}

/// Canonicalize batch output to ascending `(i, j)` order. Verifiers emit in
/// (deterministic) candidate order; the parallel layer merges its chunks in
/// the same order, and this final sort makes the contract independent of
/// both — serial and parallel runs agree bit for bit, and so do standing-
/// index and transient candidate generation.
fn canonical_order(pairs: &mut [(u32, u32, f64)]) {
    pairs.sort_unstable_by_key(|&(a, b, _)| (a, b));
}

/// AllPairs candidate generation (with a fused exact join).
struct AllPairsGenerator;

impl CandidateGenerator for AllPairsGenerator {
    fn name(&self) -> &'static str {
        GeneratorKind::AllPairs.name()
    }

    fn exact_join(&self, ctx: &mut SearchContext<'_>) -> Option<Vec<(u32, u32, f64)>> {
        Some(match ctx.cfg.family.measure() {
            Measure::Cosine => all_pairs_cosine(ctx.data, ctx.cfg.threshold),
            Measure::Jaccard => all_pairs_jaccard(ctx.data, ctx.cfg.threshold),
            Measure::L2 => all_pairs_l2(ctx.data, ctx.cfg.threshold),
            // MIPS is cosine on (externally) augmented vectors.
            Measure::Mips => all_pairs_cosine(ctx.data, ctx.cfg.threshold),
        })
    }

    fn generate(&self, ctx: &mut SearchContext<'_>) -> Vec<(u32, u32)> {
        match ctx.cfg.family.measure() {
            Measure::Cosine => all_pairs_cosine_candidates(ctx.data, ctx.cfg.threshold),
            Measure::Jaccard => all_pairs_jaccard_candidates(ctx.data, ctx.cfg.threshold),
            Measure::L2 => all_pairs_l2_candidates(ctx.data),
            Measure::Mips => all_pairs_cosine_candidates(ctx.data, ctx.cfg.threshold),
        }
    }
}

/// Every pair of non-empty vectors, in ascending id order. AllPairs'
/// max-weight prefix filter is a dot-product bound with no L2 analogue, so
/// the L2 "AllPairs" candidate set is the exhaustive scan — downstream
/// Bayesian verifiers do all the pruning.
fn all_pairs_l2_candidates(data: &Dataset) -> Vec<(u32, u32)> {
    let ids: Vec<u32> = data
        .iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|(id, _)| id)
        .collect();
    let mut out = Vec::with_capacity(ids.len().saturating_mul(ids.len().saturating_sub(1)) / 2);
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            out.push((a, b));
        }
    }
    out
}

/// LSH banding candidate generation over the shared signature pool.
struct LshBandingGenerator;

impl CandidateGenerator for LshBandingGenerator {
    fn name(&self) -> &'static str {
        GeneratorKind::LshBanding.name()
    }

    fn generate(&self, ctx: &mut SearchContext<'_>) -> Vec<(u32, u32)> {
        let threads = ctx.cfg.parallelism.resolve();
        if let Some(index) = ctx.index {
            return index.par_all_pairs(threads);
        }
        let params = ctx.cfg.banding_plan().params;
        if threads > 1 {
            // Transient sharded build: hash the corpus in parallel, build
            // the band-sharded index, fan out the join. Candidate order is
            // identical to the serial streaming path (each band's buckets
            // see the same id-order insertions either way).
            let ids: Vec<u32> = ctx
                .data
                .iter()
                .filter(|(_, v)| !v.is_empty())
                .map(|(id, _)| id)
                .collect();
            ctx.pool
                .par_ensure_ids(ctx.data, &ids, params.total_hashes(), threads);
            let pool = &*ctx.pool;
            let index = BandingIndex::par_build(params, &ids, threads, |id, band| {
                pool.band_key(id, band, params)
            });
            return index.par_all_pairs(threads);
        }
        match ctx.pool {
            SigPool::Bits(pool) => lsh_candidates_bits(pool, ctx.data, params),
            SigPool::Ints(pool) => lsh_candidates_ints(pool, ctx.data, params),
            SigPool::Projs(pool) => lsh_candidates_projs(pool, ctx.data, params),
        }
    }
}

/// PPJoin+ (with a fused exact join; candidates are the exact result set).
struct PpjoinGenerator;

impl CandidateGenerator for PpjoinGenerator {
    fn name(&self) -> &'static str {
        GeneratorKind::PpjoinPlus.name()
    }

    fn exact_join(&self, ctx: &mut SearchContext<'_>) -> Option<Vec<(u32, u32, f64)>> {
        Some(match ctx.cfg.family.measure() {
            Measure::Cosine => ppjoin_binary_cosine(ctx.data, ctx.cfg.threshold),
            Measure::Jaccard => ppjoin_jaccard(ctx.data, ctx.cfg.threshold),
            // Rejected with a typed error before any generator runs.
            Measure::L2 | Measure::Mips => {
                unreachable!("run_composition rejects PPJoin+ under L2/MIPS")
            }
        })
    }

    fn generate(&self, ctx: &mut SearchContext<'_>) -> Vec<(u32, u32)> {
        self.exact_join(ctx)
            .unwrap_or_default()
            .into_iter()
            .map(|(a, b, _)| (a, b))
            .collect()
    }
}

/// Exact verification: compute the true similarity of every candidate.
struct ExactVerifier;

impl Verifier for ExactVerifier {
    fn name(&self) -> &'static str {
        VerifierKind::Exact.name()
    }

    fn verify(
        &self,
        ctx: &mut SearchContext<'_>,
        candidates: &[(u32, u32)],
    ) -> (Vec<(u32, u32, f64)>, Option<EngineStats>) {
        let measure = ctx.cfg.family.measure();
        let t = ctx.cfg.threshold;
        let threads = ctx.cfg.parallelism.resolve();
        let pairs = par_exact_verify(ctx.data, measure, t, candidates, threads);
        (pairs, None)
    }
}

/// Classical fixed-`n` MLE verification ("LSH Approx").
struct MleVerifier;

impl Verifier for MleVerifier {
    fn name(&self) -> &'static str {
        VerifierKind::Mle.name()
    }

    fn verify(
        &self,
        ctx: &mut SearchContext<'_>,
        candidates: &[(u32, u32)],
    ) -> (Vec<(u32, u32, f64)>, Option<EngineStats>) {
        let n = ctx.cfg.approx_hashes;
        let t = ctx.cfg.threshold;
        let threads = ctx.cfg.parallelism.resolve();
        if threads > 1 {
            let ids = candidate_ids(candidates, ctx.data.len());
            ctx.pool.par_ensure_ids(ctx.data, &ids, n, threads);
            let (pairs, _) = match ctx.cfg.family.measure() {
                Measure::Cosine | Measure::Mips => {
                    par_mle_verify(&*ctx.pool, candidates, n, t, r_to_cos, threads)
                }
                Measure::Jaccard => par_mle_verify(&*ctx.pool, candidates, n, t, |f| f, threads),
                Measure::L2 => {
                    let r = l2_width(ctx.cfg);
                    par_mle_verify(
                        &*ctx.pool,
                        candidates,
                        n,
                        t,
                        move |f| e2lsh_similarity_at(f, r),
                        threads,
                    )
                }
            };
            return (pairs, None);
        }
        let (pairs, _) = match ctx.cfg.family.measure() {
            Measure::Cosine | Measure::Mips => {
                mle_verify(ctx.data, ctx.pool, candidates, n, t, r_to_cos)
            }
            Measure::Jaccard => mle_verify(ctx.data, ctx.pool, candidates, n, t, |f| f),
            Measure::L2 => {
                let r = l2_width(ctx.cfg);
                mle_verify(ctx.data, ctx.pool, candidates, n, t, move |f| {
                    e2lsh_similarity_at(f, r)
                })
            }
        };
        (pairs, None)
    }
}

/// BayesLSH verification (Algorithm 1).
struct BayesVerifier;

impl Verifier for BayesVerifier {
    fn name(&self) -> &'static str {
        VerifierKind::Bayes.name()
    }

    fn verify(
        &self,
        ctx: &mut SearchContext<'_>,
        candidates: &[(u32, u32)],
    ) -> (Vec<(u32, u32, f64)>, Option<EngineStats>) {
        let cfg = ctx.cfg.bayes();
        let threads = ctx.cfg.parallelism.resolve();
        if threads > 1 {
            let depth = (cfg.max_hashes / cfg.k).max(1) * cfg.k;
            let ids = candidate_ids(candidates, ctx.data.len());
            ctx.pool.par_ensure_ids(ctx.data, &ids, depth, threads);
            let (pairs, stats) = match ctx.cfg.family.measure() {
                Measure::Cosine | Measure::Mips => {
                    par_bayes_verify(&*ctx.pool, &CosineModel::new(), candidates, &cfg, threads)
                }
                Measure::Jaccard => {
                    let model = fit_jaccard_prior(ctx.data, candidates, ctx.cfg);
                    par_bayes_verify(&*ctx.pool, &model, candidates, &cfg, threads)
                }
                Measure::L2 => {
                    let model = FamilyModel::new(ctx.cfg.family);
                    par_bayes_verify(&*ctx.pool, &model, candidates, &cfg, threads)
                }
            };
            return (pairs, Some(stats));
        }
        let (pairs, stats) = match ctx.cfg.family.measure() {
            Measure::Cosine | Measure::Mips => {
                bayes_verify(ctx.data, ctx.pool, &CosineModel::new(), candidates, &cfg)
            }
            Measure::Jaccard => {
                let model = fit_jaccard_prior(ctx.data, candidates, ctx.cfg);
                bayes_verify(ctx.data, ctx.pool, &model, candidates, &cfg)
            }
            Measure::L2 => {
                let model = FamilyModel::new(ctx.cfg.family);
                bayes_verify(ctx.data, ctx.pool, &model, candidates, &cfg)
            }
        };
        (pairs, Some(stats))
    }
}

/// BayesLSH-Lite verification (Algorithm 2).
struct BayesLiteVerifier;

impl Verifier for BayesLiteVerifier {
    fn name(&self) -> &'static str {
        VerifierKind::BayesLite.name()
    }

    fn verify(
        &self,
        ctx: &mut SearchContext<'_>,
        candidates: &[(u32, u32)],
    ) -> (Vec<(u32, u32, f64)>, Option<EngineStats>) {
        let cfg = ctx.cfg.lite();
        let threads = ctx.cfg.parallelism.resolve();
        if threads > 1 {
            let depth = (cfg.h / cfg.k).max(1) * cfg.k;
            let ids = candidate_ids(candidates, ctx.data.len());
            ctx.pool.par_ensure_ids(ctx.data, &ids, depth, threads);
            let (pairs, stats) = match ctx.cfg.family.measure() {
                Measure::Cosine | Measure::Mips => par_bayes_verify_lite(
                    ctx.data,
                    &*ctx.pool,
                    &CosineModel::new(),
                    candidates,
                    &cfg,
                    cosine,
                    threads,
                ),
                Measure::Jaccard => {
                    let model = fit_jaccard_prior(ctx.data, candidates, ctx.cfg);
                    par_bayes_verify_lite(
                        ctx.data, &*ctx.pool, &model, candidates, &cfg, jaccard, threads,
                    )
                }
                Measure::L2 => {
                    let model = FamilyModel::new(ctx.cfg.family);
                    par_bayes_verify_lite(
                        ctx.data,
                        &*ctx.pool,
                        &model,
                        candidates,
                        &cfg,
                        l2_similarity,
                        threads,
                    )
                }
            };
            return (pairs, Some(stats));
        }
        let (pairs, stats) = match ctx.cfg.family.measure() {
            Measure::Cosine | Measure::Mips => bayes_verify_lite(
                ctx.data,
                ctx.pool,
                &CosineModel::new(),
                candidates,
                &cfg,
                cosine,
            ),
            Measure::Jaccard => {
                let model = fit_jaccard_prior(ctx.data, candidates, ctx.cfg);
                bayes_verify_lite(ctx.data, ctx.pool, &model, candidates, &cfg, jaccard)
            }
            Measure::L2 => {
                let model = FamilyModel::new(ctx.cfg.family);
                bayes_verify_lite(ctx.data, ctx.pool, &model, candidates, &cfg, l2_similarity)
            }
        };
        (pairs, Some(stats))
    }
}

/// SPRT verification: Wald sequential hypothesis tests per pair.
struct SprtVerifier;

impl Verifier for SprtVerifier {
    fn name(&self) -> &'static str {
        VerifierKind::Sprt.name()
    }

    fn verify(
        &self,
        ctx: &mut SearchContext<'_>,
        candidates: &[(u32, u32)],
    ) -> (Vec<(u32, u32, f64)>, Option<EngineStats>) {
        let cfg = ctx.cfg.sprt();
        let threads = ctx.cfg.parallelism.resolve();
        if threads > 1 {
            let depth = (cfg.max_hashes / cfg.k).max(1) * cfg.k;
            let ids = candidate_ids(candidates, ctx.data.len());
            ctx.pool.par_ensure_ids(ctx.data, &ids, depth, threads);
            let (pairs, stats) = match ctx.cfg.family.measure() {
                Measure::Cosine | Measure::Mips => par_sprt_verify(
                    ctx.data, &*ctx.pool, candidates, &cfg, cos_to_r, r_to_cos, cosine, threads,
                ),
                Measure::Jaccard => par_sprt_verify(
                    ctx.data,
                    &*ctx.pool,
                    candidates,
                    &cfg,
                    |s| s,
                    |f| f,
                    jaccard,
                    threads,
                ),
                Measure::L2 => {
                    let r = l2_width(ctx.cfg);
                    par_sprt_verify(
                        ctx.data,
                        &*ctx.pool,
                        candidates,
                        &cfg,
                        move |s| e2lsh_collision(s, r),
                        move |p| e2lsh_similarity_at(p, r),
                        l2_similarity,
                        threads,
                    )
                }
            };
            return (pairs, Some(stats));
        }
        let (pairs, stats) = match ctx.cfg.family.measure() {
            Measure::Cosine | Measure::Mips => sprt_verify(
                ctx.data, ctx.pool, candidates, &cfg, cos_to_r, r_to_cos, cosine,
            ),
            Measure::Jaccard => {
                sprt_verify(ctx.data, ctx.pool, candidates, &cfg, |s| s, |f| f, jaccard)
            }
            Measure::L2 => {
                let r = l2_width(ctx.cfg);
                sprt_verify(
                    ctx.data,
                    ctx.pool,
                    candidates,
                    &cfg,
                    move |s| e2lsh_collision(s, r),
                    move |p| e2lsh_similarity_at(p, r),
                    l2_similarity,
                )
            }
        };
        (pairs, Some(stats))
    }
}

/// Fit the Jaccard prior from a random sample of candidate pairs, per the
/// paper's method-of-moments recipe.
pub(crate) fn fit_jaccard_prior(
    data: &Dataset,
    candidates: &[(u32, u32)],
    cfg: &PipelineConfig,
) -> JaccardModel {
    match cfg.prior {
        PriorChoice::Uniform => JaccardModel::uniform(),
        PriorChoice::Fitted => {
            if candidates.len() < 2 {
                return JaccardModel::uniform();
            }
            let take = cfg.prior_sample.min(candidates.len());
            let mut rng = Xoshiro256::seed_from_u64(derive_seed(cfg.seed, 0xBEEF));
            let idx = rng.sample_indices(candidates.len(), take);
            let sims: Vec<f64> = idx
                .into_iter()
                .map(|i| {
                    let (a, b) = candidates[i];
                    jaccard(data.vector(a), data.vector(b))
                })
                .collect();
            JaccardModel::fit_from_sample(&sims)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Algorithm;

    #[test]
    fn eight_algorithms_are_eight_named_compositions() {
        use GeneratorKind::*;
        use VerifierKind::*;
        let expect = [
            (Algorithm::AllPairs, Composition::new(AllPairs, Exact)),
            (Algorithm::ApBayesLsh, Composition::new(AllPairs, Bayes)),
            (
                Algorithm::ApBayesLshLite,
                Composition::new(AllPairs, BayesLite),
            ),
            (Algorithm::Lsh, Composition::new(LshBanding, Exact)),
            (Algorithm::LshApprox, Composition::new(LshBanding, Mle)),
            (Algorithm::LshBayesLsh, Composition::new(LshBanding, Bayes)),
            (
                Algorithm::LshBayesLshLite,
                Composition::new(LshBanding, BayesLite),
            ),
            (Algorithm::PpjoinPlus, Composition::new(PpjoinPlus, Exact)),
        ];
        for (algo, comp) in expect {
            assert_eq!(algo.composition(), comp, "{algo}");
        }
        // The grid is larger than the paper's eight points.
        let off_grid = Composition::new(GeneratorKind::PpjoinPlus, VerifierKind::Bayes);
        assert!(Algorithm::ALL.iter().all(|a| a.composition() != off_grid));
    }

    #[test]
    fn composition_metadata() {
        let c = Composition::new(GeneratorKind::LshBanding, VerifierKind::BayesLite);
        assert_eq!(format!("{c}"), "LSH × BayesLSH-Lite");
        assert!(!c.requires_binary(Measure::Cosine));
        assert!(c.requires_binary(Measure::Jaccard));
        let pp = Composition::new(GeneratorKind::PpjoinPlus, VerifierKind::Exact);
        assert!(pp.requires_binary(Measure::Cosine));
        assert_eq!(pp.binary_requirement(Measure::Cosine), "PPJoin+");
    }

    #[test]
    fn verifier_depths_follow_config() {
        let cfg = PipelineConfig::cosine(0.7);
        assert_eq!(VerifierKind::Exact.signature_depth(&cfg), 0);
        assert_eq!(VerifierKind::Mle.signature_depth(&cfg), cfg.approx_hashes);
        assert_eq!(VerifierKind::Bayes.signature_depth(&cfg), 2048);
        assert_eq!(VerifierKind::BayesLite.signature_depth(&cfg), 128);
        // SPRT scans Lite-style shallow: 4·lite_h, capped by max_hashes.
        assert_eq!(VerifierKind::Sprt.signature_depth(&cfg), 512);
        let cfg = PipelineConfig::jaccard(0.5);
        assert_eq!(VerifierKind::Sprt.signature_depth(&cfg), 256);
    }

    #[test]
    fn non_binary_jaccard_is_a_typed_error() {
        let mut data = Dataset::new(10);
        data.push(SparseVector::from_pairs(vec![(0, 0.5), (3, 2.0)]));
        data.push(SparseVector::from_pairs(vec![(0, 1.5), (2, 1.0)]));
        let cfg = PipelineConfig::jaccard(0.5);
        let mut pool = SigPool::for_config(&cfg, &data);
        let mut ctx = SearchContext {
            data: &data,
            cfg: &cfg,
            pool: &mut pool,
            index: None,
        };
        let err = run_composition(Algorithm::LshBayesLsh.composition(), &mut ctx).unwrap_err();
        assert_eq!(
            err,
            SearchError::NonBinaryData {
                requires: "Jaccard hashing"
            }
        );
    }
}
