//! BayesLSH posterior model for cosine similarity (paper Section 4.2).
//!
//! Signed-random-projection bits collide with probability
//! `r(x, y) = 1 − θ(x, y)/π`, *not* the cosine itself, so inference runs on
//! `r ∈ [0.5, 1]` (for non-negative-weight data the angle is at most π/2)
//! and the answers are transported through the monotone bijections
//! `r2c(r) = cos(π(1−r))` and `c2r(c) = 1 − arccos(c)/π`.
//!
//! A Beta prior restricted to `[0.5, 1]` is no longer conjugate (paper
//! footnote 3), so the paper uses the uniform prior on `[0.5, 1]`; the
//! posterior is then a doubly-truncated Beta,
//! `p(r | M(m,n)) ∝ r^m (1−r)^{n−m}` on `[0.5, 1]`, and every query is a
//! ratio of (regularized) incomplete beta values.

use bayeslsh_lsh::{cos_to_r, r_to_cos};
use bayeslsh_numeric::reg_inc_beta;

use crate::posterior::PosteriorModel;

/// Cosine posterior model with a uniform prior on the collision similarity
/// `r ∈ [0.5, 1]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CosineModel;

impl CosineModel {
    /// Create the model (stateless; the prior is fixed uniform on
    /// `[0.5, 1]`, as in the paper).
    pub fn new() -> Self {
        Self
    }

    /// Posterior mass of `r ∈ [lo, hi] ⊆ [0.5, 1]`, i.e.
    /// `(B_hi − B_lo) / (B_1 − B_0.5)` with parameters `(m+1, n−m+1)`.
    fn r_interval_prob(&self, m: u32, n: u32, lo: f64, hi: f64) -> f64 {
        let a = m as f64 + 1.0;
        let b = (n - m) as f64 + 1.0;
        let lo = lo.clamp(0.5, 1.0);
        let hi = hi.clamp(0.5, 1.0);
        if hi <= lo {
            return 0.0;
        }
        let denom = 1.0 - reg_inc_beta(a, b, 0.5);
        if denom <= 0.0 {
            // The untruncated posterior has essentially no mass above 0.5;
            // the truncated distribution degenerates to a spike at 0.5.
            return if lo <= 0.5 { 1.0 } else { 0.0 };
        }
        let num = reg_inc_beta(a, b, hi) - reg_inc_beta(a, b, lo);
        (num / denom).clamp(0.0, 1.0)
    }

    /// MAP estimate of the collision similarity `r` (the posterior mode of
    /// the truncated distribution): `clamp(m/n, 0.5, 1)`.
    pub fn map_r(&self, m: u32, n: u32) -> f64 {
        assert!(n > 0, "MAP estimate needs at least one observation");
        (m as f64 / n as f64).clamp(0.5, 1.0)
    }
}

impl PosteriorModel for CosineModel {
    fn prob_above_threshold(&self, m: u32, n: u32, t: f64) -> f64 {
        // Pr[S ≥ t] = Pr[R ≥ c2r(t)] by monotonicity of c2r.
        let tr = cos_to_r(t);
        self.r_interval_prob(m, n, tr, 1.0)
    }

    fn map_estimate(&self, m: u32, n: u32) -> f64 {
        r_to_cos(self.map_r(m, n))
    }

    fn concentration(&self, m: u32, n: u32, delta: f64) -> f64 {
        // Pr[Ŝ−δ < S < Ŝ+δ] = Pr[c2r(Ŝ−δ) < R < c2r(Ŝ+δ)].
        let s_hat = self.map_estimate(m, n);
        let lo = cos_to_r((s_hat - delta).max(-1.0));
        let hi = cos_to_r((s_hat + delta).min(1.0));
        self.r_interval_prob(m, n, lo, hi)
    }

    fn name(&self) -> &'static str {
        "cosine-uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posterior::test_support::check_model_invariants;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn invariant_battery() {
        check_model_invariants(&CosineModel::new(), 0.5);
        check_model_invariants(&CosineModel::new(), 0.7);
        check_model_invariants(&CosineModel::new(), 0.9);
    }

    #[test]
    fn map_matches_paper_formula() {
        // Paper: R̂ = m/n, Ŝ = r2c(m/n).
        let model = CosineModel::new();
        assert_close(model.map_estimate(24, 32), r_to_cos(0.75), 1e-12);
        assert_close(model.map_estimate(32, 32), 1.0, 1e-12);
        // Below m/n = 0.5 the truncated posterior peaks at r = 0.5 → S = 0.
        assert_close(model.map_estimate(10, 32), 0.0, 1e-12);
    }

    #[test]
    fn posterior_normalizes() {
        let model = CosineModel::new();
        for &(m, n) in &[(24u32, 32u32), (100, 128), (40, 64), (5, 64)] {
            assert_close(model.r_interval_prob(m, n, 0.5, 1.0), 1.0, 1e-9);
        }
    }

    #[test]
    fn threshold_zero_is_certain() {
        // Every pair satisfies S >= 0 under this model (r >= 0.5).
        let model = CosineModel::new();
        assert_close(model.prob_above_threshold(16, 32, 0.0), 1.0, 1e-9);
    }

    #[test]
    fn high_match_rate_confident_low_match_rate_hopeless() {
        let model = CosineModel::new();
        // 127/128 bits agree: angle near 0, S >= 0.7 almost surely.
        assert!(model.prob_above_threshold(127, 128, 0.7) > 0.99);
        // 64/128 bits agree: r ≈ 0.5, cosine ≈ 0 — the posterior tail above
        // c2r(0.7) ≈ 0.747 sits >5σ out (~1e-8 of the truncated mass).
        assert!(model.prob_above_threshold(64, 128, 0.7) < 1e-6);
    }

    #[test]
    fn prob_against_numerical_integration() {
        // Direct trapezoid integration of r^m (1−r)^{n−m} on [0.5, 1].
        let model = CosineModel::new();
        let (m, n) = (52u32, 64u32);
        let t: f64 = 0.7;
        let tr = cos_to_r(t);
        let pdf = |r: f64| (m as f64) * r.ln() + ((n - m) as f64) * (1.0 - r).ln();
        let integrate = |lo: f64, hi: f64| {
            let steps = 200_000;
            let h = (hi - lo) / steps as f64;
            let mut acc = 0.0;
            for i in 0..steps {
                let r0 = lo + i as f64 * h;
                let r1 = r0 + h;
                acc += 0.5 * (pdf(r0).exp() + pdf(r1).exp()) * h;
            }
            acc
        };
        let expected = integrate(tr, 1.0 - 1e-12) / integrate(0.5, 1.0 - 1e-12);
        assert_close(model.prob_above_threshold(m, n, t), expected, 1e-5);
    }

    #[test]
    fn concentration_grows_with_evidence() {
        let model = CosineModel::new();
        let c64 = model.concentration(48, 64, 0.05);
        let c1024 = model.concentration(768, 1024, 0.05);
        assert!(c1024 > c64, "{c1024} vs {c64}");
        assert!(
            c1024 > 0.9,
            "2048 bits at 75% agreement should be concentrated: {c1024}"
        );
    }

    #[test]
    fn degenerate_low_agreement_is_handled() {
        // m = 0 with huge n: the posterior mass above 0.5 underflows; the
        // model must neither panic nor return NaN.
        let model = CosineModel::new();
        let p = model.prob_above_threshold(0, 2048, 0.5);
        assert!(p.is_finite());
        assert!(p <= 1e-6);
        let c = model.concentration(0, 2048, 0.05);
        assert!((0.0..=1.0).contains(&c));
    }
}
