//! Classical fixed-`n` similarity estimation ("LSH Approx", paper
//! Section 3).
//!
//! The standard approach compares the same, manually tuned number of hashes
//! for every candidate pair and uses the maximum-likelihood estimate
//! `ŝ = transform(m/n)`. It is the baseline whose two weaknesses motivate
//! BayesLSH: the right `n` depends on the (unknown) similarity being
//! estimated (Figure 1), and no early pruning ever happens (Section 3.2).

use bayeslsh_lsh::SignaturePool;
use bayeslsh_sparse::Dataset;

use crate::engine::run_end;

/// Verify candidates with the classical MLE over a fixed `n_hashes`.
///
/// `transform` maps the raw agreement fraction to the target similarity
/// (identity for Jaccard; `r2c` for cosine bits). Pairs whose estimate
/// clears `threshold` are returned with their estimates; the second return
/// value is the total number of hash comparisons (always
/// `candidates · n_hashes` — no pruning, by design).
pub fn mle_verify<P: SignaturePool>(
    data: &Dataset,
    pool: &mut P,
    candidates: &[(u32, u32)],
    n_hashes: u32,
    threshold: f64,
    transform: impl Fn(f64) -> f64,
) -> (Vec<(u32, u32, f64)>, u64) {
    assert!(n_hashes > 0);
    // Every candidate signature reaches exactly `n_hashes`: advise the pool
    // so first extensions allocate their whole signature once.
    pool.depth_hint(n_hashes);
    let mut out = Vec::new();
    let mut ids = Vec::new();
    let mut counts = Vec::new();
    let mut i = 0usize;
    while i < candidates.len() {
        // Runs of candidates sharing a probe are counted in one batched
        // word-parallel sweep over the full fixed depth.
        let j = run_end(candidates, i);
        let run = &candidates[i..j];
        let a = run[0].0;
        pool.ensure(a, data.vector(a), n_hashes);
        ids.clear();
        for &(_, b) in run {
            pool.ensure(b, data.vector(b), n_hashes);
            ids.push(b);
        }
        pool.agreements_batched(a, &ids, 0, n_hashes, &mut counts);
        for (&(_, b), &m) in run.iter().zip(&counts) {
            let s_hat = transform(m as f64 / n_hashes as f64);
            if s_hat >= threshold {
                out.push((a, b, s_hat));
            }
        }
        i = j;
    }
    (out, candidates.len() as u64 * n_hashes as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_lsh::{r_to_cos, BitSignatures, IntSignatures, MinHasher, SrpHasher};
    use bayeslsh_sparse::{jaccard, SparseVector};

    #[test]
    fn jaccard_estimates_converge_to_truth() {
        let mut data = Dataset::new(2000);
        // J = 2/3 by construction.
        data.push(SparseVector::from_indices((0..100).collect()));
        data.push(SparseVector::from_indices((20..120).collect()));
        let mut pool = IntSignatures::new(MinHasher::new(80), data.len());
        let (out, comps) = mle_verify(&data, &mut pool, &[(0, 1)], 2048, 0.3, |f| f);
        assert_eq!(out.len(), 1);
        let truth = jaccard(data.vector(0), data.vector(1));
        assert!(
            (out[0].2 - truth).abs() < 0.05,
            "estimate {} truth {truth}",
            out[0].2
        );
        assert_eq!(comps, 2048);
    }

    #[test]
    fn threshold_filters_on_the_estimate() {
        let mut data = Dataset::new(2000);
        data.push(SparseVector::from_indices((0..100).collect()));
        data.push(SparseVector::from_indices((95..195).collect())); // J ≈ 0.026
        let mut pool = IntSignatures::new(MinHasher::new(81), data.len());
        let (out, _) = mle_verify(&data, &mut pool, &[(0, 1)], 512, 0.5, |f| f);
        assert!(out.is_empty());
    }

    #[test]
    fn cosine_transform_is_applied() {
        let mut data = Dataset::new(64);
        let v = SparseVector::from_pairs((0..64).map(|i| (i, 1.0 + (i % 7) as f32)));
        data.push(v.clone());
        data.push(v); // identical → all bits agree → estimate r2c(1) = 1.
        let mut pool = BitSignatures::new(SrpHasher::new(64, 82), data.len());
        let (out, _) = mle_verify(&data, &mut pool, &[(0, 1)], 256, 0.9, r_to_cos);
        assert_eq!(out.len(), 1);
        assert!((out[0].2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_pruning_costs_full_budget() {
        // Even hopeless pairs consume n_hashes comparisons — the exact
        // weakness BayesLSH removes.
        let mut data = Dataset::new(4000);
        for i in 0..6u32 {
            data.push(SparseVector::from_indices(
                (i * 500..i * 500 + 50).collect(),
            ));
        }
        let cands: Vec<(u32, u32)> = (0..6)
            .flat_map(|a| ((a + 1)..6).map(move |b| (a, b)))
            .collect();
        let mut pool = IntSignatures::new(MinHasher::new(83), data.len());
        let (out, comps) = mle_verify(&data, &mut pool, &cands, 360, 0.3, |f| f);
        assert!(out.is_empty());
        assert_eq!(comps, cands.len() as u64 * 360);
    }
}
