//! The build-once/query-many search API.
//!
//! [`Searcher`] owns a corpus together with everything the paper's economy
//! argument says should be paid for once: the signature pool and the LSH
//! banding index. Construction (via [`SearcherBuilder`]) hashes and
//! indexes a single time; afterwards the searcher serves any mix of
//!
//! * [`Searcher::all_pairs`] — the paper's batch join, through the
//!   configured [`Composition`];
//! * [`Searcher::query`] — threshold point queries for one vector;
//! * [`Searcher::top_k`] — k-nearest-neighbour retrieval with Bayesian
//!   candidate pruning (the paper's future-work item, previously siloed in
//!   [`crate::knn::KnnIndex`]);
//! * [`Searcher::insert`] — incremental corpus growth, extending the
//!   signature pool and banding index in place.
//!
//! Under the default [`HashMode::Eager`], every corpus signature is hashed
//! to the verifier's maximum depth at build (and insert) time, so queries
//! never touch the pool — repeated queries cost zero corpus hashing.
//! [`HashMode::Lazy`] keeps the paper's lazy-extension economy instead:
//! build hashes only to banding depth, and verification deepens exactly
//! the signatures that surviving candidates demand (amortized across
//! queries — a signature is never re-hashed).
//!
//! Builds, batch joins, point queries, and inserts all fan out across the
//! worker budget set by [`SearcherBuilder::parallelism`] (resolved once at
//! build; see [`Searcher::threads`]). Output is bit-identical to the
//! serial path at any thread count. Two cost caveats: under
//! [`HashMode::Lazy`] a parallel verification pre-extends candidate
//! signatures to the verifier's scan depth (eager builds already pay it),
//! and [`Searcher::top_k`]'s rising-threshold prune runs sequentially by
//! design while its hashing/probing phases parallelize.
//!
//! ## Concurrent reads
//!
//! [`Searcher::query`], [`Searcher::top_k`], and [`Searcher::all_pairs`]
//! take `&self`, so a `Searcher` behind an `Arc` serves many reader
//! threads at once. The signature pool sits behind an internal `RwLock`:
//! when the pool already covers a request (always, under the default
//! [`HashMode::Eager`]), queries run entirely under a shared read lock —
//! readers never block each other. Under [`HashMode::Lazy`] a query that
//! must deepen signatures upgrades to the write lock for that call, and
//! results are bit-identical either way (signature bits are a pure
//! function of object and position, so the interleaving of lazily
//! deepening readers cannot change any outcome). Mutation —
//! [`Searcher::insert`], [`Searcher::remove`], [`Searcher::compact`] —
//! still requires `&mut self`; see [`crate::serving::ServingSearcher`]
//! for serving reads concurrently with a writer.

use std::collections::BinaryHeap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use bayeslsh_candgen::{BandingIndex, BandingPlan};
use bayeslsh_lsh::{Measure, SignaturePool};
use bayeslsh_numeric::{fan_out, Parallelism};
use bayeslsh_sparse::{Dataset, SparseVector};

use crate::cache::ConcentrationCache;
use crate::compose::{
    l2_width, run_composition_prechecked, Composition, CompositionOutput, GeneratorKind,
    SearchContext, SigPool, VerifierKind,
};
use crate::config::SprtConfig;
use crate::cosine_model::CosineModel;
use crate::engine::{RunScan, RunVerdict};
use crate::error::SearchError;
use crate::family_model::FamilyModel;
use crate::jaccard_model::JaccardModel;
use crate::knn::{HeapItem, KnnParams, KnnStats};
use crate::minmatch::{MinMatchCache, MinMatchTable};
use crate::pipeline::{Algorithm, PipelineConfig};
use crate::posterior::PosteriorModel;
use crate::sprt::SprtTable;

/// When corpus signatures are hashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HashMode {
    /// Hash every vector to the configured verifier's maximum depth at
    /// build/insert time. Queries never extend the pool, so per-query cost
    /// is pure probing + comparison — the right default for a standing
    /// service.
    #[default]
    Eager,
    /// Hash only to banding depth at build/insert time and let
    /// verification extend signatures on demand — the paper's "outlying
    /// points need only be hashed a few times" economy. Extensions are
    /// cached in the pool, so repeated queries still never re-hash.
    Lazy,
}

/// Builder for [`Searcher`]: configuration is validated and the corpus
/// hashed/indexed exactly once, in [`SearcherBuilder::build`].
#[derive(Debug, Clone)]
pub struct SearcherBuilder {
    cfg: PipelineConfig,
    composition: Composition,
    mode: HashMode,
}

impl SearcherBuilder {
    /// A builder with the given pipeline configuration, defaulting to the
    /// paper's flagship composition (LSH banding × BayesLSH).
    pub fn new(cfg: PipelineConfig) -> Self {
        Self {
            cfg,
            composition: Algorithm::LshBayesLsh.composition(),
            mode: HashMode::Eager,
        }
    }

    /// Preset: cosine search (SRP signatures) at similarity threshold `t`,
    /// with every other knob at the paper defaults.
    pub fn cosine(t: f64) -> Self {
        Self::new(PipelineConfig::cosine(t))
    }

    /// Preset: Jaccard search (minwise hashing, binary vectors) at
    /// similarity threshold `t`.
    pub fn jaccard(t: f64) -> Self {
        Self::new(PipelineConfig::jaccard(t))
    }

    /// Preset: L2 proximity search (E2LSH quantized projections with
    /// bucket width `r`) at similarity threshold `t` on the
    /// `s = 1/(1 + d)` scale.
    pub fn l2(t: f64, r: f64) -> Self {
        Self::new(PipelineConfig::l2(t, r))
    }

    /// Preset: maximum-inner-product search at augmented-cosine threshold
    /// `t`. Corpus and queries are expected to already carry the
    /// asymmetric augmentation (see `bayeslsh_sparse::MipsTransform`).
    pub fn mips(t: f64) -> Self {
        Self::new(PipelineConfig::mips(t))
    }

    /// Step-wise multi-probe budget per band for point queries (default 1 =
    /// classic single-probe). See [`PipelineConfig::probes`].
    pub fn probes(mut self, probes: usize) -> Self {
        self.cfg.probes = probes;
        self
    }

    /// Use the composition named by one of the paper's eight algorithms.
    pub fn algorithm(mut self, algo: Algorithm) -> Self {
        self.composition = algo.composition();
        self
    }

    /// Use an arbitrary generator × verifier composition (including
    /// off-grid ones the paper never evaluated).
    pub fn composition(mut self, composition: Composition) -> Self {
        self.composition = composition;
        self
    }

    /// Choose when corpus signatures are hashed (default:
    /// [`HashMode::Eager`]).
    pub fn hash_mode(mut self, mode: HashMode) -> Self {
        self.mode = mode;
        self
    }

    /// Set the worker-thread budget for build-time hashing/indexing and
    /// for batch and query execution (default: [`Parallelism::Auto`]).
    /// Resolved once, at [`SearcherBuilder::build`]; output is
    /// bit-identical to `Parallelism::serial()` whatever the setting.
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.cfg.parallelism = parallelism;
        self
    }

    /// Validate the configuration, hash the corpus, and build the banding
    /// index.
    ///
    /// # Errors
    ///
    /// [`SearchError::InvalidConfig`] for out-of-range parameters (see
    /// [`PipelineConfig::validate`]), [`SearchError::NonBinaryData`] when
    /// the measure or generator needs binary vectors and `data` has
    /// weighted ones.
    pub fn build(self, data: Dataset) -> Result<Searcher, SearchError> {
        self.cfg.validate()?;
        let measure = self.cfg.family.measure();
        if self.composition.generator == GeneratorKind::PpjoinPlus
            && matches!(measure, Measure::L2 | Measure::Mips)
        {
            return Err(SearchError::invalid(
                "family",
                format!(
                    "PPJoin+ supports cosine and Jaccard only, got {}",
                    self.cfg.family
                ),
            ));
        }
        if self.composition.requires_binary(measure)
            && !data.vectors().iter().all(|v| v.is_binary())
        {
            return Err(SearchError::NonBinaryData {
                requires: self.composition.binary_requirement(measure),
            });
        }
        // Resolve the thread budget once: `Auto` reads the environment /
        // core count here, and every later operation (including the
        // compositions run through `all_pairs`) sees the fixed count.
        let threads = self.cfg.parallelism.resolve();
        let mut cfg = self.cfg;
        cfg.parallelism = Parallelism::threads(threads.min(u32::MAX as usize) as u32);
        let plan = cfg.banding_plan();
        let verifier_depth = self.composition.verifier.signature_depth(&cfg);
        let sig_depth = match self.mode {
            HashMode::Eager => plan.params.total_hashes().max(verifier_depth),
            HashMode::Lazy => plan.params.total_hashes(),
        };
        let mut pool = SigPool::for_config(&cfg, &data);
        // Every object is hashed to `sig_depth` right below, so the first
        // extension allocates each signature once. (No hint to the
        // verifier's *cap* under lazy hashing: later deepening is
        // pruning-dominant, so front-loading it would over-reserve.)
        pool.depth_hint(sig_depth);
        // Parallel build: hash the corpus chunk-per-thread (spliced back in
        // id order), then construct the band-sharded index. Bit-identical
        // to the serial per-object ensure/insert loop at any thread count.
        let ids: Vec<u32> = data
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(id, _)| id)
            .collect();
        pool.par_ensure_ids(&data, &ids, sig_depth, threads);
        let index = BandingIndex::par_build(plan.params, &ids, threads, |id, band| {
            pool.band_key(id, band, plan.params)
        });
        if self.mode == HashMode::Eager {
            // Materialize the hasher bank to query depth so `&self` queries
            // run entirely under the pool's read lock (even when the corpus
            // had nothing to hash, e.g. all-empty vectors).
            pool.prepare_query(sig_depth, threads);
        }
        let removed = vec![false; data.len()];
        Ok(Searcher {
            data,
            cfg,
            composition: self.composition,
            mode: self.mode,
            threads,
            sig_depth,
            pool: RwLock::new(pool),
            index,
            plan,
            removed,
            n_removed: 0,
            minmatch_cache: MinMatchCache::new(),
        })
    }
}

/// Per-query statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Candidates produced by probing the banding index.
    pub candidates: u64,
    /// Candidates pruned by the posterior test (Bayesian verifiers only).
    pub pruned: u64,
    /// Exact similarity computations.
    pub exact: u64,
    /// Hash comparisons performed.
    pub hash_comparisons: u64,
    /// Bucket lookups against the banding index: one per band for
    /// single-probe queries, up to `probes` per band under step-wise
    /// multi-probe (empty probe steps still count — they paid the lookup).
    pub bucket_probes: u64,
}

/// The result of one threshold point query.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Matching corpus ids with similarities (exact or estimated,
    /// depending on the composition's verifier), sorted by decreasing
    /// similarity. Under the full-BayesLSH verifier this follows the
    /// paper's output contract: every candidate whose posterior
    /// probability of clearing the threshold stayed ≥ ε is emitted with
    /// its estimate, even if the estimate lands slightly below `t`.
    pub neighbors: Vec<(u32, f64)>,
    /// Query statistics.
    pub stats: QueryStats,
}

impl QueryOutput {
    /// Rewrite every neighbour id through `map` (e.g. shard-local →
    /// global), preserving order and statistics. Routers remap before
    /// merging so the merged output speaks global ids throughout.
    pub fn remap_ids(&mut self, map: impl Fn(u32) -> u32) {
        for n in &mut self.neighbors {
            n.0 = map(n.0);
        }
    }
}

/// Merge per-shard threshold-query outputs into the output a single
/// index over the union corpus would produce: neighbours concatenate
/// (candidate sets of disjoint shards partition the global candidate
/// set, and per-candidate verdicts are order-independent on the query
/// path), statistics add, and the merged list is re-sorted by the same
/// total order [`Searcher::query`] uses — decreasing similarity, ties
/// toward the lower id. Call [`QueryOutput::remap_ids`] first so ids
/// are global.
pub fn merge_query_outputs(parts: Vec<QueryOutput>) -> QueryOutput {
    let mut neighbors = Vec::new();
    let mut stats = QueryStats::default();
    for part in parts {
        neighbors.extend(part.neighbors);
        stats.candidates += part.stats.candidates;
        stats.pruned += part.stats.pruned;
        stats.exact += part.stats.exact;
        stats.hash_comparisons += part.stats.hash_comparisons;
        stats.bucket_probes += part.stats.bucket_probes;
    }
    neighbors.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    QueryOutput { neighbors, stats }
}

/// The adjudicated fate of one candidate in a [`Searcher::top_k`] scan,
/// as returned by [`Searcher::scan_top_k_candidate`]. `comparisons` is
/// the number of hash comparisons spent on the candidate (what `top_k`
/// folds into [`KnnStats::hash_comparisons`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CandidateScan {
    /// The posterior test pruned the candidate before exact verification.
    Pruned {
        /// Hash comparisons spent before pruning.
        comparisons: u32,
    },
    /// The candidate survived every chunk; `similarity` is its exact
    /// similarity to the query under the searcher's measure.
    Survivor {
        /// Hash comparisons spent (the full scan budget).
        comparisons: u32,
        /// Exact similarity to the query.
        similarity: f64,
    },
}

/// The result of one top-k query.
#[derive(Debug, Clone)]
pub struct TopKOutput {
    /// Up to `k` most similar corpus ids, sorted by decreasing similarity;
    /// similarities are exact.
    pub neighbors: Vec<(u32, f64)>,
    /// Query statistics.
    pub stats: KnnStats,
}

/// A persistent similarity searcher: one corpus, one signature pool, one
/// banding index — many operations. See the [module docs](crate::searcher)
/// for the full story and [`SearcherBuilder`] for construction.
#[derive(Debug)]
pub struct Searcher {
    data: Dataset,
    cfg: PipelineConfig,
    composition: Composition,
    mode: HashMode,
    /// Worker-thread budget, resolved once at build.
    threads: usize,
    /// Depth every indexed vector is hashed to at build/insert time.
    sig_depth: u32,
    /// The signature pool, behind a lock so `&self` queries can share it:
    /// fully-covered requests run under the read lock, lazy deepening
    /// upgrades to the write lock per call.
    pool: RwLock<SigPool>,
    index: BandingIndex,
    plan: BandingPlan,
    /// Tombstones: `removed[id]` marks a vector deleted by
    /// [`Searcher::remove`] but not yet rewritten out by
    /// [`Searcher::compact`].
    removed: Vec<bool>,
    /// Count of set tombstones.
    n_removed: usize,
    /// Point-query pruning tables, memoized per query shape
    /// `(threshold, ε, k, max_hashes)`; thread-safe, so verification
    /// workers and alternating query shapes share it without eviction or
    /// corruption.
    minmatch_cache: MinMatchCache,
}

impl Clone for Searcher {
    fn clone(&self) -> Self {
        Searcher {
            data: self.data.clone(),
            cfg: self.cfg,
            composition: self.composition,
            mode: self.mode,
            threads: self.threads,
            sig_depth: self.sig_depth,
            pool: RwLock::new(self.pool_read().clone()),
            index: self.index.clone(),
            plan: self.plan,
            removed: self.removed.clone(),
            n_removed: self.n_removed,
            minmatch_cache: self.minmatch_cache.clone(),
        }
    }
}

/// The state a snapshot must capture to reconstruct a [`Searcher`]; the
/// derived fields (banding plan, pruning-table memo, pool allocation hint)
/// are recomputed on [`Searcher::from_parts`].
pub(crate) struct SearcherParts {
    pub data: Dataset,
    pub cfg: PipelineConfig,
    pub composition: Composition,
    pub mode: HashMode,
    pub threads: usize,
    pub sig_depth: u32,
    pub pool: SigPool,
    pub index: BandingIndex,
}

impl Searcher {
    /// Start building a searcher for `cfg`.
    pub fn builder(cfg: PipelineConfig) -> SearcherBuilder {
        SearcherBuilder::new(cfg)
    }

    /// The standing signature pool (snapshot serialization), under the
    /// shared read lock.
    pub(crate) fn pool(&self) -> RwLockReadGuard<'_, SigPool> {
        self.pool_read()
    }

    fn pool_read(&self) -> RwLockReadGuard<'_, SigPool> {
        self.pool.read().expect("signature pool lock poisoned")
    }

    fn pool_write(&self) -> RwLockWriteGuard<'_, SigPool> {
        self.pool.write().expect("signature pool lock poisoned")
    }

    fn pool_mut(&mut self) -> &mut SigPool {
        self.pool.get_mut().expect("signature pool lock poisoned")
    }

    /// The standing banding index (snapshot serialization).
    pub(crate) fn index(&self) -> &BandingIndex {
        &self.index
    }

    /// The depth every indexed vector is hashed to at build/insert time.
    pub(crate) fn sig_depth(&self) -> u32 {
        self.sig_depth
    }

    /// Reassemble a searcher from snapshot parts, recomputing everything a
    /// snapshot does not carry exactly as [`SearcherBuilder::build`] would:
    /// the banding plan is a pure function of the config, the pruning-table
    /// memo starts empty (it is rebuilt deterministically on demand), and
    /// the pool gets the same allocation hint future inserts would have
    /// seen.
    pub(crate) fn from_parts(parts: SearcherParts) -> Self {
        let SearcherParts {
            data,
            cfg,
            composition,
            mode,
            threads,
            sig_depth,
            mut pool,
            index,
        } = parts;
        let plan = cfg.banding_plan();
        pool.depth_hint(sig_depth);
        if mode == HashMode::Eager {
            // Same bank materialization `SearcherBuilder::build` performs,
            // so reloaded eager searchers answer `&self` queries under the
            // read lock from the first call.
            pool.prepare_query(sig_depth, threads);
        }
        let removed = vec![false; data.len()];
        Searcher {
            data,
            cfg,
            composition,
            mode,
            threads,
            sig_depth,
            pool: RwLock::new(pool),
            index,
            plan,
            removed,
            n_removed: 0,
            minmatch_cache: MinMatchCache::new(),
        }
    }

    /// The indexed corpus.
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// The composition batch runs and point queries verify with.
    pub fn composition(&self) -> Composition {
        self.composition
    }

    /// The hashing mode.
    pub fn hash_mode(&self) -> HashMode {
        self.mode
    }

    /// The worker-thread budget, resolved at build time from the
    /// configured [`Parallelism`]. `1` means the exact serial path.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The banding plan the index was built with, including the achieved
    /// (vs. requested) false-negative rate.
    pub fn banding_plan(&self) -> BandingPlan {
        self.plan
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Total corpus hashes computed so far — the cost the build-once
    /// design amortizes. Under [`HashMode::Eager`] this is constant across
    /// [`Searcher::query`] and [`Searcher::all_pairs`] calls, changing
    /// only on [`Searcher::insert`] — with one exception:
    /// [`Searcher::top_k`] may deepen candidate signatures up to its
    /// per-call `params.h` budget (cached, so repeated top-k queries add
    /// nothing either).
    pub fn hash_count(&self) -> u64 {
        self.pool_read().total_hashes()
    }

    /// Run the configured composition over the whole corpus, reusing the
    /// standing signature pool and banding index. Preconditions were
    /// enforced at build/insert time, so no per-call corpus scan happens.
    /// Takes the pool's write lock for the duration (batch joins may
    /// lazily deepen signatures), so it serializes against concurrent
    /// point queries but never corrupts them.
    ///
    /// # Errors
    ///
    /// None currently — fallible for forward compatibility.
    pub fn all_pairs(&self) -> Result<CompositionOutput, SearchError> {
        let mut pool = self.pool_write();
        let mut ctx = SearchContext {
            data: &self.data,
            cfg: &self.cfg,
            pool: &mut pool,
            index: Some(&self.index),
        };
        let mut out = run_composition_prechecked(self.composition, &mut ctx)?;
        if self.n_removed > 0 {
            // The exact generators (AllPairs, PPJoin+) scan the raw corpus,
            // which keeps tombstoned vectors in place until `compact()`;
            // filter their pairs so every generator agrees with the
            // standing index, where removed ids are already unlinked.
            out.pairs
                .retain(|&(a, b, _)| !self.removed[a as usize] && !self.removed[b as usize]);
        }
        Ok(out)
    }

    /// All corpus vectors whose similarity to `q` clears `threshold`,
    /// verified with the composition's verifier over the standing index.
    ///
    /// Point-query candidates always come from the standing LSH banding
    /// index, whatever the composition's generator — the generator governs
    /// [`Searcher::all_pairs`] batches only; queries share just the
    /// verifier. So even exact compositions (AllPairs, PPJoin+) carry the
    /// banding plan's expected false-negative rate on this path (see
    /// [`Searcher::banding_plan`]). The index was provisioned for
    /// `config().threshold`; that rate holds for
    /// `threshold >= config().threshold` and degrades below it.
    ///
    /// # Errors
    ///
    /// [`SearchError::InvalidConfig`] for a threshold outside `(0, 1]`,
    /// [`SearchError::NonBinaryData`] for a weighted `q` when the
    /// composition needs binary vectors, and
    /// [`SearchError::DimensionExceeded`] when `q` has feature indices
    /// beyond the indexed space (cosine only — the projection planes are
    /// fixed at build time).
    pub fn query(&self, q: &SparseVector, threshold: f64) -> Result<QueryOutput, SearchError> {
        if !(threshold > 0.0 && threshold <= 1.0) {
            return Err(SearchError::invalid(
                "threshold",
                format!("must lie in (0, 1], got {threshold}"),
            ));
        }
        self.check_query(q)?;
        let mut stats = QueryStats::default();
        if q.is_empty() || self.data.is_empty() {
            return Ok(QueryOutput {
                neighbors: Vec::new(),
                stats,
            });
        }

        let params = self.plan.params;
        let scan_cap = self.composition.verifier.signature_depth(&self.cfg);
        let depth = params.total_hashes().max(scan_cap);

        // Fast path: when the hasher bank covers the query depth and every
        // candidate's stored signature covers the verifier's scan cap
        // (always, under eager hashing), the whole query runs under the
        // shared read lock — concurrent readers never block each other.
        {
            let pool = self.pool_read();
            if pool.query_ready(depth) {
                let sig = pool.hash_query_ready(q, depth, self.threads);
                let keys = pool.query_band_keys(&sig, params);
                let (cand_ids, probes_done) = self.probe_query_index(&pool, q, &keys);
                if cand_ids.iter().all(|&id| pool.len(id) >= scan_cap) {
                    stats.candidates = cand_ids.len() as u64;
                    stats.bucket_probes = probes_done;
                    let mut access = ReadPool(&pool);
                    let mut neighbors = if self.threads > 1 {
                        self.par_verify_query(
                            &mut access,
                            q,
                            threshold,
                            &sig,
                            &cand_ids,
                            &mut stats,
                        )
                    } else {
                        self.serial_verify_query(
                            &mut access,
                            q,
                            threshold,
                            &sig,
                            &cand_ids,
                            &mut stats,
                        )
                    };
                    neighbors.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
                    return Ok(QueryOutput { neighbors, stats });
                }
            }
        }

        // Slow path (lazy hashing with signatures still shallow): redo the
        // query under the write lock with the usual lazy extension.
        // Signature bits are pure functions of (object, position), so this
        // path is bit-identical to the read path.
        let mut pool = self.pool_write();
        let sig = if self.threads > 1 {
            pool.hash_query_par(q, depth, self.threads)
        } else {
            pool.hash_query(q, depth)
        };
        let keys = pool.query_band_keys(&sig, params);
        let (cand_ids, probes_done) = self.probe_query_index(&pool, q, &keys);
        stats.candidates = cand_ids.len() as u64;
        stats.bucket_probes = probes_done;
        let mut access = WritePool(&mut pool);
        let mut neighbors = if self.threads > 1 {
            self.par_verify_query(&mut access, q, threshold, &sig, &cand_ids, &mut stats)
        } else {
            self.serial_verify_query(&mut access, q, threshold, &sig, &cand_ids, &mut stats)
        };
        neighbors.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(QueryOutput { neighbors, stats })
    }

    /// Generate candidates for a threshold point query, honouring the
    /// [`crate::pipeline::PipelineConfig::probes`] knob. Single-probe (the
    /// default, and the only option for integer-hash families, whose band
    /// keys are FxHash digests with no meaningful single-bit flips) keeps
    /// the one-lookup-per-band fast path; `probes > 1` on a bit family
    /// walks the step-wise multi-probe sequences instead. Returns the
    /// deduplicated candidate ids and the number of bucket lookups paid.
    fn probe_query_index(&self, pool: &SigPool, q: &SparseVector, keys: &[u64]) -> (Vec<u32>, u64) {
        let params = self.plan.params;
        let probes = match pool {
            // The base bucket plus one probe per flippable band bit.
            SigPool::Bits(_) => self.cfg.probes.min(params.k as usize + 1),
            SigPool::Ints(_) | SigPool::Projs(_) => 1,
        };
        if probes <= 1 {
            let ids = self.index.par_probe(keys, self.threads);
            return (ids, keys.len() as u64);
        }
        let SigPool::Bits(bits) = pool else {
            unreachable!("multi-probe clamps to 1 for non-bit pools")
        };
        // Per-band probe sequences: the band's own key first, then
        // single-bit flips in ascending-|margin| order — the bit whose
        // projection landed closest to its hyperplane is the likeliest to
        // differ for a true near neighbour, so its flip has the highest
        // expected collision probability.
        let mut margins = Vec::new();
        bits.hasher()
            .project_into(q, 0, params.total_hashes(), &mut margins);
        let seqs: Vec<Vec<u64>> = keys
            .iter()
            .enumerate()
            .map(|(band, &base)| {
                let lo = band * params.k as usize;
                let mut bit_order: Vec<usize> = (0..params.k as usize).collect();
                bit_order.sort_by(|&a, &b| {
                    margins[lo + a]
                        .abs()
                        .total_cmp(&margins[lo + b].abs())
                        .then(a.cmp(&b))
                });
                let mut seq = Vec::with_capacity(probes);
                seq.push(base);
                seq.extend(
                    bit_order
                        .iter()
                        .take(probes - 1)
                        .map(|&bit| base ^ (1u64 << bit)),
                );
                seq
            })
            .collect();
        self.index.probe_multi(&seqs)
    }

    /// Serial candidate verification for [`Searcher::query`] (lazily
    /// extending the pool as the paper's economy argument prefers). The
    /// exact and MLE arms share the parallel implementations — at one
    /// thread those run inline and compare every candidate to the same
    /// fixed depth a dedicated serial loop would, so only the Bayesian
    /// arms (whose laziness matters) keep serial twins.
    fn serial_verify_query<P: PoolAccess>(
        &self,
        pool: &mut P,
        q: &SparseVector,
        threshold: f64,
        sig: &[u32],
        cand_ids: &[u32],
        stats: &mut QueryStats,
    ) -> Vec<(u32, f64)> {
        match self.composition.verifier {
            VerifierKind::Exact => self.par_query_exact(q, threshold, cand_ids, stats),
            VerifierKind::Mle => self.par_query_mle(pool, threshold, sig, cand_ids, stats),
            VerifierKind::Bayes => match self.cfg.family.measure() {
                Measure::Cosine | Measure::Mips => {
                    self.query_bayes(pool, &CosineModel::new(), threshold, sig, cand_ids, stats)
                }
                // The fitted prior is a batch concept (it samples candidate
                // *pairs*); point queries fall back to the uniform prior.
                Measure::Jaccard => self.query_bayes(
                    pool,
                    &JaccardModel::uniform(),
                    threshold,
                    sig,
                    cand_ids,
                    stats,
                ),
                Measure::L2 => self.query_bayes(
                    pool,
                    &FamilyModel::new(self.cfg.family),
                    threshold,
                    sig,
                    cand_ids,
                    stats,
                ),
            },
            VerifierKind::BayesLite => match self.cfg.family.measure() {
                Measure::Cosine | Measure::Mips => self.query_bayes_lite(
                    pool,
                    &CosineModel::new(),
                    q,
                    threshold,
                    sig,
                    cand_ids,
                    stats,
                ),
                Measure::Jaccard => self.query_bayes_lite(
                    pool,
                    &JaccardModel::uniform(),
                    q,
                    threshold,
                    sig,
                    cand_ids,
                    stats,
                ),
                Measure::L2 => self.query_bayes_lite(
                    pool,
                    &FamilyModel::new(self.cfg.family),
                    q,
                    threshold,
                    sig,
                    cand_ids,
                    stats,
                ),
            },
            VerifierKind::Sprt => self.query_sprt(pool, q, threshold, sig, cand_ids, stats),
        }
    }

    /// Parallel candidate verification for [`Searcher::query`]: candidate
    /// signatures are pre-extended to the verifier's scan depth (a no-op
    /// under eager hashing), then candidate chunks fan out across the
    /// resolved thread budget and merge in candidate order — results and
    /// counters are bit-identical to [`Searcher::serial_verify_query`].
    fn par_verify_query<P: PoolAccess>(
        &self,
        pool: &mut P,
        q: &SparseVector,
        threshold: f64,
        sig: &[u32],
        cand_ids: &[u32],
        stats: &mut QueryStats,
    ) -> Vec<(u32, f64)> {
        match self.composition.verifier {
            VerifierKind::Exact => self.par_query_exact(q, threshold, cand_ids, stats),
            VerifierKind::Mle => self.par_query_mle(pool, threshold, sig, cand_ids, stats),
            VerifierKind::Bayes => match self.cfg.family.measure() {
                Measure::Cosine | Measure::Mips => {
                    self.par_query_bayes(pool, &CosineModel::new(), threshold, sig, cand_ids, stats)
                }
                Measure::Jaccard => self.par_query_bayes(
                    pool,
                    &JaccardModel::uniform(),
                    threshold,
                    sig,
                    cand_ids,
                    stats,
                ),
                Measure::L2 => self.par_query_bayes(
                    pool,
                    &FamilyModel::new(self.cfg.family),
                    threshold,
                    sig,
                    cand_ids,
                    stats,
                ),
            },
            VerifierKind::BayesLite => match self.cfg.family.measure() {
                Measure::Cosine | Measure::Mips => self.par_query_bayes_lite(
                    pool,
                    &CosineModel::new(),
                    q,
                    threshold,
                    sig,
                    cand_ids,
                    stats,
                ),
                Measure::Jaccard => self.par_query_bayes_lite(
                    pool,
                    &JaccardModel::uniform(),
                    q,
                    threshold,
                    sig,
                    cand_ids,
                    stats,
                ),
                Measure::L2 => self.par_query_bayes_lite(
                    pool,
                    &FamilyModel::new(self.cfg.family),
                    q,
                    threshold,
                    sig,
                    cand_ids,
                    stats,
                ),
            },
            VerifierKind::Sprt => self.par_query_sprt(pool, q, threshold, sig, cand_ids, stats),
        }
    }

    fn par_query_exact(
        &self,
        q: &SparseVector,
        t: f64,
        cand_ids: &[u32],
        stats: &mut QueryStats,
    ) -> Vec<(u32, f64)> {
        let measure = self.cfg.family.measure();
        let data = &self.data;
        let chunks = fan_out(cand_ids.len(), self.threads, |_, range| {
            cand_ids[range]
                .iter()
                .filter_map(|&id| {
                    let s = measure.eval(q, data.vector(id));
                    (s >= t).then_some((id, s))
                })
                .collect::<Vec<_>>()
        });
        stats.exact += cand_ids.len() as u64;
        chunks.into_iter().flatten().collect()
    }

    fn par_query_mle<P: PoolAccess>(
        &self,
        pool: &mut P,
        t: f64,
        sig: &[u32],
        cand_ids: &[u32],
        stats: &mut QueryStats,
    ) -> Vec<(u32, f64)> {
        let n = self.cfg.approx_hashes;
        pool.par_ensure_ids(&self.data, cand_ids, n, self.threads);
        let pool = pool.get();
        let this = self;
        let chunks = fan_out(cand_ids.len(), self.threads, |_, range| {
            // One batched word-parallel sweep per worker chunk.
            let ids = &cand_ids[range];
            let mut counts = Vec::new();
            pool.query_agreements_batched(sig, ids, 0, n, &mut counts);
            ids.iter()
                .zip(&counts)
                .filter_map(|(&id, &m)| {
                    let s_hat = this.to_similarity(m as f64 / n as f64);
                    (s_hat >= t).then_some((id, s_hat))
                })
                .collect::<Vec<_>>()
        });
        stats.hash_comparisons += cand_ids.len() as u64 * n as u64;
        chunks.into_iter().flatten().collect()
    }

    fn par_query_bayes<P: PoolAccess, M: PosteriorModel + Sync>(
        &self,
        pool: &mut P,
        model: &M,
        t: f64,
        sig: &[u32],
        cand_ids: &[u32],
        stats: &mut QueryStats,
    ) -> Vec<(u32, f64)> {
        let k = self.cfg.k;
        let max_chunks = (self.cfg.max_hashes / k).max(1);
        pool.par_ensure_ids(&self.data, cand_ids, max_chunks * k, self.threads);
        let pool = pool.get();
        let table = self.query_minmatch(model, t, max_chunks * k);
        let this = self;
        let table = &*table;
        let results = fan_out(cand_ids.len(), self.threads, |_, range| {
            let mut cache = ConcentrationCache::new(this.cfg.delta, this.cfg.gamma);
            let mut local = QueryStats::default();
            let mut out = Vec::new();
            // Chunk-major batched scan over the worker's candidate slice:
            // all surviving candidates have their next `k` hashes counted
            // against the query signature in one word-parallel sweep.
            // Per-candidate (m, n) trajectories and verdicts are identical
            // to the candidate-at-a-time loop this replaced.
            let ids = &cand_ids[range];
            let mut scan = RunScan::default();
            scan.reset(ids.len());
            let mut n = 0u32;
            for _ in 0..max_chunks {
                if scan.alive.is_empty() {
                    break;
                }
                scan.alive_ids.clear();
                scan.alive_ids
                    .extend(scan.alive.iter().map(|&r| ids[r as usize]));
                pool.query_agreements_batched(sig, &scan.alive_ids, n, n + k, &mut scan.counts);
                n += k;
                local.hash_comparisons += k as u64 * scan.alive.len() as u64;
                let mut kept = 0usize;
                for t_idx in 0..scan.alive.len() {
                    let r = scan.alive[t_idx] as usize;
                    let m = scan.m[r] + scan.counts[t_idx];
                    scan.m[r] = m;
                    if table.should_prune(m, n) {
                        local.pruned += 1;
                        scan.verdicts[r] = RunVerdict::Pruned;
                    } else if cache.is_concentrated(model, m, n) {
                        scan.verdicts[r] = RunVerdict::Emit(model.map_estimate(m, n));
                    } else {
                        scan.alive[kept] = r as u32;
                        kept += 1;
                    }
                }
                scan.alive.truncate(kept);
            }
            for &r in &scan.alive {
                // Unconcentrated at the cap: emit with the current estimate,
                // mirroring the batch engine's recall guarantee.
                scan.verdicts[r as usize] =
                    RunVerdict::Emit(model.map_estimate(scan.m[r as usize], n));
            }
            for (r, &id) in ids.iter().enumerate() {
                if let RunVerdict::Emit(est) = scan.verdicts[r] {
                    out.push((id, est));
                }
            }
            (out, local)
        });
        merge_query_chunks(results, stats)
    }

    #[allow(clippy::too_many_arguments)]
    fn par_query_bayes_lite<P: PoolAccess, M: PosteriorModel + Sync>(
        &self,
        pool: &mut P,
        model: &M,
        q: &SparseVector,
        t: f64,
        sig: &[u32],
        cand_ids: &[u32],
        stats: &mut QueryStats,
    ) -> Vec<(u32, f64)> {
        let k = self.cfg.k;
        let max_chunks = (self.cfg.lite_h / k).max(1);
        pool.par_ensure_ids(&self.data, cand_ids, max_chunks * k, self.threads);
        let pool = pool.get();
        let table = self.query_minmatch(model, t, max_chunks * k);
        let this = self;
        let table = &*table;
        let measure = self.cfg.family.measure();
        let results = fan_out(cand_ids.len(), self.threads, |_, range| {
            let mut local = QueryStats::default();
            let mut out = Vec::new();
            // Prune-only chunk-major batched scan; survivors (still
            // `Pending`) get the exact check in candidate order.
            let ids = &cand_ids[range];
            let mut scan = RunScan::default();
            scan.reset(ids.len());
            let mut n = 0u32;
            for _ in 0..max_chunks {
                if scan.alive.is_empty() {
                    break;
                }
                scan.alive_ids.clear();
                scan.alive_ids
                    .extend(scan.alive.iter().map(|&r| ids[r as usize]));
                pool.query_agreements_batched(sig, &scan.alive_ids, n, n + k, &mut scan.counts);
                n += k;
                local.hash_comparisons += k as u64 * scan.alive.len() as u64;
                let mut kept = 0usize;
                for t_idx in 0..scan.alive.len() {
                    let r = scan.alive[t_idx] as usize;
                    let m = scan.m[r] + scan.counts[t_idx];
                    scan.m[r] = m;
                    if table.should_prune(m, n) {
                        local.pruned += 1;
                        scan.verdicts[r] = RunVerdict::Pruned;
                    } else {
                        scan.alive[kept] = r as u32;
                        kept += 1;
                    }
                }
                scan.alive.truncate(kept);
            }
            for (r, &id) in ids.iter().enumerate() {
                if matches!(scan.verdicts[r], RunVerdict::Pending) {
                    local.exact += 1;
                    let s = measure.eval(q, this.data.vector(id));
                    if s >= t {
                        out.push((id, s));
                    }
                }
            }
            (out, local)
        });
        merge_query_chunks(results, stats)
    }

    fn query_bayes<P: PoolAccess, M: PosteriorModel>(
        &self,
        pool: &mut P,
        model: &M,
        t: f64,
        sig: &[u32],
        cand_ids: &[u32],
        stats: &mut QueryStats,
    ) -> Vec<(u32, f64)> {
        let k = self.cfg.k;
        let max_chunks = (self.cfg.max_hashes / k).max(1);
        let table = self.query_minmatch(model, t, max_chunks * k);
        let mut cache = ConcentrationCache::new(self.cfg.delta, self.cfg.gamma);
        let mut out = Vec::new();
        // Chunk-major batched scan, lazily deepening only the candidates
        // still alive — the paper's economy argument survives batching
        // because a candidate pruned at chunk `c` is never hashed past
        // `c·k` hashes, exactly as in the candidate-at-a-time loop.
        let mut scan = RunScan::default();
        scan.reset(cand_ids.len());
        let mut n = 0u32;
        for _ in 0..max_chunks {
            if scan.alive.is_empty() {
                break;
            }
            scan.alive_ids.clear();
            for &r in &scan.alive {
                let id = cand_ids[r as usize];
                pool.ensure(&self.data, id, n + k);
                scan.alive_ids.push(id);
            }
            pool.get()
                .query_agreements_batched(sig, &scan.alive_ids, n, n + k, &mut scan.counts);
            n += k;
            stats.hash_comparisons += k as u64 * scan.alive.len() as u64;
            let mut kept = 0usize;
            for t_idx in 0..scan.alive.len() {
                let r = scan.alive[t_idx] as usize;
                let m = scan.m[r] + scan.counts[t_idx];
                scan.m[r] = m;
                if table.should_prune(m, n) {
                    stats.pruned += 1;
                    scan.verdicts[r] = RunVerdict::Pruned;
                } else if cache.is_concentrated(model, m, n) {
                    scan.verdicts[r] = RunVerdict::Emit(model.map_estimate(m, n));
                } else {
                    scan.alive[kept] = r as u32;
                    kept += 1;
                }
            }
            scan.alive.truncate(kept);
        }
        for &r in &scan.alive {
            // Unconcentrated at the cap: emit with the current estimate,
            // mirroring the batch engine's recall guarantee.
            scan.verdicts[r as usize] = RunVerdict::Emit(model.map_estimate(scan.m[r as usize], n));
        }
        for (r, &id) in cand_ids.iter().enumerate() {
            if let RunVerdict::Emit(est) = scan.verdicts[r] {
                out.push((id, est));
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn query_bayes_lite<P: PoolAccess, M: PosteriorModel>(
        &self,
        pool: &mut P,
        model: &M,
        q: &SparseVector,
        t: f64,
        sig: &[u32],
        cand_ids: &[u32],
        stats: &mut QueryStats,
    ) -> Vec<(u32, f64)> {
        let k = self.cfg.k;
        let max_chunks = (self.cfg.lite_h / k).max(1);
        let table = self.query_minmatch(model, t, max_chunks * k);
        let measure = self.cfg.family.measure();
        let mut out = Vec::new();
        // Prune-only chunk-major batched scan (lazily deepening survivors);
        // candidates still `Pending` at the cap get the exact check in
        // candidate order.
        let mut scan = RunScan::default();
        scan.reset(cand_ids.len());
        let mut n = 0u32;
        for _ in 0..max_chunks {
            if scan.alive.is_empty() {
                break;
            }
            scan.alive_ids.clear();
            for &r in &scan.alive {
                let id = cand_ids[r as usize];
                pool.ensure(&self.data, id, n + k);
                scan.alive_ids.push(id);
            }
            pool.get()
                .query_agreements_batched(sig, &scan.alive_ids, n, n + k, &mut scan.counts);
            n += k;
            stats.hash_comparisons += k as u64 * scan.alive.len() as u64;
            let mut kept = 0usize;
            for t_idx in 0..scan.alive.len() {
                let r = scan.alive[t_idx] as usize;
                let m = scan.m[r] + scan.counts[t_idx];
                scan.m[r] = m;
                if table.should_prune(m, n) {
                    stats.pruned += 1;
                    scan.verdicts[r] = RunVerdict::Pruned;
                } else {
                    scan.alive[kept] = r as u32;
                    kept += 1;
                }
            }
            scan.alive.truncate(kept);
        }
        for (r, &id) in cand_ids.iter().enumerate() {
            if matches!(scan.verdicts[r], RunVerdict::Pending) {
                stats.exact += 1;
                let s = measure.eval(q, self.data.vector(id));
                if s >= t {
                    out.push((id, s));
                }
            }
        }
        out
    }

    /// The SPRT boundary table for point queries at threshold `t`. Rebuilt
    /// per query rather than memoized: unlike the [`MinMatchTable`] (whose
    /// entries integrate posterior tails), building it is a handful of
    /// logarithms plus a binary search per chunk — cheaper than a cache
    /// lookup under contention.
    fn query_sprt_table(&self, t: f64) -> (SprtConfig, SprtTable) {
        let cfg = SprtConfig {
            threshold: t,
            ..self.cfg.sprt()
        };
        let table = match self.cfg.family.measure() {
            Measure::Cosine | Measure::Mips => SprtTable::build(&cfg, bayeslsh_lsh::cos_to_r),
            Measure::Jaccard => SprtTable::build(&cfg, |s| s),
            Measure::L2 => {
                let r = l2_width(&self.cfg);
                SprtTable::build(&cfg, move |s| bayeslsh_lsh::e2lsh_collision(s, r))
            }
        };
        (cfg, table)
    }

    fn query_sprt<P: PoolAccess>(
        &self,
        pool: &mut P,
        q: &SparseVector,
        t: f64,
        sig: &[u32],
        cand_ids: &[u32],
        stats: &mut QueryStats,
    ) -> Vec<(u32, f64)> {
        let k = self.cfg.k;
        let (_, table) = self.query_sprt_table(t);
        let max_chunks = (table.max_hashes() / k).max(1);
        let measure = self.cfg.family.measure();
        let mut out = Vec::new();
        // Chunk-major batched scan with both decision boundaries, lazily
        // deepening only the candidates still undecided; candidates still
        // `Pending` at the cap get the exact check in candidate order.
        let mut scan = RunScan::default();
        scan.reset(cand_ids.len());
        let mut n = 0u32;
        for _ in 0..max_chunks {
            if scan.alive.is_empty() {
                break;
            }
            scan.alive_ids.clear();
            for &r in &scan.alive {
                let id = cand_ids[r as usize];
                pool.ensure(&self.data, id, n + k);
                scan.alive_ids.push(id);
            }
            pool.get()
                .query_agreements_batched(sig, &scan.alive_ids, n, n + k, &mut scan.counts);
            n += k;
            stats.hash_comparisons += k as u64 * scan.alive.len() as u64;
            let mut kept = 0usize;
            for t_idx in 0..scan.alive.len() {
                let r = scan.alive[t_idx] as usize;
                let m = scan.m[r] + scan.counts[t_idx];
                scan.m[r] = m;
                if table.should_prune(m, n) {
                    stats.pruned += 1;
                    scan.verdicts[r] = RunVerdict::Pruned;
                } else if table.should_accept(m, n) {
                    scan.verdicts[r] = RunVerdict::Emit(self.to_similarity(m as f64 / n as f64));
                } else {
                    scan.alive[kept] = r as u32;
                    kept += 1;
                }
            }
            scan.alive.truncate(kept);
        }
        for (r, &id) in cand_ids.iter().enumerate() {
            match scan.verdicts[r] {
                RunVerdict::Emit(est) => out.push((id, est)),
                RunVerdict::Pending => {
                    stats.exact += 1;
                    let s = measure.eval(q, self.data.vector(id));
                    if s >= t {
                        out.push((id, s));
                    }
                }
                RunVerdict::Pruned => {}
            }
        }
        out
    }

    fn par_query_sprt<P: PoolAccess>(
        &self,
        pool: &mut P,
        q: &SparseVector,
        t: f64,
        sig: &[u32],
        cand_ids: &[u32],
        stats: &mut QueryStats,
    ) -> Vec<(u32, f64)> {
        let k = self.cfg.k;
        let (_, table) = self.query_sprt_table(t);
        let max_chunks = (table.max_hashes() / k).max(1);
        pool.par_ensure_ids(&self.data, cand_ids, max_chunks * k, self.threads);
        let pool = pool.get();
        let this = self;
        let table = &table;
        let measure = self.cfg.family.measure();
        let results = fan_out(cand_ids.len(), self.threads, |_, range| {
            let mut local = QueryStats::default();
            let mut out = Vec::new();
            // Same chunk-major batched scan as the serial twin; every
            // verdict is a pure function of the cumulative (m, n), so the
            // partition cannot move a decision.
            let ids = &cand_ids[range];
            let mut scan = RunScan::default();
            scan.reset(ids.len());
            let mut n = 0u32;
            for _ in 0..max_chunks {
                if scan.alive.is_empty() {
                    break;
                }
                scan.alive_ids.clear();
                scan.alive_ids
                    .extend(scan.alive.iter().map(|&r| ids[r as usize]));
                pool.query_agreements_batched(sig, &scan.alive_ids, n, n + k, &mut scan.counts);
                n += k;
                local.hash_comparisons += k as u64 * scan.alive.len() as u64;
                let mut kept = 0usize;
                for t_idx in 0..scan.alive.len() {
                    let r = scan.alive[t_idx] as usize;
                    let m = scan.m[r] + scan.counts[t_idx];
                    scan.m[r] = m;
                    if table.should_prune(m, n) {
                        local.pruned += 1;
                        scan.verdicts[r] = RunVerdict::Pruned;
                    } else if table.should_accept(m, n) {
                        scan.verdicts[r] =
                            RunVerdict::Emit(this.to_similarity(m as f64 / n as f64));
                    } else {
                        scan.alive[kept] = r as u32;
                        kept += 1;
                    }
                }
                scan.alive.truncate(kept);
            }
            for (r, &id) in ids.iter().enumerate() {
                match scan.verdicts[r] {
                    RunVerdict::Emit(est) => out.push((id, est)),
                    RunVerdict::Pending => {
                        local.exact += 1;
                        let s = measure.eval(q, this.data.vector(id));
                        if s >= t {
                            out.push((id, s));
                        }
                    }
                    RunVerdict::Pruned => {}
                }
            }
            (out, local)
        });
        merge_query_chunks(results, stats)
    }

    /// The pruning table for point queries at threshold `t`, memoized
    /// across queries (the model is fixed per searcher by its measure).
    /// Every `(t, max_hashes)` shape seen stays cached — alternating
    /// query shapes no longer evict each other — and the memo is
    /// thread-safe, so parallel verification workers can share it.
    fn query_minmatch<M: PosteriorModel>(
        &self,
        model: &M,
        t: f64,
        max_hashes: u32,
    ) -> Arc<MinMatchTable> {
        self.minmatch_cache
            .get_or_build(model, t, self.cfg.epsilon, self.cfg.k, max_hashes)
    }

    /// Top-`k` most similar corpus vectors to `q`, sorted by decreasing
    /// similarity, with Bayesian candidate pruning against the rising
    /// k-th-best similarity (the paper's future-work recipe). Exact
    /// similarities are returned for every reported neighbour.
    ///
    /// Pruning depth is governed by `params.h` (not the composition's
    /// verifier), so candidates may be lazily deepened up to `params.h`
    /// hashes even under [`HashMode::Eager`]; extensions are cached, so
    /// repeated queries never re-hash.
    ///
    /// # Errors
    ///
    /// [`SearchError::InvalidConfig`] for `k == 0` or out-of-range
    /// [`KnnParams`], [`SearchError::NonBinaryData`] and
    /// [`SearchError::DimensionExceeded`] as for [`Searcher::query`].
    pub fn top_k(
        &self,
        q: &SparseVector,
        k: usize,
        params: &KnnParams,
    ) -> Result<TopKOutput, SearchError> {
        if k == 0 {
            return Err(SearchError::invalid("k", "need at least one neighbour"));
        }
        if !(params.epsilon > 0.0 && params.epsilon < 1.0) {
            return Err(SearchError::invalid(
                "epsilon",
                format!("must lie in (0, 1), got {}", params.epsilon),
            ));
        }
        if params.chunk < 1 || params.h < params.chunk {
            return Err(SearchError::invalid(
                "chunk",
                format!(
                    "need h >= chunk >= 1, got chunk {} h {}",
                    params.chunk, params.h
                ),
            ));
        }
        self.check_query(q)?;
        let mut stats = KnnStats::default();
        if q.is_empty() || self.data.is_empty() {
            return Ok(TopKOutput {
                neighbors: Vec::new(),
                stats,
            });
        }

        let banding = self.plan.params;
        let scan_cap = (params.h / params.chunk) * params.chunk;
        let depth = banding.total_hashes().max(scan_cap);
        // Parallelism accelerates the data-parallel phases — query hashing,
        // index probing, candidate signature extension. The pruning scan
        // stays sequential by design: its rising k-th-best threshold makes
        // each candidate's verdict depend on all previous ones, and keeping
        // that order is what makes top-k output deterministic.

        // Fast path under the shared read lock: possible when the hasher
        // bank covers the query depth and every candidate's stored
        // signature covers the full scan budget. (`params.h` may exceed
        // even an eager build's depth, in which case the first such query
        // deepens the candidates under the write lock below — and caches
        // them, so repeat queries come back to this path.)
        {
            let pool = self.pool_read();
            if pool.query_ready(depth) {
                let sig = pool.hash_query_ready(q, depth, self.threads);
                let keys = pool.query_band_keys(&sig, banding);
                let cand_ids = self.index.par_probe(&keys, self.threads);
                if cand_ids.iter().all(|&id| pool.len(id) >= scan_cap) {
                    stats.candidates = cand_ids.len() as u64;
                    let mut access = ReadPool(&pool);
                    let neighbors =
                        self.top_k_scan(&mut access, q, &sig, &cand_ids, k, params, &mut stats);
                    return Ok(TopKOutput { neighbors, stats });
                }
            }
        }

        let mut pool = self.pool_write();
        let sig = if self.threads > 1 {
            pool.hash_query_par(q, depth, self.threads)
        } else {
            pool.hash_query(q, depth)
        };
        let keys = pool.query_band_keys(&sig, banding);
        let cand_ids = self.index.par_probe(&keys, self.threads);
        stats.candidates = cand_ids.len() as u64;
        let mut access = WritePool(&mut pool);
        let neighbors = self.top_k_scan(&mut access, q, &sig, &cand_ids, k, params, &mut stats);
        Ok(TopKOutput { neighbors, stats })
    }

    /// Everything [`Searcher::top_k`] does after candidate generation:
    /// first-chunk batched agreements, then the sequential rising-threshold
    /// pruning scan. Generic over the pool handle so the read- and
    /// write-lock paths share one implementation.
    #[allow(clippy::too_many_arguments)]
    fn top_k_scan<P: PoolAccess>(
        &self,
        pool: &mut P,
        q: &SparseVector,
        sig: &[u32],
        cand_ids: &[u32],
        k: usize,
        params: &KnnParams,
        stats: &mut KnnStats,
    ) -> Vec<(u32, f64)> {
        let max_chunks = params.h / params.chunk;
        if self.threads > 1 {
            // Pre-extend candidates to the FIRST chunk only: every
            // candidate pays at least one chunk, so this parallelizes the
            // bulk of the hashing without hashing to the full `params.h`
            // budget signatures the sequential scan below would prune at
            // chunk 1 — the lazy economy survives the fan-out.
            pool.par_ensure_ids(&self.data, cand_ids, params.chunk, self.threads);
        }

        let measure = self.cfg.family.measure();
        let cosine_model;
        let jaccard_model;
        let family_model;
        let model: &dyn PosteriorModel = match measure {
            Measure::Cosine | Measure::Mips => {
                cosine_model = CosineModel::new();
                &cosine_model
            }
            Measure::Jaccard => {
                jaccard_model = JaccardModel::uniform();
                &jaccard_model
            }
            Measure::L2 => {
                family_model = FamilyModel::new(self.cfg.family);
                &family_model
            }
        };

        // Every candidate pays at least one chunk, and chunk-1 agreement
        // counts do not depend on the rising threshold — so count them all
        // up front in one batched word-parallel sweep, leaving only the
        // (order-dependent) verdicts and deeper chunks to the sequential
        // scan below.
        if self.threads == 1 {
            for &id in cand_ids {
                pool.ensure(&self.data, id, params.chunk);
            }
        }
        let mut first = Vec::new();
        pool.get()
            .query_agreements_batched(sig, cand_ids, 0, params.chunk, &mut first);

        // Min-heap of the current top-k (similarity, id); the k-th best
        // similarity is a rising pruning threshold.
        let mut heap: BinaryHeap<std::cmp::Reverse<HeapItem>> = BinaryHeap::with_capacity(k + 1);
        let mut kth_best = params.floor;
        for (idx, &id) in cand_ids.iter().enumerate() {
            let prune_below = kth_best;
            let (outcome, _, n) = scan_candidate_resume(
                &self.data,
                pool,
                sig,
                id,
                first[idx],
                params.chunk,
                max_chunks,
                |m, n| {
                    if model.prob_above_threshold(m, n, prune_below) < params.epsilon {
                        StepVerdict::Prune
                    } else {
                        StepVerdict::Continue
                    }
                },
            );
            stats.hash_comparisons += n as u64;
            if outcome == ScanOutcome::Pruned {
                stats.pruned += 1;
                continue;
            }
            stats.exact += 1;
            let s = measure.eval(q, self.data.vector(id));
            if heap.len() < k {
                heap.push(std::cmp::Reverse(HeapItem(s, id)));
            } else if s > heap.peek().unwrap().0 .0 {
                heap.pop();
                heap.push(std::cmp::Reverse(HeapItem(s, id)));
            }
            if heap.len() == k {
                kth_best = heap.peek().unwrap().0 .0.max(params.floor);
            }
        }
        let mut neighbors: Vec<(u32, f64)> = heap
            .into_iter()
            .map(|std::cmp::Reverse(HeapItem(s, id))| (id, s))
            .collect();
        neighbors.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        neighbors
    }

    /// Append a vector to the corpus, extending the signature pool and
    /// banding index in place. Returns the new vector's id.
    ///
    /// An **empty** vector is accepted: it takes up an id and lives in the
    /// corpus, but is never hashed or indexed, so it cannot appear as a
    /// candidate of any query, top-k, or batch join (its similarity to
    /// everything is zero/undefined). It remains [`Searcher::remove`]-able
    /// and round-trips through snapshots like any other id.
    ///
    /// # Errors
    ///
    /// [`SearchError::NonBinaryData`] when the composition needs binary
    /// vectors, [`SearchError::DimensionExceeded`] when `v` has feature
    /// indices beyond the indexed space (cosine only).
    pub fn insert(&mut self, v: SparseVector) -> Result<u32, SearchError> {
        self.check_query(&v)?;
        let id = self.data.push(v);
        self.removed.push(false);
        let pool = self.pool.get_mut().expect("signature pool lock poisoned");
        pool.grow_to(self.data.len());
        let v = self.data.vector(id);
        if !v.is_empty() {
            if self.threads > 1 {
                // One object, many hashes: split the new signature's hash
                // range across the thread budget (bit-identical splice).
                pool.par_ensure_ids(&self.data, &[id], self.sig_depth, self.threads);
            } else {
                pool.ensure(id, v, self.sig_depth);
            }
            self.index.insert(id, &pool.band_keys(id, self.plan.params));
        }
        Ok(id)
    }

    /// Remove vector `id` from search: it stops appearing in any query,
    /// top-k, or batch output immediately. The vector's storage and
    /// signature stay in place — ids are stable — until
    /// [`Searcher::compact`] rewrites them out. Returns `Ok(true)` when
    /// the id was live, `Ok(false)` when it was already removed.
    ///
    /// # Errors
    ///
    /// [`SearchError::InvalidConfig`] for an id outside the corpus.
    pub fn remove(&mut self, id: u32) -> Result<bool, SearchError> {
        if (id as usize) >= self.data.len() {
            return Err(SearchError::invalid(
                "id",
                format!("no such vector: {id} (corpus holds {})", self.data.len()),
            ));
        }
        if self.removed[id as usize] {
            return Ok(false);
        }
        if !self.data.vector(id).is_empty() {
            let pool = self.pool.get_mut().expect("signature pool lock poisoned");
            let keys = pool.band_keys(id, self.plan.params);
            self.index.remove(id, &keys);
        }
        self.removed[id as usize] = true;
        self.n_removed += 1;
        Ok(true)
    }

    /// True when `id` has been [`Searcher::remove`]d and not yet
    /// rewritten out by [`Searcher::compact`] (which clears tombstones
    /// while keeping ids stable).
    pub fn is_removed(&self, id: u32) -> bool {
        self.removed.get(id as usize).copied().unwrap_or(false)
    }

    /// Number of tombstoned vectors awaiting [`Searcher::compact`].
    pub fn pending_removals(&self) -> usize {
        self.n_removed
    }

    /// Rewrite removed vectors out of the standing state: their vector
    /// data and signatures are dropped (reclaiming memory and hash
    /// accounting) and the banding index is rebuilt over the survivors.
    /// Ids are **stable** — a removed id keeps its slot as a permanently
    /// empty vector, exactly the representation an empty
    /// [`Searcher::insert`] produces — so snapshots and shard manifests
    /// round-trip unchanged. Returns the number of vectors compacted away.
    pub fn compact(&mut self) -> usize {
        if self.n_removed == 0 {
            return 0;
        }
        let pool = self.pool.get_mut().expect("signature pool lock poisoned");
        for id in 0..self.data.len() as u32 {
            if self.removed[id as usize] {
                self.data.clear_vector(id);
                pool.clear(id);
            }
        }
        // Rebuild the index from scratch over the survivors: removal left
        // emptied buckets behind (to keep probe order stable mid-flight),
        // and a fresh build sheds them exactly as `SearcherBuilder::build`
        // would lay the survivors out.
        let ids: Vec<u32> = self
            .data
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(id, _)| id)
            .collect();
        let plan = self.plan;
        let threads = self.threads;
        self.index = BandingIndex::par_build(plan.params, &ids, threads, |id, band| {
            pool.band_key(id, band, plan.params)
        });
        let count = self.n_removed;
        self.removed.iter_mut().for_each(|r| *r = false);
        self.n_removed = 0;
        count
    }

    /// Map a raw hash-agreement fraction to the target similarity.
    fn to_similarity(&self, frac: f64) -> f64 {
        match self.cfg.family.measure() {
            Measure::Cosine | Measure::Mips => bayeslsh_lsh::r_to_cos(frac),
            Measure::Jaccard => frac,
            Measure::L2 => bayeslsh_lsh::e2lsh_similarity_at(frac, l2_width(&self.cfg)),
        }
    }

    /// Enforce the preconditions every incoming vector (query or insert)
    /// must meet: binary support when the composition demands it, and —
    /// for the projection families (SRP for cosine/MIPS, E2LSH for L2),
    /// whose projection banks fix the feature space at build time — no
    /// feature indices beyond the indexed dimensionality.
    fn check_query(&self, v: &SparseVector) -> Result<(), SearchError> {
        let measure = self.cfg.family.measure();
        if self.composition.requires_binary(measure) && !v.is_binary() {
            return Err(SearchError::NonBinaryData {
                requires: self.composition.binary_requirement(measure),
            });
        }
        let pool = self.pool_read();
        let dim = match &*pool {
            SigPool::Bits(pool) => Some(pool.hasher().dim()),
            SigPool::Projs(pool) => Some(pool.hasher().dim()),
            SigPool::Ints(_) => None,
        };
        if let Some(dim) = dim {
            if v.min_dim() > dim {
                return Err(SearchError::DimensionExceeded {
                    dim,
                    needed: v.min_dim(),
                });
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Scatter-gather hooks.
    //
    // A sharded router serves the same contract as one big `Searcher`
    // by splitting a query across per-shard searchers and merging. The
    // order-independent paths (`query`) merge whole outputs; `top_k`'s
    // rising-threshold scan is order-*dependent*, so the router instead
    // reconstructs the single-index candidate order from the hooks below
    // and replays the sequential scan itself, one candidate at a time,
    // against whichever shard owns each candidate.
    // ------------------------------------------------------------------

    /// Validate `v` as a query/insert vector for this searcher — the
    /// same preconditions [`Searcher::query`], [`Searcher::top_k`], and
    /// [`Searcher::insert`] enforce (binary support where the composition
    /// demands it; for cosine, no feature index beyond the indexed
    /// space). Lets a router fail a scatter-gather request up front with
    /// the identical [`SearchError`] a single index would produce.
    pub fn validate_query_vector(&self, v: &SparseVector) -> Result<(), SearchError> {
        self.check_query(v)
    }

    /// Hash `q` to a `depth`-hash query signature using this searcher's
    /// hash family (bit-identical at any thread count). Because the
    /// family is a pure function of the config seed and feature-space
    /// dimensionality — both forced global across shards — a signature
    /// computed on one shard is valid against every shard of the same
    /// build.
    pub fn hash_query_signature(&mut self, q: &SparseVector, depth: u32) -> Vec<u32> {
        let threads = self.threads;
        let pool = self.pool_mut();
        if threads > 1 {
            pool.hash_query_par(q, depth, threads)
        } else {
            pool.hash_query(q, depth)
        }
    }

    /// Probe the banding index with query signature `sig` and annotate
    /// each candidate with the **first band** whose bucket produced it:
    /// returns deduplicated `(local id, first matching band)` pairs.
    ///
    /// A single index emits candidates in `(first band, id)` order — the
    /// probe walks bands in order and each bucket in ascending-id order,
    /// deduplicating on first encounter. Per-shard candidate sets
    /// partition a global index's buckets without reordering either
    /// component, so a router can rebuild the exact single-index
    /// emission order by merging per-shard results on
    /// `(first band, global id)`.
    pub fn probe_first_bands(&self, sig: &[u32]) -> Vec<(u32, u32)> {
        let params = self.plan.params;
        let pool = self.pool_read();
        let keys = pool.query_band_keys(sig, params);
        let cand_ids = self.index.par_probe(&keys, self.threads);
        cand_ids
            .into_iter()
            .map(|id| {
                let band = (0..params.l)
                    .find(|&b| pool.band_key(id, b, params) == keys[b as usize])
                    .expect("probed candidate must share a band key with the query");
                (id, band)
            })
            .collect()
    }

    /// Agreement counts between `sig` and each of `ids` over hash range
    /// `[0, chunk)`, extending pool signatures as needed (parallel across
    /// the thread budget, bit-identical to serial). This is
    /// [`Searcher::top_k`]'s batched first-chunk sweep, exposed so a
    /// router can pay each shard's first chunk up front — the counts are
    /// independent of the rising threshold, so only the verdicts remain
    /// sequential.
    pub fn first_chunk_agreements(&mut self, sig: &[u32], ids: &[u32], chunk: u32) -> Vec<u32> {
        let threads = self.threads;
        let pool = self.pool.get_mut().expect("signature pool lock poisoned");
        if threads > 1 {
            pool.par_ensure_ids(&self.data, ids, chunk, threads);
        } else {
            for &id in ids {
                let v = self.data.vector(id);
                pool.ensure(id, v, chunk);
            }
        }
        let mut out = Vec::new();
        pool.query_agreements_batched(sig, ids, 0, chunk, &mut out);
        out
    }

    /// Run one candidate of [`Searcher::top_k`]'s sequential pruning
    /// scan: resume from first-chunk agreement count `first_m` (from
    /// [`Searcher::first_chunk_agreements`]) and test against the
    /// caller-supplied pruning threshold `prune_below` (the rising
    /// k-th-best similarity, captured once per candidate exactly as
    /// `top_k` does). The outcome is a pure function of the arguments
    /// and the candidate's signature, so a router replaying candidates
    /// in single-index order reproduces `top_k` bit for bit.
    ///
    /// `params` must satisfy the [`Searcher::top_k`] preconditions
    /// (`chunk >= 1`, `h >= chunk`); survivors carry the exact
    /// similarity under this searcher's measure.
    pub fn scan_top_k_candidate(
        &mut self,
        q: &SparseVector,
        sig: &[u32],
        id: u32,
        first_m: u32,
        params: &KnnParams,
        prune_below: f64,
    ) -> CandidateScan {
        debug_assert!(params.chunk >= 1 && params.h >= params.chunk);
        let max_chunks = params.h / params.chunk;
        let measure = self.cfg.family.measure();
        let cosine_model;
        let jaccard_model;
        let family_model;
        let model: &dyn PosteriorModel = match measure {
            Measure::Cosine | Measure::Mips => {
                cosine_model = CosineModel::new();
                &cosine_model
            }
            Measure::Jaccard => {
                jaccard_model = JaccardModel::uniform();
                &jaccard_model
            }
            Measure::L2 => {
                family_model = FamilyModel::new(self.cfg.family);
                &family_model
            }
        };
        let mut access = WritePool(self.pool.get_mut().expect("signature pool lock poisoned"));
        let (outcome, _, n) = scan_candidate_resume(
            &self.data,
            &mut access,
            sig,
            id,
            first_m,
            params.chunk,
            max_chunks,
            |m, n| {
                if model.prob_above_threshold(m, n, prune_below) < params.epsilon {
                    StepVerdict::Prune
                } else {
                    StepVerdict::Continue
                }
            },
        );
        match outcome {
            ScanOutcome::Pruned => CandidateScan::Pruned { comparisons: n },
            ScanOutcome::Exhausted => CandidateScan::Survivor {
                comparisons: n,
                similarity: measure.eval(q, self.data.vector(id)),
            },
        }
    }
}

/// Uniform pool handle for the two execution paths of `&self` queries:
/// the read path (the pool already covers every request, so lazy ensures
/// are debug-checked no-ops) and the write path (real lazy extension
/// under the write lock). Verification code is generic over this, so
/// both paths run the exact same scan logic and stay bit-identical by
/// construction.
trait PoolAccess {
    fn get(&self) -> &SigPool;
    fn ensure(&mut self, data: &Dataset, id: u32, n: u32);
    fn par_ensure_ids(&mut self, data: &Dataset, ids: &[u32], n: u32, threads: usize);
}

/// Read-lock pool handle: every touched signature is already deep
/// enough, so ensures are no-ops (verified in debug builds).
struct ReadPool<'a>(&'a SigPool);

impl PoolAccess for ReadPool<'_> {
    fn get(&self) -> &SigPool {
        self.0
    }

    fn ensure(&mut self, _data: &Dataset, id: u32, n: u32) {
        debug_assert!(self.0.len(id) >= n, "read-path ensure must be a no-op");
    }

    fn par_ensure_ids(&mut self, _data: &Dataset, ids: &[u32], n: u32, _threads: usize) {
        debug_assert!(
            ids.iter().all(|&id| self.0.len(id) >= n),
            "read-path ensure must be a no-op"
        );
    }
}

/// Write-lock pool handle: the usual lazy-extension economy.
struct WritePool<'a>(&'a mut SigPool);

impl PoolAccess for WritePool<'_> {
    fn get(&self) -> &SigPool {
        self.0
    }

    fn ensure(&mut self, data: &Dataset, id: u32, n: u32) {
        self.0.ensure(id, data.vector(id), n);
    }

    fn par_ensure_ids(&mut self, data: &Dataset, ids: &[u32], n: u32, threads: usize) {
        self.0.par_ensure_ids(data, ids, n, threads);
    }
}

/// Incrementally compare an external query signature against pool
/// member `id`, `chunk` hashes at a time, letting `step` adjudicate
/// after each chunk. The first chunk's agreement count `m1` is supplied
/// by the caller ([`Searcher::top_k`] precomputes it for every
/// candidate in one batched word-parallel sweep — it is independent of
/// the rising threshold, so only the sequential *verdicts* remain
/// order-dependent). Returns the outcome with the final `(m, n)`
/// counts; `n` is the number of hash comparisons spent.
#[allow(clippy::too_many_arguments)]
fn scan_candidate_resume<P: PoolAccess>(
    data: &Dataset,
    pool: &mut P,
    sig: &[u32],
    id: u32,
    m1: u32,
    chunk: u32,
    max_chunks: u32,
    mut step: impl FnMut(u32, u32) -> StepVerdict,
) -> (ScanOutcome, u32, u32) {
    let (mut m, mut n) = (m1, chunk);
    if step(m, n) == StepVerdict::Prune {
        return (ScanOutcome::Pruned, m, n);
    }
    for _ in 1..max_chunks {
        pool.ensure(data, id, n + chunk);
        m += pool.get().query_agreements(sig, id, n, n + chunk);
        n += chunk;
        if step(m, n) == StepVerdict::Prune {
            return (ScanOutcome::Pruned, m, n);
        }
    }
    (ScanOutcome::Exhausted, m, n)
}

/// Merge per-chunk query verification results in chunk (= candidate)
/// order, folding the per-chunk counters into `stats`.
fn merge_query_chunks(
    results: Vec<(Vec<(u32, f64)>, QueryStats)>,
    stats: &mut QueryStats,
) -> Vec<(u32, f64)> {
    let mut out = Vec::new();
    for (chunk, local) in results {
        out.extend(chunk);
        stats.pruned += local.pruned;
        stats.exact += local.exact;
        stats.hash_comparisons += local.hash_comparisons;
    }
    out
}

/// The per-chunk decision of a [`Searcher::scan_candidate_resume`] step
/// closure. (Threshold queries no longer go through the step machinery —
/// their chunk-major batched scans adjudicate whole alive sets at once —
/// so only the top-k prune/continue decision remains.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepVerdict {
    /// Keep comparing hashes.
    Continue,
    /// Posterior says the candidate cannot clear the threshold.
    Prune,
}

/// How a candidate scan ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScanOutcome {
    /// The step closure pruned the candidate.
    Pruned,
    /// The hash budget ran out without a verdict.
    Exhausted,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_numeric::Xoshiro256;
    use bayeslsh_sparse::cosine;

    fn corpus(seed: u64) -> Dataset {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut d = Dataset::new(3000);
        for c in 0..10 {
            let center: Vec<(u32, f32)> = (0..35)
                .map(|_| {
                    (
                        (c * 250 + rng.next_below(230) as usize) as u32,
                        (rng.next_f64() + 0.3) as f32,
                    )
                })
                .collect();
            for _ in 0..6 {
                let mut pairs = center.clone();
                for p in pairs.iter_mut() {
                    if rng.next_bool(0.2) {
                        *p = (rng.next_below(3000) as u32, (rng.next_f64() + 0.3) as f32);
                    }
                }
                d.push(SparseVector::from_pairs(pairs));
            }
        }
        d
    }

    #[test]
    fn build_validates_config() {
        let mut cfg = PipelineConfig::cosine(0.7);
        cfg.epsilon = 0.0;
        let err = Searcher::builder(cfg).build(corpus(1)).unwrap_err();
        assert!(matches!(
            err,
            SearchError::InvalidConfig {
                param: "epsilon",
                ..
            }
        ));
    }

    #[test]
    fn build_rejects_non_binary_jaccard() {
        let err = Searcher::builder(PipelineConfig::jaccard(0.5))
            .build(corpus(2))
            .unwrap_err();
        assert!(matches!(err, SearchError::NonBinaryData { .. }));
        // Binarized data builds fine.
        Searcher::builder(PipelineConfig::jaccard(0.5))
            .build(corpus(2).binarized())
            .unwrap();
    }

    #[test]
    fn query_finds_self_and_respects_threshold() {
        let data = corpus(3);
        let s = Searcher::builder(PipelineConfig::cosine(0.7))
            .algorithm(Algorithm::LshBayesLshLite)
            .build(data)
            .unwrap();
        for qid in [0u32, 13, 47] {
            let q = s.data().vector(qid).clone();
            let out = s.query(&q, 0.7).unwrap();
            assert!(
                out.neighbors.iter().any(|&(id, _)| id == qid),
                "query {qid} must find itself"
            );
            // Lite verification is exact for survivors.
            for &(id, sim) in &out.neighbors {
                assert!(sim >= 0.7);
                assert!((sim - cosine(&q, s.data().vector(id))).abs() < 1e-12);
            }
            assert!(out.stats.candidates >= out.neighbors.len() as u64);
        }
    }

    #[test]
    fn eager_queries_never_touch_the_corpus_pool() {
        let data = corpus(4);
        let s = Searcher::builder(PipelineConfig::cosine(0.7))
            .build(data)
            .unwrap();
        let built = s.hash_count();
        assert!(built > 0);
        for qid in (0..s.len() as u32).step_by(5) {
            let q = s.data().vector(qid).clone();
            s.query(&q, 0.7).unwrap();
        }
        assert_eq!(
            s.hash_count(),
            built,
            "eager mode: queries must not extend corpus signatures"
        );
    }

    #[test]
    fn lazy_queries_extend_once_and_amortize() {
        let data = corpus(5);
        let s = Searcher::builder(PipelineConfig::cosine(0.7))
            .hash_mode(HashMode::Lazy)
            .build(data)
            .unwrap();
        let built = s.hash_count();
        let q = s.data().vector(7).clone();
        s.query(&q, 0.7).unwrap();
        let after_first = s.hash_count();
        assert!(after_first >= built);
        // The same query again hashes nothing new.
        s.query(&q, 0.7).unwrap();
        assert_eq!(s.hash_count(), after_first);
    }

    #[test]
    fn insert_then_query_finds_the_new_vector() {
        let data = corpus(6);
        let mut s = Searcher::builder(PipelineConfig::cosine(0.7))
            .algorithm(Algorithm::Lsh)
            .build(data)
            .unwrap();
        let planted = s.data().vector(11).clone();
        let before = s.len() as u32;
        let id = s.insert(planted.clone()).unwrap();
        assert_eq!(id, before);
        let out = s.query(&planted, 0.7).unwrap();
        assert!(
            out.neighbors
                .iter()
                .any(|&(got, sim)| got == id && sim > 0.999),
            "query must surface the inserted duplicate: {:?}",
            out.neighbors
        );
    }

    #[test]
    fn insert_rejects_outgrown_dimension_for_cosine() {
        let data = corpus(7);
        let dim = data.dim();
        let mut s = Searcher::builder(PipelineConfig::cosine(0.7))
            .build(data)
            .unwrap();
        let err = s
            .insert(SparseVector::from_indices(vec![dim + 10]))
            .unwrap_err();
        assert!(matches!(err, SearchError::DimensionExceeded { .. }));
    }

    #[test]
    fn top_k_returns_sorted_exact_neighbours() {
        let data = corpus(8);
        let s = Searcher::builder(PipelineConfig::cosine(0.5))
            .build(data)
            .unwrap();
        let q = s.data().vector(3).clone();
        let out = s.top_k(&q, 5, &KnnParams::default()).unwrap();
        assert!(!out.neighbors.is_empty());
        assert_eq!(out.neighbors[0].0, 3, "self must rank first");
        for w in out.neighbors.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        for &(id, sim) in &out.neighbors {
            assert!((sim - cosine(&q, s.data().vector(id))).abs() < 1e-12);
        }
        assert!(s.top_k(&q, 0, &KnnParams::default()).is_err());
    }

    #[test]
    fn all_pairs_can_run_repeatedly_without_rehashing() {
        let data = corpus(9);
        let s = Searcher::builder(PipelineConfig::cosine(0.7))
            .algorithm(Algorithm::LshBayesLsh)
            .build(data)
            .unwrap();
        let first = s.all_pairs().unwrap();
        let hashes = s.hash_count();
        let second = s.all_pairs().unwrap();
        assert_eq!(s.hash_count(), hashes, "second run must reuse signatures");
        assert_eq!(first.pairs, second.pairs);
        assert!(first.candidates > 0);
    }

    #[test]
    fn alternating_query_shapes_do_not_corrupt_prune_decisions() {
        // Regression: the old single-slot minmatch memo was keyed by the
        // last (threshold, depth) shape only, so interleaving shapes
        // rebuilt it constantly and a stale slot would have handed one
        // shape the other's pruning table. Interleaved queries must match
        // what a fresh searcher (one shape only) produces, bit for bit.
        let data = corpus(20);
        let build = || {
            Searcher::builder(PipelineConfig::cosine(0.7))
                .algorithm(Algorithm::LshBayesLsh)
                .build(corpus(20))
                .unwrap()
        };
        let _ = data;
        let interleaved = build();
        let shapes = [0.7f64, 0.5, 0.7, 0.5, 0.9, 0.7];
        let queries: Vec<SparseVector> = (0..6)
            .map(|i| interleaved.data().vector(i * 7).clone())
            .collect();
        for (q, &t) in queries.iter().zip(&shapes) {
            let got = interleaved.query(q, t).unwrap();
            // Top-k in between changes the access pattern (different
            // pruning machinery, same searcher state).
            interleaved.top_k(q, 3, &KnnParams::default()).unwrap();
            let fresh = build();
            let expect = fresh.query(q, t).unwrap();
            assert_eq!(got.neighbors.len(), expect.neighbors.len());
            for (a, b) in got.neighbors.iter().zip(&expect.neighbors) {
                assert_eq!(a.0, b.0);
                assert_eq!(a.1.to_bits(), b.1.to_bits(), "threshold {t}");
            }
            assert_eq!(got.stats, expect.stats, "threshold {t}");
        }
        // Every distinct shape stays memoized instead of thrashing.
        assert_eq!(interleaved.minmatch_cache.len(), 3);
    }

    #[test]
    fn query_threshold_is_validated() {
        let s = Searcher::builder(PipelineConfig::cosine(0.7))
            .build(corpus(10))
            .unwrap();
        let q = s.data().vector(0).clone();
        assert!(s.query(&q, 0.0).is_err());
        assert!(s.query(&q, 1.2).is_err());
        assert!(s.query(&q, 1.0).is_ok());
    }

    #[test]
    fn concurrent_queries_match_serial_results() {
        // `query` through `&self`: many threads sharing one searcher must
        // each get the serial answer, on both the eager (read-only) and
        // lazy (write-locked ensure) paths.
        for mode in [HashMode::Eager, HashMode::Lazy] {
            let s = Searcher::builder(PipelineConfig::cosine(0.5))
                .algorithm(Algorithm::LshBayesLsh)
                .hash_mode(mode)
                .build(corpus(21))
                .unwrap();
            let queries: Vec<SparseVector> =
                (0..8).map(|i| s.data().vector(i * 7).clone()).collect();
            let serial: Vec<Vec<(u32, f64)>> = queries
                .iter()
                .map(|q| s.query(q, 0.5).unwrap().neighbors)
                .collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = queries
                    .iter()
                    .map(|q| scope.spawn(|| s.query(q, 0.5).unwrap().neighbors))
                    .collect();
                for (i, h) in handles.into_iter().enumerate() {
                    assert_eq!(
                        h.join().unwrap(),
                        serial[i],
                        "{mode:?} concurrent query {i} diverged from serial"
                    );
                }
            });
        }
    }

    #[test]
    fn empty_vector_insert_is_inert_but_removable() {
        // An empty vector takes an id but is never hashed or indexed: it
        // must not surface from queries, top_k, or all_pairs, must survive
        // a snapshot round-trip, and must be removable.
        let mut s = Searcher::builder(PipelineConfig::cosine(0.7))
            .algorithm(Algorithm::LshBayesLsh)
            .build(corpus(31))
            .unwrap();
        let id = s.insert(SparseVector::empty()).unwrap();
        assert_eq!(id as usize, s.len() - 1);
        assert_eq!(s.data().vector(id).nnz(), 0);

        let probe = s.data().vector(0).clone();
        let out = s.query(&probe, 0.7).unwrap();
        assert!(out.neighbors.iter().all(|&(got, _)| got != id));
        let top = s.top_k(&probe, s.len(), &KnnParams::default()).unwrap();
        assert!(top.neighbors.iter().all(|&(got, _)| got != id));
        let pairs = s.all_pairs().unwrap();
        assert!(pairs.pairs.iter().all(|&(a, b, _)| a != id && b != id));

        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let loaded = Searcher::load(&buf[..]).unwrap();
        assert_eq!(loaded.len(), s.len());
        assert_eq!(loaded.data().vector(id).nnz(), 0);
        let reloaded = loaded.query(&probe, 0.7).unwrap();
        assert_eq!(reloaded.neighbors, out.neighbors);

        assert!(s.remove(id).unwrap());
        assert_eq!(s.compact(), 1);
        assert_eq!(s.len(), loaded.len(), "compaction keeps ids stable");
    }

    #[test]
    fn remove_then_compact_round_trips_through_snapshot() {
        let mut s = Searcher::builder(PipelineConfig::cosine(0.5))
            .algorithm(Algorithm::LshBayesLsh)
            .build(corpus(41))
            .unwrap();
        let victim = 13u32;
        let probe = s.data().vector(victim).clone();
        assert!(s
            .query(&probe, 0.99)
            .unwrap()
            .neighbors
            .iter()
            .any(|&(got, _)| got == victim));

        assert!(s.remove(victim).unwrap());
        assert!(!s.remove(victim).unwrap(), "double remove is a no-op");
        assert!(s.is_removed(victim));
        assert_eq!(s.pending_removals(), 1);
        assert!(matches!(
            s.remove(s.len() as u32).unwrap_err(),
            SearchError::InvalidConfig { param: "id", .. }
        ));

        // Tombstoned: hidden from every read path, but not yet persistable.
        assert!(s
            .query(&probe, 0.2)
            .unwrap()
            .neighbors
            .iter()
            .all(|&(got, _)| got != victim));
        assert!(s
            .top_k(&probe, s.len(), &KnnParams::default())
            .unwrap()
            .neighbors
            .iter()
            .all(|&(got, _)| got != victim));
        assert!(s
            .all_pairs()
            .unwrap()
            .pairs
            .iter()
            .all(|&(a, b, _)| a != victim && b != victim));
        let err = s.save(&mut Vec::new()).unwrap_err();
        assert!(
            err.to_string().contains("compact"),
            "save must demand compaction"
        );

        // Compaction rewrites index + pool; results are unchanged and the
        // snapshot round-trips bit-identically.
        let before = s.query(&probe, 0.2).unwrap().neighbors;
        assert_eq!(s.compact(), 1);
        assert_eq!(s.pending_removals(), 0);
        assert_eq!(s.len(), corpus(41).len(), "ids stay stable after compact");
        assert_eq!(s.query(&probe, 0.2).unwrap().neighbors, before);

        let mut buf = Vec::new();
        s.save(&mut buf).unwrap();
        let loaded = Searcher::load(&buf[..]).unwrap();
        assert_eq!(loaded.len(), s.len());
        assert_eq!(loaded.query(&probe, 0.2).unwrap().neighbors, before);
        assert!(loaded
            .all_pairs()
            .unwrap()
            .pairs
            .iter()
            .all(|&(a, b, _)| a != victim && b != victim));
    }
}
