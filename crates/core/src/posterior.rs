//! The posterior-inference interface shared by all BayesLSH instantiations.

/// Bayesian inference over a pair's similarity after observing hash
/// agreements.
///
/// `M(m, n)` denotes the event "m of the first n hashes matched". The
/// likelihood is `Pr[M(m,n) | S] = C(n,m) p^m (1−p)^{n−m}` where `p` is the
/// *hash collision* similarity; implementations relate `p` to the *target*
/// similarity (identity for Jaccard, `r = 1 − θ/π` for cosine) and place a
/// prior on it. All three queries are posed in the target similarity space.
pub trait PosteriorModel {
    /// `Pr[S ≥ t | M(m, n)]` — paper Equation 3. BayesLSH prunes a pair as
    /// soon as this drops below the recall parameter ε.
    fn prob_above_threshold(&self, m: u32, n: u32, t: f64) -> f64;

    /// The maximum-a-posteriori similarity estimate `Ŝ` — paper Equation 4.
    /// Requires `n > 0`.
    fn map_estimate(&self, m: u32, n: u32) -> f64;

    /// `Pr[|S − Ŝ| < δ | M(m, n)]` — paper Equation 6. BayesLSH stops
    /// comparing hashes once this reaches `1 − γ`.
    fn concentration(&self, m: u32, n: u32, delta: f64) -> f64;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::PosteriorModel;

    /// Shared sanity battery run against every model implementation.
    pub fn check_model_invariants<M: PosteriorModel>(model: &M, t: f64) {
        // Monotone in m: more agreements, higher belief in S >= t.
        for n in [32u32, 64, 128, 256] {
            let mut prev = -1.0;
            for m in 0..=n {
                let p = model.prob_above_threshold(m, n, t);
                assert!(
                    (0.0..=1.0 + 1e-12).contains(&p),
                    "{}: prob out of range at m={m} n={n}: {p}",
                    model.name()
                );
                assert!(
                    p >= prev - 1e-9,
                    "{}: prob not monotone in m at m={m} n={n}: {p} < {prev}",
                    model.name()
                );
                prev = p;
            }
        }
        // MAP estimates live in [0, 1] and increase with m.
        for n in [32u32, 128] {
            let mut prev = -1.0;
            for m in 0..=n {
                let s = model.map_estimate(m, n);
                assert!(
                    (0.0..=1.0).contains(&s),
                    "{}: MAP {s} at m={m} n={n}",
                    model.name()
                );
                assert!(
                    s >= prev - 1e-9,
                    "{}: MAP not monotone at m={m}",
                    model.name()
                );
                prev = s;
            }
        }
        // Concentration improves with evidence at a fixed agreement rate,
        // and wider delta never hurts.
        for &rate in &[0.6f64, 0.8, 0.95] {
            let c_small = model.concentration((rate * 64.0) as u32, 64, 0.05);
            let c_large = model.concentration((rate * 1024.0) as u32, 1024, 0.05);
            assert!(
                c_large >= c_small - 1e-6,
                "{}: concentration should grow with n at rate {rate}: {c_large} < {c_small}",
                model.name()
            );
            let narrow = model.concentration((rate * 256.0) as u32, 256, 0.01);
            let wide = model.concentration((rate * 256.0) as u32, 256, 0.10);
            assert!(
                wide >= narrow - 1e-9,
                "{}: concentration must be monotone in delta",
                model.name()
            );
        }
    }
}
