//! Family-generic BayesLSH posterior model.
//!
//! The Jaccard and cosine models exploit closed forms special to their
//! collision curves. This model is the generic construction that works for
//! *any* [`FamilyConfig`] exposing the monotone map `p(s)` between target
//! similarity and per-hash collision probability (paper Eq. 1): place the
//! uniform `Beta(1, 1)` prior on the collision probability `p` itself, so
//! after observing `M(m, n)` the posterior over `p` is conjugate,
//! `Beta(m + 1, n − m + 1)`, and every inference query transports through
//! `p(·)` / its inverse:
//!
//! * `Pr[S ≥ t | M(m,n)] = Pr[p ≥ p(t)]` — one regularized-incomplete-beta
//!   tail (monotonicity of `p(·)` makes the events identical);
//! * `Ŝ = p⁻¹(mode)` — the MAP collision rate pulled back to similarity;
//! * concentration integrates the posterior over `p((Ŝ−δ, Ŝ+δ))`.
//!
//! This is what lets the L2 (E2LSH) family — whose collision curve (Datar
//! et al. Eq. 2) has no conjugate similarity-space prior — ride the Bayes
//! and BayesLite verifiers unchanged.

use bayeslsh_lsh::FamilyConfig;
use bayeslsh_numeric::BetaDist;

use crate::posterior::PosteriorModel;

/// Posterior model for any hash family, with a uniform prior on the
/// per-hash collision probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FamilyModel {
    family: FamilyConfig,
    prior: BetaDist,
}

impl FamilyModel {
    /// A model for `family` with the uniform `Beta(1, 1)` prior on the
    /// collision probability.
    pub fn new(family: FamilyConfig) -> Self {
        Self {
            family,
            prior: BetaDist::uniform(),
        }
    }

    /// The family whose collision curve this model transports through.
    pub fn family(&self) -> FamilyConfig {
        self.family
    }

    /// Posterior over the collision probability after observing `m`
    /// matches in `n` hashes.
    pub fn posterior(&self, m: u32, n: u32) -> BetaDist {
        self.prior.posterior(m as u64, n as u64)
    }

    /// Clamp a similarity into the family's invertible range before
    /// evaluating the collision curve.
    fn collision_at(&self, s: f64) -> f64 {
        self.family.collision_one(s.clamp(-1.0, 1.0))
    }
}

impl PosteriorModel for FamilyModel {
    fn prob_above_threshold(&self, m: u32, n: u32, t: f64) -> f64 {
        self.posterior(m, n).sf(self.collision_at(t))
    }

    fn map_estimate(&self, m: u32, n: u32) -> f64 {
        assert!(n > 0, "MAP estimate needs at least one observation");
        self.family.similarity_at(self.posterior(m, n).mode())
    }

    fn concentration(&self, m: u32, n: u32, delta: f64) -> f64 {
        let post = self.posterior(m, n);
        let s_hat = self.family.similarity_at(post.mode());
        post.interval_prob(
            self.collision_at(s_hat - delta),
            self.collision_at(s_hat + delta),
        )
    }

    fn name(&self) -> &'static str {
        "family-beta"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard_model::JaccardModel;
    use crate::posterior::test_support::check_model_invariants;
    use bayeslsh_lsh::e2lsh_collision;

    #[test]
    fn invariant_battery_l2() {
        check_model_invariants(&FamilyModel::new(FamilyConfig::L2 { r: 4.0 }), 0.5);
        check_model_invariants(&FamilyModel::new(FamilyConfig::L2 { r: 1.0 }), 0.8);
    }

    #[test]
    fn jaccard_family_reduces_to_uniform_jaccard_model() {
        // For MinHash, p(s) = s, so the generic construction must coincide
        // with the specialized uniform-prior Jaccard model exactly.
        let generic = FamilyModel::new(FamilyConfig::Jaccard);
        let special = JaccardModel::uniform();
        for &(m, n) in &[(0u32, 32u32), (17, 32), (32, 32), (200, 256)] {
            for &t in &[0.3, 0.5, 0.9] {
                let a = generic.prob_above_threshold(m, n, t);
                let b = special.prob_above_threshold(m, n, t);
                assert!((a - b).abs() < 1e-12, "m={m} n={n} t={t}: {a} vs {b}");
            }
            let a = generic.map_estimate(m, n);
            let b = special.map_estimate(m, n);
            assert!((a - b).abs() < 1e-12, "MAP m={m} n={n}: {a} vs {b}");
        }
    }

    #[test]
    fn l2_threshold_transports_through_collision_curve() {
        let r = 4.0;
        let model = FamilyModel::new(FamilyConfig::L2 { r });
        let (m, n, t) = (28u32, 32u32, 0.5);
        // Pr[S >= t] must equal the Beta tail beyond p(t).
        let direct = model.posterior(m, n).sf(e2lsh_collision(t, r));
        assert!((model.prob_above_threshold(m, n, t) - direct).abs() < 1e-15);
        // The MAP estimate inverts the curve: p(Ŝ) = posterior mode.
        let s_hat = model.map_estimate(m, n);
        let mode = model.posterior(m, n).mode();
        assert!((e2lsh_collision(s_hat, r) - mode).abs() < 1e-9);
    }

    #[test]
    fn extreme_evidence_is_decisive() {
        let model = FamilyModel::new(FamilyConfig::L2 { r: 4.0 });
        // Near-total agreement: surely above a mid threshold.
        assert!(model.prob_above_threshold(127, 128, 0.5) > 0.98);
        // Near-total disagreement: surely below it.
        assert!(model.prob_above_threshold(5, 128, 0.5) < 1e-9);
    }
}
