//! Precomputed decision boundaries for the SPRT verifier.
//!
//! The verifier runs Wald sequential probability-ratio tests on each
//! candidate pair's agreement stream: hash `i` of a pair with similarity
//! `s` agrees with probability `p(s)` (the collision probability of the
//! hash family), so after `n` hashes with `m` agreements the
//! log-likelihood ratio between two hypothesized collision rates `p_hi`
//! and `p_lo` is the linear statistic
//!
//! ```text
//! LLR(m, n) = m·ln(p_hi/p_lo) + (n − m)·ln((1 − p_hi)/(1 − p_lo))
//! ```
//!
//! Two decisions are taken at every chunk boundary, each one-sided:
//!
//! * **Accept** — the classical Wald test over the indifference region
//!   `(t − δ, t + δ)`: accept once `LLR ≥ A = ln((1 − α)/β)` with
//!   `p_hi = p(t + δ)`, `p_lo = p(t − δ)`. By Wald's bound a pair with
//!   `S ≤ t − δ` is accepted with probability at most β.
//! * **Prune** — a binomial-quantile test of the keep hypothesis
//!   `p ≥ p(t)` with a *front-loaded α-spending schedule*: chunk `c` is
//!   granted the share `α_c = α·2⁻ᶜ` (the final chunk absorbs the
//!   remainder so the shares sum to α) and prunes any pair whose
//!   cumulative agreement count `m` satisfies
//!   `Pr[Bin(n, p(t)) ≤ m] ≤ α_c`. The binomial CDF is decreasing in `p`,
//!   so under any `p ≥ p(t)` chunk `c` false-prunes with probability at
//!   most `α_c`, and a union bound over chunks keeps the total at α. The
//!   schedule is front-loaded because an LSH candidate stream is
//!   junk-dominated: almost all pairs sit near the hash family's
//!   background agreement rate, and spending half of α at the very first
//!   boundary removes the bulk of them after a single chunk — a
//!   uniformly-valid sequential bound (e.g. Ville's inequality on the
//!   likelihood-ratio supermartingale) pays for boundaries it never uses
//!   and lets far too much junk survive into chunk two.
//!
//! The prune guarantee is *stronger* than the symmetric textbook
//! statement: **every** pair with `S ≥ t` (not just `S ≥ t + δ`) survives
//! pruning with probability at least `1 − α`.
//!
//! The accept LLR is strictly increasing in `m` and the binomial CDF is
//! nondecreasing in `m`, so — exactly like the [`crate::minmatch`] tables
//! — every decision point `n = (c+1)·k` reduces to two precomputed
//! integer thresholds, and the hot loop is two comparisons per pair per
//! chunk with no floating-point work at all.
//!
//! Every decision is a pure function of the cumulative `(m, n)` at a chunk
//! boundary, so verdicts are invariant to how the agreement stream is
//! batched — the property behind the serial ≡ parallel ≡ sharded
//! bit-identity guarantees (and pinned by a proptest in
//! `tests/paper_guarantees_stat.rs`).

use bayeslsh_numeric::Binomial;

use crate::config::SprtConfig;

/// Keep the hypothesized collision probabilities strictly inside (0, 1) so
/// both log-likelihood terms stay finite.
const P_CLAMP: f64 = 1e-6;

/// Per-chunk SPRT decision thresholds for a fixed `(collision, t, α, β, δ, k)`.
#[derive(Debug, Clone)]
pub struct SprtTable {
    k: u32,
    /// `accept[c]` = smallest `m` with `LLR(m, (c+1)·k) ≥ A`; the sentinel
    /// `n + 1` means "no agreement count accepts at this depth".
    accept: Vec<u32>,
    /// `keep[c]` = smallest `m` the chunk's binomial-quantile test does not
    /// fire on; prune iff `m < keep[c]`.
    keep: Vec<u32>,
}

impl SprtTable {
    /// Build the boundary table for `cfg`, with `collision` mapping a
    /// similarity to the hash family's per-hash agreement probability
    /// (`cos_to_r` for SRP bits, identity for minhashes).
    pub fn build(cfg: &SprtConfig, collision: impl Fn(f64) -> f64) -> Self {
        cfg.validate();
        let clamp = |p: f64| p.clamp(P_CLAMP, 1.0 - P_CLAMP);

        // Accept test: p(t + δ) against p(t − δ), Wald boundary A.
        let p0 = clamp(collision(cfg.threshold - cfg.delta));
        let mut p1 = clamp(collision(cfg.threshold + cfg.delta));
        if p1 <= p0 {
            // Degenerate indifference region (threshold + δ clamped into
            // threshold − δ): widen minimally so LLR stays monotone in m.
            p1 = (p0 + P_CLAMP).min(1.0 - P_CLAMP / 2.0);
        }
        let la = (p1 / p0).ln();
        let lb = ((1.0 - p1) / (1.0 - p0)).ln();
        let a_bound = ((1.0 - cfg.alpha) / cfg.beta).ln();
        let llr_accept = |m: u32, n: u32| m as f64 * la + (n - m) as f64 * lb;

        // Prune boundary: chunk c spends α·2⁻ᶜ (remainder on the last
        // chunk) and prunes while the keep hypothesis p(t) puts at most
        // that much mass at or below the observed agreement count. A chunk
        // whose share is smaller than the entire lower tail cannot prune
        // (keep threshold 0); past the schedule's useful depth undecided
        // pairs simply ride to the exact fallback at the cap.
        let p_keep = clamp(collision(cfg.threshold));

        let k = cfg.k;
        let chunks = cfg.max_hashes.div_ceil(k);
        let mut accept = Vec::with_capacity(chunks as usize);
        let mut keep = Vec::with_capacity(chunks as usize);
        let mut alpha_left = cfg.alpha;
        for c in 1..=chunks {
            let n = c * k;
            let share = if c < chunks {
                alpha_left / 2.0
            } else {
                alpha_left
            };
            alpha_left -= share;
            let bin = Binomial::new(n as u64, p_keep);
            let acc = Self::search(n, |m| llr_accept(m, n) >= a_bound);
            let kp = Self::search(n, |m| bin.cdf(m as u64) > share);
            // The prune bar must sit strictly below the accept bar so a
            // decisive verdict is always exclusive (clamping downward only
            // makes pruning rarer, which never costs recall).
            accept.push(acc);
            keep.push(kp.min(acc.saturating_sub(1)));
        }
        Self { k, accept, keep }
    }

    /// Smallest `m ∈ 0..=n` satisfying the (monotone in `m`) predicate, or
    /// the sentinel `n + 1` when none does.
    fn search(n: u32, pred: impl Fn(u32) -> bool) -> u32 {
        if !pred(n) {
            return n + 1;
        }
        if pred(0) {
            return 0;
        }
        // Invariant: !pred(lo) && pred(hi).
        let (mut lo, mut hi) = (0u32, n);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if pred(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    #[inline]
    fn chunk_index(&self, n: u32) -> usize {
        debug_assert!(
            n >= self.k && n % self.k == 0,
            "n={n} not a chunk multiple of {}",
            self.k
        );
        (n / self.k - 1) as usize
    }

    /// Should a pair with `m` agreements at `n` hashes be accepted?
    #[inline]
    pub fn should_accept(&self, m: u32, n: u32) -> bool {
        m >= self.accept[self.chunk_index(n)]
    }

    /// Should a pair with `m` agreements at `n` hashes be pruned?
    #[inline]
    pub fn should_prune(&self, m: u32, n: u32) -> bool {
        m < self.keep[self.chunk_index(n)]
    }

    /// Chunk size the table was built for.
    pub fn chunk(&self) -> u32 {
        self.k
    }

    /// Largest hash count covered (a multiple of the chunk size).
    pub fn max_hashes(&self) -> u32 {
        self.accept.len() as u32 * self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_lsh::cos_to_r;

    #[test]
    fn accept_strictly_above_prune_everywhere() {
        // Decisive verdicts are exclusive: at every depth the accept
        // threshold sits strictly above the prune one, leaving a genuine
        // continuation band.
        type Collision = fn(f64) -> f64;
        let families: [(SprtConfig, Collision); 2] = [
            (SprtConfig::cosine(0.7), cos_to_r),
            (SprtConfig::jaccard(0.5), |s| s),
        ];
        for (cfg, collision) in families {
            let table = SprtTable::build(&cfg, collision);
            let mut n = cfg.k;
            while n <= table.max_hashes() {
                let c = table.chunk_index(n);
                assert!(
                    table.accept[c] > table.keep[c],
                    "n={n}: accept {} <= keep {}",
                    table.accept[c],
                    table.keep[c]
                );
                n += cfg.k;
            }
        }
    }

    #[test]
    fn boundaries_match_brute_force() {
        // Re-derive both boundaries by direct linear scan over m and
        // compare with the binary-searched table.
        let cfg = SprtConfig::jaccard(0.5);
        let table = SprtTable::build(&cfg, |s| s);
        let t = cfg.threshold;
        let (p0, p1) = (t - cfg.delta, t + cfg.delta);
        let la = (p1 / p0).ln();
        let lb = ((1.0 - p1) / (1.0 - p0)).ln();
        let a = ((1.0 - cfg.alpha) / cfg.beta).ln();
        let chunks = cfg.max_hashes / cfg.k;
        for n in [32u32, 64, 256] {
            let c = n / cfg.k;
            // The chunk's α share under the front-loaded geometric
            // schedule: halved each chunk, remainder on the last.
            let share = if c < chunks {
                cfg.alpha * 0.5f64.powi(c as i32)
            } else {
                cfg.alpha * 0.5f64.powi(chunks as i32 - 1)
            };
            let bin = Binomial::new(n as u64, t);
            let acc = (0..=n)
                .find(|&m| m as f64 * la + (n - m) as f64 * lb >= a)
                .unwrap_or(n + 1);
            let kp = (0..=n)
                .find(|&m| bin.cdf(m as u64) > share)
                .unwrap_or(n + 1);
            let keep = kp.min(acc.saturating_sub(1));
            for m in 0..=n {
                assert_eq!(table.should_accept(m, n), m >= acc, "accept m={m} n={n}");
                assert_eq!(table.should_prune(m, n), m < keep, "prune m={m} n={n}");
            }
        }
    }

    #[test]
    fn perfect_agreement_accepts_and_total_disagreement_prunes() {
        let cfg = SprtConfig::cosine(0.7);
        let table = SprtTable::build(&cfg, cos_to_r);
        // A full chunk of agreements is not necessarily decisive, but by a
        // few chunks of perfect agreement the accept boundary must trip...
        assert!(table.should_accept(128, 128));
        // ...and a fully disagreeing pair is junk immediately.
        assert!(table.should_prune(0, 32));
        // A decisive verdict is exclusive.
        for n in [32u32, 512] {
            for m in [0, n / 2, n] {
                assert!(
                    !(table.should_accept(m, n) && table.should_prune(m, n)),
                    "m={m} n={n} both accepted and pruned"
                );
            }
        }
    }

    #[test]
    fn junk_prunes_in_the_first_chunk() {
        // The whole point of the front-loaded schedule: a pair at the hash
        // family's background agreement rate must be gone after a single
        // chunk. For SRP bits an orthogonal pair agrees at rate 1/2, i.e.
        // m ≈ 16 of 32 — far below Bin(32, p(0.7))'s lower α/2 quantile.
        let table = SprtTable::build(&SprtConfig::cosine(0.7), cos_to_r);
        assert!(table.should_prune(16, 32));
        // For minhashes a disjoint pair agrees (almost) never.
        let table = SprtTable::build(&SprtConfig::jaccard(0.5), |s| s);
        assert!(table.should_prune(2, 32));
    }

    #[test]
    fn tighter_alpha_raises_the_prune_bar() {
        // Smaller α (fewer false prunes allowed) must make pruning harder:
        // the keep threshold can only drop.
        let loose = SprtTable::build(
            &SprtConfig {
                alpha: 0.2,
                ..SprtConfig::jaccard(0.5)
            },
            |s| s,
        );
        let tight = SprtTable::build(
            &SprtConfig {
                alpha: 0.001,
                ..SprtConfig::jaccard(0.5)
            },
            |s| s,
        );
        for c in 0..loose.keep.len() {
            assert!(
                tight.keep[c] <= loose.keep[c],
                "chunk {c}: tight {} > loose {}",
                tight.keep[c],
                loose.keep[c]
            );
        }
    }

    #[test]
    fn extreme_thresholds_survive_the_clamp() {
        // threshold ± δ beyond [0, 1] must not produce NaN boundaries, an
        // inverted indifference region, or a degenerate binomial tail.
        for t in [0.02, 0.98] {
            let cfg = SprtConfig::jaccard(t);
            let table = SprtTable::build(&cfg, |s| s);
            assert_eq!(table.max_hashes(), 256);
            assert!(table.accept.iter().all(|&m| m <= 256 + 1));
            let c = table.chunk_index(256);
            assert!(table.accept[c] > table.keep[c]);
        }
    }
}
