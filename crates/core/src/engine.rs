//! The BayesLSH (Algorithm 1) and BayesLSH-Lite (Algorithm 2) inner loops.
//!
//! Both engines walk a candidate list, comparing hashes `k` at a time
//! through a lazily-extended [`SignaturePool`], pruning a pair as soon as
//! its posterior probability of reaching the threshold drops below ε. Full
//! BayesLSH keeps comparing until the MAP estimate is `(δ, γ)`-concentrated
//! and emits the estimate; Lite stops after at most `h` hashes and verifies
//! survivors with an exact similarity computation.
//!
//! Both Section 4.3 optimizations are applied: the pruning test is a
//! [`MinMatchTable`] lookup and concentration checks go through the
//! [`ConcentrationCache`]. Agreement counting is run-major and batched:
//! candidates sharing a probe are swept together through
//! [`SignaturePool::agreements_batched`], so the hot loop is word-parallel
//! XOR + popcount with no per-pair allocation (see `RunScan`).

use bayeslsh_lsh::SignaturePool;
use bayeslsh_sparse::{Dataset, SparseVector};

use crate::cache::ConcentrationCache;
use crate::config::{BayesLshConfig, LiteConfig, SprtConfig};
use crate::minmatch::MinMatchTable;
use crate::posterior::PosteriorModel;
use crate::sprt::SprtTable;

/// Counters describing one verification run; the source of the paper's
/// Figure 4 pruning curves and the cache/hashing cost discussion.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Candidate pairs fed in.
    pub input_pairs: u64,
    /// Pairs pruned by the posterior-tail test.
    pub pruned: u64,
    /// Pairs emitted (with estimates, or exact-verified for Lite).
    pub accepted: u64,
    /// Full-BayesLSH pairs that hit `max_hashes` without reaching
    /// concentration (emitted anyway with their current estimate).
    pub forced_accepts: u64,
    /// Exact similarity computations (Lite only).
    pub exact_verifications: u64,
    /// Total per-pair hash comparisons performed.
    pub hash_comparisons: u64,
    /// Chunk size used.
    pub k: u32,
    /// `pruned_at_chunk[c]` = pairs pruned after examining `(c+1)·k` hashes.
    pub pruned_at_chunk: Vec<u64>,
    /// Concentration cache (hits, misses).
    pub cache_hits: u64,
    /// See [`EngineStats::cache_hits`].
    pub cache_misses: u64,
    /// Bucket lookups performed by the candidate-generation stage (1 per
    /// band for single-probe queries, more under step-wise multi-probe).
    /// 0 for batch joins, which enumerate buckets instead of probing them.
    pub bucket_probes: u64,
}

impl EngineStats {
    /// Fold another run's counters into this one (used by the parallel
    /// drivers to merge per-worker statistics; `input_pairs` and `k` are
    /// set by the caller, `pruned_at_chunk` adds elementwise up to the
    /// shorter length).
    pub fn absorb(&mut self, other: &EngineStats) {
        self.pruned += other.pruned;
        self.accepted += other.accepted;
        self.forced_accepts += other.forced_accepts;
        self.exact_verifications += other.exact_verifications;
        self.hash_comparisons += other.hash_comparisons;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.bucket_probes += other.bucket_probes;
        for (dst, src) in self.pruned_at_chunk.iter_mut().zip(&other.pruned_at_chunk) {
            *dst += src;
        }
    }

    /// Hash comparisons spent per accepted pair — the verification-cost
    /// metric the adaptive (SPRT) verifier optimizes. 0.0 when nothing was
    /// accepted.
    pub fn hashes_per_accepted_pair(&self) -> f64 {
        if self.accepted == 0 {
            0.0
        } else {
            self.hash_comparisons as f64 / self.accepted as f64
        }
    }

    /// The Figure 4 curve: `(hashes examined, candidates not yet pruned)`,
    /// starting from the full input set. Accepted pairs count as remaining
    /// (they survive into the output).
    pub fn survivors_curve(&self) -> Vec<(u32, u64)> {
        let mut remaining = self.input_pairs;
        let mut curve = Vec::with_capacity(self.pruned_at_chunk.len() + 1);
        curve.push((0, remaining));
        for (c, &p) in self.pruned_at_chunk.iter().enumerate() {
            remaining -= p;
            curve.push(((c as u32 + 1) * self.k, remaining));
        }
        curve
    }
}

/// Outcome of one run member in a run-major batched scan.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) enum RunVerdict {
    /// Still scanning (or, after the scan, survived every chunk).
    #[default]
    Pending,
    /// Pruned by the posterior-tail test.
    Pruned,
    /// Accepted with this similarity estimate.
    Emit(f64),
}

/// Reusable scratch for the run-major batched scans: the verify engines
/// walk candidates in maximal runs sharing a probe `a` (the shape both
/// all-pairs and sorted LSH generation emit) and count the probe against
/// every still-alive partner with one [`SignaturePool::agreements_batched`]
/// sweep per chunk. One `RunScan` is reused across all runs, so
/// steady-state verification performs no per-pair allocation.
///
/// The batching only reorders *when* each pair's chunks are counted; every
/// pair's `(m, n)` trajectory and verdict are identical to the
/// pair-at-a-time loop, which keeps serial ≡ parallel bit-identical.
#[derive(Debug, Default)]
pub(crate) struct RunScan {
    /// Offsets (into the current run) of pairs not yet pruned or accepted.
    pub alive: Vec<u32>,
    /// Partner ids of `alive`, in step — the batched sweep's id list.
    pub alive_ids: Vec<u32>,
    /// Per-chunk batched agreement counts, in step with `alive`.
    pub counts: Vec<u32>,
    /// Cumulative agreeing hashes per run member.
    pub m: Vec<u32>,
    /// Verdict per run member, emitted in candidate order after the run.
    pub verdicts: Vec<RunVerdict>,
}

impl RunScan {
    /// Prepare for a run of `len` pairs: everyone alive, zero matches.
    pub(crate) fn reset(&mut self, len: usize) {
        self.alive.clear();
        self.alive.extend(0..len as u32);
        self.m.clear();
        self.m.resize(len, 0);
        self.verdicts.clear();
        self.verdicts.resize(len, RunVerdict::Pending);
    }
}

/// Length of the maximal run of candidates sharing `candidates[i].0`.
#[inline]
pub(crate) fn run_end(candidates: &[(u32, u32)], i: usize) -> usize {
    let a = candidates[i].0;
    let mut j = i + 1;
    while j < candidates.len() && candidates[j].0 == a {
        j += 1;
    }
    j
}

/// BayesLSH (paper Algorithm 1): prune or estimate every candidate pair.
///
/// Returns `(pair, Ŝ)` for every unpruned pair, plus run statistics. Note
/// the output is the paper's: a pair is kept whenever its probability of
/// being a true positive stays ≥ ε, even if the final estimate lands
/// slightly below `t`.
///
/// Candidates are scanned run-major (see `RunScan`): per chunk, one
/// batched popcount sweep counts the shared probe against every surviving
/// partner, so the steady-state cost per surviving pair is XOR + popcount
/// per signature word, with no allocation.
pub fn bayes_verify<P: SignaturePool, M: PosteriorModel>(
    data: &Dataset,
    pool: &mut P,
    model: &M,
    candidates: &[(u32, u32)],
    cfg: &BayesLshConfig,
) -> (Vec<(u32, u32, f64)>, EngineStats) {
    cfg.validate();
    let k = cfg.k;
    let max_chunks = (cfg.max_hashes / k).max(1);
    // No `depth_hint` here, deliberately: the whole point of the chunked
    // scan is that most signatures stay shallow (pruned after a chunk or
    // two), so front-loading the cap would reserve ~max_chunks× the memory
    // actually used. The hot loop stays allocation-light through the hash
    // kernels' reused scratch; the few deep signatures pay O(log chunks)
    // amortized reallocations.
    let table = MinMatchTable::build(model, cfg.threshold, cfg.epsilon, k, max_chunks * k);
    let mut cache = ConcentrationCache::new(cfg.delta, cfg.gamma);

    let mut stats = EngineStats {
        input_pairs: candidates.len() as u64,
        k,
        pruned_at_chunk: vec![0; max_chunks as usize],
        ..Default::default()
    };
    let mut out = Vec::new();

    let mut scan = RunScan::default();
    let mut i = 0usize;
    while i < candidates.len() {
        let j = run_end(candidates, i);
        let run = &candidates[i..j];
        let a = run[0].0;
        let va = data.vector(a);
        scan.reset(run.len());
        let mut n = 0u32;
        for c in 0..max_chunks {
            if scan.alive.is_empty() {
                break;
            }
            pool.ensure(a, va, n + k);
            scan.alive_ids.clear();
            for &r in &scan.alive {
                let b = run[r as usize].1;
                pool.ensure(b, data.vector(b), n + k);
                scan.alive_ids.push(b);
            }
            pool.agreements_batched(a, &scan.alive_ids, n, n + k, &mut scan.counts);
            n += k;
            stats.hash_comparisons += k as u64 * scan.alive.len() as u64;
            let mut kept = 0usize;
            for t in 0..scan.alive.len() {
                let r = scan.alive[t] as usize;
                let m = scan.m[r] + scan.counts[t];
                scan.m[r] = m;
                if table.should_prune(m, n) {
                    stats.pruned += 1;
                    stats.pruned_at_chunk[c as usize] += 1;
                    scan.verdicts[r] = RunVerdict::Pruned;
                } else if cache.is_concentrated(model, m, n) {
                    scan.verdicts[r] = RunVerdict::Emit(model.map_estimate(m, n));
                    stats.accepted += 1;
                } else {
                    scan.alive[kept] = r as u32;
                    kept += 1;
                }
            }
            scan.alive.truncate(kept);
        }
        for &r in &scan.alive {
            // Unconcentrated at the cap (n = max_hashes here): emit with
            // the current estimate rather than dropping (preserves the
            // recall guarantee).
            scan.verdicts[r as usize] = RunVerdict::Emit(model.map_estimate(scan.m[r as usize], n));
            stats.accepted += 1;
            stats.forced_accepts += 1;
        }
        for (r, &(_, b)) in run.iter().enumerate() {
            if let RunVerdict::Emit(est) = scan.verdicts[r] {
                out.push((a, b, est));
            }
        }
        i = j;
    }
    let (h, mi) = cache.stats();
    stats.cache_hits = h;
    stats.cache_misses = mi;
    (out, stats)
}

/// BayesLSH-Lite (paper Algorithm 2): prune with at most `h` hashes, verify
/// survivors exactly with `exact` and keep pairs with `s ≥ t`.
pub fn bayes_verify_lite<P, M, F>(
    data: &Dataset,
    pool: &mut P,
    model: &M,
    candidates: &[(u32, u32)],
    cfg: &LiteConfig,
    exact: F,
) -> (Vec<(u32, u32, f64)>, EngineStats)
where
    P: SignaturePool,
    M: PosteriorModel,
    F: Fn(&SparseVector, &SparseVector) -> f64,
{
    cfg.validate();
    let k = cfg.k;
    let max_chunks = (cfg.h / k).max(1);
    // No `depth_hint`: see `bayes_verify` — pruning keeps most signatures
    // far below the cap.
    let table = MinMatchTable::build(model, cfg.threshold, cfg.epsilon, k, max_chunks * k);

    let mut stats = EngineStats {
        input_pairs: candidates.len() as u64,
        k,
        pruned_at_chunk: vec![0; max_chunks as usize],
        ..Default::default()
    };
    let mut out = Vec::new();

    let mut scan = RunScan::default();
    let mut i = 0usize;
    while i < candidates.len() {
        let j = run_end(candidates, i);
        let run = &candidates[i..j];
        let a = run[0].0;
        let va = data.vector(a);
        scan.reset(run.len());
        let mut n = 0u32;
        for c in 0..max_chunks {
            if scan.alive.is_empty() {
                break;
            }
            pool.ensure(a, va, n + k);
            scan.alive_ids.clear();
            for &r in &scan.alive {
                let b = run[r as usize].1;
                pool.ensure(b, data.vector(b), n + k);
                scan.alive_ids.push(b);
            }
            pool.agreements_batched(a, &scan.alive_ids, n, n + k, &mut scan.counts);
            n += k;
            stats.hash_comparisons += k as u64 * scan.alive.len() as u64;
            let mut kept = 0usize;
            for t in 0..scan.alive.len() {
                let r = scan.alive[t] as usize;
                let m = scan.m[r] + scan.counts[t];
                scan.m[r] = m;
                if table.should_prune(m, n) {
                    stats.pruned += 1;
                    stats.pruned_at_chunk[c as usize] += 1;
                    scan.verdicts[r] = RunVerdict::Pruned;
                } else {
                    scan.alive[kept] = r as u32;
                    kept += 1;
                }
            }
            scan.alive.truncate(kept);
        }
        // Survivors (still Pending) get the exact check, in candidate order.
        for (r, &(_, b)) in run.iter().enumerate() {
            if matches!(scan.verdicts[r], RunVerdict::Pending) {
                stats.exact_verifications += 1;
                let s = exact(va, data.vector(b));
                if s >= cfg.threshold {
                    out.push((a, b, s));
                    stats.accepted += 1;
                }
            }
        }
        i = j;
    }
    (out, stats)
}

/// SPRT verification: a Wald sequential test over each pair's agreement
/// stream, with per-chunk early-accept *and* early-prune boundaries (see
/// [`SprtTable`]) and a bounded exact fallback for pairs still undecided at
/// `cfg.max_hashes` — so output quality is never worse than BayesLSH-Lite
/// while obviously-similar and obviously-junk pairs terminate after a
/// handful of chunks.
///
/// `collision` maps a similarity to the hash family's per-hash agreement
/// probability (`cos_to_r` for SRP bits, identity for minhashes),
/// `estimate` maps an agreement fraction back to the similarity space
/// (`r_to_cos` / identity), and `exact` computes the true similarity for
/// the fallback. Scanning is run-major and batched exactly like
/// [`bayes_verify`].
pub fn sprt_verify<P, F>(
    data: &Dataset,
    pool: &mut P,
    candidates: &[(u32, u32)],
    cfg: &SprtConfig,
    collision: impl Fn(f64) -> f64,
    estimate: impl Fn(f64) -> f64,
    exact: F,
) -> (Vec<(u32, u32, f64)>, EngineStats)
where
    P: SignaturePool,
    F: Fn(&SparseVector, &SparseVector) -> f64,
{
    let table = SprtTable::build(cfg, collision);
    let k = cfg.k;
    let max_chunks = (cfg.max_hashes / k).max(1);

    let mut stats = EngineStats {
        input_pairs: candidates.len() as u64,
        k,
        pruned_at_chunk: vec![0; max_chunks as usize],
        ..Default::default()
    };
    let mut out = Vec::new();

    let mut scan = RunScan::default();
    let mut i = 0usize;
    while i < candidates.len() {
        let j = run_end(candidates, i);
        let run = &candidates[i..j];
        let a = run[0].0;
        let va = data.vector(a);
        scan.reset(run.len());
        let mut n = 0u32;
        for c in 0..max_chunks {
            if scan.alive.is_empty() {
                break;
            }
            pool.ensure(a, va, n + k);
            scan.alive_ids.clear();
            for &r in &scan.alive {
                let b = run[r as usize].1;
                pool.ensure(b, data.vector(b), n + k);
                scan.alive_ids.push(b);
            }
            pool.agreements_batched(a, &scan.alive_ids, n, n + k, &mut scan.counts);
            n += k;
            stats.hash_comparisons += k as u64 * scan.alive.len() as u64;
            let mut kept = 0usize;
            for t in 0..scan.alive.len() {
                let r = scan.alive[t] as usize;
                let m = scan.m[r] + scan.counts[t];
                scan.m[r] = m;
                if table.should_prune(m, n) {
                    stats.pruned += 1;
                    stats.pruned_at_chunk[c as usize] += 1;
                    scan.verdicts[r] = RunVerdict::Pruned;
                } else if table.should_accept(m, n) {
                    scan.verdicts[r] = RunVerdict::Emit(estimate(m as f64 / n as f64));
                    stats.accepted += 1;
                } else {
                    scan.alive[kept] = r as u32;
                    kept += 1;
                }
            }
            scan.alive.truncate(kept);
        }
        // Undecided at the cap (inside the indifference region): one exact
        // check settles the pair, in candidate order.
        for (r, &(_, b)) in run.iter().enumerate() {
            match scan.verdicts[r] {
                RunVerdict::Emit(est) => out.push((a, b, est)),
                RunVerdict::Pending => {
                    stats.exact_verifications += 1;
                    let s = exact(va, data.vector(b));
                    if s >= cfg.threshold {
                        out.push((a, b, s));
                        stats.accepted += 1;
                    }
                }
                RunVerdict::Pruned => {}
            }
        }
        i = j;
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosine_model::CosineModel;
    use crate::jaccard_model::JaccardModel;
    use bayeslsh_lsh::{BitSignatures, IntSignatures, MinHasher, SrpHasher};
    use bayeslsh_numeric::Xoshiro256;
    use bayeslsh_sparse::{cosine, jaccard};

    /// Clustered corpus with plenty of similar and dissimilar pairs.
    fn corpus(seed: u64) -> Dataset {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut d = Dataset::new(4000);
        for c in 0..12 {
            let center: Vec<(u32, f32)> = (0..40)
                .map(|_| {
                    (
                        (c * 300 + rng.next_below(280) as usize) as u32,
                        (rng.next_f64() + 0.2) as f32,
                    )
                })
                .collect();
            for _ in 0..6 {
                let mut pairs = center.clone();
                for p in pairs.iter_mut() {
                    if rng.next_bool(0.15) {
                        *p = (rng.next_below(4000) as u32, (rng.next_f64() + 0.2) as f32);
                    }
                }
                d.push(bayeslsh_sparse::SparseVector::from_pairs(pairs));
            }
        }
        d
    }

    fn all_pairs(n: u32) -> Vec<(u32, u32)> {
        let mut v = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                v.push((a, b));
            }
        }
        v
    }

    fn truth(
        data: &Dataset,
        t: f64,
        f: impl Fn(&bayeslsh_sparse::SparseVector, &bayeslsh_sparse::SparseVector) -> f64,
    ) -> Vec<(u32, u32, f64)> {
        let mut out = Vec::new();
        for a in 0..data.len() as u32 {
            for b in (a + 1)..data.len() as u32 {
                let s = f(data.vector(a), data.vector(b));
                if s >= t {
                    out.push((a, b, s));
                }
            }
        }
        out
    }

    #[test]
    fn cosine_bayes_meets_recall_and_accuracy_contract() {
        let data = corpus(61);
        let t = 0.7;
        let cfg = BayesLshConfig::cosine(t);
        let cands = all_pairs(data.len() as u32);
        let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 62), data.len());
        let (out, stats) = bayes_verify(&data, &mut pool, &CosineModel::new(), &cands, &cfg);

        // Bookkeeping adds up.
        assert_eq!(stats.input_pairs, cands.len() as u64);
        assert_eq!(stats.pruned + stats.accepted, stats.input_pairs);

        let gt = truth(&data, t, cosine);
        assert!(gt.len() >= 30, "ground truth too small: {}", gt.len());

        // Recall: the paper reports ≥ ~96–99% at ε = 0.03.
        let out_keys: std::collections::HashSet<(u32, u32)> =
            out.iter().map(|&(a, b, _)| (a, b)).collect();
        let found = gt
            .iter()
            .filter(|&&(a, b, _)| out_keys.contains(&(a, b)))
            .count();
        let recall = found as f64 / gt.len() as f64;
        assert!(recall >= 0.9, "recall {recall} ({found}/{})", gt.len());

        // Estimate accuracy: most emitted estimates within δ of the truth.
        let mut big_errors = 0usize;
        for &(a, b, s_hat) in &out {
            let s = cosine(data.vector(a), data.vector(b));
            if (s - s_hat).abs() >= cfg.delta {
                big_errors += 1;
            }
        }
        let frac = big_errors as f64 / out.len().max(1) as f64;
        assert!(frac <= 0.12, "fraction of >delta errors: {frac}");

        // The engine must actually prune: most of the quadratic candidate
        // space is junk.
        assert!(stats.pruned as f64 / stats.input_pairs as f64 > 0.8);
    }

    #[test]
    fn jaccard_bayes_meets_recall_contract() {
        let data = corpus(63).binarized();
        let t = 0.5;
        let cfg = BayesLshConfig::jaccard(t);
        let cands = all_pairs(data.len() as u32);
        let mut pool = IntSignatures::new(MinHasher::new(64), data.len());
        let (out, stats) = bayes_verify(&data, &mut pool, &JaccardModel::uniform(), &cands, &cfg);
        assert_eq!(stats.pruned + stats.accepted, stats.input_pairs);

        let gt = truth(&data, t, jaccard);
        assert!(gt.len() >= 30);
        let out_keys: std::collections::HashSet<(u32, u32)> =
            out.iter().map(|&(a, b, _)| (a, b)).collect();
        let found = gt
            .iter()
            .filter(|&&(a, b, _)| out_keys.contains(&(a, b)))
            .count();
        let recall = found as f64 / gt.len() as f64;
        assert!(recall >= 0.9, "recall {recall}");
    }

    #[test]
    fn lite_output_is_subset_of_truth() {
        let data = corpus(65);
        let t = 0.7;
        let cfg = LiteConfig::cosine(t);
        let cands = all_pairs(data.len() as u32);
        let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 66), data.len());
        let (out, stats) =
            bayes_verify_lite(&data, &mut pool, &CosineModel::new(), &cands, &cfg, cosine);

        // Exact verification ⇒ no false positives at all.
        for &(a, b, s) in &out {
            assert!(s >= t, "({a},{b}) emitted below threshold: {s}");
            assert!((s - cosine(data.vector(a), data.vector(b))).abs() < 1e-12);
        }
        // And high recall.
        let gt = truth(&data, t, cosine);
        let out_keys: std::collections::HashSet<(u32, u32)> =
            out.iter().map(|&(a, b, _)| (a, b)).collect();
        let found = gt
            .iter()
            .filter(|&&(a, b, _)| out_keys.contains(&(a, b)))
            .count();
        assert!(found as f64 / gt.len() as f64 >= 0.9);
        // Lite must examine at most h hashes per pair.
        assert!(stats.hash_comparisons <= cands.len() as u64 * cfg.h as u64);
        // Exact verifications only for unpruned pairs.
        assert_eq!(stats.exact_verifications, stats.input_pairs - stats.pruned);
    }

    #[test]
    fn sprt_meets_recall_with_fewer_hashes_than_bayes() {
        use bayeslsh_lsh::{cos_to_r, r_to_cos};
        let data = corpus(75);
        let t = 0.7;
        let cands = all_pairs(data.len() as u32);
        let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 76), data.len());
        let cfg = SprtConfig::cosine(t);
        let (out, stats) = sprt_verify(&data, &mut pool, &cands, &cfg, cos_to_r, r_to_cos, cosine);

        // Bookkeeping: every pair is pruned, accepted early, or settled by
        // the exact fallback (which may reject without counting anywhere).
        assert_eq!(stats.input_pairs, cands.len() as u64);
        assert!(stats.pruned + stats.accepted <= stats.input_pairs);
        assert!(stats.exact_verifications < stats.input_pairs / 10);

        let gt = truth(&data, t, cosine);
        assert!(gt.len() >= 30);
        let out_keys: std::collections::HashSet<(u32, u32)> =
            out.iter().map(|&(a, b, _)| (a, b)).collect();
        let found = gt
            .iter()
            .filter(|&&(a, b, _)| out_keys.contains(&(a, b)))
            .count();
        let recall = found as f64 / gt.len() as f64;
        assert!(recall >= 0.9, "recall {recall}");

        // The adaptive stopping rule must beat the concentration schedule
        // on hash comparisons over the same candidates.
        let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 76), data.len());
        let bayes_cfg = BayesLshConfig::cosine(t);
        let (_, bayes_stats) =
            bayes_verify(&data, &mut pool, &CosineModel::new(), &cands, &bayes_cfg);
        assert!(
            stats.hash_comparisons < bayes_stats.hash_comparisons,
            "SPRT {} vs Bayes {} hash comparisons",
            stats.hash_comparisons,
            bayes_stats.hash_comparisons
        );
        assert!(stats.hashes_per_accepted_pair() > 0.0);
    }

    #[test]
    fn sprt_jaccard_recall_and_empty_input() {
        let data = corpus(77).binarized();
        let t = 0.5;
        let cfg = SprtConfig::jaccard(t);
        let cands = all_pairs(data.len() as u32);
        let mut pool = IntSignatures::new(MinHasher::new(78), data.len());
        let (out, stats) = sprt_verify(&data, &mut pool, &cands, &cfg, |s| s, |f| f, jaccard);
        let gt = truth(&data, t, jaccard);
        assert!(gt.len() >= 30);
        let out_keys: std::collections::HashSet<(u32, u32)> =
            out.iter().map(|&(a, b, _)| (a, b)).collect();
        let found = gt
            .iter()
            .filter(|&&(a, b, _)| out_keys.contains(&(a, b)))
            .count();
        assert!(found as f64 / gt.len() as f64 >= 0.9);
        assert!(stats.pruned as f64 / stats.input_pairs as f64 > 0.8);

        let mut pool = IntSignatures::new(MinHasher::new(78), data.len());
        let (out, stats) = sprt_verify(&data, &mut pool, &[], &cfg, |s| s, |f| f, jaccard);
        assert!(out.is_empty());
        assert_eq!(stats.input_pairs, 0);
        assert_eq!(stats.hashes_per_accepted_pair(), 0.0);
    }

    #[test]
    fn survivors_curve_is_monotone_and_complete() {
        let data = corpus(67);
        let cfg = BayesLshConfig::cosine(0.7);
        let cands = all_pairs(data.len() as u32);
        let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 68), data.len());
        let (_, stats) = bayes_verify(&data, &mut pool, &CosineModel::new(), &cands, &cfg);
        let curve = stats.survivors_curve();
        assert_eq!(curve[0], (0, cands.len() as u64));
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1, "survivors must not increase: {curve:?}");
            assert_eq!(w[1].0, w[0].0 + cfg.k);
        }
        let last = curve.last().unwrap().1;
        assert_eq!(last, stats.input_pairs - stats.pruned);
    }

    #[test]
    fn deeper_pruning_budget_never_hurts_lite_recall_much() {
        // h = 32 prunes more aggressively than h = 128 on uncertain pairs?
        // No: a larger h can only prune MORE pairs (more chances to dip
        // below eps), but every pruned pair had Pr < eps at some depth, so
        // recall stays within the contract for both.
        let data = corpus(69);
        let t = 0.7;
        let cands = all_pairs(data.len() as u32);
        let gt = truth(&data, t, cosine);
        for h in [32u32, 128] {
            let cfg = LiteConfig {
                threshold: t,
                epsilon: 0.03,
                k: 32,
                h,
            };
            let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 70), data.len());
            let (out, _) =
                bayes_verify_lite(&data, &mut pool, &CosineModel::new(), &cands, &cfg, cosine);
            let out_keys: std::collections::HashSet<(u32, u32)> =
                out.iter().map(|&(a, b, _)| (a, b)).collect();
            let found = gt
                .iter()
                .filter(|&&(a, b, _)| out_keys.contains(&(a, b)))
                .count();
            assert!(
                found as f64 / gt.len() as f64 >= 0.9,
                "h={h}: recall {}",
                found as f64 / gt.len() as f64
            );
        }
    }

    #[test]
    fn stricter_epsilon_keeps_more_pairs() {
        let data = corpus(71);
        let cands = all_pairs(data.len() as u32);
        let mut kept = Vec::new();
        for eps in [0.2, 0.01] {
            let cfg = BayesLshConfig {
                epsilon: eps,
                ..BayesLshConfig::cosine(0.7)
            };
            let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 72), data.len());
            let (out, _) = bayes_verify(&data, &mut pool, &CosineModel::new(), &cands, &cfg);
            kept.push(out.len());
        }
        // Lower eps = harder to prune = at least as many survivors.
        assert!(
            kept[1] >= kept[0],
            "eps=0.01 kept {} < eps=0.2 kept {}",
            kept[1],
            kept[0]
        );
    }

    #[test]
    fn empty_candidate_list() {
        let data = corpus(73);
        let cfg = BayesLshConfig::cosine(0.7);
        let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 74), data.len());
        let (out, stats) = bayes_verify(&data, &mut pool, &CosineModel::new(), &[], &cfg);
        assert!(out.is_empty());
        assert_eq!(stats.input_pairs, 0);
        assert_eq!(stats.hash_comparisons, 0);
    }
}
