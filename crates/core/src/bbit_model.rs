//! BayesLSH posterior model for **b-bit minwise hashing** — an extension
//! beyond the paper, following its own recipe for new hash families
//! (Section 4: pick the family, pick a prior, make the inference
//! tractable).
//!
//! A b-bit minhash collides with probability `u = L + (1 − L)·J` where
//! `L = 2⁻ᵇ` (see `bayeslsh_lsh::bbit`). As with the cosine family, the
//! collision probability lives on a sub-interval `[L, 1]` of the unit
//! interval, so a Beta prior is not conjugate; we use the paper's move for
//! exactly this situation — a uniform prior on the collision similarity —
//! and the posterior over `u` is a doubly-truncated Beta:
//!
//! `p(u | M(m,n)) ∝ u^m (1−u)^{n−m}` on `[L, 1]`,
//!
//! with every query a ratio of regularized incomplete beta values and the
//! affine map `J = (u − L)/(1 − L)` carrying answers back to Jaccard space.

use bayeslsh_lsh::{bbit_collision_prob, bbit_to_jaccard};
use bayeslsh_numeric::reg_inc_beta;

use crate::posterior::PosteriorModel;

/// Posterior model over Jaccard similarity observed through `b`-bit
/// minwise hashes, with a uniform prior on the collision similarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BbitJaccardModel {
    b: u32,
}

impl BbitJaccardModel {
    /// Model for `b ∈ {1,2,4,8,16}` bits per hash.
    pub fn new(b: u32) -> Self {
        assert!(
            matches!(b, 1 | 2 | 4 | 8 | 16),
            "b must be one of 1,2,4,8,16 (got {b})"
        );
        Self { b }
    }

    /// Bits per hash.
    pub fn b(&self) -> u32 {
        self.b
    }

    /// The collision-probability floor `L = 2⁻ᵇ`.
    pub fn floor(&self) -> f64 {
        0.5f64.powi(self.b as i32)
    }

    /// Posterior mass of `u ∈ [lo, hi] ⊆ [L, 1]`.
    fn u_interval_prob(&self, m: u32, n: u32, lo: f64, hi: f64) -> f64 {
        let floor = self.floor();
        let a = m as f64 + 1.0;
        let b = (n - m) as f64 + 1.0;
        let lo = lo.clamp(floor, 1.0);
        let hi = hi.clamp(floor, 1.0);
        if hi <= lo {
            return 0.0;
        }
        let denom = 1.0 - reg_inc_beta(a, b, floor);
        if denom <= 0.0 {
            // All mass collapsed onto the floor: J ≈ 0.
            return if lo <= floor { 1.0 } else { 0.0 };
        }
        let num = reg_inc_beta(a, b, hi) - reg_inc_beta(a, b, lo);
        (num / denom).clamp(0.0, 1.0)
    }

    /// MAP estimate of the collision similarity `u`.
    pub fn map_u(&self, m: u32, n: u32) -> f64 {
        assert!(n > 0, "MAP estimate needs at least one observation");
        (m as f64 / n as f64).clamp(self.floor(), 1.0)
    }
}

impl PosteriorModel for BbitJaccardModel {
    fn prob_above_threshold(&self, m: u32, n: u32, t: f64) -> f64 {
        let ut = bbit_collision_prob(t, self.b);
        self.u_interval_prob(m, n, ut, 1.0)
    }

    fn map_estimate(&self, m: u32, n: u32) -> f64 {
        bbit_to_jaccard(self.map_u(m, n), self.b)
    }

    fn concentration(&self, m: u32, n: u32, delta: f64) -> f64 {
        let j_hat = self.map_estimate(m, n);
        let lo = bbit_collision_prob((j_hat - delta).max(0.0), self.b);
        let hi = bbit_collision_prob((j_hat + delta).min(1.0), self.b);
        self.u_interval_prob(m, n, lo, hi)
    }

    fn name(&self) -> &'static str {
        "bbit-jaccard-uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posterior::test_support::check_model_invariants;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn invariant_battery_all_b() {
        for b in [1u32, 2, 4, 8] {
            check_model_invariants(&BbitJaccardModel::new(b), 0.5);
            check_model_invariants(&BbitJaccardModel::new(b), 0.8);
        }
    }

    #[test]
    fn map_transforms_through_the_floor() {
        // b = 1: floor 0.5; agreement rate 0.75 → J = (0.75−0.5)/0.5 = 0.5.
        let m1 = BbitJaccardModel::new(1);
        assert_close(m1.map_estimate(24, 32), 0.5, 1e-12);
        // Agreement below the floor clamps to J = 0.
        assert_close(m1.map_estimate(10, 32), 0.0, 1e-12);
        // b = 16: the floor is negligible; J ≈ m/n.
        let m16 = BbitJaccardModel::new(16);
        assert_close(m16.map_estimate(24, 32), 0.75, 1e-3);
    }

    #[test]
    fn posterior_normalizes() {
        for b in [1u32, 4, 8] {
            let model = BbitJaccardModel::new(b);
            for &(m, n) in &[(24u32, 32u32), (100, 128), (4, 64)] {
                assert_close(model.u_interval_prob(m, n, model.floor(), 1.0), 1.0, 1e-9);
            }
        }
    }

    #[test]
    fn b1_agrees_with_numerical_integration() {
        // Direct trapezoid integration of u^m (1−u)^{n−m} on [0.5, 1].
        let model = BbitJaccardModel::new(1);
        let (m, n) = (50u32, 64u32);
        let t: f64 = 0.4;
        let ut = bbit_collision_prob(t, 1); // 0.7
        let pdf = |u: f64| (m as f64) * u.ln() + ((n - m) as f64) * (1.0 - u).ln();
        let integrate = |lo: f64, hi: f64| {
            let steps = 100_000;
            let h = (hi - lo) / steps as f64;
            (0..steps)
                .map(|i| {
                    let u0 = lo + i as f64 * h;
                    0.5 * (pdf(u0).exp() + pdf(u0 + h).exp()) * h
                })
                .sum::<f64>()
        };
        let expected = integrate(ut, 1.0 - 1e-12) / integrate(0.5, 1.0 - 1e-12);
        assert_close(model.prob_above_threshold(m, n, t), expected, 1e-5);
    }

    #[test]
    fn more_bits_concentrate_faster_per_hash() {
        // At the same hash budget, larger b wastes less signal on random
        // collisions, so the estimate concentrates at least as fast.
        let (m_rate, n) = (0.8f64, 256u32);
        let c1 = {
            let model = BbitJaccardModel::new(1);
            // Observed agreement rate at J=0.6 under b=1: 0.5+0.5·0.6 = 0.8.
            model.concentration((m_rate * n as f64) as u32, n, 0.05)
        };
        let c8 = {
            let model = BbitJaccardModel::new(8);
            // Same J=0.6 under b=8 collides at ≈ 0.6016.
            model.concentration((0.6016 * n as f64) as u32, n, 0.05)
        };
        assert!(
            c8 >= c1 - 0.02,
            "b=8 concentration {c8} should not trail b=1 {c1} materially"
        );
    }

    #[test]
    fn engine_integration_with_bbit_pool() {
        // Full loop: b-bit signatures + b-bit model through bayes_verify.
        use crate::config::BayesLshConfig;
        use crate::engine::bayes_verify;
        use bayeslsh_lsh::{BbitSignatures, MinHasher};
        use bayeslsh_numeric::Xoshiro256;
        use bayeslsh_sparse::{jaccard, Dataset, SparseVector};

        let mut rng = Xoshiro256::seed_from_u64(81);
        let mut data = Dataset::new(5000);
        for c in 0..12 {
            let base: Vec<u32> = (0..50)
                .map(|_| (c * 400 + rng.next_below(380) as usize) as u32)
                .collect();
            for _ in 0..5 {
                let toks: Vec<u32> = base
                    .iter()
                    .map(|&t| {
                        if rng.next_bool(0.15) {
                            rng.next_below(5000) as u32
                        } else {
                            t
                        }
                    })
                    .collect();
                data.push(SparseVector::from_indices(toks));
            }
        }
        let t = 0.5;
        let cands: Vec<(u32, u32)> = (0..data.len() as u32)
            .flat_map(|a| ((a + 1)..data.len() as u32).map(move |b| (a, b)))
            .collect();
        let mut pool = BbitSignatures::new(MinHasher::new(82), data.len(), 2);
        let cfg = BayesLshConfig {
            max_hashes: 1024,
            ..BayesLshConfig::jaccard(t)
        };
        let (out, stats) = bayes_verify(&data, &mut pool, &BbitJaccardModel::new(2), &cands, &cfg);
        assert_eq!(stats.pruned + stats.accepted, stats.input_pairs);

        // Recall against brute force.
        let mut truth = 0;
        let mut found = 0;
        let keys: std::collections::HashSet<(u32, u32)> =
            out.iter().map(|&(a, b, _)| (a, b)).collect();
        for a in 0..data.len() as u32 {
            for b in (a + 1)..data.len() as u32 {
                if jaccard(data.vector(a), data.vector(b)) >= t {
                    truth += 1;
                    if keys.contains(&(a, b)) {
                        found += 1;
                    }
                }
            }
        }
        assert!(truth >= 20, "need similar pairs, got {truth}");
        let recall = found as f64 / truth as f64;
        assert!(recall >= 0.88, "b-bit BayesLSH recall {recall}");
        // Estimates are reasonable.
        for &(a, b, s_hat) in out.iter().take(200) {
            let s = jaccard(data.vector(a), data.vector(b));
            assert!((s - s_hat).abs() < 0.25, "({a},{b}): {s_hat} vs {s}");
        }
    }
}
