//! Precomputed `minMatches(n)` tables (paper Section 4.3).
//!
//! For every hash count `n` the engine will visit (multiples of the chunk
//! size `k`), precompute the smallest match count `m` with
//! `Pr[S ≥ t | M(m, n)] ≥ ε` by binary search — the posterior tail is
//! monotone in `m`. At run time the pruning test on line 10 of Algorithm 1
//! becomes a single array lookup: prune iff `m < minMatches(n)`.

use std::sync::{Arc, Mutex};

use bayeslsh_candgen::fxhash::FxHashMap;

use crate::posterior::PosteriorModel;

/// A pruning threshold table for a fixed `(model, t, ε, k)`.
#[derive(Debug, Clone)]
pub struct MinMatchTable {
    k: u32,
    /// `table[c]` = minMatches((c+1)·k); the sentinel `n+1` means "no match
    /// count keeps the pair alive — always prune".
    table: Vec<u32>,
}

impl MinMatchTable {
    /// Build the table for chunk size `k` up to `max_hashes` (rounded up to
    /// a multiple of `k`).
    pub fn build<M: PosteriorModel>(
        model: &M,
        threshold: f64,
        epsilon: f64,
        k: u32,
        max_hashes: u32,
    ) -> Self {
        assert!(k >= 1);
        assert!(epsilon > 0.0 && epsilon < 1.0);
        let chunks = max_hashes.div_ceil(k);
        let mut table = Vec::with_capacity(chunks as usize);
        for c in 1..=chunks {
            let n = c * k;
            table.push(Self::search(model, threshold, epsilon, n));
        }
        Self { k, table }
    }

    /// Smallest `m` such that `Pr[S ≥ t | M(m, n)] ≥ ε`, or `n + 1` if no
    /// such `m` exists.
    fn search<M: PosteriorModel>(model: &M, t: f64, eps: f64, n: u32) -> u32 {
        if model.prob_above_threshold(n, n, t) < eps {
            return n + 1;
        }
        // Invariant: prob(lo) < eps <= prob(hi)  (conceptually lo = -1).
        let (mut lo, mut hi) = (0u32, n);
        if model.prob_above_threshold(0, n, t) >= eps {
            return 0;
        }
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if model.prob_above_threshold(mid, n, t) >= eps {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    /// The pruning threshold at `n` hashes (`n` must be a positive multiple
    /// of `k` within the precomputed range).
    #[inline]
    pub fn min_matches(&self, n: u32) -> u32 {
        debug_assert!(
            n >= self.k && n % self.k == 0,
            "n={n} not a chunk multiple of {}",
            self.k
        );
        self.table[(n / self.k - 1) as usize]
    }

    /// Should a pair with `m` matches at `n` hashes be pruned?
    #[inline]
    pub fn should_prune(&self, m: u32, n: u32) -> bool {
        m < self.min_matches(n)
    }

    /// Chunk size the table was built for.
    pub fn chunk(&self) -> u32 {
        self.k
    }

    /// Largest hash count covered.
    pub fn max_hashes(&self) -> u32 {
        self.table.len() as u32 * self.k
    }
}

/// A thread-safe memo of [`MinMatchTable`]s keyed by
/// `(threshold, ε, k, max_hashes)`.
///
/// The searcher's point-query paths previously shared one single-slot memo,
/// so query shapes that alternate (different thresholds, or the Bayes and
/// Lite hash budgets interleaved) evicted each other's tables on every
/// call — and a `&self` sharing of the slot across verification workers
/// would have raced. This map keeps every shape it has seen (up to
/// [`MinMatchCache::CAPACITY`]; at capacity the least-recently-used shape
/// is evicted, so a hot shape keeps memoizing however many cold ones
/// stream past), hands out cheap [`Arc`] clones, and is safe to consult
/// from any thread. The posterior *model* is intentionally not part of
/// the key: a cache belongs to one searcher, whose model is fixed by its
/// measure — callers mixing models must use separate caches.
#[derive(Debug, Default)]
pub struct MinMatchCache {
    map: Mutex<ShapeMap>,
}

/// `(threshold bits, ε bits, k, max_hashes)` — the full query shape.
type ShapeKey = (u64, u64, u32, u32);

/// Shared table plus its last-use tick for LRU eviction.
type ShapeEntry = (Arc<MinMatchTable>, u64);

/// Memo storage plus the LRU clock.
#[derive(Debug, Default, Clone)]
struct ShapeMap {
    entries: FxHashMap<ShapeKey, ShapeEntry>,
    /// Monotone access counter; every hit or insert stamps the entry.
    tick: u64,
}

impl MinMatchCache {
    /// Most query shapes memoized at once. A standing service uses a
    /// handful; a caller streaming never-repeating computed thresholds
    /// would otherwise grow the map for the searcher's lifetime.
    pub const CAPACITY: usize = 64;

    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The table for `(threshold, epsilon, k, max_hashes)`, building and
    /// memoizing it on first use; at [`MinMatchCache::CAPACITY`] shapes the
    /// least-recently-used one is evicted to make room, so hot shapes stay
    /// memoized no matter how many cold ones stream past. Concurrent first
    /// calls may build twice; the build is deterministic, so either result
    /// is the same table and the first insertion wins.
    pub fn get_or_build<M: PosteriorModel>(
        &self,
        model: &M,
        threshold: f64,
        epsilon: f64,
        k: u32,
        max_hashes: u32,
    ) -> Arc<MinMatchTable> {
        let key = (threshold.to_bits(), epsilon.to_bits(), k, max_hashes);
        {
            let mut map = self.map.lock().expect("minmatch cache poisoned");
            map.tick += 1;
            let tick = map.tick;
            if let Some((table, used)) = map.entries.get_mut(&key) {
                *used = tick;
                return Arc::clone(table);
            }
        }
        let table = Arc::new(MinMatchTable::build(
            model, threshold, epsilon, k, max_hashes,
        ));
        let mut map = self.map.lock().expect("minmatch cache poisoned");
        map.tick += 1;
        let tick = map.tick;
        if map.entries.len() >= Self::CAPACITY && !map.entries.contains_key(&key) {
            // Full: drop the coldest shape rather than refusing to memoize —
            // a standing service whose 65th shape is hot must not rebuild
            // its table on every call.
            if let Some(coldest) = map
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| *k)
            {
                map.entries.remove(&coldest);
            }
        }
        Arc::clone(
            &map.entries
                .entry(key)
                .and_modify(|(_, used)| *used = tick)
                .or_insert((table, tick))
                .0,
        )
    }

    /// Number of distinct query shapes memoized.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .expect("minmatch cache poisoned")
            .entries
            .len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Clone for MinMatchCache {
    fn clone(&self) -> Self {
        Self {
            map: Mutex::new(self.map.lock().expect("minmatch cache poisoned").clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosine_model::CosineModel;
    use crate::jaccard_model::JaccardModel;

    #[test]
    fn table_matches_direct_search_jaccard() {
        let model = JaccardModel::uniform();
        let (t, eps, k) = (0.7, 0.03, 32);
        let table = MinMatchTable::build(&model, t, eps, k, 256);
        for c in 1..=8u32 {
            let n = c * k;
            let mm = table.min_matches(n);
            // Verify the defining property by brute force.
            if mm > 0 {
                assert!(
                    model.prob_above_threshold(mm - 1, n, t) < eps,
                    "n={n}: m={} should be pruned",
                    mm - 1
                );
            }
            if mm <= n {
                assert!(
                    model.prob_above_threshold(mm, n, t) >= eps,
                    "n={n}: m={mm} should survive"
                );
            }
        }
    }

    #[test]
    fn table_matches_direct_search_cosine() {
        let model = CosineModel::new();
        let (t, eps, k) = (0.7, 0.03, 32);
        let table = MinMatchTable::build(&model, t, eps, k, 512);
        for c in [1u32, 2, 4, 8, 16] {
            let n = c * k;
            let mm = table.min_matches(n);
            if mm > 0 && mm <= n {
                assert!(model.prob_above_threshold(mm - 1, n, t) < eps);
                assert!(model.prob_above_threshold(mm, n, t) >= eps);
            }
        }
    }

    #[test]
    fn thresholds_grow_roughly_linearly_with_n() {
        let model = JaccardModel::uniform();
        let table = MinMatchTable::build(&model, 0.6, 0.03, 32, 320);
        let m32 = table.min_matches(32);
        let m320 = table.min_matches(320);
        // The required agreement *rate* approaches t as evidence grows.
        assert!(m320 as f64 / 320.0 > m32 as f64 / 32.0);
        assert!(m320 as f64 / 320.0 < 0.6);
    }

    #[test]
    fn stricter_epsilon_prunes_more_aggressively() {
        let model = JaccardModel::uniform();
        let strict = MinMatchTable::build(&model, 0.7, 0.20, 32, 128);
        let lax = MinMatchTable::build(&model, 0.7, 0.001, 32, 128);
        for n in [32u32, 64, 96, 128] {
            assert!(
                strict.min_matches(n) >= lax.min_matches(n),
                "n={n}: strict {} < lax {}",
                strict.min_matches(n),
                lax.min_matches(n)
            );
        }
    }

    #[test]
    fn should_prune_agrees_with_threshold() {
        let model = CosineModel::new();
        let table = MinMatchTable::build(&model, 0.8, 0.03, 32, 64);
        let mm = table.min_matches(32);
        assert!(table.should_prune(mm.saturating_sub(1), 32) || mm == 0);
        assert!(!table.should_prune(mm, 32) || mm > 32);
        assert_eq!(table.chunk(), 32);
        assert_eq!(table.max_hashes(), 64);
    }

    #[test]
    fn cache_keeps_alternating_shapes_and_answers_consistently() {
        let model = CosineModel::new();
        let cache = MinMatchCache::new();
        // Alternate two shapes repeatedly — the single-slot design this
        // replaces would rebuild on every call and (shared mutably) could
        // hand one shape the other's table.
        for _ in 0..3 {
            for &(t, h) in &[(0.7f64, 2048u32), (0.5, 128)] {
                let got = cache.get_or_build(&model, t, 0.03, 32, h);
                let fresh = MinMatchTable::build(&model, t, 0.03, 32, h);
                assert_eq!(got.max_hashes(), fresh.max_hashes());
                for n in (32..=h).step_by(32) {
                    assert_eq!(got.min_matches(n), fresh.min_matches(n), "t={t} n={n}");
                }
            }
        }
        assert_eq!(cache.len(), 2, "both shapes must stay memoized");
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let model = JaccardModel::uniform();
        let cache = MinMatchCache::new();
        let tables = bayeslsh_numeric::fan_out(8, 4, |_, range| {
            range
                .map(|i| {
                    let t = 0.5 + 0.05 * (i % 2) as f64;
                    cache.get_or_build(&model, t, 0.03, 32, 128).min_matches(64)
                })
                .collect::<Vec<_>>()
        });
        let flat: Vec<u32> = tables.into_iter().flatten().collect();
        for (i, &got) in flat.iter().enumerate() {
            let t = 0.5 + 0.05 * (i % 2) as f64;
            let fresh = MinMatchTable::build(&model, t, 0.03, 32, 128);
            assert_eq!(got, fresh.min_matches(64), "slot {i}");
        }
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn hot_shape_keeps_memoizing_past_capacity() {
        let model = JaccardModel::uniform();
        let cache = MinMatchCache::new();
        let hot = cache.get_or_build(&model, 0.7, 0.03, 4, 8);
        // Stream 3× CAPACITY cold shapes, touching the hot one between each
        // so it is never the LRU victim. The pre-fix cache refused to
        // memoize anything once full, so the hot shape's Arc would stop
        // being returned; the LRU cache must keep handing back the same
        // allocation throughout.
        for i in 0..(3 * MinMatchCache::CAPACITY) {
            let t = 0.50 + 1e-6 * i as f64; // distinct shape per iteration
            cache.get_or_build(&model, t, 0.03, 4, 8);
            let again = cache.get_or_build(&model, 0.7, 0.03, 4, 8);
            assert!(
                Arc::ptr_eq(&hot, &again),
                "hot shape rebuilt after {} cold inserts",
                i + 1
            );
            assert!(
                cache.len() <= MinMatchCache::CAPACITY,
                "cache grew unboundedly"
            );
        }
        assert_eq!(cache.len(), MinMatchCache::CAPACITY, "cache should be full");
        // And a brand-new shape still gets memoized (evicting a cold one).
        let fresh = cache.get_or_build(&model, 0.9, 0.03, 4, 8);
        let fresh2 = cache.get_or_build(&model, 0.9, 0.03, 4, 8);
        assert!(
            Arc::ptr_eq(&fresh, &fresh2),
            "new shape must memoize at capacity"
        );
        assert_eq!(cache.len(), MinMatchCache::CAPACITY);
    }

    #[test]
    fn impossible_threshold_always_prunes() {
        // With a tiny n and a very high threshold + strict epsilon, even
        // all-matches may not clear the bar; the sentinel must exceed n.
        let model = JaccardModel::uniform();
        let table = MinMatchTable::build(&model, 0.999, 0.9999, 4, 8);
        assert!(table.min_matches(4) > 4);
        assert!(table.should_prune(4, 4));
    }
}
