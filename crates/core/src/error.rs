//! Typed errors for the fallible search API.
//!
//! The legacy [`crate::pipeline::run_algorithm`] shim keeps its historical
//! panics for compatibility; every entry point of the builder-based API
//! ([`crate::searcher::SearcherBuilder`], [`crate::searcher::Searcher`],
//! [`crate::compose::run_composition`]) reports failures through
//! [`SearchError`] instead.

/// A structured expected-vs-found discrepancy in one configuration field.
///
/// Shared by the config-mismatch variants of every error type in the
/// workspace — [`SearchError::InvalidConfig`] here,
/// `SnapshotError::ConfigMismatch` in [`crate::persist`], and the shard
/// manifest's `ShardError::ConfigFingerprint` — so callers can diagnose
/// snapshot/manifest incompatibility programmatically instead of parsing
/// message strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigDiff {
    /// Name of the mismatched configuration field.
    pub field: &'static str,
    /// The value the consumer expected (rendered with `Display`).
    pub expected: String,
    /// The value actually found.
    pub found: String,
}

impl ConfigDiff {
    /// Shorthand constructor rendering both sides with `Display`.
    pub fn new(
        field: &'static str,
        expected: impl std::fmt::Display,
        found: impl std::fmt::Display,
    ) -> Self {
        ConfigDiff {
            field,
            expected: expected.to_string(),
            found: found.to_string(),
        }
    }
}

impl std::fmt::Display for ConfigDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: expected {}, found {}",
            self.field, self.expected, self.found
        )
    }
}

/// Why a search operation could not be performed.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// A configuration parameter is out of range. `param` names the
    /// offending field; `message` says what was expected. When the failure
    /// is an expected-vs-found comparison (rather than a range violation),
    /// `diff` carries the structured [`ConfigDiff`].
    InvalidConfig {
        /// The offending configuration field.
        param: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
        /// Structured payload for comparison-style failures.
        diff: Option<ConfigDiff>,
    },
    /// The requested composition needs binary vectors (Jaccard measure, or
    /// the PPJoin+ generator) but the corpus contains weighted ones.
    NonBinaryData {
        /// Name of the component that requires binary vectors.
        requires: &'static str,
    },
    /// A vector's feature indices exceed the dimensionality the searcher's
    /// hash family was built for (signed random projections hold one plane
    /// component per dimension, so the space cannot grow after build).
    DimensionExceeded {
        /// Dimensionality the searcher was built with.
        dim: u32,
        /// Dimensionality the offending vector requires.
        needed: u32,
    },
}

impl SearchError {
    /// Shorthand constructor for configuration errors.
    pub fn invalid(param: &'static str, message: impl Into<String>) -> Self {
        SearchError::InvalidConfig {
            param,
            message: message.into(),
            diff: None,
        }
    }

    /// Shorthand constructor for expected-vs-found configuration errors;
    /// the message is rendered from the diff.
    pub fn mismatch(diff: ConfigDiff) -> Self {
        SearchError::InvalidConfig {
            param: diff.field,
            message: format!("expected {}, found {}", diff.expected, diff.found),
            diff: Some(diff),
        }
    }
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::InvalidConfig { param, message, .. } => {
                write!(f, "invalid config: {param}: {message}")
            }
            SearchError::NonBinaryData { requires } => {
                write!(
                    f,
                    "{requires} requires binary vectors; call Dataset::binarized() first"
                )
            }
            SearchError::DimensionExceeded { dim, needed } => {
                write!(
                    f,
                    "vector needs dimensionality {needed} but the searcher was built for {dim}"
                )
            }
        }
    }
}

impl std::error::Error for SearchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = SearchError::invalid("epsilon", "must lie in (0, 1), got 2");
        assert_eq!(
            e.to_string(),
            "invalid config: epsilon: must lie in (0, 1), got 2"
        );
        let e = SearchError::NonBinaryData {
            requires: "PPJoin+",
        };
        assert!(e.to_string().contains("requires binary vectors"));
        let e = SearchError::DimensionExceeded {
            dim: 10,
            needed: 42,
        };
        assert!(e.to_string().contains("42"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn is_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&SearchError::invalid("k", "must be positive"));
    }

    #[test]
    fn mismatch_carries_structured_diff() {
        let e = SearchError::mismatch(ConfigDiff::new("family", "cosine", "jaccard"));
        assert_eq!(
            e.to_string(),
            "invalid config: family: expected cosine, found jaccard"
        );
        match e {
            SearchError::InvalidConfig { diff: Some(d), .. } => {
                assert_eq!(d.field, "family");
                assert_eq!(d.expected, "cosine");
                assert_eq!(d.found, "jaccard");
                assert_eq!(d.to_string(), "family: expected cosine, found jaccard");
            }
            other => panic!("expected a diff-carrying InvalidConfig, got {other:?}"),
        }
        // Range-style errors carry no diff.
        assert!(matches!(
            SearchError::invalid("k", "must be positive"),
            SearchError::InvalidConfig { diff: None, .. }
        ));
    }
}
