//! Output-quality metrics: recall (paper Table 3) and similarity-estimate
//! error statistics (Tables 4 and 5).

use bayeslsh_candgen::fxhash::FxHashSet;
use bayeslsh_lsh::Measure;
use bayeslsh_sparse::Dataset;

/// Fraction of ground-truth pairs present in `output` (1.0 for an empty
/// truth set). Pair orientation is ignored.
pub fn recall_against(truth: &[(u32, u32, f64)], output: &[(u32, u32, f64)]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let keys: FxHashSet<(u32, u32)> = output
        .iter()
        .map(|&(a, b, _)| if a < b { (a, b) } else { (b, a) })
        .collect();
    let found = truth
        .iter()
        .filter(|&&(a, b, _)| keys.contains(&if a < b { (a, b) } else { (b, a) }))
        .count();
    found as f64 / truth.len() as f64
}

/// Error statistics of similarity estimates against exact recomputation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Number of estimates examined.
    pub n: usize,
    /// Mean absolute error.
    pub mean_abs: f64,
    /// Maximum absolute error.
    pub max_abs: f64,
    /// Fraction of estimates with error above `err_threshold` (the paper
    /// reports this at 0.05).
    pub frac_above: f64,
    /// The error threshold used for `frac_above`.
    pub err_threshold: f64,
}

/// Compare each emitted estimate with the exact similarity of its pair.
pub fn estimate_errors(
    output: &[(u32, u32, f64)],
    data: &Dataset,
    measure: Measure,
    err_threshold: f64,
) -> ErrorStats {
    let mut mean = 0.0f64;
    let mut max = 0.0f64;
    let mut above = 0usize;
    for &(a, b, s_hat) in output {
        let s = measure.eval(data.vector(a), data.vector(b));
        let err = (s - s_hat).abs();
        mean += err;
        if err > max {
            max = err;
        }
        if err > err_threshold {
            above += 1;
        }
    }
    let n = output.len();
    ErrorStats {
        n,
        mean_abs: if n == 0 { 0.0 } else { mean / n as f64 },
        max_abs: max,
        frac_above: if n == 0 { 0.0 } else { above as f64 / n as f64 },
        err_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_sparse::SparseVector;

    #[test]
    fn recall_counts_matching_pairs_orientation_free() {
        let truth = vec![(0, 1, 0.9), (2, 3, 0.8), (4, 5, 0.7), (6, 7, 0.95)];
        let output = vec![(1, 0, 0.88), (3, 2, 0.81), (9, 10, 0.99)];
        assert!((recall_against(&truth, &output) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recall_edge_cases() {
        assert_eq!(recall_against(&[], &[(0, 1, 0.5)]), 1.0);
        assert_eq!(recall_against(&[(0, 1, 0.5)], &[]), 0.0);
        assert_eq!(recall_against(&[(0, 1, 0.5)], &[(0, 1, 0.4)]), 1.0);
    }

    #[test]
    fn error_stats_hand_computed() {
        let mut data = Dataset::new(10);
        let v1 = SparseVector::from_indices(vec![0, 1, 2, 3]);
        data.push(v1.clone());
        data.push(v1); // jaccard(0,1) = 1.0
        data.push(SparseVector::from_indices(vec![0, 1]));
        data.push(SparseVector::from_indices(vec![0, 1, 2, 4])); // j(2,3) = 0.5? → {0,1} ∩ {0,1,2,4} = 2, union 4 → 0.5

        let output = vec![(0, 1, 0.98), (2, 3, 0.40)];
        let stats = estimate_errors(&output, &data, Measure::Jaccard, 0.05);
        assert_eq!(stats.n, 2);
        // errors: 0.02 and 0.10.
        assert!((stats.mean_abs - 0.06).abs() < 1e-12);
        assert!((stats.max_abs - 0.10).abs() < 1e-12);
        assert!((stats.frac_above - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_output_is_all_zero() {
        let data = Dataset::new(4);
        let stats = estimate_errors(&[], &data, Measure::Cosine, 0.05);
        assert_eq!(stats.n, 0);
        assert_eq!(stats.mean_abs, 0.0);
        assert_eq!(stats.frac_above, 0.0);
    }
}
