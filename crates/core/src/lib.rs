//! BayesLSH and BayesLSH-Lite: Bayesian candidate pruning and similarity
//! estimation for all-pairs similarity search.
//!
//! This crate implements the primary contribution of *Satuluri &
//! Parthasarathy, "Bayesian Locality Sensitive Hashing for Fast Similarity
//! Search", VLDB 2012*:
//!
//! * [`posterior`] — the inference interface: given that `m` of the first
//!   `n` hashes of a candidate pair matched, compute the pruning
//!   probability `Pr[S ≥ t | M(m,n)]` (paper Eq. 3), the MAP similarity
//!   estimate (Eq. 4) and its concentration probability (Eq. 6).
//! * [`jaccard_model`] / [`cosine_model`] — the paper's two instantiations:
//!   a conjugate Beta prior for Jaccard (Section 4.1, including the
//!   method-of-moments prior fit) and a uniform-on-`[0.5, 1]` prior over
//!   the collision similarity `r` for cosine (Section 4.2).
//! * [`minmatch`] / [`cache`] — the Section 4.3 optimizations: precomputed
//!   `minMatches(n)` tables and an `(m, n)`-indexed concentration cache.
//! * [`engine`] — Algorithms 1 (BayesLSH) and 2 (BayesLSH-Lite), generic
//!   over the hash family and prior, with the pruning statistics behind the
//!   paper's Figure 4.
//! * [`estimator`] — the classical fixed-`n` maximum-likelihood estimator
//!   ("LSH Approx", Section 3), the baseline BayesLSH is measured against.
//! * [`compose`] — the composable layer: [`compose::CandidateGenerator`] ×
//!   [`compose::Verifier`] trait objects whose grid the paper's eight
//!   algorithms are named points of.
//! * [`searcher`] — the build-once/query-many API: a [`Searcher`] hashes
//!   and indexes a corpus once, then serves batch joins, threshold point
//!   queries, Bayesian-pruned top-k, and incremental inserts.
//! * [`persist`] — versioned binary index snapshots:
//!   [`Searcher::save`]/[`Searcher::load`] make the built searcher a
//!   durable artifact (the loaded searcher is bit-identical in behaviour),
//!   with [`SnapshotHeader`] probing and typed [`SnapshotError`]s.
//! * [`pipeline`] — the eight named [`Algorithm`]s and the legacy one-shot
//!   [`run_algorithm`] shim over the composable layer.
//! * [`metrics`] — recall and estimation-error reports (Tables 3–5).
//!
//! Extensions beyond the paper (built per its own Section 4 recipe):
//!
//! * [`bbit_model`] — BayesLSH over **b-bit minwise hashes** (Li & König,
//!   the paper's reference \[15\]): a truncated posterior over the collision
//!   probability `u = 2⁻ᵇ + (1 − 2⁻ᵇ)·J`.
//! * [`knn`] — the paper's future-work item: **k-NN retrieval** where the
//!   current k-th best similarity acts as a rising pruning threshold and
//!   survivors are verified exactly.
//! * [`sprt`] — an **adaptive SPRT verifier** (Wald sequential hypothesis
//!   tests over the same agreement streams, after Chakrabarti &
//!   Parthasarathy): per-chunk early-accept/early-prune integer boundaries
//!   replace the fixed concentration schedule, with a bounded exact
//!   fallback at the hash cap.

//! ## Parallelism & determinism
//!
//! Every pipeline stage — signature hashing, banding-index construction,
//! candidate generation, and verification — can fan out across worker
//! threads ([`parallel`], built on `std::thread::scope`). The knob is
//! [`pipeline::PipelineConfig::parallelism`] /
//! [`searcher::SearcherBuilder::parallelism`]; `Parallelism::Auto` (the
//! default) resolves to the `BAYESLSH_THREADS` environment variable or the
//! available cores, and `Parallelism::serial()` is the exact serial path.
//! Whatever the thread count, batch and query output is **bit-identical to
//! serial**: work is split into deterministic contiguous chunks, every
//! worker computes a pure function of its chunk, and results merge in
//! canonical order (`tests/parallel_equivalence.rs` pins this down for
//! every named composition, the paper's eight plus the SPRT verifier). The
//! only observable deltas are wall-clock time,
//! per-worker concentration-cache hit/miss splits, and — under
//! [`searcher::HashMode::Lazy`] — candidate signatures being pre-extended
//! to the verifier's scan depth before a parallel verification.

pub mod bbit_model;
pub mod cache;
pub mod compose;
pub mod config;
pub mod cosine_model;
pub mod engine;
pub mod error;
pub mod estimator;
pub mod family_model;
pub mod jaccard_model;
pub mod knn;
pub mod metrics;
pub mod minmatch;
pub mod parallel;
pub mod persist;
pub mod pipeline;
pub mod posterior;
pub mod searcher;
pub mod serving;
pub mod sprt;

pub use bayeslsh_lsh::{FamilyConfig, HashFamily, Measure};
pub use bayeslsh_numeric::Parallelism;
pub use bbit_model::BbitJaccardModel;
pub use cache::ConcentrationCache;
pub use compose::{
    run_composition, CandidateGenerator, Composition, CompositionOutput, GeneratorKind,
    SearchContext, SigPool, Verifier, VerifierKind,
};
pub use config::{BayesLshConfig, LiteConfig, SprtConfig};
pub use cosine_model::CosineModel;
pub use engine::{bayes_verify, bayes_verify_lite, sprt_verify, EngineStats};
pub use error::{ConfigDiff, SearchError};
pub use estimator::mle_verify;
pub use family_model::FamilyModel;
pub use jaccard_model::JaccardModel;
pub use knn::{KnnIndex, KnnParams, KnnStats};
pub use metrics::{estimate_errors, recall_against, ErrorStats};
pub use minmatch::{MinMatchCache, MinMatchTable};
pub use parallel::{
    candidate_ids, par_bayes_verify, par_bayes_verify_lite, par_exact_verify, par_mle_verify,
    par_sprt_verify,
};
pub use persist::{SnapshotError, SnapshotHeader, SNAPSHOT_FORMAT_VERSION, SNAPSHOT_MAGIC};
pub use pipeline::{run_algorithm, Algorithm, PipelineConfig, PriorChoice, RunOutput};
pub use posterior::PosteriorModel;
pub use searcher::{
    merge_query_outputs, CandidateScan, HashMode, QueryOutput, QueryStats, Searcher,
    SearcherBuilder, TopKOutput,
};
pub use serving::{Epoch, ServingSearcher};
pub use sprt::SprtTable;
