//! Persistent index snapshots: versioned save/load for the [`Searcher`].
//!
//! The paper's pipeline is build-once/verify-many, but without persistence
//! every process restart re-hashes the corpus and re-buckets the banding
//! index. This module makes the built searcher a durable artifact:
//! [`Searcher::save`] writes a versioned, endianness-explicit,
//! length-prefixed, checksummed binary snapshot of everything construction
//! paid for — the validated [`PipelineConfig`] (with its hash-family
//! seeds), the signature pool, the banding index, and the corpus — and
//! [`Searcher::load`] reconstructs a searcher whose every operation
//! (`all_pairs`, `query`, `top_k`, and `insert`-then-query) is
//! **bit-identical** to the searcher it was saved from, at any thread
//! count.
//!
//! # Format (version 1)
//!
//! ```text
//! magic            8 bytes  "BAYESLSH"
//! format_version   u32 LE
//! header           measure, generator, verifier, hash-mode tags (u8 each),
//!                  threads u32, sig_depth u32, n_vectors u64, dim u32,
//!                  total_hashes u64
//! sections         id u16 + byte-length u64 + payload, in fixed order:
//!                    1 config   pipeline parameters (seeds included)
//!                    2 corpus   the sparse vectors, weights bit-exact
//!                    3 pool     per-object signature words/minhashes
//!                    4 index    ascending id list + per-band key streams
//! checksum         u64 LE, FNV-1a over every preceding byte
//! ```
//!
//! All integers and float bit-patterns are little-endian
//! ([`bayeslsh_numeric::wire`]). Two deliberate economies keep snapshots
//! corpus-sized: hash-function banks (SRP hyperplanes, minhash permutation
//! keys) are *re-derived* from their stored seeds at load — they are pure
//! functions, so the rebuilt banks are bit-identical and `insert()` after
//! load hashes exactly as before — and the banding index's bucket maps are
//! *replayed* from per-band id-ordered key streams, reproducing the saved
//! maps' iteration order (and therefore downstream candidate order; see
//! [`bayeslsh_candgen::BandingIndex::write_wire`]).
//!
//! # Versioning policy
//!
//! Any change to the byte layout bumps [`SNAPSHOT_FORMAT_VERSION`];
//! [`Searcher::load`] rejects other versions with
//! [`SnapshotError::UnsupportedVersion`] rather than guessing. The
//! committed golden fixture (`tests/fixtures/snapshot_v1.bin`) holds the
//! CI line: a layout change that forgets the bump fails the
//! `snapshot-compat` job.
//!
//! # Failure modes
//!
//! [`Searcher::load`] never panics on untrusted input: wrong magic is
//! [`SnapshotError::BadMagic`], unknown versions are
//! [`SnapshotError::UnsupportedVersion`], truncation/bit-rot is
//! [`SnapshotError::Corrupt`] (every byte is checksummed, so silent
//! mis-loads are off the table), and internally inconsistent but
//! well-formed content — a Jaccard header over a cosine pool, banding
//! parameters that disagree with the config's plan — is
//! [`SnapshotError::ConfigMismatch`].
//!
//! Loading is also resource-bounded against *crafted* (checksum-valid but
//! adversarial) input: every variable-length read is bounded by the bytes
//! physically present in the stream, and hash-bank regeneration is clamped
//! to what the snapshot's own signatures and its config-revalidated build
//! depth justify — a bare count in the payload can never size an
//! allocation or a compute loop on its own. Memory and CPU at load are
//! therefore bounded by what a *legitimate* build of the declared
//! corpus/config would itself use.

use std::io::{Read, Write};

use bayeslsh_candgen::BandingIndex;
use bayeslsh_lsh::{
    BitSignatures, FamilyConfig, IntSignatures, Measure, ProjSignatures, SignaturePool,
};
use bayeslsh_numeric::wire::{WireError, WireReader, WireWriter};
use bayeslsh_numeric::Parallelism;
use bayeslsh_sparse::Dataset;

use crate::compose::{Composition, GeneratorKind, SigPool, VerifierKind};
use crate::error::ConfigDiff;
use crate::pipeline::{PipelineConfig, PriorChoice};
use crate::searcher::{HashMode, Searcher, SearcherParts};

/// The 8-byte snapshot magic.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"BAYESLSH";

/// The snapshot format version this build writes and reads.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

const SECTION_CONFIG: u16 = 1;
const SECTION_CORPUS: u16 = 2;
const SECTION_POOL: u16 = 3;
const SECTION_INDEX: u16 = 4;

/// Why a snapshot could not be loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// The input does not start with [`SNAPSHOT_MAGIC`] — not a snapshot.
    BadMagic,
    /// The snapshot declares a format version this build does not read.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// A section is truncated, fails the checksum, or decodes to
    /// structurally invalid content.
    Corrupt {
        /// Which part of the snapshot was corrupt.
        section: &'static str,
        /// What was wrong.
        detail: String,
    },
    /// Sections are individually well-formed but disagree with each other
    /// (e.g. the header's measure versus the pool's hash family).
    ConfigMismatch {
        /// What disagreed.
        detail: String,
        /// The structured expected-versus-found view of the disagreement,
        /// when it concerns a single nameable field (shared shape with
        /// `SearchError::InvalidConfig` and the shard manifest errors).
        diff: Option<ConfigDiff>,
    },
    /// The underlying reader/writer failed for a non-truncation reason.
    Io(std::io::Error),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a BayesLSH snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads \
                 {SNAPSHOT_FORMAT_VERSION})"
            ),
            SnapshotError::Corrupt { section, detail } => {
                write!(f, "corrupt snapshot ({section}): {detail}")
            }
            SnapshotError::ConfigMismatch { detail, .. } => {
                write!(f, "snapshot sections disagree: {detail}")
            }
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Attribute a wire-level failure to a snapshot section.
fn in_section<T>(section: &'static str, r: Result<T, WireError>) -> Result<T, SnapshotError> {
    r.map_err(|e| match e {
        WireError::Io(e) => SnapshotError::Io(e),
        WireError::Truncated => SnapshotError::Corrupt {
            section,
            detail: "truncated".into(),
        },
        WireError::Corrupt { detail } => SnapshotError::Corrupt { section, detail },
    })
}

fn corrupt(section: &'static str, detail: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt {
        section,
        detail: detail.into(),
    }
}

fn mismatch(detail: impl Into<String>) -> SnapshotError {
    SnapshotError::ConfigMismatch {
        detail: detail.into(),
        diff: None,
    }
}

fn mismatch_diff(diff: ConfigDiff) -> SnapshotError {
    SnapshotError::ConfigMismatch {
        detail: diff.to_string(),
        diff: Some(diff),
    }
}

/// The probe-able snapshot header: everything needed to decide whether (and
/// how) to load a snapshot, readable without touching the bulk payload.
///
/// [`SnapshotHeader::read`] consumes only the fixed-size prefix, so probing
/// a multi-gigabyte snapshot costs a few dozen bytes of I/O. Note the
/// header is *not* checksum-verified on its own — only a full
/// [`Searcher::load`] proves integrity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotHeader {
    /// Format version the snapshot was written with.
    pub format_version: u32,
    /// Similarity measure the searcher was built for.
    pub measure: Measure,
    /// The composition (candidate generator × verifier) it runs.
    pub composition: Composition,
    /// When corpus signatures are hashed.
    pub hash_mode: HashMode,
    /// Worker-thread budget resolved at build time.
    pub threads: u32,
    /// Depth every indexed vector is hashed to at build/insert time.
    pub sig_depth: u32,
    /// Number of corpus vectors.
    pub n_vectors: u64,
    /// Feature-space dimensionality.
    pub dim: u32,
    /// Total corpus hashes the snapshot carries (the rebuild cost a load
    /// avoids).
    pub total_hashes: u64,
}

impl SnapshotHeader {
    /// Probe a snapshot's header. Fails with [`SnapshotError::BadMagic`] /
    /// [`SnapshotError::UnsupportedVersion`] / [`SnapshotError::Corrupt`]
    /// exactly as [`Searcher::load`] would, but reads only the fixed-size
    /// prefix.
    pub fn read<R: Read>(r: R) -> Result<Self, SnapshotError> {
        let mut r = WireReader::new(r);
        read_header(&mut r)
    }
}

fn measure_tag(m: Measure) -> u8 {
    match m {
        Measure::Cosine => 0,
        Measure::Jaccard => 1,
        Measure::L2 => 2,
        Measure::Mips => 3,
    }
}

fn generator_tag(g: GeneratorKind) -> u8 {
    match g {
        GeneratorKind::AllPairs => 0,
        GeneratorKind::LshBanding => 1,
        GeneratorKind::PpjoinPlus => 2,
    }
}

fn verifier_tag(v: VerifierKind) -> u8 {
    match v {
        VerifierKind::Exact => 0,
        VerifierKind::Mle => 1,
        VerifierKind::Bayes => 2,
        VerifierKind::BayesLite => 3,
        VerifierKind::Sprt => 4,
    }
}

fn read_header<R: Read>(r: &mut WireReader<R>) -> Result<SnapshotHeader, SnapshotError> {
    const S: &str = "header";
    let mut magic = [0u8; 8];
    match r.get_bytes(&mut magic) {
        Ok(()) => {}
        Err(WireError::Truncated) => return Err(SnapshotError::BadMagic),
        Err(e) => return in_section(S, Err(e)),
    }
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let format_version = in_section(S, r.get_u32())?;
    if format_version != SNAPSHOT_FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: format_version,
        });
    }
    let measure = match in_section(S, r.get_u8())? {
        0 => Measure::Cosine,
        1 => Measure::Jaccard,
        2 => Measure::L2,
        3 => Measure::Mips,
        other => return Err(corrupt(S, format!("unknown measure tag {other}"))),
    };
    let generator = match in_section(S, r.get_u8())? {
        0 => GeneratorKind::AllPairs,
        1 => GeneratorKind::LshBanding,
        2 => GeneratorKind::PpjoinPlus,
        other => return Err(corrupt(S, format!("unknown generator tag {other}"))),
    };
    let verifier = match in_section(S, r.get_u8())? {
        0 => VerifierKind::Exact,
        1 => VerifierKind::Mle,
        2 => VerifierKind::Bayes,
        3 => VerifierKind::BayesLite,
        4 => VerifierKind::Sprt,
        other => return Err(corrupt(S, format!("unknown verifier tag {other}"))),
    };
    let hash_mode = match in_section(S, r.get_u8())? {
        0 => HashMode::Eager,
        1 => HashMode::Lazy,
        other => return Err(corrupt(S, format!("unknown hash-mode tag {other}"))),
    };
    let threads = in_section(S, r.get_u32())?;
    if threads == 0 {
        return Err(corrupt(S, "zero thread budget"));
    }
    let sig_depth = in_section(S, r.get_u32())?;
    let n_vectors = in_section(S, r.get_u64())?;
    let dim = in_section(S, r.get_u32())?;
    let total_hashes = in_section(S, r.get_u64())?;
    Ok(SnapshotHeader {
        format_version,
        measure,
        composition: Composition::new(generator, verifier),
        hash_mode,
        threads,
        sig_depth,
        n_vectors,
        dim,
        total_hashes,
    })
}

/// Stage a section payload, then write it length-prefixed through the
/// checksumming outer writer.
fn write_section<W: Write>(
    w: &mut WireWriter<W>,
    id: u16,
    build: impl FnOnce(&mut WireWriter<Vec<u8>>) -> Result<(), WireError>,
) -> Result<(), WireError> {
    let mut staging = WireWriter::new(Vec::new());
    build(&mut staging)?;
    let payload = staging.into_inner();
    w.put_u16(id)?;
    w.put_u64(payload.len() as u64)?;
    w.put_bytes(&payload)
}

/// Read one length-prefixed section, enforcing the fixed section order.
fn read_section<R: Read>(
    r: &mut WireReader<R>,
    want: u16,
    name: &'static str,
) -> Result<Vec<u8>, SnapshotError> {
    let id = in_section(name, r.get_u16())?;
    if id != want {
        return Err(corrupt(
            name,
            format!("expected section id {want}, found {id}"),
        ));
    }
    let len = in_section(name, r.get_u64())?;
    in_section(name, r.get_byte_vec(len))
}

/// Parse a buffered section payload, requiring it to be consumed exactly.
fn parse_section<T>(
    name: &'static str,
    payload: &[u8],
    f: impl FnOnce(&mut WireReader<&[u8]>) -> Result<T, WireError>,
) -> Result<T, SnapshotError> {
    let mut r = WireReader::new(payload);
    let v = in_section(name, f(&mut r))?;
    if r.bytes_read() != payload.len() as u64 {
        return Err(corrupt(
            name,
            format!(
                "{} trailing bytes after payload",
                payload.len() as u64 - r.bytes_read()
            ),
        ));
    }
    Ok(v)
}

fn write_config<W: Write>(w: &mut WireWriter<W>, cfg: &PipelineConfig) -> Result<(), WireError> {
    w.put_f64(cfg.threshold)?;
    w.put_u64(cfg.seed)?;
    w.put_f64(cfg.epsilon)?;
    w.put_f64(cfg.delta)?;
    w.put_f64(cfg.gamma)?;
    w.put_u32(cfg.k)?;
    w.put_u32(cfg.max_hashes)?;
    w.put_u32(cfg.lite_h)?;
    w.put_u32(cfg.approx_hashes)?;
    w.put_u32(cfg.band_width)?;
    w.put_f64(cfg.lsh_fnr)?;
    w.put_u8(match cfg.prior {
        PriorChoice::Uniform => 0,
        PriorChoice::Fitted => 1,
    })?;
    w.put_u64(cfg.prior_sample as u64)?;
    // Trailing fields, appended after the original v1 layout. Readers take
    // them only when bytes remain in the section, so snapshots written
    // before these fields existed (the committed golden fixtures) still
    // parse: they default to single-probe and the measure's default family.
    w.put_u64(cfg.probes as u64)?;
    if let Some(r) = cfg.family.l2_width() {
        w.put_f64(r)?;
    }
    Ok(())
}

fn read_config<R: Read>(
    r: &mut WireReader<R>,
    measure: Measure,
    threads: usize,
    section_len: u64,
) -> Result<PipelineConfig, WireError> {
    let threshold = r.get_f64()?;
    let seed = r.get_u64()?;
    let epsilon = r.get_f64()?;
    let delta = r.get_f64()?;
    let gamma = r.get_f64()?;
    let k = r.get_u32()?;
    let max_hashes = r.get_u32()?;
    let lite_h = r.get_u32()?;
    let approx_hashes = r.get_u32()?;
    let band_width = r.get_u32()?;
    let lsh_fnr = r.get_f64()?;
    let prior = match r.get_u8()? {
        0 => PriorChoice::Uniform,
        1 => PriorChoice::Fitted,
        other => return Err(WireError::corrupt(format!("unknown prior tag {other}"))),
    };
    let prior_sample = r.get_u64()?;
    if prior_sample > usize::MAX as u64 {
        return Err(WireError::corrupt("prior sample size out of range"));
    }
    let probes = if r.bytes_read() < section_len {
        let p = r.get_u64()?;
        if p == 0 || p > usize::MAX as u64 {
            return Err(WireError::corrupt(format!("probe count {p} out of range")));
        }
        p as usize
    } else {
        1
    };
    let family = match measure {
        Measure::L2 => {
            if r.bytes_read() >= section_len {
                return Err(WireError::corrupt("L2 config is missing its bucket width"));
            }
            FamilyConfig::L2 { r: r.get_f64()? }
        }
        other => FamilyConfig::for_measure(other),
    };
    Ok(PipelineConfig {
        family,
        probes,
        threshold,
        seed,
        epsilon,
        delta,
        gamma,
        k,
        max_hashes,
        lite_h,
        approx_hashes,
        band_width,
        lsh_fnr,
        prior,
        prior_sample: prior_sample as usize,
        parallelism: Parallelism::threads(threads.min(u32::MAX as usize) as u32),
    })
}

impl Searcher {
    /// Write a versioned binary snapshot of this searcher (see the
    /// [module docs](crate::persist) for the format). A subsequent
    /// [`Searcher::load`] reconstructs a searcher whose batch, query,
    /// top-k, and insert-then-query behaviour is bit-identical to this one.
    ///
    /// The writer is used as-is — wrap files in
    /// [`std::io::BufWriter`] for throughput.
    ///
    /// # Errors
    ///
    /// [`std::io::ErrorKind::InvalidInput`] when the searcher carries
    /// pending tombstones (call [`Searcher::compact`] first — the v1
    /// format has no tombstone notion, and compaction folds removals into
    /// the snapshot-stable empty-vector representation); otherwise only
    /// transport failures, as every serialization step is infallible for
    /// a well-formed searcher.
    pub fn save<W: Write>(&self, w: W) -> std::io::Result<()> {
        if self.pending_removals() > 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "snapshot with {} pending removals: call compact() before save()",
                    self.pending_removals()
                ),
            ));
        }
        let mut w = WireWriter::new(w);
        self.write_snapshot(&mut w)
            .and_then(|()| w.finish().map(|_| ()))
            .map_err(|e| match e {
                WireError::Io(e) => e,
                other => std::io::Error::other(other.to_string()),
            })
    }

    fn write_snapshot<W: Write>(&self, w: &mut WireWriter<W>) -> Result<(), WireError> {
        w.put_bytes(&SNAPSHOT_MAGIC)?;
        w.put_u32(SNAPSHOT_FORMAT_VERSION)?;
        let cfg = self.config();
        w.put_u8(measure_tag(cfg.family.measure()))?;
        w.put_u8(generator_tag(self.composition().generator))?;
        w.put_u8(verifier_tag(self.composition().verifier))?;
        w.put_u8(match self.hash_mode() {
            HashMode::Eager => 0,
            HashMode::Lazy => 1,
        })?;
        w.put_u32(self.threads().min(u32::MAX as usize) as u32)?;
        w.put_u32(self.sig_depth())?;
        w.put_u64(self.data().len() as u64)?;
        w.put_u32(self.data().dim())?;
        w.put_u64(self.hash_count())?;
        write_section(w, SECTION_CONFIG, |s| write_config(s, cfg))?;
        write_section(w, SECTION_CORPUS, |s| self.data().write_wire(s))?;
        write_section(w, SECTION_POOL, |s| match &*self.pool() {
            SigPool::Bits(p) => {
                s.put_u8(0)?;
                p.write_wire(s)
            }
            SigPool::Ints(p) => {
                s.put_u8(1)?;
                p.write_wire(s)
            }
            SigPool::Projs(p) => {
                s.put_u8(2)?;
                p.write_wire(s)
            }
        })?;
        write_section(w, SECTION_INDEX, |s| self.index().write_wire(s))
    }

    /// Load a snapshot written by [`Searcher::save`], restoring the saved
    /// thread budget. See [`Searcher::load_with_parallelism`] to re-resolve
    /// the budget for the loading host (output is bit-identical either
    /// way).
    ///
    /// The whole stream is checksum-verified before any content is
    /// interpreted, and every section is cross-validated against the
    /// header and the recomputed banding plan — corrupt or inconsistent
    /// input yields a typed [`SnapshotError`], never a panic or a
    /// silently wrong searcher.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`].
    pub fn load<R: Read>(r: R) -> Result<Searcher, SnapshotError> {
        Self::load_impl(r, None)
    }

    /// [`Searcher::load`] with the worker-thread budget re-resolved from
    /// `parallelism` instead of the snapshot's saved budget — e.g. load a
    /// snapshot built single-threaded onto a many-core serving host. The
    /// searcher's results are bit-identical whatever the budget (the
    /// workspace-wide parallel-equals-serial guarantee).
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`].
    pub fn load_with_parallelism<R: Read>(
        r: R,
        parallelism: Parallelism,
    ) -> Result<Searcher, SnapshotError> {
        Self::load_impl(r, Some(parallelism))
    }

    fn load_impl<R: Read>(
        r: R,
        parallelism: Option<Parallelism>,
    ) -> Result<Searcher, SnapshotError> {
        let mut r = WireReader::new(r);
        let header = read_header(&mut r)?;
        let threads = parallelism.map_or(header.threads as usize, |p| p.resolve());

        // Buffer every section, then verify the stream checksum BEFORE
        // interpreting any content: a flipped byte is reported as corruption
        // up front instead of surfacing as a confusing parse error (or not
        // at all).
        let config_bytes = read_section(&mut r, SECTION_CONFIG, "config")?;
        let corpus_bytes = read_section(&mut r, SECTION_CORPUS, "corpus")?;
        let pool_bytes = read_section(&mut r, SECTION_POOL, "pool")?;
        let index_bytes = read_section(&mut r, SECTION_INDEX, "index")?;
        in_section("checksum", r.verify_checksum())?;

        let cfg = parse_section("config", &config_bytes, |s| {
            read_config(s, header.measure, threads, config_bytes.len() as u64)
        })?;
        cfg.validate()
            .map_err(|e| corrupt("config", e.to_string()))?;
        // Recompute the build depth exactly as `SearcherBuilder::build`
        // would and require the header to agree — this both rejects
        // inconsistent snapshots and turns `sig_depth` into a *validated*
        // bound the pool deserializers may use to clamp hash-bank
        // regeneration (a bare header integer must not size anything).
        let expected_depth = {
            let banding = cfg.banding_plan().params.total_hashes();
            match header.hash_mode {
                HashMode::Eager => banding.max(header.composition.verifier.signature_depth(&cfg)),
                HashMode::Lazy => banding,
            }
        };
        if header.sig_depth != expected_depth {
            return Err(mismatch_diff(ConfigDiff::new(
                "sig_depth",
                expected_depth,
                header.sig_depth,
            )));
        }
        // The closure is not redundant: the bare fn item fixes one
        // concrete reader lifetime and fails the higher-ranked bound.
        #[allow(clippy::redundant_closure)]
        let data = parse_section("corpus", &corpus_bytes, |s| Dataset::read_wire(s))?;
        let pool = parse_section("pool", &pool_bytes, |s| {
            Ok(match s.get_u8()? {
                0 => SigPool::Bits(BitSignatures::read_wire(s, threads, header.sig_depth)?),
                1 => SigPool::Ints(IntSignatures::read_wire(s, header.sig_depth)?),
                2 => SigPool::Projs(ProjSignatures::read_wire(s, threads, header.sig_depth)?),
                other => {
                    return Err(WireError::corrupt(format!("unknown pool tag {other}")));
                }
            })
        })?;
        let id_bound = data.len().min(u32::MAX as usize) as u32;
        let index = parse_section("index", &index_bytes, |s| {
            BandingIndex::read_wire(s, id_bound, threads)
        })?;

        Self::cross_validate(&header, &cfg, &data, &pool, &index)?;
        Ok(Searcher::from_parts(SearcherParts {
            data,
            cfg,
            composition: header.composition,
            mode: header.hash_mode,
            threads,
            sig_depth: header.sig_depth,
            pool,
            index,
        }))
    }

    /// The cross-section consistency checks: sections that parsed cleanly
    /// must also agree with the header and with the banding plan the
    /// loaded config recomputes.
    fn cross_validate(
        header: &SnapshotHeader,
        cfg: &PipelineConfig,
        data: &Dataset,
        pool: &SigPool,
        index: &BandingIndex,
    ) -> Result<(), SnapshotError> {
        if data.len() as u64 != header.n_vectors || data.dim() != header.dim {
            return Err(mismatch(format!(
                "header says {} vectors over dim {}, corpus has {} over {}",
                header.n_vectors,
                header.dim,
                data.len(),
                data.dim()
            )));
        }
        let (pool_objects, pool_name) = match pool {
            SigPool::Bits(p) => (p.n_objects(), "srp-bits"),
            SigPool::Ints(p) => (p.n_objects(), "minhash-ints"),
            SigPool::Projs(p) => (p.n_objects(), "e2lsh-projs"),
        };
        let expected_pool = match header.measure {
            Measure::Cosine | Measure::Mips => "srp-bits",
            Measure::Jaccard => "minhash-ints",
            Measure::L2 => "e2lsh-projs",
        };
        if pool_name != expected_pool {
            return Err(mismatch_diff(ConfigDiff::new(
                "pool",
                expected_pool,
                pool_name,
            )));
        }
        if pool_objects != data.len() {
            return Err(mismatch(format!(
                "pool holds {pool_objects} objects, corpus {}",
                data.len()
            )));
        }
        if pool.total_hashes() != header.total_hashes {
            return Err(mismatch(format!(
                "header accounts {} hashes, pool {}",
                header.total_hashes,
                pool.total_hashes()
            )));
        }
        let hasher_dim = match pool {
            SigPool::Bits(p) => Some(p.hasher().dim()),
            SigPool::Projs(p) => Some(p.hasher().dim()),
            SigPool::Ints(_) => None,
        };
        if let Some(hasher_dim) = hasher_dim {
            if hasher_dim != data.dim() {
                return Err(mismatch(format!(
                    "hasher dim {hasher_dim} versus corpus dim {}",
                    data.dim()
                )));
            }
        }
        if let SigPool::Projs(p) = pool {
            let cfg_r = cfg.family.l2_width().unwrap_or(f64::NAN);
            if p.hasher().r().to_bits() != cfg_r.to_bits() {
                return Err(mismatch_diff(ConfigDiff::new(
                    "family.r",
                    cfg_r,
                    p.hasher().r(),
                )));
            }
        }
        let plan = cfg.banding_plan();
        if index.params() != plan.params {
            return Err(mismatch(format!(
                "index banding {:?} versus the config's plan {:?}",
                index.params(),
                plan.params
            )));
        }
        let non_empty = data.vectors().iter().filter(|v| !v.is_empty()).count();
        if index.len() != non_empty {
            return Err(mismatch(format!(
                "index holds {} ids, corpus has {non_empty} non-empty vectors",
                index.len()
            )));
        }
        for (id, v) in data.iter() {
            if !v.is_empty() && pool.len(id) < plan.params.total_hashes() {
                return Err(corrupt(
                    "pool",
                    format!(
                        "vector {id} hashed to {} of the banding depth {}",
                        pool.len(id),
                        plan.params.total_hashes()
                    ),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Algorithm;
    use bayeslsh_numeric::Xoshiro256;
    use bayeslsh_sparse::SparseVector;

    fn corpus(seed: u64) -> Dataset {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut d = Dataset::new(600);
        for c in 0..4 {
            let center: Vec<(u32, f32)> = (0..18)
                .map(|_| {
                    (
                        (c * 140 + rng.next_below(130) as usize) as u32,
                        (rng.next_f64() + 0.3) as f32,
                    )
                })
                .collect();
            for _ in 0..5 {
                let mut pairs = center.clone();
                for p in pairs.iter_mut() {
                    if rng.next_bool(0.2) {
                        *p = (rng.next_below(600) as u32, (rng.next_f64() + 0.3) as f32);
                    }
                }
                d.push(SparseVector::from_pairs(pairs));
            }
        }
        d
    }

    fn snapshot_bytes() -> Vec<u8> {
        let s = Searcher::builder(PipelineConfig::cosine(0.7))
            .algorithm(Algorithm::LshBayesLshLite)
            .parallelism(Parallelism::serial())
            .build(corpus(77))
            .unwrap();
        let mut bytes = Vec::new();
        s.save(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn header_probe_matches_searcher_metadata() {
        let bytes = snapshot_bytes();
        let h = SnapshotHeader::read(&bytes[..]).unwrap();
        assert_eq!(h.format_version, SNAPSHOT_FORMAT_VERSION);
        assert_eq!(h.measure, Measure::Cosine);
        assert_eq!(h.composition, Algorithm::LshBayesLshLite.composition());
        assert_eq!(h.hash_mode, HashMode::Eager);
        assert_eq!(h.threads, 1);
        assert_eq!(h.n_vectors, 20);
        assert!(h.total_hashes > 0);
    }

    #[test]
    fn load_round_trips_and_preserves_metadata() {
        let bytes = snapshot_bytes();
        let loaded = Searcher::load(&bytes[..]).unwrap();
        assert_eq!(loaded.len(), 20);
        assert_eq!(loaded.threads(), 1);
        assert_eq!(
            loaded.composition(),
            Algorithm::LshBayesLshLite.composition()
        );
        // Thread-budget override re-resolves without touching results.
        let wide = Searcher::load_with_parallelism(&bytes[..], Parallelism::threads(4)).unwrap();
        assert_eq!(wide.threads(), 4);
        assert_eq!(wide.hash_count(), loaded.hash_count());
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let bytes = snapshot_bytes();
        let mut evil = bytes.clone();
        evil[0] ^= 0xFF;
        assert!(matches!(
            Searcher::load(&evil[..]),
            Err(SnapshotError::BadMagic)
        ));
        assert!(matches!(
            Searcher::load(&b"hello"[..]),
            Err(SnapshotError::BadMagic)
        ));
        let mut evil = bytes.clone();
        evil[8] = 99; // version LE low byte
        assert!(matches!(
            Searcher::load(&evil[..]),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn checksum_catches_payload_flips() {
        let bytes = snapshot_bytes();
        // Flip one byte deep inside the payload (past the header).
        let mut evil = bytes.clone();
        let at = bytes.len() / 2;
        evil[at] ^= 0x10;
        match Searcher::load(&evil[..]) {
            Err(SnapshotError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_corrupt_not_a_panic() {
        let bytes = snapshot_bytes();
        for cut in [0, 4, 12, 40, bytes.len() / 2, bytes.len() - 1] {
            let r = Searcher::load(&bytes[..cut]);
            assert!(
                matches!(
                    r,
                    Err(SnapshotError::Corrupt { .. }) | Err(SnapshotError::BadMagic)
                ),
                "cut at {cut}: {r:?}"
            );
        }
    }
}
