//! Online serving: concurrent readers over published epochs, one writer
//! batching live inserts and deletes.
//!
//! A [`Searcher`] answers `query`/`top_k` through `&self`, so any number of
//! threads can share one instance. What it cannot do alone is accept
//! writes *while* readers are in flight: `insert`/`remove`/`compact` take
//! `&mut self`. [`ServingSearcher`] closes that gap with the same
//! generation-swap pattern the shard router uses for hot reloads:
//!
//! * The live index is an [`Epoch`] — an immutable `Searcher` plus a pair
//!   of counters — behind `RwLock<Arc<Epoch>>`. Readers grab the `Arc`
//!   (one brief read-lock, no contention with other readers) and then
//!   query it for as long as they like; a published successor never
//!   invalidates an epoch a reader still holds.
//! * Writes go to a *staged* copy of the searcher, lazily cloned from the
//!   live epoch on the first write after a publish. [`ServingSearcher::publish`]
//!   swaps the staged copy in as the next epoch in one pointer swap.
//!
//! The contract readers rely on: every epoch is exactly the searcher
//! produced by applying some serial prefix of the write log to the initial
//! corpus, and [`Epoch::applied`] says which prefix. Queries against an
//! epoch are therefore bit-identical to a single-threaded run that stopped
//! after the same writes — the workspace `serving_stress` test pins this
//! down under many readers and a concurrent writer.
//!
//! Deletes follow the searcher's tombstone semantics: a `remove` hides the
//! vector from every query in the next epoch, and an explicit
//! [`ServingSearcher::compact`] (also staged, also published) rewrites the
//! banding index and signature pool so snapshots can be saved again.

use std::sync::{Arc, Mutex, RwLock};

use bayeslsh_sparse::SparseVector;

use crate::error::SearchError;
use crate::knn::KnnParams;
use crate::searcher::{QueryOutput, Searcher, TopKOutput};

/// One published, immutable generation of the index.
#[derive(Debug)]
pub struct Epoch {
    ordinal: u64,
    applied: u64,
    searcher: Searcher,
}

impl Epoch {
    /// Position in the publish sequence (the initial epoch is 0).
    pub fn ordinal(&self) -> u64 {
        self.ordinal
    }

    /// How many write operations (inserts, removes, compactions) from the
    /// serving write log this epoch has applied. Two epochs with equal
    /// `applied` are the same index state.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// The searcher for this epoch. All `&self` query paths are safe to
    /// call from any number of threads.
    pub fn searcher(&self) -> &Searcher {
        &self.searcher
    }
}

/// Writer-side state: the staged successor and the write-log position.
#[derive(Debug)]
struct WriterState {
    /// Clone of the live searcher carrying not-yet-published writes;
    /// `None` when nothing is staged (the common read-mostly state).
    staged: Option<Searcher>,
    /// Total write operations ever applied, including staged ones.
    applied: u64,
}

/// A concurrently readable, serially writable index front-end.
///
/// Cheap to share (`Arc<ServingSearcher>`); readers call
/// [`epoch`](Self::epoch) (or the [`query`](Self::query)/
/// [`top_k`](Self::top_k) conveniences) while one or more writer threads
/// funnel through [`insert`](Self::insert)/[`remove`](Self::remove)/
/// [`compact`](Self::compact) and batch them into epochs with
/// [`publish`](Self::publish).
#[derive(Debug)]
pub struct ServingSearcher {
    current: RwLock<Arc<Epoch>>,
    writer: Mutex<WriterState>,
}

impl ServingSearcher {
    /// Wrap a built searcher as epoch 0.
    pub fn new(searcher: Searcher) -> Self {
        Self {
            current: RwLock::new(Arc::new(Epoch {
                ordinal: 0,
                applied: 0,
                searcher,
            })),
            writer: Mutex::new(WriterState {
                staged: None,
                applied: 0,
            }),
        }
    }

    /// The live epoch. Holding the returned `Arc` keeps that generation
    /// alive (and bit-stable) across any number of subsequent publishes.
    pub fn epoch(&self) -> Arc<Epoch> {
        Arc::clone(&self.current.read().expect("epoch lock poisoned"))
    }

    /// Stage an insert; visible to readers after the next [`publish`].
    ///
    /// Returns the id the vector will occupy once published. Ids are
    /// assigned in staging order, so they are stable across the publish.
    ///
    /// [`publish`]: Self::publish
    ///
    /// # Errors
    ///
    /// Propagates [`Searcher::insert`] validation errors; the staged state
    /// is unchanged when an error is returned.
    pub fn insert(&self, v: SparseVector) -> Result<u32, SearchError> {
        let mut w = self.writer.lock().expect("writer lock poisoned");
        let id = self.staged_mut(&mut w).insert(v)?;
        w.applied += 1;
        Ok(id)
    }

    /// Stage a remove; the vector vanishes from queries at the next
    /// [`publish`](Self::publish). Returns `Ok(false)` when `id` was
    /// already removed (not counted as a write).
    ///
    /// # Errors
    ///
    /// Propagates [`Searcher::remove`] errors (unknown id).
    pub fn remove(&self, id: u32) -> Result<bool, SearchError> {
        let mut w = self.writer.lock().expect("writer lock poisoned");
        let removed = self.staged_mut(&mut w).remove(id)?;
        if removed {
            w.applied += 1;
        }
        Ok(removed)
    }

    /// Stage a compaction pass (see [`Searcher::compact`]): clears
    /// tombstoned vectors and rewrites the banding index. Counted as one
    /// write operation when any tombstone was reclaimed.
    pub fn compact(&self) -> usize {
        let mut w = self.writer.lock().expect("writer lock poisoned");
        let reclaimed = self.staged_mut(&mut w).compact();
        if reclaimed > 0 {
            w.applied += 1;
        }
        reclaimed
    }

    /// Number of staged writes not yet visible to readers.
    pub fn pending_writes(&self) -> u64 {
        let w = self.writer.lock().expect("writer lock poisoned");
        w.applied - self.epoch().applied()
    }

    /// Publish all staged writes as the next epoch and return it. With
    /// nothing staged this is a no-op returning the live epoch.
    pub fn publish(&self) -> Arc<Epoch> {
        let mut w = self.writer.lock().expect("writer lock poisoned");
        let Some(staged) = w.staged.take() else {
            return self.epoch();
        };
        let mut current = self.current.write().expect("epoch lock poisoned");
        let next = Arc::new(Epoch {
            ordinal: current.ordinal + 1,
            applied: w.applied,
            searcher: staged,
        });
        *current = Arc::clone(&next);
        next
    }

    /// Threshold query against the live epoch (one epoch snapshot per
    /// call; batch via [`epoch`](Self::epoch) to pin a generation).
    ///
    /// # Errors
    ///
    /// Propagates [`Searcher::query`] validation errors.
    pub fn query(&self, q: &SparseVector, threshold: f64) -> Result<QueryOutput, SearchError> {
        self.epoch().searcher().query(q, threshold)
    }

    /// Top-k query against the live epoch.
    ///
    /// # Errors
    ///
    /// Propagates [`Searcher::top_k`] validation errors.
    pub fn top_k(
        &self,
        q: &SparseVector,
        k: usize,
        params: &KnnParams,
    ) -> Result<TopKOutput, SearchError> {
        self.epoch().searcher().top_k(q, k, params)
    }

    /// The staged searcher, cloning it from the live epoch on the first
    /// write after a publish.
    fn staged_mut<'a>(&self, w: &'a mut WriterState) -> &'a mut Searcher {
        w.staged
            .get_or_insert_with(|| self.epoch().searcher().clone())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicBool, Ordering};

    use bayeslsh_sparse::Dataset;

    use super::*;
    use crate::compose::{Composition, GeneratorKind, VerifierKind};
    use crate::pipeline::PipelineConfig;
    use crate::searcher::Searcher;
    use bayeslsh_numeric::{Parallelism, Xoshiro256};

    fn corpus(seed: u64) -> Dataset {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut d = Dataset::new(400);
        for _ in 0..24 {
            let pairs: Vec<(u32, f32)> = (0..12)
                .map(|_| (rng.next_below(400) as u32, (rng.next_f64() + 0.3) as f32))
                .collect();
            d.push(SparseVector::from_pairs(pairs));
        }
        d
    }

    fn serving(seed: u64) -> ServingSearcher {
        let searcher = Searcher::builder(PipelineConfig::cosine(0.3))
            .composition(Composition {
                generator: GeneratorKind::LshBanding,
                verifier: VerifierKind::Exact,
            })
            .parallelism(Parallelism::serial())
            .build(corpus(seed))
            .expect("build");
        ServingSearcher::new(searcher)
    }

    #[test]
    fn writes_are_invisible_until_publish() {
        let s = serving(7);
        let before = s.epoch();
        let v = corpus(99).vector(0).clone();
        let id = s.insert(v.clone()).expect("insert");
        assert_eq!(id as usize, before.searcher().len());
        assert_eq!(s.pending_writes(), 1);
        // The live epoch is untouched: same Arc, same corpus size.
        let live = s.epoch();
        assert!(Arc::ptr_eq(&before, &live));
        assert_eq!(live.searcher().len(), before.searcher().len());

        let published = s.publish();
        assert_eq!(published.ordinal(), 1);
        assert_eq!(published.applied(), 1);
        assert_eq!(published.searcher().len(), before.searcher().len() + 1);
        assert_eq!(s.pending_writes(), 0);
        // The old epoch snapshot is still alive and unchanged.
        assert_eq!(before.searcher().len() + 1, published.searcher().len());
        // The inserted vector now matches itself.
        let out = published.searcher().query(&v, 0.9).expect("query");
        assert!(out.neighbors.iter().any(|&(got, _)| got == id));
    }

    #[test]
    fn remove_hides_vector_in_next_epoch_and_compact_publishes() {
        let s = serving(11);
        let victim = s.epoch().searcher().data().vector(3).clone();
        let before = s.epoch().searcher().query(&victim, 0.99).expect("query");
        assert!(before.neighbors.iter().any(|&(id, _)| id == 3));

        assert!(s.remove(3).expect("remove"));
        assert!(!s.remove(3).expect("second remove is a no-op"));
        let epoch = s.publish();
        let after = epoch.searcher().query(&victim, 0.99).expect("query");
        assert!(after.neighbors.iter().all(|&(id, _)| id != 3));
        assert_eq!(epoch.searcher().pending_removals(), 1);

        assert_eq!(s.compact(), 1);
        assert_eq!(s.compact(), 0, "second compact finds nothing");
        let compacted = s.publish();
        assert_eq!(compacted.searcher().pending_removals(), 0);
        let gone = compacted.searcher().query(&victim, 0.99).expect("query");
        assert!(gone.neighbors.iter().all(|&(id, _)| id != 3));
    }

    #[test]
    fn publish_without_writes_is_a_noop() {
        let s = serving(3);
        let e0 = s.epoch();
        let e1 = s.publish();
        assert!(Arc::ptr_eq(&e0, &e1));
        assert_eq!(e1.ordinal(), 0);
    }

    #[test]
    fn readers_see_consistent_epochs_under_concurrent_writes() {
        let s = Arc::new(serving(5));
        let stop = Arc::new(AtomicBool::new(false));
        let probe = corpus(5).vector(1).clone();
        let baseline = s.query(&probe, 0.2).expect("query").neighbors;

        std::thread::scope(|scope| {
            let mut readers = Vec::new();
            for _ in 0..4 {
                let s = Arc::clone(&s);
                let stop = Arc::clone(&stop);
                let probe = probe.clone();
                readers.push(scope.spawn(move || {
                    let mut observed = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let epoch = s.epoch();
                        let out = epoch.searcher().query(&probe, 0.2).expect("query");
                        observed.push((epoch.applied(), out.neighbors));
                    }
                    observed
                }));
            }

            // Writer: grow the corpus by batches of fresh vectors.
            let extra: Vec<SparseVector> = corpus(123).vectors().to_vec();
            for (batch, chunk) in extra.chunks(4).enumerate() {
                for v in chunk {
                    s.insert(v.clone()).expect("insert");
                }
                let epoch = s.publish();
                assert_eq!(epoch.ordinal(), batch as u64 + 1);
            }
            stop.store(true, Ordering::Relaxed);

            // Every observation at applied=0 must equal the pre-write
            // baseline; inserts only ever add neighbors, monotonically in
            // the write log.
            for handle in readers {
                for (applied, neighbors) in handle.join().expect("reader") {
                    if applied == 0 {
                        assert_eq!(neighbors, baseline, "epoch 0 must match serial baseline");
                    } else {
                        assert!(
                            neighbors.len() >= baseline.len(),
                            "inserts cannot shrink a threshold result"
                        );
                    }
                }
            }
        });
    }
}
