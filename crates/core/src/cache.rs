//! The `(m, n)`-indexed concentration cache (paper Section 4.3).
//!
//! Whether the similarity estimate after `M(m, n)` is sufficiently
//! concentrated depends only on `(m, n)` — not on the pair — so the result
//! of the (comparatively expensive) incomplete-beta evaluation is memoized.
//! The paper notes only `m ≥ minMatches(n)` ever reaches this check, which
//! keeps the cache small.

use bayeslsh_candgen::fxhash::FxHashMap;

use crate::posterior::PosteriorModel;

/// Memoized concentration checks for a fixed `(model, δ, γ)`.
#[derive(Debug, Clone)]
pub struct ConcentrationCache {
    delta: f64,
    gamma: f64,
    map: FxHashMap<(u32, u32), bool>,
    hits: u64,
    misses: u64,
}

impl ConcentrationCache {
    /// A cache for accuracy parameters `(δ, γ)`.
    pub fn new(delta: f64, gamma: f64) -> Self {
        assert!(delta > 0.0 && delta < 1.0);
        assert!(gamma > 0.0 && gamma < 1.0);
        Self {
            delta,
            gamma,
            map: FxHashMap::default(),
            hits: 0,
            misses: 0,
        }
    }

    /// Is the MAP estimate after `M(m, n)` concentrated, i.e.
    /// `Pr[|S − Ŝ| < δ | M(m, n)] ≥ 1 − γ`?
    pub fn is_concentrated<M: PosteriorModel>(&mut self, model: &M, m: u32, n: u32) -> bool {
        if let Some(&v) = self.map.get(&(m, n)) {
            self.hits += 1;
            return v;
        }
        self.misses += 1;
        let v = model.concentration(m, n, self.delta) >= 1.0 - self.gamma;
        self.map.insert((m, n), v);
        v
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of distinct `(m, n)` entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jaccard_model::JaccardModel;

    #[test]
    fn caches_and_counts() {
        let model = JaccardModel::uniform();
        let mut cache = ConcentrationCache::new(0.05, 0.03);
        let first = cache.is_concentrated(&model, 24, 32);
        assert_eq!(cache.stats(), (0, 1));
        let second = cache.is_concentrated(&model, 24, 32);
        assert_eq!(first, second);
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cached_answer_matches_direct_computation() {
        let model = JaccardModel::uniform();
        let mut cache = ConcentrationCache::new(0.05, 0.03);
        for &(m, n) in &[(24u32, 32u32), (300, 320), (1500, 2048), (31, 32)] {
            let direct = model.concentration(m, n, 0.05) >= 0.97;
            assert_eq!(cache.is_concentrated(&model, m, n), direct, "({m},{n})");
        }
    }

    #[test]
    fn extreme_rates_concentrate_early() {
        // All-matches posteriors concentrate much faster than mid-rate
        // ones: Beta(n+1, 1) needs 1 − t^(n+1) ≥ 1 − γ with t = Ŝ − δ = 0.95,
        // i.e. n ≈ 69 hashes — versus several hundred at a 50% match rate
        // (the Figure 1 story, posterior edition).
        let model = JaccardModel::uniform();
        let mut cache = ConcentrationCache::new(0.05, 0.03);
        assert!(!cache.is_concentrated(&model, 32, 32));
        assert!(cache.is_concentrated(&model, 96, 96));
        assert!(!cache.is_concentrated(&model, 48, 96));
        assert!(cache.is_concentrated(&model, 1024, 2048));
    }
}
