//! Parallel verification drivers: the candidate-pair fan-out the paper's
//! embarrassing parallelism invites.
//!
//! Every driver mirrors its serial engine exactly — same pruning table,
//! same run-major batched agreement counting, same accept/prune decisions —
//! but partitions
//! the candidate list into contiguous chunks ([`bayeslsh_numeric::fan_out`])
//! and merges the per-chunk outputs in chunk order. Because candidate lists
//! are deterministic and every pair's verdict is a pure function of the
//! (read-only) signature pool, the merged output is **bit-identical to the
//! serial engines** whatever the thread count. The one observable
//! difference is bookkeeping the paper treats as advisory: each worker
//! keeps its own [`ConcentrationCache`], so cache hit/miss counts depend on
//! the partition (decisions do not — the cache memoizes a pure function).
//!
//! Unlike the lazily-extending serial engines, these drivers take the pool
//! by shared reference and **require every candidate signature to be
//! extended to the scan depth already** (use
//! [`crate::compose::SigPool::par_ensure_ids`] or the pool-specific
//! `par_ensure_ids`). Under the `Searcher`'s default eager hashing that
//! pre-extension is a no-op; under lazy hashing it trades some up-front
//! hashing for wall-clock parallelism. The pre-extension itself runs
//! through the feature-major / element-major hash kernels with one scratch
//! buffer per worker, so the whole parallel verification path — hashing
//! included — performs no per-pair heap allocation in steady state.

use bayeslsh_lsh::{Measure, SignaturePool};
use bayeslsh_numeric::fan_out;
use bayeslsh_sparse::{Dataset, SparseVector};

use crate::cache::ConcentrationCache;
use crate::config::{BayesLshConfig, LiteConfig, SprtConfig};
use crate::engine::{run_end, EngineStats, RunScan, RunVerdict};
use crate::minmatch::MinMatchTable;
use crate::posterior::PosteriorModel;
use crate::sprt::SprtTable;

/// The distinct object ids appearing in `candidates`, in first-encounter
/// order — the id set a parallel verification must pre-hash. `n_objects`
/// bounds the id space (ids must be `< n_objects`).
pub fn candidate_ids(candidates: &[(u32, u32)], n_objects: usize) -> Vec<u32> {
    let mut seen = vec![false; n_objects];
    let mut ids = Vec::new();
    for &(a, b) in candidates {
        if !seen[a as usize] {
            seen[a as usize] = true;
            ids.push(a);
        }
        if !seen[b as usize] {
            seen[b as usize] = true;
            ids.push(b);
        }
    }
    ids
}

/// Parallel exact verification: candidate chunks fan out, each pair gets a
/// true similarity computation, survivors merge in candidate order —
/// identical to the serial exact verifier.
pub fn par_exact_verify(
    data: &Dataset,
    measure: Measure,
    threshold: f64,
    candidates: &[(u32, u32)],
    threads: usize,
) -> Vec<(u32, u32, f64)> {
    fan_out(candidates.len(), threads, |_, range| {
        candidates[range]
            .iter()
            .filter_map(|&(a, b)| {
                let s = measure.eval(data.vector(a), data.vector(b));
                (s >= threshold).then_some((a, b, s))
            })
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Parallel fixed-`n` MLE verification (the "LSH Approx" baseline).
/// Signatures must already cover `n_hashes`; output and comparison count
/// are identical to [`crate::estimator::mle_verify`].
pub fn par_mle_verify<P>(
    pool: &P,
    candidates: &[(u32, u32)],
    n_hashes: u32,
    threshold: f64,
    transform: impl Fn(f64) -> f64 + Sync,
    threads: usize,
) -> (Vec<(u32, u32, f64)>, u64)
where
    P: SignaturePool + Sync,
{
    assert!(n_hashes > 0);
    let transform = &transform;
    let pairs: Vec<(u32, u32, f64)> = fan_out(candidates.len(), threads, |_, range| {
        let slice = &candidates[range];
        let mut out = Vec::new();
        let mut ids = Vec::new();
        let mut counts = Vec::new();
        let mut i = 0usize;
        while i < slice.len() {
            // One batched sweep counts the run's probe against every
            // partner over the full fixed depth.
            let j = run_end(slice, i);
            let run = &slice[i..j];
            let a = run[0].0;
            ids.clear();
            ids.extend(run.iter().map(|&(_, b)| b));
            pool.agreements_batched(a, &ids, 0, n_hashes, &mut counts);
            for (&(_, b), &m) in run.iter().zip(&counts) {
                let s_hat = transform(m as f64 / n_hashes as f64);
                if s_hat >= threshold {
                    out.push((a, b, s_hat));
                }
            }
            i = j;
        }
        out
    })
    .into_iter()
    .flatten()
    .collect();
    (pairs, candidates.len() as u64 * n_hashes as u64)
}

/// Parallel BayesLSH (Algorithm 1). Signatures must already cover the scan
/// depth `(cfg.max_hashes / cfg.k).max(1) * cfg.k`; pairs, estimates and
/// every counter except the per-worker cache hit/miss split are identical
/// to [`crate::engine::bayes_verify`].
pub fn par_bayes_verify<P, M>(
    pool: &P,
    model: &M,
    candidates: &[(u32, u32)],
    cfg: &BayesLshConfig,
    threads: usize,
) -> (Vec<(u32, u32, f64)>, EngineStats)
where
    P: SignaturePool + Sync,
    M: PosteriorModel + Sync,
{
    cfg.validate();
    let k = cfg.k;
    let max_chunks = (cfg.max_hashes / k).max(1);
    let table = MinMatchTable::build(model, cfg.threshold, cfg.epsilon, k, max_chunks * k);
    let table = &table;

    let results = fan_out(candidates.len(), threads, |_, range| {
        let mut cache = ConcentrationCache::new(cfg.delta, cfg.gamma);
        let mut stats = EngineStats {
            k,
            pruned_at_chunk: vec![0; max_chunks as usize],
            ..Default::default()
        };
        let mut out = Vec::new();
        // Run-major batched scan: identical per-pair (m, n) trajectories to
        // the serial engine, just counted a run at a time. The pool is
        // pre-extended, so no `ensure` calls here.
        let slice = &candidates[range];
        let mut scan = RunScan::default();
        let mut i = 0usize;
        while i < slice.len() {
            let j = run_end(slice, i);
            let run = &slice[i..j];
            let a = run[0].0;
            scan.reset(run.len());
            let mut n = 0u32;
            for c in 0..max_chunks {
                if scan.alive.is_empty() {
                    break;
                }
                scan.alive_ids.clear();
                scan.alive_ids
                    .extend(scan.alive.iter().map(|&r| run[r as usize].1));
                pool.agreements_batched(a, &scan.alive_ids, n, n + k, &mut scan.counts);
                n += k;
                stats.hash_comparisons += k as u64 * scan.alive.len() as u64;
                let mut kept = 0usize;
                for t in 0..scan.alive.len() {
                    let r = scan.alive[t] as usize;
                    let m = scan.m[r] + scan.counts[t];
                    scan.m[r] = m;
                    if table.should_prune(m, n) {
                        stats.pruned += 1;
                        stats.pruned_at_chunk[c as usize] += 1;
                        scan.verdicts[r] = RunVerdict::Pruned;
                    } else if cache.is_concentrated(model, m, n) {
                        scan.verdicts[r] = RunVerdict::Emit(model.map_estimate(m, n));
                        stats.accepted += 1;
                    } else {
                        scan.alive[kept] = r as u32;
                        kept += 1;
                    }
                }
                scan.alive.truncate(kept);
            }
            for &r in &scan.alive {
                scan.verdicts[r as usize] =
                    RunVerdict::Emit(model.map_estimate(scan.m[r as usize], n));
                stats.accepted += 1;
                stats.forced_accepts += 1;
            }
            for (r, &(_, b)) in run.iter().enumerate() {
                if let RunVerdict::Emit(est) = scan.verdicts[r] {
                    out.push((a, b, est));
                }
            }
            i = j;
        }
        let (hits, misses) = cache.stats();
        stats.cache_hits = hits;
        stats.cache_misses = misses;
        (out, stats)
    });

    merge(candidates.len() as u64, k, max_chunks, results)
}

/// Parallel BayesLSH-Lite (Algorithm 2). Signatures must already cover the
/// scan depth `(cfg.h / cfg.k).max(1) * cfg.k`; output and counters are
/// identical to [`crate::engine::bayes_verify_lite`].
pub fn par_bayes_verify_lite<P, M, F>(
    data: &Dataset,
    pool: &P,
    model: &M,
    candidates: &[(u32, u32)],
    cfg: &LiteConfig,
    exact: F,
    threads: usize,
) -> (Vec<(u32, u32, f64)>, EngineStats)
where
    P: SignaturePool + Sync,
    M: PosteriorModel + Sync,
    F: Fn(&SparseVector, &SparseVector) -> f64 + Sync,
{
    cfg.validate();
    let k = cfg.k;
    let max_chunks = (cfg.h / k).max(1);
    let table = MinMatchTable::build(model, cfg.threshold, cfg.epsilon, k, max_chunks * k);
    let (table, exact) = (&table, &exact);

    let results = fan_out(candidates.len(), threads, |_, range| {
        let mut stats = EngineStats {
            k,
            pruned_at_chunk: vec![0; max_chunks as usize],
            ..Default::default()
        };
        let mut out = Vec::new();
        // Same run-major batched scan as the Bayes driver, prune-only;
        // survivors (still `Pending`) get the exact check in candidate
        // order.
        let slice = &candidates[range];
        let mut scan = RunScan::default();
        let mut i = 0usize;
        while i < slice.len() {
            let j = run_end(slice, i);
            let run = &slice[i..j];
            let a = run[0].0;
            let va = data.vector(a);
            scan.reset(run.len());
            let mut n = 0u32;
            for c in 0..max_chunks {
                if scan.alive.is_empty() {
                    break;
                }
                scan.alive_ids.clear();
                scan.alive_ids
                    .extend(scan.alive.iter().map(|&r| run[r as usize].1));
                pool.agreements_batched(a, &scan.alive_ids, n, n + k, &mut scan.counts);
                n += k;
                stats.hash_comparisons += k as u64 * scan.alive.len() as u64;
                let mut kept = 0usize;
                for t in 0..scan.alive.len() {
                    let r = scan.alive[t] as usize;
                    let m = scan.m[r] + scan.counts[t];
                    scan.m[r] = m;
                    if table.should_prune(m, n) {
                        stats.pruned += 1;
                        stats.pruned_at_chunk[c as usize] += 1;
                        scan.verdicts[r] = RunVerdict::Pruned;
                    } else {
                        scan.alive[kept] = r as u32;
                        kept += 1;
                    }
                }
                scan.alive.truncate(kept);
            }
            for (r, &(_, b)) in run.iter().enumerate() {
                if matches!(scan.verdicts[r], RunVerdict::Pending) {
                    stats.exact_verifications += 1;
                    let s = exact(va, data.vector(b));
                    if s >= cfg.threshold {
                        out.push((a, b, s));
                        stats.accepted += 1;
                    }
                }
            }
            i = j;
        }
        (out, stats)
    });

    merge(candidates.len() as u64, k, max_chunks, results)
}

/// Parallel SPRT verification. Signatures must already cover the scan
/// depth `(cfg.max_hashes / cfg.k).max(1) * cfg.k`; output and counters
/// are identical to [`crate::engine::sprt_verify`] (every verdict is a
/// pure function of the cumulative `(m, n)` at a chunk boundary, so the
/// partition cannot move a decision).
#[allow(clippy::too_many_arguments)]
pub fn par_sprt_verify<P, F>(
    data: &Dataset,
    pool: &P,
    candidates: &[(u32, u32)],
    cfg: &SprtConfig,
    collision: impl Fn(f64) -> f64,
    estimate: impl Fn(f64) -> f64 + Sync,
    exact: F,
    threads: usize,
) -> (Vec<(u32, u32, f64)>, EngineStats)
where
    P: SignaturePool + Sync,
    F: Fn(&SparseVector, &SparseVector) -> f64 + Sync,
{
    let table = SprtTable::build(cfg, collision);
    let k = cfg.k;
    let max_chunks = (cfg.max_hashes / k).max(1);
    let (table, estimate, exact) = (&table, &estimate, &exact);

    let results = fan_out(candidates.len(), threads, |_, range| {
        let mut stats = EngineStats {
            k,
            pruned_at_chunk: vec![0; max_chunks as usize],
            ..Default::default()
        };
        let mut out = Vec::new();
        // Same run-major batched scan as the serial engine; the pool is
        // pre-extended, so no `ensure` calls here.
        let slice = &candidates[range];
        let mut scan = RunScan::default();
        let mut i = 0usize;
        while i < slice.len() {
            let j = run_end(slice, i);
            let run = &slice[i..j];
            let a = run[0].0;
            let va = data.vector(a);
            scan.reset(run.len());
            let mut n = 0u32;
            for c in 0..max_chunks {
                if scan.alive.is_empty() {
                    break;
                }
                scan.alive_ids.clear();
                scan.alive_ids
                    .extend(scan.alive.iter().map(|&r| run[r as usize].1));
                pool.agreements_batched(a, &scan.alive_ids, n, n + k, &mut scan.counts);
                n += k;
                stats.hash_comparisons += k as u64 * scan.alive.len() as u64;
                let mut kept = 0usize;
                for t in 0..scan.alive.len() {
                    let r = scan.alive[t] as usize;
                    let m = scan.m[r] + scan.counts[t];
                    scan.m[r] = m;
                    if table.should_prune(m, n) {
                        stats.pruned += 1;
                        stats.pruned_at_chunk[c as usize] += 1;
                        scan.verdicts[r] = RunVerdict::Pruned;
                    } else if table.should_accept(m, n) {
                        scan.verdicts[r] = RunVerdict::Emit(estimate(m as f64 / n as f64));
                        stats.accepted += 1;
                    } else {
                        scan.alive[kept] = r as u32;
                        kept += 1;
                    }
                }
                scan.alive.truncate(kept);
            }
            for (r, &(_, b)) in run.iter().enumerate() {
                match scan.verdicts[r] {
                    RunVerdict::Emit(est) => out.push((a, b, est)),
                    RunVerdict::Pending => {
                        stats.exact_verifications += 1;
                        let s = exact(va, data.vector(b));
                        if s >= cfg.threshold {
                            out.push((a, b, s));
                            stats.accepted += 1;
                        }
                    }
                    RunVerdict::Pruned => {}
                }
            }
            i = j;
        }
        (out, stats)
    });

    merge(candidates.len() as u64, k, max_chunks, results)
}

/// One worker's verification output: surviving pairs plus its counters.
type ChunkResult = (Vec<(u32, u32, f64)>, EngineStats);

/// Merge per-chunk verification results in chunk order: outputs
/// concatenate (preserving candidate order), counters add.
fn merge(
    input_pairs: u64,
    k: u32,
    max_chunks: u32,
    results: Vec<ChunkResult>,
) -> (Vec<(u32, u32, f64)>, EngineStats) {
    let mut pairs = Vec::new();
    let mut stats = EngineStats {
        input_pairs,
        k,
        pruned_at_chunk: vec![0; max_chunks as usize],
        ..Default::default()
    };
    for (chunk_pairs, chunk_stats) in results {
        pairs.extend(chunk_pairs);
        stats.absorb(&chunk_stats);
    }
    (pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosine_model::CosineModel;
    use crate::engine::{bayes_verify, bayes_verify_lite, sprt_verify};
    use crate::estimator::mle_verify;
    use bayeslsh_lsh::{cos_to_r, r_to_cos, BitSignatures, SrpHasher};
    use bayeslsh_numeric::Xoshiro256;
    use bayeslsh_sparse::cosine;

    fn corpus(seed: u64) -> Dataset {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut d = Dataset::new(2000);
        for c in 0..8 {
            let center: Vec<(u32, f32)> = (0..30)
                .map(|_| {
                    (
                        (c * 200 + rng.next_below(180) as usize) as u32,
                        (rng.next_f64() + 0.3) as f32,
                    )
                })
                .collect();
            for _ in 0..5 {
                let mut pairs = center.clone();
                for p in pairs.iter_mut() {
                    if rng.next_bool(0.2) {
                        *p = (rng.next_below(2000) as u32, (rng.next_f64() + 0.3) as f32);
                    }
                }
                d.push(SparseVector::from_pairs(pairs));
            }
        }
        d
    }

    fn all_pairs(n: u32) -> Vec<(u32, u32)> {
        let mut v = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                v.push((a, b));
            }
        }
        v
    }

    #[test]
    fn candidate_ids_first_encounter_order() {
        let ids = candidate_ids(&[(3, 1), (1, 2), (0, 3)], 5);
        assert_eq!(ids, vec![3, 1, 2, 0]);
    }

    #[test]
    fn parallel_drivers_match_serial_engines() {
        let data = corpus(401);
        let cands = all_pairs(data.len() as u32);
        let cfg = BayesLshConfig::cosine(0.7);
        let lite = LiteConfig::cosine(0.7);
        let model = CosineModel::new();

        // Serial references (lazily extending pools).
        let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 402), data.len());
        let (serial_bayes, serial_bayes_stats) =
            bayes_verify(&data, &mut pool, &model, &cands, &cfg);
        let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 402), data.len());
        let (serial_lite, serial_lite_stats) =
            bayes_verify_lite(&data, &mut pool, &model, &cands, &lite, cosine);
        let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 402), data.len());
        let (serial_mle, serial_comps) = mle_verify(&data, &mut pool, &cands, 256, 0.7, r_to_cos);
        let sprt = SprtConfig::cosine(0.7);
        let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 402), data.len());
        let (serial_sprt, serial_sprt_stats) =
            sprt_verify(&data, &mut pool, &cands, &sprt, cos_to_r, r_to_cos, cosine);

        let ids = candidate_ids(&cands, data.len());
        for threads in [1usize, 2, 4, 8] {
            let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), 402), data.len());
            pool.par_ensure_ids(&data, &ids, cfg.max_hashes, threads);
            let (pairs, stats) = par_bayes_verify(&pool, &model, &cands, &cfg, threads);
            assert_eq!(pairs, serial_bayes, "bayes pairs, threads {threads}");
            assert_eq!(stats.pruned, serial_bayes_stats.pruned);
            assert_eq!(stats.accepted, serial_bayes_stats.accepted);
            assert_eq!(stats.forced_accepts, serial_bayes_stats.forced_accepts);
            assert_eq!(stats.hash_comparisons, serial_bayes_stats.hash_comparisons);
            assert_eq!(stats.pruned_at_chunk, serial_bayes_stats.pruned_at_chunk);

            let (pairs, stats) =
                par_bayes_verify_lite(&data, &pool, &model, &cands, &lite, cosine, threads);
            assert_eq!(pairs, serial_lite, "lite pairs, threads {threads}");
            assert_eq!(stats.pruned, serial_lite_stats.pruned);
            assert_eq!(
                stats.exact_verifications,
                serial_lite_stats.exact_verifications
            );

            let (pairs, stats) = par_sprt_verify(
                &data, &pool, &cands, &sprt, cos_to_r, r_to_cos, cosine, threads,
            );
            assert_eq!(pairs, serial_sprt, "sprt pairs, threads {threads}");
            assert_eq!(stats.pruned, serial_sprt_stats.pruned);
            assert_eq!(stats.accepted, serial_sprt_stats.accepted);
            assert_eq!(
                stats.exact_verifications,
                serial_sprt_stats.exact_verifications
            );
            assert_eq!(stats.hash_comparisons, serial_sprt_stats.hash_comparisons);
            assert_eq!(stats.pruned_at_chunk, serial_sprt_stats.pruned_at_chunk);

            let mut mle_pool = BitSignatures::new(SrpHasher::new(data.dim(), 402), data.len());
            mle_pool.par_ensure_ids(&data, &ids, 256, threads);
            let (pairs, comps) = par_mle_verify(&mle_pool, &cands, 256, 0.7, r_to_cos, threads);
            assert_eq!(pairs, serial_mle, "mle pairs, threads {threads}");
            assert_eq!(comps, serial_comps);

            let exact = par_exact_verify(&data, Measure::Cosine, 0.7, &cands, threads);
            let serial_exact = par_exact_verify(&data, Measure::Cosine, 0.7, &cands, 1);
            assert_eq!(exact, serial_exact);
        }
    }
}
