//! Engine configuration types.

/// Parameters of BayesLSH (Algorithm 1).
///
/// Defaults follow the paper's experimental setup (Section 5.1):
/// ε = γ = 0.03, δ = 0.05, k = 32.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BayesLshConfig {
    /// Similarity threshold `t` (in the target similarity space).
    pub threshold: f64,
    /// Recall parameter ε: prune once `Pr[S ≥ t | M(m,n)] < ε`.
    pub epsilon: f64,
    /// Accuracy parameter δ: half-width of the estimate interval.
    pub delta: f64,
    /// Accuracy parameter γ: stop once `Pr[|S−Ŝ| < δ] ≥ 1 − γ`.
    pub gamma: f64,
    /// Hashes compared per iteration (paper: 32, a word of SRP bits).
    pub k: u32,
    /// Hard cap on hashes per pair. A pair still unresolved at the cap is
    /// emitted with its current estimate (never silently dropped, so recall
    /// is unaffected; the estimate contract may be slightly looser for such
    /// pairs — they are counted in [`crate::engine::EngineStats`]).
    pub max_hashes: u32,
}

impl BayesLshConfig {
    /// Paper defaults at threshold `t` for bit hashes (cosine).
    pub fn cosine(threshold: f64) -> Self {
        Self {
            threshold,
            epsilon: 0.03,
            delta: 0.05,
            gamma: 0.03,
            k: 32,
            max_hashes: 2048,
        }
    }

    /// Paper defaults at threshold `t` for integer hashes (Jaccard).
    /// Minhashes are 4 bytes each, so the cap is lower (the paper's fixed
    /// "LSH Approx" comparison uses 360 minhashes).
    pub fn jaccard(threshold: f64) -> Self {
        Self {
            threshold,
            epsilon: 0.03,
            delta: 0.05,
            gamma: 0.03,
            k: 32,
            max_hashes: 512,
        }
    }

    /// Panic early on nonsensical settings.
    pub fn validate(&self) {
        assert!(
            self.threshold > 0.0 && self.threshold <= 1.0,
            "threshold {}",
            self.threshold
        );
        assert!(
            self.epsilon > 0.0 && self.epsilon < 1.0,
            "epsilon {}",
            self.epsilon
        );
        assert!(self.delta > 0.0 && self.delta < 1.0, "delta {}", self.delta);
        assert!(self.gamma > 0.0 && self.gamma < 1.0, "gamma {}", self.gamma);
        assert!(self.k >= 1, "k must be positive");
        assert!(self.max_hashes >= self.k, "max_hashes below one chunk");
    }
}

/// Parameters of BayesLSH-Lite (Algorithm 2): prune for at most `h` hashes,
/// then verify survivors exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiteConfig {
    /// Similarity threshold `t`.
    pub threshold: f64,
    /// Recall parameter ε.
    pub epsilon: f64,
    /// Hashes compared per iteration.
    pub k: u32,
    /// Maximum hashes examined before falling back to exact verification
    /// (paper: 128 for cosine, 64 for Jaccard).
    pub h: u32,
}

impl LiteConfig {
    /// Paper defaults at threshold `t` for cosine.
    pub fn cosine(threshold: f64) -> Self {
        Self {
            threshold,
            epsilon: 0.03,
            k: 32,
            h: 128,
        }
    }

    /// Paper defaults at threshold `t` for Jaccard.
    pub fn jaccard(threshold: f64) -> Self {
        Self {
            threshold,
            epsilon: 0.03,
            k: 32,
            h: 64,
        }
    }

    /// Panic early on nonsensical settings.
    pub fn validate(&self) {
        assert!(self.threshold > 0.0 && self.threshold <= 1.0);
        assert!(self.epsilon > 0.0 && self.epsilon < 1.0);
        assert!(self.k >= 1 && self.h >= self.k, "need h >= k >= 1");
    }
}

/// Parameters of the SPRT verifier: a Wald sequential probability-ratio
/// test over the per-chunk agreement counts, deciding between
/// `H1: S ≥ t + δ` (accept with an estimate) and `H0: S ≤ t − δ` (prune)
/// with bounded error probabilities. Pairs still undecided at `max_hashes`
/// fall back to one exact similarity computation, so output quality is
/// never worse than BayesLSH-Lite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SprtConfig {
    /// Similarity threshold `t`.
    pub threshold: f64,
    /// Recall bound α: a pair with `S ≥ t + δ` is pruned with probability
    /// at most α (Wald's type-II error of the accept decision).
    pub alpha: f64,
    /// Precision bound β: a pair with `S ≤ t − δ` is accepted with
    /// probability at most β.
    pub beta: f64,
    /// Indifference half-width δ: the test is indifferent on
    /// `(t − δ, t + δ)`; such pairs terminate by the `max_hashes` fallback.
    pub delta: f64,
    /// Hashes compared per iteration (decision points sit at multiples).
    pub k: u32,
    /// Hard cap on hashes per pair; undecided pairs are verified exactly.
    /// Deliberately shallow (Lite-style truncation): near-threshold pairs
    /// carry almost no per-hash information, so past a few hundred hashes
    /// one exact similarity is cheaper than continuing the scan. The cap
    /// has no bearing on the α/β guarantees.
    pub max_hashes: u32,
}

impl SprtConfig {
    /// Defaults at threshold `t` for bit hashes (cosine), matching the
    /// BayesLSH error budget (α = ε, β = γ, δ as the paper's δ).
    pub fn cosine(threshold: f64) -> Self {
        Self {
            threshold,
            alpha: 0.03,
            beta: 0.03,
            delta: 0.05,
            k: 32,
            max_hashes: 512,
        }
    }

    /// Defaults at threshold `t` for integer hashes (Jaccard).
    pub fn jaccard(threshold: f64) -> Self {
        Self {
            threshold,
            alpha: 0.03,
            beta: 0.03,
            delta: 0.05,
            k: 32,
            max_hashes: 256,
        }
    }

    /// Panic early on nonsensical settings.
    pub fn validate(&self) {
        assert!(
            self.threshold > 0.0 && self.threshold <= 1.0,
            "threshold {}",
            self.threshold
        );
        assert!(self.alpha > 0.0 && self.alpha < 1.0, "alpha {}", self.alpha);
        assert!(self.beta > 0.0 && self.beta < 1.0, "beta {}", self.beta);
        assert!(self.delta > 0.0 && self.delta < 1.0, "delta {}", self.delta);
        assert!(self.k >= 1, "k must be positive");
        assert!(self.max_hashes >= self.k, "max_hashes below one chunk");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sprt_defaults_mirror_bayes_budget() {
        let c = SprtConfig::cosine(0.7);
        assert_eq!((c.alpha, c.beta, c.delta, c.k), (0.03, 0.03, 0.05, 32));
        assert_eq!(c.max_hashes, 512);
        assert_eq!(SprtConfig::jaccard(0.5).max_hashes, 256);
        c.validate();
        SprtConfig::jaccard(0.5).validate();
    }

    #[test]
    #[should_panic(expected = "max_hashes")]
    fn sprt_validate_rejects_cap_below_chunk() {
        let mut c = SprtConfig::cosine(0.7);
        c.max_hashes = 16;
        c.validate();
    }

    #[test]
    fn defaults_match_paper() {
        let c = BayesLshConfig::cosine(0.7);
        assert_eq!((c.epsilon, c.delta, c.gamma, c.k), (0.03, 0.05, 0.03, 32));
        let l = LiteConfig::cosine(0.7);
        assert_eq!(l.h, 128);
        let lj = LiteConfig::jaccard(0.5);
        assert_eq!(lj.h, 64);
        c.validate();
        l.validate();
        lj.validate();
    }

    #[test]
    #[should_panic(expected = "max_hashes")]
    fn validate_rejects_cap_below_chunk() {
        let mut c = BayesLshConfig::cosine(0.7);
        c.max_hashes = 16;
        c.validate();
    }

    #[test]
    #[should_panic]
    fn validate_rejects_bad_threshold() {
        BayesLshConfig::cosine(1.5).validate();
    }
}
