//! The paper's eight named algorithms and the legacy one-shot entry point.
//!
//! The paper's experiments (Section 5.1) compare eight algorithms; each is
//! a composition of a candidate generator and a verification strategy:
//!
//! | Algorithm            | Candidates | Verification                      |
//! |----------------------|------------|-----------------------------------|
//! | `AllPairs`           | —          | exact (inline)                    |
//! | `ApBayesLsh`         | AllPairs   | BayesLSH (estimates)              |
//! | `ApBayesLshLite`     | AllPairs   | BayesLSH pruning + exact          |
//! | `Lsh`                | banding    | exact                             |
//! | `LshApprox`          | banding    | fixed-n MLE                       |
//! | `LshBayesLsh`        | banding    | BayesLSH (estimates)              |
//! | `LshBayesLshLite`    | banding    | BayesLSH pruning + exact          |
//! | `PpjoinPlus`         | —          | exact (inline; binary only)       |
//!
//! Since the `Searcher` redesign these are literally compositions: each
//! [`Algorithm`] maps to a [`Composition`] via [`Algorithm::composition`],
//! and [`run_algorithm`] is a thin compatibility shim that builds a
//! transient [`SearchContext`] and delegates to
//! [`crate::compose::run_composition`]. New code should prefer
//! [`crate::searcher::Searcher`], which hashes and indexes the corpus once
//! and serves repeated queries; `run_algorithm` rebuilds both on every
//! call.
//!
//! LSH-based pipelines share one signature pool between candidate
//! generation and verification, reproducing the paper's amortization
//! argument ("it exploits the hashes of the objects for candidate pruning,
//! further amortizing the costs of hashing").

use bayeslsh_candgen::{all_pairs_cosine, all_pairs_jaccard, BandingParams, BandingPlan};
use bayeslsh_lsh::{FamilyConfig, Measure};
use bayeslsh_numeric::Parallelism;
use bayeslsh_sparse::{l2_similarity, Dataset};

use crate::compose::{
    run_composition, Composition, GeneratorKind, SearchContext, SigPool, VerifierKind,
};
use crate::config::{BayesLshConfig, LiteConfig, SprtConfig};
use crate::engine::EngineStats;
use crate::error::SearchError;

/// The eight algorithms of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// AllPairs, exact (Bayardo et al.).
    AllPairs,
    /// AllPairs candidates + BayesLSH verification.
    ApBayesLsh,
    /// AllPairs candidates + BayesLSH-Lite verification.
    ApBayesLshLite,
    /// LSH banding candidates + exact verification.
    Lsh,
    /// LSH banding candidates + fixed-n MLE estimation.
    LshApprox,
    /// LSH banding candidates + BayesLSH verification.
    LshBayesLsh,
    /// LSH banding candidates + BayesLSH-Lite verification.
    LshBayesLshLite,
    /// PPJoin+, exact (binary vectors only).
    PpjoinPlus,
}

impl Algorithm {
    /// All algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 8] = [
        Algorithm::AllPairs,
        Algorithm::ApBayesLsh,
        Algorithm::ApBayesLshLite,
        Algorithm::Lsh,
        Algorithm::LshApprox,
        Algorithm::LshBayesLsh,
        Algorithm::LshBayesLshLite,
        Algorithm::PpjoinPlus,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::AllPairs => "AllPairs",
            Algorithm::ApBayesLsh => "AP+BayesLSH",
            Algorithm::ApBayesLshLite => "AP+BayesLSH-Lite",
            Algorithm::Lsh => "LSH",
            Algorithm::LshApprox => "LSH Approx",
            Algorithm::LshBayesLsh => "LSH+BayesLSH",
            Algorithm::LshBayesLshLite => "LSH+BayesLSH-Lite",
            Algorithm::PpjoinPlus => "PPJoin+",
        }
    }

    /// The (generator, verifier) composition this algorithm names.
    pub fn composition(&self) -> Composition {
        match self {
            Algorithm::AllPairs => Composition::new(GeneratorKind::AllPairs, VerifierKind::Exact),
            Algorithm::ApBayesLsh => Composition::new(GeneratorKind::AllPairs, VerifierKind::Bayes),
            Algorithm::ApBayesLshLite => {
                Composition::new(GeneratorKind::AllPairs, VerifierKind::BayesLite)
            }
            Algorithm::Lsh => Composition::new(GeneratorKind::LshBanding, VerifierKind::Exact),
            Algorithm::LshApprox => Composition::new(GeneratorKind::LshBanding, VerifierKind::Mle),
            Algorithm::LshBayesLsh => {
                Composition::new(GeneratorKind::LshBanding, VerifierKind::Bayes)
            }
            Algorithm::LshBayesLshLite => {
                Composition::new(GeneratorKind::LshBanding, VerifierKind::BayesLite)
            }
            Algorithm::PpjoinPlus => {
                Composition::new(GeneratorKind::PpjoinPlus, VerifierKind::Exact)
            }
        }
    }

    /// True for the exact (non-randomized) algorithms. Note plain `Lsh` is
    /// *not* exact: its verification is, but the banding index misses an
    /// expected ε-fraction of true pairs.
    pub fn is_exact(&self) -> bool {
        matches!(self, Algorithm::AllPairs | Algorithm::PpjoinPlus)
    }

    /// True for algorithms usable on general weighted vectors.
    pub fn supports_weighted(&self) -> bool {
        !matches!(self, Algorithm::PpjoinPlus)
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Prior selection for the Jaccard posterior model (paper Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorChoice {
    /// Uniform Beta(1, 1).
    Uniform,
    /// Method-of-moments Beta fit to a random sample of candidate-pair
    /// similarities.
    Fitted,
}

/// Full pipeline configuration; defaults follow the paper's Section 5.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// The hash family (and thereby the target similarity measure) this
    /// pipeline runs under, with its per-family parameters.
    pub family: FamilyConfig,
    /// Similarity threshold `t`.
    pub threshold: f64,
    /// Master seed; hash families derive their streams from it.
    pub seed: u64,
    /// Recall parameter ε (paper: 0.03).
    pub epsilon: f64,
    /// Accuracy parameter δ (paper: 0.05).
    pub delta: f64,
    /// Accuracy parameter γ (paper: 0.03).
    pub gamma: f64,
    /// Hashes compared per iteration (paper: 32).
    pub k: u32,
    /// Hash cap per pair for full BayesLSH.
    pub max_hashes: u32,
    /// BayesLSH-Lite budget `h` (paper: 128 cosine / 64 Jaccard).
    pub lite_h: u32,
    /// Fixed hash count for LSH Approx (paper: 2048 cosine / 360 Jaccard).
    pub approx_hashes: u32,
    /// Band width `k` of the LSH index.
    pub band_width: u32,
    /// Expected false-negative rate of the LSH index (paper: 0.03).
    pub lsh_fnr: f64,
    /// Prior for the Jaccard model.
    pub prior: PriorChoice,
    /// Candidate-pair sample size for the fitted prior.
    pub prior_sample: usize,
    /// Buckets probed per band when querying the LSH index (step-wise
    /// multi-probe, Lv et al. VLDB'07): 1 is classical banding; larger
    /// values additionally probe the buckets whose band keys differ in the
    /// lowest-margin bit, letting an index built with fewer bands reach the
    /// same recall. Only bit families (cosine / MIPS) perturb keys;
    /// integer-hash families treat any value as 1.
    pub probes: usize,
    /// Worker-thread budget for hashing, banding-index construction, and
    /// candidate verification. Output is bit-identical to the serial path
    /// whatever the setting (see the crate's "Parallelism & determinism"
    /// docs); the default [`Parallelism::Auto`] resolves to
    /// `BAYESLSH_THREADS` or the available cores.
    pub parallelism: Parallelism,
}

/// Safety cap on the number of LSH bands. When the `l` formula demands
/// more, [`PipelineConfig::banding_plan`] reports the clamp (and the
/// weakened false-negative rate) instead of hiding it.
const MAX_BANDS: u32 = 10_000;

impl PipelineConfig {
    /// Paper defaults for cosine similarity at threshold `t`.
    pub fn cosine(threshold: f64) -> Self {
        Self {
            family: FamilyConfig::Cosine,
            threshold,
            seed: 42,
            epsilon: 0.03,
            delta: 0.05,
            gamma: 0.03,
            k: 32,
            max_hashes: 2048,
            lite_h: 128,
            approx_hashes: 2048,
            band_width: 8,
            lsh_fnr: 0.03,
            prior: PriorChoice::Uniform,
            prior_sample: 1000,
            probes: 1,
            parallelism: Parallelism::Auto,
        }
    }

    /// Paper defaults for Jaccard similarity at threshold `t`.
    pub fn jaccard(threshold: f64) -> Self {
        Self {
            family: FamilyConfig::Jaccard,
            threshold,
            seed: 42,
            epsilon: 0.03,
            delta: 0.05,
            gamma: 0.03,
            k: 32,
            max_hashes: 512,
            lite_h: 64,
            approx_hashes: 360,
            band_width: 3,
            lsh_fnr: 0.03,
            prior: PriorChoice::Fitted,
            prior_sample: 1000,
            probes: 1,
            parallelism: Parallelism::Auto,
        }
    }

    /// Defaults for L2 similarity `s = 1/(1 + d)` at threshold `t` with
    /// E2LSH bucket width `r`. The integer-valued bucket hashes share the
    /// Jaccard-style verification budgets; the prior is uniform (the
    /// fitted Beta prior is a Jaccard-specific device).
    pub fn l2(threshold: f64, r: f64) -> Self {
        Self {
            family: FamilyConfig::L2 { r },
            threshold,
            seed: 42,
            epsilon: 0.03,
            delta: 0.05,
            gamma: 0.03,
            k: 32,
            max_hashes: 512,
            lite_h: 64,
            approx_hashes: 360,
            band_width: 3,
            lsh_fnr: 0.03,
            prior: PriorChoice::Uniform,
            prior_sample: 1000,
            probes: 1,
            parallelism: Parallelism::Auto,
        }
    }

    /// Defaults for maximum inner product at *augmented-cosine* threshold
    /// `t`. The corpus must already be lifted through
    /// [`bayeslsh_lsh::MipsTransform`] (and queries through
    /// `MipsTransform::augment_query`); internally this is the cosine/SRP
    /// machinery on its own seed stream, so all cosine defaults carry over.
    pub fn mips(threshold: f64) -> Self {
        Self {
            family: FamilyConfig::Mips,
            ..Self::cosine(threshold)
        }
    }

    /// Compatibility shim from the era when the pipeline was configured by
    /// bare [`Measure`]: replaces [`PipelineConfig::family`] with that
    /// measure's default family parameters.
    #[deprecated(note = "set the `family` field (a `FamilyConfig`) directly")]
    pub fn measure(mut self, measure: Measure) -> Self {
        self.family = FamilyConfig::for_measure(measure);
        self
    }

    /// Check every parameter against its admissible range, with a
    /// descriptive [`SearchError::InvalidConfig`] on the first violation.
    /// [`crate::searcher::SearcherBuilder::build`] calls this; the legacy
    /// [`run_algorithm`] shim does not (it keeps the panicking behaviour of
    /// the engine-level configs for compatibility).
    pub fn validate(&self) -> Result<(), SearchError> {
        fn unit_open(param: &'static str, v: f64) -> Result<(), SearchError> {
            if v > 0.0 && v < 1.0 {
                Ok(())
            } else {
                Err(SearchError::invalid(
                    param,
                    format!("must lie in (0, 1), got {v}"),
                ))
            }
        }
        if !(self.threshold > 0.0 && self.threshold <= 1.0) {
            return Err(SearchError::invalid(
                "threshold",
                format!("must lie in (0, 1], got {}", self.threshold),
            ));
        }
        unit_open("epsilon", self.epsilon)?;
        unit_open("delta", self.delta)?;
        unit_open("gamma", self.gamma)?;
        unit_open("lsh_fnr", self.lsh_fnr)?;
        if self.k == 0 {
            return Err(SearchError::invalid("k", "chunk size must be positive"));
        }
        if self.band_width == 0 {
            return Err(SearchError::invalid(
                "band_width",
                "band width must be positive",
            ));
        }
        if let Err((param, message)) = self.family.validate() {
            return Err(SearchError::invalid(param, message));
        }
        if self.band_width > 64 && matches!(self.family.measure(), Measure::Cosine | Measure::Mips)
        {
            return Err(SearchError::invalid(
                "band_width",
                format!(
                    "bit band keys are packed into u64 (band_width <= 64), got {}",
                    self.band_width
                ),
            ));
        }
        if self.probes == 0 {
            return Err(SearchError::invalid(
                "probes",
                "at least the base bucket is probed per band (probes >= 1)",
            ));
        }
        if self.max_hashes < self.k {
            return Err(SearchError::invalid(
                "max_hashes",
                format!(
                    "hash cap {} is below one chunk of k = {}",
                    self.max_hashes, self.k
                ),
            ));
        }
        if self.lite_h < self.k {
            return Err(SearchError::invalid(
                "lite_h",
                format!(
                    "Lite budget {} is below one chunk of k = {}",
                    self.lite_h, self.k
                ),
            ));
        }
        if self.approx_hashes == 0 {
            return Err(SearchError::invalid(
                "approx_hashes",
                "fixed MLE hash count must be positive",
            ));
        }
        if self.prior == PriorChoice::Fitted && self.prior_sample == 0 {
            return Err(SearchError::invalid(
                "prior_sample",
                "fitted prior needs a positive sample size",
            ));
        }
        Ok(())
    }

    /// The engine configuration for full BayesLSH verification.
    pub fn bayes(&self) -> BayesLshConfig {
        BayesLshConfig {
            threshold: self.threshold,
            epsilon: self.epsilon,
            delta: self.delta,
            gamma: self.gamma,
            k: self.k,
            max_hashes: self.max_hashes,
        }
    }

    /// The engine configuration for BayesLSH-Lite verification.
    pub fn lite(&self) -> LiteConfig {
        LiteConfig {
            threshold: self.threshold,
            epsilon: self.epsilon,
            k: self.k,
            h: self.lite_h,
        }
    }

    /// The engine configuration for SPRT verification. The Wald error
    /// bounds reuse the Bayesian error budget: α (the probability of
    /// pruning a pair with `S ≥ t`, i.e. the recall knob) is `epsilon`,
    /// β (the probability of accepting a pair with `S ≤ t − δ`, the
    /// precision knob) is `gamma`, and the indifference half-width is
    /// `delta` — so a config tuned for BayesLSH carries the same guarantees
    /// over unchanged. The hash cap is Lite-style shallow (4·`lite_h`,
    /// never above `max_hashes`): a pair the sequential test has not
    /// decided by then is settled by one exact similarity, so the cap
    /// trades hash-comparison cost against exact-verification cost and
    /// has no bearing on the α/β guarantees.
    pub fn sprt(&self) -> SprtConfig {
        SprtConfig {
            threshold: self.threshold,
            alpha: self.epsilon,
            beta: self.gamma,
            delta: self.delta,
            k: self.k,
            max_hashes: (4 * self.lite_h).clamp(self.k, self.max_hashes),
        }
    }

    /// The banding configuration this pipeline indexes with, including the
    /// achieved (vs. requested) false-negative rate — which differ when
    /// the internal band cap truncates the `l` formula.
    pub fn banding_plan(&self) -> BandingPlan {
        let p = self.family.collision_one(self.threshold);
        BandingParams::plan(p, self.band_width, self.lsh_fnr, MAX_BANDS)
    }
}

/// The result of one pipeline run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Output pairs with similarities (exact or estimated).
    pub pairs: Vec<(u32, u32, f64)>,
    /// Candidate pairs generated (0 for single-phase exact algorithms,
    /// whose generation and verification are fused).
    pub candidates: u64,
    /// Seconds spent generating candidates.
    pub candgen_secs: f64,
    /// Seconds spent verifying.
    pub verify_secs: f64,
    /// Total wall-clock seconds.
    pub total_secs: f64,
    /// Verification statistics (BayesLSH variants only).
    pub engine: Option<EngineStats>,
    /// The banding plan used (LSH-banding algorithms only), surfacing the
    /// achieved false-negative rate when the band cap clamps `l`.
    pub banding: Option<BandingPlan>,
}

/// Exact ground truth for `(measure, threshold)` via the fastest exact
/// algorithm (AllPairs).
pub fn ground_truth(data: &Dataset, measure: Measure, threshold: f64) -> Vec<(u32, u32, f64)> {
    match measure {
        Measure::Cosine => all_pairs_cosine(data, threshold),
        Measure::Jaccard => all_pairs_jaccard(data, threshold),
        // MIPS corpora are pre-augmented, so inner-product order *is*
        // cosine order (see `bayeslsh_lsh::mips`).
        Measure::Mips => all_pairs_cosine(data, threshold),
        Measure::L2 => all_pairs_l2(data, threshold),
    }
}

/// Exact L2-similarity join by brute force (no inverted-index bounds apply
/// to `1/(1 + d)`); skips empty vectors like the candidate paths do.
pub(crate) fn all_pairs_l2(data: &Dataset, threshold: f64) -> Vec<(u32, u32, f64)> {
    let mut out = Vec::new();
    for a in 0..data.len() as u32 {
        if data.vector(a).is_empty() {
            continue;
        }
        for b in (a + 1)..data.len() as u32 {
            if data.vector(b).is_empty() {
                continue;
            }
            let s = l2_similarity(data.vector(a), data.vector(b));
            if s >= threshold {
                out.push((a, b, s));
            }
        }
    }
    out
}

fn assert_binary(data: &Dataset, algo: Algorithm) {
    assert!(
        data.vectors().iter().all(|v| v.is_binary()),
        "{} requires binary vectors; call Dataset::binarized() first",
        algo.name()
    );
}

/// Run one algorithm end to end.
///
/// This is the legacy one-shot entry point, kept as a compatibility shim:
/// each call builds a fresh signature pool, runs the algorithm's
/// [`Composition`], and throws the pool away. Code that issues more than
/// one operation against the same corpus should build a
/// [`crate::searcher::Searcher`] instead, which hashes and indexes once.
///
/// # Panics
///
/// Panics (as it always has) when the data is not binary but the
/// algorithm/measure requires it, or on nonsensical engine parameters. The
/// builder API reports both as typed [`SearchError`]s.
pub fn run_algorithm(algo: Algorithm, data: &Dataset, cfg: &PipelineConfig) -> RunOutput {
    let comp = algo.composition();
    if comp.requires_binary(cfg.family.measure()) {
        assert_binary(data, algo);
    }
    let mut pool = SigPool::for_config(cfg, data);
    let mut ctx = SearchContext {
        data,
        cfg,
        pool: &mut pool,
        index: None,
    };
    let out =
        run_composition(comp, &mut ctx).unwrap_or_else(|e| panic!("{} failed: {e}", algo.name()));
    let banding = (comp.generator == GeneratorKind::LshBanding).then(|| cfg.banding_plan());
    RunOutput {
        algorithm: algo,
        pairs: out.pairs,
        candidates: out.candidates,
        candgen_secs: out.candgen_secs,
        verify_secs: out.verify_secs,
        total_secs: out.total_secs,
        engine: out.engine,
        banding,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{estimate_errors, recall_against};
    use bayeslsh_numeric::Xoshiro256;
    use bayeslsh_sparse::SparseVector;

    fn corpus(seed: u64) -> Dataset {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut d = Dataset::new(3000);
        for c in 0..10 {
            let center: Vec<(u32, f32)> = (0..35)
                .map(|_| {
                    (
                        (c * 250 + rng.next_below(230) as usize) as u32,
                        (rng.next_f64() + 0.3) as f32,
                    )
                })
                .collect();
            for _ in 0..6 {
                let mut pairs = center.clone();
                for p in pairs.iter_mut() {
                    if rng.next_bool(0.2) {
                        *p = (rng.next_below(3000) as u32, (rng.next_f64() + 0.3) as f32);
                    }
                }
                d.push(SparseVector::from_pairs(pairs));
            }
        }
        d
    }

    #[test]
    fn cosine_pipelines_agree_with_ground_truth() {
        let data = corpus(91);
        let cfg = PipelineConfig::cosine(0.7);
        let gt = ground_truth(&data, Measure::Cosine, 0.7);
        assert!(gt.len() >= 20, "ground truth too small: {}", gt.len());

        for algo in [
            Algorithm::AllPairs,
            Algorithm::ApBayesLsh,
            Algorithm::ApBayesLshLite,
            Algorithm::Lsh,
            Algorithm::LshApprox,
            Algorithm::LshBayesLsh,
            Algorithm::LshBayesLshLite,
        ] {
            let out = run_algorithm(algo, &data, &cfg);
            let recall = recall_against(&gt, &out.pairs);
            let min_recall = if algo.is_exact() { 1.0 } else { 0.88 };
            assert!(
                recall >= min_recall,
                "{algo}: recall {recall} (expected >= {min_recall}), output {} truth {}",
                out.pairs.len(),
                gt.len()
            );
            assert!(out.total_secs >= 0.0);
            if !algo.is_exact() {
                assert!(out.candidates > 0, "{algo} should report candidates");
            }
        }
    }

    #[test]
    fn jaccard_pipelines_agree_with_ground_truth() {
        let data = corpus(92).binarized();
        let cfg = PipelineConfig::jaccard(0.5);
        let gt = ground_truth(&data, Measure::Jaccard, 0.5);
        assert!(gt.len() >= 20, "ground truth too small: {}", gt.len());

        for algo in Algorithm::ALL {
            let out = run_algorithm(algo, &data, &cfg);
            let recall = recall_against(&gt, &out.pairs);
            let min_recall = if algo.is_exact() { 1.0 } else { 0.88 };
            assert!(recall >= min_recall, "{algo}: recall {recall}");
        }
    }

    #[test]
    fn binary_cosine_ppjoin_matches_allpairs() {
        let data = corpus(93).binarized();
        let cfg = PipelineConfig::cosine(0.7);
        let ap = run_algorithm(Algorithm::AllPairs, &data, &cfg);
        let pp = run_algorithm(Algorithm::PpjoinPlus, &data, &cfg);
        let ids = |v: &[(u32, u32, f64)]| {
            let mut v: Vec<(u32, u32)> = v.iter().map(|&(a, b, _)| (a, b)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(ids(&ap.pairs), ids(&pp.pairs));
    }

    #[test]
    fn bayeslsh_estimates_respect_accuracy_contract() {
        let data = corpus(94);
        let cfg = PipelineConfig::cosine(0.6);
        let out = run_algorithm(Algorithm::LshBayesLsh, &data, &cfg);
        assert!(!out.pairs.is_empty());
        let stats = estimate_errors(&out.pairs, &data, Measure::Cosine, cfg.delta);
        // Pr[error >= delta] < gamma holds in expectation; allow slack for
        // the finite sample.
        assert!(
            stats.frac_above <= cfg.gamma + 0.07,
            "fraction of >delta errors: {} (n={})",
            stats.frac_above,
            stats.n
        );
    }

    #[test]
    fn bayeslsh_prunes_most_false_positives_early() {
        // The Figure 4 story: the candidate set shrinks by orders of
        // magnitude within a few chunks.
        let data = corpus(95);
        let cfg = PipelineConfig::cosine(0.7);
        let out = run_algorithm(Algorithm::LshBayesLsh, &data, &cfg);
        let stats = out.engine.expect("BayesLSH reports stats");
        let curve = stats.survivors_curve();
        let total = curve[0].1 as f64;
        let after_128 = curve
            .iter()
            .find(|&&(h, _)| h == 128)
            .map(|&(_, c)| c)
            .unwrap() as f64;
        assert!(
            after_128 / total < 0.5,
            "after 128 hashes {} of {} candidates remain",
            after_128,
            total
        );
    }

    #[test]
    #[should_panic(expected = "requires binary")]
    fn ppjoin_rejects_weighted_vectors() {
        let data = corpus(96);
        let cfg = PipelineConfig::cosine(0.7);
        run_algorithm(Algorithm::PpjoinPlus, &data, &cfg);
    }

    #[test]
    fn fitted_prior_runs_and_keeps_recall() {
        let data = corpus(97).binarized();
        let mut cfg = PipelineConfig::jaccard(0.5);
        cfg.prior = PriorChoice::Fitted;
        let fitted = run_algorithm(Algorithm::ApBayesLsh, &data, &cfg);
        cfg.prior = PriorChoice::Uniform;
        let uniform = run_algorithm(Algorithm::ApBayesLsh, &data, &cfg);
        let gt = ground_truth(&data, Measure::Jaccard, 0.5);
        assert!(recall_against(&gt, &fitted.pairs) >= 0.88);
        assert!(recall_against(&gt, &uniform.pairs) >= 0.88);
    }

    #[test]
    fn algorithm_metadata() {
        assert_eq!(Algorithm::ApBayesLsh.name(), "AP+BayesLSH");
        assert_eq!(Algorithm::ALL.len(), 8);
        assert!(Algorithm::AllPairs.is_exact());
        assert!(!Algorithm::Lsh.is_exact());
        assert!(!Algorithm::LshBayesLsh.is_exact());
        assert!(!Algorithm::PpjoinPlus.supports_weighted());
        assert_eq!(format!("{}", Algorithm::LshApprox), "LSH Approx");
    }

    #[test]
    fn validate_accepts_paper_defaults() {
        PipelineConfig::cosine(0.7).validate().unwrap();
        PipelineConfig::jaccard(0.5).validate().unwrap();
    }

    #[test]
    fn validate_rejects_out_of_range_parameters() {
        let bad = |mutate: fn(&mut PipelineConfig), param: &str| {
            let mut cfg = PipelineConfig::cosine(0.7);
            mutate(&mut cfg);
            match cfg.validate() {
                Err(SearchError::InvalidConfig { param: p, .. }) => {
                    assert_eq!(p, param, "wrong field reported")
                }
                other => panic!("expected InvalidConfig for {param}, got {other:?}"),
            }
        };
        bad(|c| c.threshold = 0.0, "threshold");
        bad(|c| c.threshold = 1.5, "threshold");
        bad(|c| c.epsilon = 0.0, "epsilon");
        bad(|c| c.epsilon = 1.0, "epsilon");
        bad(|c| c.delta = -0.05, "delta");
        bad(|c| c.gamma = 2.0, "gamma");
        bad(|c| c.lsh_fnr = 0.0, "lsh_fnr");
        bad(|c| c.k = 0, "k");
        bad(|c| c.band_width = 0, "band_width");
        bad(|c| c.band_width = 65, "band_width");
        bad(|c| c.max_hashes = 16, "max_hashes");
        bad(|c| c.lite_h = 8, "lite_h");
        bad(|c| c.approx_hashes = 0, "approx_hashes");
        let mut cfg = PipelineConfig::jaccard(0.5);
        cfg.prior_sample = 0;
        assert!(matches!(
            cfg.validate(),
            Err(SearchError::InvalidConfig {
                param: "prior_sample",
                ..
            })
        ));
    }

    #[test]
    fn banding_plan_reports_the_clamp() {
        // A jaccard threshold this low with wide bands wants more than
        // MAX_BANDS bands; the plan must say the guarantee was weakened.
        let mut cfg = PipelineConfig::jaccard(0.05);
        cfg.band_width = 8;
        let plan = cfg.banding_plan();
        assert!(plan.clamped);
        assert_eq!(plan.params.l, 10_000);
        assert!(plan.achieved_fnr > plan.requested_fnr);
        // Defaults are unclamped and meet the requested rate.
        let plan = PipelineConfig::cosine(0.7).banding_plan();
        assert!(!plan.clamped);
        assert!(plan.achieved_fnr <= plan.requested_fnr);
    }

    #[test]
    fn run_output_surfaces_banding_plan_for_lsh_algorithms() {
        let data = corpus(98);
        let cfg = PipelineConfig::cosine(0.7);
        let lsh = run_algorithm(Algorithm::Lsh, &data, &cfg);
        let plan = lsh.banding.expect("LSH runs report their banding plan");
        assert_eq!(plan.params, cfg.banding_plan().params);
        let ap = run_algorithm(Algorithm::AllPairs, &data, &cfg);
        assert!(ap.banding.is_none());
    }
}
