//! End-to-end all-pairs similarity search pipelines.
//!
//! The paper's experiments (Section 5.1) compare eight algorithms; each is
//! a composition of a candidate generator and a verification strategy:
//!
//! | Algorithm            | Candidates | Verification                      |
//! |----------------------|------------|-----------------------------------|
//! | `AllPairs`           | —          | exact (inline)                    |
//! | `ApBayesLsh`         | AllPairs   | BayesLSH (estimates)              |
//! | `ApBayesLshLite`     | AllPairs   | BayesLSH pruning + exact          |
//! | `Lsh`                | banding    | exact                             |
//! | `LshApprox`          | banding    | fixed-n MLE                       |
//! | `LshBayesLsh`        | banding    | BayesLSH (estimates)              |
//! | `LshBayesLshLite`    | banding    | BayesLSH pruning + exact          |
//! | `PpjoinPlus`         | —          | exact (inline; binary only)       |
//!
//! LSH-based pipelines share one signature pool between candidate
//! generation and verification, reproducing the paper's amortization
//! argument ("it exploits the hashes of the objects for candidate pruning,
//! further amortizing the costs of hashing").

use std::time::Instant;

use bayeslsh_candgen::{
    all_pairs_cosine, all_pairs_cosine_candidates, all_pairs_jaccard, all_pairs_jaccard_candidates,
    lsh_candidates_bits, lsh_candidates_ints, ppjoin_binary_cosine, ppjoin_jaccard, BandingParams,
};
use bayeslsh_lsh::{cos_to_r, r_to_cos, BitSignatures, IntSignatures, MinHasher, SrpHasher};
use bayeslsh_numeric::{derive_seed, Xoshiro256};
use bayeslsh_sparse::{cosine, jaccard, similarity::Measure, Dataset};

use crate::config::{BayesLshConfig, LiteConfig};
use crate::cosine_model::CosineModel;
use crate::engine::{bayes_verify, bayes_verify_lite, EngineStats};
use crate::estimator::mle_verify;
use crate::jaccard_model::JaccardModel;

/// The eight algorithms of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// AllPairs, exact (Bayardo et al.).
    AllPairs,
    /// AllPairs candidates + BayesLSH verification.
    ApBayesLsh,
    /// AllPairs candidates + BayesLSH-Lite verification.
    ApBayesLshLite,
    /// LSH banding candidates + exact verification.
    Lsh,
    /// LSH banding candidates + fixed-n MLE estimation.
    LshApprox,
    /// LSH banding candidates + BayesLSH verification.
    LshBayesLsh,
    /// LSH banding candidates + BayesLSH-Lite verification.
    LshBayesLshLite,
    /// PPJoin+, exact (binary vectors only).
    PpjoinPlus,
}

impl Algorithm {
    /// All algorithms, in the paper's presentation order.
    pub const ALL: [Algorithm; 8] = [
        Algorithm::AllPairs,
        Algorithm::ApBayesLsh,
        Algorithm::ApBayesLshLite,
        Algorithm::Lsh,
        Algorithm::LshApprox,
        Algorithm::LshBayesLsh,
        Algorithm::LshBayesLshLite,
        Algorithm::PpjoinPlus,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::AllPairs => "AllPairs",
            Algorithm::ApBayesLsh => "AP+BayesLSH",
            Algorithm::ApBayesLshLite => "AP+BayesLSH-Lite",
            Algorithm::Lsh => "LSH",
            Algorithm::LshApprox => "LSH Approx",
            Algorithm::LshBayesLsh => "LSH+BayesLSH",
            Algorithm::LshBayesLshLite => "LSH+BayesLSH-Lite",
            Algorithm::PpjoinPlus => "PPJoin+",
        }
    }

    /// True for the exact (non-randomized) algorithms. Note plain `Lsh` is
    /// *not* exact: its verification is, but the banding index misses an
    /// expected ε-fraction of true pairs.
    pub fn is_exact(&self) -> bool {
        matches!(self, Algorithm::AllPairs | Algorithm::PpjoinPlus)
    }

    /// True for algorithms usable on general weighted vectors.
    pub fn supports_weighted(&self) -> bool {
        !matches!(self, Algorithm::PpjoinPlus)
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Prior selection for the Jaccard posterior model (paper Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorChoice {
    /// Uniform Beta(1, 1).
    Uniform,
    /// Method-of-moments Beta fit to a random sample of candidate-pair
    /// similarities.
    Fitted,
}

/// Full pipeline configuration; defaults follow the paper's Section 5.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Target similarity measure.
    pub measure: Measure,
    /// Similarity threshold `t`.
    pub threshold: f64,
    /// Master seed; hash families derive their streams from it.
    pub seed: u64,
    /// Recall parameter ε (paper: 0.03).
    pub epsilon: f64,
    /// Accuracy parameter δ (paper: 0.05).
    pub delta: f64,
    /// Accuracy parameter γ (paper: 0.03).
    pub gamma: f64,
    /// Hashes compared per iteration (paper: 32).
    pub k: u32,
    /// Hash cap per pair for full BayesLSH.
    pub max_hashes: u32,
    /// BayesLSH-Lite budget `h` (paper: 128 cosine / 64 Jaccard).
    pub lite_h: u32,
    /// Fixed hash count for LSH Approx (paper: 2048 cosine / 360 Jaccard).
    pub approx_hashes: u32,
    /// Band width `k` of the LSH index.
    pub band_width: u32,
    /// Expected false-negative rate of the LSH index (paper: 0.03).
    pub lsh_fnr: f64,
    /// Prior for the Jaccard model.
    pub prior: PriorChoice,
    /// Candidate-pair sample size for the fitted prior.
    pub prior_sample: usize,
}

/// Safety cap on the number of LSH bands.
const MAX_BANDS: u32 = 10_000;

impl PipelineConfig {
    /// Paper defaults for cosine similarity at threshold `t`.
    pub fn cosine(threshold: f64) -> Self {
        Self {
            measure: Measure::Cosine,
            threshold,
            seed: 42,
            epsilon: 0.03,
            delta: 0.05,
            gamma: 0.03,
            k: 32,
            max_hashes: 2048,
            lite_h: 128,
            approx_hashes: 2048,
            band_width: 8,
            lsh_fnr: 0.03,
            prior: PriorChoice::Uniform,
            prior_sample: 1000,
        }
    }

    /// Paper defaults for Jaccard similarity at threshold `t`.
    pub fn jaccard(threshold: f64) -> Self {
        Self {
            measure: Measure::Jaccard,
            threshold,
            seed: 42,
            epsilon: 0.03,
            delta: 0.05,
            gamma: 0.03,
            k: 32,
            max_hashes: 512,
            lite_h: 64,
            approx_hashes: 360,
            band_width: 3,
            lsh_fnr: 0.03,
            prior: PriorChoice::Fitted,
            prior_sample: 1000,
        }
    }

    fn bayes(&self) -> BayesLshConfig {
        BayesLshConfig {
            threshold: self.threshold,
            epsilon: self.epsilon,
            delta: self.delta,
            gamma: self.gamma,
            k: self.k,
            max_hashes: self.max_hashes,
        }
    }

    fn lite(&self) -> LiteConfig {
        LiteConfig {
            threshold: self.threshold,
            epsilon: self.epsilon,
            k: self.k,
            h: self.lite_h,
        }
    }

    fn banding(&self) -> BandingParams {
        let p = match self.measure {
            Measure::Cosine => cos_to_r(self.threshold),
            Measure::Jaccard => self.threshold,
        };
        BandingParams::for_threshold(p, self.band_width, self.lsh_fnr, MAX_BANDS)
    }
}

/// The result of one pipeline run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Output pairs with similarities (exact or estimated).
    pub pairs: Vec<(u32, u32, f64)>,
    /// Candidate pairs generated (0 for single-phase exact algorithms,
    /// whose generation and verification are fused).
    pub candidates: u64,
    /// Seconds spent generating candidates.
    pub candgen_secs: f64,
    /// Seconds spent verifying.
    pub verify_secs: f64,
    /// Total wall-clock seconds.
    pub total_secs: f64,
    /// Verification statistics (BayesLSH variants only).
    pub engine: Option<EngineStats>,
}

/// Exact ground truth for `(measure, threshold)` via the fastest exact
/// algorithm (AllPairs).
pub fn ground_truth(data: &Dataset, measure: Measure, threshold: f64) -> Vec<(u32, u32, f64)> {
    match measure {
        Measure::Cosine => all_pairs_cosine(data, threshold),
        Measure::Jaccard => all_pairs_jaccard(data, threshold),
    }
}

/// Fit the Jaccard prior from a random sample of candidate pairs, per the
/// paper's method-of-moments recipe.
fn fit_jaccard_prior(
    data: &Dataset,
    candidates: &[(u32, u32)],
    cfg: &PipelineConfig,
) -> JaccardModel {
    match cfg.prior {
        PriorChoice::Uniform => JaccardModel::uniform(),
        PriorChoice::Fitted => {
            if candidates.len() < 2 {
                return JaccardModel::uniform();
            }
            let take = cfg.prior_sample.min(candidates.len());
            let mut rng = Xoshiro256::seed_from_u64(derive_seed(cfg.seed, 0xBEEF));
            let idx = rng.sample_indices(candidates.len(), take);
            let sims: Vec<f64> = idx
                .into_iter()
                .map(|i| {
                    let (a, b) = candidates[i];
                    jaccard(data.vector(a), data.vector(b))
                })
                .collect();
            JaccardModel::fit_from_sample(&sims)
        }
    }
}

fn assert_binary(data: &Dataset, algo: Algorithm) {
    assert!(
        data.vectors().iter().all(|v| v.is_binary()),
        "{} requires binary vectors; call Dataset::binarized() first",
        algo.name()
    );
}

/// Run one algorithm end to end.
pub fn run_algorithm(algo: Algorithm, data: &Dataset, cfg: &PipelineConfig) -> RunOutput {
    match cfg.measure {
        Measure::Cosine => run_cosine(algo, data, cfg),
        Measure::Jaccard => run_jaccard(algo, data, cfg),
    }
}

fn run_cosine(algo: Algorithm, data: &Dataset, cfg: &PipelineConfig) -> RunOutput {
    let srp_seed = derive_seed(cfg.seed, 1);
    let start = Instant::now();
    match algo {
        Algorithm::AllPairs => {
            let pairs = all_pairs_cosine(data, cfg.threshold);
            finish_exact(algo, pairs, start)
        }
        Algorithm::PpjoinPlus => {
            assert_binary(data, algo);
            let pairs = ppjoin_binary_cosine(data, cfg.threshold);
            finish_exact(algo, pairs, start)
        }
        Algorithm::ApBayesLsh | Algorithm::ApBayesLshLite => {
            let cands = all_pairs_cosine_candidates(data, cfg.threshold);
            let candgen_secs = start.elapsed().as_secs_f64();
            let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), srp_seed), data.len());
            let v0 = Instant::now();
            let (pairs, stats) = if algo == Algorithm::ApBayesLsh {
                bayes_verify(data, &mut pool, &CosineModel::new(), &cands, &cfg.bayes())
            } else {
                bayes_verify_lite(
                    data,
                    &mut pool,
                    &CosineModel::new(),
                    &cands,
                    &cfg.lite(),
                    cosine,
                )
            };
            finish_two_phase(
                algo,
                pairs,
                cands.len(),
                candgen_secs,
                v0,
                start,
                Some(stats),
            )
        }
        Algorithm::Lsh
        | Algorithm::LshApprox
        | Algorithm::LshBayesLsh
        | Algorithm::LshBayesLshLite => {
            let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), srp_seed), data.len());
            let cands = lsh_candidates_bits(&mut pool, data, cfg.banding());
            let candgen_secs = start.elapsed().as_secs_f64();
            let v0 = Instant::now();
            let (pairs, stats) = match algo {
                Algorithm::Lsh => {
                    let pairs = cands
                        .iter()
                        .filter_map(|&(a, b)| {
                            let s = cosine(data.vector(a), data.vector(b));
                            (s >= cfg.threshold).then_some((a, b, s))
                        })
                        .collect();
                    (pairs, None)
                }
                Algorithm::LshApprox => {
                    let (pairs, _) = mle_verify(
                        data,
                        &mut pool,
                        &cands,
                        cfg.approx_hashes,
                        cfg.threshold,
                        r_to_cos,
                    );
                    (pairs, None)
                }
                Algorithm::LshBayesLsh => {
                    let (p, s) =
                        bayes_verify(data, &mut pool, &CosineModel::new(), &cands, &cfg.bayes());
                    (p, Some(s))
                }
                Algorithm::LshBayesLshLite => {
                    let (p, s) = bayes_verify_lite(
                        data,
                        &mut pool,
                        &CosineModel::new(),
                        &cands,
                        &cfg.lite(),
                        cosine,
                    );
                    (p, Some(s))
                }
                _ => unreachable!(),
            };
            finish_two_phase(algo, pairs, cands.len(), candgen_secs, v0, start, stats)
        }
    }
}

fn run_jaccard(algo: Algorithm, data: &Dataset, cfg: &PipelineConfig) -> RunOutput {
    assert_binary(data, algo);
    let mh_seed = derive_seed(cfg.seed, 2);
    let start = Instant::now();
    match algo {
        Algorithm::AllPairs => {
            let pairs = all_pairs_jaccard(data, cfg.threshold);
            finish_exact(algo, pairs, start)
        }
        Algorithm::PpjoinPlus => {
            let pairs = ppjoin_jaccard(data, cfg.threshold);
            finish_exact(algo, pairs, start)
        }
        Algorithm::ApBayesLsh | Algorithm::ApBayesLshLite => {
            let cands = all_pairs_jaccard_candidates(data, cfg.threshold);
            let candgen_secs = start.elapsed().as_secs_f64();
            let mut pool = IntSignatures::new(MinHasher::new(mh_seed), data.len());
            let v0 = Instant::now();
            let model = fit_jaccard_prior(data, &cands, cfg);
            let (pairs, stats) = if algo == Algorithm::ApBayesLsh {
                bayes_verify(data, &mut pool, &model, &cands, &cfg.bayes())
            } else {
                bayes_verify_lite(data, &mut pool, &model, &cands, &cfg.lite(), jaccard)
            };
            finish_two_phase(
                algo,
                pairs,
                cands.len(),
                candgen_secs,
                v0,
                start,
                Some(stats),
            )
        }
        Algorithm::Lsh
        | Algorithm::LshApprox
        | Algorithm::LshBayesLsh
        | Algorithm::LshBayesLshLite => {
            let mut pool = IntSignatures::new(MinHasher::new(mh_seed), data.len());
            let cands = lsh_candidates_ints(&mut pool, data, cfg.banding());
            let candgen_secs = start.elapsed().as_secs_f64();
            let v0 = Instant::now();
            let (pairs, stats) = match algo {
                Algorithm::Lsh => {
                    let pairs = cands
                        .iter()
                        .filter_map(|&(a, b)| {
                            let s = jaccard(data.vector(a), data.vector(b));
                            (s >= cfg.threshold).then_some((a, b, s))
                        })
                        .collect();
                    (pairs, None)
                }
                Algorithm::LshApprox => {
                    let (pairs, _) = mle_verify(
                        data,
                        &mut pool,
                        &cands,
                        cfg.approx_hashes,
                        cfg.threshold,
                        |f| f,
                    );
                    (pairs, None)
                }
                Algorithm::LshBayesLsh => {
                    let model = fit_jaccard_prior(data, &cands, cfg);
                    let (p, s) = bayes_verify(data, &mut pool, &model, &cands, &cfg.bayes());
                    (p, Some(s))
                }
                Algorithm::LshBayesLshLite => {
                    let model = fit_jaccard_prior(data, &cands, cfg);
                    let (p, s) =
                        bayes_verify_lite(data, &mut pool, &model, &cands, &cfg.lite(), jaccard);
                    (p, Some(s))
                }
                _ => unreachable!(),
            };
            finish_two_phase(algo, pairs, cands.len(), candgen_secs, v0, start, stats)
        }
    }
}

fn finish_exact(algo: Algorithm, pairs: Vec<(u32, u32, f64)>, start: Instant) -> RunOutput {
    let total = start.elapsed().as_secs_f64();
    RunOutput {
        algorithm: algo,
        pairs,
        candidates: 0,
        candgen_secs: total,
        verify_secs: 0.0,
        total_secs: total,
        engine: None,
    }
}

#[allow(clippy::too_many_arguments)]
fn finish_two_phase(
    algo: Algorithm,
    pairs: Vec<(u32, u32, f64)>,
    candidates: usize,
    candgen_secs: f64,
    verify_start: Instant,
    start: Instant,
    engine: Option<EngineStats>,
) -> RunOutput {
    RunOutput {
        algorithm: algo,
        pairs,
        candidates: candidates as u64,
        candgen_secs,
        verify_secs: verify_start.elapsed().as_secs_f64(),
        total_secs: start.elapsed().as_secs_f64(),
        engine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{estimate_errors, recall_against};
    use bayeslsh_sparse::SparseVector;

    fn corpus(seed: u64) -> Dataset {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut d = Dataset::new(3000);
        for c in 0..10 {
            let center: Vec<(u32, f32)> = (0..35)
                .map(|_| {
                    (
                        (c * 250 + rng.next_below(230) as usize) as u32,
                        (rng.next_f64() + 0.3) as f32,
                    )
                })
                .collect();
            for _ in 0..6 {
                let mut pairs = center.clone();
                for p in pairs.iter_mut() {
                    if rng.next_bool(0.2) {
                        *p = (rng.next_below(3000) as u32, (rng.next_f64() + 0.3) as f32);
                    }
                }
                d.push(SparseVector::from_pairs(pairs));
            }
        }
        d
    }

    #[test]
    fn cosine_pipelines_agree_with_ground_truth() {
        let data = corpus(91);
        let cfg = PipelineConfig::cosine(0.7);
        let gt = ground_truth(&data, Measure::Cosine, 0.7);
        assert!(gt.len() >= 20, "ground truth too small: {}", gt.len());

        for algo in [
            Algorithm::AllPairs,
            Algorithm::ApBayesLsh,
            Algorithm::ApBayesLshLite,
            Algorithm::Lsh,
            Algorithm::LshApprox,
            Algorithm::LshBayesLsh,
            Algorithm::LshBayesLshLite,
        ] {
            let out = run_algorithm(algo, &data, &cfg);
            let recall = recall_against(&gt, &out.pairs);
            let min_recall = if algo.is_exact() { 1.0 } else { 0.88 };
            assert!(
                recall >= min_recall,
                "{algo}: recall {recall} (expected >= {min_recall}), output {} truth {}",
                out.pairs.len(),
                gt.len()
            );
            assert!(out.total_secs >= 0.0);
            if !algo.is_exact() {
                assert!(out.candidates > 0, "{algo} should report candidates");
            }
        }
    }

    #[test]
    fn jaccard_pipelines_agree_with_ground_truth() {
        let data = corpus(92).binarized();
        let cfg = PipelineConfig::jaccard(0.5);
        let gt = ground_truth(&data, Measure::Jaccard, 0.5);
        assert!(gt.len() >= 20, "ground truth too small: {}", gt.len());

        for algo in Algorithm::ALL {
            let out = run_algorithm(algo, &data, &cfg);
            let recall = recall_against(&gt, &out.pairs);
            let min_recall = if algo.is_exact() { 1.0 } else { 0.88 };
            assert!(recall >= min_recall, "{algo}: recall {recall}");
        }
    }

    #[test]
    fn binary_cosine_ppjoin_matches_allpairs() {
        let data = corpus(93).binarized();
        let cfg = PipelineConfig::cosine(0.7);
        let ap = run_algorithm(Algorithm::AllPairs, &data, &cfg);
        let pp = run_algorithm(Algorithm::PpjoinPlus, &data, &cfg);
        let ids = |v: &[(u32, u32, f64)]| {
            let mut v: Vec<(u32, u32)> = v.iter().map(|&(a, b, _)| (a, b)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(ids(&ap.pairs), ids(&pp.pairs));
    }

    #[test]
    fn bayeslsh_estimates_respect_accuracy_contract() {
        let data = corpus(94);
        let cfg = PipelineConfig::cosine(0.6);
        let out = run_algorithm(Algorithm::LshBayesLsh, &data, &cfg);
        assert!(!out.pairs.is_empty());
        let stats = estimate_errors(&out.pairs, &data, Measure::Cosine, cfg.delta);
        // Pr[error >= delta] < gamma holds in expectation; allow slack for
        // the finite sample.
        assert!(
            stats.frac_above <= cfg.gamma + 0.07,
            "fraction of >delta errors: {} (n={})",
            stats.frac_above,
            stats.n
        );
    }

    #[test]
    fn bayeslsh_prunes_most_false_positives_early() {
        // The Figure 4 story: the candidate set shrinks by orders of
        // magnitude within a few chunks.
        let data = corpus(95);
        let cfg = PipelineConfig::cosine(0.7);
        let out = run_algorithm(Algorithm::LshBayesLsh, &data, &cfg);
        let stats = out.engine.expect("BayesLSH reports stats");
        let curve = stats.survivors_curve();
        let total = curve[0].1 as f64;
        let after_128 = curve
            .iter()
            .find(|&&(h, _)| h == 128)
            .map(|&(_, c)| c)
            .unwrap() as f64;
        assert!(
            after_128 / total < 0.5,
            "after 128 hashes {} of {} candidates remain",
            after_128,
            total
        );
    }

    #[test]
    #[should_panic(expected = "requires binary")]
    fn ppjoin_rejects_weighted_vectors() {
        let data = corpus(96);
        let cfg = PipelineConfig::cosine(0.7);
        run_algorithm(Algorithm::PpjoinPlus, &data, &cfg);
    }

    #[test]
    fn fitted_prior_runs_and_keeps_recall() {
        let data = corpus(97).binarized();
        let mut cfg = PipelineConfig::jaccard(0.5);
        cfg.prior = PriorChoice::Fitted;
        let fitted = run_algorithm(Algorithm::ApBayesLsh, &data, &cfg);
        cfg.prior = PriorChoice::Uniform;
        let uniform = run_algorithm(Algorithm::ApBayesLsh, &data, &cfg);
        let gt = ground_truth(&data, Measure::Jaccard, 0.5);
        assert!(recall_against(&gt, &fitted.pairs) >= 0.88);
        assert!(recall_against(&gt, &uniform.pairs) >= 0.88);
    }

    #[test]
    fn algorithm_metadata() {
        assert_eq!(Algorithm::ApBayesLsh.name(), "AP+BayesLSH");
        assert_eq!(Algorithm::ALL.len(), 8);
        assert!(Algorithm::AllPairs.is_exact());
        assert!(!Algorithm::Lsh.is_exact());
        assert!(!Algorithm::LshBayesLsh.is_exact());
        assert!(!Algorithm::PpjoinPlus.supports_weighted());
        assert_eq!(format!("{}", Algorithm::LshApprox), "LSH Approx");
    }
}
