//! BayesLSH posterior model for Jaccard similarity (paper Section 4.1).
//!
//! Minwise hashes collide with probability exactly `J(x, y)`, so the
//! likelihood is `Binomial(n, S)` in the target similarity itself. With a
//! conjugate `Beta(α, β)` prior the posterior after `M(m, n)` is
//! `Beta(m + α, n − m + β)`, and all three inference queries are
//! regularized-incomplete-beta evaluations.
//!
//! The prior can be the uniform `Beta(1, 1)` or learned from a random
//! sample of candidate-pair similarities by method-of-moments
//! ([`JaccardModel::fit_from_sample`]), exactly as the paper prescribes.
//!
//! Note: the paper states the posterior mode as `(m+α−1)/(n+α+β−1)`; the
//! mode of `Beta(m+α, n−m+β)` is `(m+α−1)/(n+α+β−2)` — an off-by-one typo
//! in the paper that we do not reproduce.

use bayeslsh_numeric::BetaDist;

use crate::posterior::PosteriorModel;

/// Jaccard posterior model with a Beta prior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JaccardModel {
    prior: BetaDist,
}

impl Default for JaccardModel {
    fn default() -> Self {
        Self::uniform()
    }
}

impl JaccardModel {
    /// Uniform prior `Beta(1, 1)`.
    pub fn uniform() -> Self {
        Self {
            prior: BetaDist::uniform(),
        }
    }

    /// Explicit prior.
    pub fn with_prior(prior: BetaDist) -> Self {
        Self { prior }
    }

    /// Learn the prior from a sample of candidate-pair similarities via
    /// method-of-moments (paper Section 4.1). Degenerate samples fall back
    /// to the uniform prior.
    pub fn fit_from_sample(similarities: &[f64]) -> Self {
        Self {
            prior: BetaDist::fit_moments(similarities),
        }
    }

    /// The prior in use.
    pub fn prior(&self) -> BetaDist {
        self.prior
    }

    /// Posterior distribution after observing `m` matches in `n` hashes.
    pub fn posterior(&self, m: u32, n: u32) -> BetaDist {
        self.prior.posterior(m as u64, n as u64)
    }
}

impl PosteriorModel for JaccardModel {
    fn prob_above_threshold(&self, m: u32, n: u32, t: f64) -> f64 {
        // 1 − I_t(m+α, n−m+β).
        self.posterior(m, n).sf(t)
    }

    fn map_estimate(&self, m: u32, n: u32) -> f64 {
        assert!(n > 0, "MAP estimate needs at least one observation");
        self.posterior(m, n).mode()
    }

    fn concentration(&self, m: u32, n: u32, delta: f64) -> f64 {
        let post = self.posterior(m, n);
        let s_hat = post.mode();
        post.interval_prob(s_hat - delta, s_hat + delta)
    }

    fn name(&self) -> &'static str {
        "jaccard-beta"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::posterior::test_support::check_model_invariants;
    use bayeslsh_numeric::reg_inc_beta;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn invariant_battery_uniform_prior() {
        check_model_invariants(&JaccardModel::uniform(), 0.5);
        check_model_invariants(&JaccardModel::uniform(), 0.8);
    }

    #[test]
    fn invariant_battery_fitted_prior() {
        let model = JaccardModel::with_prior(BetaDist::new(2.0, 8.0));
        check_model_invariants(&model, 0.5);
    }

    #[test]
    fn matches_paper_formulas_uniform_prior() {
        // With α = β = 1: Pr[S ≥ t | M(m,n)] = 1 − I_t(m+1, n−m+1)
        // and Ŝ = m/n.
        let model = JaccardModel::uniform();
        let (m, n) = (24u32, 32u32);
        assert_close(
            model.prob_above_threshold(m, n, 0.7),
            1.0 - reg_inc_beta(25.0, 9.0, 0.7),
            1e-12,
        );
        assert_close(model.map_estimate(m, n), 0.75, 1e-12);
    }

    #[test]
    fn map_with_informative_prior_shrinks_toward_prior_mode() {
        // Prior Beta(10, 10) has mode 0.5; with m/n = 0.9 the posterior
        // mode must land strictly between 0.5 and 0.9.
        let model = JaccardModel::with_prior(BetaDist::new(10.0, 10.0));
        let map = model.map_estimate(18, 20);
        assert!(map > 0.5 && map < 0.9, "map = {map}");
    }

    #[test]
    fn high_match_rate_gives_high_probability() {
        let model = JaccardModel::uniform();
        // 31/32 matches: surely above t = 0.7.
        assert!(model.prob_above_threshold(31, 32, 0.7) > 0.98);
        // 10/100 matches: surely below t = 0.8 — this is the paper's
        // Section 3.2 motivating example.
        assert!(model.prob_above_threshold(10, 100, 0.8) < 1e-12);
    }

    #[test]
    fn concentration_probability_matches_direct_integral() {
        let model = JaccardModel::uniform();
        let (m, n, delta) = (48u32, 64u32, 0.05);
        let post = model.posterior(m, n);
        let s_hat = post.mode();
        let direct = post.cdf(s_hat + delta) - post.cdf(s_hat - delta);
        assert_close(model.concentration(m, n, delta), direct, 1e-12);
    }

    #[test]
    fn fit_from_sample_uses_method_of_moments() {
        // Sample mean 0.5, pop-variance 0.01 → Beta(12, 12).
        let model = JaccardModel::fit_from_sample(&[0.4, 0.6]);
        assert_close(model.prior().alpha(), 12.0, 1e-9);
        assert_close(model.prior().beta(), 12.0, 1e-9);
        // Tiny/degenerate samples → uniform.
        assert_eq!(
            JaccardModel::fit_from_sample(&[]).prior(),
            BetaDist::uniform()
        );
    }

    #[test]
    fn prior_washes_out_with_data() {
        // Paper appendix: very different priors converge to similar
        // posteriors after ~100 observations.
        let skeptic = JaccardModel::with_prior(BetaDist::new(1.0, 5.0));
        let believer = JaccardModel::with_prior(BetaDist::new(5.0, 1.0));
        let (m, n) = (96u32, 128u32);
        let d = (skeptic.map_estimate(m, n) - believer.map_estimate(m, n)).abs();
        assert!(d < 0.06, "MAP gap {d} too large after 128 observations");
        // Compare tails at a threshold away from the posterior bulk (at the
        // bulk boundary even a small mean shift moves the tail a lot).
        let dp = (skeptic.prob_above_threshold(m, n, 0.6)
            - believer.prob_above_threshold(m, n, 0.6))
        .abs();
        assert!(dp < 0.05, "tail-probability gap {dp}");
    }
}
