//! k-nearest-neighbour retrieval with Bayesian candidate pruning — the
//! paper's second future-work item ("a BayesLSH-Lite analogue can be
//! developed for candidate pruning in the case of nearest neighbor
//! retrieval (although the final distance may have to be calculated
//! exactly)").
//!
//! The twist versus the all-pairs setting: there is no fixed threshold.
//! Instead the *current k-th best similarity* plays the role of `t`, rising
//! as better neighbours are found — so the pruning gets progressively more
//! aggressive over a query. Because `t` changes, the `minMatches` table
//! cannot be precomputed; the posterior tail is evaluated online (a few
//! incomplete-beta calls per surviving candidate — cheap at query scale).
//! Survivors get exact cosine computations, as the paper anticipates.

use bayeslsh_candgen::{band_keys_bits, BandingIndex, BandingParams};
use bayeslsh_lsh::{count_bit_agreements, BitSignatures, SignaturePool, SrpHasher};
use bayeslsh_sparse::{cosine, Dataset, SparseVector};

use crate::cosine_model::CosineModel;
use crate::posterior::PosteriorModel;

/// Query-time parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnParams {
    /// Recall parameter: prune a candidate once
    /// `Pr[S ≥ current kth-best | M(m,n)] < ε`.
    pub epsilon: f64,
    /// Hashes compared per pruning iteration.
    pub chunk: u32,
    /// Hash budget per candidate before falling through to the exact
    /// computation (the Lite `h`).
    pub h: u32,
    /// Minimum similarity of interest: used as the pruning threshold while
    /// fewer than `k` neighbours have been found.
    pub floor: f64,
}

impl Default for KnnParams {
    fn default() -> Self {
        Self {
            epsilon: 0.03,
            chunk: 32,
            h: 128,
            floor: 0.1,
        }
    }
}

/// Query statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KnnStats {
    /// Candidates produced by the banding probe.
    pub candidates: u64,
    /// Candidates pruned by the posterior test.
    pub pruned: u64,
    /// Exact similarity computations.
    pub exact: u64,
    /// Hash comparisons performed.
    pub hash_comparisons: u64,
}

/// An LSH index over a dataset supporting Bayesian-pruned k-NN queries
/// (cosine similarity).
///
/// This is the historical standalone k-NN entry point, now built on the
/// same growable [`BandingIndex`] that powers
/// [`crate::searcher::Searcher`] — which additionally serves threshold
/// point queries, batch joins, Jaccard top-k, and incremental inserts, and
/// is what new code should use.
#[derive(Debug, Clone)]
pub struct KnnIndex {
    pool: BitSignatures,
    index: BandingIndex,
}

impl KnnIndex {
    /// Index `data` with `bands.l` bands of `bands.k` projection bits.
    pub fn build(data: &Dataset, bands: BandingParams, seed: u64) -> Self {
        assert!(bands.k <= 64);
        let mut pool = BitSignatures::new(SrpHasher::new(data.dim(), seed), data.len());
        let total = bands.total_hashes();
        let mut index = BandingIndex::new(bands);
        for (id, v) in data.iter() {
            if v.is_empty() {
                continue;
            }
            pool.ensure(id, v, total);
            index.insert(id, &band_keys_bits(pool.raw_words(id), bands));
        }
        Self { pool, index }
    }

    /// The banding configuration in use.
    pub fn bands(&self) -> BandingParams {
        self.index.params()
    }

    /// Top-`k` most cosine-similar dataset vectors to `q`, sorted by
    /// decreasing similarity, plus query statistics. Exact similarities
    /// are returned for every reported neighbour.
    pub fn query(
        &mut self,
        data: &Dataset,
        q: &SparseVector,
        k: usize,
        params: &KnnParams,
    ) -> (Vec<(u32, f64)>, KnnStats) {
        assert!(k > 0);
        assert!(params.epsilon > 0.0 && params.epsilon < 1.0);
        assert!(params.chunk >= 1 && params.h >= params.chunk);
        let mut stats = KnnStats::default();
        if q.is_empty() || data.is_empty() {
            return (Vec::new(), stats);
        }

        // Hash the query through the shared plane bank.
        let bands = self.index.params();
        let need = bands.total_hashes().max(params.h);
        let mut q_words = Vec::new();
        self.pool.hash_external(q, 0, need, &mut q_words);

        // Probe each band for candidates.
        let cand_ids = self.index.probe(&band_keys_bits(&q_words, bands));
        stats.candidates = cand_ids.len() as u64;

        // Bayesian-pruned scan with a rising threshold.
        let model = CosineModel::new();
        let max_chunks = params.h / params.chunk;
        // Min-heap of the current top-k (similarity, id).
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<HeapItem>> =
            std::collections::BinaryHeap::with_capacity(k + 1);
        let mut kth_best = params.floor;

        for id in cand_ids {
            let v = data.vector(id);
            self.pool.ensure(id, v, max_chunks * params.chunk);
            let (mut m, mut n) = (0u32, 0u32);
            let mut pruned = false;
            for _ in 0..max_chunks {
                m += count_bit_agreements(&q_words, self.pool.raw_words(id), n, n + params.chunk);
                n += params.chunk;
                stats.hash_comparisons += params.chunk as u64;
                if model.prob_above_threshold(m, n, kth_best) < params.epsilon {
                    pruned = true;
                    break;
                }
            }
            if pruned {
                stats.pruned += 1;
                continue;
            }
            stats.exact += 1;
            let s = cosine(q, v);
            if heap.len() < k {
                heap.push(std::cmp::Reverse(HeapItem(s, id)));
            } else if s > heap.peek().unwrap().0 .0 {
                heap.pop();
                heap.push(std::cmp::Reverse(HeapItem(s, id)));
            }
            if heap.len() == k {
                kth_best = heap.peek().unwrap().0 .0.max(params.floor);
            }
        }

        let mut out: Vec<(u32, f64)> = heap
            .into_iter()
            .map(|std::cmp::Reverse(HeapItem(s, id))| (id, s))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        (out, stats)
    }
}

/// Total-ordered (similarity, id) pair for the top-k heaps (shared with
/// [`crate::searcher::Searcher::top_k`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct HeapItem(pub(crate) f64, pub(crate) u32);

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bayeslsh_numeric::Xoshiro256;

    fn corpus(seed: u64) -> Dataset {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut d = Dataset::new(3000);
        for c in 0..15 {
            let center: Vec<(u32, f32)> = (0..40)
                .map(|_| {
                    (
                        (c * 200 + rng.next_below(190) as usize) as u32,
                        (rng.next_f64() + 0.3) as f32,
                    )
                })
                .collect();
            for _ in 0..8 {
                let mut pairs = center.clone();
                for p in pairs.iter_mut() {
                    if rng.next_bool(0.2) {
                        *p = (rng.next_below(3000) as u32, (rng.next_f64() + 0.3) as f32);
                    }
                }
                d.push(SparseVector::from_pairs(pairs));
            }
        }
        d
    }

    fn brute_top_k(data: &Dataset, q: &SparseVector, k: usize, skip: Option<u32>) -> Vec<u32> {
        let mut sims: Vec<(u32, f64)> = data
            .iter()
            .filter(|&(id, _)| Some(id) != skip)
            .map(|(id, v)| (id, cosine(q, v)))
            .collect();
        sims.sort_by(|a, b| b.1.total_cmp(&a.1));
        sims.truncate(k);
        sims.into_iter().map(|(id, _)| id).collect()
    }

    #[test]
    fn finds_most_true_neighbours() {
        let data = corpus(201);
        let bands = BandingParams { k: 8, l: 40 };
        let mut index = KnnIndex::build(&data, bands, 7);
        let k = 5;
        let mut hits = 0usize;
        let mut total = 0usize;
        for qid in (0..data.len() as u32).step_by(11) {
            let q = data.vector(qid).clone();
            let (got, _) = index.query(&data, &q, k + 1, &KnnParams::default());
            // Self should be the top hit (cosine 1).
            assert!(!got.is_empty());
            assert_eq!(got[0].0, qid, "self must rank first");
            let got_ids: std::collections::HashSet<u32> =
                got.iter().skip(1).map(|&(id, _)| id).collect();
            for t in brute_top_k(&data, &q, k, Some(qid)) {
                total += 1;
                if got_ids.contains(&t) {
                    hits += 1;
                }
            }
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.75, "k-NN recall@{k} = {recall}");
    }

    #[test]
    fn reported_similarities_are_exact_and_sorted() {
        let data = corpus(202);
        let mut index = KnnIndex::build(&data, BandingParams { k: 8, l: 30 }, 8);
        let q = data.vector(3).clone();
        let (got, _) = index.query(&data, &q, 10, &KnnParams::default());
        for w in got.windows(2) {
            assert!(w[0].1 >= w[1].1, "results must be sorted");
        }
        for &(id, s) in &got {
            assert!((s - cosine(&q, data.vector(id))).abs() < 1e-12);
        }
    }

    #[test]
    fn pruning_actually_happens() {
        let data = corpus(203);
        let mut index = KnnIndex::build(&data, BandingParams { k: 6, l: 60 }, 9);
        let q = data.vector(0).clone();
        let (_, stats) = index.query(&data, &q, 3, &KnnParams::default());
        assert!(stats.candidates > 20, "want a non-trivial candidate set");
        assert!(stats.pruned > 0, "the Bayesian filter should prune");
        assert!(
            stats.exact < stats.candidates,
            "exact computations {} should undercut candidates {}",
            stats.exact,
            stats.candidates
        );
    }

    #[test]
    fn handles_empty_query_and_small_k() {
        let data = corpus(204);
        let mut index = KnnIndex::build(&data, BandingParams { k: 8, l: 10 }, 10);
        let (got, stats) = index.query(&data, &SparseVector::empty(), 5, &KnnParams::default());
        assert!(got.is_empty());
        assert_eq!(stats.candidates, 0);
        let q = data.vector(1).clone();
        let (one, _) = index.query(&data, &q, 1, &KnnParams::default());
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].0, 1);
    }

    #[test]
    fn rising_threshold_tightens_pruning() {
        // With a higher floor the pruning threshold starts high, so more
        // candidates die early.
        let data = corpus(205);
        let mut index = KnnIndex::build(&data, BandingParams { k: 6, l: 60 }, 11);
        let q = data.vector(5).clone();
        let lax = index
            .query(
                &data,
                &q,
                3,
                &KnnParams {
                    floor: 0.05,
                    ..Default::default()
                },
            )
            .1;
        let strict = index
            .query(
                &data,
                &q,
                3,
                &KnnParams {
                    floor: 0.6,
                    ..Default::default()
                },
            )
            .1;
        assert!(
            strict.exact <= lax.exact,
            "strict floor should not need more exact computations ({} vs {})",
            strict.exact,
            lax.exact
        );
    }
}
