//! Property tests for snapshot robustness: **no byte-level corruption may
//! panic, hang, or silently mis-load**. Every flipped byte and every
//! truncation of a valid snapshot must surface as a typed
//! [`SnapshotError`] — the checksum covers the whole stream, so there is
//! no byte whose corruption goes unnoticed.

use std::sync::OnceLock;

use bayeslsh_core::{
    Algorithm, Parallelism, PipelineConfig, Searcher, SnapshotError, SnapshotHeader,
};
use bayeslsh_numeric::Xoshiro256;
use bayeslsh_sparse::{Dataset, SparseVector};
use proptest::prelude::*;

fn corpus(seed: u64) -> Dataset {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut d = Dataset::new(500);
    for c in 0..3 {
        let center: Vec<(u32, f32)> = (0..15)
            .map(|_| {
                (
                    (c * 160 + rng.next_below(150) as usize) as u32,
                    (rng.next_f64() + 0.3) as f32,
                )
            })
            .collect();
        for _ in 0..4 {
            let mut pairs = center.clone();
            for p in pairs.iter_mut() {
                if rng.next_bool(0.2) {
                    *p = (rng.next_below(500) as u32, (rng.next_f64() + 0.3) as f32);
                }
            }
            d.push(SparseVector::from_pairs(pairs));
        }
    }
    d
}

/// One pristine snapshot, built once and shared across cases.
fn snapshot() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let s = Searcher::builder(PipelineConfig::cosine(0.7))
            .algorithm(Algorithm::LshBayesLshLite)
            .parallelism(Parallelism::serial())
            .build(corpus(999))
            .unwrap();
        let mut bytes = Vec::new();
        s.save(&mut bytes).unwrap();
        bytes
    })
}

/// The typed-failure contract: an `Err` of any [`SnapshotError`] variant.
/// (Reaching this function at all means no panic happened.)
fn assert_typed_failure(result: Result<Searcher, SnapshotError>, what: &str) {
    match result {
        Err(
            SnapshotError::BadMagic
            | SnapshotError::UnsupportedVersion { .. }
            | SnapshotError::Corrupt { .. }
            | SnapshotError::ConfigMismatch { .. }
            | SnapshotError::Io(_),
        ) => {}
        Ok(_) => panic!("{what}: corrupt snapshot loaded successfully"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn flipping_any_byte_yields_a_typed_error(
        offset in 0usize..1_000_000,
        mask in 1u8..=255,
    ) {
        let pristine = snapshot();
        let at = offset % pristine.len();
        let mut evil = pristine.to_vec();
        evil[at] ^= mask; // mask >= 1, so the byte really changes
        assert_typed_failure(Searcher::load(&evil[..]), "byte flip");
        // Header probing must stay panic-free too (flips past the header
        // leave it readable — that is fine, probing does not verify the
        // checksum).
        let _ = SnapshotHeader::read(&evil[..]);
    }

    #[test]
    fn truncating_anywhere_yields_a_typed_error(cut in 0usize..1_000_000) {
        let pristine = snapshot();
        let at = cut % pristine.len(); // strictly shorter than the full stream
        assert_typed_failure(Searcher::load(&pristine[..at]), "truncation");
        let _ = SnapshotHeader::read(&pristine[..at]);
    }

    #[test]
    fn corrupting_the_trailing_checksum_yields_a_typed_error(
        which in 0usize..8,
        mask in 1u8..=255,
    ) {
        let pristine = snapshot();
        let mut evil = pristine.to_vec();
        let at = pristine.len() - 8 + which;
        evil[at] ^= mask;
        assert_typed_failure(Searcher::load(&evil[..]), "checksum corruption");
    }
}

#[test]
fn pristine_snapshot_still_loads() {
    // Guard against a degenerate pass where everything fails: the
    // unmodified bytes must load.
    let s = Searcher::load(snapshot()).unwrap();
    assert_eq!(s.len(), 12);
}
